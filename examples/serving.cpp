// Serving demo: paged KV pool with prefix sharing, priority classes and
// preemption under fault-tolerant continuous batching.
//
//   ./serving
//
// A fleet of "users" shares one DecodeEngine backed by a tiny causal
// transformer and a deliberately tight KV pool (9 context tiles).  The
// workload is the shape paging is built for:
//
//   1. an archetype request computes a 193-row common prompt once, sealing
//      and publishing its 3 prefix tiles in the pool;
//   2. four low-priority bulk requests over the *same* prompt attach those
//      tiles instead of recomputing them (one prompt, computed once, shared
//      five ways — the PagedAttention capacity win);
//   3. a high-priority request with a private prompt arrives into a full
//      pool: the youngest low-priority request is preempted (tiles
//      released, request re-queued at the front of its class) and the VIP
//      overtakes the bulk traffic;
//   4. the preempted request is readmitted, re-attaches the still-cached
//      prefix, recomputes its private tail, and finishes with *exactly* the
//      trajectory an uninterrupted run produces — generation is a
//      deterministic function of the prompt;
//   5. a speculative engine decodes a repetitive-suffix fleet with the
//      default prompt-lookup drafter: up to 4 drafted tokens per tick ride
//      one verified query block, the longest bit-matching prefix commits,
//      rejected rows roll back — same stream as the serial engine, a
//      fraction of the ticks;
//   6. the same requests run through a 2-shard engine (attention heads
//      split across worker threads, deterministically combined) and a
//      2-replica router — both bit-identical to the solo engine, with the
//      engine's per-shard fault reports attributing ABFT activity to the
//      shard that did the work.
//
// Along the way the demo prints pool occupancy, the shared-tile ratio,
// preemption counters and speculation acceptance, and it exits nonzero if
// sharing, preemption or speculation ever changes a result (mirrors
// bench_serve_throughput's CI smoke role).

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "serve/engine.hpp"
#include "serve/router.hpp"
#include "tensor/random.hpp"
#include "transformer/model.hpp"

using namespace ftt;

namespace {

tensor::MatrixF prompt(std::size_t seq, std::size_t hidden,
                       std::uint64_t seed) {
  tensor::MatrixF m(seq, hidden);
  tensor::fill_normal(m, seed);
  return m;
}

void print_pool(const serve::DecodeEngine& engine) {
  const auto& pool = engine.pool();
  std::size_t shared_mapped = 0, mapped = 0;
  for (std::size_t id = 0; id < 64; ++id) {
    if (!engine.is_active(id)) continue;
    mapped += engine.kv_block_table(id).size();
    shared_mapped += engine.shared_tile_count(id);
  }
  std::printf("  pool: %zu/%zu tiles in use (%zu cached prefixes), "
              "block-table entries %zu of which shared %zu (%.0f%%), "
              "lifetime: %zu prefix hits, %zu evictions\n",
              pool.in_use(), pool.capacity(), pool.published(), mapped,
              shared_mapped,
              mapped == 0 ? 0.0 : 100.0 * static_cast<double>(shared_mapped) /
                                      static_cast<double>(mapped),
              pool.shared_hits(), pool.evictions());
}

}  // namespace

int main() {
  transformer::ModelConfig cfg = transformer::ModelConfig::tiny();
  cfg.causal = true;  // decode attends to the causal prefix
  const transformer::Model model(cfg, 0x5eed);
  std::printf("model: %s  layers=%zu hidden=%zu heads=%zu\n",
              cfg.name.c_str(), cfg.layers, cfg.hidden, cfg.heads);

  serve::EngineOptions opt;
  opt.scheduler.max_batch_size = 6;
  opt.scheduler.max_kv_tiles = 9;  // tight on purpose: forces preemption
  serve::DecodeEngine engine(model, opt);
  std::printf("pool: %zu context tiles of 64 tokens x %zu layers x %zu "
              "heads (%zu KiB/tile with sealed checksum memos)\n\n",
              engine.pool().capacity(), cfg.layers, cfg.heads,
              engine.pool().slab_halves() * sizeof(numeric::Half) / 1024);

  // 1. The archetype computes the shared 193-row prompt (3 sealed tiles).
  const tensor::MatrixF common = prompt(193, cfg.hidden, 1);
  const auto archetype = engine.submit(common, /*max_new_tokens=*/8);
  while (engine.state(archetype) == serve::RequestState::kQueued ||
         engine.state(archetype) == serve::RequestState::kPrefilling) {
    engine.step();
  }
  std::printf("archetype prefilled the 193-row common prompt (3 prefix "
              "tiles sealed + published)\n");
  print_pool(engine);

  // 2. Four low-priority bulk requests over the same prompt: each attaches
  //    the 3 published tiles and computes only the last prompt row.
  serve::DecodeEngine::RequestId bulk[4];
  for (std::size_t i = 0; i < 4; ++i) {
    bulk[i] = engine.submit(common, /*max_new_tokens=*/24,
                            serve::Priority::kLow);
  }
  auto st = engine.step();  // admit + prefix attach + 1-row prefills
  std::printf("\nbulk wave admitted: %zu requests attached %zu prefix tiles "
              "and prefilled only %zu rows this tick\n",
              st.admitted, st.shared_tiles, st.prefill_rows);
  print_pool(engine);

  // 3. A high-priority request arrives into a (nearly) full pool.
  const tensor::MatrixF vip_prompt = prompt(100, cfg.hidden, 7);
  const auto vip = engine.submit(vip_prompt, /*max_new_tokens=*/4,
                                 serve::Priority::kHigh);
  serve::DecodeEngine::StepStats storm;
  while (engine.state(vip) != serve::RequestState::kRetired) {
    storm += engine.step();
  }
  std::printf("\nVIP served to completion: %zu preemption(s), %zu "
              "eviction(s) while it ran\n",
              storm.preempted, storm.evicted);
  for (std::size_t i = 0; i < 4; ++i) {
    if (engine.preemption_count(bulk[i]) != 0) {
      std::printf("  bulk[%zu] was preempted %zux and re-queued at the "
                  "front of the low class\n",
                  i, engine.preemption_count(bulk[i]));
    }
  }
  print_pool(engine);

  // 4. Drain the bulk traffic (preempted requests re-attach the cached
  //    prefix and replay their private tails).
  const auto tail = engine.run_until_idle(nullptr, 4000);
  storm += tail;
  std::printf("\ndrained: since the VIP arrived, %zu decode steps, %zu "
              "prompt rows recomputed after preemption, %zu prefix tiles "
              "(re)attached from the cache\n",
              storm.decoded, storm.prefill_rows, storm.shared_tiles);

  // Verify: sharing and preemption are invisible in the results.  Every
  // request must match a solo engine (no sharing, unbounded pool) bit for
  // bit; the lifetime FT reports stay clean.
  float worst = 0.0f;
  auto check = [&](serve::DecodeEngine::RequestId id,
                   const tensor::MatrixF& p, std::size_t budget) {
    serve::DecodeEngine solo(model);
    const auto sid = solo.submit(p, budget);
    solo.run_until_idle(nullptr, 400);
    const auto a = engine.hidden(id);
    const auto b = solo.hidden(sid);
    for (std::size_t c = 0; c < a.size(); ++c) {
      worst = std::max(worst, std::fabs(a[c] - b[c]));
    }
  };
  check(archetype, common, 8);
  for (std::size_t i = 0; i < 4; ++i) check(bulk[i], common, 24);
  check(vip, vip_prompt, 4);
  std::printf("\nmax |paged - solo| over all 6 requests: %.2e  (checks: %zu "
              "attention + %zu linear, %zu detected, %zu uncorrected)\n",
              worst,
              engine.lifetime().attention.gemm1.checks +
                  engine.lifetime().attention.exp_check.checks +
                  engine.lifetime().attention.gemm2.checks,
              engine.lifetime().linear.checks,
              engine.lifetime().attention.total_detected(),
              engine.lifetime().attention.uncorrected());
  const bool exercised = storm.preempted > 0 &&
                         engine.pool().shared_hits() > 0;
  std::printf(worst == 0.0f && exercised
                  ? "OK: prefix sharing and preemption changed memory "
                    "traffic, not results.\n"
                  : "WARNING: unexpected divergence or untriggered path.\n");

  // 5. Speculative decode.  A read-out head with final-LN gamma = 0 makes
  //    the generated stream exactly periodic (every layer underneath still
  //    computes in full) — the repetitive-suffix regime where the
  //    no-second-model prompt-lookup drafter shines.  The engine scores up
  //    to 4 drafts per tick in one verified block and commits only the
  //    prefix that bit-matches its own outputs, so speculation can change
  //    tick counts, never results.
  transformer::Model spec_model(cfg, 0x5eed);
  auto& gamma = spec_model.final_ln().gamma();
  auto& beta = spec_model.final_ln().beta();
  for (std::size_t c = 0; c < gamma.size(); ++c) {
    gamma[c] = 0.0f;
    beta[c] = 0.25f + 0.001f * static_cast<float>(c);
  }
  const tensor::MatrixF spec_prompt = prompt(65, cfg.hidden, 21);
  auto spec_run = [&](std::size_t spec_tokens, std::size_t& ticks,
                      serve::DecodeEngine::StepStats& sum,
                      std::vector<float>& hidden_out) {
    serve::EngineOptions sopt;
    sopt.spec_tokens = spec_tokens;
    serve::DecodeEngine eng(spec_model, sopt);
    const auto id = eng.submit(spec_prompt, /*max_new_tokens=*/40);
    ticks = 0;
    while (eng.queued() != 0 || eng.active() != 0) {
      sum += eng.step();
      ++ticks;
    }
    const auto h = eng.hidden(id);
    hidden_out.assign(h.begin(), h.end());
  };
  std::size_t spec_ticks = 0, serial_ticks = 0;
  serve::DecodeEngine::StepStats spec_sum, serial_sum;
  std::vector<float> spec_hidden, serial_hidden;
  spec_run(4, spec_ticks, spec_sum, spec_hidden);
  spec_run(0, serial_ticks, serial_sum, serial_hidden);
  bool spec_identical = spec_hidden.size() == serial_hidden.size();
  for (std::size_t c = 0; spec_identical && c < spec_hidden.size(); ++c) {
    spec_identical = spec_hidden[c] == serial_hidden[c];
  }
  std::printf("\nspeculative decode (repetitive suffix, spec_tokens=4): "
              "%zu ticks vs %zu serial for the same %zu tokens — %zu/%zu "
              "drafts accepted, %zu rolled back, streams %s\n",
              spec_ticks, serial_ticks, spec_sum.decoded,
              spec_sum.spec_accepted, spec_sum.spec_proposed,
              spec_sum.spec_rejected,
              spec_identical ? "bit-identical" : "DIVERGED");
  const bool spec_ok = spec_identical &&
                       spec_sum.decoded == serial_sum.decoded &&
                       spec_sum.spec_accepted > 0 &&
                       spec_ticks < serial_ticks;
  if (!spec_ok) std::printf("WARNING: speculation diverged or never fired.\n");

  // 6. Shard-parallel engine + replica router.  Heads split across worker
  //    threads, outputs recombined in fixed shard order — the default
  //    column-parallel combine has no float reduction at all, so the
  //    sharded run (and the routed run: placement never changes compute)
  //    must match the solo engine bit for bit.
  const tensor::MatrixF fleet[3] = {prompt(90, cfg.hidden, 31),
                                    prompt(40, cfg.hidden, 32),
                                    prompt(129, cfg.hidden, 33)};
  const std::size_t budgets[3] = {6, 10, 4};
  std::vector<std::vector<float>> solo_hidden;
  for (std::size_t i = 0; i < 3; ++i) {
    serve::DecodeEngine solo(model);
    const auto id = solo.submit(fleet[i], budgets[i]);
    solo.run_until_idle(nullptr, 400);
    const auto h = solo.hidden(id);
    solo_hidden.emplace_back(h.begin(), h.end());
  }
  serve::EngineOptions shard_opt;
  shard_opt.shards = 2;
  serve::DecodeEngine sharded(model, shard_opt);
  serve::RouterOptions ropt;
  ropt.replicas = 2;
  serve::Router router(model, ropt);
  serve::DecodeEngine::RequestId sharded_ids[3], routed_ids[3];
  for (std::size_t i = 0; i < 3; ++i) {
    sharded_ids[i] = sharded.submit(fleet[i], budgets[i]);
    routed_ids[i] = router.submit(fleet[i], budgets[i]);
  }
  sharded.run_until_idle(nullptr, 4000);
  router.run_until_idle(nullptr, 4000);
  bool shard_ok = true;
  for (std::size_t i = 0; i < 3; ++i) {
    const auto s = sharded.hidden(sharded_ids[i]);
    const auto r = router.hidden(routed_ids[i]);
    shard_ok = shard_ok && s.size() == solo_hidden[i].size() &&
               r.size() == solo_hidden[i].size();
    for (std::size_t c = 0; shard_ok && c < solo_hidden[i].size(); ++c) {
      shard_ok = s[c] == solo_hidden[i][c] && r[c] == solo_hidden[i][c];
    }
  }
  const auto& shard_reports = sharded.shard_reports();
  std::printf("\nsharded + routed serving (2 shards, 2 replicas, 3 "
              "requests): streams %s solo\n",
              shard_ok ? "bit-identical to" : "DIVERGED from");
  for (std::size_t s = 0; s < shard_reports.size(); ++s) {
    std::printf("  shard %zu (its own heads only): %zu attention checks, "
                "%zu detected, %zu uncorrected\n",
                s,
                shard_reports[s].gemm1.checks +
                    shard_reports[s].exp_check.checks +
                    shard_reports[s].gemm2.checks,
                shard_reports[s].total_detected(),
                shard_reports[s].uncorrected());
  }
  if (!shard_ok) std::printf("WARNING: sharded/routed run diverged.\n");

  return worst == 0.0f && exercised && spec_ok && shard_ok ? 0 : 1;
}
