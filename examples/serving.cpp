// Serving demo: continuous-batching multi-request fault-tolerant generation.
//
//   ./serving
//
// Three "users" submit prompts of different lengths to one DecodeEngine
// backed by a tiny causal transformer.  submit() only enqueues; every
// step() is one scheduler tick that admits queued requests under the
// batch/KV budgets, streams admitted prompts into their per-layer KV caches
// one 64-row causal prefill chunk at a time, advances every decoding
// request by one token in the same batched pass, and retires requests that
// hit their generation budget.  A soft error is injected mid-generation and
// corrected in flight; the final hidden states match a fault-free run.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "fault/fault.hpp"
#include "serve/engine.hpp"
#include "tensor/random.hpp"
#include "transformer/model.hpp"

using namespace ftt;

namespace {

tensor::MatrixF prompt(std::size_t seq, std::size_t hidden,
                       std::uint64_t seed) {
  tensor::MatrixF m(seq, hidden);
  tensor::fill_normal(m, seed);
  return m;
}

}  // namespace

int main() {
  transformer::ModelConfig cfg = transformer::ModelConfig::tiny();
  cfg.causal = true;  // decode attends to the causal prefix
  const transformer::Model model(cfg, 0x5eed);
  std::printf("model: %s  layers=%zu hidden=%zu heads=%zu\n",
              cfg.name.c_str(), cfg.layers, cfg.hidden, cfg.heads);

  // 1. Enqueue three requests with ragged prompt lengths (no 64-alignment).
  //    The 97-row prompt needs two prefill chunks (64 + 33), so it keeps
  //    prefilling while the short requests already decode — the chunked
  //    interleave that stops long prompts from stalling the batch.
  serve::DecodeEngine engine(model);
  const auto a = engine.submit(prompt(13, cfg.hidden, 1));
  const auto b = engine.submit(prompt(50, cfg.hidden, 2));
  const auto c = engine.submit(prompt(97, cfg.hidden, 3));
  std::printf("enqueued %zu requests (no compute yet: admission happens on "
              "the next tick)\n", engine.queued());

  // 2. First tick: admit everyone, absorb the first chunk of each prompt.
  const auto tick1 = engine.step();
  std::printf("tick 1: admitted=%zu prefill_chunks=%zu prefill_rows=%zu "
              "decoded=%zu\n",
              tick1.admitted, tick1.prefill_chunks, tick1.prefill_rows,
              tick1.decoded);

  // 3. Drain 6 more ticks: c finishes prefilling while a and b decode.
  const auto stats = engine.drain(6);
  std::printf("6 ticks: %zu prefill rows + %zu decode steps, %zu attention "
              "checks, %zu linear checks, 0 faults -> %zu detected\n",
              stats.prefill_rows, stats.decoded,
              stats.attention.gemm1.checks + stats.attention.exp_check.checks +
                  stats.attention.gemm2.checks,
              stats.linear.checks, stats.attention.total_detected());
  std::printf("contexts now %zu/%zu/%zu tokens, %zu KV tiles in use\n",
              engine.context_length(a), engine.context_length(b),
              engine.context_length(c), engine.kv_tiles_in_use());

  // 4. One more tick with a single-event upset in the QK^T pipeline.
  auto inj = fault::FaultInjector::single(fault::Site::kGemm1, 300, 30);
  const auto faulty = engine.step(&inj);
  std::printf("SEU tick: %zu flip(s) injected, %zu detected, %zu corrected\n",
              faulty.attention.faults_injected,
              faulty.attention.total_detected(),
              faulty.attention.total_corrected());

  // 5. Compare against a fault-free replica engine driven identically.
  serve::DecodeEngine clean(model);
  const auto ca = clean.submit(prompt(13, cfg.hidden, 1));
  clean.submit(prompt(50, cfg.hidden, 2));
  clean.submit(prompt(97, cfg.hidden, 3));
  clean.drain(8);

  float worst = 0.0f;
  const auto hf = engine.hidden(a);
  const auto hc = clean.hidden(ca);
  for (std::size_t i = 0; i < hf.size(); ++i) {
    worst = std::max(worst, std::fabs(hf[i] - hc[i]));
  }
  std::printf("max |faulty - clean| hidden after correction: %.2e\n", worst);
  std::printf(worst < 1e-2f ? "OK: the soft error was absorbed in flight.\n"
                            : "WARNING: output deviates.\n");

  std::printf("request A lifetime report: %zu checks, %zu detected, %zu "
              "corrected over %zu tokens\n",
              engine.report(a).gemm1.checks + engine.report(a).exp_check.checks +
                  engine.report(a).gemm2.checks,
              engine.report(a).total_detected(),
              engine.report(a).total_corrected(), engine.context_length(a));
  // Nonzero exit on deviation so the CI smoke-run catches a broken
  // correction path (mirrors bench_serve_throughput).
  return worst < 1e-2f ? 0 : 1;
}
