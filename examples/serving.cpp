// Serving demo: batched multi-request fault-tolerant generation.
//
//   ./serving
//
// Three "users" submit prompts of different lengths to one DecodeEngine
// backed by a tiny causal transformer.  The engine prefills each prompt
// into per-layer KV caches, then every step() advances all sequences by one
// token in a single batched pass: layer norms / projections / FFN run over
// the stacked rows, attention runs as one protected decode slice per
// (request, head).  A soft error is injected mid-generation and corrected
// in flight; the final hidden states match a fault-free run.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "fault/fault.hpp"
#include "serve/engine.hpp"
#include "tensor/random.hpp"
#include "transformer/model.hpp"

using namespace ftt;

namespace {

tensor::MatrixF prompt(std::size_t seq, std::size_t hidden,
                       std::uint64_t seed) {
  tensor::MatrixF m(seq, hidden);
  tensor::fill_normal(m, seed);
  return m;
}

}  // namespace

int main() {
  transformer::ModelConfig cfg = transformer::ModelConfig::tiny();
  cfg.causal = true;  // decode attends to the causal prefix
  const transformer::Model model(cfg, 0x5eed);
  std::printf("model: %s  layers=%zu hidden=%zu heads=%zu\n",
              cfg.name.c_str(), cfg.layers, cfg.hidden, cfg.heads);

  // 1. Admit three requests with ragged prompt lengths (no 64-alignment).
  serve::DecodeEngine engine(model);
  const auto a = engine.submit(prompt(13, cfg.hidden, 1));
  const auto b = engine.submit(prompt(50, cfg.hidden, 2));
  const auto c = engine.submit(prompt(97, cfg.hidden, 3));
  std::printf("submitted %zu requests, contexts %zu/%zu/%zu tokens\n",
              engine.active(), engine.context_length(a),
              engine.context_length(b), engine.context_length(c));

  // 2. Generate 6 tokens for everyone in batched steps.
  const auto stats = engine.drain(6);
  std::printf("drained %zu token-steps: %zu attention checks, %zu linear "
              "checks, 0 faults -> %zu detected\n",
              stats.active,
              stats.attention.gemm1.checks + stats.attention.exp_check.checks +
                  stats.attention.gemm2.checks,
              stats.linear.checks, stats.attention.total_detected());

  // 3. One more step with a single-event upset in the QK^T pipeline.
  auto inj = fault::FaultInjector::single(fault::Site::kGemm1, 300, 30);
  const auto faulty = engine.step(&inj);
  std::printf("SEU step: %zu flip(s) injected, %zu detected, %zu corrected\n",
              faulty.attention.faults_injected,
              faulty.attention.total_detected(),
              faulty.attention.total_corrected());

  // 4. Compare against a fault-free replica engine driven identically.
  serve::DecodeEngine clean(model);
  const auto ca = clean.submit(prompt(13, cfg.hidden, 1));
  clean.submit(prompt(50, cfg.hidden, 2));
  clean.submit(prompt(97, cfg.hidden, 3));
  clean.drain(7);

  float worst = 0.0f;
  const auto hf = engine.hidden(a);
  const auto hc = clean.hidden(ca);
  for (std::size_t i = 0; i < hf.size(); ++i) {
    worst = std::max(worst, std::fabs(hf[i] - hc[i]));
  }
  std::printf("max |faulty - clean| hidden after correction: %.2e\n", worst);
  std::printf(worst < 1e-2f ? "OK: the soft error was absorbed in flight.\n"
                            : "WARNING: output deviates.\n");

  std::printf("request A lifetime report: %zu checks, %zu detected, %zu "
              "corrected over %zu tokens\n",
              engine.report(a).gemm1.checks + engine.report(a).exp_check.checks +
                  engine.report(a).gemm2.checks,
              engine.report(a).total_detected(),
              engine.report(a).total_corrected(), engine.context_length(a));
  // Nonzero exit on deviation so the CI smoke-run catches a broken
  // correction path (mirrors bench_serve_throughput).
  return worst < 1e-2f ? 0 : 1;
}
