// Fault-injection study: where do soft errors land, what catches them?
//
// Sweeps every compute site of the attention pipeline (GEMM I MACs, the
// running max, EXP, the running sum, the rescale, GEMM II MACs, the checksum
// pipeline itself) and several bit positions, reporting which mechanism of
// the hybrid scheme absorbed each flip — a miniature of the paper's §3.4
// case analysis.

#include <cmath>
#include <cstdio>

#include "core/efta.hpp"
#include "fault/fault.hpp"
#include "tensor/random.hpp"

using namespace ftt;

namespace {

float worst_rel(const tensor::Tensor4F& a, const tensor::Tensor4F& b) {
  float m = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float d = std::fabs(a.data()[i] - b.data()[i]);
    if (std::isnan(d)) return 1e30f;
    m = std::max(m, d / (std::fabs(b.data()[i]) + 0.1f));
  }
  return m;
}

}  // namespace

int main() {
  const std::size_t seq = 256, dim = 64;
  tensor::Tensor4H Q(1, 1, seq, dim), K(1, 1, seq, dim), V(1, 1, seq, dim);
  tensor::fill_normal(Q, 21);
  tensor::fill_normal(K, 22);
  tensor::fill_normal(V, 23);

  core::EftaOptions opt;
  opt.unified_verification = true;
  tensor::Tensor4F ref(1, 1, seq, dim);
  core::efta_attention(Q, K, V, ref, opt);

  std::printf("%-12s %5s %10s %10s %10s %8s %12s\n", "site", "bit", "flagged",
              "corrected", "recomp", "range", "output-dev");
  const fault::Site sites[] = {
      fault::Site::kGemm1,     fault::Site::kReduceMax, fault::Site::kExp,
      fault::Site::kReduceSum, fault::Site::kRescale,   fault::Site::kGemm2,
      fault::Site::kChecksum};
  int absorbed = 0, total = 0;
  for (const auto site : sites) {
    for (const unsigned bit : {21u, 27u, 30u, 31u}) {
      auto inj = fault::FaultInjector::single(site, 500, bit);
      tensor::Tensor4F O(1, 1, seq, dim);
      const auto rep = core::efta_attention(Q, K, V, O, opt, &inj);
      const float dev = worst_rel(O, ref);
      ++total;
      if (dev < 0.02f) ++absorbed;
      std::printf("%-12s %5u %10zu %10zu %10zu %8zu %12.2e%s\n",
                  fault::site_name(site), bit,
                  rep.gemm1.flagged + rep.exp_check.flagged +
                      rep.gemm2.flagged,
                  rep.total_corrected(), rep.exp_check.recomputed,
                  rep.range_corrections, dev,
                  rep.faults_injected == 0 ? "  (site idle)" : "");
    }
  }
  std::printf("\n%d/%d single-event upsets left the output within 2%% of the "
              "fault-free run.\n", absorbed, total);
  std::printf("Notes: reduce-max flips cancel algebraically (Case 1); small\n"
              "mantissa flips may pass undetected by design — their impact\n"
              "is bounded by the detection threshold (see Fig. 12/14).\n");
  return 0;
}
