// Protected transformer inference: the Fig. 1 picture end to end.
//
// Builds a small GPT-style stack (4 blocks, 256 hidden, 4 heads), runs a
// forward pass under full protection — optimized EFTA in every attention,
// strided ABFT on every projection and feed-forward GEMM, activation range
// restriction on the GELU — with soft errors injected throughout, and
// compares against the fault-free hidden states.

#include <cmath>
#include <cstdio>

#include "fault/fault.hpp"
#include "tensor/random.hpp"
#include "transformer/model.hpp"

using namespace ftt;

int main() {
  transformer::ModelConfig cfg;
  cfg.name = "demo-gpt";
  cfg.layers = 4;
  cfg.hidden = 256;
  cfg.heads = 4;
  cfg.ffn_inner = 1024;
  const transformer::Model model(cfg, /*seed=*/0xfeed);

  const std::size_t seq = 128;
  tensor::MatrixF hidden(seq, cfg.hidden);
  tensor::fill_normal(hidden, 7);

  // Fault-free reference.
  tensor::MatrixF ref = hidden;
  model.forward(ref, transformer::AttentionKind::kEftaOptimized,
                /*protect_linear=*/true);

  // Same forward with SEUs in attention GEMMs and the FFN.
  std::printf("protected forward with one SEU per run:\n");
  std::printf("%-12s %12s %12s %14s\n", "site", "corrected", "clipped",
              "max-deviation");
  for (const auto site : {fault::Site::kGemm1, fault::Site::kGemm2,
                          fault::Site::kExp, fault::Site::kLinear}) {
    auto inj = fault::FaultInjector::single(site, 20000, 30);
    tensor::MatrixF x = hidden;
    const auto res = model.forward(
        x, transformer::AttentionKind::kEftaOptimized, true, &inj);
    float worst = 0.0f;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const float d = std::fabs(x.data()[i] - ref.data()[i]);
      worst = std::max(worst, d / (std::fabs(ref.data()[i]) + 0.1f));
    }
    const std::size_t corrected = res.attention.total_corrected() +
                                  res.projections.corrected +
                                  res.ffn_abft.corrected;
    std::printf("%-12s %12zu %12zu %14.2e\n", fault::site_name(site),
                corrected, res.activations_clipped, worst);
  }

  // Cost view: the paper's Fig. 15 numbers for the real model configs.
  const sim::MachineModel m;
  std::printf("\nmodeled per-token cost at seq 512 (A100):\n");
  for (const auto& c :
       {transformer::ModelConfig::gpt2(), transformer::ModelConfig::bert_base(),
        transformer::ModelConfig::bert_large(),
        transformer::ModelConfig::t5_small()}) {
    const transformer::Model mm(c);
    const double base =
        m.seconds(mm.costs(512, transformer::AttentionKind::kFlash));
    const double det = m.seconds(mm.costs(512, transformer::AttentionKind::kFlash) +
                                 mm.detection_overhead_costs(512));
    std::printf("  %-12s %7.2f ms/token, +%.1f%% with detection\n",
                c.name.c_str(), base * 1e3, 100.0 * (det - base) / base);
  }
  return 0;
}
