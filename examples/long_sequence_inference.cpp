// Long-sequence inference: why end-to-end protection matters at scale.
//
// The decoupled (3-kernel) protected attention materializes the fp32 S and P
// intermediates — batch x heads x seq^2 each — so its memory footprint grows
// quadratically and blows the 40 GB HBM budget at seq 16k (paper Fig. 9,
// bottom).  EFTA streams blocks with O(seq) state and keeps working.
//
// This example (a) prints the modeled footprint/time sweep at paper scale and
// (b) actually runs a seq-2048 protected inference on the host to show the
// fused kernel handles long sequences with faults injected.

#include <cstdio>

#include "attention/decoupled_ft.hpp"
#include "core/efta.hpp"
#include "fault/fault.hpp"
#include "tensor/random.hpp"

using namespace ftt;

int main() {
  const sim::MachineModel m;
  core::EftaOptions opt;
  opt.unified_verification = true;

  std::printf("Protected attention at 16K tokens, heads=32 dim=128 (A100 "
              "model)\n");
  std::printf("%-6s %16s %14s %14s\n", "seq", "decoupled-mem", "decoupled",
              "EFTA");
  for (const std::size_t seq : {2048u, 4096u, 8192u, 16384u, 32768u}) {
    const auto shape = attention::paper_shape(seq, 32, 128);
    const double ws = attention::decoupled_workspace_bytes(shape);
    const double t_efta = m.seconds(core::efta_costs(shape, opt));
    if (m.fits(ws)) {
      const double t_dec = m.seconds(attention::decoupled_ft_costs(shape));
      std::printf("%-6zu %13.1f GB %11.2f ms %11.2f ms\n", seq, ws / 1e9,
                  t_dec * 1e3, t_efta * 1e3);
    } else {
      std::printf("%-6zu %13.1f GB %14s %11.2f ms\n", seq, ws / 1e9,
                  "OOM (40 GB)", t_efta * 1e3);
    }
  }

  std::printf("\nRunning a real protected seq-2048 inference on the host...\n");
  const std::size_t seq = 2048, dim = 64;
  tensor::Tensor4H Q(1, 1, seq, dim), K(1, 1, seq, dim), V(1, 1, seq, dim);
  tensor::fill_normal(Q, 10);
  tensor::fill_normal(K, 11);
  tensor::fill_normal(V, 12);

  tensor::Tensor4F ref(1, 1, seq, dim);
  core::efta_attention(Q, K, V, ref, opt);

  // Sprinkle a few SEUs across the long computation.
  auto inj = fault::FaultInjector::bernoulli(
      3.0 / (2.0 * seq * seq), 99,
      {fault::Site::kGemm1, fault::Site::kGemm2, fault::Site::kExp});
  tensor::Tensor4F O(1, 1, seq, dim);
  const auto rep = core::efta_attention(Q, K, V, O, opt, &inj);

  float worst = 0.0f;
  for (std::size_t i = 0; i < O.size(); ++i) {
    const float d = std::fabs(O.data()[i] - ref.data()[i]);
    worst = std::max(worst, d / (std::fabs(ref.data()[i]) + 0.1f));
  }
  std::printf("injected %zu flips over %zu checksum checks; corrected %zu, "
              "recomputed %zu\n",
              rep.faults_injected,
              rep.gemm1.checks + rep.exp_check.checks + rep.gemm2.checks,
              rep.total_corrected(), rep.exp_check.recomputed);
  std::printf("worst relative deviation from the fault-free run: %.3e\n",
              worst);
  return 0;
}
