// Quickstart: protect one attention computation with EFTA.
//
//   ./quickstart
//
// Builds random fp16 Q/K/V (2 heads, seq 256, dim 64), runs the optimized
// end-to-end fault tolerant attention, injects one soft error into the QK^T
// tensor-core pipeline, and shows that the output matches the fault-free run.

#include <cmath>
#include <cstdio>

#include "attention/attention.hpp"
#include "core/efta.hpp"
#include "fault/fault.hpp"
#include "tensor/random.hpp"

using namespace ftt;

int main() {
  // 1. Inputs: batch x heads x seq x dim, fp16 (like the paper's setup).
  const std::size_t batch = 1, heads = 2, seq = 256, dim = 64;
  tensor::Tensor4H Q(batch, heads, seq, dim), K(batch, heads, seq, dim),
      V(batch, heads, seq, dim);
  tensor::fill_normal(Q, /*seed=*/1);
  tensor::fill_normal(K, 2);
  tensor::fill_normal(V, 3);

  // 2. A fault-free protected run.  EftaOptions defaults give the paper's
  //    hybrid scheme: strided tensor-checksum ABFT for both GEMMs + SNVR for
  //    the softmax chain; unified_verification enables Algorithm 1.
  core::EftaOptions opt;
  opt.unified_verification = true;

  tensor::Tensor4F O_clean(batch, heads, seq, dim);
  core::efta_attention(Q, K, V, O_clean, opt);

  // 3. The same run with a single-event upset: flip the top exponent bit of
  //    the 12345th MAC result in the QK^T GEMM.
  auto injector = fault::FaultInjector::single(fault::Site::kGemm1,
                                               /*call_index=*/12345,
                                               /*bit=*/30);
  tensor::Tensor4F O_faulty(batch, heads, seq, dim);
  const attention::FtReport rep =
      core::efta_attention(Q, K, V, O_faulty, opt, &injector);

  // 4. Inspect what the fault tolerance machinery did.
  std::printf("faults injected:     %zu\n", rep.faults_injected);
  std::printf("GEMM-I   corrected:  %zu\n", rep.gemm1.corrected);
  std::printf("EXP path corrected:  %zu (+%zu recomputed)\n",
              rep.exp_check.corrected, rep.exp_check.recomputed);
  std::printf("GEMM-II  corrected:  %zu\n", rep.gemm2.corrected);
  std::printf("rowsum restrictions: %zu\n", rep.range_corrections);

  float worst = 0.0f;
  for (std::size_t i = 0; i < O_clean.size(); ++i) {
    worst = std::max(worst,
                     std::fabs(O_clean.data()[i] - O_faulty.data()[i]));
  }
  std::printf("max |clean - faulty| after correction: %.2e\n", worst);
  std::printf(worst < 1e-2f ? "OK: the soft error was absorbed.\n"
                            : "WARNING: output deviates.\n");

  // 5. Contrast: the same flip with protection disabled.
  core::EftaOptions off;
  off.gemm = core::GemmProtect::kNone;
  off.softmax = core::SoftmaxProtect::kNone;
  injector.reset();
  tensor::Tensor4F O_unprotected(batch, heads, seq, dim);
  core::efta_attention(Q, K, V, O_unprotected, off, &injector);
  worst = 0.0f;
  for (std::size_t i = 0; i < O_clean.size(); ++i) {
    const float d = std::fabs(O_clean.data()[i] - O_unprotected.data()[i]);
    worst = std::isnan(d) ? 1e30f : std::max(worst, d);
  }
  std::printf("without protection the same flip corrupts the output by "
              "%.2e\n", worst);
  return 0;
}
