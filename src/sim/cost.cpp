#include "sim/cost.hpp"

#include <algorithm>

namespace ftt::sim {

std::string_view phase_name(Phase p) noexcept {
  switch (p) {
    case Phase::kMemory:
      return "LD/ST";
    case Phase::kChecksumGen:
      return "CCG";
    case Phase::kGemm:
      return "GEMM";
    case Phase::kSoftmax:
      return "EXP/RSM";
    case Phase::kRescale:
      return "RS&RSC";
    case Phase::kVerify:
      return "CCV/NVR";
    case Phase::kDmr:
      return "DMR";
    case Phase::kCount:
      break;
  }
  return "?";
}

double MachineModel::phase_seconds(const Costs& c) const noexcept {
  const double t_tc = c.tc_flops / (tc_peak * tc_eff);
  const double t_fp = c.fp32_flops / (fp32_peak * fp32_eff);
  const double t_sfu = c.sfu_ops / (sfu_peak * sfu_eff);
  const double t_mem = c.hbm_bytes / (hbm_bw * hbm_eff);
  const double t_shfl = c.shuffles / (shuffle_rate * shuffle_eff);
  return std::max({t_tc, t_fp, t_sfu, t_mem, t_shfl});
}

double MachineModel::seconds(const CostBreakdown& b) const noexcept {
  const Costs total = b.total();
  const double t_tc = total.tc_flops / (tc_peak * tc_eff);
  const double t_fp = total.fp32_flops / (fp32_peak * fp32_eff);
  const double t_sfu = total.sfu_ops / (sfu_peak * sfu_eff);
  const double t_mem = total.hbm_bytes / (hbm_bw * hbm_eff);
  const double t_shfl = total.shuffles / (shuffle_rate * shuffle_eff);
  const double sum = t_tc + t_fp + t_sfu + t_mem + t_shfl;
  const double dominant = std::max({t_tc, t_fp, t_sfu, t_mem, t_shfl});
  return dominant + serialization * (sum - dominant) +
         total.syncs * sync_latency + total.launches * launch_latency;
}

Costs gemm_costs(double m, double n, double k) noexcept {
  Costs c;
  c.tc_flops = 2.0 * m * n * k;
  return c;
}

}  // namespace ftt::sim
