#include "sim/mma.hpp"

#include <omp.h>

#include <vector>

#include "numeric/gemm_simd.hpp"

namespace ftt::sim {

// PTX ISA, mma.sync.aligned.m16n8k16.row.col.f32.f16.f16.f32:
// lane = groupID * 4 + threadID_in_group, groupID = lane >> 2.
//
// A (16x16 fp16, 8 regs a0..a7 per lane):
//   a0,a1: (groupID,       tid*2 + {0,1})
//   a2,a3: (groupID + 8,   tid*2 + {0,1})
//   a4,a5: (groupID,       tid*2 + 8 + {0,1})
//   a6,a7: (groupID + 8,   tid*2 + 8 + {0,1})
RegCoord MmaAtom::a_coord(int row, int col) noexcept {
  const int lane = (row % 8) * 4 + (col % 8) / 2;
  const int reg = (col & 1) | ((row >= 8) ? 2 : 0) | ((col >= 8) ? 4 : 0);
  return {lane, reg};
}

// B (16(K) x 8(N) fp16, 4 regs b0..b3 per lane):
//   b0,b1: (tid*2 + {0,1},     groupID)
//   b2,b3: (tid*2 + 8 + {0,1}, groupID)
RegCoord MmaAtom::b_coord(int k, int col) noexcept {
  const int lane = col * 4 + (k % 8) / 2;
  const int reg = (k & 1) | ((k >= 8) ? 2 : 0);
  return {lane, reg};
}

// C/D (16x8 fp32, 4 regs c0..c3 per lane):
//   c0,c1: (groupID,     tid*2 + {0,1})
//   c2,c3: (groupID + 8, tid*2 + {0,1})
RegCoord MmaAtom::c_coord(int row, int col) noexcept {
  const int lane = (row % 8) * 4 + col / 2;
  const int reg = (col & 1) | ((row >= 8) ? 2 : 0);
  return {lane, reg};
}

std::array<int, 2> MmaAtom::c_element(int lane, int reg) noexcept {
  const int group = lane >> 2;
  const int tid = lane & 3;
  const int row = group + ((reg & 2) ? 8 : 0);
  const int col = tid * 2 + (reg & 1);
  return {row, col};
}

void MmaAtom::mma(const numeric::Half* A, std::size_t lda,
                  const numeric::Half* B, std::size_t ldb, float* C,
                  std::size_t ldc) noexcept {
  for (int m = 0; m < kM; ++m) {
    for (int n = 0; n < kN; ++n) {
      float acc = C[m * ldc + n];
      for (int k = 0; k < kK; ++k) {
        // fp16 x fp16 is exact in fp32; accumulation is fp32 RNE per step.
        acc += A[m * lda + k].to_float() * B[k * ldb + n].to_float();
      }
      C[m * ldc + n] = acc;
    }
  }
}

int TiledMma64x16x16::thread_of_c(std::size_t row, std::size_t col) noexcept {
  const int tile_row = static_cast<int>(row % kTileM);
  const int warp = tile_row / MmaAtom::kM;
  const RegCoord rc =
      MmaAtom::c_coord(tile_row % MmaAtom::kM, static_cast<int>(col % MmaAtom::kN));
  return warp * MmaAtom::kWarpSize + rc.lane;
}

int TiledMma64x16x16::thread_of_a(std::size_t row, std::size_t k) noexcept {
  const int tile_row = static_cast<int>(row % kTileM);
  const int warp = tile_row / MmaAtom::kM;
  const RegCoord rc =
      MmaAtom::a_coord(tile_row % MmaAtom::kM, static_cast<int>(k % MmaAtom::kK));
  return warp * MmaAtom::kWarpSize + rc.lane;
}

int TiledMma64x16x16::thread_of_b(std::size_t k, std::size_t col) noexcept {
  // B is broadcast to all four warps; report the warp-0 owner.
  const RegCoord rc = MmaAtom::b_coord(static_cast<int>(k % MmaAtom::kK),
                                       static_cast<int>(col % MmaAtom::kN));
  return rc.lane;
}

void gemm_f32_nt(const float* A, std::size_t M, std::size_t K, const float* B,
                 std::size_t N, tensor::MatrixF& C, bool accumulate) {
  if (M == 0 || N == 0 || K == 0) {
    if (!accumulate) {
      for (std::size_t m = 0; m < M; ++m) {
        float* crow = &C(m, 0);
        for (std::size_t n = 0; n < N; ++n) crow[n] = 0.0f;
      }
    }
    return;
  }
  if (numeric::simd_gemm_active()) {
    // Pack B (N x K, row-per-output) into the k-major layout the axpy-form
    // microkernel consumes.  Packing is pure data movement, and the kernel
    // accumulates each output element in the same ascending-k order as the
    // scalar dot loop below, so the two paths are bit-identical (the
    // exact-product FMA argument in numeric/gemm_simd.hpp).  thread_local
    // scratch: this runs inside OpenMP decode batches and shard workers.
    thread_local std::vector<float> bt;
    if (bt.size() < K * N) bt.resize(K * N);
    numeric::transpose_f32(B, N, K, bt.data());
    numeric::gemm_f32_nn(A, M, K, bt.data(), N, &C(0, 0), C.cols(),
                         accumulate);
    return;
  }
  for (std::size_t m = 0; m < M; ++m) {
    const float* arow = A + m * K;
    float* crow = &C(m, 0);
    for (std::size_t n = 0; n < N; ++n) {
      const float* brow = B + n * K;
      float acc = accumulate ? crow[n] : 0.0f;
      for (std::size_t k = 0; k < K; ++k) acc += arow[k] * brow[k];
      crow[n] = acc;
    }
  }
}

void gemm_f32_nn(const float* A, std::size_t M, std::size_t K, const float* B,
                 std::size_t N, tensor::MatrixF& C, bool accumulate) {
  if (M == 0 || N == 0) return;
  numeric::gemm_f32_nn(A, M, K, B, N, &C(0, 0), C.cols(), accumulate);
}

void gemm_f32_nnh(const float* A, std::size_t M, std::size_t K,
                  const numeric::Half* B, std::size_t N, tensor::MatrixF& C,
                  bool accumulate) {
  if (M == 0 || N == 0) return;
  numeric::gemm_f32_nnh(A, M, K, B, N, &C(0, 0), C.cols(), accumulate);
}

void gemm_fp16_nt(const tensor::MatrixH& A, tensor::MatrixHView B,
                  tensor::MatrixF& C, bool accumulate) {
  const std::size_t M = A.rows(), K = A.cols(), N = B.rows;
  // Widen once (bulk SIMD conversion): fp16 -> fp32 is exact, so arithmetic
  // below is bit-identical to fp16-operand / fp32-accumulate MMA with a
  // sequential K loop.
  std::vector<float> a(M * K), b(N * K);
  numeric::halves_to_floats(A.data(), a.data(), M * K);
  tensor::widen(B, b.data());
  gemm_f32_nt(a.data(), M, K, b.data(), N, C, accumulate);
}

void gemm_fp16_nt(const tensor::MatrixH& A, const tensor::MatrixH& B,
                  tensor::MatrixF& C, bool accumulate) {
  gemm_fp16_nt(A, tensor::view(B), C, accumulate);
}

void gemm_f32h_nn(const tensor::MatrixF& A, const tensor::MatrixH& B,
                  tensor::MatrixF& C, bool accumulate) {
  const std::size_t M = A.rows(), K = A.cols(), N = B.cols();
  std::vector<float> b(K * N);
  numeric::halves_to_floats(B.data(), b.data(), K * N);
  // Pre-round A through fp16 once (two bulk conversions) instead of one
  // table round-trip per (m, k); values are identical.
  std::vector<numeric::Half> ah(M * K);
  std::vector<float> af(M * K);
  numeric::floats_to_halves(A.data(), ah.data(), M * K);
  numeric::halves_to_floats(ah.data(), af.data(), M * K);

  // b is already K x N (k-major): feed the dispatching kernel directly.  Its
  // scalar reference is exactly the loop nest this replaced.
  numeric::gemm_f32_nn(af.data(), M, K, b.data(), N, &C(0, 0), C.cols(),
                       accumulate);
}

}  // namespace ftt::sim
