#pragma once
// Analytic GPU cost model.
//
// The paper reports wall-clock on a 40 GB A100-PCIE.  With no GPU available,
// each kernel in this library exposes exact closed-form operation counts
// (tensor-core MACs, fp32 ops, SFU exp ops, HBM bytes, warp shuffles, kernel
// launches) broken down by the pipeline phases of Figs. 3/5, and this model
// converts counts to modeled seconds with a per-phase roofline.  All paper
// figures compare *ratios* (speedups, overhead percentages), which are
// functions of these counts; see DESIGN.md §2 for the substitution argument.

#include <array>
#include <cstddef>
#include <string_view>

namespace ftt::sim {

/// Pipeline phases matching the workflow diagrams (Figs. 3 and 5):
/// LD/ST = kMemory, CCG = kChecksumGen, GEMM = kGemm, EXP+RSM = kSoftmax,
/// RS&RSC = kRescale, CCV/NVR = kVerify, DMR replica = kDmr.
enum class Phase {
  kMemory = 0,
  kChecksumGen,
  kGemm,
  kSoftmax,
  kRescale,
  kVerify,
  kDmr,
  kCount,
};

constexpr std::size_t kPhaseCount = static_cast<std::size_t>(Phase::kCount);

std::string_view phase_name(Phase p) noexcept;

/// Raw operation counts for one phase (or aggregated).
struct Costs {
  double tc_flops = 0;    ///< tensor-core fp16 MAC flops (2 per MAC)
  double fp32_flops = 0;  ///< CUDA-core fp32 flops (adds, muls, compares)
  double sfu_ops = 0;     ///< special-function ops (exp)
  double hbm_bytes = 0;   ///< HBM reads + writes
  double shuffles = 0;    ///< inter-thread (warp shuffle) word transfers
  double syncs = 0;       ///< verification sync points (pipeline drains)
  double launches = 0;    ///< kernel launches

  Costs& operator+=(const Costs& o) noexcept {
    tc_flops += o.tc_flops;
    fp32_flops += o.fp32_flops;
    sfu_ops += o.sfu_ops;
    hbm_bytes += o.hbm_bytes;
    shuffles += o.shuffles;
    syncs += o.syncs;
    launches += o.launches;
    return *this;
  }
  friend Costs operator+(Costs a, const Costs& b) noexcept { return a += b; }
  Costs& scale(double f) noexcept {
    tc_flops *= f;
    fp32_flops *= f;
    sfu_ops *= f;
    hbm_bytes *= f;
    shuffles *= f;
    syncs *= f;
    launches *= f;
    return *this;
  }
};

/// Per-phase cost table for one kernel (or a whole pipeline).
struct CostBreakdown {
  std::array<Costs, kPhaseCount> by_phase{};

  Costs& operator[](Phase p) noexcept {
    return by_phase[static_cast<std::size_t>(p)];
  }
  const Costs& operator[](Phase p) const noexcept {
    return by_phase[static_cast<std::size_t>(p)];
  }

  [[nodiscard]] Costs total() const noexcept {
    Costs t;
    for (const auto& c : by_phase) t += c;
    return t;
  }

  CostBreakdown& operator+=(const CostBreakdown& o) noexcept {
    for (std::size_t i = 0; i < kPhaseCount; ++i) by_phase[i] += o.by_phase[i];
    return *this;
  }
  friend CostBreakdown operator+(CostBreakdown a, const CostBreakdown& b) {
    return a += b;
  }
  /// Scale every phase uniformly (e.g. one per-slice kernel cost replicated
  /// across batch x heads independent slices).
  CostBreakdown& scale(double f) noexcept {
    for (auto& c : by_phase) c.scale(f);
    return *this;
  }
};

/// A100-PCIE-40GB machine description with achievable-fraction knobs.
struct MachineModel {
  double tc_peak = 312e12;      ///< dense fp16 tensor-core flop/s
  double fp32_peak = 19.5e12;   ///< CUDA-core fp32 flop/s
  double sfu_peak = 4.875e12;   ///< special-function (exp) op/s (1/4 fp32)
  double hbm_bw = 1.555e12;     ///< HBM bytes/s
  double shuffle_rate = 9.75e12;  ///< warp-shuffle words/s
  double launch_latency = 5e-6;   ///< per kernel launch, seconds
  /// Amortized cost of one in-kernel verification sync point: every CCV/NVR
  /// stage drains the MMA pipeline before comparing, which neither overlaps
  /// with compute nor with other CTAs' syncs on the same SM.
  double sync_latency = 6e-10;
  double hbm_capacity = 40e9;     ///< bytes

  double tc_eff = 0.60;
  double fp32_eff = 0.85;   ///< streaming encode/verify loops are ILP-friendly
  double sfu_eff = 0.85;
  double hbm_eff = 0.85;
  double shuffle_eff = 0.50;

  /// Fraction of non-critical-resource time that cannot be hidden behind the
  /// dominant resource.  Inside one fused kernel, CUDA-core checksum work
  /// overlaps tensor-core MMAs, but data dependencies (verify-after-GEMM,
  /// EXP-after-subtract) serialize part of it.
  double serialization = 0.30;

  /// Roofline time for one phase: slowest of the participating resources.
  [[nodiscard]] double phase_seconds(const Costs& c) const noexcept;

  /// Total modeled time: per-resource totals across all phases, with the
  /// dominant resource fully charged and the rest partially hidden
  /// (`serialization` exposed), plus launch latency.
  [[nodiscard]] double seconds(const CostBreakdown& b) const noexcept;

  /// Does a working set of `bytes` fit in HBM?  Used to reproduce the OOM of
  /// the decoupled framework at seq_len = 16k (Fig. 9, bottom).
  [[nodiscard]] bool fits(double bytes) const noexcept {
    return bytes <= hbm_capacity;
  }
};

/// Counts for a plain M x N x K fp16 tensor-core GEMM (2*M*N*K flops).
Costs gemm_costs(double m, double n, double k) noexcept;

}  // namespace ftt::sim
