#pragma once
// Software model of the SM80_16x8x16_F32F16F16F32_TN MMA instruction.
//
// The paper's strided ABFT (Section 3.3) is built entirely on the
// thread<->data mapping of this instruction: within a warp of 32 threads,
// the 16x8 fp32 accumulator tile, the 16x16 fp16 A tile and the 16x8 fp16
// B tile are distributed across thread registers in a fixed pattern
// (paper Fig. 6; PTX ISA "mma.sync.aligned.m16n8k16").  We reproduce that
// mapping exactly so the paper's central claims are *checkable properties*
// of this codebase:
//   * with a 64x16x16 TiledMMA, elements of a column at stride 64 live in
//     the same thread, and elements of a row at stride 8 live in the same
//     thread (Fig. 7), so strided checksums need no inter-thread traffic;
//   * classic element checksums need cross-thread reduction, which we count
//     as warp shuffles in the cost model.
//
// Arithmetic semantics: fp16 operands, fp32 multiply-accumulate.  An fp16 x
// fp16 product is exact in fp32 (11-bit significands), so the model computes
// in fp32 over fp16-rounded inputs, which is bit-equivalent per MAC.

#include <array>
#include <cstddef>
#include <cstdint>

#include "numeric/fp16.hpp"
#include "tensor/tensor.hpp"

namespace ftt::sim {

/// Register coordinate of a matrix element inside a warp: which lane holds it
/// and in which of the lane's registers.
struct RegCoord {
  int lane = 0;  ///< thread index within the warp, 0..31
  int reg = 0;   ///< register index within that thread's fragment
};

/// Thread<->data layout of one m16n8k16 F32F16F16F32 TN MMA atom.
struct MmaAtom {
  static constexpr int kM = 16;
  static constexpr int kN = 8;
  static constexpr int kK = 16;
  static constexpr int kWarpSize = 32;

  /// A fragment: 16x16 fp16, 8 registers per lane.
  static RegCoord a_coord(int row, int col) noexcept;
  /// B fragment: 16(K) x 8(N) fp16, 4 registers per lane.
  static RegCoord b_coord(int k, int col) noexcept;
  /// C/D accumulator: 16x8 fp32, 4 registers per lane.
  static RegCoord c_coord(int row, int col) noexcept;

  /// Inverse of c_coord: element owned by (lane, reg).
  static std::array<int, 2> c_element(int lane, int reg) noexcept;

  /// D = A * B + C with fp16 operands / fp32 accumulate.
  /// A is 16x16 (row-major), B is 16x8 laid out K x N (i.e. column `n` of B
  /// is the n-th output column; the TN in the instruction name refers to the
  /// source operand layouts, which this interface abstracts away).
  static void mma(const numeric::Half* A, std::size_t lda,
                  const numeric::Half* B, std::size_t ldb, float* C,
                  std::size_t ldc) noexcept;
};

/// TiledMMA used by EFTA: 4 warps stacked along M (64 rows), one MMA atom
/// footprint along N and K, replicated by iteration to cover a block
/// (paper Fig. 7: "64x16x16 TiledMMA", warp-level parallelism along M).
struct TiledMma64x16x16 {
  static constexpr int kTileM = 64;
  static constexpr int kTileN = 16;  // two atom-N footprints per iteration
  static constexpr int kTileK = 16;
  static constexpr int kWarps = 4;
  static constexpr int kThreads = kWarps * MmaAtom::kWarpSize;

  /// Global thread id (0..127) owning accumulator element (row, col) of an
  /// arbitrarily large output tile covered by repeating this TiledMMA.
  static int thread_of_c(std::size_t row, std::size_t col) noexcept;

  /// Global thread id owning A element (row, k).
  static int thread_of_a(std::size_t row, std::size_t k) noexcept;

  /// Global thread id owning B element (k, col).
  static int thread_of_b(std::size_t k, std::size_t col) noexcept;
};

/// Blocked GEMM over fp16 inputs with fp32 accumulation, bit-faithful to a
/// chain of SM80 MMA atoms with a sequential K loop.  C (rows x cols) += or =
/// A (rows x K) * B^T (cols x K)   -- i.e. computes A * B^T, the layout used
/// by Q * K^T.  Set `accumulate` to add into C.
void gemm_fp16_nt(const tensor::MatrixH& A, const tensor::MatrixH& B,
                  tensor::MatrixF& C, bool accumulate = false);

/// Same GEMM over a non-owning fp16 view of B — e.g. a KV-cache tile
/// consumed in place, no pad-and-copy into an owning Matrix first.
void gemm_fp16_nt(const tensor::MatrixH& A, tensor::MatrixHView B,
                  tensor::MatrixF& C, bool accumulate = false);

/// Same GEMM over pre-widened fp32 images of the fp16 operands (widening is
/// exact, so this is bit-identical to gemm_fp16_nt over the original halves
/// — same per-output sequential-K accumulation order).  A is M x K, B is
/// N x K, both densely packed; C must be M x N.  The decode hot path widens
/// each operand once (SIMD bulk conversion) and runs every GEMM of a tile
/// through this entry point instead of re-converting per GEMM.
void gemm_f32_nt(const float* A, std::size_t M, std::size_t K, const float* B,
                 std::size_t N, tensor::MatrixF& C, bool accumulate = false);

/// Same contract with B already k-major (K x N) — the memoized fp32 tile
/// images store K^T pre-transposed so a clean decode tick skips the per-call
/// pack entirely.  Bit-identical to gemm_f32_nt over B^T (pure layout
/// change; per-output accumulation order is unchanged).
void gemm_f32_nn(const float* A, std::size_t M, std::size_t K, const float* B,
                 std::size_t N, tensor::MatrixF& C, bool accumulate = false);

/// Same contract as gemm_f32_nn with B kept at half width (K x N Half,
/// k-major) and widened in registers by the fused fp16-operand microkernel —
/// bit-identical to gemm_f32_nn over a pre-widened image of B (widening is
/// exact, accumulation order unchanged) at half the B-side bytes streamed.
/// The kF16T sealed-tile images feed decode through this entry point.
void gemm_f32_nnh(const float* A, std::size_t M, std::size_t K,
                  const numeric::Half* B, std::size_t N, tensor::MatrixF& C,
                  bool accumulate = false);

/// C = A (rows x K, fp32, pre-rounded or exact) * B (K x cols, fp16).
/// Used for P * V where P is the fp32 softmax output rounded to fp16 before
/// feeding the tensor core.
void gemm_f32h_nn(const tensor::MatrixF& A, const tensor::MatrixH& B,
                  tensor::MatrixF& C, bool accumulate = false);

}  // namespace ftt::sim
