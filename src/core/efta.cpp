#include "core/efta.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include <omp.h>

#include "abft/element_abft.hpp"
#include "abft/strided_abft.hpp"
#include "numeric/fp16.hpp"
#include "sim/mma.hpp"
#include "softmax/snvr.hpp"

namespace ftt::core {

using attention::AttnShape;
using attention::FtReport;
using numeric::Half;
using tensor::MatrixF;
using tensor::MatrixH;
using tensor::Tensor4F;
using tensor::Tensor4H;

namespace {

constexpr float kRelEps = 1e-6f;

MatrixH load_slice(const Tensor4H& T, std::size_t b, std::size_t h,
                   float scale = 1.0f) {
  MatrixH m(T.seq(), T.dim());
  const auto src = T.slice(b, h);
  if (scale == 1.0f) {
    for (std::size_t i = 0; i < src.size(); ++i) m.data()[i] = src[i];
  } else {
    for (std::size_t i = 0; i < src.size(); ++i) {
      m.data()[i] = Half(src[i].to_float() * scale);
    }
  }
  return m;
}

MatrixH row_block(const MatrixH& X, std::size_t r0, std::size_t rows) {
  MatrixH out(rows, X.cols());
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < X.cols(); ++c) out(r, c) = X(r0 + r, c);
  }
  return out;
}

bool near_integer(double x, double tol = 0.05) {
  return std::fabs(x - std::round(x)) < tol;
}

/// Case-2 verification with the unified checksum (Algorithm 1 lines 12-16):
/// the linear checksum Schk1/Schk2 of GEMM I, transformed by the same
/// subtract-max, witnesses the EXP output multiplicatively:
///     prod_l P[r][jc+s*l]  ==  exp(Schk1[r][jc] - L * m_r).
/// Evaluated in the log domain (double) to avoid fp32 underflow of 8-term
/// products; the log-residual of the weighted checksum locates the column.
/// `Spre` is the register-resident pre-EXP score block used for recovery:
/// checksum-correctable flips repair Spre then re-exponentiate, EXP-unit
/// flips are recomputed from Spre.
abft::Report verify_exp_block(MatrixF& P, MatrixF& Spre, const MatrixF& Schk1,
                              const MatrixF& Schk2,
                              const std::vector<float>& mnew, int s,
                              float exp_log_threshold) {
  abft::Report rep;
  const std::size_t R = P.rows(), C = P.cols();
  const std::size_t L = C / static_cast<std::size_t>(s);
  const double w2sum = static_cast<double>(L) * (L + 1) / 2.0;

  for (std::size_t r = 0; r < R; ++r) {
    const double m = mnew[r];
    for (std::size_t jc = 0; jc < static_cast<std::size_t>(s); ++jc) {
      ++rep.checks;
      bool bad_value = false;
      double lhs1 = 0.0, lhs2 = 0.0;
      for (std::size_t l = 0; l < L; ++l) {
        const float p = P(r, jc + l * s);
        if (!(p > 0.0f) || !std::isfinite(p)) {
          bad_value = true;
          break;
        }
        const double lg = std::log(static_cast<double>(p));
        lhs1 += lg;
        lhs2 += static_cast<double>(l + 1) * lg;
      }
      if (bad_value) {
        // exp output must be a positive finite value: a sign/exponent flip
        // in the EXP unit — or a non-finite score that propagated through.
        ++rep.flagged;
        // Repair a non-finite score first (linear reconstruction).
        std::size_t bad = L, bad_count = 0;
        float others = 0.0f;
        for (std::size_t l = 0; l < L; ++l) {
          const float sv = Spre(r, jc + l * s);
          if (!std::isfinite(sv)) {
            bad = l;
            ++bad_count;
          } else {
            others += sv;
          }
        }
        if (bad_count == 1 && std::isfinite(Schk1(r, jc))) {
          Spre(r, jc + bad * s) = Schk1(r, jc) - others;
          ++rep.corrected;
        }
        for (std::size_t l = 0; l < L; ++l) {
          P(r, jc + l * s) = std::exp(Spre(r, jc + l * s) - mnew[r]);
        }
        ++rep.recomputed;
        continue;
      }

      const double rhs1 = static_cast<double>(Schk1(r, jc)) -
                          static_cast<double>(L) * m;
      // The log-domain residual equals the score-space perturbation, so an
      // absolute threshold directly bounds the undetected error magnitude.
      const double d1 = lhs1 - rhs1;
      if (std::fabs(d1) <= exp_log_threshold) {
        continue;
      }
      ++rep.flagged;

      const double rhs2 =
          static_cast<double>(Schk2(r, jc)) - w2sum * m;
      const double d2 = lhs2 - rhs2;
      const double ratio = d2 / d1;  // = l* + 1 for one corrupted element
      const double lstar = ratio - 1.0;

      if (std::isfinite(lstar) && near_integer(lstar, 0.1) && lstar >= -0.5 &&
          lstar < static_cast<double>(L) - 0.5) {
        const auto l = static_cast<std::size_t>(std::lround(lstar));
        const std::size_t col = jc + l * s;
        // Was the flip in the linear path (GEMM I / subtract) or in EXP?
        float sum1 = 0.0f;
        for (std::size_t ll = 0; ll < L; ++ll) sum1 += Spre(r, jc + ll * s);
        const float dlin = Schk1(r, jc) - sum1;
        if (std::fabs(dlin) > 0.5f * std::fabs(static_cast<float>(d1))) {
          // Linear error: reconstruct the score from the checksum (exact
          // even for huge corruptions), then re-exponentiate.
          float others = 0.0f;
          for (std::size_t ll = 0; ll < L; ++ll) {
            if (ll != l) others += Spre(r, jc + ll * s);
          }
          Spre(r, col) = Schk1(r, jc) - others;
          P(r, col) = std::exp(Spre(r, col) - mnew[r]);
          ++rep.corrected;
        } else {
          // EXP-unit error: recompute from the intact score.
          P(r, col) = std::exp(Spre(r, col) - mnew[r]);
          ++rep.recomputed;
        }
      } else if (std::isfinite(ratio) && std::fabs(ratio) < 0.5) {
        // c2 residual ~0, c1 residual large: the c1 checksum itself flipped.
        ++rep.checksum_repairs;
      } else {
        // Cannot locate (multi-error in a residue class or weighted-checksum
        // flip): recompute the class; if the linear sums still disagree the
        // scores themselves are unrecoverable.
        float sum1 = 0.0f;
        for (std::size_t ll = 0; ll < L; ++ll) sum1 += Spre(r, jc + ll * s);
        const float dlin = Schk1(r, jc) - sum1;
        for (std::size_t ll = 0; ll < L; ++ll) {
          P(r, jc + ll * s) = std::exp(Spre(r, jc + ll * s) - mnew[r]);
        }
        if (std::fabs(dlin) > exp_log_threshold) {
          ++rep.uncorrectable;
        } else {
          ++rep.recomputed;
        }
      }
    }
  }
  return rep;
}

/// DMR replication of the EXP stage (Eq. 10): evaluate twice through the
/// fault hooks, retry until two consecutive evaluations agree.
std::size_t dmr_exp_block(MatrixF& S, const std::vector<float>& mnew,
                          float eps, fault::FaultInjector* inj,
                          std::size_t max_rounds = 4) {
  const std::size_t R = S.rows(), C = S.cols();
  auto eval = [&](MatrixF& dst) {
    for (std::size_t r = 0; r < R; ++r) {
      for (std::size_t c = 0; c < C; ++c) {
        dst(r, c) =
            fault::corrupt(inj, fault::Site::kExp, std::exp(S(r, c) - mnew[r]));
      }
    }
  };
  MatrixF a(R, C), b(R, C);
  eval(a);
  std::size_t recomputes = 0;
  for (std::size_t round = 1; round < max_rounds; ++round) {
    eval(b);
    ++recomputes;
    float diff = 0.0f;
    for (std::size_t i = 0; i < a.size(); ++i) {
      diff = std::max(diff, std::fabs(a.data()[i] - b.data()[i]));
    }
    if (diff < eps) {
      S = b;
      return recomputes - 1;  // agreement on the first re-evaluation is free
    }
    std::swap(a, b);
  }
  S = a;
  return recomputes;
}

FtReport efta_slice(const MatrixH& q, const MatrixH& k, const MatrixH& v,
                    Tensor4F& O, std::size_t bb, std::size_t hh,
                    const EftaOptions& opt, fault::FaultInjector* inj) {
  FtReport rep;
  const std::size_t seq = q.rows(), dim = q.cols();
  const std::size_t B = std::min(opt.block, seq);
  const std::size_t nblk = seq / B;
  const int s = opt.stride;
  const bool strided = opt.gemm == GemmProtect::kStrided;
  const bool element = opt.gemm == GemmProtect::kElement;
  const bool snvr = opt.softmax == SoftmaxProtect::kSNVR;
  const auto su = static_cast<std::size_t>(s);

  for (std::size_t i = 0; i < nblk; ++i) {
    const std::size_t r0 = i * B;
    const MatrixH qi = row_block(q, r0, B);

    std::vector<float> m(B, -std::numeric_limits<float>::infinity());
    std::vector<float> mnew(B);
    std::vector<float> l(B, 0.0f);
    MatrixF oacc(B, dim, 0.0f);
    MatrixF oc1(B, su, 0.0f), oc2(B, su, 0.0f);
    MatrixF blockmax(B, nblk);  // per-row history of block maxima (SNVR)

    std::size_t processed = 0;
    for (std::size_t j = 0; j < nblk; ++j) {
      const std::size_t c0 = j * B;
      if (opt.causal && c0 > r0 + B - 1) break;  // strictly above the diagonal
      const bool diagonal = opt.causal && j == i;
      ++processed;
      const MatrixH kj = row_block(k, c0, B);
      const MatrixH vj = row_block(v, c0, B);

      // ---- CCG + GEMM I (+ immediate verify in non-unified mode) ----
      MatrixF S(B, B);
      MatrixF schk1(B, su), schk2(B, su);
      MatrixH vc1, vc2;
      if (strided) {
        const MatrixH kc1 =
            abft::StridedAbft::encode_rows_strided(kj, s, false, inj);
        const MatrixH kc2 =
            abft::StridedAbft::encode_rows_strided(kj, s, true, inj);
        vc1 = abft::StridedAbft::encode_cols_strided(vj, s, false, inj);
        vc2 = abft::StridedAbft::encode_cols_strided(vj, s, true, inj);

        sim::gemm_fp16_nt(qi, kj, S);
        if (inj) {
          for (std::size_t r = 0; r < B; ++r) {
            for (std::size_t c = 0; c < B; ++c) {
              S(r, c) = inj->corrupt(fault::Site::kGemm1, S(r, c));
            }
          }
        }
        sim::gemm_fp16_nt(qi, kc1, schk1);
        sim::gemm_fp16_nt(qi, kc2, schk2);
        if (inj) {
          for (std::size_t r = 0; r < B; ++r) {
            for (std::size_t c = 0; c < su; ++c) {
              schk1(r, c) = inj->corrupt(fault::Site::kChecksum, schk1(r, c));
              schk2(r, c) = inj->corrupt(fault::Site::kChecksum, schk2(r, c));
            }
          }
        }
        if (!opt.unified_verification || diagonal) {
          // The causal mask destroys the checksum relation on the diagonal
          // block, so that block is always verified pre-mask.
          rep.gemm1 += abft::StridedAbft::verify_correct(
              S, schk1, schk2, s, opt.abft_rel_threshold);
        } else {
          // NVR on the scores: a non-finite or absurd score would poison the
          // running max and underflow the whole row before the deferred
          // EXP check could see it.  Range violations trigger an immediate
          // checksum repair (scores from post-layernorm fp16 inputs are
          // bounded far below score_bound).
          bool out_of_range = false;
          for (std::size_t r = 0; r < B && !out_of_range; ++r) {
            for (std::size_t c = 0; c < B; ++c) {
              const float v = S(r, c);
              if (!std::isfinite(v) || std::fabs(v) > opt.score_bound) {
                out_of_range = true;
                break;
              }
            }
          }
          if (out_of_range) {
            rep.gemm1 += abft::StridedAbft::verify_correct(
                S, schk1, schk2, s, opt.abft_rel_threshold);
          }
        }
      } else if (element) {
        rep.gemm1 += abft::ElementAbft::gemm_nt(
            qi, kj, S, opt.abft_rel_threshold, inj, fault::Site::kGemm1);
      } else {
        sim::gemm_fp16_nt(qi, kj, S);
        if (inj) {
          for (std::size_t r = 0; r < B; ++r) {
            for (std::size_t c = 0; c < B; ++c) {
              S(r, c) = inj->corrupt(fault::Site::kGemm1, S(r, c));
            }
          }
        }
      }

      if (diagonal) {
        for (std::size_t r = 0; r < B; ++r) {
          for (std::size_t c = 0; c < B; ++c) {
            if (c0 + c > r0 + r) {
              S(r, c) = -std::numeric_limits<float>::infinity();
            }
          }
        }
      }

      // ---- reduce-max (Case 1: errors cancel through the rescale) ----
      for (std::size_t r = 0; r < B; ++r) {
        float bmax = -std::numeric_limits<float>::infinity();
        for (std::size_t c = 0; c < B; ++c) bmax = std::max(bmax, S(r, c));
        bmax = fault::corrupt(inj, fault::Site::kReduceMax, bmax);
        blockmax(r, j) = bmax;
        mnew[r] = std::max(m[r], bmax);
      }

      // ---- EXP (with SNVR checksum reuse or DMR replication) ----
      MatrixF spre;
      const bool keep_spre = strided && snvr && !diagonal;
      if (keep_spre) spre = S;

      if (opt.softmax == SoftmaxProtect::kDMR) {
        rep.dmr_recomputes += dmr_exp_block(S, mnew, opt.dmr_eps, inj);
      } else {
        for (std::size_t r = 0; r < B; ++r) {
          for (std::size_t c = 0; c < B; ++c) {
            S(r, c) = fault::corrupt(inj, fault::Site::kExp,
                                     std::exp(S(r, c) - mnew[r]));
          }
        }
      }
      if (keep_spre) {
        rep.exp_check += verify_exp_block(S, spre, schk1, schk2, mnew, s,
                                          opt.exp_log_threshold);
      }

      // ---- rescale + reduce-sum ----
      std::vector<float> f(B);
      for (std::size_t r = 0; r < B; ++r) {
        f[r] = std::exp(m[r] - mnew[r]);  // exp(-inf) == 0 on first block
        for (std::size_t c = 0; c < dim; ++c) {
          oacc(r, c) = fault::corrupt(inj, fault::Site::kRescale,
                                      f[r] * oacc(r, c));
        }
        if (strided) {
          for (std::size_t jc = 0; jc < su; ++jc) {
            oc1(r, jc) = fault::corrupt(inj, fault::Site::kChecksum,
                                        f[r] * oc1(r, jc));
            oc2(r, jc) = fault::corrupt(inj, fault::Site::kChecksum,
                                        f[r] * oc2(r, jc));
          }
        }
        float rowsum = 0.0f;
        for (std::size_t c = 0; c < B; ++c) rowsum += S(r, c);
        rowsum = fault::corrupt(inj, fault::Site::kReduceSum, rowsum);
        l[r] = f[r] * l[r] + rowsum;
        m[r] = mnew[r];
      }

      // ---- GEMM II ----
      if (element) {
        // Classic checksums cannot ride the per-row rescale, so traditional
        // ABFT must verify each product P_ij V_j before accumulation.
        MatrixF t(B, dim);
        MatrixF p_chk(2, B);
        for (std::size_t kk = 0; kk < B; ++kk) {
          float s1 = 0.0f, s2 = 0.0f;
          for (std::size_t r = 0; r < B; ++r) {
            const float pv = numeric::round_to_half(S(r, kk));
            s1 += pv;
            s2 += static_cast<float>(r + 1) * pv;
          }
          p_chk(0, kk) = fault::corrupt(inj, fault::Site::kChecksum, s1);
          p_chk(1, kk) = fault::corrupt(inj, fault::Site::kChecksum, s2);
        }
        sim::gemm_f32h_nn(S, vj, t);
        if (inj) {
          for (std::size_t r = 0; r < B; ++r) {
            for (std::size_t c = 0; c < dim; ++c) {
              t(r, c) = inj->corrupt(fault::Site::kGemm2, t(r, c));
            }
          }
        }
        MatrixF col_chk(2, dim);
        sim::gemm_f32h_nn(p_chk, vj, col_chk);
        rep.gemm2 += abft::ElementAbft::verify_correct(t, col_chk,
                                                       opt.abft_rel_threshold);
        for (std::size_t r = 0; r < B; ++r) {
          for (std::size_t c = 0; c < dim; ++c) oacc(r, c) += t(r, c);
        }
      } else {
        sim::gemm_f32h_nn(S, vj, oacc, /*accumulate=*/true);
        if (inj) {
          for (std::size_t r = 0; r < B; ++r) {
            for (std::size_t c = 0; c < dim; ++c) {
              oacc(r, c) = inj->corrupt(fault::Site::kGemm2, oacc(r, c));
            }
          }
        }
        if (strided) {
          sim::gemm_f32h_nn(S, vc1, oc1, /*accumulate=*/true);
          sim::gemm_f32h_nn(S, vc2, oc2, /*accumulate=*/true);
          if (inj) {
            for (std::size_t r = 0; r < B; ++r) {
              for (std::size_t jc = 0; jc < su; ++jc) {
                oc1(r, jc) = inj->corrupt(fault::Site::kChecksum, oc1(r, jc));
                oc2(r, jc) = inj->corrupt(fault::Site::kChecksum, oc2(r, jc));
              }
            }
          }
          if (!opt.unified_verification) {
            rep.gemm2 += abft::StridedAbft::verify_correct(
                oacc, oc1, oc2, s, opt.abft_rel_threshold);
          }
        }
      }

      // ---- per-iteration SNVR range check (non-unified mode) ----
      if (snvr && !opt.unified_verification) {
        for (std::size_t r = 0; r < B; ++r) {
          const auto hist = std::span<const float>(&blockmax(r, 0), j + 1);
          const std::size_t visible =
              opt.causal ? std::min((j + 1) * B, r0 + r + 1) : (j + 1) * B;
          const auto res = softmax::snvr_check_rowsum(
              l[r], hist, m[r], visible, opt.snvr_slack);
          if (res.violated) {
            l[r] = res.corrected_value;
            ++rep.range_corrections;
          }
        }
      }
    }  // j loop

    // ---- final SNVR range restriction (Algorithm 1 lines 22-24) ----
    if (snvr && opt.unified_verification) {
      for (std::size_t r = 0; r < B; ++r) {
        const auto hist = std::span<const float>(&blockmax(r, 0), processed);
        const std::size_t visible = opt.causal ? (r0 + r + 1) : seq;
        const auto res = softmax::snvr_check_rowsum(l[r], hist, m[r], visible,
                                                    opt.snvr_slack);
        if (res.violated) {
          l[r] = res.corrected_value;
          ++rep.range_corrections;
        }
      }
    }

    // ---- normalization (rides the O checksum) ----
    for (std::size_t r = 0; r < B; ++r) {
      const float inv = 1.0f / l[r];
      for (std::size_t c = 0; c < dim; ++c) {
        oacc(r, c) =
            fault::corrupt(inj, fault::Site::kRescale, oacc(r, c) * inv);
      }
      if (strided) {
        for (std::size_t jc = 0; jc < su; ++jc) {
          oc1(r, jc) *= inv;
          oc2(r, jc) *= inv;
        }
      }
    }

    // ---- final unified verification of GEMM II + rescale + normalize ----
    if (strided) {
      rep.gemm2 += abft::StridedAbft::verify_correct(oacc, oc1, oc2, s,
                                                     opt.abft_rel_threshold);
    }

    for (std::size_t r = 0; r < B; ++r) {
      for (std::size_t c = 0; c < dim; ++c) {
        O.at(bb, hh, r0 + r, c) = oacc(r, c);
      }
    }
  }  // i loop
  return rep;
}

}  // namespace

FtReport efta_attention(const Tensor4H& Q, const Tensor4H& K,
                        const Tensor4H& V, Tensor4F& O, const EftaOptions& opt,
                        fault::FaultInjector* inj) {
  const float scale = 1.0f / std::sqrt(static_cast<float>(Q.dim()));
  const std::size_t slices = Q.batch() * Q.heads();
  const std::size_t B = std::min(opt.block, Q.seq());
  if (Q.seq() % B != 0 || B % static_cast<std::size_t>(opt.stride) != 0 ||
      Q.dim() % static_cast<std::size_t>(opt.stride) != 0) {
    throw std::invalid_argument(
        "efta_attention: seq must be a multiple of block, and block/dim "
        "multiples of the checksum stride");
  }
  FtReport total;

  if (inj) {
    // Per-call delta, not the injector's lifetime total: reports from
    // consecutive calls sharing one injector (e.g. Model::forward summing
    // per-block reports) must merge without double counting.
    const std::size_t before = inj->injected();
    for (std::size_t sl = 0; sl < slices; ++sl) {
      const std::size_t b = sl / Q.heads(), h = sl % Q.heads();
      total += efta_slice(load_slice(Q, b, h, scale), load_slice(K, b, h),
                          load_slice(V, b, h), O, b, h, opt, inj);
    }
    total.faults_injected = inj->injected() - before;
    return total;
  }

#pragma omp parallel
  {
    FtReport local;
#pragma omp for schedule(dynamic) nowait
    for (std::size_t sl = 0; sl < slices; ++sl) {
      const std::size_t b = sl / Q.heads(), h = sl % Q.heads();
      local += efta_slice(load_slice(Q, b, h, scale), load_slice(K, b, h),
                          load_slice(V, b, h), O, b, h, opt, nullptr);
    }
#pragma omp critical
    total += local;
  }
  return total;
}

EftaOverheadByTarget efta_overhead_by_target(const AttnShape& shape,
                                             const EftaOptions& opt) {
  EftaOverheadByTarget t;
  const double S = static_cast<double>(shape.seq);
  const double D = static_cast<double>(shape.dim);
  const double B = static_cast<double>(std::min(opt.block, shape.seq));
  const double s = opt.stride;
  const double slices = static_cast<double>(shape.slices());
  const double nblk = S / B;
  const double pairs = nblk * nblk;

  if (opt.gemm == GemmProtect::kStrided) {
    // --- QK^T protection ---
    // K c1/c2 encode (strided row sums, intra-thread).
    t.qkt[sim::Phase::kChecksumGen].fp32_flops = slices * pairs * 4.0 * B * D;
    // S checksum GEMM: two s-wide virtual-row blocks.
    t.qkt[sim::Phase::kGemm].tc_flops = slices * pairs * 4.0 * B * s * D;
    if (!opt.unified_verification) {
      // Per-iteration linear S verification (one sync point per tile pass).
      t.qkt[sim::Phase::kVerify].fp32_flops =
          slices * pairs * (2.0 * B * B + B * s);
      t.qkt[sim::Phase::kVerify].syncs = slices * pairs;
    }

    // --- PV (+rescale +normalize) protection ---
    t.pv[sim::Phase::kChecksumGen].fp32_flops = slices * pairs * 4.0 * B * D;
    t.pv[sim::Phase::kGemm].tc_flops = slices * pairs * 4.0 * B * s * B;
    t.pv[sim::Phase::kRescale].fp32_flops = slices * pairs * 2.0 * B * s;
    if (!opt.unified_verification) {
      t.pv[sim::Phase::kVerify].fp32_flops =
          slices * pairs * (2.0 * B * D + B * s);
      t.pv[sim::Phase::kVerify].syncs = slices * pairs;
    }
    // Final O verification once per row block (both modes).
    t.pv[sim::Phase::kVerify].fp32_flops +=
        slices * nblk * (2.0 * B * D + B * s);
    t.pv[sim::Phase::kVerify].syncs += slices * nblk;
  } else if (opt.gemm == GemmProtect::kElement) {
    // Traditional element checksums: cross-thread sums charged as shuffles.
    auto& g1 = t.qkt[sim::Phase::kChecksumGen];
    g1.fp32_flops = slices * pairs * 4.0 * B * D;
    g1.shuffles = slices * pairs * 2.0 * B * D;
    t.qkt[sim::Phase::kGemm].tc_flops = slices * pairs * 4.0 * D * B;
    t.qkt[sim::Phase::kVerify].fp32_flops = slices * pairs * 4.0 * B * B;
    t.qkt[sim::Phase::kVerify].shuffles = slices * pairs * 2.0 * B * B;
    t.qkt[sim::Phase::kVerify].syncs = slices * pairs;

    auto& g2 = t.pv[sim::Phase::kChecksumGen];
    g2.fp32_flops = slices * pairs * 4.0 * B * B;
    g2.shuffles = slices * pairs * 2.0 * B * B;
    t.pv[sim::Phase::kGemm].tc_flops = slices * pairs * 4.0 * B * D;
    t.pv[sim::Phase::kVerify].fp32_flops = slices * pairs * 4.0 * B * D;
    t.pv[sim::Phase::kVerify].shuffles = slices * pairs * 2.0 * B * D;
    t.pv[sim::Phase::kVerify].syncs = slices * pairs;
  }

  // --- softmax protection ---
  if (opt.softmax == SoftmaxProtect::kDMR) {
    auto& d = t.softmax[sim::Phase::kDmr];
    d.sfu_ops = slices * pairs * B * B;           // replica EXP
    d.fp32_flops = slices * pairs * 4.0 * B * B;  // replica adds + compare
    d.syncs = slices * pairs;                     // the agreement check
  } else if (opt.softmax == SoftmaxProtect::kSNVR) {
    auto& v = t.softmax[sim::Phase::kVerify];
    if (opt.gemm == GemmProtect::kStrided) {
      // Case-2 checksum-reuse product check, per iteration in both modes
      // (P is consumed in place): one multiply per element to form the
      // residue-class products, one exp per class for the checksum side,
      // and s compares per row.  This is what makes SNVR far cheaper than
      // DMR's full EXP replica.  (The host implementation evaluates the
      // same relation in the log domain for numerical robustness; the op
      // count modeled here is the paper's product scheme.)
      v.fp32_flops += slices * pairs * (B * B + 2.0 * B * s);
      v.sfu_ops += slices * pairs * B * s;
      v.syncs += slices * pairs;
    }
    // Case-3 range restriction.
    if (!opt.unified_verification) {
      // "CCV and NVR are performed simultaneously" — the per-iteration range
      // check shares the product check's sync point, so it adds flops only.
      v.fp32_flops += slices * pairs * B;
      v.sfu_ops += slices * pairs * B;  // incremental lower bound
    }
    v.sfu_ops += slices * S * nblk;  // final bound: exp over max history
    v.fp32_flops += slices * 2.0 * S;
  }
  return t;
}

sim::CostBreakdown efta_protection_costs(const AttnShape& shape,
                                         const EftaOptions& opt) {
  return efta_overhead_by_target(shape, opt).total();
}

sim::CostBreakdown efta_costs(const AttnShape& shape, const EftaOptions& opt) {
  return attention::flash_attention_costs(shape, opt.block) +
         efta_protection_costs(shape, opt);
}

sim::CostBreakdown efta_decode_block_costs(std::size_t context,
                                           std::size_t rows, std::size_t dim,
                                           const EftaOptions& opt) {
  sim::CostBreakdown b;
  constexpr double B = 64.0;  // KvSlice::kTileRows
  const double n = static_cast<double>(context);
  const double R = static_cast<double>(rows);
  const double D = static_cast<double>(dim);
  const double s = opt.stride;
  const double nblk = std::ceil(n / B);

  // Payload: per tile, the R x B score GEMM and the R x D PV GEMM; loads of
  // the K/V tiles and the chunk's q rows; EXP over the visible lanes
  // (bounded above by R*B per tile).
  b[sim::Phase::kMemory].hbm_bytes = nblk * 2.0 * B * D * 2.0 + R * D * 2.0;
  b[sim::Phase::kGemm].tc_flops = nblk * (2.0 * R * B * D + 2.0 * R * B * D);
  b[sim::Phase::kSoftmax].sfu_ops = nblk * R * B;
  b[sim::Phase::kRescale].fp32_flops = nblk * R * (D + 2.0 * B + 2.0);

  // Protection: K row / V column checksum encodes once per tile per chunk
  // (the amortization over decode, which pays them once per *token*), the
  // s-wide checksum GEMMs riding both payload GEMMs, the per-tile linear S
  // verify, the per-row EXP product check, and the final O verify.
  b[sim::Phase::kChecksumGen].fp32_flops = nblk * 8.0 * B * D;
  b[sim::Phase::kGemm].tc_flops += nblk * (4.0 * R * s * D + 4.0 * R * s * B);
  b[sim::Phase::kVerify].fp32_flops =
      nblk * R * (2.0 * B + s) +         // linear S verify per tile
      nblk * R * (B + 2.0 * s) +         // EXP product check per row
      R * (2.0 * D + s) +                // final unified O verify
      2.0 * R;                           // SNVR rowsum bound compare
  b[sim::Phase::kVerify].sfu_ops = R * nblk;  // SNVR bound: exp over maxima
  b[sim::Phase::kVerify].syncs = nblk + 1.0;
  return b;
}

}  // namespace ftt::core
