#pragma once
// Protected single-token decode: the autoregressive inference step the
// paper's introduction motivates ("generating a single token in GPT-4
// requires 560 GFLOPs and billions of tokens are produced each day").
//
// One new query row attends over the cached K/V of the context.  The same
// hybrid scheme applies, specialized to a 1 x n score row: strided tensor
// checksums per 64-row KV tile protect q·K^T, the checksum is reused through
// subtract-max + EXP (log-domain product check), the rowsum is range
// restricted, and the 1 x d output carries V column checksums through the
// final normalization.

#include <span>

#include "attention/ft_report.hpp"
#include "core/efta.hpp"

namespace ftt::core {

/// One protected decode step for a single head.
/// `k_cache`/`v_cache`: n x d fp16 (n a multiple of 64); `q`: d fp16 values;
/// `out`: d floats.  Scaling by 1/sqrt(d) is applied internally.
attention::FtReport efta_decode_step(const tensor::MatrixH& k_cache,
                                     const tensor::MatrixH& v_cache,
                                     std::span<const numeric::Half> q,
                                     std::span<float> out,
                                     const EftaOptions& opt = {},
                                     fault::FaultInjector* inj = nullptr);

}  // namespace ftt::core
