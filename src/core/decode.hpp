#pragma once
// Protected cache-backed decode: the autoregressive inference step the
// paper's introduction motivates ("generating a single token in GPT-4
// requires 560 GFLOPs and billions of tokens are produced each day").
//
// The unit of work is a *query block* of 1..64 rows attending over the
// cached K/V of one (request, head) slice, causally masked inside the
// block.  The same hybrid scheme applies per row: strided tensor checksums
// per 64-row KV tile protect q·K^T, the checksum is reused through
// subtract-max + EXP (log-domain product check), the rowsum is range
// restricted, and the output rows carry V column checksums through the
// final normalization — with the per-tile loads, widenings and checksum
// encodes amortized across the whole block.
//
// One kernel, three workloads, all the same DecodeWorkItem:
//
//   q_len = 1      single-token decode — the classic serving step;
//   q_len = k+1    speculative decode — one committed row plus k drafted
//                  candidates scored in one pass (the engine accepts the
//                  longest bit-matching prefix and rolls the rest back);
//   q_len = 64     chunked prefill — a prompt chunk absorbed per tick.
//
// Each output row is bit-identical to running efta_decode_step token by
// token over the same prefix (tests/test_serve.cpp pins this down), which
// is what makes engine-level speculation safe: an accepted draft's hidden
// state *is* the serial result, verified through the same checksummed
// arithmetic.
//
// Context lengths are arbitrary: a ragged final tile (n % 64 != 0) is
// zero-padded to the full 64-row checksum footprint.  Padded K rows produce
// exactly-zero scores (fp16 MACs against zero operands), so the strided
// checksum relation and the EXP product check hold over the padded lanes,
// which are then excluded from the softmax reduction and carry zero weight
// into GEMM II.  Lanes beyond a block row's causal horizon are handled by
// the same convention.
//
// The batch entry point runs many independent (request, head) blocks
// through the kernel, OpenMP-parallel with per-item FtReport aggregation —
// the unit of work a batched serving engine schedules per tick.

#include <cstdint>
#include <span>
#include <utility>

#include "attention/ft_report.hpp"
#include "core/efta.hpp"

namespace ftt::core {

/// Storage format of one sealed KV context tile.  kF16 is the native fp16
/// slab; kI8 is the quantized tile format (serve::TilePool seal-time
/// quantization): int8 payload with a per-tile power-of-two scale, exact
/// int32 integer checksums at rest, and sealed fp16 encodings of the
/// (exactly) dequantized payload for the decode-time ABFT GEMMs.
enum class TileFmt : std::uint8_t { kF16 = 0, kI8 = 1 };

/// Seal-time image memo policy for fp16 (kF16) tiles.  Images are operand
/// layouts pre-baked at seal so a clean decode tick does no per-call packing:
///   kNone — no image; decode widens/packs per tile per call.
///   kF16T — pre-transposed *fp16* image: [K^T d x 64 | Kc1^T d x s |
///           Kc2^T d x s] halves.  The K side lands in the fused fp16-operand
///           kernels' native k-major layout at half width (~1.5x the bare
///           slab instead of kF32's 3x); the V side needs no image at all —
///           V and its column checksums are already row-major streams for
///           axpy_f32_h.  Default: halves the decode memory stream.
///   kF32  — the widened fp32 image (PR 7 layout, 2x KV bytes on top of the
///           slab); kept for A/B and for scrub paths that want exact-narrow
///           payload restore of both operands.
/// Exactness of fp16->fp32 widening makes all three policies bit-identical
/// in decode output.
enum class ImagePolicy : std::uint8_t { kNone = 0, kF16T = 1, kF32 = 2 };

/// Read-only tiled view of one (request, head) KV slice.  Tile t holds rows
/// [64t, min(64(t+1), n)) of the logical n x d cache, row-major, in storage
/// of 64 x d halves; rows past the valid count must not be read (the kernel
/// zero-pads its working tile instead).  This is the natural shape of a
/// growable KV cache that appends in 64-row tiles without relocating old
/// rows — and, just as deliberately, of a *paged* cache whose block table
/// maps context tiles to pooled storage (serve::TilePool): the per-tile
/// pointer indirection means the kernel never distinguishes private,
/// pooled or prefix-shared tiles, so paging and sharing are invisible to
/// the verified decode path and cannot perturb its bit-identity
/// guarantees.
struct KvSlice {
  static constexpr std::size_t kTileRows = 64;

  const numeric::Half* const* k_tiles = nullptr;
  const numeric::Half* const* v_tiles = nullptr;
  std::size_t n = 0;  ///< valid context rows
  std::size_t d = 0;  ///< head dimension

  /// Optional memoized per-tile checksum encodings (serve::KvCache and
  /// serve::TilePool compute them once when a tile seals; full tiles are
  /// immutable so they are never invalidated, and a prefix-shared pool tile
  /// shares its sealed encodings with every request that maps it).  Each
  /// array has tiles() entries; k_c1/k_c2 point at
  /// enc_stride x d row checksums and v_c1/v_c2 at kTileRows x enc_stride
  /// column checksums, all row-major fp16.  Entries for the unsealed ragged
  /// tail are null.  The kernel consumes them on clean runs when enc_stride
  /// matches its own stride option; an armed (or probing) fault injector
  /// forces fresh per-call encodes so campaign hook counts stay stable.
  const numeric::Half* const* k_c1 = nullptr;
  const numeric::Half* const* k_c2 = nullptr;
  const numeric::Half* const* v_c1 = nullptr;
  const numeric::Half* const* v_c2 = nullptr;
  int enc_stride = 0;  ///< checksum stride the encodings were built with

  /// Optional memoized widened-fp32 image per sealed tile (the 2x-KV-memory
  /// option on serve::KvCache / serve::TilePool).  Entry j, when non-null,
  /// packs six fp32 operand blocks back to back, pre-laid-out for the GEMM
  /// kernels so a clean decode tick does no widening and no packing at all:
  ///   [ K^T  d x 64 (k-major) | V  64 x d | Kc1^T d x s | Kc2^T d x s |
  ///     Vc1 64 x s | Vc2 64 x s ]
  /// with s == enc_stride.  Widening is exact and transposition is pure data
  /// movement, so consuming the image is bit-identical to widening the fp16
  /// tile and encodings per call.  Same gating as the encodings: entries for
  /// unsealed tiles are null and an armed injector bypasses the memo.
  const float* const* f32 = nullptr;

  /// Optional memoized pre-transposed *fp16* image per sealed tile (the
  /// kF16T policy, ~1.5x slab bytes).  Entry j, when non-null, packs three
  /// Half blocks back to back:
  ///   [ K^T  d x 64 (k-major) | Kc1^T d x s | Kc2^T d x s ]
  /// with s == enc_stride.  The fused fp16-operand kernels widen these in
  /// registers (exact), so consuming the image is bit-identical to the fp32
  /// image and to per-call widening; the V operands stream straight from
  /// v_tiles / v_c1 / v_c2, which are already in axpy-native row-major
  /// layout.  Assigned by name after aggregate init (it sits past the
  /// positional members older call sites fill).  Same gating as f32: null
  /// for unsealed tiles, bypassed under an armed injector; when both images
  /// are present the f32 image wins (widest preplanned operand).
  const numeric::Half* const* f16t = nullptr;

  /// Optional per-tile storage formats (null == every tile is kF16, the
  /// layout every field above describes).  A kI8 tile streams its payload
  /// from k_i8/v_i8 instead of k_tiles/v_tiles (which are null for it) and
  /// widens by exact dequantization — k_scale/v_scale hold the per-tile
  /// power-of-two scales, so q * scale is exact and the decode GEMMs keep
  /// every bit-identity contract.  Layouts are GEMM-native: k_i8[j] is the
  /// *k-major* K^T (d x 64) the fused score GEMM consumes directly, v_i8[j]
  /// is row-major V (64 x d) for GEMM II's axpy, and the tile's k_c1/k_c2
  /// memo entries point at *transposed* (d x enc_stride) fp16 blocks —
  /// mirroring the fp32 image's Kc^T blocks — while v_c1/v_c2 keep the
  /// row-major shape above.  The sealed encodings of an int8 tile are the
  /// fp16 encodings of its dequantized payload (bit-equal to a fresh encode
  /// of the dequantized image).  Only sealed full tiles are ever kI8; the
  /// ragged open tail stays fp16.
  const TileFmt* fmt = nullptr;
  const std::int8_t* const* k_i8 = nullptr;
  const std::int8_t* const* v_i8 = nullptr;
  const float* k_scale = nullptr;  ///< per-tile K scales (power of two)
  const float* v_scale = nullptr;  ///< per-tile V scales (power of two)

  [[nodiscard]] std::size_t tiles() const noexcept {
    return (n + kTileRows - 1) / kTileRows;
  }
};

/// One (request, head) query block of a batched step: the last `q_len` rows
/// of the context attend over `kv`, causally masked inside the block.  The
/// cache must already hold the block's own K/V rows, so the block occupies
/// global positions [kv.n - q_len, kv.n): row r of the block sees exactly
/// rows [0, kv.n - q_len + r] of the cache — its causal prefix, itself
/// included — making each output row bit-identical to feeding the block
/// token by token through efta_decode_step.
///
/// q/out address q_len x d values laid out with a row stride (in elements)
/// of q_stride/out_stride; 0 means densely packed (stride == d).  Strided
/// rows let a serving engine hand head-segments of a stacked hidden matrix
/// to the kernel without gather/scatter copies.
struct DecodeWorkItem {
  KvSlice kv;
  const numeric::Half* q = nullptr;
  float* out = nullptr;
  std::size_t q_len = 1;  ///< 1..64 query rows (1 = plain decode)
  std::size_t q_stride = 0;
  std::size_t out_stride = 0;
};

/// One protected query block for a single head.  Scaling by 1/sqrt(d) is
/// applied internally.  The report covers the whole block — one FtReport
/// witnesses every row, exactly like the per-tile block verifies inside —
/// and `faults_injected` counts only the flips placed during this call
/// (delta, not the injector's lifetime total), matching the batch entry's
/// per-item accounting.
attention::FtReport efta_decode_block(const DecodeWorkItem& item,
                                      const EftaOptions& opt = {},
                                      fault::FaultInjector* inj = nullptr);

/// One protected decode step (q_len = 1 convenience) for a single head over
/// a tiled KV view: the new token at position n-1 attends the whole cache.
attention::FtReport efta_decode_step(const KvSlice& kv,
                                     std::span<const numeric::Half> q,
                                     std::span<float> out,
                                     const EftaOptions& opt = {},
                                     fault::FaultInjector* inj = nullptr);

/// Convenience overload over contiguous n x d caches (any n >= 1).
attention::FtReport efta_decode_step(const tensor::MatrixH& k_cache,
                                     const tensor::MatrixH& v_cache,
                                     std::span<const numeric::Half> q,
                                     std::span<float> out,
                                     const EftaOptions& opt = {},
                                     fault::FaultInjector* inj = nullptr);

/// Protected decode for a whole batch of independent (request, head) query
/// blocks with heterogeneous context lengths and block sizes — single-token
/// decode rows, speculative k-row blocks and 64-row prefill chunks mix
/// freely in one call.  Items are OpenMP-parallel when `inj` is null; any
/// injector — armed, or an unarmed probe counting per-site calls() — is
/// stateful and forces the serial path, matching `efta_decode_block`.
/// Per-item reports are written to `per_item` when provided (size must
/// match) and merged into the returned aggregate; each item's
/// `faults_injected` counts only the flips placed while that item ran.  An
/// empty batch returns a zeroed report without entering an OpenMP region.
attention::FtReport efta_decode_batch(
    std::span<const DecodeWorkItem> items, const EftaOptions& opt = {},
    fault::FaultInjector* inj = nullptr,
    std::span<attention::FtReport> per_item = {});

/// Even contiguous split of `total` units (heads, rows, checksum tiles)
/// across `nshards`: shard i owns [first, second) and range sizes differ by
/// at most one, so any unit count — including total < nshards, where the
/// trailing shards own empty ranges — partitions cleanly.  Throws when
/// shard >= nshards or nshards == 0.
[[nodiscard]] std::pair<std::size_t, std::size_t> shard_range(
    std::size_t shard, std::size_t nshards, std::size_t total);

/// Contiguous attention-head range [begin_head, end_head) owned by one
/// shard worker of a sharded serving tick.  Work items are per (request,
/// head) and fully independent, so a head-range partition of a batch is
/// bit-invariant: the union of the shards' outputs and the merge of their
/// reports equal the unsharded batch exactly, for any shard count.
struct ShardSpec {
  std::size_t begin_head = 0;
  std::size_t end_head = 0;  ///< exclusive; == begin_head for an empty shard

  [[nodiscard]] bool contains(std::size_t head) const noexcept {
    return head >= begin_head && head < end_head;
  }
  [[nodiscard]] std::size_t heads() const noexcept {
    return end_head - begin_head;
  }
  [[nodiscard]] bool empty() const noexcept { return end_head <= begin_head; }

  /// The even contiguous partition of `total_heads` across `nshards`
  /// (shard_range above); shards past the head count own empty ranges.
  static ShardSpec for_shard(std::size_t shard, std::size_t nshards,
                             std::size_t total_heads);
};

/// Head-range view of a batch: runs exactly the items whose owning head
/// (item_heads[i], parallel to `items`) falls inside `shard`, serially on
/// the calling thread — the thread-level parallelism of a sharded tick is
/// the shard workers themselves, so the kernel must not open a nested
/// OpenMP team (oversubscription, and raw-thread callers stay
/// ThreadSanitizer-clean).  Covered items' `per_item` slots are written;
/// uncovered slots are left untouched, so N shards with disjoint specs fill
/// one shared per-item array without overlap and the slot-wise sum of their
/// returned reports equals the unsharded batch report.  Item validation
/// covers only the shard's own items.
attention::FtReport efta_decode_batch(
    std::span<const DecodeWorkItem> items,
    std::span<const std::size_t> item_heads, const ShardSpec& shard,
    const EftaOptions& opt = {}, fault::FaultInjector* inj = nullptr,
    std::span<attention::FtReport> per_item = {});

namespace testing {
/// Thread-local count of KV tiles the kernel has pad-and-copied into scratch
/// since thread start.  Full tiles are consumed zero-copy, so only a ragged
/// tail tile may ever bump this — the property the zero-copy unit test pins
/// down.  Test-only observability; not part of the serving API.
std::size_t& tiles_materialized() noexcept;
}  // namespace testing

}  // namespace ftt::core
