#pragma once
// End-to-End Fault Tolerant Attention (EFTA) — the paper's core contribution
// (§3.2-3.4, Figs. 4-5, Algorithm 1).
//
// One fused kernel streams K/V blocks against each Q row-block, exactly like
// flash attention, and carries fault tolerance *through* the computation:
//
//   GEMM I     S_ij = Q_i K_j^T          strided tensor checksums ride the
//   subtract   S_ij - m_ij                same per-row checksum (linear)
//   EXP        P_ij = exp(...)            multiplicative checksum relation
//   GEMM II    O_i += P_ij V_j            V column checksums; per-row scaling
//   rescale    diag(e^{m_old-m_new}) O_i  commutes with row checksums
//   reduce-sum l_ij                       SNVR range restriction (Case 3)
//   normalize  O_i / l_i                  rides the O checksum
//
// Because the tensor checksums are *per row*, the diagonal rescale and the
// final 1/l normalization commute with them — this is what lets one checksum
// witness GEMM II + rescale + normalization end-to-end (Algorithm 1, lines
// 18-28), which classic column checksums cannot do (each row is scaled by a
// different factor, breaking any sum across rows).
//
// `unified_verification = false` gives the per-iteration-verify EFTA of
// Tables 1-2 (left columns); `true` gives EFTA-optimized: the P check stays
// per-iteration (P is consumed in place by GEMM II, so its errors must not
// propagate — Algorithm 1 line 13), but the O checksum and the rowsum range
// are checked once after the loop.

#include "attention/attention.hpp"
#include "attention/ft_report.hpp"
#include "fault/fault.hpp"

namespace ftt::core {

/// Which ABFT scheme protects the two GEMMs (Fig. 11 comparison).
enum class GemmProtect {
  kNone,     ///< unprotected (pure flash attention)
  kStrided,  ///< tensor checksums, intra-thread (the paper's design)
  kElement,  ///< classic element checksums (traditional ABFT)
};

/// How the softmax chain is protected (Fig. 13 comparison).
enum class SoftmaxProtect {
  kNone,
  kSNVR,  ///< checksum reuse for EXP + range restriction for rowsum
  kDMR,   ///< duplicated block-softmax evaluation
};

struct EftaOptions {
  std::size_t block = 64;  ///< B_r = B_c tile size along seq_len
  int stride = 8;          ///< checksum width s (the MMA atom's N)
  /// Decoder (causal) masking.  Off-diagonal blocks keep full protection;
  /// the diagonal block is linearly verified *before* masking (the mask
  /// breaks the checksum relation), and its EXP check is skipped.
  bool causal = false;
  GemmProtect gemm = GemmProtect::kStrided;
  SoftmaxProtect softmax = SoftmaxProtect::kSNVR;
  bool unified_verification = false;  ///< EFTA-optimized (Algorithm 1)
  float abft_rel_threshold = 0.02f;  ///< L1-relative checksum compare (Fig. 12 sweep)
  /// Absolute residual threshold of the log-domain EXP product check: the
  /// residual equals the score perturbation itself, so this bounds the
  /// worst undetected attention-weight distortion to e^threshold (Fig. 14).
  float exp_log_threshold = 0.1f;
  /// NVR bound on |score|: post-layernorm fp16 inputs cannot produce scores
  /// beyond a few hundred, so values past this are compute faults and trigger
  /// checksum repair *before* the running max is poisoned.
  float score_bound = 1e4f;
  float dmr_eps = 1e-3f;
  float snvr_slack = 1e-3f;
  /// Software-prefetch the next KV tile's payload stream in the per-tile
  /// decode loop.  Pure hint (no semantic effect — bit-identity contracts
  /// hold either way); exposed so benches can measure the delta.
  bool prefetch = true;
};

/// Run EFTA.  O receives the normalized attention output in fp32.  When
/// `inj` is armed the kernel runs serially (the injector is deterministic and
/// stateful); otherwise slices are OpenMP-parallel.
attention::FtReport efta_attention(const tensor::Tensor4H& Q,
                                   const tensor::Tensor4H& K,
                                   const tensor::Tensor4H& V,
                                   tensor::Tensor4F& O,
                                   const EftaOptions& opt = {},
                                   fault::FaultInjector* inj = nullptr);

/// Protection overhead split by protected target, matching the paper's
/// breakdown figures: Fig. 10 stacks QK^T / softmax / PV protection, Fig. 11
/// compares ABFT variants (qkt + pv only), Fig. 13 compares softmax
/// protection (softmax only).
struct EftaOverheadByTarget {
  sim::CostBreakdown qkt;      ///< K encode + S checksum GEMM + S verify
  sim::CostBreakdown softmax;  ///< EXP product check, range checks, DMR
  sim::CostBreakdown pv;       ///< V encode + O checksum GEMM/rescale/verify
  [[nodiscard]] sim::CostBreakdown total() const { return qkt + softmax + pv; }
};
EftaOverheadByTarget efta_overhead_by_target(const attention::AttnShape& s,
                                             const EftaOptions& opt);

/// Modeled cost of the *protection only* (CCG + checksum GEMM + CCV/NVR +
/// DMR), phase-split per Fig. 5.  Add `flash_attention_costs` for the total.
sim::CostBreakdown efta_protection_costs(const attention::AttnShape& s,
                                         const EftaOptions& opt);

/// Full modeled cost: unprotected flash attention + protection.
sim::CostBreakdown efta_costs(const attention::AttnShape& s,
                              const EftaOptions& opt);

/// Modeled cost of one protected causal query block (efta_decode_block):
/// `rows` query rows at positions [context - rows, context) streaming over
/// ceil(context/64) KV tiles, including the per-block checksum encodes, the
/// per-row EXP product check, and the final unified O verification.  One
/// formula covers all three serving workloads — rows = 1 is a decode step,
/// rows = k+1 a speculative draft block, rows = 64 a prefill chunk — and
/// dividing the token-by-token sum by the block cost is the modeled
/// amortization win (tile loads + encodes paid once per block instead of
/// once per token), the speculative-decode term of the serving cost model.
sim::CostBreakdown efta_decode_block_costs(std::size_t context,
                                           std::size_t rows, std::size_t dim,
                                           const EftaOptions& opt);

}  // namespace ftt::core
