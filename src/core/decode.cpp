#include "core/decode.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "abft/strided_abft.hpp"
#include "sim/mma.hpp"
#include "softmax/snvr.hpp"

namespace ftt::core {

using attention::FtReport;
using numeric::Half;
using tensor::MatrixF;
using tensor::MatrixH;

namespace {

void validate_slice(const KvSlice& kv, std::span<const Half> q,
                    std::span<float> out, const EftaOptions& opt) {
  if (kv.k_tiles == nullptr || kv.v_tiles == nullptr) {
    throw std::invalid_argument("efta decode: null KV tile pointers");
  }
  if (kv.n == 0) {
    throw std::invalid_argument("efta decode: empty context (n == 0)");
  }
  if (q.size() != kv.d || out.size() != kv.d) {
    throw std::invalid_argument(
        "efta decode: q/out spans must hold d values");
  }
  if (opt.stride <= 0 || kv.d % static_cast<std::size_t>(opt.stride) != 0) {
    throw std::invalid_argument(
        "efta decode: d must be a multiple of the checksum stride");
  }
}

/// Core protected decode over one tiled KV slice.  Inputs must have been
/// checked with validate_slice.  Does not stamp `faults_injected` — the
/// public entry points account per call / per slice.
FtReport decode_slice(const KvSlice& kv, std::span<const Half> q,
                      std::span<float> out, const EftaOptions& opt,
                      fault::FaultInjector* inj) {
  const std::size_t n = kv.n, d = kv.d;
  const std::size_t B = KvSlice::kTileRows;
  const int s = opt.stride;
  const auto su = static_cast<std::size_t>(s);
  const std::size_t nblk = kv.tiles();
  FtReport rep;

  // Pre-scaled fp16 query (one MMA operand row).
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  MatrixH qh(1, d);
  for (std::size_t c = 0; c < d; ++c) {
    qh(0, c) = Half(q[c].to_float() * scale);
  }

  float m = -std::numeric_limits<float>::infinity();
  float l = 0.0f;
  std::vector<float> oacc(d, 0.0f);
  MatrixF oc1(1, su, 0.0f), oc2(1, su, 0.0f);
  std::vector<float> blockmax(nblk);

  MatrixF S(1, B), schk1(1, su), schk2(1, su);
  MatrixH kj(B, d), vj(B, d);
  for (std::size_t j = 0; j < nblk; ++j) {
    // Rows of this tile that hold real context; the remainder is zero
    // padding whose scores are exactly zero and consistent with the
    // checksums (fp16 MACs over zero operands are exact).
    const std::size_t rows = std::min(B, n - j * B);
    // Tiles are contiguous 64 x d row-major Half arrays — bulk-copy the
    // valid rows and zero the padding (Half() is all-zero bits).
    std::memcpy(kj.data(), kv.k_tiles[j], rows * d * sizeof(Half));
    std::memcpy(vj.data(), kv.v_tiles[j], rows * d * sizeof(Half));
    if (rows < B) {
      std::memset(kj.data() + rows * d, 0, (B - rows) * d * sizeof(Half));
      std::memset(vj.data() + rows * d, 0, (B - rows) * d * sizeof(Half));
    }
    const MatrixH kc1 = abft::StridedAbft::encode_rows_strided(kj, s, false, inj);
    const MatrixH kc2 = abft::StridedAbft::encode_rows_strided(kj, s, true, inj);
    const MatrixH vc1 = abft::StridedAbft::encode_cols_strided(vj, s, false, inj);
    const MatrixH vc2 = abft::StridedAbft::encode_cols_strided(vj, s, true, inj);

    sim::gemm_fp16_nt(qh, kj, S);
    if (inj) {
      // Any non-null injector — armed or an unarmed calls()-counting probe
      // — sees every hook, so campaign sizing observes true call counts.
      for (std::size_t c = 0; c < rows; ++c) {
        S(0, c) = inj->corrupt(fault::Site::kGemm1, S(0, c));
      }
    }
    sim::gemm_fp16_nt(qh, kc1, schk1);
    sim::gemm_fp16_nt(qh, kc2, schk2);
    rep.gemm1 +=
        abft::StridedAbft::verify_correct(S, schk1, schk2, s,
                                          opt.abft_rel_threshold);

    // Streaming softmax update for the single row; the running max only
    // sees real context lanes (a padded lane's zero score could otherwise
    // dominate an all-negative tile).
    float bmax = -std::numeric_limits<float>::infinity();
    for (std::size_t c = 0; c < rows; ++c) bmax = std::max(bmax, S(0, c));
    bmax = fault::corrupt(inj, fault::Site::kReduceMax, bmax);
    blockmax[j] = bmax;
    const float mnew = std::max(m, bmax);

    MatrixF spre = S;
    for (std::size_t c = 0; c < rows; ++c) {
      S(0, c) = fault::corrupt(inj, fault::Site::kExp,
                               std::exp(S(0, c) - mnew));
    }
    // Padded lanes carry zero softmax weight: no rowsum contribution, no
    // GEMM II contribution (their V rows are zero anyway).
    for (std::size_t c = rows; c < B; ++c) S(0, c) = 0.0f;
    // Case-2 product check on the decode row (log domain, double).  Padded
    // lanes participate in score space — their pre-EXP score is exactly
    // zero, which the checksum side already accounts for — rather than as
    // exp(0 - m), which would overflow for strongly negative tiles and
    // flag a clean run.
    {
      const std::size_t L = B / su;
      for (std::size_t jc = 0; jc < su; ++jc) {
        ++rep.exp_check.checks;
        double lhs = 0.0;
        bool bad = false;
        for (std::size_t ll = 0; ll < L; ++ll) {
          const std::size_t col = jc + ll * su;
          if (col >= rows) {
            lhs += static_cast<double>(spre(0, col)) - mnew;
            continue;
          }
          const float p = S(0, col);
          if (!(p > 0.0f) || !std::isfinite(p)) {
            bad = true;
            break;
          }
          lhs += std::log(static_cast<double>(p));
        }
        const double rhs =
            static_cast<double>(schk1(0, jc)) - static_cast<double>(L) * mnew;
        if (bad || std::fabs(lhs - rhs) > opt.exp_log_threshold) {
          ++rep.exp_check.flagged;
          // Repair the scores via the linear checksum, then re-exponentiate.
          abft::StridedAbft::verify_correct(spre, schk1, schk2, s,
                                            opt.abft_rel_threshold);
          for (std::size_t c = 0; c < rows; ++c) {
            S(0, c) = std::exp(spre(0, c) - mnew);
          }
          ++rep.exp_check.recomputed;
          break;
        }
      }
    }
    float rowsum = 0.0f;
    for (std::size_t c = 0; c < B; ++c) rowsum += S(0, c);
    rowsum = fault::corrupt(inj, fault::Site::kReduceSum, rowsum);

    const float f = std::exp(m - mnew);
    for (std::size_t c = 0; c < d; ++c) {
      oacc[c] = fault::corrupt(inj, fault::Site::kRescale, f * oacc[c]);
    }
    for (std::size_t jc = 0; jc < su; ++jc) {
      oc1(0, jc) *= f;
      oc2(0, jc) *= f;
    }
    l = f * l + rowsum;
    m = mnew;

    // GEMM II (1 x B times B x d) + checksums.
    for (std::size_t c = 0; c < d; ++c) {
      float acc = 0.0f;
      for (std::size_t r = 0; r < B; ++r) {
        acc += numeric::round_to_half(S(0, r)) * vj(r, c).to_float();
      }
      oacc[c] = fault::corrupt(inj, fault::Site::kGemm2, oacc[c] + acc);
    }
    for (std::size_t jc = 0; jc < su; ++jc) {
      float a1 = 0.0f, a2 = 0.0f;
      for (std::size_t r = 0; r < B; ++r) {
        const float p = numeric::round_to_half(S(0, r));
        a1 += p * vc1(r, jc).to_float();
        a2 += p * vc2(r, jc).to_float();
      }
      oc1(0, jc) += a1;
      oc2(0, jc) += a2;
    }
  }

  // SNVR range restriction of the single rowsum.
  const auto res = softmax::snvr_check_rowsum(
      l, std::span<const float>(blockmax.data(), nblk), m, n, opt.snvr_slack);
  if (res.violated) {
    l = res.corrected_value;
    ++rep.range_corrections;
  }

  // Normalize + final unified O verification.
  MatrixF ofin(1, d);
  const float inv = 1.0f / l;
  for (std::size_t c = 0; c < d; ++c) ofin(0, c) = oacc[c] * inv;
  for (std::size_t jc = 0; jc < su; ++jc) {
    oc1(0, jc) *= inv;
    oc2(0, jc) *= inv;
  }
  rep.gemm2 += abft::StridedAbft::verify_correct(ofin, oc1, oc2, s,
                                                 opt.abft_rel_threshold);
  for (std::size_t c = 0; c < d; ++c) out[c] = ofin(0, c);
  return rep;
}

}  // namespace

FtReport efta_decode_step(const KvSlice& kv, std::span<const Half> q,
                          std::span<float> out, const EftaOptions& opt,
                          fault::FaultInjector* inj) {
  validate_slice(kv, q, out, opt);
  const std::size_t before = inj ? inj->injected() : 0;
  FtReport rep = decode_slice(kv, q, out, opt, inj);
  if (inj) rep.faults_injected = inj->injected() - before;
  return rep;
}

FtReport efta_decode_step(const MatrixH& k_cache, const MatrixH& v_cache,
                          std::span<const Half> q, std::span<float> out,
                          const EftaOptions& opt, fault::FaultInjector* inj) {
  const std::size_t n = k_cache.rows(), d = k_cache.cols();
  if (v_cache.rows() != n || v_cache.cols() != d) {
    throw std::invalid_argument("efta_decode_step: shape mismatch");
  }
  // A contiguous n x d cache is a degenerate tiled view: tile t starts at
  // row 64t, and decode_slice never reads past the valid rows of the ragged
  // final tile.
  const std::size_t B = KvSlice::kTileRows;
  const std::size_t nblk = (n + B - 1) / B;
  std::vector<const Half*> kt(nblk), vt(nblk);
  for (std::size_t j = 0; j < nblk; ++j) {
    kt[j] = k_cache.data() + j * B * d;
    vt[j] = v_cache.data() + j * B * d;
  }
  const KvSlice kv{kt.data(), vt.data(), n, d};
  return efta_decode_step(kv, q, out, opt, inj);
}

FtReport efta_decode_batch(std::span<const DecodeWorkItem> items,
                           const EftaOptions& opt, fault::FaultInjector* inj,
                           std::span<FtReport> per_item) {
  if (!per_item.empty() && per_item.size() != items.size()) {
    throw std::invalid_argument(
        "efta_decode_batch: per_item size must match items");
  }
  // Validate every item up front: an exception must not be raised inside
  // the OpenMP worksharing region (that would terminate the process).
  for (std::size_t i = 0; i < items.size(); ++i) {
    try {
      validate_slice(items[i].kv, items[i].q, items[i].out, opt);
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("efta_decode_batch: item " +
                                  std::to_string(i) + ": " + e.what());
    }
  }
  FtReport total;

  // Any non-null injector — armed or a calls()-counting probe — is
  // deterministic, stateful, and not thread-safe, so it forces the serial
  // path, exactly like efta_decode_step threading the same injector.
  if (inj) {
    for (std::size_t i = 0; i < items.size(); ++i) {
      const std::size_t before = inj->injected();
      FtReport r = decode_slice(items[i].kv, items[i].q, items[i].out, opt, inj);
      r.faults_injected = inj->injected() - before;
      if (!per_item.empty()) per_item[i] = r;
      total += r;
    }
    return total;
  }

#pragma omp parallel
  {
    FtReport local;
#pragma omp for schedule(dynamic) nowait
    for (std::size_t i = 0; i < items.size(); ++i) {
      FtReport r =
          decode_slice(items[i].kv, items[i].q, items[i].out, opt, nullptr);
      if (!per_item.empty()) per_item[i] = r;
      local += r;
    }
#pragma omp critical
    total += local;
  }
  return total;
}

}  // namespace ftt::core
