#include "core/decode.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "abft/strided_abft.hpp"
#include "sim/mma.hpp"
#include "softmax/snvr.hpp"

namespace ftt::core {

using attention::FtReport;
using numeric::Half;
using tensor::MatrixF;
using tensor::MatrixH;

namespace {

void validate_slice(const KvSlice& kv, std::span<const Half> q,
                    std::span<float> out, const EftaOptions& opt) {
  if (kv.k_tiles == nullptr || kv.v_tiles == nullptr) {
    throw std::invalid_argument("efta decode: null KV tile pointers");
  }
  if (kv.n == 0) {
    throw std::invalid_argument("efta decode: empty context (n == 0)");
  }
  if (q.size() != kv.d || out.size() != kv.d) {
    throw std::invalid_argument(
        "efta decode: q/out spans must hold d values");
  }
  if (opt.stride <= 0 || kv.d % static_cast<std::size_t>(opt.stride) != 0) {
    throw std::invalid_argument(
        "efta decode: d must be a multiple of the checksum stride");
  }
}

void validate_prefill(const PrefillWorkItem& it, const EftaOptions& opt) {
  if (it.kv.k_tiles == nullptr || it.kv.v_tiles == nullptr) {
    throw std::invalid_argument("efta prefill: null KV tile pointers");
  }
  if (it.q == nullptr || it.out == nullptr) {
    throw std::invalid_argument("efta prefill: null q/out pointers");
  }
  if (it.rows == 0 || it.rows > KvSlice::kTileRows) {
    throw std::invalid_argument(
        "efta prefill: chunk must hold 1..64 query rows");
  }
  if (it.kv.n != it.base + it.rows) {
    throw std::invalid_argument(
        "efta prefill: cache must end exactly at the chunk (n == base+rows)");
  }
  if (opt.stride <= 0 ||
      it.kv.d % static_cast<std::size_t>(opt.stride) != 0) {
    throw std::invalid_argument(
        "efta prefill: d must be a multiple of the checksum stride");
  }
  const std::size_t d = it.kv.d;
  if ((it.q_stride != 0 && it.q_stride < d) ||
      (it.out_stride != 0 && it.out_stride < d)) {
    throw std::invalid_argument("efta prefill: row stride below d");
  }
}

/// Core causal prefill chunk over one tiled KV slice.  Query row r (global
/// position p = base + r) attends rows [0, p] of the cache.  The loop
/// structure deliberately mirrors decode_slice per row — same GEMM routine,
/// same valid-lane masking, same scalar GEMM II accumulation order, same
/// fault hooks on the visible lanes — so each output row is bit-identical to
/// efta_decode_step over a context of p+1 tokens.  The chunk's win is
/// amortization: K/V tiles are loaded and checksum-encoded once per chunk
/// instead of once per token, and the score GEMM covers all rows at once.
FtReport prefill_slice(const PrefillWorkItem& it, const EftaOptions& opt,
                       fault::FaultInjector* inj) {
  const std::size_t n = it.kv.n, d = it.kv.d, R = it.rows, base = it.base;
  const std::size_t B = KvSlice::kTileRows;
  const int s = opt.stride;
  const auto su = static_cast<std::size_t>(s);
  const std::size_t L = B / su;
  const std::size_t nblk = it.kv.tiles();
  const std::size_t qs = it.q_stride == 0 ? d : it.q_stride;
  const std::size_t os = it.out_stride == 0 ? d : it.out_stride;
  FtReport rep;

  // Pre-scaled fp16 queries (the MMA operand rows), exactly as decode does
  // per token.
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  MatrixH qh(R, d);
  for (std::size_t r = 0; r < R; ++r) {
    const Half* src = it.q + r * qs;
    for (std::size_t c = 0; c < d; ++c) {
      qh(r, c) = Half(src[c].to_float() * scale);
    }
  }

  std::vector<float> m(R, -std::numeric_limits<float>::infinity());
  std::vector<float> l(R, 0.0f);
  MatrixF oacc(R, d, 0.0f);
  MatrixF oc1(R, su, 0.0f), oc2(R, su, 0.0f);
  MatrixF blockmax(R, nblk);

  MatrixF S(R, B), spre(R, B), schk1(R, su), schk2(R, su);
  MatrixH kj(B, d), vj(B, d);
  for (std::size_t j = 0; j < nblk; ++j) {
    // Rows of this tile holding real context; the remainder is zero padding,
    // exactly the view decode_slice reconstructs per token.
    const std::size_t tile_valid = std::min(B, n - j * B);
    std::memcpy(kj.data(), it.kv.k_tiles[j], tile_valid * d * sizeof(Half));
    std::memcpy(vj.data(), it.kv.v_tiles[j], tile_valid * d * sizeof(Half));
    if (tile_valid < B) {
      std::fill(kj.data() + tile_valid * d, kj.data() + B * d, Half());
      std::fill(vj.data() + tile_valid * d, vj.data() + B * d, Half());
    }
    // Tiles are encoded once per chunk (decode re-encodes them per token —
    // the O(context) work this kernel amortizes away).
    const MatrixH kc1 = abft::StridedAbft::encode_rows_strided(kj, s, false, inj);
    const MatrixH kc2 = abft::StridedAbft::encode_rows_strided(kj, s, true, inj);
    const MatrixH vc1 = abft::StridedAbft::encode_cols_strided(vj, s, false, inj);
    const MatrixH vc2 = abft::StridedAbft::encode_cols_strided(vj, s, true, inj);

    sim::gemm_fp16_nt(qh, kj, S);
    sim::gemm_fp16_nt(qh, kc1, schk1);
    sim::gemm_fp16_nt(qh, kc2, schk2);
    for (std::size_t r = 0; r < R; ++r) {
      // Visible lanes of row r in this tile: its causal prefix, clipped to
      // the tile.  A chunk never starts past the cache end, so visibility is
      // a per-row prefix of lanes and a per-row prefix of tiles.
      const std::size_t p = base + r;
      if (p < j * B) continue;  // row's causal prefix ends before this tile
      const std::size_t vis = std::min(B, p + 1 - j * B);
      if (inj) {
        for (std::size_t c = 0; c < vis; ++c) {
          S(r, c) = inj->corrupt(fault::Site::kGemm1, S(r, c));
        }
      }
    }
    // Linear verification runs pre-mask over the whole block: every lane —
    // visible, causally masked, or padding — satisfies the checksum relation
    // against this tile, so one block verify witnesses all rows at once.
    rep.gemm1 += abft::StridedAbft::verify_correct(S, schk1, schk2, s,
                                                   opt.abft_rel_threshold);

    for (std::size_t r = 0; r < R; ++r) {
      const std::size_t p = base + r;
      if (p < j * B) continue;
      const std::size_t vis = std::min(B, p + 1 - j * B);

      // Streaming softmax update, decode_slice's single-row loop verbatim:
      // the running max sees only the row's visible lanes.
      float bmax = -std::numeric_limits<float>::infinity();
      for (std::size_t c = 0; c < vis; ++c) bmax = std::max(bmax, S(r, c));
      bmax = fault::corrupt(inj, fault::Site::kReduceMax, bmax);
      blockmax(r, j) = bmax;
      const float mnew = std::max(m[r], bmax);

      for (std::size_t c = 0; c < B; ++c) spre(r, c) = S(r, c);
      for (std::size_t c = 0; c < vis; ++c) {
        S(r, c) = fault::corrupt(inj, fault::Site::kExp,
                                 std::exp(S(r, c) - mnew));
      }
      // Lanes past the causal horizon carry zero softmax weight, exactly
      // like decode's padded lanes.
      for (std::size_t c = vis; c < B; ++c) S(r, c) = 0.0f;

      // Case-2 product check on the row (log domain, double).  Masked and
      // padded lanes participate in score space — decode's convention for
      // lanes that were never exponentiated.
      for (std::size_t jc = 0; jc < su; ++jc) {
        ++rep.exp_check.checks;
        double lhs = 0.0;
        bool bad = false;
        for (std::size_t ll = 0; ll < L; ++ll) {
          const std::size_t col = jc + ll * su;
          if (col >= vis) {
            lhs += static_cast<double>(spre(r, col)) - mnew;
            continue;
          }
          const float pv = S(r, col);
          if (!(pv > 0.0f) || !std::isfinite(pv)) {
            bad = true;
            break;
          }
          lhs += std::log(static_cast<double>(pv));
        }
        const double rhs =
            static_cast<double>(schk1(r, jc)) - static_cast<double>(L) * mnew;
        if (bad || std::fabs(lhs - rhs) > opt.exp_log_threshold) {
          ++rep.exp_check.flagged;
          // Repair the scores via the linear checksum, then re-exponentiate
          // the visible lanes (per-row temporaries: this path only runs
          // under a fault).
          MatrixF srow(1, B), c1row(1, su), c2row(1, su);
          for (std::size_t c = 0; c < B; ++c) srow(0, c) = spre(r, c);
          for (std::size_t c = 0; c < su; ++c) {
            c1row(0, c) = schk1(r, c);
            c2row(0, c) = schk2(r, c);
          }
          abft::StridedAbft::verify_correct(srow, c1row, c2row, s,
                                            opt.abft_rel_threshold);
          for (std::size_t c = 0; c < vis; ++c) {
            S(r, c) = std::exp(srow(0, c) - mnew);
          }
          ++rep.exp_check.recomputed;
          break;
        }
      }

      float rowsum = 0.0f;
      for (std::size_t c = 0; c < B; ++c) rowsum += S(r, c);
      rowsum = fault::corrupt(inj, fault::Site::kReduceSum, rowsum);

      const float f = std::exp(m[r] - mnew);
      for (std::size_t c = 0; c < d; ++c) {
        oacc(r, c) = fault::corrupt(inj, fault::Site::kRescale,
                                    f * oacc(r, c));
      }
      for (std::size_t jc = 0; jc < su; ++jc) {
        oc1(r, jc) *= f;
        oc2(r, jc) *= f;
      }
      l[r] = f * l[r] + rowsum;
      m[r] = mnew;

      // GEMM II (1 x B times B x d) + checksums, decode's scalar
      // accumulation order.  Masked lanes contribute exact zeros: P is
      // exactly 0.0f there, and 0 * v adds a signed zero that cannot change
      // the accumulator.
      for (std::size_t c = 0; c < d; ++c) {
        float acc = 0.0f;
        for (std::size_t r2 = 0; r2 < B; ++r2) {
          acc += numeric::round_to_half(S(r, r2)) * vj(r2, c).to_float();
        }
        oacc(r, c) = fault::corrupt(inj, fault::Site::kGemm2, oacc(r, c) + acc);
      }
      for (std::size_t jc = 0; jc < su; ++jc) {
        float a1 = 0.0f, a2 = 0.0f;
        for (std::size_t r2 = 0; r2 < B; ++r2) {
          const float pv = numeric::round_to_half(S(r, r2));
          a1 += pv * vc1(r2, jc).to_float();
          a2 += pv * vc2(r2, jc).to_float();
        }
        oc1(r, jc) += a1;
        oc2(r, jc) += a2;
      }
    }
  }

  // SNVR range restriction per row over its own tile-max history.
  for (std::size_t r = 0; r < R; ++r) {
    const std::size_t p = base + r;
    const std::size_t row_tiles = p / B + 1;
    const auto res = softmax::snvr_check_rowsum(
        l[r], std::span<const float>(&blockmax(r, 0), row_tiles), m[r], p + 1,
        opt.snvr_slack);
    if (res.violated) {
      l[r] = res.corrected_value;
      ++rep.range_corrections;
    }
  }

  // Normalize + final unified O verification over the whole chunk.
  MatrixF ofin(R, d);
  for (std::size_t r = 0; r < R; ++r) {
    const float inv = 1.0f / l[r];
    for (std::size_t c = 0; c < d; ++c) {
      ofin(r, c) = oacc(r, c) * inv;
    }
    for (std::size_t jc = 0; jc < su; ++jc) {
      oc1(r, jc) *= inv;
      oc2(r, jc) *= inv;
    }
  }
  rep.gemm2 += abft::StridedAbft::verify_correct(ofin, oc1, oc2, s,
                                                 opt.abft_rel_threshold);
  for (std::size_t r = 0; r < R; ++r) {
    float* dst = it.out + r * os;
    for (std::size_t c = 0; c < d; ++c) dst[c] = ofin(r, c);
  }
  return rep;
}

/// A decode step is exactly a one-row prefill chunk: the new token (global
/// position n-1) attends over the cache that already holds its own K/V.
/// One kernel serves both paths, so the bit-identity the serving engine
/// relies on cannot drift between them.  Inputs must have been checked with
/// validate_slice; does not stamp `faults_injected` (the public entry
/// points account per call / per slice).
FtReport decode_slice(const KvSlice& kv, std::span<const Half> q,
                      std::span<float> out, const EftaOptions& opt,
                      fault::FaultInjector* inj) {
  return prefill_slice(
      PrefillWorkItem{kv, kv.n - 1, q.data(), out.data(), 1, 0, 0}, opt, inj);
}

}  // namespace

FtReport efta_prefill_chunk(const PrefillWorkItem& item,
                            const EftaOptions& opt,
                            fault::FaultInjector* inj) {
  validate_prefill(item, opt);
  const std::size_t before = inj ? inj->injected() : 0;
  FtReport rep = prefill_slice(item, opt, inj);
  if (inj) rep.faults_injected = inj->injected() - before;
  return rep;
}

FtReport efta_prefill_batch(std::span<const PrefillWorkItem> items,
                            const EftaOptions& opt, fault::FaultInjector* inj,
                            std::span<FtReport> per_item) {
  if (!per_item.empty() && per_item.size() != items.size()) {
    throw std::invalid_argument(
        "efta_prefill_batch: per_item size must match items");
  }
  FtReport total;
  if (items.empty()) return total;  // idle ticks never touch OpenMP
  for (std::size_t i = 0; i < items.size(); ++i) {
    try {
      validate_prefill(items[i], opt);
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("efta_prefill_batch: item " +
                                  std::to_string(i) + ": " + e.what());
    }
  }

  if (inj) {
    for (std::size_t i = 0; i < items.size(); ++i) {
      const std::size_t before = inj->injected();
      FtReport r = prefill_slice(items[i], opt, inj);
      r.faults_injected = inj->injected() - before;
      if (!per_item.empty()) per_item[i] = r;
      total += r;
    }
    return total;
  }

#pragma omp parallel
  {
    FtReport local;
#pragma omp for schedule(dynamic) nowait
    for (std::size_t i = 0; i < items.size(); ++i) {
      FtReport r = prefill_slice(items[i], opt, nullptr);
      if (!per_item.empty()) per_item[i] = r;
      local += r;
    }
#pragma omp critical
    total += local;
  }
  return total;
}

FtReport efta_decode_step(const KvSlice& kv, std::span<const Half> q,
                          std::span<float> out, const EftaOptions& opt,
                          fault::FaultInjector* inj) {
  validate_slice(kv, q, out, opt);
  const std::size_t before = inj ? inj->injected() : 0;
  FtReport rep = decode_slice(kv, q, out, opt, inj);
  if (inj) rep.faults_injected = inj->injected() - before;
  return rep;
}

FtReport efta_decode_step(const MatrixH& k_cache, const MatrixH& v_cache,
                          std::span<const Half> q, std::span<float> out,
                          const EftaOptions& opt, fault::FaultInjector* inj) {
  const std::size_t n = k_cache.rows(), d = k_cache.cols();
  if (v_cache.rows() != n || v_cache.cols() != d) {
    throw std::invalid_argument("efta_decode_step: shape mismatch");
  }
  // A contiguous n x d cache is a degenerate tiled view: tile t starts at
  // row 64t, and decode_slice never reads past the valid rows of the ragged
  // final tile.
  const std::size_t B = KvSlice::kTileRows;
  const std::size_t nblk = (n + B - 1) / B;
  std::vector<const Half*> kt(nblk), vt(nblk);
  for (std::size_t j = 0; j < nblk; ++j) {
    kt[j] = k_cache.data() + j * B * d;
    vt[j] = v_cache.data() + j * B * d;
  }
  const KvSlice kv{kt.data(), vt.data(), n, d};
  return efta_decode_step(kv, q, out, opt, inj);
}

FtReport efta_decode_batch(std::span<const DecodeWorkItem> items,
                           const EftaOptions& opt, fault::FaultInjector* inj,
                           std::span<FtReport> per_item) {
  if (!per_item.empty() && per_item.size() != items.size()) {
    throw std::invalid_argument(
        "efta_decode_batch: per_item size must match items");
  }
  // An idle tick must be free: spinning up an OpenMP team for zero items
  // costs a barrier per call, which a scheduler polling an empty queue pays
  // on every tick.
  if (items.empty()) return {};
  // Validate every item up front: an exception must not be raised inside
  // the OpenMP worksharing region (that would terminate the process).
  for (std::size_t i = 0; i < items.size(); ++i) {
    try {
      validate_slice(items[i].kv, items[i].q, items[i].out, opt);
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("efta_decode_batch: item " +
                                  std::to_string(i) + ": " + e.what());
    }
  }
  FtReport total;

  // Any non-null injector — armed or a calls()-counting probe — is
  // deterministic, stateful, and not thread-safe, so it forces the serial
  // path, exactly like efta_decode_step threading the same injector.
  if (inj) {
    for (std::size_t i = 0; i < items.size(); ++i) {
      const std::size_t before = inj->injected();
      FtReport r = decode_slice(items[i].kv, items[i].q, items[i].out, opt, inj);
      r.faults_injected = inj->injected() - before;
      if (!per_item.empty()) per_item[i] = r;
      total += r;
    }
    return total;
  }

#pragma omp parallel
  {
    FtReport local;
#pragma omp for schedule(dynamic) nowait
    for (std::size_t i = 0; i < items.size(); ++i) {
      FtReport r =
          decode_slice(items[i].kv, items[i].q, items[i].out, opt, nullptr);
      if (!per_item.empty()) per_item[i] = r;
      local += r;
    }
#pragma omp critical
    total += local;
  }
  return total;
}

}  // namespace ftt::core
