#include "core/decode.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "abft/strided_abft.hpp"
#include "numeric/gemm_simd.hpp"
#include "numeric/int8_simd.hpp"
#include "sim/mma.hpp"
#include "softmax/snvr.hpp"

namespace ftt::core {

using attention::FtReport;
using numeric::Half;
using tensor::MatrixF;
using tensor::MatrixH;

namespace testing {
std::size_t& tiles_materialized() noexcept {
  thread_local std::size_t count = 0;
  return count;
}
}  // namespace testing

namespace {

void validate_item(const DecodeWorkItem& it, const EftaOptions& opt) {
  if (it.kv.k_tiles == nullptr || it.kv.v_tiles == nullptr) {
    throw std::invalid_argument("efta decode: null KV tile pointers");
  }
  if (it.kv.n == 0) {
    throw std::invalid_argument("efta decode: empty context (n == 0)");
  }
  if (it.q == nullptr || it.out == nullptr) {
    throw std::invalid_argument("efta decode: null q/out pointers");
  }
  if (it.q_len == 0 || it.q_len > KvSlice::kTileRows) {
    throw std::invalid_argument(
        "efta decode: block must hold 1..64 query rows");
  }
  if (it.q_len > it.kv.n) {
    throw std::invalid_argument(
        "efta decode: cache must already hold the block's K/V rows "
        "(q_len <= n)");
  }
  if (opt.stride <= 0 ||
      it.kv.d % static_cast<std::size_t>(opt.stride) != 0) {
    throw std::invalid_argument(
        "efta decode: d must be a multiple of the checksum stride");
  }
  const std::size_t d = it.kv.d;
  if ((it.q_stride != 0 && it.q_stride < d) ||
      (it.out_stride != 0 && it.out_stride < d)) {
    throw std::invalid_argument("efta decode: row stride below d");
  }
}

/// Core causal query block over one tiled KV slice.  The block sits at the
/// end of the context: query row r (global position p = base + r with
/// base = n - q_len) attends rows [0, p] of the cache.  The loop structure
/// runs every row through the same GEMM routine, the same valid-lane
/// masking, the same scalar GEMM II accumulation order and the same fault
/// hooks on the visible lanes — so each output row is bit-identical to
/// efta_decode_step over a context of p+1 tokens, whether the block is a
/// 1-row decode step, a speculative draft block or a 64-row prefill chunk.
/// The block's win is amortization: K/V tiles are loaded, widened and
/// checksum-encoded once per block instead of once per token, and the score
/// GEMM covers all rows at once.
///
/// Hot-path layout: full 64-row tiles are consumed zero-copy straight from
/// the cache storage (only the ragged tail is pad-and-copied into scratch),
/// every fp16 operand is widened exactly once per tile via the bulk (SIMD)
/// conversions, and all GEMMs run over the pre-widened fp32 images — all of
/// which is bit-identical to the former memcpy-and-convert-per-GEMM path
/// because fp16 -> fp32 widening is exact and the MAC order is unchanged.
/// When the slice carries memoized per-tile checksum encodings (serve::
/// KvCache seals them once per full tile), clean runs consume those instead
/// of re-deriving all four encodings per call, dropping the per-token encode
/// cost from O(context) to O(tail).
FtReport block_slice(const DecodeWorkItem& it, const EftaOptions& opt,
                     fault::FaultInjector* inj) {
  const std::size_t n = it.kv.n, d = it.kv.d, R = it.q_len;
  const std::size_t base = n - R;
  const std::size_t B = KvSlice::kTileRows;
  const int s = opt.stride;
  const auto su = static_cast<std::size_t>(s);
  const std::size_t L = B / su;
  const std::size_t nblk = it.kv.tiles();
  const std::size_t qs = it.q_stride == 0 ? d : it.q_stride;
  const std::size_t os = it.out_stride == 0 ? d : it.out_stride;
  FtReport rep;

  // Memoized encodings are only usable on clean runs — an armed (or call-
  // counting) injector must observe the per-call encode hooks — and only
  // when they were built with this call's checksum stride.
  const bool cache_ok = inj == nullptr && it.kv.k_c1 != nullptr &&
                        it.kv.k_c2 != nullptr && it.kv.v_c1 != nullptr &&
                        it.kv.v_c2 != nullptr && it.kv.enc_stride == s;

  // Pre-scaled fp16 queries (the MMA operand rows), exactly as decode does
  // per token, then widened once: every GEMM below consumes the exact fp32
  // image instead of re-converting per GEMM.
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  std::vector<Half> qh(R * d);
  std::vector<float> qf(R * d);
  for (std::size_t r = 0; r < R; ++r) {
    numeric::halves_to_floats(it.q + r * qs, qf.data() + r * d, d);
    for (std::size_t c = 0; c < d; ++c) qf[r * d + c] *= scale;
  }
  numeric::floats_to_halves(qf.data(), qh.data(), R * d);
  numeric::halves_to_floats(qh.data(), qf.data(), R * d);

  std::vector<float> m(R, -std::numeric_limits<float>::infinity());
  std::vector<float> l(R, 0.0f);
  MatrixF oacc(R, d, 0.0f);
  MatrixF oc1(R, su, 0.0f), oc2(R, su, 0.0f);
  MatrixF blockmax(R, nblk);

  MatrixF S(R, B), spre(R, B), schk1(R, su), schk2(R, su);
  // fp16 scratch for the ragged tail only; full tiles are read in place.
  std::vector<Half> ktail(B * d), vtail(B * d);
  // Per-tile fp32 operand images (one bulk conversion each per tile).
  std::vector<float> kf(B * d), vf(B * d);
  // k-major scratch for the int8 fallback path (injector armed): the stored
  // K^T payload dequantizes here, then transposes to logical rows in kf.
  std::vector<float> ktf;
  std::vector<float> kc1f(su * d), kc2f(su * d), vc1f(B * su), vc2f(B * su);
  // Per-row fp16-rounded softmax weights (GEMM II's A operand).
  std::vector<Half> ph(B);
  std::vector<float> pf(B);
  std::vector<float> acc2(d);
  std::vector<float> tchk1(su), tchk2(su);
  MatrixH ek1, ek2, ev1, ev2;  // fresh encodes when the memo can't serve
  for (std::size_t j = 0; j < nblk; ++j) {
    // Rows of this tile holding real context; the remainder is zero padding,
    // exactly the view decode reconstructs per token.
    const std::size_t tile_valid = std::min(B, n - j * B);
    const bool full = tile_valid == B;
    const bool is_i8 = it.kv.fmt != nullptr && it.kv.fmt[j] == TileFmt::kI8;
    const Half* kt = is_i8 ? nullptr : it.kv.k_tiles[j];
    const Half* vt = is_i8 ? nullptr : it.kv.v_tiles[j];
#if defined(__GNUC__) || defined(__clang__)
    // Software prefetch of the next tile's payload stream: the batched path
    // is memory-bound (each tile is consumed once per block), so issuing the
    // first touch a full tile of compute ahead hides the leading miss.  The
    // hardware prefetcher follows the contiguous stream from there.  Pure
    // hint — no semantic effect, so every bit-identity contract holds.
    if (opt.prefetch && j + 1 < nblk) {
      const std::size_t jn = j + 1;
      if (cache_ok && it.kv.f32 != nullptr && it.kv.f32[jn] != nullptr) {
        __builtin_prefetch(it.kv.f32[jn], 0, 3);
        __builtin_prefetch(it.kv.f32[jn] + d * B, 0, 3);
      } else if (cache_ok && it.kv.f16t != nullptr &&
                 it.kv.f16t[jn] != nullptr) {
        __builtin_prefetch(it.kv.f16t[jn], 0, 3);
        __builtin_prefetch(it.kv.v_tiles[jn], 0, 3);
      } else if (it.kv.fmt != nullptr && it.kv.fmt[jn] == TileFmt::kI8) {
        __builtin_prefetch(it.kv.k_i8[jn], 0, 3);
        __builtin_prefetch(it.kv.v_i8[jn], 0, 3);
      } else {
        __builtin_prefetch(it.kv.k_tiles[jn], 0, 3);
        __builtin_prefetch(it.kv.v_tiles[jn], 0, 3);
      }
    }
#endif
    // Fastest tier: the sealed tile carries a memoized fp32 image with every
    // GEMM operand pre-widened and pre-packed (K-side blocks k-major), so a
    // clean tick does no fp16 conversion and no packing for this tile at
    // all — the score GEMMs and GEMM II run straight over the image.
    // Consuming it is bit-identical to the widen-per-block tiers below:
    // widening is exact, transposition is pure data movement, and every GEMM
    // keeps the same per-output ascending-k accumulation order.
    const float* img = (cache_ok && full && it.kv.f32 != nullptr)
                           ? it.kv.f32[j]
                           : nullptr;
    // The fp16 analogue (kF16T policy): K-side operands pre-transposed at
    // seal but kept at half width; the fused fp16-operand kernels widen
    // them in registers.  V-side operands need no image — the slab's V tile
    // and sealed column checksums are already row-major axpy streams.
    const Half* himg = (img == nullptr && cache_ok && full &&
                        it.kv.f16t != nullptr)
                           ? it.kv.f16t[j]
                           : nullptr;
    const float* vsrc = nullptr;   // GEMM II operand, B x d row-major fp32
    const float* vc1src = nullptr; // V column checksums, B x su fp32
    const float* vc2src = nullptr;
    // Half GEMM II operands (kF16T fused path): when set, the axpy loops
    // below stream the stored fp16 rows directly instead of vsrc/vc*src.
    const Half* vsrcH = nullptr;
    const Half* vc1H = nullptr;
    const Half* vc2H = nullptr;
    // Int8 GEMM II operand (fused path): when set, the axpy loop below
    // streams the quantized V rows directly instead of vsrc.
    const std::int8_t* vsrc8 = nullptr;
    float vscale = 1.0f;
    if (is_i8 && cache_ok && it.kv.k_c1[j] != nullptr) {
      // Int8 fast path — the quantized analogue of the fp32-image tier.
      // The stored payload is already k-major on the K side and the Half
      // encodings' K blocks are stored transposed, so nothing is packed
      // and nothing dequantizes to scratch: the fused kernels widen the
      // int8 stream in registers (exact power-of-two scale), which is
      // bit-identical to dequantizing first (see numeric/int8_simd.hpp).
      numeric::halves_to_floats(it.kv.k_c1[j], kc1f.data(), d * su);
      numeric::halves_to_floats(it.kv.k_c2[j], kc2f.data(), d * su);
      numeric::halves_to_floats(it.kv.v_c1[j], vc1f.data(), B * su);
      numeric::halves_to_floats(it.kv.v_c2[j], vc2f.data(), B * su);
      numeric::gemm_f32_nn_i8(qf.data(), R, d, it.kv.k_i8[j], B,
                              it.kv.k_scale[j], &S(0, 0), S.cols(), false);
      sim::gemm_f32_nn(qf.data(), R, d, kc1f.data(), su, schk1);
      sim::gemm_f32_nn(qf.data(), R, d, kc2f.data(), su, schk2);
      vsrc8 = it.kv.v_i8[j];
      vscale = it.kv.v_scale[j];
      vc1src = vc1f.data();
      vc2src = vc2f.data();
    } else if (img != nullptr) {
      const float* ktimg = img;               // K^T, d x B
      vsrc = img + d * B;                     // V, B x d
      const float* kc1t = img + 2 * d * B;    // Kc1^T, d x su
      const float* kc2t = kc1t + d * su;      // Kc2^T, d x su
      vc1src = kc2t + d * su;                 // Vc1, B x su
      vc2src = vc1src + B * su;               // Vc2, B x su
      sim::gemm_f32_nn(qf.data(), R, d, ktimg, B, S);
      sim::gemm_f32_nn(qf.data(), R, d, kc1t, su, schk1);
      sim::gemm_f32_nn(qf.data(), R, d, kc2t, su, schk2);
    } else if (himg != nullptr) {
      // kF16T fast tier: the score GEMMs stream the pre-transposed Half
      // image (half the bytes of the fp32 image), widening in registers —
      // exact, ascending-k order unchanged, so bit-identical to the fp32
      // image tier and to the widen-per-block tier below.  GEMM II and the
      // output checksums stream the slab's own fp16 V operands the same way
      // — no fp32 staging for this tile at all.
      const Half* ktimg = himg;                // K^T, d x B halves
      const Half* kc1t = himg + d * B;         // Kc1^T, d x su halves
      const Half* kc2t = kc1t + d * su;        // Kc2^T, d x su halves
      sim::gemm_f32_nnh(qf.data(), R, d, ktimg, B, S);
      sim::gemm_f32_nnh(qf.data(), R, d, kc1t, su, schk1);
      sim::gemm_f32_nnh(qf.data(), R, d, kc2t, su, schk2);
      vsrcH = it.kv.v_tiles[j];
      vc1H = it.kv.v_c1[j];
      vc2H = it.kv.v_c2[j];
    } else {
      if (is_i8) {
        // Int8 fallback (armed injector, or a memo mismatch): materialize
        // the exactly-dequantized fp32 image — the stored K^T transposes
        // back to logical rows — and run the generic widen-per-tile path
        // with fresh encodes over it, bit-identical to the fused fast path
        // above (dequantization is exact and transposition is pure data
        // movement).
        if (ktf.empty()) ktf.resize(B * d);
        numeric::dequantize_i8_to_f32(it.kv.k_i8[j], ktf.data(), B * d,
                                      it.kv.k_scale[j]);
        numeric::transpose_f32(ktf.data(), d, B, kf.data());
        numeric::dequantize_i8_to_f32(it.kv.v_i8[j], vf.data(), B * d,
                                      it.kv.v_scale[j]);
      } else {
        if (!full) {
          // Only the ragged tail tile is materialized: its storage may hold
          // fewer than 64 readable rows (contiguous-cache views), so pad-and-
          // copy it into the zero-filled checksum footprint.
          std::memcpy(ktail.data(), kt, tile_valid * d * sizeof(Half));
          std::memcpy(vtail.data(), vt, tile_valid * d * sizeof(Half));
          std::fill(ktail.begin() + tile_valid * d, ktail.end(), Half());
          std::fill(vtail.begin() + tile_valid * d, vtail.end(), Half());
          kt = ktail.data();
          vt = vtail.data();
          ++testing::tiles_materialized();
        }
        numeric::halves_to_floats(kt, kf.data(), B * d);
        numeric::halves_to_floats(vt, vf.data(), B * d);
      }

      // Checksum encodings: memoized once per sealed tile, or derived fresh
      // (per block — single-token decode re-encodes the tail per token, the
      // residual O(tail) work).
      const Half *kc1, *kc2, *vc1, *vc2;
      if (cache_ok && full && it.kv.k_c1[j] != nullptr) {
        kc1 = it.kv.k_c1[j];
        kc2 = it.kv.k_c2[j];
        vc1 = it.kv.v_c1[j];
        vc2 = it.kv.v_c2[j];
      } else {
        // Encode from the fp32 images widened above — the four encodings
        // must not re-convert the tile four more times.
        ek1 = abft::StridedAbft::encode_rows_strided_widened(kf.data(), B, d,
                                                             s, false, inj);
        ek2 = abft::StridedAbft::encode_rows_strided_widened(kf.data(), B, d,
                                                             s, true, inj);
        ev1 = abft::StridedAbft::encode_cols_strided_widened(vf.data(), B, d,
                                                             s, false, inj);
        ev2 = abft::StridedAbft::encode_cols_strided_widened(vf.data(), B, d,
                                                             s, true, inj);
        kc1 = ek1.data();
        kc2 = ek2.data();
        vc1 = ev1.data();
        vc2 = ev2.data();
      }
      numeric::halves_to_floats(kc1, kc1f.data(), su * d);
      numeric::halves_to_floats(kc2, kc2f.data(), su * d);
      numeric::halves_to_floats(vc1, vc1f.data(), B * su);
      numeric::halves_to_floats(vc2, vc2f.data(), B * su);

      sim::gemm_f32_nt(qf.data(), R, d, kf.data(), B, S);
      sim::gemm_f32_nt(qf.data(), R, d, kc1f.data(), su, schk1);
      sim::gemm_f32_nt(qf.data(), R, d, kc2f.data(), su, schk2);
      vsrc = vf.data();
      vc1src = vc1f.data();
      vc2src = vc2f.data();
    }
    for (std::size_t r = 0; r < R; ++r) {
      // Visible lanes of row r in this tile: its causal prefix, clipped to
      // the tile.  A block never starts past the cache end, so visibility is
      // a per-row prefix of lanes and a per-row prefix of tiles.
      const std::size_t p = base + r;
      if (p < j * B) continue;  // row's causal prefix ends before this tile
      const std::size_t vis = std::min(B, p + 1 - j * B);
      if (inj) {
        for (std::size_t c = 0; c < vis; ++c) {
          S(r, c) = inj->corrupt(fault::Site::kGemm1, S(r, c));
        }
      }
    }
    // Linear verification runs pre-mask over the whole block: every lane —
    // visible, causally masked, or padding — satisfies the checksum relation
    // against this tile, so one block verify witnesses all rows at once.
    rep.gemm1 += abft::StridedAbft::verify_correct(S, schk1, schk2, s,
                                                   opt.abft_rel_threshold);

    for (std::size_t r = 0; r < R; ++r) {
      const std::size_t p = base + r;
      if (p < j * B) continue;
      const std::size_t vis = std::min(B, p + 1 - j * B);

      // Streaming softmax update, the single-row decode loop verbatim:
      // the running max sees only the row's visible lanes.
      float bmax = -std::numeric_limits<float>::infinity();
      for (std::size_t c = 0; c < vis; ++c) bmax = std::max(bmax, S(r, c));
      bmax = fault::corrupt(inj, fault::Site::kReduceMax, bmax);
      blockmax(r, j) = bmax;
      const float mnew = std::max(m[r], bmax);

      for (std::size_t c = 0; c < B; ++c) spre(r, c) = S(r, c);
      for (std::size_t c = 0; c < vis; ++c) {
        S(r, c) = fault::corrupt(inj, fault::Site::kExp,
                                 std::exp(S(r, c) - mnew));
      }
      // Lanes past the causal horizon carry zero softmax weight, exactly
      // like decode's padded lanes.
      for (std::size_t c = vis; c < B; ++c) S(r, c) = 0.0f;

      // Case-2 product check on the row (log domain, double).  Masked and
      // padded lanes participate in score space — decode's convention for
      // lanes that were never exponentiated.
      for (std::size_t jc = 0; jc < su; ++jc) {
        ++rep.exp_check.checks;
        double lhs = 0.0;
        bool bad = false;
        for (std::size_t ll = 0; ll < L; ++ll) {
          const std::size_t col = jc + ll * su;
          if (col >= vis) {
            lhs += static_cast<double>(spre(r, col)) - mnew;
            continue;
          }
          const float pv = S(r, col);
          if (!(pv > 0.0f) || !std::isfinite(pv)) {
            bad = true;
            break;
          }
          lhs += std::log(static_cast<double>(pv));
        }
        const double rhs =
            static_cast<double>(schk1(r, jc)) - static_cast<double>(L) * mnew;
        if (bad || std::fabs(lhs - rhs) > opt.exp_log_threshold) {
          ++rep.exp_check.flagged;
          // Repair the scores via the linear checksum, then re-exponentiate
          // the visible lanes (per-row temporaries: this path only runs
          // under a fault).
          MatrixF srow(1, B), c1row(1, su), c2row(1, su);
          for (std::size_t c = 0; c < B; ++c) srow(0, c) = spre(r, c);
          for (std::size_t c = 0; c < su; ++c) {
            c1row(0, c) = schk1(r, c);
            c2row(0, c) = schk2(r, c);
          }
          abft::StridedAbft::verify_correct(srow, c1row, c2row, s,
                                            opt.abft_rel_threshold);
          for (std::size_t c = 0; c < vis; ++c) {
            S(r, c) = std::exp(srow(0, c) - mnew);
          }
          ++rep.exp_check.recomputed;
          break;
        }
      }

      float rowsum = 0.0f;
      for (std::size_t c = 0; c < B; ++c) rowsum += S(r, c);
      rowsum = fault::corrupt(inj, fault::Site::kReduceSum, rowsum);

      const float f = std::exp(m[r] - mnew);
      for (std::size_t c = 0; c < d; ++c) {
        oacc(r, c) = fault::corrupt(inj, fault::Site::kRescale,
                                    f * oacc(r, c));
      }
      for (std::size_t jc = 0; jc < su; ++jc) {
        oc1(r, jc) *= f;
        oc2(r, jc) *= f;
      }
      l[r] = f * l[r] + rowsum;
      m[r] = mnew;

      // GEMM II (1 x B times B x d) + checksums, decode's scalar
      // accumulation order.  Masked lanes contribute exact zeros: P is
      // exactly 0.0f there, and 0 * v adds a signed zero that cannot change
      // the accumulator.  The row's softmax weights are rounded to fp16
      // once (bulk) instead of once per output column, and the loop runs
      // r2-outer axpy over contiguous V rows — each acc2[c] still sums r2
      // in the same sequential order (and the vector FMA form is
      // bit-identical under the exact-product precondition: fp16 weights
      // against fp16-valued V), so the result is unchanged.
      numeric::floats_to_halves(&S(r, 0), ph.data(), B);
      numeric::halves_to_floats(ph.data(), pf.data(), B);
      std::fill(acc2.begin(), acc2.end(), 0.0f);
      if (vsrc8 != nullptr) {
        // Fused int8 V stream: axpy_f32_i8 widens each quantized row in
        // registers — bit-identical to axpy_f32 over the dequantized row.
        for (std::size_t r2 = 0; r2 < B; ++r2) {
          numeric::axpy_f32_i8(pf[r2], vsrc8 + r2 * d, vscale, acc2.data(),
                               d);
        }
      } else if (vsrcH != nullptr) {
        // Fused fp16 V stream (kF16T tier): axpy_f32_h widens each stored
        // row in registers — bit-identical to axpy_f32 over the widened row.
        for (std::size_t r2 = 0; r2 < B; ++r2) {
          numeric::axpy_f32_h(pf[r2], vsrcH + r2 * d, acc2.data(), d);
        }
      } else {
        for (std::size_t r2 = 0; r2 < B; ++r2) {
          numeric::axpy_f32(pf[r2], vsrc + r2 * d, acc2.data(), d);
        }
      }
      for (std::size_t c = 0; c < d; ++c) {
        oacc(r, c) =
            fault::corrupt(inj, fault::Site::kGemm2, oacc(r, c) + acc2[c]);
      }
      // Output checksum rows: accumulate the s-wide tile contribution r2-
      // ascending into scratch, then add once into the running checksums —
      // the same compute-then-add order as the scalar per-jc loops.
      std::fill(tchk1.begin(), tchk1.end(), 0.0f);
      std::fill(tchk2.begin(), tchk2.end(), 0.0f);
      if (vc1H != nullptr) {
        for (std::size_t r2 = 0; r2 < B; ++r2) {
          numeric::axpy_f32_h(pf[r2], vc1H + r2 * su, tchk1.data(), su);
          numeric::axpy_f32_h(pf[r2], vc2H + r2 * su, tchk2.data(), su);
        }
      } else {
        for (std::size_t r2 = 0; r2 < B; ++r2) {
          numeric::axpy_f32(pf[r2], vc1src + r2 * su, tchk1.data(), su);
          numeric::axpy_f32(pf[r2], vc2src + r2 * su, tchk2.data(), su);
        }
      }
      for (std::size_t jc = 0; jc < su; ++jc) {
        oc1(r, jc) += tchk1[jc];
        oc2(r, jc) += tchk2[jc];
      }
    }
  }

  // SNVR range restriction per row over its own tile-max history.
  for (std::size_t r = 0; r < R; ++r) {
    const std::size_t p = base + r;
    const std::size_t row_tiles = p / B + 1;
    const auto res = softmax::snvr_check_rowsum(
        l[r], std::span<const float>(&blockmax(r, 0), row_tiles), m[r], p + 1,
        opt.snvr_slack);
    if (res.violated) {
      l[r] = res.corrected_value;
      ++rep.range_corrections;
    }
  }

  // Normalize + final unified O verification over the whole block.
  MatrixF ofin(R, d);
  for (std::size_t r = 0; r < R; ++r) {
    const float inv = 1.0f / l[r];
    for (std::size_t c = 0; c < d; ++c) {
      ofin(r, c) = oacc(r, c) * inv;
    }
    for (std::size_t jc = 0; jc < su; ++jc) {
      oc1(r, jc) *= inv;
      oc2(r, jc) *= inv;
    }
  }
  rep.gemm2 += abft::StridedAbft::verify_correct(ofin, oc1, oc2, s,
                                                 opt.abft_rel_threshold);
  for (std::size_t r = 0; r < R; ++r) {
    float* dst = it.out + r * os;
    for (std::size_t c = 0; c < d; ++c) dst[c] = ofin(r, c);
  }
  return rep;
}

}  // namespace

FtReport efta_decode_block(const DecodeWorkItem& item, const EftaOptions& opt,
                           fault::FaultInjector* inj) {
  validate_item(item, opt);
  const std::size_t before = inj ? inj->injected() : 0;
  FtReport rep = block_slice(item, opt, inj);
  if (inj) rep.faults_injected = inj->injected() - before;
  return rep;
}

FtReport efta_decode_step(const KvSlice& kv, std::span<const Half> q,
                          std::span<float> out, const EftaOptions& opt,
                          fault::FaultInjector* inj) {
  if (q.size() != kv.d || out.size() != kv.d) {
    throw std::invalid_argument(
        "efta decode: q/out spans must hold d values");
  }
  return efta_decode_block(DecodeWorkItem{kv, q.data(), out.data(), 1, 0, 0},
                           opt, inj);
}

FtReport efta_decode_step(const MatrixH& k_cache, const MatrixH& v_cache,
                          std::span<const Half> q, std::span<float> out,
                          const EftaOptions& opt, fault::FaultInjector* inj) {
  const std::size_t n = k_cache.rows(), d = k_cache.cols();
  if (v_cache.rows() != n || v_cache.cols() != d) {
    throw std::invalid_argument("efta_decode_step: shape mismatch");
  }
  // A contiguous n x d cache is a degenerate tiled view: tile t starts at
  // row 64t, and the kernel never reads past the valid rows of the ragged
  // final tile.
  const std::size_t B = KvSlice::kTileRows;
  const std::size_t nblk = (n + B - 1) / B;
  std::vector<const Half*> kt(nblk), vt(nblk);
  for (std::size_t j = 0; j < nblk; ++j) {
    kt[j] = k_cache.data() + j * B * d;
    vt[j] = v_cache.data() + j * B * d;
  }
  const KvSlice kv{kt.data(), vt.data(), n, d};
  return efta_decode_step(kv, q, out, opt, inj);
}

FtReport efta_decode_batch(std::span<const DecodeWorkItem> items,
                           const EftaOptions& opt, fault::FaultInjector* inj,
                           std::span<FtReport> per_item) {
  if (!per_item.empty() && per_item.size() != items.size()) {
    throw std::invalid_argument(
        "efta_decode_batch: per_item size must match items");
  }
  // An idle tick must be free: spinning up an OpenMP team for zero items
  // costs a barrier per call, which a scheduler polling an empty queue pays
  // on every tick.
  if (items.empty()) return {};
  // Validate every item up front: an exception must not be raised inside
  // the OpenMP worksharing region (that would terminate the process).
  for (std::size_t i = 0; i < items.size(); ++i) {
    try {
      validate_item(items[i], opt);
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("efta_decode_batch: item " +
                                  std::to_string(i) + ": " + e.what());
    }
  }
  FtReport total;

  // Any non-null injector — armed or a calls()-counting probe — is
  // deterministic, stateful, and not thread-safe, so it forces the serial
  // path, exactly like efta_decode_block threading the same injector.
  if (inj) {
    for (std::size_t i = 0; i < items.size(); ++i) {
      const std::size_t before = inj->injected();
      FtReport r = block_slice(items[i], opt, inj);
      r.faults_injected = inj->injected() - before;
      if (!per_item.empty()) per_item[i] = r;
      total += r;
    }
    return total;
  }

#pragma omp parallel
  {
    FtReport local;
#pragma omp for schedule(dynamic) nowait
    for (std::size_t i = 0; i < items.size(); ++i) {
      FtReport r = block_slice(items[i], opt, nullptr);
      if (!per_item.empty()) per_item[i] = r;
      local += r;
    }
#pragma omp critical
    total += local;
  }
  return total;
}

std::pair<std::size_t, std::size_t> shard_range(std::size_t shard,
                                                std::size_t nshards,
                                                std::size_t total) {
  if (nshards == 0 || shard >= nshards) {
    throw std::invalid_argument("shard_range: shard index out of range");
  }
  const std::size_t base = total / nshards;
  const std::size_t rem = total % nshards;
  const std::size_t begin = shard * base + std::min(shard, rem);
  return {begin, begin + base + (shard < rem ? 1 : 0)};
}

ShardSpec ShardSpec::for_shard(std::size_t shard, std::size_t nshards,
                               std::size_t total_heads) {
  const auto [begin, end] = shard_range(shard, nshards, total_heads);
  return ShardSpec{begin, end};
}

FtReport efta_decode_batch(std::span<const DecodeWorkItem> items,
                           std::span<const std::size_t> item_heads,
                           const ShardSpec& shard, const EftaOptions& opt,
                           fault::FaultInjector* inj,
                           std::span<FtReport> per_item) {
  if (item_heads.size() != items.size()) {
    throw std::invalid_argument(
        "efta_decode_batch: item_heads size must match items");
  }
  if (!per_item.empty() && per_item.size() != items.size()) {
    throw std::invalid_argument(
        "efta_decode_batch: per_item size must match items");
  }
  // Serial over the shard's own items, in batch order — the same item order
  // the unsharded serial path runs, so a stateful injector threaded through
  // one shard observes its items exactly as the full batch would.
  FtReport total;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (!shard.contains(item_heads[i])) continue;
    try {
      validate_item(items[i], opt);
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("efta_decode_batch: item " +
                                  std::to_string(i) + ": " + e.what());
    }
    const std::size_t before = inj ? inj->injected() : 0;
    FtReport r = block_slice(items[i], opt, inj);
    if (inj) r.faults_injected = inj->injected() - before;
    if (!per_item.empty()) per_item[i] = r;
    total += r;
  }
  return total;
}

}  // namespace ftt::core
