#include "core/decode.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "abft/strided_abft.hpp"
#include "sim/mma.hpp"
#include "softmax/snvr.hpp"

namespace ftt::core {

using attention::FtReport;
using numeric::Half;
using tensor::MatrixF;
using tensor::MatrixH;

FtReport efta_decode_step(const MatrixH& k_cache, const MatrixH& v_cache,
                          std::span<const Half> q, std::span<float> out,
                          const EftaOptions& opt, fault::FaultInjector* inj) {
  const std::size_t n = k_cache.rows(), d = k_cache.cols();
  const std::size_t B = 64;
  const int s = opt.stride;
  const auto su = static_cast<std::size_t>(s);
  if (n % B != 0 || q.size() != d || out.size() != d ||
      v_cache.rows() != n || v_cache.cols() != d ||
      d % su != 0) {
    throw std::invalid_argument("efta_decode_step: shape mismatch");
  }
  const std::size_t nblk = n / B;
  FtReport rep;

  // Pre-scaled fp16 query (one MMA operand row).
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  MatrixH qh(1, d);
  for (std::size_t c = 0; c < d; ++c) {
    qh(0, c) = Half(q[c].to_float() * scale);
  }

  float m = -std::numeric_limits<float>::infinity();
  float l = 0.0f;
  std::vector<float> oacc(d, 0.0f);
  MatrixF oc1(1, su, 0.0f), oc2(1, su, 0.0f);
  std::vector<float> blockmax(nblk);

  MatrixF S(1, B), schk1(1, su), schk2(1, su);
  for (std::size_t j = 0; j < nblk; ++j) {
    // Slice the KV tile.
    MatrixH kj(B, d), vj(B, d);
    for (std::size_t r = 0; r < B; ++r) {
      for (std::size_t c = 0; c < d; ++c) {
        kj(r, c) = k_cache(j * B + r, c);
        vj(r, c) = v_cache(j * B + r, c);
      }
    }
    const MatrixH kc1 = abft::StridedAbft::encode_rows_strided(kj, s, false, inj);
    const MatrixH kc2 = abft::StridedAbft::encode_rows_strided(kj, s, true, inj);
    const MatrixH vc1 = abft::StridedAbft::encode_cols_strided(vj, s, false, inj);
    const MatrixH vc2 = abft::StridedAbft::encode_cols_strided(vj, s, true, inj);

    sim::gemm_fp16_nt(qh, kj, S);
    if (inj && inj->armed()) {
      for (std::size_t c = 0; c < B; ++c) {
        S(0, c) = inj->corrupt(fault::Site::kGemm1, S(0, c));
      }
    }
    sim::gemm_fp16_nt(qh, kc1, schk1);
    sim::gemm_fp16_nt(qh, kc2, schk2);
    rep.gemm1 +=
        abft::StridedAbft::verify_correct(S, schk1, schk2, s,
                                          opt.abft_rel_threshold);

    // Streaming softmax update for the single row.
    float bmax = -std::numeric_limits<float>::infinity();
    for (std::size_t c = 0; c < B; ++c) bmax = std::max(bmax, S(0, c));
    bmax = fault::corrupt(inj, fault::Site::kReduceMax, bmax);
    blockmax[j] = bmax;
    const float mnew = std::max(m, bmax);

    MatrixF spre = S;
    float rowsum = 0.0f;
    for (std::size_t c = 0; c < B; ++c) {
      S(0, c) = fault::corrupt(inj, fault::Site::kExp,
                               std::exp(S(0, c) - mnew));
      rowsum += S(0, c);
    }
    // Case-2 product check on the decode row (log domain, double).
    {
      const std::size_t L = B / su;
      for (std::size_t jc = 0; jc < su; ++jc) {
        ++rep.exp_check.checks;
        double lhs = 0.0;
        bool bad = false;
        for (std::size_t ll = 0; ll < L; ++ll) {
          const float p = S(0, jc + ll * su);
          if (!(p > 0.0f) || !std::isfinite(p)) {
            bad = true;
            break;
          }
          lhs += std::log(static_cast<double>(p));
        }
        const double rhs =
            static_cast<double>(schk1(0, jc)) - static_cast<double>(L) * mnew;
        if (bad || std::fabs(lhs - rhs) > opt.exp_log_threshold) {
          ++rep.exp_check.flagged;
          // Repair the scores via the linear checksum, then re-exponentiate.
          abft::StridedAbft::verify_correct(spre, schk1, schk2, s,
                                            opt.abft_rel_threshold);
          rowsum = 0.0f;
          for (std::size_t c = 0; c < B; ++c) {
            S(0, c) = std::exp(spre(0, c) - mnew);
          }
          for (std::size_t c = 0; c < B; ++c) rowsum += S(0, c);
          ++rep.exp_check.recomputed;
          break;
        }
      }
    }
    rowsum = fault::corrupt(inj, fault::Site::kReduceSum, rowsum);

    const float f = std::exp(m - mnew);
    for (std::size_t c = 0; c < d; ++c) {
      oacc[c] = fault::corrupt(inj, fault::Site::kRescale, f * oacc[c]);
    }
    for (std::size_t jc = 0; jc < su; ++jc) {
      oc1(0, jc) *= f;
      oc2(0, jc) *= f;
    }
    l = f * l + rowsum;
    m = mnew;

    // GEMM II (1 x B times B x d) + checksums.
    for (std::size_t c = 0; c < d; ++c) {
      float acc = 0.0f;
      for (std::size_t r = 0; r < B; ++r) {
        acc += numeric::round_to_half(S(0, r)) * vj(r, c).to_float();
      }
      oacc[c] = fault::corrupt(inj, fault::Site::kGemm2, oacc[c] + acc);
    }
    for (std::size_t jc = 0; jc < su; ++jc) {
      float a1 = 0.0f, a2 = 0.0f;
      for (std::size_t r = 0; r < B; ++r) {
        const float p = numeric::round_to_half(S(0, r));
        a1 += p * vc1(r, jc).to_float();
        a2 += p * vc2(r, jc).to_float();
      }
      oc1(0, jc) += a1;
      oc2(0, jc) += a2;
    }
  }

  // SNVR range restriction of the single rowsum.
  const auto res = softmax::snvr_check_rowsum(
      l, std::span<const float>(blockmax.data(), nblk), m, n, opt.snvr_slack);
  if (res.violated) {
    l = res.corrected_value;
    ++rep.range_corrections;
  }

  // Normalize + final unified O verification.
  MatrixF ofin(1, d);
  const float inv = 1.0f / l;
  for (std::size_t c = 0; c < d; ++c) ofin(0, c) = oacc[c] * inv;
  for (std::size_t jc = 0; jc < su; ++jc) {
    oc1(0, jc) *= inv;
    oc2(0, jc) *= inv;
  }
  rep.gemm2 += abft::StridedAbft::verify_correct(ofin, oc1, oc2, s,
                                                 opt.abft_rel_threshold);
  for (std::size_t c = 0; c < d; ++c) out[c] = ofin(0, c);
  if (inj) rep.faults_injected = inj->injected();
  return rep;
}

}  // namespace ftt::core
