#include "softmax/softmax.hpp"

#include <cmath>
#include <limits>

namespace ftt::softmax {

using tensor::MatrixF;

namespace {

/// One softmax evaluation of `src` into `dst` with fault hooks.
void eval_softmax(const MatrixF& src, MatrixF& dst, fault::FaultInjector* inj) {
  const std::size_t R = src.rows(), C = src.cols();
  for (std::size_t r = 0; r < R; ++r) {
    float m = -std::numeric_limits<float>::infinity();
    for (std::size_t c = 0; c < C; ++c) m = std::max(m, src(r, c));
    m = fault::corrupt(inj, fault::Site::kReduceMax, m);

    float sum = 0.0f;
    for (std::size_t c = 0; c < C; ++c) {
      const float e =
          fault::corrupt(inj, fault::Site::kExp, std::exp(src(r, c) - m));
      dst(r, c) = e;
      sum += e;
    }
    sum = fault::corrupt(inj, fault::Site::kReduceSum, sum);
    const float inv = 1.0f / sum;
    for (std::size_t c = 0; c < C; ++c) dst(r, c) *= inv;
  }
}

float max_abs(const MatrixF& a, const MatrixF& b) {
  float m = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(a.data()[i] - b.data()[i]));
  }
  return m;
}

bool rowsums_near_one(const MatrixF& p, float eps) {
  for (std::size_t r = 0; r < p.rows(); ++r) {
    float s = 0.0f;
    for (std::size_t c = 0; c < p.cols(); ++c) s += p(r, c);
    if (std::fabs(s - 1.0f) > eps) return false;
  }
  return true;
}

}  // namespace

void row_softmax(MatrixF& S, fault::FaultInjector* inj) {
  MatrixF out(S.rows(), S.cols());
  eval_softmax(S, out, inj);
  S = out;
}

DmrResult dmr_row_softmax(MatrixF& S, float eps, fault::FaultInjector* inj,
                          std::size_t max_rounds) {
  DmrResult res;
  MatrixF prev(S.rows(), S.cols());
  MatrixF cur(S.rows(), S.cols());
  eval_softmax(S, prev, inj);
  for (std::size_t round = 1; round < max_rounds; ++round) {
    eval_softmax(S, cur, inj);
    res.recomputes = round;  // evaluations beyond the first
    if (max_abs(cur, prev) < eps && rowsums_near_one(cur, eps)) {
      res.converged = true;
      S = cur;
      return res;
    }
    std::swap(cur, prev);
  }
  // Never converged within budget: keep the last evaluation.
  S = prev;
  return res;
}

sim::CostBreakdown softmax_costs(double rows, double cols) {
  sim::CostBreakdown b;
  auto& sm = b[sim::Phase::kSoftmax];
  sm.fp32_flops = 3.0 * rows * cols;  // max-compares, subtracts, sum-adds
  sm.sfu_ops = rows * cols;           // exp
  b[sim::Phase::kRescale].fp32_flops = rows * cols;  // final 1/sum scaling
  return b;
}

sim::CostBreakdown dmr_overhead_costs(double rows, double cols) {
  sim::CostBreakdown b;
  // One full replica evaluation...
  const sim::CostBreakdown replica = softmax_costs(rows, cols);
  b[sim::Phase::kDmr] = replica.total();
  // ...plus the elementwise agreement check and the rowsum identity.
  b[sim::Phase::kDmr].fp32_flops += 2.0 * rows * cols;
  return b;
}

}  // namespace ftt::softmax
