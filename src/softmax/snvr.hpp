#pragma once
// Selective neuron value restriction (SNVR) range bounds, paper §3.4 Case 3.
//
// The softmax denominator ℓ (the running rowsum of exp(s - m)) is protected
// not by a checksum but by its theoretical range:
//
//     Σ_k exp(m_ik − m_ij)  ≤  ℓ_ij  ≤  seq_len
//
// where m_ik is the block row-max of iteration k and m_ij the global row-max.
// The lower bound holds because every block contributes at least its own
// max term; the upper bound because every exp(s − m_global) ≤ 1.  A violated
// range is corrected by *replacing* ℓ with the lower-bound approximation —
// the paper's recompute-free correction, valid because attention mass
// concentrates at the per-block maxima.

#include <cstddef>
#include <span>

namespace ftt::softmax {

/// Σ_k exp(block_max_k − global_max): the SNVR lower bound / approximate
/// rowsum for one row, given the per-iteration block maxima.
double snvr_lower_bound(std::span<const float> block_maxes, float global_max);

struct SnvrRangeResult {
  bool violated = false;
  float corrected_value = 0.0f;
};

/// Check one rowsum against the SNVR range and produce the replacement value
/// if it is out of range.  `slack` widens the lower bound multiplicatively to
/// absorb fp16/fp32 rounding (an SEU perturbation is orders of magnitude
/// larger than rounding noise).
SnvrRangeResult snvr_check_rowsum(float rowsum,
                                  std::span<const float> block_maxes,
                                  float global_max, std::size_t seq_len,
                                  float slack = 1e-3f);

}  // namespace ftt::softmax
