#pragma once
// Softmax primitives and their operation-level protections.
//
// The decoupled baseline protects the row softmax with dual modular
// redundancy (DMR, Eqs. 10-11): the softmax is recomputed until two
// consecutive results agree within a tolerance, with the rowsum-of-P == 1
// identity as an extra invariant.  EFTA replaces this with selective neuron
// value restriction (SNVR, §3.4), whose range bounds live in `snvr.hpp` and
// whose checksum-reuse verification is part of the fused kernel in core/.

#include "fault/fault.hpp"
#include "sim/cost.hpp"
#include "tensor/tensor.hpp"

namespace ftt::softmax {

/// Numerically stable row softmax of S in place: p_ij = exp(s_ij - max_i) /
/// sum_k exp(s_ik - max_i).  Fault hooks at reduce-max, EXP and reduce-sum.
void row_softmax(tensor::MatrixF& S, fault::FaultInjector* inj = nullptr);

struct DmrResult {
  std::size_t recomputes = 0;  ///< extra full softmax evaluations beyond one
  bool converged = false;
};

/// DMR-protected row softmax: evaluate, re-evaluate, accept when two
/// consecutive evaluations agree elementwise within `eps` *and* each row of
/// the result sums to 1 within `eps` (Eqs. 10-11).  Keeps retrying up to
/// `max_rounds` total evaluations.
DmrResult dmr_row_softmax(tensor::MatrixF& S, float eps,
                          fault::FaultInjector* inj = nullptr,
                          std::size_t max_rounds = 4);

/// Operation counts of one unprotected R x C row softmax.
sim::CostBreakdown softmax_costs(double rows, double cols);

/// Protection overhead of DMR on an R x C softmax: one full replica
/// (the expected SEU-free case) plus the elementwise comparison.
sim::CostBreakdown dmr_overhead_costs(double rows, double cols);

}  // namespace ftt::softmax
