#include "softmax/snvr.hpp"

#include <cmath>

namespace ftt::softmax {

double snvr_lower_bound(std::span<const float> block_maxes, float global_max) {
  double s = 0.0;
  for (const float m : block_maxes) {
    s += std::exp(static_cast<double>(m) - static_cast<double>(global_max));
  }
  return s;
}

SnvrRangeResult snvr_check_rowsum(float rowsum,
                                  std::span<const float> block_maxes,
                                  float global_max, std::size_t seq_len,
                                  float slack) {
  const double lower = snvr_lower_bound(block_maxes, global_max);
  const double upper = static_cast<double>(seq_len) * (1.0 + slack);
  SnvrRangeResult res;
  if (!(rowsum >= lower * (1.0 - slack)) || !(rowsum <= upper) ||
      !std::isfinite(rowsum)) {
    res.violated = true;
    res.corrected_value = static_cast<float>(lower);
  } else {
    res.corrected_value = rowsum;
  }
  return res;
}

}  // namespace ftt::softmax
