#pragma once
// Shard-parallel tick execution: the compute body of a DecodeEngine tick
// (layer norms, QKV/output projections, cache-backed attention, FFN, final
// LN over the tick's stacked rows) extracted from the engine and split
// across N in-process shard workers driven by a barrier-stepped executor.
//
// Decomposition — chosen so the sharded tick is BIT-IDENTICAL to the solo
// engine for any shard count:
//
//   * row phases (LN1/LN2/final-LN, residual adds, fp16 narrowing): every
//     operation is strictly per-row or elementwise, so an even row-range
//     partition reproduces the solo values exactly;
//   * QKV: column-parallel by attention-head ranges (Linear::slice_out over
//     [begin_head, end_head) * head_dim).  head_dim is a multiple of the
//     64-column ABFT tile, so each shard's checksum tiles are a subset of
//     the full layer's — values and ABFT report totals match solo exactly;
//   * attention: per-(request, head) work items partitioned by the worker's
//     core::ShardSpec through the head-range efta_decode_batch overload —
//     items are independent, outputs land in disjoint head-column segments;
//   * output projection and FFN: column-parallel over even 64-tile column
//     ranges (same subset argument as QKV), GELU applied per shard on its
//     own slice (elementwise);
//   * the KV cache append, the per-item report rollup and the speculative
//     commit stay on the coordinator thread between phases — the paged
//     TilePool and the injector-ordering invariants are untouched.
//
// CombineMode::kRingReduce swaps the output projection for the
// row-parallel (Megatron-style) split: each shard multiplies its head
// columns of the attention output against the matching input columns of
// wo (Linear::slice_in) into a full-width partial sum, and the
// DeterministicCombiner reduces the partials ring-style in fixed shard
// order.  That reduction re-associates float addition, so ring mode is
// deterministic for a fixed shard count but not bitwise-equal to solo —
// which is why column-parallel is the default and the parity tests pin it.
//
// Fault injection: a FaultInjector is stateful and call-order-dependent, so
// the engine never routes an injected tick through the parallel path — it
// runs run_tick_solo (the extracted solo body, exact solo call order) and
// derives per-shard attribution from the per-item reports instead.  The
// attention kernel inside a shard runs serially on the worker's thread (no
// nested OpenMP team): the shard workers ARE the tick's thread-level
// parallelism, and raw std::thread workers keep the path ThreadSanitizer-
// clean.

#include <barrier>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "attention/ft_report.hpp"
#include "core/decode.hpp"
#include "serve/combiner.hpp"
#include "serve/tile_pool.hpp"
#include "transformer/model.hpp"

namespace ftt::serve {

/// How shard workers combine the output projection (see file header).
enum class CombineMode {
  kColumnParallel,  ///< disjoint 64-tile column ranges; bit-identical to solo
  kRingReduce,      ///< row-parallel partial sums, ring-reduced in shard order
};

/// One tick entry's compute view: where its rows sit in the stacked matrix
/// and which paged cache its K/V rows append to.  The engine keeps the
/// request bookkeeping (ids, drafts, commits); the shard layer sees only
/// the compute.
struct ShardTickEntry {
  PagedKvCache* cache = nullptr;
  std::size_t row0 = 0;  ///< first row in the stacked X
  std::size_t rows = 0;  ///< query-block rows (prefill chunk / 1 + drafts)
  /// Speculative blocks must not seal tiles until the commit decides what
  /// stays (decode blocks with rows > 1).
  bool defer_seal = false;
};

/// Merged fault-tolerance outcome of one tick's compute.
struct TickResult {
  abft::Report linear;            ///< projections + FFN ABFT
  attention::FtReport attention;  ///< merged over all attention items
  std::size_t activations_clipped = 0;
};

/// The solo tick body, extracted verbatim from the pre-shard engine: full
/// linears, one OpenMP-parallel (or, under an injector, serial solo-ordered)
/// efta_decode_batch per layer.  `per_item` must hold entries * heads
/// zeroed reports; each (entry, head) slot accumulates across layers.
/// X is the residual stream (updated in place); y receives the final-LN
/// output.  This is the reference the sharded path is bit-compared against,
/// and the only tick path that accepts a FaultInjector.
TickResult run_tick_solo(const transformer::Model& model,
                         std::span<const ShardTickEntry> entries,
                         tensor::MatrixF& X, tensor::MatrixF& y,
                         std::span<attention::FtReport> per_item,
                         const core::EftaOptions& efta, bool protect_linear,
                         fault::FaultInjector* inj);

/// One shard's slice of every layer: its head range, its pre-sliced
/// column-parallel linears (weights copied once at construction), its row
/// range of the current tick, and its per-tick report accumulators.
class ShardWorker {
 public:
  ShardWorker(const transformer::Model& model, std::size_t shard,
              std::size_t nshards, CombineMode combine);

  [[nodiscard]] const core::ShardSpec& head_range() const noexcept {
    return spec_;
  }

  /// Reset per-tick accumulators and compute this tick's row range.
  void begin_tick(std::size_t total_rows);

  // --- phase bodies (each runs between two barriers; see ShardedEngine) ---
  /// dst rows [r0, r1) = src rows, then ln over those rows.
  void copy_ln_rows(const tensor::MatrixF& src, tensor::MatrixF& dst,
                    const transformer::LayerNorm& ln) const;
  /// fp16-round this shard's rows of src into dst.
  void narrow_rows(const tensor::MatrixF& src, tensor::MatrixH& dst) const;
  /// Q/K/V head-column slices of layer `layer` into the full matrices.
  void project_qkv(std::size_t layer, const tensor::MatrixF& h,
                   tensor::MatrixF& qm, tensor::MatrixF& km,
                   tensor::MatrixF& vm, transformer::LinearProtect mode);
  /// This shard's attention items (head-range batch overload, serial).
  void attend(std::span<const core::DecodeWorkItem> items,
              std::span<const std::size_t> item_heads,
              const core::EftaOptions& efta,
              std::span<attention::FtReport> per_item);
  /// Output projection, column-parallel tile range (default mode).
  void project_wo_cols(std::size_t layer, const tensor::MatrixF& attn,
                       tensor::MatrixF& proj, transformer::LinearProtect mode);
  /// Output projection, row-parallel partial sum (ring mode); the partial
  /// is readable via partial() until the next tick.
  void project_wo_partial(std::size_t layer, const tensor::MatrixF& attn,
                          transformer::LinearProtect mode);
  [[nodiscard]] const tensor::MatrixF& partial() const noexcept {
    return partial_;
  }
  /// X rows += add rows; h2 rows = X rows; ln2 over the rows.
  void residual_ln_rows(tensor::MatrixF& X, const tensor::MatrixF& add,
                        tensor::MatrixF& h2,
                        const transformer::LayerNorm& ln2) const;
  /// FFN first linear (column slice) + per-slice range-restricted GELU.
  void ffn_w1_gelu(std::size_t layer, const tensor::MatrixF& h2,
                   tensor::MatrixF& mid, transformer::LinearProtect mode,
                   bool protect);
  /// FFN second linear (column slice over the full activation matrix).
  void ffn_w2(std::size_t layer, const tensor::MatrixF& mid,
              tensor::MatrixF& ffn_out, transformer::LinearProtect mode);
  /// X rows += add rows.
  void residual_rows(tensor::MatrixF& X, const tensor::MatrixF& add) const;

  // --- per-tick accumulators (merged by the executor in shard order) ---
  [[nodiscard]] const abft::Report& linear_report() const noexcept {
    return linear_;
  }
  [[nodiscard]] std::size_t activations_clipped() const noexcept {
    return clipped_;
  }

 private:
  struct LayerSlices {
    transformer::Linear wq, wk, wv;          ///< head-column slices
    transformer::Linear wo_cols;             ///< 64-tile column slice
    transformer::Linear w1, w2;              ///< FFN 64-tile column slices
    transformer::RangeRestrictedGelu act;    ///< block's GELU (per-slice)
    std::optional<transformer::Linear> wo_rows;  ///< ring-mode input slice
  };

  /// forward the slice into scratch_, scatter into full columns
  /// [col0, col0 + slice.out_features()).
  void project_cols(const transformer::Linear& slice, std::size_t col0,
                    const tensor::MatrixF& x, tensor::MatrixF& full,
                    transformer::LinearProtect mode);

  std::size_t shard_ = 0, nshards_ = 1;
  std::size_t hidden_ = 0;
  core::ShardSpec spec_;       ///< attention-head range
  std::size_t qkv_col0_ = 0;   ///< begin_head * head_dim
  std::size_t qkv_cols_ = 0;   ///< heads() * head_dim
  std::size_t hid_col0_ = 0;   ///< 64-tile column range over hidden
  std::size_t inner_col0_ = 0; ///< 64-tile column range over ffn inner
  std::vector<LayerSlices> layers_;
  std::size_t row0_ = 0, row1_ = 0;  ///< this tick's row range
  tensor::MatrixF scratch_;    ///< dense column-slice output
  tensor::MatrixF xslice_;     ///< ring mode: gathered input columns
  tensor::MatrixF partial_;    ///< ring mode: full-width partial sum
  abft::Report linear_;
  std::size_t clipped_ = 0;
};

/// Barrier-stepped executor: owns N ShardWorkers and N-1 persistent worker
/// threads (the caller is shard 0), and steps them phase by phase through
/// run_tick.  Every phase is the same function applied to every shard;
/// consecutive phases are separated by a full barrier, and everything
/// order-sensitive (cache appends, ring reduction, report merges) runs on
/// the coordinator between phases, in fixed shard order.
class ShardedEngine {
 public:
  ShardedEngine(const transformer::Model& model, std::size_t shards,
                CombineMode combine = CombineMode::kColumnParallel);
  ~ShardedEngine();
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  [[nodiscard]] std::size_t shards() const noexcept { return workers_.size(); }
  [[nodiscard]] CombineMode combine() const noexcept { return combine_; }
  [[nodiscard]] const ShardWorker& worker(std::size_t s) const {
    return workers_.at(s);
  }

  /// The sharded tick body: same contract as run_tick_solo (per_item holds
  /// entries * heads zeroed reports, X is the residual stream, y gets the
  /// final-LN output), minus the injector — injected ticks must run solo.
  /// In the default column-parallel mode the outputs, per-item reports and
  /// merged TickResult are bit-identical to run_tick_solo for any shard
  /// count.
  TickResult run_tick(std::span<const ShardTickEntry> entries,
                      tensor::MatrixF& X, tensor::MatrixF& y,
                      std::span<attention::FtReport> per_item,
                      const core::EftaOptions& efta, bool protect_linear);

 private:
  /// Run fn(shard) on every shard — shard 0 on the calling thread — and
  /// return when all are done.  Exceptions are collected and the first
  /// (lowest shard index) is rethrown on the caller.
  void run_phase(const std::function<void(std::size_t)>& fn);
  void worker_loop(std::size_t shard);

  const transformer::Model* model_;
  CombineMode combine_;
  DeterministicCombiner combiner_;
  std::vector<ShardWorker> workers_;
  std::vector<std::thread> threads_;
  std::unique_ptr<std::barrier<>> start_, done_;
  const std::function<void(std::size_t)>* fn_ = nullptr;
  bool stop_ = false;
  std::vector<std::exception_ptr> errors_;
};

}  // namespace ftt::serve
