#pragma once
// Paged KV storage: one shared pool of 64-row context tiles behind every
// request's block table (vLLM-style PagedAttention, specialized to the
// fault-tolerant decode kernel's checksum footprint).
//
// A *context tile* holds 64 tokens of K/V for every layer and head of the
// model, plus — when checksum memoization is enabled — the four sealed
// strided-ABFT encodings of each (layer, head) 64 x dim tile pair, all in
// one contiguous slab.  Because the encodings live inside the tile, sharing
// a tile shares its ABFT memo too: a prefix computed (and encoded) once is
// verified from the same sealed checksums by every request that maps it.
//
// Tiles are refcounted.  A request's PagedKvCache maps context positions to
// pool tiles through a block table; sealed tiles are immutable, so sharing
// needs no copy-on-write machinery beyond the rule that only the *open tail
// tile* of each request is ever written, and the tail is always private
// (shared tiles are attached only in the sealed state).  When a tile's
// refcount drops to zero it is not destroyed:
//
//   * unpublished tiles (generated rows, aborted prefills) go on a dead
//     list and are the first choice for reuse — reclaiming them loses
//     nothing;
//   * published tiles (sealed prompt tiles registered under a prefix hash
//     chain) go on an LRU cached list and remain discoverable through
//     lookup_shared() until capacity pressure evicts them, oldest first.
//
// acquire() prefers dead tiles, then fresh capacity, then LRU eviction of
// cached tiles; only when every tile is referenced does it fail (kNoTile),
// which is the signal the engine turns into preemption.
//
// Prefix sharing is keyed by a hash chain: tile t's key extends tile t-1's
// key with the bytes that *determine* the tile's sealed contents (the
// engine hashes the prompt's hidden rows — the model is deterministic and
// the batched path bit-identical per row, so equal prompt prefixes produce
// bit-identical sealed tiles in every layer).  Keys are 128 bits (two
// independent 64-bit FNV-1a chains) so an accidental collision — which
// would silently splice the wrong KV into a context — is out of reach for
// any realistic pool lifetime; lookups compare the full key.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "abft/strided_abft.hpp"
#include "core/decode.hpp"
#include "numeric/fp16.hpp"

namespace ftt::serve {

/// 128-bit prefix-chain key.  Value-initialized = the empty-chain root.
struct ChainKey {
  std::uint64_t a = 0, b = 0;

  friend bool operator==(const ChainKey& x, const ChainKey& y) noexcept {
    return x.a == y.a && x.b == y.b;
  }
};

/// Extend `parent` with `bytes` more input (two independent FNV-1a chains).
[[nodiscard]] ChainKey chain_extend(const ChainKey& parent, const void* data,
                                    std::size_t bytes) noexcept;

struct TilePoolOptions {
  std::size_t layers = 0;
  std::size_t heads = 0;
  std::size_t dim = 0;
  /// Pool capacity in context tiles.  0 = unbounded: acquire() never fails,
  /// the pool grows on demand and eviction only recycles dead/cached tiles
  /// that already exist.
  std::size_t capacity_tiles = 0;
  /// Checksum stride for the sealed-tile encodings; invalid strides disable
  /// memoization exactly like serve::KvCache (enc_stride() reports 0).
  int enc_stride = abft::StridedAbft::kDefaultStride;
  /// Sealed-tile image policy (core::ImagePolicy):
  ///   * kF32  — widened-fp32 image per sealed (layer, head) tile
  ///     (detail::widen_sealed_tile layout): 2x the tile memory, zero
  ///     per-tile widening/packing on clean decode ticks.
  ///   * kF16T — pre-transposed fp16 image (detail::build_f16t_image
  ///     layout, [K^T | Kc1^T | Kc2^T] halves): ~0.5x extra memory, zero
  ///     per-tile packing, operands widened 8 lanes at a time inside the
  ///     fp16-operand microkernels.  Same decoded bits as kF32/kNone.
  ///   * kNone — no image; decode widens/packs per call.
  /// Either image requires the encoding memo; forced to kNone when
  /// enc_stride is disabled.
  core::ImagePolicy images = core::ImagePolicy::kNone;
};

/// Outcome of one incremental scrub pass (TilePool::scrub).
struct ScrubReport {
  std::size_t scanned = 0;   ///< sealed tiles verified this pass
  std::size_t repaired = 0;  ///< (layer, head) blocks repaired in place
  /// Unrepairable tiles: unpublished and unsealed by the pool; the caller
  /// (engine) must force their owning requests down the
  /// recompute-on-readmission path before any further compute.
  std::vector<std::size_t> dropped;
};

class TilePool {
 public:
  using TileId = std::size_t;
  static constexpr TileId kNoTile = static_cast<TileId>(-1);
  static constexpr std::size_t kTileRows = core::KvSlice::kTileRows;

  explicit TilePool(TilePoolOptions opt);

  /// Incremental KV scrubber: walk up to `max_tiles` sealed tiles (a
  /// round-robin cursor persists across calls) and re-verify each (layer,
  /// head) block's in-slab strided-ABFT encodings against its fp16
  /// payload, bit for bit.
  ///
  ///   * payload and encodings consistent, but the optional image (fp32 or
  ///     f16t) disagrees -> the image is rebuilt from the (authoritative)
  ///     fp16 slab (`repaired`);
  ///   * exactly one encoding element disagrees with a fresh encode ->
  ///     checksum-class corruption, the sealed encodings (and image) are
  ///     rewritten in place (`repaired`);
  ///   * two or more disagree -> payload-class corruption: with kF32
  ///     images, the fp16 payload is reconstructed by exact narrowing of
  ///     the image (widening was exact, so the round trip restores the
  ///     sealed bits) and re-verified (`repaired`); with kF16T images the
  ///     K payload is restored by de-transposing the image's Half bits
  ///     verbatim and re-verified — but the f16t image carries no V copy,
  ///     so V-payload corruption is unrepairable there (the memory-
  ///     durability trade for the 2x image saving); without images (or on
  ///     a failed re-verify) the tile is unrepairable — it is unpublished,
  ///     unsealed and reported in `dropped` (refcount-0 tiles go straight
  ///     to the dead list).
  ///
  /// Classification is exact under a single-fault assumption per tile;
  /// sub-threshold low-order payload flips that cancel in every checksum
  /// are indistinguishable from a checksum flip and repaired as such —
  /// the same precision floor the decode-time ABFT thresholds accept.
  /// Requires the encoding memo; with enc_stride() == 0 there is no
  /// redundancy to verify against and scrub() is a no-op.
  ///
  /// NOTE: memory faults are outside the paper's fault model (KV storage
  /// is assumed ECC-protected); the scrubber is the belt-and-braces rung
  /// for deployments without that guarantee, exercised through the
  /// serve::testing corruption hooks below.
  ScrubReport scrub(std::size_t max_tiles);

  /// A fresh zero-initialized tile with refcount 1, reclaiming dead tiles,
  /// then fresh capacity, then evicting the LRU cached tile.  kNoTile only
  /// when the pool is bounded and every tile is referenced.
  ///
  /// `fmt` picks the tile's sealed storage format; both formats coexist in
  /// one pool, and a reclaimed tile converts to the requested format on
  /// reuse.  A kI8 tile stages its appends in the ordinary fp16 slab (the
  /// ragged tail is always fp16); at seal time each (layer, head) block is
  /// quantized into the tile's i8 slab (detail::quantize_sealed_tile — the
  /// owning PagedKvCache drives this per layer) and the pool-wide seal()
  /// frees the staging slab, which is the capacity win.  Requires the
  /// encoding memo: kI8 with enc_stride() == 0 throws std::logic_error.
  [[nodiscard]] TileId acquire(core::TileFmt fmt = core::TileFmt::kF16);

  void retain(TileId id);
  /// Drop one reference.  Throws std::logic_error on refcount underflow —
  /// an underflow means a block table double-released a tile, which the
  /// randomized stress test treats as corruption, never as noise.
  void release(TileId id);

  /// Probe the prefix registry.  On a hit the tile is retained for the
  /// caller (and pulled off the cached list if it was unreferenced).
  [[nodiscard]] TileId lookup_shared(const ChainKey& key);

  /// Mark a tile fully written (all layers appended and encoded).  Only
  /// sealed tiles may be attached by other requests.  Sealing a kI8 tile
  /// frees its fp16 staging slab — every (layer, head) block must already
  /// be quantized into the i8 slab; k_tile()/v_tile()/enc_block() return
  /// nullptr for it from here on.
  void seal(TileId id);
  [[nodiscard]] bool sealed(TileId id) const;

  /// Register a sealed tile under a prefix key.  First writer wins: if the
  /// key is already mapped the call is a no-op returning false (the caller
  /// keeps its private tile; the earlier copy stays the shared one).
  bool publish(TileId id, const ChainKey& key);

  // --- storage access (slab layout: per (layer, head):
  //     [K 64*dim | V 64*dim | kc1 s*dim | kc2 s*dim | vc1 64*s | vc2 64*s])
  [[nodiscard]] numeric::Half* k_tile(TileId id, std::size_t layer,
                                      std::size_t head) noexcept;
  [[nodiscard]] numeric::Half* v_tile(TileId id, std::size_t layer,
                                      std::size_t head) noexcept;
  /// The four-encoding block of one (layer, head) tile, or nullptr when
  /// memoization is disabled.
  [[nodiscard]] numeric::Half* enc_block(TileId id, std::size_t layer,
                                         std::size_t head) noexcept;
  [[nodiscard]] const numeric::Half* k_tile(TileId id, std::size_t layer,
                                            std::size_t head) const noexcept;
  [[nodiscard]] const numeric::Half* v_tile(TileId id, std::size_t layer,
                                            std::size_t head) const noexcept;
  [[nodiscard]] const numeric::Half* enc_block(TileId id, std::size_t layer,
                                               std::size_t head) const noexcept;
  /// The widened-fp32 image of one (layer, head) tile (f32_image_floats
  /// floats, written at seal time), or nullptr when the option is off.
  /// Contents are only meaningful once the tile's layer sealed.
  [[nodiscard]] float* f32_image(TileId id, std::size_t layer,
                                 std::size_t head) noexcept;
  [[nodiscard]] const float* f32_image(TileId id, std::size_t layer,
                                       std::size_t head) const noexcept;
  /// The pre-transposed fp16 image of one (layer, head) tile
  /// (f16t_image_halves halves, written at seal time), or nullptr when the
  /// policy is not kF16T.  Contents are only meaningful once the tile's
  /// layer sealed.
  [[nodiscard]] numeric::Half* f16t_image(TileId id, std::size_t layer,
                                          std::size_t head) noexcept;
  [[nodiscard]] const numeric::Half* f16t_image(TileId id, std::size_t layer,
                                                std::size_t head)
      const noexcept;
  /// Storage format the tile was acquired with (kF16 tiles never hold an i8
  /// slab; kI8 tiles hold one from acquisition and drop their fp16 staging
  /// slab at seal).
  [[nodiscard]] core::TileFmt format(TileId id) const;
  /// One (layer, head) block of a kI8 tile's i8 slab
  /// (detail::I8TileLayout), or nullptr for kF16 tiles.
  [[nodiscard]] std::uint8_t* i8_block(TileId id, std::size_t layer,
                                       std::size_t head) noexcept;
  [[nodiscard]] const std::uint8_t* i8_block(TileId id, std::size_t layer,
                                             std::size_t head) const noexcept;
  /// Bytes of one (layer, head) i8 block (0 when the encoding memo is
  /// disabled — the i8 format requires it).
  [[nodiscard]] std::size_t i8_block_bytes() const noexcept {
    return i8_block_bytes_;
  }

  [[nodiscard]] std::size_t layers() const noexcept { return layers_; }
  [[nodiscard]] std::size_t heads() const noexcept { return heads_; }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] int enc_stride() const noexcept { return enc_stride_; }
  /// Sealed-tile image policy in effect (kNone when enc_stride disabled).
  [[nodiscard]] core::ImagePolicy images() const noexcept { return images_; }
  /// Capacity in tiles (0 = unbounded).
  [[nodiscard]] std::size_t capacity() const noexcept {
    return capacity_tiles_;
  }
  /// Tiles ever materialized (<= capacity when bounded).
  [[nodiscard]] std::size_t allocated() const noexcept {
    return tiles_.size();
  }
  /// Tiles with refcount > 0.
  [[nodiscard]] std::size_t in_use() const noexcept { return in_use_; }
  /// Tiles acquire() could hand out without failing: unreferenced tiles
  /// plus unmaterialized capacity (SIZE_MAX when unbounded).  The engine
  /// uses this as its admission hint.
  [[nodiscard]] std::size_t allocatable() const noexcept;
  [[nodiscard]] std::size_t refcount(TileId id) const;
  /// Published (prefix-registered) tiles currently discoverable.
  [[nodiscard]] std::size_t published() const noexcept {
    return registry_.size();
  }
  /// Lifetime counters.
  [[nodiscard]] std::size_t evictions() const noexcept { return evictions_; }
  [[nodiscard]] std::size_t shared_hits() const noexcept {
    return shared_hits_;
  }
  /// Halves per context-tile slab (K+V+encodings across all layers/heads).
  [[nodiscard]] std::size_t slab_halves() const noexcept {
    return slab_halves_;
  }
  /// Bytes held by *referenced* tiles (what live requests pin).  Format-
  /// aware: sums each tile's actual current slabs — fp16 staging (freed
  /// when a kI8 tile seals), fp32 image, i8 — so a mixed-format pool
  /// reports the real mixed footprint.
  [[nodiscard]] std::size_t bytes_in_use() const noexcept;
  /// Bytes of every materialized slab, cached/dead tiles included.
  [[nodiscard]] std::size_t bytes_allocated() const noexcept;
  /// Steady-state bytes of one sealed tile of `fmt` in this pool's
  /// configuration (kF16: fp16 slab + optional fp32 image; kI8: the i8
  /// slab alone — its staging slab is freed at seal).  The byte-capacity
  /// planning hook for benches and the capacity gauges.
  [[nodiscard]] std::size_t tile_bytes(core::TileFmt fmt) const noexcept;

 private:
  struct ChainKeyHash {
    std::size_t operator()(const ChainKey& k) const noexcept {
      return static_cast<std::size_t>(k.a ^ (k.b * 0x9e3779b97f4a7c15ull));
    }
  };

  struct Tile {
    /// fp16 slab: the tile's storage for kF16 tiles, the append staging
    /// area for kI8 tiles (freed when a kI8 tile seals, reallocated on
    /// recycle).
    std::unique_ptr<numeric::Half[]> slab;
    /// fp32 image slab (kF32 policy, kF16 tiles only): one f32_image_floats
    /// block per (layer, head), same indexing as `slab`.  Not zeroed on
    /// recycle — the image is fully overwritten at seal time and never read
    /// before.
    std::unique_ptr<float[]> fslab;
    /// Pre-transposed fp16 image slab (kF16T policy, kF16 tiles only): one
    /// f16t_image_halves block per (layer, head).  Same recycle rule.
    std::unique_ptr<numeric::Half[]> hslab;
    /// i8 slab (kI8 tiles only): one detail::I8TileLayout block per
    /// (layer, head).  Not zeroed on recycle for the same reason.
    std::unique_ptr<std::uint8_t[]> qslab;
    core::TileFmt format = core::TileFmt::kF16;
    std::size_t refs = 0;
    bool sealed = false;
    bool is_published = false;
    ChainKey key;       // valid while is_published
    std::uint64_t stamp = 0;  // matches its cached-list entry; 0 = not listed
  };

  [[nodiscard]] Tile& checked(TileId id);
  [[nodiscard]] const Tile& checked(TileId id) const;
  /// Reset a reclaimed tile for reuse as `fmt`: zero (or reallocate) the
  /// fp16 slab (the decode kernel's ragged-tail padding convention), swap
  /// the format-specific slabs, clear seal/publication state.
  void recycle(TileId id, core::TileFmt fmt);
  [[nodiscard]] std::size_t offset(std::size_t layer,
                                   std::size_t head) const noexcept;

  std::size_t layers_, heads_, dim_;
  int enc_stride_;
  core::ImagePolicy images_;
  std::size_t capacity_tiles_;
  std::size_t per_lh_halves_ = 0;  // K+V+enc of one (layer, head)
  std::size_t enc_halves_ = 0;     // the enc portion of the above
  std::size_t slab_halves_ = 0;
  std::size_t i8_block_bytes_ = 0;  // one (layer, head) i8 block, 0 if no enc
  std::size_t in_use_ = 0;
  std::size_t evictions_ = 0;
  std::size_t shared_hits_ = 0;
  std::size_t scrub_cursor_ = 0;  // round-robin scrub position
  std::uint64_t clock_ = 0;
  std::vector<Tile> tiles_;
  std::deque<TileId> dead_;                       // refcount 0, unpublished
  std::deque<std::pair<TileId, std::uint64_t>> cached_;  // LRU, lazy-stale
  std::unordered_map<ChainKey, TileId, ChainKeyHash> registry_;
};

namespace testing {
/// Test-only memory-corruption hooks for the scrubber: flip one bit of a
/// sealed tile's storage.  Memory faults are outside the paper's fault model
/// (KV storage is assumed ECC-protected), so these exist purely to exercise
/// TilePool::scrub()'s classification/repair paths — never a serving API.
/// `half_index` addresses the (layer, head) block's contiguous
/// [K | V | encodings] halves; `float_index` addresses its fp32 image.
void flip_slab_bit(TilePool& pool, TilePool::TileId id, std::size_t layer,
                   std::size_t head, std::size_t half_index, unsigned bit);
void flip_image_bit(TilePool& pool, TilePool::TileId id, std::size_t layer,
                    std::size_t head, std::size_t float_index, unsigned bit);
/// kF16T counterpart of flip_image_bit: flip one bit of one half of a
/// sealed tile's pre-transposed fp16 image block.
void flip_f16t_bit(TilePool& pool, TilePool::TileId id, std::size_t layer,
                   std::size_t head, std::size_t half_index, unsigned bit);
/// i8-tile counterpart: flip one bit of one byte of a kI8 tile's
/// (layer, head) block — `byte_index` addresses the whole
/// detail::I8TileLayout block (scales, int32 encodings, payload and Half
/// encodings are all reachable), so every scrubber classification arm is
/// exercisable.  Throws std::logic_error on a kF16 tile.
void flip_i8_bit(TilePool& pool, TilePool::TileId id, std::size_t layer,
                 std::size_t head, std::size_t byte_index, unsigned bit);
}  // namespace testing

/// Process-default sealed-tile format: core::TileFmt::kI8 when the
/// FTT_KV_QUANT environment variable is set to anything but "" or "0",
/// else kF16.  This is the int8-default-on switch the CI matrix leg flips
/// (scripts/run_tier1.sh): every PagedKvCache and DecodeEngine that does
/// not pick a format explicitly inherits it, so the whole serve stack —
/// engine ticks, prefix sharing, recovery ladder — runs quantized without
/// touching a line of test code.  Read once and cached; explicit
/// constructor/option arguments always win.
[[nodiscard]] core::TileFmt default_tile_format() noexcept;

/// One request's paged view of the pool: a block table of context tiles plus
/// the per-(layer, head) tile-pointer arrays core::KvSlice consumes.
///
/// The write protocol matches the engine's tick: ensure_capacity() runs in
/// the tick's memory phase (the only place tiles are acquired — it can fail,
/// and failure is the preemption signal), then append_chunk() lands the same
/// rows layer by layer and never allocates.  Per-layer lengths track the
/// mid-tick state where layer L has appended this tick's rows but layer L+1
/// has not; slice(layer, head) reads the per-layer length, exactly like the
/// per-layer KvCache objects this class replaces.
///
/// When a (layer, head) tile fills, its four checksum encodings are sealed
/// into the tile slab (same bits as a fresh per-call encode — the shared
/// encode_sealed_tile helper); when the *last* layer fills, the tile is
/// sealed pool-wide and reported through take_newly_sealed() so the engine
/// can publish fully-prompt tiles for prefix sharing.
class PagedKvCache {
 public:
  /// `fmt` is the request's sealed-tile format: kI8 quantizes every tile
  /// the request fills as it seals (per layer — a layer's block converts
  /// the moment that layer's rows complete the tile) and attaches only kI8
  /// shared tiles; the open ragged tail always stays fp16.  Both formats
  /// coexist in one pool; the engine keys prefix chains per format, and
  /// attach_shared() enforces the no-cross-format rule besides.  kI8
  /// requires the pool's encoding memo (throws std::logic_error without
  /// it).
  explicit PagedKvCache(TilePool& pool,
                        core::TileFmt fmt = default_tile_format());
  ~PagedKvCache();
  PagedKvCache(const PagedKvCache&) = delete;
  PagedKvCache& operator=(const PagedKvCache&) = delete;

  /// Attach an already-sealed shared tile at the end of the block table
  /// (admission-time prefix reuse; the pool retained it in lookup_shared).
  /// All per-layer lengths advance by the full 64 rows.
  void attach_shared(TilePool::TileId id);

  /// Grow the block table until it can hold `tokens` context rows.  Returns
  /// false — with the table unchanged beyond already-acquired tiles — when
  /// the pool cannot supply a tile; the caller preempts and retries, or
  /// backs off.
  [[nodiscard]] bool ensure_capacity(std::size_t tokens);

  /// Append `rows` tokens' K/V for one layer (head-major rows of heads*dim
  /// halves, the KvCache::append_chunk layout).  Capacity must already be
  /// ensured; throws std::logic_error otherwise — the engine's memory phase
  /// is the only allocation site by design.
  ///
  /// `defer_seal` is the speculative-append mode: tiles this chunk fills
  /// are NOT sealed (no encodings, no pool-wide seal, no publication
  /// candidacy), because some of the chunk's rows may be rejected and
  /// rolled back — a sealed tile is immutable and shareable, so sealed
  /// tiles are never speculative.  truncate() seals whatever the commit
  /// leaves fully covered.
  void append_chunk(std::size_t layer, std::span<const numeric::Half> k,
                    std::span<const numeric::Half> v, std::size_t rows,
                    bool defer_seal = false);

  /// Commit a speculative tick: roll the context back to `tokens` rows
  /// (the accepted prefix), then seal every tile the committed context
  /// fully covers.  Rolled-back rows are zeroed in the kept open tile
  /// (restoring the kernel's zero-padding convention); tail tiles left
  /// entirely empty are released back to the pool (they were acquired
  /// fresh this tick and recycle zeroed).  Requires every layer to have
  /// appended the same row count (the post-compute state of a tick) and
  /// `tokens` to lie at or beyond the sealed region — sealed tiles are
  /// never speculative, so rolling back into one is a logic error.
  void truncate(std::size_t tokens);

  [[nodiscard]] core::KvSlice slice(std::size_t layer,
                                    std::size_t head) const;

  /// Context rows fully appended (every layer).
  [[nodiscard]] std::size_t length() const noexcept;
  [[nodiscard]] std::size_t layer_length(std::size_t layer) const {
    return layer_len_.at(layer);
  }
  [[nodiscard]] const std::vector<TilePool::TileId>& block_table()
      const noexcept {
    return table_;
  }
  /// Tiles attached through prefix sharing (vs acquired fresh).
  [[nodiscard]] std::size_t shared_tiles() const noexcept {
    return shared_tiles_;
  }

  /// Block-table indices whose tiles sealed (all layers full) since the
  /// last call — the engine publishes the fully-prompt ones.
  [[nodiscard]] std::vector<std::size_t> take_newly_sealed();

  /// Release every tile and reset to empty (preemption / retirement).
  void release_all();

  /// The request's sealed-tile format.
  [[nodiscard]] core::TileFmt format() const noexcept { return fmt_; }

 private:
  struct HeadPtrs {
    std::vector<const numeric::Half*> k, v, kc1, kc2, vc1, vc2;
    // Per-tile fp32 image pointers (null until the layer tile seals, and
    // always null when the pool doesn't hold kF32 images).
    std::vector<const float*> f32;
    // Per-tile pre-transposed fp16 image pointers (kF16T policy), same
    // null-until-sealed rule.
    std::vector<const numeric::Half*> f16t;
    // Per-tile i8 payload pointers and power-of-two scales (kI8 caches
    // only; null/0 until the layer tile quantizes).
    std::vector<const std::int8_t*> kq, vq;
    std::vector<float> ks, vs;
  };

  void push_tile_ptrs(TilePool::TileId id, bool with_enc);
  void seal_layer_tile(std::size_t layer, std::size_t tile_index);
  /// Seal layer tiles [sealed_tiles_[layer], upto) in order.  Sealing is
  /// strictly left to right per layer, so the counter fully describes the
  /// sealed region — deferred (speculative) appends simply leave it behind
  /// until truncate() advances it over the committed tiles.
  void seal_layer_through(std::size_t layer, std::size_t upto);

  TilePool* pool_;
  core::TileFmt fmt_;
  std::vector<TilePool::TileId> table_;
  std::vector<std::size_t> layer_len_;
  std::vector<std::size_t> sealed_tiles_;  // per layer: tiles sealed so far
  std::vector<HeadPtrs> ptrs_;  // indexed layer * heads + head
  /// Per-layer, per-tile storage format (kI8 caches only): a tile's layer-L
  /// entry flips to kI8 when layer L quantizes, so a mid-tick slice of an
  /// already-quantized layer streams i8 while later layers still stage
  /// fp16.  Shared across the layer's heads (KvSlice::fmt).
  std::vector<std::vector<core::TileFmt>> layer_fmt_;
  std::size_t shared_tiles_ = 0;
  std::vector<std::size_t> newly_sealed_;
};

}  // namespace ftt::serve
