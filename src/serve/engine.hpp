#pragma once
// Batched fault-tolerant serving engine: submit / step / drain.
//
// The engine drives autoregressive generation for many concurrent sequences
// through a transformer::Model without ever recomputing a prefix.  Each
// request owns one KvCache per layer; admitting a prompt runs a protected
// prefill that fills the caches token by token, and every step() advances
// all active sequences by one token:
//
//   * the active tokens' hidden rows are stacked, so layer norms, the
//     QKV/output projections and the feed-forward run once per layer over
//     the whole batch (strided-ABFT-protected when protect_linear is set);
//   * attention runs through efta_decode_batch — one protected decode slice
//     per (request, head), OpenMP-parallel, with per-slice FtReport
//     aggregation rolled up into both per-request lifetime reports and the
//     step's stats.
//
// Token embedding/unembedding are outside the paper's protected region
// (memory, assumed ECC-protected) and are not modeled; "generation" feeds
// each token's final-layernormed hidden state back as the next token's
// input, which exercises exactly the per-token compute the paper profiles.
//
// Row-stacked linears and per-slice decode are both row-deterministic, so a
// batched step is bit-identical to stepping each request in its own engine —
// the property tests/test_serve.cpp pins down.

#include <cstddef>
#include <span>
#include <vector>

#include "attention/ft_report.hpp"
#include "core/decode.hpp"
#include "serve/kv_cache.hpp"
#include "transformer/model.hpp"

namespace ftt::serve {

struct EngineOptions {
  /// Attention protection knobs the decode kernel reads: stride,
  /// abft_rel_threshold, exp_log_threshold, snvr_slack.  The decode path is
  /// fixed to 64-row strided-ABFT tiles with SNVR softmax protection, so
  /// the constructor rejects other gemm/softmax/block settings; causal and
  /// unified_verification are meaningless for single-row decode and
  /// ignored.
  core::EftaOptions efta;
  bool protect_linear = true;  ///< strided ABFT on projections + FFN
  /// Context cap: submit() beyond it throws; a request *reaching* it during
  /// generation is retired automatically (caches released, hidden state and
  /// reports stay readable) so the rest of the batch keeps stepping.
  std::size_t max_context = 65536;
  /// Record every fed input row so fed_inputs() can replay the request
  /// through a from-scratch forward (tests / offline verification).  Costs
  /// hidden * 4 bytes per token while the request lives, which is why the
  /// serving default is off.
  bool record_inputs = false;
};

class DecodeEngine {
 public:
  using RequestId = std::size_t;

  struct StepStats {
    /// Sequences advanced (for drain(): token-steps executed in total).
    std::size_t active = 0;
    attention::FtReport attention;  ///< merged over all decode slices
    abft::Report linear;            ///< projections + FFN ABFT
    std::size_t activations_clipped = 0;

    StepStats& operator+=(const StepStats& o) noexcept {
      active += o.active;
      attention += o.attention;
      linear += o.linear;
      activations_clipped += o.activations_clipped;
      return *this;
    }
  };

  explicit DecodeEngine(const transformer::Model& model,
                        EngineOptions opt = {});

  /// Admit a sequence: protected prefill of `prompt_hidden` (seq x hidden,
  /// any seq >= 1) through the per-layer caches.  Returns the request id.
  RequestId submit(const tensor::MatrixF& prompt_hidden,
                   fault::FaultInjector* inj = nullptr);

  /// One batched decode step advancing every active sequence by one token.
  StepStats step(fault::FaultInjector* inj = nullptr);

  /// Run `steps` batched decode steps; merged stats (active = token-steps).
  StepStats drain(std::size_t steps, fault::FaultInjector* inj = nullptr);

  /// Retire a request: release its caches and recorded history.  Its last
  /// hidden state, lifetime report and token count stay readable.
  void finish(RequestId id);

  /// Merged stats over everything this engine ever ran — including the
  /// prefill passes submit() performs, whose per-call stats have no other
  /// outlet.  `active` counts token-steps executed.
  [[nodiscard]] const StepStats& lifetime() const noexcept {
    return lifetime_;
  }

  [[nodiscard]] std::size_t active() const noexcept;
  [[nodiscard]] bool is_active(RequestId id) const;
  /// Tokens in the request's context (prompt + generated).
  [[nodiscard]] std::size_t context_length(RequestId id) const;
  /// Final-layernormed hidden state of the request's latest token.
  [[nodiscard]] std::span<const float> hidden(RequestId id) const;
  /// Lifetime attention fault-tolerance report of one request.
  [[nodiscard]] const attention::FtReport& report(RequestId id) const;
  /// Every input row fed so far (prompt rows, then the fed-back generated
  /// rows): the matrix a from-scratch forward() would consume.  For tests
  /// and offline verification of cache-backed generation.  Empty when
  /// record_inputs is off or the request has been retired.
  [[nodiscard]] tensor::MatrixF fed_inputs(RequestId id) const;

 private:
  struct Request {
    std::vector<KvCache> layers;           // one cache per block
    std::vector<float> next_in;            // next token's input row
    std::vector<float> last_hidden;        // final-LN output of last token
    std::vector<std::vector<float>> inputs;  // fed rows (record_inputs)
    attention::FtReport attention;         // lifetime decode report
    std::size_t tokens = 0;                // context length ever reached
    bool active = false;
  };

  void retire(Request& req);

  /// Advance one token for `ids` with stacked input rows X (|ids| x hidden).
  StepStats advance(const std::vector<RequestId>& ids, tensor::MatrixF& X,
                    fault::FaultInjector* inj);

  [[nodiscard]] const Request& checked(RequestId id) const;

  const transformer::Model* model_;
  EngineOptions opt_;
  std::vector<Request> requests_;
  StepStats lifetime_;
};

}  // namespace ftt::serve
