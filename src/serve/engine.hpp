#pragma once
// Continuous-batching fault-tolerant serving engine over a paged KV pool.
//
// The engine drives autoregressive generation for many concurrent sequences
// through a transformer::Model without ever recomputing a live prefix.
// KV storage is one serve::TilePool shared by every request: per-request
// block tables map context tiles to pool tiles, sealed prompt tiles are
// prefix-shared between requests (a hash chain over the prompt's hidden
// rows keys the pool registry), and unreferenced tiles are LRU-evicted.
// submit() only enqueues: all compute happens in step(), one scheduler tick
// that
//
//   (a) retires requests that reached their generation budget or context
//       cap, releasing their tiles (published prompt tiles stay cached for
//       future sharers until evicted);
//   (b) admits queued requests, high-priority class first (serve::Scheduler,
//       strict FCFS within a class), attaching any prefix tiles already in
//       the pool so a shared prompt is computed once, ever;
//   (c) memory phase: on-demand paged allocation of the tiles this tick's
//       rows need, best-ranked request first.  When the pool is exhausted,
//       the worst-ranked admitted request (lowest priority class, then
//       youngest) is preempted: tiles released, request re-queued at the
//       front of its class, to recompute from its prompt on readmission.
//       A request that is itself the worst-ranked self-preempts, so the
//       best-ranked request always makes progress — no livelock;
//   (d) runs at most one causal prefill chunk (up to 64 prompt rows) per
//       prefilling request;
//   (e) advances every decoding request by a query block of 1 + k rows —
//       its next input row plus up to EngineOptions.spec_tokens drafted
//       candidates from the request's TokenProposer — through one
//       efta_decode_batch call shared with the prefill chunks;
//   (f) verifies each draft block greedily: drafted row i is committed iff
//       it bit-matches the model's own output at position i-1 (and every
//       earlier draft matched).  The longest matching prefix commits — one
//       block pass can retire up to k+1 tokens — and the KV rows of
//       rejected drafts are rolled back (open-tile truncation; tiles
//       filled mid-speculation stay unsealed until the commit, so sealed
//       tiles are never speculative and prefix sharing / preemption-replay
//       invariants survive untouched).
//
// Speculation cannot change results, only speed: a draft is committed only
// when its row already equals, bit for bit, what the q_len = 1 serial path
// would have produced (the block kernel is row-for-row bit-identical to
// serial decode, and acceptance is bitwise equality against the model's
// output).  A useless proposer just wastes the drafted rows' compute;
// budgets still land exactly (drafting is clamped to the remaining token
// budget), so a retired request's stream is the serial stream regardless.
//
// Prefill chunks and decode blocks share one row-stack per tick: layer norms,
// the QKV/output projections and the feed-forward run once per layer over
// all rows of all requests (strided-ABFT-protected when protect_linear is
// set), then attention splits into per-(request, head) protected work items,
// OpenMP-parallel, with per-slice FtReport aggregation rolled up into both
// per-request lifetime reports and the tick's stats.
//
// Every per-row operation in the stack is row-deterministic, and the chunked
// prefill kernel is bit-identical per row to the token-by-token decode path,
// so a batched tick is bit-identical to running each request in its own
// engine — regardless of what else shares the batch, regardless of the
// chunk size, and regardless of whether a prefix tile was computed locally
// or attached from the pool (a shared tile holds exactly the bits a private
// prefill would have produced, sealed checksum encodings included).
// Preemption preserves the same guarantee by recomputation: generation is a
// deterministic function of the prompt, so a preempted-then-readmitted
// request replays its exact token trajectory.  tests/test_serve.cpp and
// tests/test_tile_pool.cpp pin these properties down.
//
// Token embedding/unembedding are outside the paper's protected region
// (memory, assumed ECC-protected) and are not modeled; "generation" feeds
// each token's final-layernormed hidden state back as the next token's
// input, which exercises exactly the per-token compute the paper profiles.

#include <cstddef>
#include <deque>
#include <memory>
#include <span>
#include <vector>

#include "attention/ft_report.hpp"
#include "core/decode.hpp"
#include "serve/proposer.hpp"
#include "serve/recovery.hpp"
#include "serve/scheduler.hpp"
#include "serve/shard.hpp"
#include "serve/step_stats.hpp"
#include "serve/tile_pool.hpp"
#include "transformer/model.hpp"

namespace ftt::serve {

struct EngineOptions {
  /// Attention protection knobs the decode/prefill kernels read: stride,
  /// abft_rel_threshold, exp_log_threshold, snvr_slack.  Both kernels are
  /// fixed to 64-row strided-ABFT tiles with SNVR softmax protection, so
  /// the constructor rejects other gemm/softmax/block settings; causal and
  /// unified_verification are implied by the cache-backed paths and
  /// ignored.
  core::EftaOptions efta;
  bool protect_linear = true;  ///< strided ABFT on projections + FFN
  /// Context cap: submit() rejects prompts beyond it, and a request
  /// *reaching* it during generation is retired automatically (caches
  /// released, hidden state and reports stay readable) so the rest of the
  /// batch keeps stepping.
  std::size_t max_context = 65536;
  /// Record every fed input row so fed_inputs() can replay the request
  /// through a from-scratch forward (tests / offline verification).  Costs
  /// hidden * 4 bytes per token while the request lives, which is why the
  /// serving default is off.  Preemption clears the recording (the rows are
  /// re-recorded on recompute).
  bool record_inputs = false;
  /// Prompt rows per prefill chunk per tick, 1..64.  64 — the checksum tile
  /// — is the production setting: K/V tiles are loaded and encoded once per
  /// chunk instead of once per token.  1 reproduces serial token-by-token
  /// prefill; the bit-identity tests compare the two.
  std::size_t prefill_chunk_rows = 64;
  /// Generation budget for submit() calls that don't pass one explicitly.
  /// 0 = unbudgeted: the request decodes until finish() or max_context.
  std::size_t default_max_new_tokens = 0;
  /// Register sealed fully-prompt tiles in the pool and attach matching
  /// prefixes at admission.  Sharing never changes results (sealed tiles
  /// are bit-identical to what a private prefill would compute); the knob
  /// exists for A/B benchmarking the capacity win.
  bool share_prefix = true;
  /// Sealed-tile image policy (TilePoolOptions::images; core::ImagePolicy):
  ///   * kF16T (default) — a pre-transposed fp16 image per sealed tile:
  ///     clean decode ticks stream Half operands straight through the
  ///     fp16-operand fused microkernels (widened 8 lanes at a time in
  ///     register), at ~0.5x extra KV tile memory (~1.5x total with the
  ///     fp16 slab) and roughly half the memory traffic of kF32.
  ///   * kF32 — the PR 7 widened-fp32 image: pure fp32 vector FMAs with
  ///     zero widening, at 2x extra memory (3x total).
  ///   * kNone — no image; decode widens/packs per tile per call, which
  ///     maximizes context capacity.
  /// All three decode bit-identically — widening is exact and the
  /// accumulation order is pinned.  Requires the encoding memo
  /// (auto-forced to kNone without it).
  core::ImagePolicy images = core::ImagePolicy::kF16T;
  /// Default sealed-tile storage format for submit(): true stores every
  /// sealed KV tile int8-quantized (core::TileFmt::kI8 — per-tile
  /// power-of-two scales, exact integer checksums at rest, fp16-derived
  /// decode memo; see docs/QUANTIZATION.md), roughly 3x less sealed-tile
  /// memory than the fp16 + fp32-image configuration.  Per-request
  /// override: submit_with_format().  Both formats share the one pool —
  /// sealed-tile images apply only to fp16 tiles — and fp16 requests stay
  /// bit-identical to a pure-fp16 run.  Requires the encoding memo
  /// (constructor throws without it).  Defaults to the process-wide
  /// default_tile_format() — kF16 unless the FTT_KV_QUANT environment
  /// toggle flips the whole serve stack to int8 (the CI matrix leg).
  bool kv_quant = default_tile_format() == core::TileFmt::kI8;
  /// Speculative decode: maximum drafted tokens scored per decoding
  /// request per tick (0 = off, the serial q_len = 1 path).  Each tick
  /// feeds a block of 1 + spec_tokens rows through the verified kernel and
  /// commits the longest draft prefix that bit-matches the model's own
  /// outputs, so acceptance can only speed a stream up, never change it.
  /// Bounded by 63 (block + committed row must fit the 64-row kernel
  /// block).  Drafting is clamped to the remaining generation budget.
  std::size_t spec_tokens = 0;
  /// Draft source for speculative decode.  Null with spec_tokens > 0
  /// constructs the default serve::PromptLookupProposer (no-second-model
  /// n-gram lookup over the request's own committed row history).
  std::shared_ptr<TokenProposer> proposer;
  /// Admission policy (batch-size cap, priority classes, optional
  /// shortest-job-first within a class) and the pool capacity
  /// (scheduler.max_kv_tiles, in context tiles; 0 = unbounded).
  SchedulerOptions scheduler;
  /// Shard workers per tick (1 = the solo tick body).  With shards > 1 the
  /// tick's compute runs on a barrier-stepped ShardedEngine: attention is
  /// partitioned by head ranges, the linears column-parallel by 64-tile
  /// column ranges, row phases by row ranges — all bit-identical to solo
  /// for any shard count (see serve/shard.hpp).  Requires head_dim to be a
  /// multiple of 64.  A tick given a FaultInjector always runs the solo
  /// body regardless (injectors are call-order-dependent state; parallel
  /// slicing would move the faults), so injected runs stay bit-comparable
  /// with solo engines.
  std::size_t shards = 1;
  /// Output-projection combine for shards > 1.  kColumnParallel (default)
  /// is bit-identical to solo; kRingReduce exercises the row-parallel
  /// partial-sum path through the DeterministicCombiner — deterministic
  /// for a fixed shard count, not solo-bitwise.
  CombineMode combine = CombineMode::kColumnParallel;
  /// Serving-layer fault recovery (serve/recovery.hpp): tick retry, shard
  /// quarantine and KV scrubbing knobs.  All rungs default off — a
  /// default-constructed policy reproduces the pre-recovery engine bit for
  /// bit.  The replica-level rung (drain) lives in RouterOptions.
  RecoveryPolicy recovery;
};

class DecodeEngine;

namespace testing {
/// Mutable pool access for the scrubber memory-corruption tests (the
/// serve::testing flip_*_bit hooks need a writable TilePool).  Test-only
/// observability; never a serving API.
TilePool& engine_pool(DecodeEngine& e) noexcept;
}  // namespace testing

class DecodeEngine {
 public:
  using RequestId = std::size_t;

  /// Per-tick counters; see serve/step_stats.hpp (extracted so shard
  /// combiners and the replica Router merge the same type).
  using StepStats = serve::StepStats;

  explicit DecodeEngine(const transformer::Model& model,
                        EngineOptions opt = {});

  /// Enqueue a sequence: `prompt_hidden` is seq x hidden, any seq >= 1.
  /// No compute happens here — the scheduler admits the request on a later
  /// step() and its prompt streams in as causal prefill chunks (minus any
  /// prefix tiles already cached in the pool).  `max_new_tokens` caps
  /// generation (0 = EngineOptions default); once the cap or max_context is
  /// reached the request retires on its own.  `priority` picks the
  /// scheduling class: high overtakes normal overtakes low, and preemption
  /// victims are drawn lowest class first.  Throws std::invalid_argument
  /// when the request's context ceiling could never fit the pool.
  RequestId submit(const tensor::MatrixF& prompt_hidden,
                   std::size_t max_new_tokens = 0,
                   Priority priority = Priority::kNormal);

  /// submit() with an explicit sealed-tile format for this request,
  /// overriding EngineOptions::kv_quant.  Prefix chains are keyed per
  /// format (an i8 request can only ever attach i8 tiles), so mixing
  /// formats in one engine is safe — and an fp16 request's stream is
  /// bit-identical to what a pure-fp16 engine would produce.  Throws
  /// std::logic_error for kI8 when the pool's encoding memo is disabled.
  RequestId submit_with_format(const tensor::MatrixF& prompt_hidden,
                               core::TileFmt kv_fmt,
                               std::size_t max_new_tokens = 0,
                               Priority priority = Priority::kNormal);

  /// One scheduler tick: retire, admit (+ prefix attach), draft,
  /// allocate/preempt, prefill one chunk per prefilling request, advance
  /// every decoding request by a verified query block of 1 + accepted
  /// drafts tokens.  A tick with nothing to run returns zeroed stats
  /// without touching OpenMP — an idle engine is free to poll.
  StepStats step(fault::FaultInjector* inj = nullptr);

  /// Run `steps` ticks; merged stats.
  StepStats drain(std::size_t steps, fault::FaultInjector* inj = nullptr);

  /// Tick until no request is queued or admitted (requires every live
  /// request to have a generation budget), or until `max_ticks` elapse.
  StepStats run_until_idle(fault::FaultInjector* inj = nullptr,
                           std::size_t max_ticks = SIZE_MAX);

  /// Retire a request in any live state: release its tiles, pending prompt
  /// and recorded history, and free its scheduler slot.  Its last hidden
  /// state, lifetime report and token count stay readable.
  void finish(RequestId id);

  /// Merged stats over everything this engine ever ran; `active` counts
  /// computed token rows (prefill + decode).  Equal to the sum of every
  /// step() return — all compute happens inside ticks.
  [[nodiscard]] const StepStats& lifetime() const noexcept {
    return lifetime_;
  }

  /// Shard workers the tick compute runs across (EngineOptions.shards).
  [[nodiscard]] std::size_t shards() const noexcept {
    return sharded_ ? sharded_->shards() : 1;
  }
  /// Lifetime attention fault-tolerance reports attributed per shard by
  /// head ownership — size shards(), merged over every tick this engine
  /// ever ran (including injected ticks, which run the solo body but are
  /// attributed through the same head -> shard map).  A fault striking one
  /// shard's heads lands in exactly that shard's report, so "a whole shard
  /// went bad" reads directly off this vector.
  [[nodiscard]] std::span<const attention::FtReport> shard_reports()
      const noexcept {
    return shard_attention_;
  }
  /// True while physical shard `s` is quarantined (its heads remapped over
  /// the healthy workers); throws std::out_of_range for s >= shards().
  [[nodiscard]] bool shard_quarantined(std::size_t s) const;
  /// Shard workers currently serving (shards() minus quarantined).
  [[nodiscard]] std::size_t healthy_shards() const noexcept;

  [[nodiscard]] RequestState state(RequestId id) const;
  /// Requests admitted and not yet retired (prefilling + decoding).
  [[nodiscard]] std::size_t active() const noexcept;
  /// Requests waiting for admission (first-time or re-queued by
  /// preemption).
  [[nodiscard]] std::size_t queued() const noexcept {
    return scheduler_.queued();
  }
  [[nodiscard]] bool is_active(RequestId id) const;
  /// Tokens in the request's context (shared + prefilled prompt rows +
  /// generated).  Reset by preemption; recovered by recomputation.
  [[nodiscard]] std::size_t context_length(RequestId id) const;
  /// Final-layernormed hidden state of the request's latest token (empty
  /// while the request is still queued).
  [[nodiscard]] std::span<const float> hidden(RequestId id) const;
  /// Lifetime attention fault-tolerance report of one request.  Throws
  /// std::out_of_range for an id this engine never issued; find_report is
  /// the non-throwing probe.
  [[nodiscard]] const attention::FtReport& report(RequestId id) const;
  /// report() without the throw: nullptr for an unknown id.
  [[nodiscard]] const attention::FtReport* find_report(
      RequestId id) const noexcept;
  /// Fault-recovery status of a request (kClean unless a tick exhausted its
  /// retries with this request affected; see EscalationPolicy).  Sticky:
  /// once flagged/failed it stays so for the request's lifetime.
  [[nodiscard]] RequestHealth health(RequestId id) const;
  /// Every input row fed so far (prompt rows, then the fed-back generated
  /// rows): the matrix a from-scratch forward() would consume.  For tests
  /// and offline verification of cache-backed generation.  Empty when
  /// record_inputs is off, the request was retired, or rows were skipped
  /// by prefix sharing (sharing substitutes cached KV for compute).
  [[nodiscard]] tensor::MatrixF fed_inputs(RequestId id) const;

  /// The shared KV pool (occupancy, eviction and sharing stats; tile
  /// introspection for the stress tests).
  [[nodiscard]] const TilePool& pool() const noexcept { return pool_; }
  /// Context tiles currently referenced by live requests — the pool's
  /// in-use count.  Shared tiles count once, which is the capacity win.
  [[nodiscard]] std::size_t kv_tiles_in_use() const noexcept {
    return pool_.in_use();
  }
  /// Bytes pinned by live requests' tiles (K+V+sealed encodings).
  [[nodiscard]] std::size_t kv_bytes() const noexcept {
    return pool_.bytes_in_use();
  }
  /// The request's block table (pool tile ids), empty when not admitted.
  [[nodiscard]] std::vector<TilePool::TileId> kv_block_table(
      RequestId id) const;
  /// Tiles this request attached via prefix sharing (0 when not admitted).
  [[nodiscard]] std::size_t shared_tile_count(RequestId id) const;
  /// Times this request has been preempted so far.
  [[nodiscard]] std::size_t preemption_count(RequestId id) const;

 private:
  struct Request {
    std::unique_ptr<PagedKvCache> cache;   // block table over the pool
    tensor::MatrixF prompt;                // kept live for recompute-on-preempt
    std::size_t prompt_rows = 0;           // original prompt length
    std::size_t prefilled = 0;             // prompt rows in cache (shared
                                           //   + computed)
    std::size_t max_tokens = 0;            // context cap: prompt + budget
    Priority priority = Priority::kNormal;
    core::TileFmt kv_fmt = core::TileFmt::kF16;  // sealed-tile format
    std::vector<ChainKey> prompt_keys;     // shareable-prefix hash chain
    std::vector<float> next_in;            // next token's input row
    std::vector<float> last_hidden;        // final-LN output of last row
    std::vector<std::vector<float>> inputs;  // fed rows (record_inputs)
    attention::FtReport attention;         // lifetime attention report
    std::size_t tokens = 0;                // current context length
    std::size_t preemptions = 0;           // times preempted
    std::vector<float> draft;              // this tick's drafted rows
    std::size_t draft_rows = 0;            // 0 outside a speculative tick
    RequestHealth health = RequestHealth::kClean;  // recovery status
  };

  /// One request's share of a tick's row-stack.
  struct TickEntry {
    RequestId id;
    std::size_t row0;  ///< first row in the stacked X
    std::size_t rows;  ///< prefill: chunk size; decode: 1 + drafted rows
    bool prefill;
    std::size_t base;  ///< prefill: global position of the chunk's first row
    std::size_t accepted = 0;  ///< decode: drafts verified (set by advance)
    /// Escalated to kFailRequest by an exhausted retry: appends rolled
    /// back, the request retires instead of committing (set by advance).
    bool failed = false;
  };

  /// Sliding-window fault accounting for one physical shard (quarantine).
  struct ShardHealth {
    std::deque<std::size_t> window;  ///< per-tick attributed detections
    std::size_t window_sum = 0;
    bool quarantined = false;
    std::size_t probation = 0;  ///< ticks left before readmission
  };

  void retire(RequestId id);
  /// Preempt: release tiles, reset progress, re-queue at class front.
  void preempt_request(RequestId id);
  /// Rows this request would advance next tick (prefill chunk or 1).
  [[nodiscard]] std::size_t next_rows(const Request& req,
                                      RequestId id) const;

  /// Run the stacked rows X through the model: shared linears/FFN, one
  /// per-(request, head) query-block attention work item per entry —
  /// prefill chunks, decode rows and speculative blocks all through the
  /// same batch call.  Verifies speculative drafts against the final-LN
  /// outputs (filling each entry's `accepted`) and records committed rows.
  void advance(std::vector<TickEntry>& entries, tensor::MatrixF& X,
               fault::FaultInjector* inj, StepStats& stats);

  /// Scrubber rung: verify/repair scrub_tiles_per_tick sealed tiles at tick
  /// start and preempt the owners of any dropped tile onto the
  /// recompute-from-prompt path before this tick's compute can read it.
  void run_scrubber(StepStats& stats);
  /// Quarantine rung: push this tick's per-shard attributed detections into
  /// the sliding windows, quarantine over-threshold shards (never the last
  /// healthy one), count down probations and readmit.
  void update_shard_health(std::span<const std::size_t> tick_faults,
                           StepStats& stats);
  /// Rebuild healthy_ / head_owner_ / the degraded executor after a
  /// quarantine state change.
  void rebuild_shard_executor();

  [[nodiscard]] const Request& checked(RequestId id) const;

  friend TilePool& testing::engine_pool(DecodeEngine& e) noexcept;

  const transformer::Model* model_;
  EngineOptions opt_;
  TilePool pool_;
  Scheduler scheduler_;
  /// Non-null iff opt_.shards > 1: the barrier-stepped shard executor the
  /// clean-path tick dispatches into (injected ticks run run_tick_solo).
  std::unique_ptr<ShardedEngine> sharded_;
  std::vector<std::size_t> head_owner_;  ///< head -> owning shard index
  /// Lifetime per-shard attention reports (see shard_reports()).
  std::vector<attention::FtReport> shard_attention_;
  /// Quarantine state per physical shard (size shards(); all-healthy and
  /// inert unless the policy's quarantine rung is on).
  std::vector<ShardHealth> shard_health_;
  /// Physical ids of the non-quarantined shards, ascending.
  std::vector<std::size_t> healthy_;
  /// Non-null while any shard is quarantined: the executor over the healthy
  /// workers the tick dispatches into instead of sharded_ (column-parallel
  /// combine is bitwise for any worker count, so degraded ticks stay
  /// bit-identical to solo; ring mode stays deterministic, not bitwise).
  std::unique_ptr<ShardedEngine> degraded_;
  std::shared_ptr<TokenProposer> proposer_;  // non-null iff spec_tokens > 0
  std::vector<Request> requests_;
  /// Admitted, not-yet-retired ids, ascending (the tick's row-stack is in
  /// request-id order — the order the bit-identity tests pin).  Ticks sweep
  /// this instead of every request ever submitted, so a long-running
  /// engine's tick cost tracks the batch, not the lifetime request count.
  std::vector<RequestId> live_;
  StepStats lifetime_;
};

}  // namespace ftt::serve
