#pragma once
// Continuous-batching fault-tolerant serving engine.
//
// The engine drives autoregressive generation for many concurrent sequences
// through a transformer::Model without ever recomputing a prefix.  submit()
// only enqueues: all compute happens in step(), one scheduler tick that
//
//   (a) admits queued requests whose KV reservation fits the batch-size and
//       tile budgets (serve::Scheduler, strict FCFS — no overtaking);
//   (b) runs at most one causal prefill chunk (up to 64 prompt rows) per
//       prefilling request through efta_prefill_batch, so a long prompt
//       streams into its caches across ticks instead of stalling the batch;
//   (c) advances every decoding request by one token through
//       efta_decode_batch;
//   (d) retires requests that reached their generation budget or context
//       cap, freeing their KV tiles for the queue.
//
// Prefill chunks and decode rows share one row-stack per tick: layer norms,
// the QKV/output projections and the feed-forward run once per layer over
// all rows of all requests (strided-ABFT-protected when protect_linear is
// set), then attention splits into per-(request, head) protected work items,
// OpenMP-parallel, with per-slice FtReport aggregation rolled up into both
// per-request lifetime reports and the tick's stats.
//
// Every per-row operation in the stack is row-deterministic, and the chunked
// prefill kernel is bit-identical per row to the token-by-token decode path,
// so a batched tick is bit-identical to running each request in its own
// engine — regardless of what else shares the batch, and regardless of the
// chunk size.  tests/test_serve.cpp pins both properties down.
//
// Token embedding/unembedding are outside the paper's protected region
// (memory, assumed ECC-protected) and are not modeled; "generation" feeds
// each token's final-layernormed hidden state back as the next token's
// input, which exercises exactly the per-token compute the paper profiles.

#include <cstddef>
#include <span>
#include <vector>

#include "attention/ft_report.hpp"
#include "core/decode.hpp"
#include "serve/kv_cache.hpp"
#include "serve/scheduler.hpp"
#include "transformer/model.hpp"

namespace ftt::serve {

struct EngineOptions {
  /// Attention protection knobs the decode/prefill kernels read: stride,
  /// abft_rel_threshold, exp_log_threshold, snvr_slack.  Both kernels are
  /// fixed to 64-row strided-ABFT tiles with SNVR softmax protection, so
  /// the constructor rejects other gemm/softmax/block settings; causal and
  /// unified_verification are implied by the cache-backed paths and
  /// ignored.
  core::EftaOptions efta;
  bool protect_linear = true;  ///< strided ABFT on projections + FFN
  /// Context cap: submit() rejects prompts beyond it, and a request
  /// *reaching* it during generation is retired automatically (caches
  /// released, hidden state and reports stay readable) so the rest of the
  /// batch keeps stepping.
  std::size_t max_context = 65536;
  /// Record every fed input row so fed_inputs() can replay the request
  /// through a from-scratch forward (tests / offline verification).  Costs
  /// hidden * 4 bytes per token while the request lives, which is why the
  /// serving default is off.
  bool record_inputs = false;
  /// Prompt rows per prefill chunk per tick, 1..64.  64 — the checksum tile
  /// — is the production setting: K/V tiles are loaded and encoded once per
  /// chunk instead of once per token.  1 reproduces serial token-by-token
  /// prefill; the bit-identity tests compare the two.
  std::size_t prefill_chunk_rows = 64;
  /// Generation budget for submit() calls that don't pass one explicitly.
  /// 0 = unbudgeted: the request decodes until finish() or max_context.
  std::size_t default_max_new_tokens = 0;
  /// Admission policy: batch-size cap and KV tile back-pressure.
  SchedulerOptions scheduler;
};

class DecodeEngine {
 public:
  using RequestId = std::size_t;

  struct StepStats {
    /// Token rows advanced this tick: prefill rows + decode steps.  Summed
    /// over a request's lifetime this is its context length.
    std::size_t active = 0;
    std::size_t admitted = 0;        ///< requests admitted from the queue
    std::size_t prefill_chunks = 0;  ///< causal prefill chunks run
    std::size_t prefill_rows = 0;    ///< prompt rows absorbed
    std::size_t decoded = 0;         ///< decode token-steps
    std::size_t retired = 0;         ///< requests retired (budget/cap)
    attention::FtReport attention;   ///< merged over all attention slices
    abft::Report linear;             ///< projections + FFN ABFT
    std::size_t activations_clipped = 0;

    StepStats& operator+=(const StepStats& o) noexcept {
      active += o.active;
      admitted += o.admitted;
      prefill_chunks += o.prefill_chunks;
      prefill_rows += o.prefill_rows;
      decoded += o.decoded;
      retired += o.retired;
      attention += o.attention;
      linear += o.linear;
      activations_clipped += o.activations_clipped;
      return *this;
    }
  };

  explicit DecodeEngine(const transformer::Model& model,
                        EngineOptions opt = {});

  /// Enqueue a sequence: `prompt_hidden` is seq x hidden, any seq >= 1.
  /// No compute happens here — the scheduler admits the request on a later
  /// step() and its prompt streams in as causal prefill chunks.
  /// `max_new_tokens` caps generation (0 = EngineOptions default); once the
  /// cap or max_context is reached the request retires on its own.
  RequestId submit(const tensor::MatrixF& prompt_hidden,
                   std::size_t max_new_tokens = 0);

  /// One scheduler tick: admit, prefill one chunk per prefilling request,
  /// advance every decoding request by one token, retire capped requests.
  /// A tick with nothing to run returns zeroed stats without touching
  /// OpenMP — an idle engine is free to poll.
  StepStats step(fault::FaultInjector* inj = nullptr);

  /// Run `steps` ticks; merged stats.
  StepStats drain(std::size_t steps, fault::FaultInjector* inj = nullptr);

  /// Tick until no request is queued or admitted (requires every live
  /// request to have a generation budget), or until `max_ticks` elapse.
  StepStats run_until_idle(fault::FaultInjector* inj = nullptr,
                           std::size_t max_ticks = SIZE_MAX);

  /// Retire a request in any live state: release its caches, pending prompt
  /// and recorded history, and free its scheduler reservation.  Its last
  /// hidden state, lifetime report and token count stay readable.
  void finish(RequestId id);

  /// Merged stats over everything this engine ever ran; `active` counts
  /// token rows (prefill + decode).  Equal to the sum of every step()
  /// return — all compute happens inside ticks.
  [[nodiscard]] const StepStats& lifetime() const noexcept {
    return lifetime_;
  }

  [[nodiscard]] RequestState state(RequestId id) const;
  /// Requests admitted and not yet retired (prefilling + decoding).
  [[nodiscard]] std::size_t active() const noexcept;
  /// Requests waiting for admission.
  [[nodiscard]] std::size_t queued() const noexcept {
    return scheduler_.queued();
  }
  [[nodiscard]] bool is_active(RequestId id) const;
  /// Tokens in the request's context (prefilled prompt rows + generated).
  [[nodiscard]] std::size_t context_length(RequestId id) const;
  /// Final-layernormed hidden state of the request's latest token (empty
  /// while the request is still queued).
  [[nodiscard]] std::span<const float> hidden(RequestId id) const;
  /// Lifetime attention fault-tolerance report of one request.
  [[nodiscard]] const attention::FtReport& report(RequestId id) const;
  /// Every input row fed so far (prompt rows, then the fed-back generated
  /// rows): the matrix a from-scratch forward() would consume.  For tests
  /// and offline verification of cache-backed generation.  Empty when
  /// record_inputs is off or the request has been retired.
  [[nodiscard]] tensor::MatrixF fed_inputs(RequestId id) const;

  /// Context tiles currently allocated across live requests (the unit the
  /// scheduler budgets): one context tile covers 64 tokens of KV across
  /// every layer and head.  Drops when requests retire — the reclamation
  /// the scheduler stress test asserts.
  [[nodiscard]] std::size_t kv_tiles_in_use() const noexcept;
  /// Allocated KV bytes across all live requests, layers and heads.
  [[nodiscard]] std::size_t kv_bytes() const noexcept;
  /// Tiles the scheduler has reserved for admitted requests.
  [[nodiscard]] std::size_t kv_tiles_reserved() const noexcept {
    return scheduler_.tiles_reserved();
  }

 private:
  struct Request {
    std::vector<KvCache> layers;           // one cache per block
    tensor::MatrixF prompt;                // pending rows (freed after prefill)
    std::size_t prompt_rows = 0;           // original prompt length
    std::size_t prefilled = 0;             // prompt rows absorbed so far
    std::size_t max_tokens = 0;            // context cap: prompt + budget
    std::vector<float> next_in;            // next token's input row
    std::vector<float> last_hidden;        // final-LN output of last row
    std::vector<std::vector<float>> inputs;  // fed rows (record_inputs)
    attention::FtReport attention;         // lifetime attention report
    std::size_t tokens = 0;                // context length ever reached
  };

  /// One request's share of a tick's row-stack.
  struct TickEntry {
    RequestId id;
    std::size_t row0;  ///< first row in the stacked X
    std::size_t rows;  ///< 1 for decode, chunk size for prefill
    bool prefill;
    std::size_t base;  ///< prefill: global position of the chunk's first row
  };

  void retire(RequestId id);

  /// Run the stacked rows X through the model: shared linears/FFN, per-
  /// (request, head) attention work items (prefill chunks + decode slices).
  void advance(const std::vector<TickEntry>& entries, tensor::MatrixF& X,
               fault::FaultInjector* inj, StepStats& stats);

  [[nodiscard]] const Request& checked(RequestId id) const;

  const transformer::Model* model_;
  EngineOptions opt_;
  Scheduler scheduler_;
  std::vector<Request> requests_;
  /// Admitted, not-yet-retired ids, ascending (admissions are FCFS over
  /// monotone ids).  Ticks sweep this instead of every request ever
  /// submitted, so a long-running engine's tick cost tracks the batch, not
  /// the lifetime request count.
  std::vector<RequestId> live_;
  StepStats lifetime_;
};

}  // namespace ftt::serve
