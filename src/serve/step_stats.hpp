#pragma once
// Per-tick serving counters, shared by every layer of the serving stack:
// DecodeEngine ticks produce one StepStats, shard workers contribute partial
// stats a combiner merges in fixed shard order, and the replica Router
// merges one StepStats per replica per tick.  Extracted from DecodeEngine
// so the merge is written once instead of re-accumulated ad hoc at each
// layer.
//
// Every field is an integer counter or an integer-counter report, so
// merging is associative and commutative — totals are independent of merge
// order (per-shard, per-replica, or per-tick first).  The combiner still
// merges in fixed shard order, matching the float-combine discipline.

#include <cstddef>

#include "abft/report.hpp"
#include "attention/ft_report.hpp"

namespace ftt::serve {

struct StepStats {
  /// Token rows *committed* this tick: prefill rows + decoded tokens.
  /// Summed over a request's lifetime this is its committed context
  /// length (prefix-shared rows are attached, not computed; preempted
  /// rows are recomputed and so counted again; rejected speculative rows
  /// are computed but never committed and so never counted here).
  std::size_t active = 0;
  std::size_t admitted = 0;        ///< requests admitted from the queue
  std::size_t prefill_chunks = 0;  ///< causal prefill chunks run
  std::size_t prefill_rows = 0;    ///< prompt rows absorbed (computed)
  /// Decode tokens *committed* this tick: the fed row of every decoding
  /// request plus its accepted drafts.  Rejected draft rows are computed
  /// but never committed, so they appear in spec_rejected, not here.
  std::size_t decoded = 0;
  std::size_t retired = 0;         ///< requests retired (budget/cap)
  std::size_t spec_proposed = 0;   ///< draft rows scored this tick
  std::size_t spec_accepted = 0;   ///< drafts committed (bit-matched)
  std::size_t spec_rejected = 0;   ///< drafts rolled back
  std::size_t preempted = 0;       ///< requests preempted (pool exhausted)
  std::size_t evicted = 0;         ///< cached prefix tiles evicted
  /// Prefix-tile attach events (tiles mapped from the pool instead of
  /// computed).  Counts *events*: a preempted request re-attaching its
  /// prefix on readmission counts again — each attach is prefill compute
  /// that did not run.
  std::size_t shared_tiles = 0;
  attention::FtReport attention;   ///< merged over all attention slices
  abft::Report linear;             ///< projections + FFN ABFT
  std::size_t activations_clipped = 0;

  // --- recovery ladder (serve/recovery.hpp; all zero with recovery off) ---
  std::size_t retried = 0;    ///< tick compute re-runs (retry attempts)
  std::size_t recovered = 0;  ///< ticks committed clean after >= 1 retry
  std::size_t degraded = 0;   ///< requests served flagged on retry exhaustion
  std::size_t failed = 0;     ///< requests failed/retired on retry exhaustion
  std::size_t quarantined = 0;    ///< shard quarantine events
  std::size_t scrubbed = 0;       ///< sealed tiles scanned by the scrubber
  std::size_t repaired = 0;       ///< scrubber in-place repairs
  std::size_t scrub_dropped = 0;  ///< unrepairable tiles dropped (owners
                                  ///<   preempted onto recompute)
  std::size_t drained = 0;        ///< replica drain events (router layer)

  /// Accumulate another tick's / shard's / replica's stats into this one.
  StepStats& merge(const StepStats& o) noexcept {
    active += o.active;
    admitted += o.admitted;
    prefill_chunks += o.prefill_chunks;
    prefill_rows += o.prefill_rows;
    decoded += o.decoded;
    retired += o.retired;
    spec_proposed += o.spec_proposed;
    spec_accepted += o.spec_accepted;
    spec_rejected += o.spec_rejected;
    preempted += o.preempted;
    evicted += o.evicted;
    shared_tiles += o.shared_tiles;
    attention += o.attention;
    linear += o.linear;
    activations_clipped += o.activations_clipped;
    retried += o.retried;
    recovered += o.recovered;
    degraded += o.degraded;
    failed += o.failed;
    quarantined += o.quarantined;
    scrubbed += o.scrubbed;
    repaired += o.repaired;
    scrub_dropped += o.scrub_dropped;
    drained += o.drained;
    return *this;
  }

  StepStats& operator+=(const StepStats& o) noexcept { return merge(o); }
};

}  // namespace ftt::serve
