#include "serve/engine.hpp"

#include <stdexcept>

namespace ftt::serve {

using attention::FtReport;
using numeric::Half;
using tensor::MatrixF;
using tensor::MatrixH;
using transformer::Block;
using transformer::LinearProtect;

DecodeEngine::DecodeEngine(const transformer::Model& model, EngineOptions opt)
    : model_(&model), opt_(opt) {
  // Fail fast on a stride the decode kernel would reject per slice.
  const auto stride = static_cast<std::size_t>(opt_.efta.stride);
  if (stride == 0 || model.config().head_dim() % stride != 0) {
    throw std::invalid_argument(
        "DecodeEngine: head_dim must be a multiple of the checksum stride");
  }
  // The decode kernel is fixed to 64-row strided-ABFT tiles + SNVR; reject
  // knob values it would silently ignore.
  if (opt_.efta.gemm != core::GemmProtect::kStrided ||
      opt_.efta.softmax != core::SoftmaxProtect::kSNVR ||
      opt_.efta.block != core::KvSlice::kTileRows) {
    throw std::invalid_argument(
        "DecodeEngine: decode supports only strided ABFT + SNVR with the "
        "64-row tile");
  }
}

DecodeEngine::RequestId DecodeEngine::submit(const MatrixF& prompt_hidden,
                                             fault::FaultInjector* inj) {
  const auto& cfg = model_->config();
  if (prompt_hidden.rows() == 0 || prompt_hidden.cols() != cfg.hidden) {
    throw std::invalid_argument(
        "DecodeEngine::submit: prompt must be seq x hidden with seq >= 1");
  }
  if (prompt_hidden.rows() > opt_.max_context) {
    throw std::invalid_argument("DecodeEngine::submit: prompt exceeds "
                                "max_context");
  }
  const RequestId id = requests_.size();
  Request req;
  req.layers.reserve(cfg.layers);
  for (std::size_t b = 0; b < cfg.layers; ++b) {
    req.layers.emplace_back(cfg.heads, cfg.head_dim());
  }
  req.active = true;
  requests_.push_back(std::move(req));

  // Protected prefill: feed the prompt one token at a time through the same
  // cache-backed path decode uses.  Each token's attention sees exactly its
  // causal prefix (itself included), so no separate prefill kernel — and no
  // seq-length alignment constraint — is needed.  (Batching prefill across
  // the prompt is the ROADMAP's async-prefill open item.)
  const std::vector<RequestId> ids{id};
  try {
    for (std::size_t t = 0; t < prompt_hidden.rows(); ++t) {
      MatrixF x(1, cfg.hidden);
      for (std::size_t c = 0; c < cfg.hidden; ++c) {
        x(0, c) = prompt_hidden(t, c);
      }
      advance(ids, x, inj);
    }
  } catch (...) {
    // Transactional admit: never leave a half-prefilled request active.
    requests_.pop_back();
    throw;
  }
  return id;
}

DecodeEngine::StepStats DecodeEngine::step(fault::FaultInjector* inj) {
  const auto& cfg = model_->config();
  std::vector<RequestId> ids;
  for (RequestId id = 0; id < requests_.size(); ++id) {
    Request& req = requests_[id];
    if (!req.active) continue;
    if (req.tokens + 1 > opt_.max_context) {
      retire(req);  // capped sequence leaves; the batch keeps stepping
      continue;
    }
    ids.push_back(id);
  }
  if (ids.empty()) return {};
  MatrixF X(ids.size(), cfg.hidden);
  for (std::size_t r = 0; r < ids.size(); ++r) {
    const Request& req = requests_[ids[r]];
    for (std::size_t c = 0; c < cfg.hidden; ++c) X(r, c) = req.next_in[c];
  }
  return advance(ids, X, inj);
}

DecodeEngine::StepStats DecodeEngine::drain(std::size_t steps,
                                            fault::FaultInjector* inj) {
  StepStats total;
  for (std::size_t i = 0; i < steps; ++i) total += step(inj);
  return total;
}

DecodeEngine::StepStats DecodeEngine::advance(const std::vector<RequestId>& ids,
                                              MatrixF& X,
                                              fault::FaultInjector* inj) {
  const auto& cfg = model_->config();
  const std::size_t R = ids.size();
  const std::size_t hidden = cfg.hidden;
  const std::size_t heads = cfg.heads;
  const std::size_t dim = cfg.head_dim();
  const auto mode =
      opt_.protect_linear ? LinearProtect::kStridedAbft : LinearProtect::kNone;

  StepStats stats;
  stats.active = R;
  for (std::size_t r = 0; r < R; ++r) {
    Request& req = requests_[ids[r]];
    ++req.tokens;
    if (opt_.record_inputs) {
      req.inputs.emplace_back(X.row(r).begin(), X.row(r).end());
    }
  }

  // This mirrors Block::forward's sub-block pipeline (ln1 -> QKV ->
  // attention -> wo residual; ln2 -> FFN residual) with the attention
  // swapped for cache-backed batched decode; Engine.CacheBackedGeneration-
  // MatchesFullRecompute pins the two paths against each other.
  std::vector<FtReport> per_slice(R * heads);
  const auto& blocks = model_->blocks();
  for (std::size_t layer = 0; layer < blocks.size(); ++layer) {
    const Block& blk = blocks[layer];
    // --- attention sub-block: project, append K/V, batched decode ---
    MatrixF h = X;
    blk.ln1().forward(h);
    MatrixF qm(R, hidden), km(R, hidden), vm(R, hidden);
    stats.linear += blk.wq().forward(h, qm, mode, inj);
    stats.linear += blk.wk().forward(h, km, mode, inj);
    stats.linear += blk.wv().forward(h, vm, mode, inj);

    // Round to the fp16 tensor-core operands once; rows are head-major, so
    // a head's dim-wide segment is contiguous for both the cache append and
    // the decode work item.
    MatrixH qh(R, hidden), kh(R, hidden), vh(R, hidden);
    tensor::narrow(qm, {qh.data(), qh.size()});
    tensor::narrow(km, {kh.data(), kh.size()});
    tensor::narrow(vm, {vh.data(), vh.size()});

    MatrixF attn(R, hidden);
    std::vector<core::DecodeWorkItem> items;
    items.reserve(R * heads);
    for (std::size_t r = 0; r < R; ++r) {
      KvCache& cache = requests_[ids[r]].layers[layer];
      cache.append(kh.row(r), vh.row(r));
      for (std::size_t hd = 0; hd < heads; ++hd) {
        items.push_back(core::DecodeWorkItem{
            cache.slice(hd),
            qh.row(r).subspan(hd * dim, dim),
            attn.row(r).subspan(hd * dim, dim)});
      }
    }
    stats.attention +=
        core::efta_decode_batch(items, opt_.efta, inj, per_slice);
    for (std::size_t r = 0; r < R; ++r) {
      for (std::size_t hd = 0; hd < heads; ++hd) {
        requests_[ids[r]].attention += per_slice[r * heads + hd];
      }
    }

    MatrixF proj(R, hidden);
    stats.linear += blk.wo().forward(attn, proj, mode, inj);
    for (std::size_t i = 0; i < X.size(); ++i) X.data()[i] += proj.data()[i];

    // --- feed-forward sub-block ---
    MatrixF h2 = X;
    blk.ln2().forward(h2);
    MatrixF ffn_out(R, hidden);
    const auto fr = blk.ffn().forward(h2, ffn_out, opt_.protect_linear, inj);
    stats.linear += fr.abft;
    stats.activations_clipped += fr.activations_clipped;
    for (std::size_t i = 0; i < X.size(); ++i) X.data()[i] += ffn_out.data()[i];
  }

  MatrixF y = X;
  model_->final_ln().forward(y);
  for (std::size_t r = 0; r < R; ++r) {
    Request& req = requests_[ids[r]];
    req.last_hidden.assign(y.row(r).begin(), y.row(r).end());
    req.next_in = req.last_hidden;
  }
  lifetime_ += stats;
  return stats;
}

void DecodeEngine::retire(Request& req) {
  req.active = false;
  req.layers.clear();
  req.layers.shrink_to_fit();
  req.inputs.clear();
  req.inputs.shrink_to_fit();
}

void DecodeEngine::finish(RequestId id) {
  if (id >= requests_.size()) {
    throw std::out_of_range("DecodeEngine: unknown request id");
  }
  retire(requests_[id]);
}

std::size_t DecodeEngine::active() const noexcept {
  std::size_t n = 0;
  for (const Request& r : requests_) n += r.active ? 1 : 0;
  return n;
}

bool DecodeEngine::is_active(RequestId id) const {
  return id < requests_.size() && requests_[id].active;
}

const DecodeEngine::Request& DecodeEngine::checked(RequestId id) const {
  if (id >= requests_.size()) {
    throw std::out_of_range("DecodeEngine: unknown request id");
  }
  return requests_[id];
}

std::size_t DecodeEngine::context_length(RequestId id) const {
  return checked(id).tokens;
}

std::span<const float> DecodeEngine::hidden(RequestId id) const {
  return checked(id).last_hidden;
}

const FtReport& DecodeEngine::report(RequestId id) const {
  return checked(id).attention;
}

MatrixF DecodeEngine::fed_inputs(RequestId id) const {
  const Request& req = checked(id);
  const std::size_t hidden = model_->config().hidden;
  MatrixF m(req.inputs.size(), hidden);
  for (std::size_t r = 0; r < req.inputs.size(); ++r) {
    for (std::size_t c = 0; c < hidden; ++c) m(r, c) = req.inputs[r][c];
  }
  return m;
}

}  // namespace ftt::serve
