#include "serve/engine.hpp"

#include <algorithm>
#include <stdexcept>

namespace ftt::serve {

using attention::FtReport;
using numeric::Half;
using tensor::MatrixF;
using tensor::MatrixH;
using transformer::Block;
using transformer::LinearProtect;

DecodeEngine::DecodeEngine(const transformer::Model& model, EngineOptions opt)
    : model_(&model), opt_(opt), scheduler_(opt.scheduler) {
  // Fail fast on a stride the kernels would reject per slice.
  const auto stride = static_cast<std::size_t>(opt_.efta.stride);
  if (stride == 0 || model.config().head_dim() % stride != 0) {
    throw std::invalid_argument(
        "DecodeEngine: head_dim must be a multiple of the checksum stride");
  }
  // The cache-backed kernels are fixed to 64-row strided-ABFT tiles + SNVR;
  // reject knob values they would silently ignore.
  if (opt_.efta.gemm != core::GemmProtect::kStrided ||
      opt_.efta.softmax != core::SoftmaxProtect::kSNVR ||
      opt_.efta.block != core::KvSlice::kTileRows) {
    throw std::invalid_argument(
        "DecodeEngine: serving supports only strided ABFT + SNVR with the "
        "64-row tile");
  }
  if (opt_.prefill_chunk_rows == 0 ||
      opt_.prefill_chunk_rows > core::KvSlice::kTileRows) {
    throw std::invalid_argument(
        "DecodeEngine: prefill_chunk_rows must be in [1, 64]");
  }
  if (opt_.max_context == 0) {
    throw std::invalid_argument("DecodeEngine: max_context must be >= 1");
  }
}

DecodeEngine::RequestId DecodeEngine::submit(const MatrixF& prompt_hidden,
                                             std::size_t max_new_tokens) {
  const auto& cfg = model_->config();
  if (prompt_hidden.rows() == 0 || prompt_hidden.cols() != cfg.hidden) {
    throw std::invalid_argument(
        "DecodeEngine::submit: prompt must be seq x hidden with seq >= 1");
  }
  if (prompt_hidden.rows() > opt_.max_context) {
    throw std::invalid_argument("DecodeEngine::submit: prompt exceeds "
                                "max_context");
  }
  const std::size_t budget =
      max_new_tokens != 0 ? max_new_tokens : opt_.default_max_new_tokens;
  Request req;
  req.prompt = prompt_hidden;
  req.prompt_rows = prompt_hidden.rows();
  // Clamp overflow-safely: a huge budget (SIZE_MAX as an "unlimited"
  // sentinel) must saturate at max_context, not wrap below the prompt and
  // under-reserve KV tiles.
  const std::size_t headroom = opt_.max_context - req.prompt_rows;
  req.max_tokens = (budget == 0 || budget >= headroom)
                       ? opt_.max_context
                       : req.prompt_rows + budget;

  const RequestId id = requests_.size();
  // Transactional admit to the queue: enqueue can throw (a reservation that
  // could never fit), and neither side may keep a phantom entry.
  requests_.push_back(std::move(req));
  try {
    scheduler_.enqueue(id, requests_.back().max_tokens);
  } catch (...) {
    requests_.pop_back();
    throw;
  }
  return id;
}

DecodeEngine::StepStats DecodeEngine::step(fault::FaultInjector* inj) {
  const auto& cfg = model_->config();
  StepStats stats;

  // (d) retire requests that reached their budget or the context cap.  Done
  // at tick start so the final token's hidden state was readable for one
  // tick, matching the pre-scheduler engine's behavior at max_context.
  for (std::size_t i = 0; i < live_.size();) {
    const RequestId id = live_[i];
    if (scheduler_.state(id) == RequestState::kDecoding &&
        requests_[id].tokens >= requests_[id].max_tokens) {
      retire(id);  // erases live_[i]; the next candidate slides into i
      ++stats.retired;
    } else {
      ++i;
    }
  }

  // (a) admit queued requests whose KV reservation fits.  FCFS over
  // monotonically assigned ids keeps live_ sorted, which keeps the tick's
  // row-stack in request-id order (the order the bit-identity tests pin).
  for (const RequestId id : scheduler_.admit()) {
    Request& req = requests_[id];
    req.layers.reserve(cfg.layers);
    for (std::size_t b = 0; b < cfg.layers; ++b) {
      // Caches memoize per-tile checksum encodings at the engine's stride,
      // so clean decode ticks consume sealed encodings instead of
      // re-deriving them per token.
      req.layers.emplace_back(cfg.heads, cfg.head_dim(), opt_.efta.stride);
    }
    live_.push_back(id);
    ++stats.admitted;
  }

  // (b)+(c) gather this tick's row-stack: one prefill chunk per prefilling
  // request, one decode row per decoding request, in request-id order.
  std::vector<TickEntry> entries;
  std::size_t total_rows = 0;
  for (const RequestId id : live_) {
    Request& req = requests_[id];
    if (scheduler_.state(id) == RequestState::kPrefilling) {
      const std::size_t rows = std::min(opt_.prefill_chunk_rows,
                                        req.prompt_rows - req.prefilled);
      entries.push_back(TickEntry{id, total_rows, rows, true, req.prefilled});
      total_rows += rows;
    } else {
      entries.push_back(TickEntry{id, total_rows, 1, false, 0});
      total_rows += 1;
    }
  }
  // An idle tick is free: no allocation, no OpenMP region.
  if (entries.empty()) {
    lifetime_ += stats;
    return stats;
  }

  MatrixF X(total_rows, cfg.hidden);
  for (const TickEntry& e : entries) {
    const Request& req = requests_[e.id];
    if (e.prefill) {
      for (std::size_t r = 0; r < e.rows; ++r) {
        for (std::size_t c = 0; c < cfg.hidden; ++c) {
          X(e.row0 + r, c) = req.prompt(e.base + r, c);
        }
      }
    } else {
      for (std::size_t c = 0; c < cfg.hidden; ++c) {
        X(e.row0, c) = req.next_in[c];
      }
    }
  }

  advance(entries, X, inj, stats);

  // State transitions after the compute.
  for (const TickEntry& e : entries) {
    Request& req = requests_[e.id];
    req.tokens += e.rows;
    if (e.prefill) {
      req.prefilled += e.rows;
      if (req.prefilled == req.prompt_rows) {
        scheduler_.on_prefill_done(e.id);
        req.prompt = MatrixF();  // pending prompt rows are no longer needed
      }
    }
  }

  lifetime_ += stats;
  return stats;
}

DecodeEngine::StepStats DecodeEngine::drain(std::size_t steps,
                                            fault::FaultInjector* inj) {
  StepStats total;
  for (std::size_t i = 0; i < steps; ++i) total += step(inj);
  return total;
}

DecodeEngine::StepStats DecodeEngine::run_until_idle(fault::FaultInjector* inj,
                                                     std::size_t max_ticks) {
  StepStats total;
  for (std::size_t i = 0; i < max_ticks; ++i) {
    if (scheduler_.queued() == 0 && active() == 0) break;
    total += step(inj);
  }
  return total;
}

void DecodeEngine::advance(const std::vector<TickEntry>& entries, MatrixF& X,
                           fault::FaultInjector* inj, StepStats& stats) {
  const auto& cfg = model_->config();
  const std::size_t T = X.rows();
  const std::size_t hidden = cfg.hidden;
  const std::size_t heads = cfg.heads;
  const std::size_t dim = cfg.head_dim();
  const auto mode =
      opt_.protect_linear ? LinearProtect::kStridedAbft : LinearProtect::kNone;

  stats.active += T;
  for (const TickEntry& e : entries) {
    if (e.prefill) {
      ++stats.prefill_chunks;
      stats.prefill_rows += e.rows;
    } else {
      ++stats.decoded;
    }
    if (opt_.record_inputs) {
      Request& req = requests_[e.id];
      for (std::size_t r = 0; r < e.rows; ++r) {
        req.inputs.emplace_back(X.row(e.row0 + r).begin(),
                                X.row(e.row0 + r).end());
      }
    }
  }

  // This mirrors Block::forward's sub-block pipeline (ln1 -> QKV ->
  // attention -> wo residual; ln2 -> FFN residual) with the attention
  // swapped for the cache-backed kernels: decode rows become one
  // DecodeWorkItem per head, prefill chunks one PrefillWorkItem per head
  // reading/writing the stacked matrices with a row stride of `hidden`.
  std::vector<FtReport> per_decode, per_prefill;
  std::vector<core::DecodeWorkItem> ditems;
  std::vector<core::PrefillWorkItem> pitems;
  const auto& blocks = model_->blocks();
  for (std::size_t layer = 0; layer < blocks.size(); ++layer) {
    const Block& blk = blocks[layer];
    // --- attention sub-block: project, append K/V, batched attention ---
    MatrixF h = X;
    blk.ln1().forward(h);
    MatrixF qm(T, hidden), km(T, hidden), vm(T, hidden);
    stats.linear += blk.wq().forward(h, qm, mode, inj);
    stats.linear += blk.wk().forward(h, km, mode, inj);
    stats.linear += blk.wv().forward(h, vm, mode, inj);

    // Round to the fp16 tensor-core operands once; rows are head-major, so
    // a head's dim-wide segment is contiguous for the cache append and
    // hidden-strided across rows for the chunk work items.
    MatrixH qh(T, hidden), kh(T, hidden), vh(T, hidden);
    tensor::narrow(qm, {qh.data(), qh.size()});
    tensor::narrow(km, {kh.data(), kh.size()});
    tensor::narrow(vm, {vh.data(), vh.size()});

    MatrixF attn(T, hidden);
    ditems.clear();
    pitems.clear();
    for (const TickEntry& e : entries) {
      KvCache& cache = requests_[e.id].layers[layer];
      if (e.prefill) {
        cache.append_chunk({&kh(e.row0, 0), e.rows * hidden},
                           {&vh(e.row0, 0), e.rows * hidden}, e.rows);
        for (std::size_t hd = 0; hd < heads; ++hd) {
          pitems.push_back(core::PrefillWorkItem{
              cache.slice(hd), e.base, &qh(e.row0, hd * dim),
              &attn(e.row0, hd * dim), e.rows, hidden, hidden});
        }
      } else {
        cache.append(kh.row(e.row0), vh.row(e.row0));
        for (std::size_t hd = 0; hd < heads; ++hd) {
          ditems.push_back(core::DecodeWorkItem{
              cache.slice(hd), qh.row(e.row0).subspan(hd * dim, dim),
              attn.row(e.row0).subspan(hd * dim, dim)});
        }
      }
    }
    per_decode.assign(ditems.size(), FtReport{});
    per_prefill.assign(pitems.size(), FtReport{});
    stats.attention +=
        core::efta_decode_batch(ditems, opt_.efta, inj, per_decode);
    stats.attention +=
        core::efta_prefill_batch(pitems, opt_.efta, inj, per_prefill);
    // Roll the per-slice reports up into per-request lifetime reports,
    // walking the work lists in the same entry order they were built.
    std::size_t di = 0, pi = 0;
    for (const TickEntry& e : entries) {
      Request& req = requests_[e.id];
      auto& src = e.prefill ? per_prefill : per_decode;
      auto& idx = e.prefill ? pi : di;
      for (std::size_t hd = 0; hd < heads; ++hd) req.attention += src[idx++];
    }

    MatrixF proj(T, hidden);
    stats.linear += blk.wo().forward(attn, proj, mode, inj);
    for (std::size_t i = 0; i < X.size(); ++i) X.data()[i] += proj.data()[i];

    // --- feed-forward sub-block ---
    MatrixF h2 = X;
    blk.ln2().forward(h2);
    MatrixF ffn_out(T, hidden);
    const auto fr = blk.ffn().forward(h2, ffn_out, opt_.protect_linear, inj);
    stats.linear += fr.abft;
    stats.activations_clipped += fr.activations_clipped;
    for (std::size_t i = 0; i < X.size(); ++i) X.data()[i] += ffn_out.data()[i];
  }

  MatrixF y = X;
  model_->final_ln().forward(y);
  for (const TickEntry& e : entries) {
    Request& req = requests_[e.id];
    const std::size_t last = e.row0 + e.rows - 1;
    req.last_hidden.assign(y.row(last).begin(), y.row(last).end());
    // For a prefill chunk that completes the prompt this seeds generation;
    // mid-prompt it is overwritten by the next chunk's last row.
    req.next_in = req.last_hidden;
  }
}

void DecodeEngine::retire(RequestId id) {
  Request& req = requests_[id];
  scheduler_.release(id);
  const auto it = std::find(live_.begin(), live_.end(), id);
  if (it != live_.end()) live_.erase(it);
  req.layers.clear();
  req.layers.shrink_to_fit();
  req.inputs.clear();
  req.inputs.shrink_to_fit();
  req.prompt = MatrixF();
}

void DecodeEngine::finish(RequestId id) {
  if (id >= requests_.size()) {
    throw std::out_of_range("DecodeEngine: unknown request id");
  }
  retire(id);
}

std::size_t DecodeEngine::active() const noexcept {
  return scheduler_.admitted();
}

RequestState DecodeEngine::state(RequestId id) const {
  if (id >= requests_.size()) {
    throw std::out_of_range("DecodeEngine: unknown request id");
  }
  return scheduler_.state(id);
}

bool DecodeEngine::is_active(RequestId id) const {
  if (id >= requests_.size()) return false;
  const RequestState s = scheduler_.state(id);
  return s == RequestState::kPrefilling || s == RequestState::kDecoding;
}

const DecodeEngine::Request& DecodeEngine::checked(RequestId id) const {
  if (id >= requests_.size()) {
    throw std::out_of_range("DecodeEngine: unknown request id");
  }
  return requests_[id];
}

std::size_t DecodeEngine::context_length(RequestId id) const {
  return checked(id).tokens;
}

std::span<const float> DecodeEngine::hidden(RequestId id) const {
  return checked(id).last_hidden;
}

const FtReport& DecodeEngine::report(RequestId id) const {
  return checked(id).attention;
}

MatrixF DecodeEngine::fed_inputs(RequestId id) const {
  const Request& req = checked(id);
  const std::size_t hidden = model_->config().hidden;
  MatrixF m(req.inputs.size(), hidden);
  for (std::size_t r = 0; r < req.inputs.size(); ++r) {
    for (std::size_t c = 0; c < hidden; ++c) m(r, c) = req.inputs[r][c];
  }
  return m;
}

std::size_t DecodeEngine::kv_tiles_in_use() const noexcept {
  std::size_t n = 0;
  for (const RequestId id : live_) {
    const Request& r = requests_[id];
    if (!r.layers.empty()) n += r.layers.front().tiles();
  }
  return n;
}

std::size_t DecodeEngine::kv_bytes() const noexcept {
  std::size_t n = 0;
  for (const RequestId id : live_) {
    for (const KvCache& c : requests_[id].layers) n += c.bytes();
  }
  return n;
}

}  // namespace ftt::serve
