#include "serve/engine.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>

namespace ftt::serve {

using attention::FtReport;
using numeric::Half;
using tensor::MatrixF;
using tensor::MatrixH;
using transformer::Block;
using transformer::LinearProtect;

namespace {

/// Preemption rank: lower is better-protected.  Victims are drawn worst
/// first — lowest priority class, then youngest (largest id) — so the
/// oldest request of the most urgent class is never preempted by anyone.
[[nodiscard]] bool better_rank(Priority pa, std::size_t ida, Priority pb,
                               std::size_t idb) noexcept {
  if (pa != pb) return pa < pb;
  return ida < idb;
}

}  // namespace

DecodeEngine::DecodeEngine(const transformer::Model& model, EngineOptions opt)
    : model_(&model),
      opt_(opt),
      pool_(TilePoolOptions{model.config().layers, model.config().heads,
                            model.config().head_dim(),
                            opt.scheduler.max_kv_tiles, opt.efta.stride,
                            opt.images}),
      scheduler_(opt.scheduler) {
  // Fail fast on a stride the kernels would reject per slice.
  const auto stride = static_cast<std::size_t>(opt_.efta.stride);
  if (stride == 0 || model.config().head_dim() % stride != 0) {
    throw std::invalid_argument(
        "DecodeEngine: head_dim must be a multiple of the checksum stride");
  }
  if (opt_.kv_quant && pool_.enc_stride() == 0) {
    throw std::invalid_argument(
        "DecodeEngine: kv_quant requires the sealed-tile encoding memo "
        "(a stride dividing both the tile rows and head_dim)");
  }
  // The cache-backed kernels are fixed to 64-row strided-ABFT tiles + SNVR;
  // reject knob values they would silently ignore.
  if (opt_.efta.gemm != core::GemmProtect::kStrided ||
      opt_.efta.softmax != core::SoftmaxProtect::kSNVR ||
      opt_.efta.block != core::KvSlice::kTileRows) {
    throw std::invalid_argument(
        "DecodeEngine: serving supports only strided ABFT + SNVR with the "
        "64-row tile");
  }
  if (opt_.prefill_chunk_rows == 0 ||
      opt_.prefill_chunk_rows > core::KvSlice::kTileRows) {
    throw std::invalid_argument(
        "DecodeEngine: prefill_chunk_rows must be in [1, 64]");
  }
  if (opt_.max_context == 0) {
    throw std::invalid_argument("DecodeEngine: max_context must be >= 1");
  }
  // A speculative block is 1 committed row + spec_tokens drafts and must
  // fit the kernel's 64-row query block.
  if (opt_.spec_tokens >= core::KvSlice::kTileRows) {
    throw std::invalid_argument(
        "DecodeEngine: spec_tokens must be in [0, 63]");
  }
  if (opt_.spec_tokens > 0) {
    proposer_ = opt_.proposer ? opt_.proposer
                              : std::make_shared<PromptLookupProposer>();
  } else if (opt_.proposer != nullptr) {
    // Same policy as the efta knobs above: reject a configuration the
    // engine would silently ignore — a custom drafter with speculation
    // off would never be called.
    throw std::invalid_argument(
        "DecodeEngine: a proposer was supplied but spec_tokens is 0 — "
        "speculation would be silently off");
  }
  if (opt_.shards == 0) {
    throw std::invalid_argument("DecodeEngine: shards must be >= 1");
  }
  if (opt_.shards > 1) {
    // Throws if head_dim is not 64-tile aligned for head-column slicing.
    sharded_ = std::make_unique<ShardedEngine>(model, opt_.shards,
                                               opt_.combine);
  }
  // head -> owning shard, the attribution map for per-shard fault reports.
  // Built for shards == 1 too, so attribution code has one shape.
  head_owner_.resize(model.config().heads);
  shard_attention_.resize(opt_.shards);
  for (std::size_t s = 0; s < opt_.shards; ++s) {
    const auto spec =
        core::ShardSpec::for_shard(s, opt_.shards, model.config().heads);
    for (std::size_t hd = spec.begin_head; hd < spec.end_head; ++hd) {
      head_owner_[hd] = s;
    }
  }
  if (opt_.recovery.shard_quarantine_threshold > 0 &&
      opt_.recovery.shard_window_ticks == 0) {
    throw std::invalid_argument(
        "DecodeEngine: shard quarantine needs shard_window_ticks >= 1");
  }
  shard_health_.resize(opt_.shards);
  healthy_.resize(opt_.shards);
  for (std::size_t s = 0; s < opt_.shards; ++s) healthy_[s] = s;
}

DecodeEngine::RequestId DecodeEngine::submit(const MatrixF& prompt_hidden,
                                             std::size_t max_new_tokens,
                                             Priority priority) {
  return submit_with_format(prompt_hidden,
                            opt_.kv_quant ? core::TileFmt::kI8
                                          : core::TileFmt::kF16,
                            max_new_tokens, priority);
}

DecodeEngine::RequestId DecodeEngine::submit_with_format(
    const MatrixF& prompt_hidden, core::TileFmt kv_fmt,
    std::size_t max_new_tokens, Priority priority) {
  const auto& cfg = model_->config();
  if (kv_fmt == core::TileFmt::kI8 && pool_.enc_stride() == 0) {
    throw std::logic_error(
        "DecodeEngine: the int8 KV tile format requires the pool's encoding "
        "memo (enc_stride)");
  }
  if (prompt_hidden.rows() == 0 || prompt_hidden.cols() != cfg.hidden) {
    throw std::invalid_argument(
        "DecodeEngine::submit: prompt must be seq x hidden with seq >= 1");
  }
  if (prompt_hidden.rows() > opt_.max_context) {
    throw std::invalid_argument("DecodeEngine::submit: prompt exceeds "
                                "max_context");
  }
  const std::size_t budget =
      max_new_tokens != 0 ? max_new_tokens : opt_.default_max_new_tokens;
  Request req;
  req.prompt = prompt_hidden;
  req.prompt_rows = prompt_hidden.rows();
  req.priority = priority;
  req.kv_fmt = kv_fmt;
  // Clamp overflow-safely: a huge budget (SIZE_MAX as an "unlimited"
  // sentinel) must saturate at max_context, not wrap below the prompt.
  const std::size_t headroom = opt_.max_context - req.prompt_rows;
  req.max_tokens = (budget == 0 || budget >= headroom)
                       ? opt_.max_context
                       : req.prompt_rows + budget;
  if (opt_.share_prefix) {
    // Chain keys over the prompt's hidden rows, one per *shareable* tile.
    // The last prompt row is never shared — its forward pass seeds
    // generation — so at most (prompt_rows - 1) / 64 tiles are keyed.
    const std::size_t shareable = (req.prompt_rows - 1) / TilePool::kTileRows;
    ChainKey key;  // empty-chain root
    if (kv_fmt == core::TileFmt::kI8) {
      // Per-format chain root: fold a tag byte in so an i8 request's
      // prefix keys can never hit an fp16 request's tiles (or vice versa).
      // attach_shared() enforces the same rule as a hard backstop.
      const std::uint8_t tag = 1;
      key = chain_extend(key, &tag, sizeof(tag));
    }
    for (std::size_t t = 0; t < shareable; ++t) {
      key = chain_extend(
          key, &req.prompt(t * TilePool::kTileRows, 0),
          TilePool::kTileRows * cfg.hidden * sizeof(float));
      req.prompt_keys.push_back(key);
    }
  }

  const RequestId id = requests_.size();
  // Transactional admit to the queue: a typed rejection (or a throw) must
  // not keep a phantom entry on either side.
  requests_.push_back(std::move(req));
  EnqueueResult result;
  try {
    // job_rows = prompt rows: the SJF size key (prefill work dominates
    // queueing delay; ignored under the default FCFS policy).
    result = scheduler_.enqueue(id, requests_.back().max_tokens, priority,
                                requests_.back().prompt_rows);
  } catch (...) {
    requests_.pop_back();
    throw;
  }
  if (result == EnqueueResult::kRejectedTooLarge) {
    requests_.pop_back();
    throw std::invalid_argument(
        "DecodeEngine::submit: context ceiling exceeds the KV pool — the "
        "request could never run, even alone");
  }
  return id;
}

std::size_t DecodeEngine::next_rows(const Request& req, RequestId id) const {
  if (scheduler_.state(id) == RequestState::kPrefilling) {
    return std::min(opt_.prefill_chunk_rows, req.prompt_rows - req.prefilled);
  }
  // Decode: the committed row plus this tick's drafted block (0 outside a
  // speculative tick; the memory phase may shed drafts under pressure).
  return 1 + req.draft_rows;
}

DecodeEngine::StepStats DecodeEngine::step(fault::FaultInjector* inj) {
  const auto& cfg = model_->config();
  StepStats stats;
  const std::size_t evictions_at_start = pool_.evictions();

  // Scrub before anything reads the pool: a tile dropped here preempts its
  // owners in the same breath, so this tick's compute can never consume a
  // context the scrubber just declared untrustworthy.
  if (opt_.recovery.scrub_tiles_per_tick > 0) run_scrubber(stats);

  // (a) retire requests that reached their budget or the context cap.  Done
  // at tick start so the final token's hidden state was readable for one
  // tick, matching the pre-scheduler engine's behavior at max_context.
  for (std::size_t i = 0; i < live_.size();) {
    const RequestId id = live_[i];
    if (scheduler_.state(id) == RequestState::kDecoding &&
        requests_[id].tokens >= requests_[id].max_tokens) {
      retire(id);  // erases live_[i]; the next candidate slides into i
      ++stats.retired;
    } else {
      ++i;
    }
  }

  // (b) admit queued requests, high class first; the allocatable-tile hint
  // throttles admissions the pool could not feed.
  for (const RequestId id : scheduler_.admit(pool_.allocatable())) {
    Request& req = requests_[id];
    req.cache = std::make_unique<PagedKvCache>(pool_, req.kv_fmt);
    req.prefilled = 0;
    req.tokens = 0;
    live_.push_back(id);
    ++stats.admitted;
  }
  // Priority admission can admit ids out of order; the tick's row-stack is
  // in request-id order (the order the bit-identity tests pin).
  std::sort(live_.begin(), live_.end());

  // Draft phase: propose candidate rows for every decoding request before
  // the memory phase sizes its block.  Drafting is clamped to the
  // remaining budget so a retired stream is exactly the serial stream —
  // speculation must never overshoot max_tokens.
  if (proposer_ != nullptr) {
    for (const RequestId id : live_) {
      Request& req = requests_[id];
      req.draft_rows = 0;
      if (scheduler_.state(id) != RequestState::kDecoding) continue;
      const std::size_t room = req.max_tokens - req.tokens;  // >= 1 here
      if (room <= 1) continue;  // last budgeted token: nothing to draft
      const std::size_t want = std::min(opt_.spec_tokens, room - 1);
      req.draft.resize(want * cfg.hidden);
      req.draft_rows = std::min(
          want, proposer_->propose(id, want, cfg.hidden, req.draft.data()));
    }
  }

  // (c) memory phase: on-demand paged allocation, best-ranked request
  // first.  The only allocation site — the compute below cannot fail.
  std::vector<RequestId> granted;
  {
    std::vector<RequestId> order(live_);
    std::sort(order.begin(), order.end(), [&](RequestId a, RequestId b) {
      return better_rank(requests_[a].priority, a, requests_[b].priority, b);
    });
    for (const RequestId id : order) {
      if (scheduler_.state(id) == RequestState::kQueued) continue;  // victim
      Request& req = requests_[id];
      // Prefix attach before computing anything: whenever the rows this
      // request would prefill next are a tile already cached in the pool —
      // published at admission time, or by another request mid-run —
      // attach it instead of recomputing.  Checked at every tile boundary,
      // so a request admitted alongside the prefix's first computer still
      // picks up every tile sealed after its own admission.
      if (opt_.share_prefix &&
          scheduler_.state(id) == RequestState::kPrefilling) {
        while (req.prefilled % TilePool::kTileRows == 0 &&
               req.prefilled / TilePool::kTileRows < req.prompt_keys.size()) {
          const std::size_t t = req.prefilled / TilePool::kTileRows;
          const TilePool::TileId tid =
              pool_.lookup_shared(req.prompt_keys[t]);
          if (tid == TilePool::kNoTile) break;  // chain miss: compute on
          req.cache->attach_shared(tid);
          req.prefilled += TilePool::kTileRows;
          req.tokens += TilePool::kTileRows;
          ++stats.shared_tiles;
        }
      }
      std::size_t rows = next_rows(req, id);
      bool ok;
      while (!(ok = req.cache->ensure_capacity(req.tokens + rows))) {
        // Shed this request's own speculation before preempting anyone:
        // drafts are an optimistic extra, never worth evicting a peer for.
        if (req.draft_rows > 0) {
          req.draft_rows = 0;
          rows = next_rows(req, id);
          continue;
        }
        // Pool exhausted: preempt the worst-ranked admitted request that
        // actually holds tiles and ranks worse than the current one —
        // preempting a tile-less (freshly admitted) victim would free
        // nothing and churn, and preempting a better-ranked request would
        // invert priorities.  With no such victim the current request
        // backs off (self-preempts); the better-ranked requests it yields
        // to always fit, because a request's tile ceiling is
        // admission-checked against the pool.
        RequestId victim = id;
        for (const RequestId v : live_) {
          const RequestState s = scheduler_.state(v);
          if (s != RequestState::kPrefilling && s != RequestState::kDecoding) {
            continue;
          }
          if (requests_[v].cache->block_table().empty()) continue;
          if (better_rank(requests_[id].priority, id, requests_[v].priority,
                          v) &&
              (victim == id ||
               better_rank(requests_[victim].priority, victim,
                           requests_[v].priority, v))) {
            victim = v;  // worst tile-holding candidate worse than current
          }
        }
        preempt_request(victim);
        ++stats.preempted;
        if (victim == id) break;
      }
      if (ok) granted.push_back(id);
    }
    std::sort(granted.begin(), granted.end());
  }

  // (d)+(e) gather this tick's row-stack: one prefill chunk per prefilling
  // request, one 1 + drafts query block per decoding request, in
  // request-id order.
  std::vector<TickEntry> entries;
  std::size_t total_rows = 0;
  for (const RequestId id : granted) {
    Request& req = requests_[id];
    if (scheduler_.state(id) == RequestState::kPrefilling) {
      const std::size_t rows = next_rows(req, id);
      entries.push_back(TickEntry{id, total_rows, rows, true, req.prefilled});
      total_rows += rows;
    } else {
      const std::size_t rows = 1 + req.draft_rows;
      entries.push_back(TickEntry{id, total_rows, rows, false, 0});
      total_rows += rows;
    }
  }
  // An idle tick is free: no allocation, no OpenMP region.
  if (entries.empty()) {
    stats.evicted = pool_.evictions() - evictions_at_start;
    lifetime_ += stats;
    return stats;
  }

  MatrixF X(total_rows, cfg.hidden);
  for (const TickEntry& e : entries) {
    const Request& req = requests_[e.id];
    if (e.prefill) {
      for (std::size_t r = 0; r < e.rows; ++r) {
        for (std::size_t c = 0; c < cfg.hidden; ++c) {
          X(e.row0 + r, c) = req.prompt(e.base + r, c);
        }
      }
    } else {
      for (std::size_t c = 0; c < cfg.hidden; ++c) {
        X(e.row0, c) = req.next_in[c];
      }
      for (std::size_t r = 0; r + 1 < e.rows; ++r) {
        for (std::size_t c = 0; c < cfg.hidden; ++c) {
          X(e.row0 + 1 + r, c) = req.draft[r * cfg.hidden + c];
        }
      }
    }
  }

  // Snapshot per-shard detection totals so the quarantine rung can charge
  // this tick's evidence (all retry attempts included) to owning shards.
  const bool quarantine_on =
      opt_.recovery.shard_quarantine_threshold > 0 && opt_.shards > 1;
  std::vector<std::size_t> shard_det0;
  if (quarantine_on) {
    shard_det0.resize(opt_.shards);
    for (std::size_t s = 0; s < opt_.shards; ++s) {
      shard_det0[s] = shard_attention_[s].total_detected();
    }
  }

  advance(entries, X, inj, stats);

  if (quarantine_on) {
    std::vector<std::size_t> faults(opt_.shards);
    for (std::size_t s = 0; s < opt_.shards; ++s) {
      faults[s] = shard_attention_[s].total_detected() - shard_det0[s];
    }
    update_shard_health(faults, stats);
  }

  // State transitions, speculative commits and prefix publication after
  // the compute.
  const bool retry_enabled = opt_.recovery.max_tick_retries > 0;
  for (const TickEntry& e : entries) {
    Request& req = requests_[e.id];
    // Escalated failures: advance already rolled their appends back;
    // they retire below instead of committing.
    if (e.failed) continue;
    if (e.prefill) {
      // Under retry every append deferred its seals (the whole tick must
      // stay rollback-able); commit-seal the tiles this chunk fully
      // covered now — bit-identical to the direct sealing path.
      if (retry_enabled) req.cache->truncate(req.tokens + e.rows);
      req.tokens += e.rows;
      req.prefilled += e.rows;
      if (req.prefilled == req.prompt_rows) {
        scheduler_.on_prefill_done(e.id);
        // Seed the drafter with the freshly committed history: the full
        // prompt plus the first generated input row (next_in — known but
        // not yet fed), so proposals can match prompt suffixes from the
        // very first decode tick.
        if (proposer_ != nullptr) {
          for (std::size_t r = 0; r < req.prompt_rows; ++r) {
            proposer_->observe(e.id, req.prompt.row(r));
          }
          proposer_->observe(e.id, req.next_in);
        }
        // The prompt stays resident while preemption is reachable: a
        // preempted request recomputes from it on readmission.  An
        // unbounded pool never exhausts, so there it is freed at
        // prefill-done exactly like the pre-paging engine — unless the
        // scrubber is on, which can preempt (tile drop) even when the
        // pool never runs out of capacity.
        if (opt_.scheduler.max_kv_tiles == 0 &&
            opt_.recovery.scrub_tiles_per_tick == 0) {
          req.prompt = MatrixF();
        }
      }
    } else {
      const std::size_t committed = 1 + e.accepted;
      if (e.rows > 1 || retry_enabled) {
        // Accept/reject commit: keep the fed row + the verified draft
        // prefix, roll the rejected rows out of every layer's cache
        // (open-tile truncation; tiles the commit fully covers seal now —
        // nothing sealed was ever speculative).  Under retry even a
        // 1-row block deferred its seal, so the commit runs regardless.
        req.cache->truncate(req.tokens + committed);
      }
      req.tokens += committed;
      if (proposer_ != nullptr) {
        // The drafter's history ends at the last known committed row: the
        // accepted drafts, then the model's fresh output (the next tick's
        // fed row).
        for (std::size_t r = 0; r < e.accepted; ++r) {
          proposer_->observe(
              e.id, std::span<const float>(
                        req.draft.data() + r * cfg.hidden, cfg.hidden));
        }
        proposer_->observe(e.id, req.next_in);
      }
      req.draft_rows = 0;
    }
    // Publish freshly sealed fully-prompt tiles so later requests (and this
    // one, after a preemption) can attach them.  Tiles holding any
    // generated row are never published — generated rows are per-request.
    // Neither is anything sealed while a fault injector was threaded
    // through the tick: ABFT correction is approximate, not bit-exact, so
    // a possibly-perturbed tile must stay private — one fault's blast
    // radius must never widen to every future sharer of the prompt.
    for (const std::size_t idx : req.cache->take_newly_sealed()) {
      if (inj == nullptr && idx < req.prompt_keys.size()) {
        pool_.publish(req.cache->block_table()[idx], req.prompt_keys[idx]);
      }
    }
  }

  // kFailRequest escalations retire now: tiles released, scheduler slot
  // freed; last hidden state, lifetime report and health stay readable.
  for (const TickEntry& e : entries) {
    if (e.failed) retire(e.id);
  }

  stats.evicted = pool_.evictions() - evictions_at_start;
  lifetime_ += stats;
  return stats;
}

DecodeEngine::StepStats DecodeEngine::drain(std::size_t steps,
                                            fault::FaultInjector* inj) {
  StepStats total;
  for (std::size_t i = 0; i < steps; ++i) total.merge(step(inj));
  return total;
}

DecodeEngine::StepStats DecodeEngine::run_until_idle(fault::FaultInjector* inj,
                                                     std::size_t max_ticks) {
  StepStats total;
  for (std::size_t i = 0; i < max_ticks; ++i) {
    if (scheduler_.queued() == 0 && active() == 0) break;
    total.merge(step(inj));
  }
  return total;
}

void DecodeEngine::advance(std::vector<TickEntry>& entries, MatrixF& X,
                           fault::FaultInjector* inj, StepStats& stats) {
  const auto& cfg = model_->config();
  const std::size_t hidden = cfg.hidden;
  const std::size_t heads = cfg.heads;
  const RecoveryPolicy& rp = opt_.recovery;
  const bool retry_enabled = rp.max_tick_retries > 0;

  // The tick's compute lives in serve/shard.hpp: run_tick_solo is the
  // extracted monolithic body (full linears, one efta_decode_batch per
  // layer) and ShardedEngine::run_tick the barrier-stepped shard-parallel
  // equivalent, bit-identical in the default column-parallel mode.  An
  // injected tick always runs solo — a FaultInjector is call-order-
  // dependent state, and the parallel slicing would relocate its faults —
  // so fault experiments stay bit-comparable across shard counts.
  std::vector<ShardTickEntry> sentries;
  sentries.reserve(entries.size());
  for (const TickEntry& e : entries) {
    // Speculative rows may be rejected — and under tick retry EVERY row
    // may be rolled back — so tiles such appends fill must not seal until
    // the commit (truncate) decides what stays.
    sentries.push_back(ShardTickEntry{
        requests_[e.id].cache.get(), e.row0, e.rows,
        /*defer_seal=*/retry_enabled || (!e.prefill && e.rows > 1)});
  }

  // Retry rung: re-run the tick's compute while the active trigger trips,
  // bounded by max_tick_retries, before anything commits.  Rollback is
  // exact — appends truncate to the pre-tick context (every append this
  // tick deferred its seal, so nothing immutable is touched) and the
  // residual stream restores from a copy — so a re-run consumes inputs
  // bit-identical to the first attempt, and under the single-transient-
  // fault assumption its output is exactly the clean-run bits.
  MatrixF X0;
  if (retry_enabled) X0 = X;
  std::vector<FtReport> per_item(entries.size() * heads);
  MatrixF y;
  TickResult tick;
  bool attempt_bad = false;
  std::size_t attempt = 0;
  for (;; ++attempt) {
    if (attempt > 0) {
      for (const TickEntry& e : entries) {
        Request& req = requests_[e.id];
        req.cache->truncate(req.tokens);
        if (!req.cache->ensure_capacity(req.tokens + e.rows)) {
          // truncate released this tick's empty tail tiles to the dead
          // list, so re-acquiring the same count cannot fail.
          throw std::logic_error(
              "DecodeEngine: retry rollback lost KV capacity");
        }
      }
      X = X0;
      std::fill(per_item.begin(), per_item.end(), FtReport{});
      ++stats.retried;
    }
    ShardedEngine* exec = degraded_ ? degraded_.get() : sharded_.get();
    tick = (exec != nullptr && inj == nullptr)
               ? exec->run_tick(sentries, X, y, per_item, opt_.efta,
                                opt_.protect_linear)
               : run_tick_solo(*model_, sentries, X, y, per_item, opt_.efta,
                               opt_.protect_linear, inj);
    stats.linear += tick.linear;
    stats.attention += tick.attention;
    stats.activations_clipped += tick.activations_clipped;
    // Roll the per-(entry, head) reports — accumulated across layers by the
    // tick body — into per-request lifetime reports and into the per-shard
    // attribution (head_owner_ maps both the sharded and the solo path, so
    // a poisoned head is pinned to its owning shard either way).  Every
    // attempt rolls up: a faulty attempt's evidence must survive its
    // successful retry — lifetime reports and the quarantine windows are
    // how the fault remains visible at all.
    {
      std::size_t i = 0;
      for (const TickEntry& e : entries) {
        Request& req = requests_[e.id];
        for (std::size_t hd = 0; hd < heads; ++hd, ++i) {
          req.attention += per_item[i];
          shard_attention_[head_owner_[hd]] += per_item[i];
        }
      }
    }
    // The trigger reads THIS attempt's result, not the merged totals — a
    // recovered tick must stop retriggering on its own history.
    attempt_bad =
        retry_enabled &&
        (rp.retry_on == RetryTrigger::kAnyDetection
             ? tick.attention.total_detected() + tick.linear.flagged > 0
             : tick.attention.uncorrected() + tick.linear.uncorrected() > 0);
    if (!attempt_bad || attempt >= rp.max_tick_retries) break;
  }
  if (retry_enabled && attempt > 0 && !attempt_bad) ++stats.recovered;

  // Escalation: retries exhausted with the trigger still tripping.  Linear
  // detections run over the whole stacked X and are not attributable to a
  // single entry, so they mark every entry affected; attention detections
  // pin the exact (entry, head) slots of the final attempt.
  if (attempt_bad) {
    const bool linear_bad = rp.retry_on == RetryTrigger::kAnyDetection
                                ? tick.linear.flagged > 0
                                : tick.linear.uncorrected() > 0;
    for (std::size_t ei = 0; ei < entries.size(); ++ei) {
      TickEntry& e = entries[ei];
      bool affected = linear_bad;
      for (std::size_t hd = 0; hd < heads && !affected; ++hd) {
        const FtReport& r = per_item[ei * heads + hd];
        affected = rp.retry_on == RetryTrigger::kAnyDetection
                       ? r.total_detected() > 0
                       : r.uncorrected() > 0;
      }
      if (!affected) continue;
      Request& req = requests_[e.id];
      if (rp.on_exhaustion == EscalationPolicy::kFailRequest) {
        // Roll this entry's appends back; step() retires it instead of
        // committing — a possibly-wrong token is never served.
        e.failed = true;
        req.health = RequestHealth::kFailed;
        req.cache->truncate(req.tokens);
        ++stats.failed;
      } else {
        // Serve the (ABFT-corrected, possibly perturbed) result, visibly:
        // the request's health is flagged for its lifetime.
        req.health = RequestHealth::kFlagged;
        ++stats.degraded;
      }
    }
  }

  // Committed-work accounting, now that escalation decided what commits.
  for (const TickEntry& e : entries) {
    if (e.failed || !e.prefill) continue;
    ++stats.prefill_chunks;
    stats.prefill_rows += e.rows;
    stats.active += e.rows;
    if (opt_.record_inputs) {
      // The tick updated the residual stream in place, so record from the
      // prompt — the exact bits the stacked rows were loaded from.
      Request& req = requests_[e.id];
      for (std::size_t r = 0; r < e.rows; ++r) {
        req.inputs.emplace_back(req.prompt.row(e.base + r).begin(),
                                req.prompt.row(e.base + r).end());
      }
    }
    // Decode entries account (and record) after draft verification below:
    // only committed rows count, and only committed rows enter the replay
    // history.
  }
  for (TickEntry& e : entries) {
    if (e.failed) continue;
    Request& req = requests_[e.id];
    std::size_t last = e.row0 + e.rows - 1;
    if (!e.prefill) {
      // Greedy draft verification: drafted row i commits iff it equals,
      // bit for bit, the model's own output at position i-1 — exactly the
      // row the q_len = 1 serial path would feed next — and every earlier
      // draft matched.  The block kernel is row-for-row bit-identical to
      // serial decode, so an accepted row's output *is* the serial output;
      // the first mismatch's model output becomes the next fed row (the
      // standard speculative-decoding bonus token), and everything after
      // it is rolled back by the caller.
      std::size_t accepted = 0;
      while (accepted + 1 < e.rows &&
             std::memcmp(req.draft.data() + accepted * hidden,
                         &y(e.row0 + accepted, 0),
                         hidden * sizeof(float)) == 0) {
        ++accepted;
      }
      e.accepted = accepted;
      const std::size_t committed = 1 + accepted;
      stats.decoded += committed;
      stats.active += committed;
      stats.spec_proposed += e.rows - 1;
      stats.spec_accepted += accepted;
      stats.spec_rejected += e.rows - 1 - accepted;
      last = e.row0 + accepted;  // last *committed* row of the block
      if (opt_.record_inputs) {
        // Committed rows only: the fed row (still intact in next_in) plus
        // the accepted drafts.  Rejected rows never enter the replay
        // history — they never happened.
        req.inputs.emplace_back(req.next_in.begin(), req.next_in.end());
        for (std::size_t r = 0; r < accepted; ++r) {
          req.inputs.emplace_back(req.draft.begin() + r * hidden,
                                  req.draft.begin() + (r + 1) * hidden);
        }
      }
    }
    req.last_hidden.assign(y.row(last).begin(), y.row(last).end());
    // For a prefill chunk that completes the prompt this seeds generation;
    // mid-prompt it is overwritten by the next chunk's last row.  For a
    // decode block it is the output of the last committed row — the serial
    // next input whether drafts were accepted or not.
    req.next_in = req.last_hidden;
  }
}

void DecodeEngine::retire(RequestId id) {
  Request& req = requests_[id];
  scheduler_.release(id);
  if (proposer_ != nullptr) proposer_->reset(id);
  req.draft = std::vector<float>();
  req.draft_rows = 0;
  const auto it = std::find(live_.begin(), live_.end(), id);
  if (it != live_.end()) live_.erase(it);
  if (req.cache) {
    // Published prompt tiles stay cached in the pool after release: a
    // retired request's prefix remains attachable until evicted.
    req.cache->release_all();
    req.cache.reset();
  }
  req.inputs.clear();
  req.inputs.shrink_to_fit();
  req.prompt = MatrixF();
}

void DecodeEngine::preempt_request(RequestId id) {
  Request& req = requests_[id];
  scheduler_.preempt(id);
  req.cache->release_all();
  req.cache.reset();
  // Progress resets; generation is deterministic in the prompt, so the
  // recompute replays the identical token trajectory on readmission.  The
  // drafter's history resets with it (and is re-observed during replay) —
  // even mid-speculation, a preempted request recomputes bit-identically
  // because only committed rows were ever observed or cached.
  if (proposer_ != nullptr) proposer_->reset(id);
  req.draft_rows = 0;
  req.prefilled = 0;
  req.tokens = 0;
  req.next_in.clear();
  req.inputs.clear();
  req.inputs.shrink_to_fit();
  ++req.preemptions;
  const auto it = std::find(live_.begin(), live_.end(), id);
  if (it != live_.end()) live_.erase(it);
}

void DecodeEngine::run_scrubber(StepStats& stats) {
  const ScrubReport rep = pool_.scrub(opt_.recovery.scrub_tiles_per_tick);
  stats.scrubbed += rep.scanned;
  stats.repaired += rep.repaired;
  stats.scrub_dropped += rep.dropped.size();
  if (rep.dropped.empty()) return;
  // Preempt every live request whose block table maps a dropped tile: its
  // context is no longer trustworthy, and generation is a deterministic
  // function of the prompt, so recompute-on-readmission restores the exact
  // clean token trajectory — degraded throughput, never a wrong answer.
  std::vector<RequestId> victims;
  for (const RequestId id : live_) {
    const RequestState s = scheduler_.state(id);
    if (s != RequestState::kPrefilling && s != RequestState::kDecoding) {
      continue;
    }
    const Request& req = requests_[id];
    if (!req.cache) continue;
    const auto& table = req.cache->block_table();
    for (const std::size_t tid : rep.dropped) {
      if (std::find(table.begin(), table.end(), tid) != table.end()) {
        victims.push_back(id);
        break;
      }
    }
  }
  for (const RequestId id : victims) {
    preempt_request(id);
    ++stats.preempted;
  }
}

void DecodeEngine::update_shard_health(
    std::span<const std::size_t> tick_faults, StepStats& stats) {
  bool changed = false;
  // Probation countdown first: a shard readmits with a clean window, and a
  // repeat offender re-quarantines only as fresh evidence rebuilds.
  for (std::size_t s = 0; s < opt_.shards; ++s) {
    ShardHealth& h = shard_health_[s];
    if (!h.quarantined) continue;
    if (h.probation > 0) --h.probation;
    if (h.probation == 0) {
      h.quarantined = false;
      changed = true;
    }
  }
  for (std::size_t s = 0; s < opt_.shards; ++s) {
    ShardHealth& h = shard_health_[s];
    if (h.quarantined) continue;
    h.window.push_back(tick_faults[s]);
    h.window_sum += tick_faults[s];
    while (h.window.size() > opt_.recovery.shard_window_ticks) {
      h.window_sum -= h.window.front();
      h.window.pop_front();
    }
    if (h.window_sum <= opt_.recovery.shard_quarantine_threshold) continue;
    // Never quarantine the last healthy shard: degraded service beats none.
    std::size_t healthy_now = 0;
    for (const ShardHealth& o : shard_health_) {
      healthy_now += o.quarantined ? 0 : 1;
    }
    if (healthy_now <= 1) continue;
    h.quarantined = true;
    h.probation = opt_.recovery.shard_probation_ticks;
    h.window.clear();
    h.window_sum = 0;
    ++stats.quarantined;
    changed = true;
  }
  if (changed) rebuild_shard_executor();
}

void DecodeEngine::rebuild_shard_executor() {
  healthy_.clear();
  for (std::size_t s = 0; s < opt_.shards; ++s) {
    if (!shard_health_[s].quarantined) healthy_.push_back(s);
  }
  // Remap head ownership over the healthy workers: internal worker w of the
  // degraded executor owns ShardSpec::for_shard(w, healthy, heads), and its
  // evidence is attributed to physical shard healthy_[w].  With every shard
  // healthy this restores the constructor's map exactly.
  const std::size_t heads = model_->config().heads;
  for (std::size_t w = 0; w < healthy_.size(); ++w) {
    const auto spec = core::ShardSpec::for_shard(w, healthy_.size(), heads);
    for (std::size_t hd = spec.begin_head; hd < spec.end_head; ++hd) {
      head_owner_[hd] = healthy_[w];
    }
  }
  degraded_.reset();  // join the old degraded workers before respawning
  if (healthy_.size() < opt_.shards) {
    degraded_ = std::make_unique<ShardedEngine>(*model_, healthy_.size(),
                                                opt_.combine);
  }
}

bool DecodeEngine::shard_quarantined(std::size_t s) const {
  if (s >= shard_health_.size()) {
    throw std::out_of_range("DecodeEngine: unknown shard index");
  }
  return shard_health_[s].quarantined;
}

std::size_t DecodeEngine::healthy_shards() const noexcept {
  return healthy_.size();
}

namespace testing {
TilePool& engine_pool(DecodeEngine& e) noexcept { return e.pool_; }
}  // namespace testing

void DecodeEngine::finish(RequestId id) {
  if (id >= requests_.size()) {
    throw std::out_of_range("DecodeEngine: unknown request id");
  }
  retire(id);
}

std::size_t DecodeEngine::active() const noexcept {
  return scheduler_.admitted();
}

RequestState DecodeEngine::state(RequestId id) const {
  if (id >= requests_.size()) {
    throw std::out_of_range("DecodeEngine: unknown request id");
  }
  return scheduler_.state(id);
}

bool DecodeEngine::is_active(RequestId id) const {
  if (id >= requests_.size()) return false;
  const RequestState s = scheduler_.state(id);
  return s == RequestState::kPrefilling || s == RequestState::kDecoding;
}

const DecodeEngine::Request& DecodeEngine::checked(RequestId id) const {
  if (id >= requests_.size()) {
    throw std::out_of_range("DecodeEngine: unknown request id");
  }
  return requests_[id];
}

std::size_t DecodeEngine::context_length(RequestId id) const {
  return checked(id).tokens;
}

std::span<const float> DecodeEngine::hidden(RequestId id) const {
  return checked(id).last_hidden;
}

const FtReport& DecodeEngine::report(RequestId id) const {
  return checked(id).attention;
}

const FtReport* DecodeEngine::find_report(RequestId id) const noexcept {
  return id < requests_.size() ? &requests_[id].attention : nullptr;
}

RequestHealth DecodeEngine::health(RequestId id) const {
  return checked(id).health;
}

MatrixF DecodeEngine::fed_inputs(RequestId id) const {
  const Request& req = checked(id);
  const std::size_t hidden = model_->config().hidden;
  MatrixF m(req.inputs.size(), hidden);
  for (std::size_t r = 0; r < req.inputs.size(); ++r) {
    for (std::size_t c = 0; c < hidden; ++c) m(r, c) = req.inputs[r][c];
  }
  return m;
}

std::vector<TilePool::TileId> DecodeEngine::kv_block_table(
    RequestId id) const {
  const Request& req = checked(id);
  return req.cache ? req.cache->block_table()
                   : std::vector<TilePool::TileId>{};
}

std::size_t DecodeEngine::shared_tile_count(RequestId id) const {
  const Request& req = checked(id);
  return req.cache ? req.cache->shared_tiles() : 0;
}

std::size_t DecodeEngine::preemption_count(RequestId id) const {
  return checked(id).preemptions;
}

}  // namespace ftt::serve
