#include "serve/tile_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "serve/kv_cache.hpp"

namespace ftt::serve {

using numeric::Half;

ChainKey chain_extend(const ChainKey& parent, const void* data,
                      std::size_t bytes) noexcept {
  // Two independent FNV-1a streams (distinct offset bases; the second also
  // finalizes with a strong 64-bit mix) give a 128-bit effective key; the
  // registry compares full keys, so a collision needs both to collide.
  constexpr std::uint64_t kPrime = 0x100000001b3ull;
  std::uint64_t a = parent.a ^ 0xcbf29ce484222325ull;
  std::uint64_t b = parent.b ^ 0x84222325cbf29ce4ull;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    a = (a ^ p[i]) * kPrime;
    b = (b ^ p[bytes - 1 - i]) * kPrime;
  }
  // splitmix64 finalizer decorrelates the two lanes.
  b ^= b >> 30;
  b *= 0xbf58476d1ce4e5b9ull;
  b ^= b >> 27;
  return ChainKey{a, b};
}

TilePool::TilePool(TilePoolOptions opt)
    : layers_(opt.layers),
      heads_(opt.heads),
      dim_(opt.dim),
      enc_stride_(opt.enc_stride),
      images_(opt.images),
      capacity_tiles_(opt.capacity_tiles) {
  if (layers_ == 0 || heads_ == 0 || dim_ == 0) {
    throw std::invalid_argument(
        "TilePool: layers, heads and dim must be positive");
  }
  // Same memoization gate as KvCache: a stride that cannot tile the
  // checksum footprint disables the memo instead of rejecting the pool.
  if (enc_stride_ <= 0 ||
      kTileRows % static_cast<std::size_t>(enc_stride_) != 0 ||
      dim_ % static_cast<std::size_t>(enc_stride_) != 0) {
    enc_stride_ = 0;
    // Both image layouts embed the sealed checksum blocks.
    images_ = core::ImagePolicy::kNone;
  }
  const auto su = static_cast<std::size_t>(enc_stride_);
  enc_halves_ = enc_stride_ == 0 ? 0 : 2 * su * dim_ + 2 * kTileRows * su;
  per_lh_halves_ = 2 * kTileRows * dim_ + enc_halves_;
  slab_halves_ = layers_ * heads_ * per_lh_halves_;
  // The int8 tile format's checksum shapes are the stride's, so it shares
  // the memoization gate: no encoding memo, no i8 tiles.
  i8_block_bytes_ =
      enc_stride_ == 0 ? 0 : detail::i8_tile_layout(dim_, enc_stride_).bytes;
}

std::size_t TilePool::offset(std::size_t layer,
                             std::size_t head) const noexcept {
  return (layer * heads_ + head) * per_lh_halves_;
}

// The fp16 accessors null out once a kI8 tile seals (its staging slab is
// freed); callers branch on format() / nullptr, exactly like the encoding
// accessors with the memo disabled.
Half* TilePool::k_tile(TileId id, std::size_t layer,
                       std::size_t head) noexcept {
  Half* slab = tiles_[id].slab.get();
  return slab == nullptr ? nullptr : slab + offset(layer, head);
}
Half* TilePool::v_tile(TileId id, std::size_t layer,
                       std::size_t head) noexcept {
  Half* k = k_tile(id, layer, head);
  return k == nullptr ? nullptr : k + kTileRows * dim_;
}
Half* TilePool::enc_block(TileId id, std::size_t layer,
                          std::size_t head) noexcept {
  if (enc_stride_ == 0) return nullptr;
  Half* v = v_tile(id, layer, head);
  return v == nullptr ? nullptr : v + kTileRows * dim_;
}
const Half* TilePool::k_tile(TileId id, std::size_t layer,
                             std::size_t head) const noexcept {
  const Half* slab = tiles_[id].slab.get();
  return slab == nullptr ? nullptr : slab + offset(layer, head);
}
const Half* TilePool::v_tile(TileId id, std::size_t layer,
                             std::size_t head) const noexcept {
  const Half* k = k_tile(id, layer, head);
  return k == nullptr ? nullptr : k + kTileRows * dim_;
}
const Half* TilePool::enc_block(TileId id, std::size_t layer,
                                std::size_t head) const noexcept {
  if (enc_stride_ == 0) return nullptr;
  const Half* v = v_tile(id, layer, head);
  return v == nullptr ? nullptr : v + kTileRows * dim_;
}
float* TilePool::f32_image(TileId id, std::size_t layer,
                           std::size_t head) noexcept {
  // Null for kI8 tiles (no fslab): the image is the fp16 fast path.
  float* fslab = tiles_[id].fslab.get();
  if (images_ != core::ImagePolicy::kF32 || fslab == nullptr) return nullptr;
  // The image of one (layer, head) holds exactly per_lh_halves_ floats
  // (every half widened once), so the slab offsets coincide.
  return fslab + offset(layer, head);
}
const float* TilePool::f32_image(TileId id, std::size_t layer,
                                 std::size_t head) const noexcept {
  const float* fslab = tiles_[id].fslab.get();
  if (images_ != core::ImagePolicy::kF32 || fslab == nullptr) return nullptr;
  return fslab + offset(layer, head);
}
Half* TilePool::f16t_image(TileId id, std::size_t layer,
                           std::size_t head) noexcept {
  Half* hslab = tiles_[id].hslab.get();
  if (images_ != core::ImagePolicy::kF16T || hslab == nullptr) return nullptr;
  return hslab +
         (layer * heads_ + head) * detail::f16t_image_halves(dim_, enc_stride_);
}
const Half* TilePool::f16t_image(TileId id, std::size_t layer,
                                 std::size_t head) const noexcept {
  const Half* hslab = tiles_[id].hslab.get();
  if (images_ != core::ImagePolicy::kF16T || hslab == nullptr) return nullptr;
  return hslab +
         (layer * heads_ + head) * detail::f16t_image_halves(dim_, enc_stride_);
}
core::TileFmt TilePool::format(TileId id) const { return checked(id).format; }
std::uint8_t* TilePool::i8_block(TileId id, std::size_t layer,
                                 std::size_t head) noexcept {
  std::uint8_t* q = tiles_[id].qslab.get();
  return q == nullptr ? nullptr
                      : q + (layer * heads_ + head) * i8_block_bytes_;
}
const std::uint8_t* TilePool::i8_block(TileId id, std::size_t layer,
                                       std::size_t head) const noexcept {
  const std::uint8_t* q = tiles_[id].qslab.get();
  return q == nullptr ? nullptr
                      : q + (layer * heads_ + head) * i8_block_bytes_;
}

TilePool::Tile& TilePool::checked(TileId id) {
  if (id >= tiles_.size()) {
    throw std::out_of_range("TilePool: unknown tile id");
  }
  return tiles_[id];
}
const TilePool::Tile& TilePool::checked(TileId id) const {
  if (id >= tiles_.size()) {
    throw std::out_of_range("TilePool: unknown tile id");
  }
  return tiles_[id];
}

void TilePool::recycle(TileId id, core::TileFmt fmt) {
  Tile& t = tiles_[id];
  // Zero the whole fp16 slab: fresh K/V rows are the decode kernel's
  // ragged-tail padding, and stale sealed encodings must never leak into a
  // new tile.  A sealed kI8 tile freed its staging slab; reallocate
  // (value-init: zeroed).
  if (t.slab == nullptr) {
    t.slab = std::make_unique<Half[]>(slab_halves_);
  } else {
    std::fill_n(t.slab.get(), slab_halves_, Half{});
  }
  // Format conversion: each format carries exactly its own slabs.  The
  // image and i8 slabs are never zeroed — both are fully written at seal
  // time and never read before.
  if (fmt == core::TileFmt::kI8) {
    t.fslab.reset();
    t.hslab.reset();
    if (t.qslab == nullptr) {
      t.qslab = std::unique_ptr<std::uint8_t[]>(
          new std::uint8_t[layers_ * heads_ * i8_block_bytes_]);
    }
  } else {
    t.qslab.reset();
    if (images_ == core::ImagePolicy::kF32 && t.fslab == nullptr) {
      t.fslab = std::unique_ptr<float[]>(new float[slab_halves_]);
    }
    if (images_ == core::ImagePolicy::kF16T && t.hslab == nullptr) {
      t.hslab = std::unique_ptr<Half[]>(
          new Half[layers_ * heads_ *
                   detail::f16t_image_halves(dim_, enc_stride_)]);
    }
  }
  t.format = fmt;
  t.sealed = false;
  if (t.is_published) {
    registry_.erase(t.key);
    t.is_published = false;
  }
  t.key = ChainKey{};
  t.stamp = 0;
}

namespace {

enum class ScrubOutcome { kClean, kRepaired, kUnrepairable };

// Re-verify one (layer, head) block of a sealed tile and repair in place
// where the single-fault classification allows it (see TilePool::scrub docs).
// `enc_fresh` / `img_fresh` / `himg_fresh` are caller-provided scratch.
ScrubOutcome scrub_block(TilePool& pool, TilePool::TileId id,
                         std::size_t layer, std::size_t head,
                         std::vector<Half>& enc_fresh,
                         std::vector<float>& img_fresh,
                         std::vector<Half>& himg_fresh) {
  const std::size_t dim = pool.dim();
  const int s = pool.enc_stride();
  // The int8 arm: TMR scale vote, exact integer verify/correct (equality,
  // zero threshold), Half-encoding rebuild — see detail::scrub_i8_tile.
  if (pool.format(id) == core::TileFmt::kI8) {
    switch (detail::scrub_i8_tile(pool.i8_block(id, layer, head), dim, s)) {
      case detail::I8ScrubResult::kClean:
        return ScrubOutcome::kClean;
      case detail::I8ScrubResult::kRepaired:
        return ScrubOutcome::kRepaired;
      case detail::I8ScrubResult::kUnrepairable:
        return ScrubOutcome::kUnrepairable;
    }
    return ScrubOutcome::kUnrepairable;  // unreachable
  }
  Half* k = pool.k_tile(id, layer, head);
  Half* v = pool.v_tile(id, layer, head);
  Half* enc = pool.enc_block(id, layer, head);
  const std::size_t enc_halves = enc_fresh.size();

  detail::encode_sealed_tile(k, v, dim, s, enc_fresh.data());
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < enc_halves; ++i) {
    if (enc_fresh[i].bits() != enc[i].bits()) ++mismatches;
  }

  float* img = pool.f32_image(id, layer, head);
  Half* himg = pool.f16t_image(id, layer, head);
  if (mismatches == 0) {
    // Payload and encodings agree bit for bit.  Cross-check the optional
    // image; the fp16 slab is authoritative, so a disagreeing image is
    // rebuilt from it (both builds are deterministic: exact widening for
    // kF32, pure bit transposes for kF16T).
    if (img != nullptr) {
      detail::widen_sealed_tile(k, v, enc, dim, s, img_fresh.data());
      if (std::memcmp(img_fresh.data(), img,
                      img_fresh.size() * sizeof(float)) != 0) {
        std::memcpy(img, img_fresh.data(), img_fresh.size() * sizeof(float));
        return ScrubOutcome::kRepaired;
      }
    }
    if (himg != nullptr) {
      detail::build_f16t_image(k, enc, dim, s, himg_fresh.data());
      if (std::memcmp(himg_fresh.data(), himg,
                      himg_fresh.size() * sizeof(Half)) != 0) {
        std::memcpy(himg, himg_fresh.data(),
                    himg_fresh.size() * sizeof(Half));
        return ScrubOutcome::kRepaired;
      }
    }
    return ScrubOutcome::kClean;
  }
  if (mismatches == 1) {
    // A payload flip perturbs several checksum elements (each K/V element
    // feeds at least a plain and a weighted sum); a single disagreement is
    // checksum-class corruption, and the fresh encode is the repair.
    std::memcpy(enc, enc_fresh.data(), enc_halves * sizeof(Half));
    if (img != nullptr) detail::widen_sealed_tile(k, v, enc, dim, s, img);
    if (himg != nullptr) detail::build_f16t_image(k, enc, dim, s, himg);
    return ScrubOutcome::kRepaired;
  }
  // Payload-class corruption: restore from the second copy the image
  // carries.  kF32 images cover K and V (narrowing the exactly-widened
  // image restores the sealed fp16 bits); kF16T images cover K only — the
  // de-transpose restores its Half bits verbatim, but a corrupt V payload
  // re-verifies dirty below and the tile drops (the durability trade for
  // the 2x image saving).  Without an image there is no second copy at all.
  if (img != nullptr) {
    // Image layout: [K^T (dim x 64) | V (64 x dim) | ...checksums].
    const float* img_kt = img;
    const float* img_v = img + TilePool::kTileRows * dim;
    for (std::size_t r = 0; r < TilePool::kTileRows; ++r) {
      for (std::size_t c = 0; c < dim; ++c) {
        k[r * dim + c] = Half(img_kt[c * TilePool::kTileRows + r]);
        v[r * dim + c] = Half(img_v[r * dim + c]);
      }
    }
  } else if (himg != nullptr) {
    // Image layout: [K^T (dim x 64) | Kc1^T | Kc2^T] halves.
    const Half* img_kt = himg;
    for (std::size_t r = 0; r < TilePool::kTileRows; ++r) {
      for (std::size_t c = 0; c < dim; ++c) {
        k[r * dim + c] = img_kt[c * TilePool::kTileRows + r];
      }
    }
  } else {
    return ScrubOutcome::kUnrepairable;
  }
  // Re-verify: the restored payload must reproduce the stored encodings
  // (clean under the single-fault assumption).  A residual mismatch means
  // the corruption was outside what the image covers (V under kF16T) or
  // the image was corrupt too — either way beyond repair.
  detail::encode_sealed_tile(k, v, dim, s, enc_fresh.data());
  for (std::size_t i = 0; i < enc_halves; ++i) {
    if (enc_fresh[i].bits() != enc[i].bits()) {
      return ScrubOutcome::kUnrepairable;
    }
  }
  // Refresh the image from the restored payload so all copies are coherent
  // again (no-op bits when the image was clean, as assumed).
  if (img != nullptr) detail::widen_sealed_tile(k, v, enc, dim, s, img);
  if (himg != nullptr) detail::build_f16t_image(k, enc, dim, s, himg);
  return ScrubOutcome::kRepaired;
}

}  // namespace

ScrubReport TilePool::scrub(std::size_t max_tiles) {
  ScrubReport rep;
  if (enc_stride_ == 0 || max_tiles == 0 || tiles_.empty()) return rep;
  std::vector<Half> enc_fresh(enc_halves_);
  std::vector<float> img_fresh;
  std::vector<Half> himg_fresh;
  if (images_ == core::ImagePolicy::kF32) {
    img_fresh.resize(detail::f32_image_floats(dim_, enc_stride_));
  } else if (images_ == core::ImagePolicy::kF16T) {
    himg_fresh.resize(detail::f16t_image_halves(dim_, enc_stride_));
  }
  const std::size_t n = tiles_.size();
  std::size_t visited = 0;
  while (visited < n && rep.scanned < max_tiles) {
    const TileId id = scrub_cursor_ % n;
    scrub_cursor_ = (scrub_cursor_ + 1) % n;
    ++visited;
    if (!tiles_[id].sealed) continue;
    ++rep.scanned;
    bool unrepairable = false;
    for (std::size_t l = 0; l < layers_ && !unrepairable; ++l) {
      for (std::size_t h = 0; h < heads_ && !unrepairable; ++h) {
        switch (scrub_block(*this, id, l, h, enc_fresh, img_fresh,
                            himg_fresh)) {
          case ScrubOutcome::kClean:
            break;
          case ScrubOutcome::kRepaired:
            ++rep.repaired;
            break;
          case ScrubOutcome::kUnrepairable:
            unrepairable = true;
            break;
        }
      }
    }
    if (unrepairable) {
      // Drop the tile: unseal + unpublish so it can never be attached or
      // verified again.  Current holders keep their references — the engine
      // preempts them onto recompute before any further compute — and a
      // holder's eventual release routes the (now unpublished) tile to the
      // dead list.  An unreferenced published tile sits on the cached list;
      // bump its stamp (stale-entry skip) and dead-list it directly.
      Tile& t = tiles_[id];
      t.sealed = false;
      const bool was_published = t.is_published;
      if (t.is_published) {
        registry_.erase(t.key);
        t.is_published = false;
        t.key = ChainKey{};
      }
      if (t.refs == 0 && was_published) {
        t.stamp = ++clock_;
        dead_.push_back(id);
      }
      // (unpublished + refs == 0 tiles are already dead-listed)
      rep.dropped.push_back(id);
    }
  }
  return rep;
}

namespace testing {
void flip_slab_bit(TilePool& pool, TilePool::TileId id, std::size_t layer,
                   std::size_t head, std::size_t half_index, unsigned bit) {
  const std::size_t per_lh =
      pool.slab_halves() / (pool.layers() * pool.heads());
  if (half_index >= per_lh) {
    throw std::out_of_range("flip_slab_bit: half_index out of block");
  }
  Half* block = pool.k_tile(id, layer, head);  // [K | V | enc] contiguous
  Half& h = block[half_index];
  h = Half::from_bits(
      static_cast<std::uint16_t>(h.bits() ^ (1u << (bit & 15u))));
}

void flip_image_bit(TilePool& pool, TilePool::TileId id, std::size_t layer,
                    std::size_t head, std::size_t float_index, unsigned bit) {
  float* img = pool.f32_image(id, layer, head);
  if (img == nullptr) {
    throw std::logic_error("flip_image_bit: pool holds no fp32 images");
  }
  std::uint32_t b;
  std::memcpy(&b, &img[float_index], sizeof(b));
  b ^= 1u << (bit & 31u);
  std::memcpy(&img[float_index], &b, sizeof(b));
}

void flip_f16t_bit(TilePool& pool, TilePool::TileId id, std::size_t layer,
                   std::size_t head, std::size_t half_index, unsigned bit) {
  Half* img = pool.f16t_image(id, layer, head);
  if (img == nullptr) {
    throw std::logic_error("flip_f16t_bit: pool holds no f16t images");
  }
  Half& h = img[half_index];
  h = Half::from_bits(
      static_cast<std::uint16_t>(h.bits() ^ (1u << (bit & 15u))));
}

void flip_i8_bit(TilePool& pool, TilePool::TileId id, std::size_t layer,
                 std::size_t head, std::size_t byte_index, unsigned bit) {
  if (byte_index >= pool.i8_block_bytes()) {
    throw std::out_of_range("flip_i8_bit: byte_index out of block");
  }
  std::uint8_t* block = pool.i8_block(id, layer, head);
  if (block == nullptr) {
    throw std::logic_error("flip_i8_bit: tile holds no i8 slab");
  }
  block[byte_index] ^= static_cast<std::uint8_t>(1u << (bit & 7u));
}
}  // namespace testing

TilePool::TileId TilePool::acquire(core::TileFmt fmt) {
  if (fmt == core::TileFmt::kI8 && enc_stride_ == 0) {
    throw std::logic_error(
        "TilePool: the int8 tile format requires the encoding memo "
        "(enc_stride)");
  }
  // 1. Dead tiles first: reclaiming one loses nothing.
  while (!dead_.empty()) {
    const TileId id = dead_.front();
    dead_.pop_front();
    Tile& t = tiles_[id];
    if (t.refs != 0) continue;  // stale entry (re-retained since listed)
    recycle(id, fmt);
    t.refs = 1;
    ++in_use_;
    return id;
  }
  // 2. Fresh capacity.
  if (capacity_tiles_ == 0 || tiles_.size() < capacity_tiles_) {
    Tile t;
    t.slab = std::make_unique<Half[]>(slab_halves_);  // value-init: zeroed
    t.format = fmt;
    if (fmt == core::TileFmt::kI8) {
      // No value-init: fully written at seal time, never read before (the
      // i8 pointers are published only on seal).  Same for fslab below.
      t.qslab = std::unique_ptr<std::uint8_t[]>(
          new std::uint8_t[layers_ * heads_ * i8_block_bytes_]);
    } else if (images_ == core::ImagePolicy::kF32) {
      t.fslab = std::unique_ptr<float[]>(new float[slab_halves_]);
    } else if (images_ == core::ImagePolicy::kF16T) {
      t.hslab = std::unique_ptr<Half[]>(
          new Half[layers_ * heads_ *
                   detail::f16t_image_halves(dim_, enc_stride_)]);
    }
    t.refs = 1;
    tiles_.push_back(std::move(t));
    ++in_use_;
    return tiles_.size() - 1;
  }
  // 3. Evict the least-recently-released cached (prefix-registered) tile.
  while (!cached_.empty()) {
    const auto [id, stamp] = cached_.front();
    cached_.pop_front();
    Tile& t = tiles_[id];
    if (t.refs != 0 || t.stamp != stamp) continue;  // stale: re-shared since
    ++evictions_;
    recycle(id, fmt);
    t.refs = 1;
    ++in_use_;
    return id;
  }
  return kNoTile;  // every tile is referenced
}

void TilePool::retain(TileId id) {
  Tile& t = checked(id);
  if (t.refs == 0) {
    ++in_use_;
    t.stamp = 0;  // invalidate any free-list entry (lazy removal)
  }
  ++t.refs;
}

void TilePool::release(TileId id) {
  Tile& t = checked(id);
  if (t.refs == 0) {
    throw std::logic_error("TilePool: refcount underflow on release");
  }
  if (--t.refs == 0) {
    --in_use_;
    if (t.is_published) {
      t.stamp = ++clock_;
      cached_.emplace_back(id, t.stamp);
    } else {
      t.stamp = ++clock_;
      dead_.push_back(id);
    }
  }
}

TilePool::TileId TilePool::lookup_shared(const ChainKey& key) {
  const auto it = registry_.find(key);
  if (it == registry_.end()) return kNoTile;
  const TileId id = it->second;
  retain(id);  // also pulls it off the cached list via the stamp
  ++shared_hits_;
  return id;
}

void TilePool::seal(TileId id) {
  Tile& t = checked(id);
  t.sealed = true;
  // A sealed kI8 tile lives entirely in its i8 slab (every layer's block
  // was quantized before the pool-wide seal); dropping the fp16 staging
  // slab here is the capacity win.
  if (t.format == core::TileFmt::kI8) t.slab.reset();
}

bool TilePool::sealed(TileId id) const { return checked(id).sealed; }

bool TilePool::publish(TileId id, const ChainKey& key) {
  Tile& t = checked(id);
  if (!t.sealed) {
    throw std::logic_error("TilePool: publish of an unsealed tile");
  }
  if (t.is_published) return false;
  if (!registry_.emplace(key, id).second) {
    return false;  // first writer wins; the caller keeps its private copy
  }
  t.is_published = true;
  t.key = key;
  return true;
}

std::size_t TilePool::allocatable() const noexcept {
  if (capacity_tiles_ == 0) return static_cast<std::size_t>(-1);
  return capacity_tiles_ - in_use_;
}

std::size_t TilePool::refcount(TileId id) const { return checked(id).refs; }

namespace {

// One tile's actual current footprint: formats differ per tile, and a kI8
// tile's staging slab exists only until it seals.
template <typename TileT>
std::size_t tile_footprint(const TileT& t, std::size_t slab_halves,
                           std::size_t qslab_bytes,
                           std::size_t hslab_halves) noexcept {
  std::size_t b = 0;
  if (t.slab != nullptr) b += slab_halves * sizeof(Half);
  if (t.fslab != nullptr) b += slab_halves * sizeof(float);
  if (t.hslab != nullptr) b += hslab_halves * sizeof(Half);
  if (t.qslab != nullptr) b += qslab_bytes;
  return b;
}

}  // namespace

std::size_t TilePool::bytes_in_use() const noexcept {
  const std::size_t qslab_bytes = layers_ * heads_ * i8_block_bytes_;
  const std::size_t hslab_halves =
      enc_stride_ == 0
          ? 0
          : layers_ * heads_ * detail::f16t_image_halves(dim_, enc_stride_);
  std::size_t b = 0;
  for (const Tile& t : tiles_) {
    if (t.refs != 0) {
      b += tile_footprint(t, slab_halves_, qslab_bytes, hslab_halves);
    }
  }
  return b;
}

std::size_t TilePool::bytes_allocated() const noexcept {
  const std::size_t qslab_bytes = layers_ * heads_ * i8_block_bytes_;
  const std::size_t hslab_halves =
      enc_stride_ == 0
          ? 0
          : layers_ * heads_ * detail::f16t_image_halves(dim_, enc_stride_);
  std::size_t b = 0;
  for (const Tile& t : tiles_) {
    b += tile_footprint(t, slab_halves_, qslab_bytes, hslab_halves);
  }
  return b;
}

std::size_t TilePool::tile_bytes(core::TileFmt fmt) const noexcept {
  if (fmt == core::TileFmt::kI8) {
    return layers_ * heads_ * i8_block_bytes_;
  }
  std::size_t b = slab_halves_ * sizeof(Half);
  if (images_ == core::ImagePolicy::kF32) {
    b += slab_halves_ * sizeof(float);
  } else if (images_ == core::ImagePolicy::kF16T) {
    b += layers_ * heads_ * detail::f16t_image_halves(dim_, enc_stride_) *
         sizeof(Half);
  }
  return b;
}

core::TileFmt default_tile_format() noexcept {
  // Read once: a mid-process flip would let requests of "the default"
  // format disagree with each other, which no caller could reason about.
  static const core::TileFmt fmt = [] {
    const char* v = std::getenv("FTT_KV_QUANT");
    const bool on = v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
    return on ? core::TileFmt::kI8 : core::TileFmt::kF16;
  }();
  return fmt;
}

// ---------------------------------------------------------------------------
// PagedKvCache
// ---------------------------------------------------------------------------

PagedKvCache::PagedKvCache(TilePool& pool, core::TileFmt fmt)
    : pool_(&pool),
      fmt_(fmt),
      layer_len_(pool.layers(), 0),
      sealed_tiles_(pool.layers(), 0),
      ptrs_(pool.layers() * pool.heads()),
      layer_fmt_(pool.layers()) {
  if (fmt_ == core::TileFmt::kI8 && pool.enc_stride() == 0) {
    throw std::logic_error(
        "PagedKvCache: the int8 tile format requires the pool's encoding "
        "memo (enc_stride)");
  }
}

PagedKvCache::~PagedKvCache() { release_all(); }

void PagedKvCache::push_tile_ptrs(TilePool::TileId id, bool with_enc) {
  const std::size_t layers = pool_->layers(), heads = pool_->heads();
  const std::size_t dim = pool_->dim();
  const auto su = static_cast<std::size_t>(pool_->enc_stride());
  const std::size_t kcn = su * dim, vcn = TilePool::kTileRows * su;
  // Only a sealed shared tile can arrive already in i8 form; fresh tiles —
  // whatever format they were acquired as — stage in fp16 and flip per
  // layer in seal_layer_tile.
  const bool i8 = with_enc && pool_->format(id) == core::TileFmt::kI8;
  const detail::I8TileLayout L =
      i8 ? detail::i8_tile_layout(dim, pool_->enc_stride())
         : detail::I8TileLayout{};
  for (std::size_t l = 0; l < layers; ++l) {
    layer_fmt_[l].push_back(i8 ? core::TileFmt::kI8 : core::TileFmt::kF16);
    for (std::size_t h = 0; h < heads; ++h) {
      HeadPtrs& hp = ptrs_[l * heads + h];
      // For a sealed kI8 tile these are null (its staging slab is freed) —
      // the decode kernel never dereferences them when fmt says kI8.
      hp.k.push_back(pool_->k_tile(id, l, h));
      hp.v.push_back(pool_->v_tile(id, l, h));
      if (i8) {
        const std::uint8_t* block = pool_->i8_block(id, l, h);
        const Half* henc = detail::i8_henc(block, L);
        const float* scales = detail::i8_scales(block, L);
        hp.kc1.push_back(henc);
        hp.kc2.push_back(henc + kcn);
        hp.vc1.push_back(henc + 2 * kcn);
        hp.vc2.push_back(henc + 2 * kcn + vcn);
        hp.kq.push_back(detail::i8_k(block, L));
        hp.vq.push_back(detail::i8_v(block, L));
        hp.ks.push_back(scales[0]);
        hp.vs.push_back(scales[3]);
      } else {
        const Half* enc = with_enc ? pool_->enc_block(id, l, h) : nullptr;
        hp.kc1.push_back(enc);
        hp.kc2.push_back(enc == nullptr ? nullptr : enc + kcn);
        hp.vc1.push_back(enc == nullptr ? nullptr : enc + 2 * kcn);
        hp.vc2.push_back(enc == nullptr ? nullptr : enc + 2 * kcn + vcn);
        hp.kq.push_back(nullptr);
        hp.vq.push_back(nullptr);
        hp.ks.push_back(0.0f);
        hp.vs.push_back(0.0f);
      }
      // Sealed shared tiles arrive with their image already built (the
      // sealing request wrote it); fresh tiles get theirs at seal time.
      // Null for kI8 tiles — the image is the fp16-only fast path.
      hp.f32.push_back(with_enc
                           ? static_cast<const float*>(
                                 pool_->f32_image(id, l, h))
                           : nullptr);
      hp.f16t.push_back(with_enc
                            ? static_cast<const Half*>(
                                  pool_->f16t_image(id, l, h))
                            : nullptr);
    }
  }
}

void PagedKvCache::attach_shared(TilePool::TileId id) {
  if (!pool_->sealed(id)) {
    throw std::logic_error("PagedKvCache: attach of an unsealed tile");
  }
  // The engine keys prefix chains per format, so a cross-format hit should
  // be impossible; this is the hard backstop.
  if (pool_->format(id) != fmt_) {
    throw std::logic_error(
        "PagedKvCache: shared-tile format mismatch — prefix chains never "
        "cross tile formats");
  }
  for (const std::size_t len : layer_len_) {
    if (len != table_.size() * TilePool::kTileRows) {
      throw std::logic_error(
          "PagedKvCache: shared tiles attach only on tile boundaries");
    }
  }
  table_.push_back(id);
  push_tile_ptrs(id, /*with_enc=*/true);
  for (std::size_t& len : layer_len_) len += TilePool::kTileRows;
  // The attached tile arrives already sealed: advance every layer's sealed
  // region over it so seal_layer_through never re-encodes a shared tile.
  for (std::size_t& sealed : sealed_tiles_) ++sealed;
  ++shared_tiles_;
}

bool PagedKvCache::ensure_capacity(std::size_t tokens) {
  const std::size_t need =
      (tokens + TilePool::kTileRows - 1) / TilePool::kTileRows;
  while (table_.size() < need) {
    const TilePool::TileId id = pool_->acquire(fmt_);
    if (id == TilePool::kNoTile) return false;
    table_.push_back(id);
    push_tile_ptrs(id, /*with_enc=*/false);  // enc ptrs null until sealed
  }
  return true;
}

void PagedKvCache::seal_layer_tile(std::size_t layer, std::size_t tile_index) {
  const int s = pool_->enc_stride();
  const std::size_t heads = pool_->heads(), dim = pool_->dim();
  const TilePool::TileId id = table_[tile_index];
  if (fmt_ == core::TileFmt::kI8) {
    // Quantize this layer's staged fp16 rows into the tile's i8 slab (the
    // ctor guarantees s != 0 here).  The layer's slice streams i8 from this
    // moment on; the fp16 staging rows die at the pool-wide seal below, so
    // null the payload pointers now.
    const detail::I8TileLayout L = detail::i8_tile_layout(dim, s);
    for (std::size_t h = 0; h < heads; ++h) {
      std::uint8_t* block = pool_->i8_block(id, layer, h);
      detail::quantize_sealed_tile(pool_->k_tile(id, layer, h),
                                   pool_->v_tile(id, layer, h), dim, s,
                                   block);
      const Half* henc = detail::i8_henc(block, L);
      const float* scales = detail::i8_scales(block, L);
      HeadPtrs& hp = ptrs_[layer * heads + h];
      hp.kc1[tile_index] = henc;
      hp.kc2[tile_index] = henc + L.kcn;
      hp.vc1[tile_index] = henc + 2 * L.kcn;
      hp.vc2[tile_index] = henc + 2 * L.kcn + L.vcn;
      hp.kq[tile_index] = detail::i8_k(block, L);
      hp.vq[tile_index] = detail::i8_v(block, L);
      hp.ks[tile_index] = scales[0];
      hp.vs[tile_index] = scales[3];
      hp.k[tile_index] = nullptr;
      hp.v[tile_index] = nullptr;
    }
    layer_fmt_[layer][tile_index] = core::TileFmt::kI8;
    if (layer == pool_->layers() - 1) {
      pool_->seal(id);  // frees the staging slab — the capacity win
      newly_sealed_.push_back(tile_index);
    }
    return;
  }
  if (s != 0) {
    const auto su = static_cast<std::size_t>(s);
    const std::size_t kcn = su * dim, vcn = TilePool::kTileRows * su;
    for (std::size_t h = 0; h < heads; ++h) {
      Half* enc = pool_->enc_block(id, layer, h);
      detail::encode_sealed_tile(pool_->k_tile(id, layer, h),
                                 pool_->v_tile(id, layer, h), dim, s, enc);
      HeadPtrs& hp = ptrs_[layer * heads + h];
      hp.kc1[tile_index] = enc;
      hp.kc2[tile_index] = enc + kcn;
      hp.vc1[tile_index] = enc + 2 * kcn;
      hp.vc2[tile_index] = enc + 2 * kcn + vcn;
      if (float* img = pool_->f32_image(id, layer, h)) {
        detail::widen_sealed_tile(pool_->k_tile(id, layer, h),
                                  pool_->v_tile(id, layer, h), enc, dim, s,
                                  img);
        hp.f32[tile_index] = img;
      }
      if (Half* himg = pool_->f16t_image(id, layer, h)) {
        detail::build_f16t_image(pool_->k_tile(id, layer, h), enc, dim, s,
                                 himg);
        hp.f16t[tile_index] = himg;
      }
    }
  }
  // The last layer fills last within a tick: its seal completes the tile.
  if (layer == pool_->layers() - 1) {
    pool_->seal(id);
    newly_sealed_.push_back(tile_index);
  }
}

void PagedKvCache::seal_layer_through(std::size_t layer, std::size_t upto) {
  for (std::size_t t = sealed_tiles_[layer]; t < upto; ++t) {
    seal_layer_tile(layer, t);
  }
  if (upto > sealed_tiles_[layer]) sealed_tiles_[layer] = upto;
}

void PagedKvCache::append_chunk(std::size_t layer,
                                std::span<const Half> k,
                                std::span<const Half> v, std::size_t rows,
                                bool defer_seal) {
  const std::size_t heads = pool_->heads(), dim = pool_->dim();
  if (layer >= pool_->layers()) {
    throw std::out_of_range("PagedKvCache: layer out of range");
  }
  if (rows == 0 || k.size() != rows * heads * dim ||
      v.size() != rows * heads * dim) {
    throw std::invalid_argument(
        "PagedKvCache: expected rows*heads*dim values");
  }
  const std::size_t len = layer_len_[layer];
  if (len + rows > table_.size() * TilePool::kTileRows) {
    throw std::logic_error(
        "PagedKvCache: append beyond ensured capacity — the engine's memory "
        "phase must run first");
  }
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t tile = (len + r) / TilePool::kTileRows;
    const std::size_t row = (len + r) % TilePool::kTileRows;
    const TilePool::TileId id = table_[tile];
    for (std::size_t h = 0; h < heads; ++h) {
      std::memcpy(pool_->k_tile(id, layer, h) + row * dim,
                  k.data() + (r * heads + h) * dim, dim * sizeof(Half));
      std::memcpy(pool_->v_tile(id, layer, h) + row * dim,
                  v.data() + (r * heads + h) * dim, dim * sizeof(Half));
    }
  }
  layer_len_[layer] = len + rows;
  // Seal every tile this chunk filled for this layer.  Slab encoding space
  // is preallocated, so — unlike KvCache — sealing cannot fail mid-append.
  // Speculative appends defer: a tile filled by rows that may be rejected
  // must stay open until truncate() commits the accepted prefix.
  if (!defer_seal) {
    seal_layer_through(layer, layer_len_[layer] / TilePool::kTileRows);
  }
}

void PagedKvCache::truncate(std::size_t tokens) {
  const std::size_t heads = pool_->heads(), dim = pool_->dim();
  const std::size_t len = layer_len_.empty() ? 0 : layer_len_[0];
  for (const std::size_t l : layer_len_) {
    if (l != len) {
      throw std::logic_error(
          "PagedKvCache::truncate: layers out of step — truncation commits "
          "a whole tick, after every layer appended");
    }
  }
  if (tokens > len) {
    throw std::logic_error(
        "PagedKvCache::truncate: cannot truncate beyond the context");
  }
  for (const std::size_t sealed : sealed_tiles_) {
    if (tokens < sealed * TilePool::kTileRows) {
      throw std::logic_error(
          "PagedKvCache::truncate: rollback into a sealed tile — sealed "
          "tiles are never speculative");
    }
  }
  const std::size_t need =
      (tokens + TilePool::kTileRows - 1) / TilePool::kTileRows;
  // Zero the rolled-back rows of the tiles we keep: later appends (and the
  // kernel's ragged-tail checksums) rely on rows past the valid count being
  // zero.  Dropped tail tiles skip this — the pool zeroes them on reuse.
  const std::size_t kept_rows = std::min(len, need * TilePool::kTileRows);
  for (std::size_t layer = 0; layer < pool_->layers(); ++layer) {
    for (std::size_t r = tokens; r < kept_rows; ++r) {
      const std::size_t tile = r / TilePool::kTileRows;
      const std::size_t row = r % TilePool::kTileRows;
      const TilePool::TileId id = table_[tile];
      for (std::size_t h = 0; h < heads; ++h) {
        std::fill_n(pool_->k_tile(id, layer, h) + row * dim, dim, Half{});
        std::fill_n(pool_->v_tile(id, layer, h) + row * dim, dim, Half{});
      }
    }
  }
  // Release tail tiles the commit left entirely empty (acquired for the
  // speculative block this tick; unpublished, so they go on the dead list).
  while (table_.size() > need) {
    pool_->release(table_.back());
    table_.pop_back();
    for (HeadPtrs& hp : ptrs_) {
      hp.k.pop_back();
      hp.v.pop_back();
      hp.kc1.pop_back();
      hp.kc2.pop_back();
      hp.vc1.pop_back();
      hp.vc2.pop_back();
      hp.f32.pop_back();
      hp.f16t.pop_back();
      hp.kq.pop_back();
      hp.vq.pop_back();
      hp.ks.pop_back();
      hp.vs.pop_back();
    }
    for (std::vector<core::TileFmt>& lf : layer_fmt_) lf.pop_back();
  }
  for (std::size_t& l : layer_len_) l = tokens;
  // Seal whatever the commit fully covers (deferred by the speculative
  // appends).  Layers seal in order, so the pool-wide seal — and the
  // publication candidacy it gates — still fires on the last layer.
  for (std::size_t layer = 0; layer < pool_->layers(); ++layer) {
    seal_layer_through(layer, tokens / TilePool::kTileRows);
  }
}

core::KvSlice PagedKvCache::slice(std::size_t layer, std::size_t head) const {
  if (layer >= pool_->layers() || head >= pool_->heads()) {
    throw std::out_of_range("PagedKvCache: layer/head out of range");
  }
  const HeadPtrs& hp = ptrs_[layer * pool_->heads() + head];
  core::KvSlice s{hp.k.data(),   hp.v.data(),   layer_len_[layer],
                  pool_->dim(),  hp.kc1.data(), hp.kc2.data(),
                  hp.vc1.data(), hp.vc2.data(), pool_->enc_stride(),
                  hp.f32.data()};
  // Entries are null unless the pool's policy is kF16T and the tile sealed,
  // so exposing the array unconditionally is policy-correct.
  s.f16t = hp.f16t.data();
  // The i8 views are exposed only for kI8 requests: an fp16 request's
  // slices are bit-for-bit what a pure-fp16 pool would hand out, even when
  // the pool also holds i8 tiles.
  if (fmt_ == core::TileFmt::kI8) {
    s.fmt = layer_fmt_[layer].data();
    s.k_i8 = hp.kq.data();
    s.v_i8 = hp.vq.data();
    s.k_scale = hp.ks.data();
    s.v_scale = hp.vs.data();
  }
  return s;
}

std::size_t PagedKvCache::length() const noexcept {
  // Rows every layer has committed; mid-tick, later layers lag earlier
  // ones, and the minimum is the fully-appended context.
  std::size_t len = layer_len_.empty() ? 0 : layer_len_[0];
  for (const std::size_t l : layer_len_) len = l < len ? l : len;
  return len;
}

std::vector<std::size_t> PagedKvCache::take_newly_sealed() {
  std::vector<std::size_t> out;
  out.swap(newly_sealed_);
  return out;
}

void PagedKvCache::release_all() {
  for (const TilePool::TileId id : table_) pool_->release(id);
  table_.clear();
  for (std::size_t& len : layer_len_) len = 0;
  for (std::size_t& sealed : sealed_tiles_) sealed = 0;
  for (HeadPtrs& hp : ptrs_) {
    hp.k.clear();
    hp.v.clear();
    hp.kc1.clear();
    hp.kc2.clear();
    hp.vc1.clear();
    hp.vc2.clear();
    hp.f32.clear();
    hp.f16t.clear();
    hp.kq.clear();
    hp.vq.clear();
    hp.ks.clear();
    hp.vs.clear();
  }
  for (std::vector<core::TileFmt>& lf : layer_fmt_) lf.clear();
  shared_tiles_ = 0;
  newly_sealed_.clear();
}

}  // namespace ftt::serve
