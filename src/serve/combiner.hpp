#pragma once
// Deterministic combine layer for shard-parallel serving.
//
// Shard workers produce three kinds of partial results: float tensors
// (row-parallel partial sums of an output projection), fault-tolerance
// reports (per-shard attention::FtReport / abft::Report), and per-tick
// StepStats.  The combiner reduces all of them in FIXED SHARD ORDER —
// never in thread-completion order — so a sharded tick is a deterministic
// function of its inputs and the shard count, regardless of how the OS
// schedules the workers.
//
// Float reduction follows the ring-allreduce idiom: the flattened tensor is
// cut into fixed-size chunks and chunk c is accumulated starting from shard
// (c % nshards), walking the ring (start, start+1, ..., wrapping) — the
// same rotation a bucketed ring all-reduce performs, where each rank owns
// the reduction of its bucket.  The start rotation balances which shard
// "leads" each chunk while keeping the order a pure function of (chunk,
// nshards).  Float addition is not associative, so this combined value is
// NOT bitwise-equal to a flat solo GEMM — which is why the engine's
// default output-projection mode is column-parallel (disjoint 64-tile
// column ranges, no combine, bit-identical to solo) and the ring reduction
// backs the opt-in row-parallel mode.  With one shard the reduction is an
// exact copy.
//
// Report and StepStats merges are integer-counter sums (order-insensitive
// by construction) but run in the same fixed shard order anyway: one
// discipline for every combine.

#include <cstddef>
#include <span>
#include <vector>

#include "abft/report.hpp"
#include "attention/ft_report.hpp"
#include "serve/step_stats.hpp"
#include "tensor/tensor.hpp"

namespace ftt::serve {

class DeterministicCombiner {
 public:
  /// `chunk_values` is the ring-chunk granularity in floats (a bucketed
  /// ring all-reduce's bucket size).  Must be >= 1.
  explicit DeterministicCombiner(std::size_t chunk_values = 256);

  [[nodiscard]] std::size_t chunk_values() const noexcept { return chunk_; }

  /// out[i] = sum over shards of partials[s][i], accumulated ring-style:
  /// chunk c of the flattened array sums shards in the fixed rotated order
  /// (c % n, c % n + 1, ..., wrapping).  Every partial must have out's
  /// size.  partials must be non-empty; with one shard this is a copy.
  void reduce(std::span<const std::span<const float>> partials,
              std::span<float> out) const;
  /// Convenience over whole matrices (same shape required).
  void reduce(std::span<const tensor::MatrixF* const> partials,
              tensor::MatrixF& out) const;

  /// Merge per-shard reports in fixed shard order (index 0 first).
  [[nodiscard]] static attention::FtReport merge(
      std::span<const attention::FtReport> per_shard) noexcept;
  [[nodiscard]] static abft::Report merge(
      std::span<const abft::Report> per_shard) noexcept;
  [[nodiscard]] static StepStats merge(
      std::span<const StepStats> per_shard) noexcept;

 private:
  std::size_t chunk_;
};

}  // namespace ftt::serve
