#include "serve/scheduler.hpp"

#include <algorithm>
#include <stdexcept>

namespace ftt::serve {

Scheduler::Scheduler(SchedulerOptions opt) : opt_(opt) {
  if (opt_.max_batch_size == 0) {
    throw std::invalid_argument("Scheduler: max_batch_size must be >= 1");
  }
}

void Scheduler::enqueue(RequestId id, std::size_t max_tokens) {
  if (max_tokens == 0) {
    throw std::invalid_argument("Scheduler: max_tokens must be >= 1");
  }
  // Overflow-safe ceil: max_tokens can legitimately be SIZE_MAX (an
  // uncapped engine), where (max_tokens + 63) would wrap to a 0-tile
  // reservation and silently bypass the KV back-pressure budget.
  const std::size_t tiles =
      max_tokens / kTileRows + (max_tokens % kTileRows != 0 ? 1 : 0);
  if (opt_.max_kv_tiles != 0 && tiles > opt_.max_kv_tiles) {
    throw std::invalid_argument(
        "Scheduler: request reservation exceeds max_kv_tiles — it could "
        "never be admitted");
  }
  if (id >= slots_.size()) slots_.resize(id + 1);
  slots_[id] = Slot{RequestState::kQueued, tiles};
  queue_.push_back(id);
}

std::vector<Scheduler::RequestId> Scheduler::admit() {
  std::vector<RequestId> out;
  while (!queue_.empty()) {
    const RequestId id = queue_.front();
    const std::size_t tiles = slots_[id].tiles;
    if (admitted_ >= opt_.max_batch_size) break;
    if (opt_.max_kv_tiles != 0 &&
        tiles_reserved_ + tiles > opt_.max_kv_tiles) {
      break;  // strict FCFS: never admit past a blocked head
    }
    queue_.pop_front();
    slots_[id].state = RequestState::kPrefilling;
    ++admitted_;
    tiles_reserved_ += tiles;
    out.push_back(id);
  }
  return out;
}

void Scheduler::on_prefill_done(RequestId id) {
  Slot& slot = checked(id);
  if (slot.state != RequestState::kPrefilling) {
    throw std::logic_error("Scheduler: on_prefill_done on a non-prefilling "
                           "request");
  }
  slot.state = RequestState::kDecoding;
}

void Scheduler::release(RequestId id) {
  Slot& slot = checked(id);
  switch (slot.state) {
    case RequestState::kQueued: {
      const auto it = std::find(queue_.begin(), queue_.end(), id);
      if (it != queue_.end()) queue_.erase(it);
      break;
    }
    case RequestState::kPrefilling:
    case RequestState::kDecoding:
      --admitted_;
      tiles_reserved_ -= slot.tiles;
      break;
    case RequestState::kRetired:
      return;  // idempotent
  }
  slot.state = RequestState::kRetired;
}

RequestState Scheduler::state(RequestId id) const {
  return checked(id).state;
}

Scheduler::Slot& Scheduler::checked(RequestId id) {
  if (id >= slots_.size()) {
    throw std::out_of_range("Scheduler: unknown request id");
  }
  return slots_[id];
}

const Scheduler::Slot& Scheduler::checked(RequestId id) const {
  if (id >= slots_.size()) {
    throw std::out_of_range("Scheduler: unknown request id");
  }
  return slots_[id];
}

}  // namespace ftt::serve
