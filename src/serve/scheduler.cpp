#include "serve/scheduler.hpp"

#include <algorithm>
#include <stdexcept>

namespace ftt::serve {

Scheduler::Scheduler(SchedulerOptions opt) : opt_(opt) {
  if (opt_.max_batch_size == 0) {
    throw std::invalid_argument("Scheduler: max_batch_size must be >= 1");
  }
}

EnqueueResult Scheduler::enqueue(RequestId id, std::size_t max_tokens,
                                 Priority priority, std::size_t job_rows) {
  if (max_tokens == 0) {
    throw std::invalid_argument("Scheduler: max_tokens must be >= 1");
  }
  // Overflow-safe ceil: max_tokens can legitimately be SIZE_MAX (an
  // uncapped engine), where (max_tokens + 63) would wrap and bypass the
  // never-admittable check.
  const std::size_t tiles =
      max_tokens / kTileRows + (max_tokens % kTileRows != 0 ? 1 : 0);
  if (opt_.max_kv_tiles != 0 && tiles > opt_.max_kv_tiles) {
    return EnqueueResult::kRejectedTooLarge;  // could never run, even alone
  }
  if (id >= slots_.size()) slots_.resize(id + 1);
  slots_[id] = Slot{RequestState::kQueued, priority, job_rows, 0};
  queues_[static_cast<std::size_t>(priority)].push_back(id);
  return EnqueueResult::kAccepted;
}

std::vector<Scheduler::RequestId> Scheduler::admit(
    std::size_t new_tile_hint) {
  std::vector<RequestId> out;
  for (auto& queue : queues_) {  // high class first
    while (!queue.empty()) {
      if (admitted_ >= opt_.max_batch_size || new_tile_hint == 0) {
        return out;
      }
      // FCFS picks the front.  SJF picks the smallest job (earliest-queued
      // on ties, so equal sizes stay FCFS) — unless the front has already
      // been overtaken sjf_max_overtakes times, in which case it goes next
      // unconditionally: the aging bound that makes SJF starvation-free.
      std::size_t pick = 0;
      if (opt_.sjf_within_class &&
          slots_[queue.front()].overtaken < opt_.sjf_max_overtakes) {
        for (std::size_t i = 1; i < queue.size(); ++i) {
          if (slots_[queue[i]].job_rows < slots_[queue[pick]].job_rows) {
            pick = i;
          }
        }
      }
      const RequestId id = queue[pick];
      for (std::size_t i = 0; i < pick; ++i) ++slots_[queue[i]].overtaken;
      queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(pick));
      slots_[id].state = RequestState::kPrefilling;
      ++admitted_;
      // Each admission plausibly needs one fresh tile beyond any shared
      // prefix; the hint is a throttle, not a reservation.
      --new_tile_hint;
      out.push_back(id);
    }
  }
  return out;
}

void Scheduler::on_prefill_done(RequestId id) {
  Slot& slot = checked(id);
  if (slot.state != RequestState::kPrefilling) {
    throw std::logic_error("Scheduler: on_prefill_done on a non-prefilling "
                           "request");
  }
  slot.state = RequestState::kDecoding;
}

void Scheduler::preempt(RequestId id) {
  Slot& slot = checked(id);
  if (slot.state != RequestState::kPrefilling &&
      slot.state != RequestState::kDecoding) {
    throw std::logic_error("Scheduler: preempt of a non-admitted request");
  }
  --admitted_;
  slot.state = RequestState::kQueued;
  // Front of its class: a preempted request is the first of its class to be
  // readmitted — delayed, never starved behind later arrivals.
  queues_[static_cast<std::size_t>(slot.priority)].push_front(id);
  ++preemptions_;
}

void Scheduler::release(RequestId id) {
  Slot& slot = checked(id);
  switch (slot.state) {
    case RequestState::kQueued: {
      auto& queue = queues_[static_cast<std::size_t>(slot.priority)];
      const auto it = std::find(queue.begin(), queue.end(), id);
      if (it != queue.end()) queue.erase(it);
      break;
    }
    case RequestState::kPrefilling:
    case RequestState::kDecoding:
      --admitted_;
      break;
    case RequestState::kRetired:
      return;  // idempotent
  }
  slot.state = RequestState::kRetired;
}

RequestState Scheduler::state(RequestId id) const {
  return checked(id).state;
}

Priority Scheduler::priority(RequestId id) const {
  return checked(id).priority;
}

std::size_t Scheduler::queued() const noexcept {
  std::size_t n = 0;
  for (const auto& queue : queues_) n += queue.size();
  return n;
}

Scheduler::Slot& Scheduler::checked(RequestId id) {
  if (id >= slots_.size()) {
    throw std::out_of_range("Scheduler: unknown request id");
  }
  return slots_[id];
}

const Scheduler::Slot& Scheduler::checked(RequestId id) const {
  if (id >= slots_.size()) {
    throw std::out_of_range("Scheduler: unknown request id");
  }
  return slots_[id];
}

}  // namespace ftt::serve
