#include "serve/proposer.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace ftt::serve {

namespace {

/// FNV-1a over the row bytes: a cheap content fingerprint so the backward
/// scan rejects non-matches without touching row data.  Exactness comes
/// from the byte compare behind it, not from the hash.
std::uint64_t row_hash(const float* row, std::size_t hidden) noexcept {
  const auto* p = reinterpret_cast<const unsigned char*>(row);
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < hidden * sizeof(float); ++i) {
    h = (h ^ p[i]) * 0x100000001b3ull;
  }
  return h;
}

}  // namespace

PromptLookupProposer::PromptLookupProposer(PromptLookupOptions opt)
    : opt_(opt) {
  if (opt_.min_match == 0) {
    throw std::invalid_argument(
        "PromptLookupProposer: min_match must be >= 1");
  }
}

void PromptLookupProposer::reset(std::size_t request_id) {
  histories_.erase(request_id);
}

void PromptLookupProposer::observe(std::size_t request_id,
                                   std::span<const float> row) {
  History& h = histories_[request_id];
  if (h.hidden == 0) h.hidden = row.size();
  if (row.size() != h.hidden) {
    throw std::invalid_argument(
        "PromptLookupProposer: inconsistent row width");
  }
  h.rows.insert(h.rows.end(), row.begin(), row.end());
  h.hash.push_back(row_hash(row.data(), h.hidden));
  if (opt_.max_history != 0 && h.hash.size() > opt_.max_history) {
    const std::size_t drop = h.hash.size() - opt_.max_history;
    h.rows.erase(h.rows.begin(),
                 h.rows.begin() + static_cast<std::ptrdiff_t>(drop * h.hidden));
    h.hash.erase(h.hash.begin(),
                 h.hash.begin() + static_cast<std::ptrdiff_t>(drop));
  }
}

std::size_t PromptLookupProposer::propose(std::size_t request_id,
                                          std::size_t max_rows,
                                          std::size_t hidden, float* out) {
  const auto it = histories_.find(request_id);
  if (it == histories_.end() || max_rows == 0) return 0;
  const History& h = it->second;
  if (h.hidden != hidden) return 0;
  const std::size_t rows = h.hash.size();
  const std::size_t g = opt_.min_match;
  // Need a g-row key at the end of history plus at least one earlier
  // occurrence with a row after it to propose.
  if (rows < g + 1) return 0;

  const auto row_at = [&](std::size_t r) { return h.rows.data() + r * hidden; };
  const auto rows_equal = [&](std::size_t a, std::size_t b) {
    return h.hash[a] == h.hash[b] &&
           std::memcmp(row_at(a), row_at(b), hidden * sizeof(float)) == 0;
  };

  // Earlier occurrences of the trailing g-gram: scan end positions
  // e = rows-2 .. g-1 backwards (e is the candidate match's last row; the
  // key's own last row is rows-1 and never matches itself).  Walking
  // backwards, each successive match has strictly more continuation rows
  // available, so this keeps the *most recent* match that can fill the
  // whole draft — short periodic cycles (period < max_rows) resolve to an
  // occurrence far enough back to unroll the cycle max_rows times.
  std::size_t best_e = rows, best_avail = 0;
  for (std::size_t e = rows - 1; e-- > g - 1;) {
    bool match = true;
    for (std::size_t k = 0; k < g && match; ++k) {
      match = rows_equal(e - k, rows - 1 - k);
    }
    if (!match) continue;
    const std::size_t avail = rows - 1 - e;  // rows following the match
    if (avail > best_avail) {
      best_avail = avail;
      best_e = e;
    }
    if (best_avail >= max_rows) break;
  }
  if (best_e == rows) return 0;
  const std::size_t n = std::min(max_rows, best_avail);
  std::memcpy(out, row_at(best_e + 1), n * hidden * sizeof(float));
  return n;
}

}  // namespace ftt::serve
