#pragma once
// Serving-layer fault recovery policy: the knobs that turn kernel-level
// detection (ABFT checksums, SNVR, per-site injection reports) into action.
//
// The recovery ladder, bottom to top:
//
//   detect/correct (kernels)  ->  tick retry (engine)  ->  shard quarantine
//   (engine/shard)  ->  KV tile scrubbing (tile pool)  ->  replica drain
//   (router; see RouterOptions' drain_* knobs)
//
// Every rung preserves the repo's bit-identity contract: replay is
// deterministic (generation is a pure function of the prompt, and the
// batched/sharded/paged paths are bit-identical to solo serial decode), so
// re-running work after a transient fault lands on exactly the bits a clean
// run produces.  Under the paper's single-event-upset assumption — at most
// one transient flip per detection/correction cycle — a retried tick's
// second attempt is clean, a quarantined shard's head range recomputes
// bitwise on the remaining workers (column-parallel combine is bitwise for
// ANY shard count), and a drained replica's requests replay bitwise on a
// healthy replica.  RetryTrigger::kAnyDetection is the mode that carries
// the full guarantee: ABFT *correction* is approximate (checksum
// reconstruction, not bit-exact replay), so only a committed attempt with
// zero detections is provably the clean-run bits.
//
// All rungs default off: a default-constructed RecoveryPolicy reproduces
// the pre-recovery engine exactly, tick for tick and bit for bit.

#include <cstddef>

namespace ftt::serve {

/// What tick-level fault evidence triggers a re-run of the tick's compute.
enum class RetryTrigger {
  /// Retry on any detection (attention or linear ABFT flag).  The strict
  /// mode: a committed attempt is guaranteed flag-free, so a run whose
  /// every tick committed clean is bitwise-equal to a fault-free run.
  kAnyDetection,
  /// Retry only when detections exceed corrections (FtReport::uncorrected).
  /// Cheaper — approximately-corrected faults commit without a re-run — but
  /// committed bits may then deviate from clean by the correction error.
  kUncorrected,
};

/// What happens to the affected requests when a tick is still faulty after
/// max_tick_retries re-runs.
enum class EscalationPolicy {
  /// Commit the (possibly perturbed, ABFT-corrected) result and mark the
  /// request kFlagged; StepStats::degraded counts each such request-tick.
  kServeFlagged,
  /// Roll the affected requests' appends back and retire them with health
  /// kFailed; the rest of the batch commits normally.
  kFailRequest,
};

/// Per-request fault-recovery status, readable via DecodeEngine::health().
enum class RequestHealth {
  kClean,    ///< every committed tick passed the active retry trigger
  kFlagged,  ///< served through an exhausted retry (kServeFlagged)
  kFailed,   ///< retired by an exhausted retry (kFailRequest)
};

struct RecoveryPolicy {
  /// Tick retry: re-run a tick's compute (bounded attempts) when the merged
  /// reports trip `retry_on`, before committing KV appends and proposer
  /// history.  0 = off (commit whatever the kernels produced, the
  /// pre-recovery behavior).  A single-transient fault is gone on the
  /// re-run, so one retry normally recovers the clean-run bits.
  std::size_t max_tick_retries = 0;
  RetryTrigger retry_on = RetryTrigger::kAnyDetection;
  EscalationPolicy on_exhaustion = EscalationPolicy::kServeFlagged;

  /// Shard quarantine: sliding-window attention-fault accounting per shard
  /// (attributed by head ownership, the shard_reports() map).  A shard
  /// whose detections over the last `shard_window_ticks` ticks exceed
  /// `shard_quarantine_threshold` is quarantined: its head range is
  /// remapped over the remaining healthy workers (column-parallel combine
  /// is bitwise for any shard count, so degraded mode stays bit-identical
  /// to solo; ring-reduce mode stays deterministic but changes bits with
  /// the worker count).  The last healthy shard is never quarantined.
  /// threshold 0 = quarantine off.
  std::size_t shard_window_ticks = 16;
  std::size_t shard_quarantine_threshold = 0;
  /// Ticks a quarantined shard sits out before readmission (its window
  /// restarts clean; repeat offenders re-quarantine as evidence rebuilds).
  std::size_t shard_probation_ticks = 8;

  /// KV tile scrubbing: sealed tiles re-verified against their in-slab
  /// strided-ABFT encodings, `scrub_tiles_per_tick` per tick (round-robin
  /// cursor over the pool).  Single-class corruption is repaired in place;
  /// unrepairable tiles are unpublished and their owning requests preempted
  /// onto the recompute-from-prompt path.  0 = off.  NOTE: this rung
  /// guards *memory* faults, which are outside the paper's fault model
  /// (KV storage is assumed ECC-protected) — it exists for deployments
  /// without that guarantee, and its test hooks live in serve::testing.
  std::size_t scrub_tiles_per_tick = 0;

  /// True when any rung of the ladder is active.
  [[nodiscard]] bool enabled() const noexcept {
    return max_tick_retries > 0 || shard_quarantine_threshold > 0 ||
           scrub_tiles_per_tick > 0;
  }
};

}  // namespace ftt::serve
