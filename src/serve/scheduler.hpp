#pragma once
// Continuous-batching admission control: the policy half of the serving
// engine, now priority-aware and preemption-capable.
//
// KV admission is no longer a worst-case reservation.  With the paged
// TilePool, tiles are allocated on demand inside the engine's tick (and
// reclaimed by preemption when the pool runs dry), so the scheduler's job
// shrinks to ordering: three priority classes (high / normal / low), each a
// strict-FCFS queue, swept high-to-low.  Within a class no request ever
// overtakes an earlier one; across classes, high-priority traffic overtakes
// bulk — the latency bound the priority stress test pins down.
//
// Preemption re-queues a victim at the *front* of its class, so a preempted
// request is the first of its class to be readmitted once memory frees up —
// preemption can delay a request but never starve it behind later arrivals.
//
// The one memory-shaped check left is at enqueue: a request whose context
// ceiling needs more tiles than the whole pool could ever hold can never
// run, and is rejected with a typed result (kRejectedTooLarge) instead of
// an exception — with paging this is a load-shedding decision, not a
// programming error.
//
// The scheduler stays engine-agnostic bookkeeping (ids in, ids out, no
// tensors) so the policy is unit-testable without a model.

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

namespace ftt::serve {

/// Lifecycle of a request inside the serving engine:
/// queued -> prefilling -> decoding -> retired, with preemption arcing
/// prefilling/decoding back to queued (front of its class).
enum class RequestState {
  kQueued,      ///< submitted or preempted, waiting for (re)admission
  kPrefilling,  ///< admitted; prompt chunks still streaming into the cache
  kDecoding,    ///< prompt absorbed; advancing one token per tick
  kRetired,     ///< finished, capped, or finish()ed; caches released
};

/// Priority class; lower value = more urgent.  Admission sweeps high first,
/// and preemption victims are chosen lowest-priority first.
enum class Priority : std::uint8_t { kHigh = 0, kNormal = 1, kLow = 2 };
inline constexpr std::size_t kNumPriorities = 3;

/// Typed enqueue outcome.  kRejectedTooLarge: the request's tile ceiling
/// exceeds the whole pool — it could never run, even alone — and was NOT
/// queued.
enum class EnqueueResult { kAccepted, kRejectedTooLarge };

struct SchedulerOptions {
  /// Concurrently admitted requests (prefilling + decoding).  Bounds the
  /// row-stack one tick runs through the shared linears.
  std::size_t max_batch_size = 8;
  /// Capacity of the paged KV pool in context tiles (one context tile = 64
  /// tokens of KV across every layer and head).  The scheduler uses it only
  /// for the never-admittable enqueue rejection; the pool itself enforces
  /// the budget at allocation time.  0 = unbounded.
  std::size_t max_kv_tiles = 0;
  /// Shortest-job-first admission *within* a priority class, keyed by the
  /// job size passed to enqueue() (the engine passes prompt rows — prefill
  /// work dominates queueing delay in prefill-heavy traffic, and a short
  /// prompt stuck behind a 10-chunk one pays the whole prefill).  Classes
  /// still sweep high-to-low.  Default off: strict FCFS, the PR 4
  /// no-overtaking behavior.
  bool sjf_within_class = false;
  /// Anti-starvation bound for SJF: once the front of a class queue has
  /// been overtaken this many times it is admitted next, no matter what is
  /// behind it.  Every waiting request therefore reaches the front and is
  /// admitted after a bounded number of admissions — SJF reorders, it
  /// never starves.
  std::size_t sjf_max_overtakes = 16;
};

class Scheduler {
 public:
  using RequestId = std::size_t;

  /// Context tile granularity (tokens per tile).
  static constexpr std::size_t kTileRows = 64;

  explicit Scheduler(SchedulerOptions opt = {});

  /// Register a request at the tail of its class's queue.  `max_tokens` is
  /// its context ceiling (prompt + generation budget).  `job_rows` is the
  /// size key shortest-job-first admission orders by (the engine passes
  /// prompt rows; ignored under FCFS, 0 = unknown/smallest).  Returns
  /// kRejectedTooLarge — without queueing — when ceil(max_tokens / 64)
  /// exceeds max_kv_tiles: such a request could never run even with the
  /// pool to itself.  Throws only on max_tokens == 0 (a programming error,
  /// not load).
  EnqueueResult enqueue(RequestId id, std::size_t max_tokens,
                        Priority priority = Priority::kNormal,
                        std::size_t job_rows = 0);

  /// One admission sweep: high class first — strict FCFS within each class
  /// by default, shortest-job-first (with the bounded-overtake aging
  /// guarantee) when sjf_within_class is set — while the batch-size cap
  /// holds and `new_tile_hint` admissions remain.
  /// The hint is the engine's estimate of how many more requests the pool
  /// can take on (TilePool::allocatable()); it throttles thundering
  /// admissions that would immediately preempt each other.  Returns the ids
  /// admitted, in admission order.
  std::vector<RequestId> admit(std::size_t new_tile_hint = SIZE_MAX);

  /// kPrefilling -> kDecoding (the engine finished the last prompt chunk).
  void on_prefill_done(RequestId id);

  /// Preempt an admitted request: back to kQueued at the *front* of its
  /// class, so it is the first of its class readmitted.  The engine pairs
  /// this with releasing the request's tiles; the request recomputes from
  /// its prompt on readmission.
  void preempt(RequestId id);

  /// Retire a request from any live state: frees its batch slot, or removes
  /// it from its queue if it was waiting.
  void release(RequestId id);

  [[nodiscard]] RequestState state(RequestId id) const;
  [[nodiscard]] Priority priority(RequestId id) const;
  [[nodiscard]] std::size_t queued() const noexcept;
  [[nodiscard]] std::size_t admitted() const noexcept { return admitted_; }
  /// Lifetime preemption count.
  [[nodiscard]] std::size_t preemptions() const noexcept {
    return preemptions_;
  }
  [[nodiscard]] const SchedulerOptions& options() const noexcept {
    return opt_;
  }

 private:
  struct Slot {
    RequestState state = RequestState::kQueued;
    Priority priority = Priority::kNormal;
    std::size_t job_rows = 0;   ///< SJF size key (engine: prompt rows)
    std::size_t overtaken = 0;  ///< times a later, shorter job jumped this one
  };

  [[nodiscard]] Slot& checked(RequestId id);
  [[nodiscard]] const Slot& checked(RequestId id) const;

  SchedulerOptions opt_;
  std::array<std::deque<RequestId>, kNumPriorities> queues_;
  std::vector<Slot> slots_;  // indexed by id; engine ids are dense
  std::size_t admitted_ = 0;
  std::size_t preemptions_ = 0;
};

}  // namespace ftt::serve
