#pragma once
// Continuous-batching admission control: the policy half of the serving
// engine.
//
// The scheduler owns the FCFS queue and the two back-pressure knobs that
// bound what one DecodeEngine tick may run: a batch-size cap on concurrently
// admitted requests and a KV tile budget.  Admission reserves the tiles a
// request could ever need (ceil(max_tokens / 64) context tiles), so an
// admitted request is guaranteed to run to its cap without mid-flight
// eviction — the engine never has to preempt to make memory progress.
//
// The policy is strict FCFS: the sweep admits from the head of the queue and
// stops at the first request that does not fit.  No request ever overtakes
// an earlier one, which is the starvation bound the scheduler stress test
// pins down — the head of the queue is always the next admission once tiles
// drain, so every request is admitted after finitely many retirements.
//
// The scheduler is deliberately engine-agnostic bookkeeping (ids in, ids
// out, no tensors) so the policy is unit-testable without a model.

#include <cstddef>
#include <deque>
#include <vector>

namespace ftt::serve {

/// Lifecycle of a request inside the serving engine:
/// queued -> prefilling -> decoding -> retired.
enum class RequestState {
  kQueued,      ///< submitted, waiting for admission
  kPrefilling,  ///< admitted; prompt chunks still streaming into the cache
  kDecoding,    ///< prompt absorbed; advancing one token per tick
  kRetired,     ///< finished, capped, or finish()ed; caches released
};

struct SchedulerOptions {
  /// Concurrently admitted requests (prefilling + decoding).  Bounds the
  /// row-stack one tick runs through the shared linears.
  std::size_t max_batch_size = 8;
  /// KV back-pressure: total *context tiles* reserved across admitted
  /// requests (one context tile = 64 tokens of KV across every layer and
  /// head).  A request reserves ceil(max_tokens / 64) at admission and
  /// frees them at retirement.  0 = unlimited.
  std::size_t max_kv_tiles = 0;
};

class Scheduler {
 public:
  using RequestId = std::size_t;

  /// Context tile granularity (tokens per reserved tile).
  static constexpr std::size_t kTileRows = 64;

  explicit Scheduler(SchedulerOptions opt = {});

  /// Register a request at the tail of the queue.  `max_tokens` is its
  /// context ceiling (prompt + generation budget); the reservation is
  /// ceil(max_tokens / 64) tiles.  Throws if the reservation alone exceeds
  /// max_kv_tiles — such a request could never be admitted.
  void enqueue(RequestId id, std::size_t max_tokens);

  /// One FCFS admission sweep: admits from the head while both budgets
  /// hold, stops at the first request that does not fit (no overtaking).
  /// Returns the ids admitted, in queue order.
  std::vector<RequestId> admit();

  /// kPrefilling -> kDecoding (the engine finished the last prompt chunk).
  void on_prefill_done(RequestId id);

  /// Retire a request from any live state: frees its reservation, or
  /// removes it from the queue if it was never admitted.
  void release(RequestId id);

  [[nodiscard]] RequestState state(RequestId id) const;
  [[nodiscard]] std::size_t queued() const noexcept { return queue_.size(); }
  [[nodiscard]] std::size_t admitted() const noexcept { return admitted_; }
  [[nodiscard]] std::size_t tiles_reserved() const noexcept {
    return tiles_reserved_;
  }
  [[nodiscard]] const SchedulerOptions& options() const noexcept {
    return opt_;
  }

 private:
  struct Slot {
    RequestState state = RequestState::kQueued;
    std::size_t tiles = 0;
  };

  [[nodiscard]] Slot& checked(RequestId id);
  [[nodiscard]] const Slot& checked(RequestId id) const;

  SchedulerOptions opt_;
  std::deque<RequestId> queue_;
  std::vector<Slot> slots_;  // indexed by id; engine ids are dense
  std::size_t admitted_ = 0;
  std::size_t tiles_reserved_ = 0;
};

}  // namespace ftt::serve
