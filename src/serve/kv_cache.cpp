#include "serve/kv_cache.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace ftt::serve {

using numeric::Half;

KvCache::KvCache(std::size_t heads, std::size_t dim)
    : heads_(heads), dim_(dim), store_(heads) {
  if (heads == 0 || dim == 0) {
    throw std::invalid_argument("KvCache: heads and dim must be positive");
  }
}

std::size_t KvCache::tiles() const noexcept {
  return (len_ + kTileRows - 1) / kTileRows;
}

std::size_t KvCache::bytes() const noexcept {
  return tiles() * kTileRows * dim_ * heads_ * 2 * sizeof(Half);
}

void KvCache::open_tiles(std::size_t count) {
  if (count == 0) return;
  // Two-phase tile open so a mid-loop allocation failure cannot leave
  // heads with mismatched tile counts: allocate and reserve first (which
  // may throw but mutates nothing logical), then commit with noexcept
  // moves only.
  std::vector<std::unique_ptr<Half[]>> fresh_k(heads_ * count),
      fresh_v(heads_ * count);
  for (std::size_t i = 0; i < heads_ * count; ++i) {
    // make_unique value-initializes: fresh tiles are all-zero halves, the
    // padding the decode kernel's ragged-tail checksums assume.
    fresh_k[i] = std::make_unique<Half[]>(kTileRows * dim_);
    fresh_v[i] = std::make_unique<Half[]>(kTileRows * dim_);
  }
  // Geometric reservation (reserve(n+count) would pin capacity to exact fit
  // and reallocate on every tile open); push_back below cannot throw once
  // capacity is in place.
  const auto grow = [count](auto& vec) {
    if (vec.size() + count > vec.capacity()) {
      vec.reserve(std::max<std::size_t>({4, vec.capacity() * 2,
                                         vec.size() + count}));
    }
  };
  for (HeadStore& hs : store_) {
    grow(hs.k_tiles);
    grow(hs.v_tiles);
    grow(hs.k_ptrs);
    grow(hs.v_ptrs);
  }
  for (std::size_t t = 0; t < count; ++t) {
    for (std::size_t h = 0; h < heads_; ++h) {
      HeadStore& hs = store_[h];
      hs.k_tiles.push_back(std::move(fresh_k[t * heads_ + h]));
      hs.v_tiles.push_back(std::move(fresh_v[t * heads_ + h]));
      hs.k_ptrs.push_back(hs.k_tiles.back().get());
      hs.v_ptrs.push_back(hs.v_tiles.back().get());
    }
  }
}

void KvCache::append(std::span<const Half> k, std::span<const Half> v) {
  append_chunk(k, v, 1);
}

void KvCache::append_chunk(std::span<const Half> k, std::span<const Half> v,
                           std::size_t rows) {
  if (rows == 0) {
    throw std::invalid_argument("KvCache::append_chunk: rows must be >= 1");
  }
  if (k.size() != rows * heads_ * dim_ || v.size() != rows * heads_ * dim_) {
    throw std::invalid_argument(
        "KvCache::append_chunk: expected rows*heads*dim values");
  }
  // Batch all tile opens up front: one allocation round per chunk, and the
  // copy loop below cannot throw.
  const std::size_t have = tiles() * kTileRows - len_;
  if (rows > have) {
    open_tiles((rows - have + kTileRows - 1) / kTileRows);
  }
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t tile = (len_ + r) / kTileRows;
    const std::size_t row = (len_ + r) % kTileRows;
    for (std::size_t h = 0; h < heads_; ++h) {
      HeadStore& hs = store_[h];
      std::memcpy(hs.k_tiles[tile].get() + row * dim_,
                  k.data() + (r * heads_ + h) * dim_, dim_ * sizeof(Half));
      std::memcpy(hs.v_tiles[tile].get() + row * dim_,
                  v.data() + (r * heads_ + h) * dim_, dim_ * sizeof(Half));
    }
  }
  len_ += rows;
}

core::KvSlice KvCache::slice(std::size_t head) const {
  if (head >= heads_) {
    throw std::out_of_range("KvCache::slice: head out of range");
  }
  const HeadStore& hs = store_[head];
  return core::KvSlice{hs.k_ptrs.data(), hs.v_ptrs.data(), len_, dim_};
}

}  // namespace ftt::serve
