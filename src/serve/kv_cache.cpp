#include "serve/kv_cache.hpp"

#include <algorithm>
#include <cstring>
#include <new>
#include <stdexcept>

#include "numeric/gemm_simd.hpp"
#include "tensor/tensor.hpp"

namespace ftt::serve {

using numeric::Half;
using tensor::MatrixH;
using tensor::MatrixHView;

namespace detail {

void encode_sealed_tile(const Half* k_tile, const Half* v_tile,
                        std::size_t dim, int s, Half* out) {
  constexpr std::size_t kRows = KvCache::kTileRows;
  const auto su = static_cast<std::size_t>(s);
  const std::size_t kcn = su * dim;     // one K row-checksum block
  const std::size_t vcn = kRows * su;   // one V column-checksum block
  // Widen each operand once; both encodings of an operand consume the same
  // fp32 image.
  std::vector<float> kf(kRows * dim), vf(kRows * dim);
  tensor::widen(MatrixHView{k_tile, kRows, dim, dim}, kf.data());
  tensor::widen(MatrixHView{v_tile, kRows, dim, dim}, vf.data());
  const MatrixH kc1 = abft::StridedAbft::encode_rows_strided_widened(
      kf.data(), kRows, dim, s, false, nullptr);
  const MatrixH kc2 = abft::StridedAbft::encode_rows_strided_widened(
      kf.data(), kRows, dim, s, true, nullptr);
  const MatrixH vc1 = abft::StridedAbft::encode_cols_strided_widened(
      vf.data(), kRows, dim, s, false, nullptr);
  const MatrixH vc2 = abft::StridedAbft::encode_cols_strided_widened(
      vf.data(), kRows, dim, s, true, nullptr);
  std::memcpy(out, kc1.data(), kcn * sizeof(Half));
  std::memcpy(out + kcn, kc2.data(), kcn * sizeof(Half));
  std::memcpy(out + 2 * kcn, vc1.data(), vcn * sizeof(Half));
  std::memcpy(out + 2 * kcn + vcn, vc2.data(), vcn * sizeof(Half));
}

std::size_t f32_image_floats(std::size_t dim, int s) noexcept {
  constexpr std::size_t kRows = KvCache::kTileRows;
  const auto su = static_cast<std::size_t>(s);
  return 2 * kRows * dim + 2 * su * dim + 2 * kRows * su;
}

void widen_sealed_tile(const Half* k_tile, const Half* v_tile,
                       const Half* enc_block, std::size_t dim, int s,
                       float* out) {
  constexpr std::size_t kRows = KvCache::kTileRows;
  const auto su = static_cast<std::size_t>(s);
  const std::size_t kcn = su * dim;
  const std::size_t vcn = kRows * su;
  // Scratch for the blocks that need a transpose after widening (K-side
  // operands go k-major so the decode GEMMs read them with zero packing).
  std::vector<float> tmp(kRows * dim);
  float* kt = out;                       // K^T, dim x kRows
  float* v = out + dim * kRows;          // V,   kRows x dim
  float* kc1t = v + kRows * dim;         // Kc1^T, dim x su
  float* kc2t = kc1t + dim * su;         // Kc2^T, dim x su
  float* vc1 = kc2t + dim * su;          // Vc1, kRows x su
  float* vc2 = vc1 + kRows * su;         // Vc2, kRows x su
  numeric::halves_to_floats(k_tile, tmp.data(), kRows * dim);
  numeric::transpose_f32(tmp.data(), kRows, dim, kt);
  numeric::halves_to_floats(v_tile, v, kRows * dim);
  numeric::halves_to_floats(enc_block, tmp.data(), kcn);
  numeric::transpose_f32(tmp.data(), su, dim, kc1t);
  numeric::halves_to_floats(enc_block + kcn, tmp.data(), kcn);
  numeric::transpose_f32(tmp.data(), su, dim, kc2t);
  numeric::halves_to_floats(enc_block + 2 * kcn, vc1, vcn);
  numeric::halves_to_floats(enc_block + 2 * kcn + vcn, vc2, vcn);
}

}  // namespace detail

namespace testing {

std::size_t& seal_alloc_failures() noexcept {
  thread_local std::size_t count = 0;
  return count;
}

}  // namespace testing

KvCache::KvCache(std::size_t heads, std::size_t dim, int enc_stride,
                 bool fp32_images)
    : heads_(heads), dim_(dim), enc_stride_(enc_stride),
      fp32_images_(fp32_images), store_(heads) {
  if (heads == 0 || dim == 0) {
    throw std::invalid_argument("KvCache: heads and dim must be positive");
  }
  // A stride that cannot tile the checksum footprint (or an explicit <= 0)
  // disables memoization rather than rejecting the cache: the kernel then
  // encodes fresh per call, exactly the pre-memo behavior.
  if (enc_stride <= 0 ||
      kTileRows % static_cast<std::size_t>(enc_stride) != 0 ||
      dim % static_cast<std::size_t>(enc_stride) != 0) {
    enc_stride_ = 0;
    // The fp32 image embeds the widened checksum blocks, so it requires the
    // encoding memo.
    fp32_images_ = false;
  }
}

std::size_t KvCache::tiles() const noexcept {
  return (len_ + kTileRows - 1) / kTileRows;
}

std::size_t KvCache::bytes() const noexcept {
  const auto su = static_cast<std::size_t>(enc_stride_);
  const std::size_t tile_pair = kTileRows * dim_ * 2;
  const std::size_t enc_block = 2 * su * dim_ + 2 * kTileRows * su;
  std::size_t b = (tiles() * tile_pair * heads_ +
                   enc_blocks_sealed_ * enc_block) *
                  sizeof(Half);
  if (fp32_images_) {
    b += f32_blocks_sealed_ * detail::f32_image_floats(dim_, enc_stride_) *
         sizeof(float);
  }
  return b;
}

void KvCache::open_tiles(std::size_t count) {
  if (count == 0) return;
  // Two-phase tile open so a mid-loop allocation failure cannot leave
  // heads with mismatched tile counts: allocate and reserve first (which
  // may throw but mutates nothing logical), then commit with noexcept
  // moves only.
  std::vector<std::unique_ptr<Half[]>> fresh_k(heads_ * count),
      fresh_v(heads_ * count);
  for (std::size_t i = 0; i < heads_ * count; ++i) {
    // make_unique value-initializes: fresh tiles are all-zero halves, the
    // padding the decode kernel's ragged-tail checksums assume.
    fresh_k[i] = std::make_unique<Half[]>(kTileRows * dim_);
    fresh_v[i] = std::make_unique<Half[]>(kTileRows * dim_);
  }
  // Geometric reservation (reserve(n+count) would pin capacity to exact fit
  // and reallocate on every tile open); push_back below cannot throw once
  // capacity is in place.
  const auto grow = [count](auto& vec) {
    if (vec.size() + count > vec.capacity()) {
      vec.reserve(std::max<std::size_t>({4, vec.capacity() * 2,
                                         vec.size() + count}));
    }
  };
  for (HeadStore& hs : store_) {
    grow(hs.k_tiles);
    grow(hs.v_tiles);
    grow(hs.k_ptrs);
    grow(hs.v_ptrs);
    grow(hs.enc_blocks);
    grow(hs.kc1_ptrs);
    grow(hs.kc2_ptrs);
    grow(hs.vc1_ptrs);
    grow(hs.vc2_ptrs);
    if (fp32_images_) {
      grow(hs.img_blocks);
      grow(hs.img_ptrs);
    }
  }
  for (std::size_t t = 0; t < count; ++t) {
    for (std::size_t h = 0; h < heads_; ++h) {
      HeadStore& hs = store_[h];
      hs.k_tiles.push_back(std::move(fresh_k[t * heads_ + h]));
      hs.v_tiles.push_back(std::move(fresh_v[t * heads_ + h]));
      hs.k_ptrs.push_back(hs.k_tiles.back().get());
      hs.v_ptrs.push_back(hs.v_tiles.back().get());
      hs.enc_blocks.push_back(nullptr);  // sealed later, when the tile fills
      hs.kc1_ptrs.push_back(nullptr);
      hs.kc2_ptrs.push_back(nullptr);
      hs.vc1_ptrs.push_back(nullptr);
      hs.vc2_ptrs.push_back(nullptr);
      if (fp32_images_) {
        hs.img_blocks.push_back(nullptr);
        hs.img_ptrs.push_back(nullptr);
      }
    }
  }
}

void KvCache::seal_tiles(std::size_t first, std::size_t count) {
  if (enc_stride_ == 0) return;  // memoization disabled
  const auto su = static_cast<std::size_t>(enc_stride_);
  const std::size_t kcn = su * dim_;        // one K row-checksum block
  const std::size_t vcn = kTileRows * su;   // one V column-checksum block
  for (std::size_t t = first; t < first + count; ++t) {
    for (std::size_t h = 0; h < heads_; ++h) {
      HeadStore& hs = store_[h];
      if (testing::seal_alloc_failures() > 0) {
        // Injected allocation failure: behave exactly like a real
        // exhausted-heap make_unique below.
        --testing::seal_alloc_failures();
        throw std::bad_alloc();
      }
      auto block = std::make_unique<Half[]>(2 * kcn + 2 * vcn);
      Half* p = block.get();
      detail::encode_sealed_tile(hs.k_tiles[t].get(), hs.v_tiles[t].get(),
                                 dim_, enc_stride_, p);
      hs.kc1_ptrs[t] = p;
      hs.kc2_ptrs[t] = p + kcn;
      hs.vc1_ptrs[t] = p + 2 * kcn;
      hs.vc2_ptrs[t] = p + 2 * kcn + vcn;
      hs.enc_blocks[t] = std::move(block);
      ++enc_blocks_sealed_;
      if (fp32_images_) {
        // Image allocation failure degrades the same way a failed encode
        // memo does: the entry stays null and decode widens per call.
        auto img = std::make_unique<float[]>(
            detail::f32_image_floats(dim_, enc_stride_));
        detail::widen_sealed_tile(hs.k_tiles[t].get(), hs.v_tiles[t].get(), p,
                                  dim_, enc_stride_, img.get());
        hs.img_ptrs[t] = img.get();
        hs.img_blocks[t] = std::move(img);
        ++f32_blocks_sealed_;
      }
    }
  }
}

void KvCache::append(std::span<const Half> k, std::span<const Half> v) {
  append_chunk(k, v, 1);
}

void KvCache::append_chunk(std::span<const Half> k, std::span<const Half> v,
                           std::size_t rows) {
  if (rows == 0) {
    throw std::invalid_argument("KvCache::append_chunk: rows must be >= 1");
  }
  if (k.size() != rows * heads_ * dim_ || v.size() != rows * heads_ * dim_) {
    throw std::invalid_argument(
        "KvCache::append_chunk: expected rows*heads*dim values");
  }
  // Batch all tile opens up front: one allocation round per chunk, and the
  // copy loop below cannot throw.
  const std::size_t have = tiles() * kTileRows - len_;
  if (rows > have) {
    open_tiles((rows - have + kTileRows - 1) / kTileRows);
  }
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t tile = (len_ + r) / kTileRows;
    const std::size_t row = (len_ + r) % kTileRows;
    for (std::size_t h = 0; h < heads_; ++h) {
      HeadStore& hs = store_[h];
      std::memcpy(hs.k_tiles[tile].get() + row * dim_,
                  k.data() + (r * heads_ + h) * dim_, dim_ * sizeof(Half));
      std::memcpy(hs.v_tiles[tile].get() + row * dim_,
                  v.data() + (r * heads_ + h) * dim_, dim_ * sizeof(Half));
    }
  }
  // Memoize the checksum encodings of every tile this chunk sealed — once,
  // ever: full tiles are immutable from here on.  The append itself is
  // committed at this point; if the memo's allocations fail, the affected
  // entries simply stay null and the kernel falls back to fresh per-call
  // encodes — an append must never appear to fail after its rows landed.
  const std::size_t sealed_before = len_ / kTileRows;
  len_ += rows;
  const std::size_t sealed_after = len_ / kTileRows;
  if (sealed_after > sealed_before) {
    try {
      seal_tiles(sealed_before, sealed_after - sealed_before);
    } catch (const std::bad_alloc&) {
      // partial memo: remaining entries null, decode stays correct
    }
  }
}

void KvCache::truncate(std::size_t tokens) {
  if (tokens > len_) {
    throw std::invalid_argument(
        "KvCache::truncate: cannot truncate beyond the current length");
  }
  if (tokens == len_) return;
  const std::size_t had_tiles = tiles();
  // Zero every rolled-back row: later appends rely on rows past the valid
  // count being zero (the ragged-tail padding the checksums assume).
  for (std::size_t r = tokens; r < len_; ++r) {
    const std::size_t tile = r / kTileRows;
    const std::size_t row = r % kTileRows;
    for (HeadStore& hs : store_) {
      std::fill_n(hs.k_tiles[tile].get() + row * dim_, dim_, Half{});
      std::fill_n(hs.v_tiles[tile].get() + row * dim_, dim_, Half{});
    }
  }
  // Tiles the truncation re-opens lose their sealed encodings: the memo
  // described the full tile, and a partially-valid tile must fall back to
  // fresh per-call encodes until an append re-fills (and re-seals) it.
  const std::size_t keep_full = tokens / kTileRows;
  for (std::size_t t = keep_full; t < had_tiles; ++t) {
    for (HeadStore& hs : store_) {
      if (hs.enc_blocks[t] != nullptr) {
        hs.enc_blocks[t].reset();
        hs.kc1_ptrs[t] = nullptr;
        hs.kc2_ptrs[t] = nullptr;
        hs.vc1_ptrs[t] = nullptr;
        hs.vc2_ptrs[t] = nullptr;
        --enc_blocks_sealed_;
      }
      if (fp32_images_ && hs.img_blocks[t] != nullptr) {
        hs.img_blocks[t].reset();
        hs.img_ptrs[t] = nullptr;
        --f32_blocks_sealed_;
      }
    }
  }
  len_ = tokens;
}

core::KvSlice KvCache::slice(std::size_t head) const {
  if (head >= heads_) {
    throw std::out_of_range("KvCache::slice: head out of range");
  }
  const HeadStore& hs = store_[head];
  return core::KvSlice{hs.k_ptrs.data(),   hs.v_ptrs.data(),
                       len_,               dim_,
                       hs.kc1_ptrs.data(), hs.kc2_ptrs.data(),
                       hs.vc1_ptrs.data(), hs.vc2_ptrs.data(),
                       enc_stride_,
                       fp32_images_ ? hs.img_ptrs.data() : nullptr};
}

}  // namespace ftt::serve
