#include "serve/kv_cache.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace ftt::serve {

using numeric::Half;

KvCache::KvCache(std::size_t heads, std::size_t dim)
    : heads_(heads), dim_(dim), store_(heads) {
  if (heads == 0 || dim == 0) {
    throw std::invalid_argument("KvCache: heads and dim must be positive");
  }
}

std::size_t KvCache::tiles() const noexcept {
  return (len_ + kTileRows - 1) / kTileRows;
}

std::size_t KvCache::bytes() const noexcept {
  return tiles() * kTileRows * dim_ * heads_ * 2 * sizeof(Half);
}

void KvCache::append(std::span<const Half> k, std::span<const Half> v) {
  if (k.size() != heads_ * dim_ || v.size() != heads_ * dim_) {
    throw std::invalid_argument("KvCache::append: expected heads*dim values");
  }
  const std::size_t row = len_ % kTileRows;
  if (row == 0) {
    // Two-phase tile open so a mid-loop allocation failure cannot leave
    // heads with mismatched tile counts: allocate and reserve first (which
    // may throw but mutates nothing logical), then commit with noexcept
    // moves only.
    std::vector<std::unique_ptr<Half[]>> fresh_k(heads_), fresh_v(heads_);
    for (std::size_t h = 0; h < heads_; ++h) {
      // make_unique value-initializes: fresh tiles are all-zero halves, the
      // padding the decode kernel's ragged-tail checksums assume.
      fresh_k[h] = std::make_unique<Half[]>(kTileRows * dim_);
      fresh_v[h] = std::make_unique<Half[]>(kTileRows * dim_);
    }
    // Geometric reservation (reserve(n+1) would pin capacity to exact fit
    // and reallocate on every tile open); push_back below cannot throw once
    // capacity is in place.
    const auto grow = [](auto& vec) {
      if (vec.size() == vec.capacity()) {
        vec.reserve(std::max<std::size_t>(4, vec.capacity() * 2));
      }
    };
    for (HeadStore& hs : store_) {
      grow(hs.k_tiles);
      grow(hs.v_tiles);
      grow(hs.k_ptrs);
      grow(hs.v_ptrs);
    }
    for (std::size_t h = 0; h < heads_; ++h) {
      HeadStore& hs = store_[h];
      hs.k_tiles.push_back(std::move(fresh_k[h]));
      hs.v_tiles.push_back(std::move(fresh_v[h]));
      hs.k_ptrs.push_back(hs.k_tiles.back().get());
      hs.v_ptrs.push_back(hs.v_tiles.back().get());
    }
  }
  for (std::size_t h = 0; h < heads_; ++h) {
    HeadStore& hs = store_[h];
    std::memcpy(hs.k_tiles.back().get() + row * dim_, k.data() + h * dim_,
                dim_ * sizeof(Half));
    std::memcpy(hs.v_tiles.back().get() + row * dim_, v.data() + h * dim_,
                dim_ * sizeof(Half));
  }
  ++len_;
}

core::KvSlice KvCache::slice(std::size_t head) const {
  if (head >= heads_) {
    throw std::out_of_range("KvCache::slice: head out of range");
  }
  const HeadStore& hs = store_[head];
  return core::KvSlice{hs.k_ptrs.data(), hs.v_ptrs.data(), len_, dim_};
}

}  // namespace ftt::serve
