#include "serve/kv_cache.hpp"

#include <algorithm>
#include <cstring>
#include <new>
#include <stdexcept>

#include "abft/int8_checksums.hpp"
#include "numeric/gemm_simd.hpp"
#include "numeric/int8_simd.hpp"
#include "tensor/tensor.hpp"

namespace ftt::serve {

using numeric::Half;
using tensor::MatrixH;
using tensor::MatrixHView;

namespace detail {

void encode_sealed_tile(const Half* k_tile, const Half* v_tile,
                        std::size_t dim, int s, Half* out) {
  constexpr std::size_t kRows = KvCache::kTileRows;
  const auto su = static_cast<std::size_t>(s);
  const std::size_t kcn = su * dim;     // one K row-checksum block
  const std::size_t vcn = kRows * su;   // one V column-checksum block
  // Single-pass seal: the fp16-operand encoders widen 8 lanes at a time in
  // register, so the 2x fp32 staging copies the old path materialised are
  // gone.  Bit-identical: fp16 -> fp32 widening is exact and the per-class
  // accumulation order (ascending l) is unchanged.
  const MatrixH kc1 = abft::StridedAbft::encode_rows_strided_h(
      k_tile, kRows, dim, s, false, nullptr);
  const MatrixH kc2 = abft::StridedAbft::encode_rows_strided_h(
      k_tile, kRows, dim, s, true, nullptr);
  const MatrixH vc1 = abft::StridedAbft::encode_cols_strided_h(
      v_tile, kRows, dim, s, false, nullptr);
  const MatrixH vc2 = abft::StridedAbft::encode_cols_strided_h(
      v_tile, kRows, dim, s, true, nullptr);
  std::memcpy(out, kc1.data(), kcn * sizeof(Half));
  std::memcpy(out + kcn, kc2.data(), kcn * sizeof(Half));
  std::memcpy(out + 2 * kcn, vc1.data(), vcn * sizeof(Half));
  std::memcpy(out + 2 * kcn + vcn, vc2.data(), vcn * sizeof(Half));
}

std::size_t f32_image_floats(std::size_t dim, int s) noexcept {
  constexpr std::size_t kRows = KvCache::kTileRows;
  const auto su = static_cast<std::size_t>(s);
  return 2 * kRows * dim + 2 * su * dim + 2 * kRows * su;
}

void widen_sealed_tile(const Half* k_tile, const Half* v_tile,
                       const Half* enc_block, std::size_t dim, int s,
                       float* out) {
  constexpr std::size_t kRows = KvCache::kTileRows;
  const auto su = static_cast<std::size_t>(s);
  const std::size_t kcn = su * dim;
  const std::size_t vcn = kRows * su;
  // Scratch for the blocks that need a transpose after widening (K-side
  // operands go k-major so the decode GEMMs read them with zero packing).
  std::vector<float> tmp(kRows * dim);
  float* kt = out;                       // K^T, dim x kRows
  float* v = out + dim * kRows;          // V,   kRows x dim
  float* kc1t = v + kRows * dim;         // Kc1^T, dim x su
  float* kc2t = kc1t + dim * su;         // Kc2^T, dim x su
  float* vc1 = kc2t + dim * su;          // Vc1, kRows x su
  float* vc2 = vc1 + kRows * su;         // Vc2, kRows x su
  numeric::halves_to_floats(k_tile, tmp.data(), kRows * dim);
  numeric::transpose_f32(tmp.data(), kRows, dim, kt);
  numeric::halves_to_floats(v_tile, v, kRows * dim);
  numeric::halves_to_floats(enc_block, tmp.data(), kcn);
  numeric::transpose_f32(tmp.data(), su, dim, kc1t);
  numeric::halves_to_floats(enc_block + kcn, tmp.data(), kcn);
  numeric::transpose_f32(tmp.data(), su, dim, kc2t);
  numeric::halves_to_floats(enc_block + 2 * kcn, vc1, vcn);
  numeric::halves_to_floats(enc_block + 2 * kcn + vcn, vc2, vcn);
}

I8TileLayout i8_tile_layout(std::size_t dim, int s) noexcept {
  constexpr std::size_t kRows = KvCache::kTileRows;
  const auto su = static_cast<std::size_t>(s);
  I8TileLayout L;
  L.dim = dim;
  L.s = su;
  L.payload = kRows * dim;
  L.kcn = su * dim;        // henc K block: s x dim logical, stored dim x s
  L.kcni = su * kRows;     // ienc K block: row encode of the stored K^T
  L.vcn = kRows * su;
  const std::size_t ienc_n = 2 * L.kcni + 2 * L.vcn;
  const std::size_t henc_n = 2 * L.kcn + 2 * L.vcn;
  L.scale_off = 0;
  L.ienc_off = L.scale_off + 6 * sizeof(float);
  L.k_off = L.ienc_off + ienc_n * sizeof(std::int32_t);
  L.v_off = L.k_off + L.payload;
  L.henc_off = L.v_off + L.payload;  // even: payload offsets differ by 2*64*dim
  L.bytes = (L.henc_off + henc_n * sizeof(numeric::Half) + 3) & ~std::size_t{3};
  return L;
}

namespace {

// Half transpose (pure data movement, like numeric::transpose_f32): packs
// the K-side henc blocks k-major at seal time so decode widens them
// straight into the checksum GEMM operand, no per-tile pack.
void transpose_h(const Half* in, std::size_t rows, std::size_t cols,
                 Half* out) noexcept {
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) out[c * rows + r] = in[r * cols + c];
  }
}

}  // namespace

std::size_t f16t_image_halves(std::size_t dim, int s) noexcept {
  constexpr std::size_t kRows = KvCache::kTileRows;
  const auto su = static_cast<std::size_t>(s);
  return kRows * dim + 2 * su * dim;
}

void build_f16t_image(const Half* k_tile, const Half* enc_block,
                      std::size_t dim, int s, Half* out) {
  constexpr std::size_t kRows = KvCache::kTileRows;
  const auto su = static_cast<std::size_t>(s);
  const std::size_t kcn = su * dim;
  // Pure Half-bit transposes: the stored K rows land k-major for the fused
  // score GEMM, the sealed K checksum blocks land k-major for the checksum
  // GEMMs.  No arithmetic, so the image carries exactly the slab's bits.
  Half* kt = out;                 // K^T, dim x kRows
  Half* kc1t = out + dim * kRows; // Kc1^T, dim x su
  Half* kc2t = kc1t + dim * su;   // Kc2^T, dim x su
  transpose_h(k_tile, kRows, dim, kt);
  transpose_h(enc_block, su, dim, kc1t);
  transpose_h(enc_block + kcn, su, dim, kc2t);
}

void quantize_sealed_tile(const Half* k_tile, const Half* v_tile,
                          std::size_t dim, int s, std::uint8_t* block) {
  constexpr std::size_t kRows = KvCache::kTileRows;
  const I8TileLayout L = i8_tile_layout(dim, s);
  const std::size_t n = kRows * dim;
  std::vector<float> kf(n), vf(n), ktf(n);
  tensor::widen(MatrixHView{k_tile, kRows, dim, dim}, kf.data());
  tensor::widen(MatrixHView{v_tile, kRows, dim, dim}, vf.data());
  const numeric::I8Scale ks = numeric::choose_i8_scale(
      numeric::amax_f32(kf.data(), n));
  const numeric::I8Scale vs = numeric::choose_i8_scale(
      numeric::amax_f32(vf.data(), n));
  // K quantizes through its k-major (transposed) image: the stored payload
  // is K^T, the layout the fused score GEMM streams directly.  V stays
  // row-major for GEMM II's axpy.
  std::int8_t* kq = i8_k(block, L);
  std::int8_t* vq = i8_v(block, L);
  numeric::transpose_f32(kf.data(), kRows, dim, ktf.data());
  numeric::quantize_f32_to_i8(ktf.data(), kq, n, ks.inv_scale);
  numeric::quantize_f32_to_i8(vf.data(), vq, n, vs.inv_scale);
  // The exactly-dequantized image — the fp32 operands every decode call
  // over this tile will reconstruct (scale is a power of two: exponent
  // shift only, no rounding).  kf is rebuilt row-major (logical K) for the
  // encoders below.
  numeric::dequantize_i8_to_f32(kq, ktf.data(), n, ks.scale);
  numeric::transpose_f32(ktf.data(), dim, kRows, kf.data());
  numeric::dequantize_i8_to_f32(vq, vf.data(), n, vs.scale);
  // Half encodings of that image: bit-equal to the fresh per-call encode,
  // so the decode kernel's memo path and injector-forced fresh path agree
  // bit for bit, exactly as they do for fp16 tiles.  The K-side blocks are
  // stored transposed (dim x s) like the fp32 image's Kc^T blocks.
  const MatrixH kc1 = abft::StridedAbft::encode_rows_strided_widened(
      kf.data(), kRows, dim, s, false, nullptr);
  const MatrixH kc2 = abft::StridedAbft::encode_rows_strided_widened(
      kf.data(), kRows, dim, s, true, nullptr);
  const MatrixH vc1 = abft::StridedAbft::encode_cols_strided_widened(
      vf.data(), kRows, dim, s, false, nullptr);
  const MatrixH vc2 = abft::StridedAbft::encode_cols_strided_widened(
      vf.data(), kRows, dim, s, true, nullptr);
  Half* he = i8_henc(block, L);
  const auto su = static_cast<std::size_t>(s);
  transpose_h(kc1.data(), su, dim, he);
  transpose_h(kc2.data(), su, dim, he + L.kcn);
  std::memcpy(he + 2 * L.kcn, vc1.data(), L.vcn * sizeof(Half));
  std::memcpy(he + 2 * L.kcn + L.vcn, vc2.data(), L.vcn * sizeof(Half));
  // Exact int32 checksums of the payload *as stored* (K's run over the
  // k-major array) — the at-rest redundancy the scrubber verifies by
  // equality.
  std::int32_t* ie = i8_ienc(block, L);
  abft::encode_rows_i8(kq, dim, kRows, s, false, ie);
  abft::encode_rows_i8(kq, dim, kRows, s, true, ie + L.kcni);
  abft::encode_cols_i8(vq, kRows, dim, s, false, ie + 2 * L.kcni);
  abft::encode_cols_i8(vq, kRows, dim, s, true, ie + 2 * L.kcni + L.vcn);
  float* sc = i8_scales(block, L);
  sc[0] = sc[1] = sc[2] = ks.scale;
  sc[3] = sc[4] = sc[5] = vs.scale;
}

namespace {

// Bitwise 2-of-3 majority vote over one operand's TMR scale copies.
// Returns false on a three-way disagreement (>= 2 scale faults).
bool vote_scale(float* sc, bool& repaired) noexcept {
  std::uint32_t b[3];
  std::memcpy(&b[0], &sc[0], sizeof(float));
  std::memcpy(&b[1], &sc[1], sizeof(float));
  std::memcpy(&b[2], &sc[2], sizeof(float));
  std::uint32_t win;
  if (b[0] == b[1] || b[0] == b[2]) {
    win = b[0];
  } else if (b[1] == b[2]) {
    win = b[1];
  } else {
    return false;
  }
  for (int i = 0; i < 3; ++i) {
    if (b[i] != win) {
      std::memcpy(&sc[i], &win, sizeof(float));
      repaired = true;
    }
  }
  return true;
}

}  // namespace

I8ScrubResult scrub_i8_tile(std::uint8_t* block, std::size_t dim, int s) {
  constexpr std::size_t kRows = KvCache::kTileRows;
  const I8TileLayout L = i8_tile_layout(dim, s);
  bool repaired = false;
  // 1. Scales first: everything downstream (the Half-encoding recompute)
  //    reads them, and they sit outside both checksum families.
  float* sc = i8_scales(block, L);
  if (!vote_scale(sc, repaired) || !vote_scale(sc + 3, repaired)) {
    return I8ScrubResult::kUnrepairable;
  }
  // 2. Exact integer verify/correct of both payloads against the int32
  //    encodings — equality, zero threshold, exact single-fault repair.
  std::int8_t* kq = i8_k(block, L);
  std::int8_t* vq = i8_v(block, L);
  std::int32_t* ie = i8_ienc(block, L);
  const abft::I8VerifyReport kr = abft::verify_correct_rows_i8(
      kq, dim, kRows, s, ie, ie + L.kcni);
  const abft::I8VerifyReport vr = abft::verify_correct_cols_i8(
      vq, kRows, dim, s, ie + 2 * L.kcni, ie + 2 * L.kcni + L.vcn);
  if (kr.unrepairable || vr.unrepairable) return I8ScrubResult::kUnrepairable;
  repaired = repaired || !kr.clean() || !vr.clean();
  // 3. The Half encodings are derived state: recompute them from the (now
  //    verified) payload and scales, and rewrite on any mismatch — this
  //    catches flips in the henc region itself and completes payload/scale
  //    repairs in one pass.  The stored K payload is k-major, so it
  //    transposes back to logical rows for the encoders, and the fresh
  //    K-side blocks transpose into the stored (dim x s) orientation.
  const std::size_t n = kRows * dim;
  const auto su = static_cast<std::size_t>(s);
  std::vector<float> kf(n), vf(n), ktf(n);
  numeric::dequantize_i8_to_f32(kq, ktf.data(), n, sc[0]);
  numeric::transpose_f32(ktf.data(), dim, kRows, kf.data());
  numeric::dequantize_i8_to_f32(vq, vf.data(), n, sc[3]);
  const MatrixH kc1 = abft::StridedAbft::encode_rows_strided_widened(
      kf.data(), kRows, dim, s, false, nullptr);
  const MatrixH kc2 = abft::StridedAbft::encode_rows_strided_widened(
      kf.data(), kRows, dim, s, true, nullptr);
  const MatrixH vc1 = abft::StridedAbft::encode_cols_strided_widened(
      vf.data(), kRows, dim, s, false, nullptr);
  const MatrixH vc2 = abft::StridedAbft::encode_cols_strided_widened(
      vf.data(), kRows, dim, s, true, nullptr);
  std::vector<Half> fresh(2 * L.kcn + 2 * L.vcn);
  transpose_h(kc1.data(), su, dim, fresh.data());
  transpose_h(kc2.data(), su, dim, fresh.data() + L.kcn);
  std::memcpy(fresh.data() + 2 * L.kcn, vc1.data(), L.vcn * sizeof(Half));
  std::memcpy(fresh.data() + 2 * L.kcn + L.vcn, vc2.data(),
              L.vcn * sizeof(Half));
  Half* he = i8_henc(block, L);
  if (std::memcmp(fresh.data(), he, fresh.size() * sizeof(Half)) != 0) {
    std::memcpy(he, fresh.data(), fresh.size() * sizeof(Half));
    repaired = true;
  }
  return repaired ? I8ScrubResult::kRepaired : I8ScrubResult::kClean;
}

}  // namespace detail

namespace testing {

std::size_t& seal_alloc_failures() noexcept {
  thread_local std::size_t count = 0;
  return count;
}

}  // namespace testing

KvCache::KvCache(std::size_t heads, std::size_t dim, int enc_stride,
                 core::ImagePolicy images, bool kv_quant)
    : heads_(heads), dim_(dim), enc_stride_(enc_stride),
      images_(images), kv_quant_(kv_quant), store_(heads) {
  if (heads == 0 || dim == 0) {
    throw std::invalid_argument("KvCache: heads and dim must be positive");
  }
  if (images != core::ImagePolicy::kNone && kv_quant) {
    // An image is the fp16 fast path (it memoizes the fp16 tile in decode
    // operand order); a quantized tile decodes from its own payload + Half
    // encodings, so the combination would be silently meaningless — reject.
    throw std::invalid_argument(
        "KvCache: kv_quant and a sealed-tile image policy are mutually "
        "exclusive");
  }
  // A stride that cannot tile the checksum footprint (or an explicit <= 0)
  // disables memoization rather than rejecting the cache: the kernel then
  // encodes fresh per call, exactly the pre-memo behavior.
  if (enc_stride <= 0 ||
      kTileRows % static_cast<std::size_t>(enc_stride) != 0 ||
      dim % static_cast<std::size_t>(enc_stride) != 0) {
    enc_stride_ = 0;
    // Both image layouts embed the sealed checksum blocks, so they require
    // the encoding memo.
    images_ = core::ImagePolicy::kNone;
    // So does the int8 tile format (its checksum shapes are the stride's).
    kv_quant_ = false;
  }
}

std::size_t KvCache::tiles() const noexcept {
  return (len_ + kTileRows - 1) / kTileRows;
}

std::size_t KvCache::bytes() const noexcept {
  const auto su = static_cast<std::size_t>(enc_stride_);
  const std::size_t tile_pair = kTileRows * dim_ * 2;
  const std::size_t enc_block = 2 * su * dim_ + 2 * kTileRows * su;
  std::size_t b = (tiles() * tile_pair * heads_ +
                   enc_blocks_sealed_ * enc_block) *
                  sizeof(Half);
  if (images_ == core::ImagePolicy::kF32) {
    b += f32_blocks_sealed_ * detail::f32_image_floats(dim_, enc_stride_) *
         sizeof(float);
  } else if (images_ == core::ImagePolicy::kF16T) {
    b += f16t_blocks_sealed_ * detail::f16t_image_halves(dim_, enc_stride_) *
         sizeof(Half);
  }
  if (kv_quant_) {
    b += i8_blocks_sealed_ * detail::i8_tile_layout(dim_, enc_stride_).bytes;
  }
  return b;
}

void KvCache::open_tiles(std::size_t count) {
  if (count == 0) return;
  // Two-phase tile open so a mid-loop allocation failure cannot leave
  // heads with mismatched tile counts: allocate and reserve first (which
  // may throw but mutates nothing logical), then commit with noexcept
  // moves only.
  std::vector<std::unique_ptr<Half[]>> fresh_k(heads_ * count),
      fresh_v(heads_ * count);
  for (std::size_t i = 0; i < heads_ * count; ++i) {
    // make_unique value-initializes: fresh tiles are all-zero halves, the
    // padding the decode kernel's ragged-tail checksums assume.
    fresh_k[i] = std::make_unique<Half[]>(kTileRows * dim_);
    fresh_v[i] = std::make_unique<Half[]>(kTileRows * dim_);
  }
  // Geometric reservation (reserve(n+count) would pin capacity to exact fit
  // and reallocate on every tile open); push_back below cannot throw once
  // capacity is in place.
  const auto grow = [count](auto& vec) {
    if (vec.size() + count > vec.capacity()) {
      vec.reserve(std::max<std::size_t>({4, vec.capacity() * 2,
                                         vec.size() + count}));
    }
  };
  for (HeadStore& hs : store_) {
    grow(hs.k_tiles);
    grow(hs.v_tiles);
    grow(hs.k_ptrs);
    grow(hs.v_ptrs);
    grow(hs.enc_blocks);
    grow(hs.kc1_ptrs);
    grow(hs.kc2_ptrs);
    grow(hs.vc1_ptrs);
    grow(hs.vc2_ptrs);
    if (images_ == core::ImagePolicy::kF32) {
      grow(hs.img_blocks);
      grow(hs.img_ptrs);
    } else if (images_ == core::ImagePolicy::kF16T) {
      grow(hs.himg_blocks);
      grow(hs.himg_ptrs);
    }
    if (kv_quant_) {
      grow(hs.q_blocks);
      grow(hs.kq_ptrs);
      grow(hs.vq_ptrs);
      grow(hs.k_scales);
      grow(hs.v_scales);
    }
  }
  if (kv_quant_ && fmt_.size() + count > fmt_.capacity()) {
    fmt_.reserve(std::max<std::size_t>({4, fmt_.capacity() * 2,
                                        fmt_.size() + count}));
  }
  for (std::size_t t = 0; t < count; ++t) {
    for (std::size_t h = 0; h < heads_; ++h) {
      HeadStore& hs = store_[h];
      hs.k_tiles.push_back(std::move(fresh_k[t * heads_ + h]));
      hs.v_tiles.push_back(std::move(fresh_v[t * heads_ + h]));
      hs.k_ptrs.push_back(hs.k_tiles.back().get());
      hs.v_ptrs.push_back(hs.v_tiles.back().get());
      hs.enc_blocks.push_back(nullptr);  // sealed later, when the tile fills
      hs.kc1_ptrs.push_back(nullptr);
      hs.kc2_ptrs.push_back(nullptr);
      hs.vc1_ptrs.push_back(nullptr);
      hs.vc2_ptrs.push_back(nullptr);
      if (images_ == core::ImagePolicy::kF32) {
        hs.img_blocks.push_back(nullptr);
        hs.img_ptrs.push_back(nullptr);
      } else if (images_ == core::ImagePolicy::kF16T) {
        hs.himg_blocks.push_back(nullptr);
        hs.himg_ptrs.push_back(nullptr);
      }
      if (kv_quant_) {
        hs.q_blocks.push_back(nullptr);
        hs.kq_ptrs.push_back(nullptr);
        hs.vq_ptrs.push_back(nullptr);
        hs.k_scales.push_back(0.0f);
        hs.v_scales.push_back(0.0f);
      }
    }
    if (kv_quant_) fmt_.push_back(core::TileFmt::kF16);
  }
}

void KvCache::seal_tiles(std::size_t first, std::size_t count) {
  if (enc_stride_ == 0) return;  // memoization disabled
  const auto su = static_cast<std::size_t>(enc_stride_);
  const std::size_t kcn = su * dim_;        // one K row-checksum block
  const std::size_t vcn = kTileRows * su;   // one V column-checksum block
  if (kv_quant_) {
    const detail::I8TileLayout L = detail::i8_tile_layout(dim_, enc_stride_);
    for (std::size_t t = first; t < first + count; ++t) {
      // Quantize every head first, commit after: a mid-tile bad_alloc must
      // leave the whole tile fp16 (a tile half-flipped to kI8 would pair
      // dequantized-payload encodings with the fp16 payload and trip the
      // decode-time ABFT on clean data).
      std::vector<std::unique_ptr<std::uint8_t[]>> blocks(heads_);
      for (std::size_t h = 0; h < heads_; ++h) {
        if (testing::seal_alloc_failures() > 0) {
          --testing::seal_alloc_failures();
          throw std::bad_alloc();
        }
        blocks[h] = std::make_unique<std::uint8_t[]>(L.bytes);
        detail::quantize_sealed_tile(store_[h].k_tiles[t].get(),
                                     store_[h].v_tiles[t].get(), dim_,
                                     enc_stride_, blocks[h].get());
      }
      for (std::size_t h = 0; h < heads_; ++h) {
        HeadStore& hs = store_[h];
        const std::uint8_t* b = blocks[h].get();
        const Half* he = detail::i8_henc(b, L);
        hs.kc1_ptrs[t] = he;
        hs.kc2_ptrs[t] = he + kcn;
        hs.vc1_ptrs[t] = he + 2 * kcn;
        hs.vc2_ptrs[t] = he + 2 * kcn + vcn;
        hs.kq_ptrs[t] = detail::i8_k(b, L);
        hs.vq_ptrs[t] = detail::i8_v(b, L);
        hs.k_scales[t] = detail::i8_scales(b, L)[0];
        hs.v_scales[t] = detail::i8_scales(b, L)[3];
        hs.q_blocks[t] = std::move(blocks[h]);
        ++i8_blocks_sealed_;
      }
      fmt_[t] = core::TileFmt::kI8;
    }
    return;
  }
  for (std::size_t t = first; t < first + count; ++t) {
    for (std::size_t h = 0; h < heads_; ++h) {
      HeadStore& hs = store_[h];
      if (testing::seal_alloc_failures() > 0) {
        // Injected allocation failure: behave exactly like a real
        // exhausted-heap make_unique below.
        --testing::seal_alloc_failures();
        throw std::bad_alloc();
      }
      auto block = std::make_unique<Half[]>(2 * kcn + 2 * vcn);
      Half* p = block.get();
      detail::encode_sealed_tile(hs.k_tiles[t].get(), hs.v_tiles[t].get(),
                                 dim_, enc_stride_, p);
      hs.kc1_ptrs[t] = p;
      hs.kc2_ptrs[t] = p + kcn;
      hs.vc1_ptrs[t] = p + 2 * kcn;
      hs.vc2_ptrs[t] = p + 2 * kcn + vcn;
      hs.enc_blocks[t] = std::move(block);
      ++enc_blocks_sealed_;
      if (images_ == core::ImagePolicy::kF32) {
        // Image allocation failure degrades the same way a failed encode
        // memo does: the entry stays null and decode widens per call.
        auto img = std::make_unique<float[]>(
            detail::f32_image_floats(dim_, enc_stride_));
        detail::widen_sealed_tile(hs.k_tiles[t].get(), hs.v_tiles[t].get(), p,
                                  dim_, enc_stride_, img.get());
        hs.img_ptrs[t] = img.get();
        hs.img_blocks[t] = std::move(img);
        ++f32_blocks_sealed_;
      } else if (images_ == core::ImagePolicy::kF16T) {
        auto himg = std::make_unique<Half[]>(
            detail::f16t_image_halves(dim_, enc_stride_));
        detail::build_f16t_image(hs.k_tiles[t].get(), p, dim_, enc_stride_,
                                 himg.get());
        hs.himg_ptrs[t] = himg.get();
        hs.himg_blocks[t] = std::move(himg);
        ++f16t_blocks_sealed_;
      }
    }
  }
}

void KvCache::append(std::span<const Half> k, std::span<const Half> v) {
  append_chunk(k, v, 1);
}

void KvCache::append_chunk(std::span<const Half> k, std::span<const Half> v,
                           std::size_t rows) {
  if (rows == 0) {
    throw std::invalid_argument("KvCache::append_chunk: rows must be >= 1");
  }
  if (k.size() != rows * heads_ * dim_ || v.size() != rows * heads_ * dim_) {
    throw std::invalid_argument(
        "KvCache::append_chunk: expected rows*heads*dim values");
  }
  // Batch all tile opens up front: one allocation round per chunk, and the
  // copy loop below cannot throw.
  const std::size_t have = tiles() * kTileRows - len_;
  if (rows > have) {
    open_tiles((rows - have + kTileRows - 1) / kTileRows);
  }
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t tile = (len_ + r) / kTileRows;
    const std::size_t row = (len_ + r) % kTileRows;
    for (std::size_t h = 0; h < heads_; ++h) {
      HeadStore& hs = store_[h];
      std::memcpy(hs.k_tiles[tile].get() + row * dim_,
                  k.data() + (r * heads_ + h) * dim_, dim_ * sizeof(Half));
      std::memcpy(hs.v_tiles[tile].get() + row * dim_,
                  v.data() + (r * heads_ + h) * dim_, dim_ * sizeof(Half));
    }
  }
  // Memoize the checksum encodings of every tile this chunk sealed — once,
  // ever: full tiles are immutable from here on.  The append itself is
  // committed at this point; if the memo's allocations fail, the affected
  // entries simply stay null and the kernel falls back to fresh per-call
  // encodes — an append must never appear to fail after its rows landed.
  const std::size_t sealed_before = len_ / kTileRows;
  len_ += rows;
  const std::size_t sealed_after = len_ / kTileRows;
  if (sealed_after > sealed_before) {
    try {
      seal_tiles(sealed_before, sealed_after - sealed_before);
    } catch (const std::bad_alloc&) {
      // partial memo: remaining entries null, decode stays correct
    }
  }
}

void KvCache::truncate(std::size_t tokens) {
  if (tokens > len_) {
    throw std::invalid_argument(
        "KvCache::truncate: cannot truncate beyond the current length");
  }
  if (tokens == len_) return;
  const std::size_t had_tiles = tiles();
  // Zero every rolled-back row: later appends rely on rows past the valid
  // count being zero (the ragged-tail padding the checksums assume).
  for (std::size_t r = tokens; r < len_; ++r) {
    const std::size_t tile = r / kTileRows;
    const std::size_t row = r % kTileRows;
    for (HeadStore& hs : store_) {
      std::fill_n(hs.k_tiles[tile].get() + row * dim_, dim_, Half{});
      std::fill_n(hs.v_tiles[tile].get() + row * dim_, dim_, Half{});
    }
  }
  // Tiles the truncation re-opens lose their sealed encodings: the memo
  // described the full tile, and a partially-valid tile must fall back to
  // fresh per-call encodes until an append re-fills (and re-seals) it.
  const std::size_t keep_full = tokens / kTileRows;
  for (std::size_t t = keep_full; t < had_tiles; ++t) {
    for (HeadStore& hs : store_) {
      if (hs.enc_blocks[t] != nullptr) {
        hs.enc_blocks[t].reset();
        hs.kc1_ptrs[t] = nullptr;
        hs.kc2_ptrs[t] = nullptr;
        hs.vc1_ptrs[t] = nullptr;
        hs.vc2_ptrs[t] = nullptr;
        --enc_blocks_sealed_;
      }
      if (images_ == core::ImagePolicy::kF32 && hs.img_blocks[t] != nullptr) {
        hs.img_blocks[t].reset();
        hs.img_ptrs[t] = nullptr;
        --f32_blocks_sealed_;
      }
      if (images_ == core::ImagePolicy::kF16T &&
          hs.himg_blocks[t] != nullptr) {
        hs.himg_blocks[t].reset();
        hs.himg_ptrs[t] = nullptr;
        --f16t_blocks_sealed_;
      }
      if (kv_quant_ && hs.q_blocks[t] != nullptr) {
        // A re-opened quantized tile reverts to fp16: the fp16 rows were
        // kept, so the rollback is lossless, and the dropped i8 block is
        // rebuilt if an append re-fills (re-seals) the tile.
        hs.q_blocks[t].reset();
        hs.kq_ptrs[t] = nullptr;
        hs.vq_ptrs[t] = nullptr;
        hs.k_scales[t] = 0.0f;
        hs.v_scales[t] = 0.0f;
        hs.kc1_ptrs[t] = nullptr;
        hs.kc2_ptrs[t] = nullptr;
        hs.vc1_ptrs[t] = nullptr;
        hs.vc2_ptrs[t] = nullptr;
        --i8_blocks_sealed_;
      }
    }
    if (kv_quant_) fmt_[t] = core::TileFmt::kF16;
  }
  len_ = tokens;
}

core::KvSlice KvCache::slice(std::size_t head) const {
  if (head >= heads_) {
    throw std::out_of_range("KvCache::slice: head out of range");
  }
  const HeadStore& hs = store_[head];
  core::KvSlice s{hs.k_ptrs.data(),   hs.v_ptrs.data(),
                  len_,               dim_,
                  hs.kc1_ptrs.data(), hs.kc2_ptrs.data(),
                  hs.vc1_ptrs.data(), hs.vc2_ptrs.data(),
                  enc_stride_,
                  images_ == core::ImagePolicy::kF32 ? hs.img_ptrs.data()
                                                     : nullptr};
  if (images_ == core::ImagePolicy::kF16T) {
    s.f16t = hs.himg_ptrs.data();
  }
  if (kv_quant_) {
    s.fmt = fmt_.data();
    s.k_i8 = hs.kq_ptrs.data();
    s.v_i8 = hs.vq_ptrs.data();
    s.k_scale = hs.k_scales.data();
    s.v_scale = hs.v_scales.data();
  }
  return s;
}

}  // namespace ftt::serve
