#pragma once
// Per-request growable K/V storage for batched fault-tolerant decode.
//
// This is the standalone, self-owning cache: each instance allocates its
// own tiles.  The serving engine itself pages KV through the shared
// serve::TilePool (tile_pool.hpp) instead, which reuses this file's
// sealed-encoding layout via detail::encode_sealed_tile; KvCache remains
// the kernel-level harness (tests, benches, single-request embedding) and
// the reference the paged path is bit-compared against.
//
// Storage is allocated in 64-row tiles per head (the strided-ABFT checksum
// footprint, abft::StridedAbft::kTile): appending a token never relocates
// previously written rows, so tile pointers handed to in-flight decode
// slices stay valid across appends, and every tile is already aligned to
// the checksum tile the decode kernel verifies.  Fresh tiles are
// zero-initialized, matching the kernel's zero-padding convention for the
// ragged tail.
//
// Full tiles are immutable once written, so the cache also memoizes their
// four strided checksum encodings (K row checksums c1/c2, V column
// checksums c1/c2) the moment an append seals a tile, and never again:
// clean decode steps consume the sealed encodings through slice() instead
// of re-deriving all four per token, dropping the per-token encode cost
// from O(context) to O(tail).  The memo costs 4 * 64 * stride halves per
// tile per head on top of the 2 * 64 * dim tile pair (+25% at stride 8,
// dim 64), which bytes() accounts for.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "abft/strided_abft.hpp"
#include "core/decode.hpp"
#include "numeric/fp16.hpp"

namespace ftt::serve {

namespace detail {
/// Encode the four sealed-tile checksum blocks of one 64 x dim K/V tile
/// pair into `out`, laid out [kc1 (s x dim) | kc2 (s x dim) | vc1 (64 x s)
/// | vc2 (64 x s)] — 2*s*dim + 2*64*s halves.  Exactly the encodes the
/// decode kernel would run per call (no injector: memos are built outside
/// any fault campaign), so the sealed bits equal a fresh encode bit for
/// bit.  Shared by KvCache (per-request caches) and TilePool (paged pool
/// slabs).
void encode_sealed_tile(const numeric::Half* k_tile,
                        const numeric::Half* v_tile, std::size_t dim, int s,
                        numeric::Half* out);

/// Number of floats in one sealed tile's widened-fp32 image (the optional
/// 2x-memory decode fast path): every GEMM operand of the tile pre-widened,
/// K-side blocks pre-transposed to k-major, laid out
///   [K^T (dim x 64) | V (64 x dim) | Kc1^T (dim x s) | Kc2^T (dim x s) |
///    Vc1 (64 x s) | Vc2 (64 x s)]
/// == exactly twice the tile pair + encoding block in bytes (floats vs
/// halves).
[[nodiscard]] std::size_t f32_image_floats(std::size_t dim, int s) noexcept;

/// Build the widened-fp32 image of one sealed tile from its fp16 K/V
/// storage and its sealed encoding block (encode_sealed_tile layout) into
/// `out` (f32_image_floats(dim, s) floats).  Widening is exact and the
/// transposes are pure data movement, so decode over the image is
/// bit-identical to widening the fp16 tile per call.  Shared by KvCache and
/// TilePool, like encode_sealed_tile.
void widen_sealed_tile(const numeric::Half* k_tile,
                       const numeric::Half* v_tile,
                       const numeric::Half* enc_block, std::size_t dim, int s,
                       float* out);

/// Number of halves in one sealed tile's pre-transposed fp16 image (the
/// core::ImagePolicy::kF16T layout): only the K-side operands need
/// re-laying-out, and they stay at half width —
///   [K^T (dim x 64) | Kc1^T (dim x s) | Kc2^T (dim x s)]
/// == 64*dim + 2*s*dim halves (~0.5x the tile pair, vs the fp32 image's
/// 2x).  The V operands have no image: the slab's V tile (64 x dim) and
/// sealed column checksums (64 x s) are already row-major streams for the
/// fused fp16-operand axpy.
[[nodiscard]] std::size_t f16t_image_halves(std::size_t dim, int s) noexcept;

/// Build the kF16T image of one sealed tile from its fp16 K storage and its
/// sealed encoding block (encode_sealed_tile layout) into `out`
/// (f16t_image_halves(dim, s) halves).  Pure data movement — transposition
/// of stored Half bits — so decode over the image (which widens in
/// registers, exactly) is bit-identical to the fp32-image and
/// widen-per-call paths.
void build_f16t_image(const numeric::Half* k_tile,
                      const numeric::Half* enc_block, std::size_t dim, int s,
                      numeric::Half* out);

/// Byte layout of one (layer, head) block of an int8-format KV tile — the
/// second, coexisting tile format (core::TileFmt::kI8).  One block packs
/// everything the decode kernel and the scrubber need:
///
///   [ scales: 6 floats (K, then V, 3 TMR copies each)
///   | ienc:  int32 [kc1 (s x 64, over K^T) | kc2 | vc1 (64 x s) | vc2]
///   | K^T payload: dim x 64 int8 | V payload: 64 x dim int8
///   | henc:  Half  [Kc1^T (dim x s) | Kc2^T | Vc1 (64 x s) | Vc2] ]
///
/// K-side operands are stored *k-major* (pre-transposed): the score GEMMs
/// consume them in exactly this layout, so the fused dequantizing kernels
/// (numeric::gemm_f32_nn_i8) stream the int8 payload directly with zero
/// per-tile pack or dequantize-to-scratch pass — the int8 analogue of the
/// fp16 format's widened fp32 image, at 1/4 the image bytes.  V stays
/// row-major because GEMM II's axpy walks V rows.
///
/// The int32 encodings are the at-rest redundancy: integer sums of the int8
/// payload as stored (abft/int8_checksums.hpp; K's run over the k-major
/// array), verified by EQUALITY — exact fault location and repair with zero
/// threshold.  The Half encodings are the decode-time memo: the fp16
/// strided encodings of the exactly-dequantized payload, bit-equal to the
/// fresh encode the kernel would compute (K-side stored transposed, like
/// the fp32 image's Kc^T blocks), so a clean tick streams payload + henc
/// and never touches the int32 block.  The per-operand scale is a power of
/// two (numeric::choose_i8_scale), so dequantization is exact and both
/// encoding families describe the same tile; the scales themselves are
/// outside both checksum families, hence the 3-copy TMR.  Alignment: the
/// float/int32 regions lead and `bytes` is rounded to a multiple of 4, so
/// an array of blocks keeps every region naturally aligned.
struct I8TileLayout {
  std::size_t dim = 0;
  std::size_t s = 0;        ///< checksum stride the encodings use
  std::size_t payload = 0;  ///< int8 elements per operand (64 * dim)
  std::size_t kcn = 0;      ///< Halfs in one K henc block (s * dim)
  std::size_t kcni = 0;     ///< int32s in one K ienc block (s * 64, over K^T)
  std::size_t vcn = 0;      ///< elements in one V checksum block (64 * s)
  std::size_t scale_off = 0, ienc_off = 0, k_off = 0, v_off = 0, henc_off = 0;
  std::size_t bytes = 0;  ///< total block bytes (multiple of 4)
};
[[nodiscard]] I8TileLayout i8_tile_layout(std::size_t dim, int s) noexcept;

// Typed region accessors over one block (const and mutable).
[[nodiscard]] inline float* i8_scales(std::uint8_t* b,
                                      const I8TileLayout& L) noexcept {
  return reinterpret_cast<float*>(b + L.scale_off);
}
[[nodiscard]] inline const float* i8_scales(const std::uint8_t* b,
                                            const I8TileLayout& L) noexcept {
  return reinterpret_cast<const float*>(b + L.scale_off);
}
[[nodiscard]] inline std::int32_t* i8_ienc(std::uint8_t* b,
                                           const I8TileLayout& L) noexcept {
  return reinterpret_cast<std::int32_t*>(b + L.ienc_off);
}
[[nodiscard]] inline const std::int32_t* i8_ienc(
    const std::uint8_t* b, const I8TileLayout& L) noexcept {
  return reinterpret_cast<const std::int32_t*>(b + L.ienc_off);
}
[[nodiscard]] inline std::int8_t* i8_k(std::uint8_t* b,
                                       const I8TileLayout& L) noexcept {
  return reinterpret_cast<std::int8_t*>(b + L.k_off);
}
[[nodiscard]] inline const std::int8_t* i8_k(const std::uint8_t* b,
                                             const I8TileLayout& L) noexcept {
  return reinterpret_cast<const std::int8_t*>(b + L.k_off);
}
[[nodiscard]] inline std::int8_t* i8_v(std::uint8_t* b,
                                       const I8TileLayout& L) noexcept {
  return reinterpret_cast<std::int8_t*>(b + L.v_off);
}
[[nodiscard]] inline const std::int8_t* i8_v(const std::uint8_t* b,
                                             const I8TileLayout& L) noexcept {
  return reinterpret_cast<const std::int8_t*>(b + L.v_off);
}
[[nodiscard]] inline numeric::Half* i8_henc(std::uint8_t* b,
                                            const I8TileLayout& L) noexcept {
  return reinterpret_cast<numeric::Half*>(b + L.henc_off);
}
[[nodiscard]] inline const numeric::Half* i8_henc(
    const std::uint8_t* b, const I8TileLayout& L) noexcept {
  return reinterpret_cast<const numeric::Half*>(b + L.henc_off);
}

/// Quantize one sealed 64 x dim fp16 K/V tile pair into an i8 block:
/// choose the per-operand power-of-two scales, quantize the payload, then
/// derive BOTH encoding families from the result — the Half encodings from
/// the exactly-dequantized image (bit-equal to the fresh encode a decode
/// call would run over that image) and the int32 encodings from the int8
/// payload — and write the TMR scale copies.  The block is fully
/// overwritten; no zeroing is required beforehand.
void quantize_sealed_tile(const numeric::Half* k_tile,
                          const numeric::Half* v_tile, std::size_t dim, int s,
                          std::uint8_t* block);

/// Outcome of verifying one i8 block against its own redundancy.
enum class I8ScrubResult { kClean, kRepaired, kUnrepairable };

/// The i8 arm of the KV scrubber: majority-vote the TMR scale copies, run
/// the exact integer verify/correct over both payloads (equality, zero
/// threshold — abft::verify_correct_*_i8), then recompute the Half
/// encodings from the repaired, dequantized payload and rewrite them on
/// mismatch.  Repairs happen in place; kUnrepairable means >= 2 faults in
/// one residue class (or a three-way scale disagreement) and the caller
/// must drop the tile.
[[nodiscard]] I8ScrubResult scrub_i8_tile(std::uint8_t* block,
                                          std::size_t dim, int s);
}  // namespace detail

namespace testing {
/// Thread-local count of encoding-block allocations KvCache::seal_tiles
/// should fail (throwing bad_alloc) before allocating normally again.
/// Exercises the allocation-failure fallback — null memo entries must
/// degrade to fresh per-call encodes, never wrong results — without
/// exhausting real memory.  Test-only observability; not a serving API.
std::size_t& seal_alloc_failures() noexcept;
}  // namespace testing

class KvCache {
 public:
  static constexpr std::size_t kTileRows = core::KvSlice::kTileRows;

  /// `enc_stride` is the checksum stride the sealed-tile encodings are built
  /// with (the decode kernel only consumes the memo when its own stride
  /// option matches).  A stride that does not divide both the 64-row tile
  /// and `dim` — or an explicit value <= 0 — disables memoization
  /// (enc_stride() reports 0) instead of rejecting the cache; decode then
  /// encodes fresh per call, the pre-memo behavior.
  /// `images` selects the sealed-tile image memo policy
  /// (core::ImagePolicy): kF16T memoizes a pre-transposed fp16 K-side image
  /// (detail::build_f16t_image, ~1.5x slab bytes, the default decode fast
  /// path); kF32 memoizes the full widened-fp32 image
  /// (detail::widen_sealed_tile, 3x slab bytes); kNone memoizes neither and
  /// decode widens/packs per call.  All three are bit-identical in decode
  /// output.  Images require the encoding memo: forced to kNone when
  /// enc_stride is disabled.
  /// `kv_quant` switches sealed tiles to the int8 format (core::TileFmt::
  /// kI8): at seal time the tile is quantized into a detail::I8TileLayout
  /// block — int8 payload, power-of-two scales, exact int32 checksums and
  /// the sealed Half encodings of the dequantized payload — and slice()
  /// reports the per-tile format so decode streams the quantized bytes.
  /// The fp16 tiles stay allocated (truncate() re-opens them losslessly;
  /// this cache is the reference harness, the capacity win is TilePool's),
  /// the ragged open tail always stays fp16, and decode over a kI8 tile is
  /// lossy-but-deterministic.  Requires the encoding memo (forced off with
  /// it); mutually exclusive with an image policy (images are fp16-only
  /// fast paths — the combination throws).
  KvCache(std::size_t heads, std::size_t dim,
          int enc_stride = abft::StridedAbft::kDefaultStride,
          core::ImagePolicy images = core::ImagePolicy::kNone,
          bool kv_quant = false);

  [[nodiscard]] std::size_t heads() const noexcept { return heads_; }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  /// Context length in tokens.
  [[nodiscard]] std::size_t length() const noexcept { return len_; }
  /// Allocated tiles per head.
  [[nodiscard]] std::size_t tiles() const noexcept;
  /// Allocated K+V bytes across all heads, memoized encodings included.
  [[nodiscard]] std::size_t bytes() const noexcept;
  /// Checksum stride of the memoized per-tile encodings (0 = memoization
  /// disabled; see the constructor).
  [[nodiscard]] int enc_stride() const noexcept { return enc_stride_; }
  /// Sealed-tile image memo policy (kNone when disabled by the stride).
  [[nodiscard]] core::ImagePolicy images() const noexcept { return images_; }
  /// True when sealed tiles are quantized to the int8 tile format.
  [[nodiscard]] bool kv_quant() const noexcept { return kv_quant_; }
  /// Storage format of tile `t` (kF16 for the open tail, and for every tile
  /// when kv_quant is off).
  [[nodiscard]] core::TileFmt tile_format(std::size_t t) const {
    return fmt_.at(t);
  }

  /// Append one token's keys and values; `k`/`v` hold heads*dim halves,
  /// head-major (the split-heads layout of a projected 1 x hidden row).
  void append(std::span<const numeric::Half> k,
              std::span<const numeric::Half> v);

  /// Bulk append of a prefill chunk: `rows` tokens whose keys/values are
  /// stacked head-major rows of heads*dim halves each (the split-heads
  /// layout of a projected rows x hidden block).  Equivalent to `rows`
  /// append() calls with the tile opens batched into one allocation round.
  /// Like append(), an open can relocate the tile-pointer arrays — re-take
  /// slice() views after the call.
  void append_chunk(std::span<const numeric::Half> k,
                    std::span<const numeric::Half> v, std::size_t rows);

  /// Roll the context back to `tokens` rows (tokens <= length()): the
  /// speculative-decode reject path.  Rolled-back rows are zeroed in their
  /// tiles — restoring the kernel's zero-padding convention for the ragged
  /// tail — and the memoized encodings of any tile the truncation re-opens
  /// are dropped (the tile is no longer full, so its sealed checksums no
  /// longer describe it; a later append that re-fills it re-seals fresh).
  /// Tile storage itself stays allocated for reuse.
  void truncate(std::size_t tokens);

  /// Tiled read view of one head's K/V over the current context, carrying
  /// the memoized checksum encodings of every sealed tile (tail entries are
  /// null until the tile fills).  Tile storage is never relocated, but the
  /// view's pointer arrays can move when an append() opens a new tile —
  /// re-take the slice after appending.
  [[nodiscard]] core::KvSlice slice(std::size_t head) const;

 private:
  struct HeadStore {
    // Owning tile storage (each kTileRows x dim, zero-initialized) plus raw
    // mirrors in the exact shape core::KvSlice consumes.
    std::vector<std::unique_ptr<numeric::Half[]>> k_tiles, v_tiles;
    std::vector<const numeric::Half*> k_ptrs, v_ptrs;
    // Memoized encodings, one block per tile laid out
    // [kc1 (s x dim) | kc2 (s x dim) | vc1 (64 x s) | vc2 (64 x s)],
    // null until the tile seals.
    std::vector<std::unique_ptr<numeric::Half[]>> enc_blocks;
    std::vector<const numeric::Half*> kc1_ptrs, kc2_ptrs, vc1_ptrs, vc2_ptrs;
    // Optional widened-fp32 tile images (kF32 policy), null until the tile
    // seals; maintained only when the policy selects them.
    std::vector<std::unique_ptr<float[]>> img_blocks;
    std::vector<const float*> img_ptrs;
    // Optional pre-transposed fp16 tile images (kF16T policy), same rules.
    std::vector<std::unique_ptr<numeric::Half[]>> himg_blocks;
    std::vector<const numeric::Half*> himg_ptrs;
    // int8 tile blocks (kv_quant option; detail::I8TileLayout), null until
    // the tile seals — when one seals, kc1_ptrs..vc2_ptrs point into its
    // Half-encoding region instead of an enc_block.  Maintained only when
    // the option is on.
    std::vector<std::unique_ptr<std::uint8_t[]>> q_blocks;
    std::vector<const std::int8_t*> kq_ptrs, vq_ptrs;
    std::vector<float> k_scales, v_scales;  // per-tile power-of-two scales
  };

  /// Open `count` fresh zero-initialized tiles per head, strongly exception
  /// safe: allocations and reservations happen before any head's tile list
  /// is mutated.
  void open_tiles(std::size_t count);

  /// Encode + memoize the checksums of freshly sealed tiles
  /// [first, first+count); no-op when memoization is disabled.  The caller
  /// catches allocation failure (the append is already committed by then):
  /// entries not yet sealed stay null and the kernel falls back to fresh
  /// per-call encodes for those tiles — never wrong results.
  void seal_tiles(std::size_t first, std::size_t count);

  std::size_t heads_, dim_;
  int enc_stride_;
  core::ImagePolicy images_;
  bool kv_quant_;
  std::size_t len_ = 0;
  /// Encoding blocks actually allocated across all heads (bytes() must not
  /// charge for entries a failed seal left null).
  std::size_t enc_blocks_sealed_ = 0;
  /// fp32 image blocks actually allocated (same accounting rule).
  std::size_t f32_blocks_sealed_ = 0;
  /// fp16 (kF16T) image blocks actually allocated (same accounting rule).
  std::size_t f16t_blocks_sealed_ = 0;
  /// i8 tile blocks actually allocated (same accounting rule).
  std::size_t i8_blocks_sealed_ = 0;
  /// Per-tile storage format (kv_quant only; kF16 until the tile seals).
  std::vector<core::TileFmt> fmt_;
  std::vector<HeadStore> store_;
};

}  // namespace ftt::serve
