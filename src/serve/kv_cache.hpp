#pragma once
// Per-request growable K/V storage for batched fault-tolerant decode.
//
// Storage is allocated in 64-row tiles per head (the strided-ABFT checksum
// footprint, abft::StridedAbft::kTile): appending a token never relocates
// previously written rows, so tile pointers handed to in-flight decode
// slices stay valid across appends, and every tile is already aligned to
// the checksum tile the decode kernel verifies.  Fresh tiles are
// zero-initialized, matching the kernel's zero-padding convention for the
// ragged tail.

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "core/decode.hpp"
#include "numeric/fp16.hpp"

namespace ftt::serve {

class KvCache {
 public:
  static constexpr std::size_t kTileRows = core::KvSlice::kTileRows;

  KvCache(std::size_t heads, std::size_t dim);

  [[nodiscard]] std::size_t heads() const noexcept { return heads_; }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  /// Context length in tokens.
  [[nodiscard]] std::size_t length() const noexcept { return len_; }
  /// Allocated tiles per head.
  [[nodiscard]] std::size_t tiles() const noexcept;
  /// Allocated K+V bytes across all heads.
  [[nodiscard]] std::size_t bytes() const noexcept;

  /// Append one token's keys and values; `k`/`v` hold heads*dim halves,
  /// head-major (the split-heads layout of a projected 1 x hidden row).
  void append(std::span<const numeric::Half> k,
              std::span<const numeric::Half> v);

  /// Bulk append of a prefill chunk: `rows` tokens whose keys/values are
  /// stacked head-major rows of heads*dim halves each (the split-heads
  /// layout of a projected rows x hidden block).  Equivalent to `rows`
  /// append() calls with the tile opens batched into one allocation round.
  /// Like append(), an open can relocate the tile-pointer arrays — re-take
  /// slice() views after the call.
  void append_chunk(std::span<const numeric::Half> k,
                    std::span<const numeric::Half> v, std::size_t rows);

  /// Tiled read view of one head's K/V over the current context.  Tile
  /// storage is never relocated, but the view's tile-pointer array can move
  /// when an append() opens a new tile — re-take the slice after appending.
  [[nodiscard]] core::KvSlice slice(std::size_t head) const;

 private:
  struct HeadStore {
    // Owning tile storage (each kTileRows x dim, zero-initialized) plus raw
    // mirrors in the exact shape core::KvSlice consumes.
    std::vector<std::unique_ptr<numeric::Half[]>> k_tiles, v_tiles;
    std::vector<const numeric::Half*> k_ptrs, v_ptrs;
  };

  /// Open `count` fresh zero-initialized tiles per head, strongly exception
  /// safe: allocations and reservations happen before any head's tile list
  /// is mutated.
  void open_tiles(std::size_t count);

  std::size_t heads_, dim_;
  std::size_t len_ = 0;
  std::vector<HeadStore> store_;
};

}  // namespace ftt::serve
