#include "serve/shard.hpp"

#include <algorithm>
#include <stdexcept>

#include "numeric/fp16.hpp"

namespace ftt::serve {

using attention::FtReport;
using tensor::MatrixF;
using tensor::MatrixH;
using transformer::Block;
using transformer::Linear;
using transformer::LinearProtect;

namespace {

constexpr std::size_t kTile = 64;  ///< the strided-ABFT checksum tile

void check_per_item(std::span<const ShardTickEntry> entries, std::size_t heads,
                    std::size_t per_item_size) {
  if (per_item_size != entries.size() * heads) {
    throw std::invalid_argument(
        "run_tick: per_item must hold entries * heads reports");
  }
  for (const ShardTickEntry& e : entries) {
    if (e.cache == nullptr || e.rows == 0) {
      throw std::invalid_argument("run_tick: entry without cache or rows");
    }
  }
}

}  // namespace

TickResult run_tick_solo(const transformer::Model& model,
                         std::span<const ShardTickEntry> entries,
                         MatrixF& X, MatrixF& y,
                         std::span<FtReport> per_item,
                         const core::EftaOptions& efta, bool protect_linear,
                         fault::FaultInjector* inj) {
  const auto& cfg = model.config();
  const std::size_t T = X.rows();
  const std::size_t hidden = cfg.hidden;
  const std::size_t heads = cfg.heads;
  const std::size_t dim = cfg.head_dim();
  check_per_item(entries, heads, per_item.size());
  const auto mode =
      protect_linear ? LinearProtect::kStridedAbft : LinearProtect::kNone;

  TickResult res;
  // This mirrors Block::forward's sub-block pipeline (ln1 -> QKV ->
  // attention -> wo residual; ln2 -> FFN residual) with the attention
  // swapped for the cache-backed block kernel: every entry — prefill
  // chunk, decode row or speculative block — becomes one q_len-row
  // DecodeWorkItem per head reading/writing the stacked matrices with a
  // row stride of `hidden`, all through a single efta_decode_batch call.
  std::vector<FtReport> layer_item;
  std::vector<core::DecodeWorkItem> items;
  const auto& blocks = model.blocks();
  for (std::size_t layer = 0; layer < blocks.size(); ++layer) {
    const Block& blk = blocks[layer];
    // --- attention sub-block: project, append K/V, batched attention ---
    MatrixF h = X;
    blk.ln1().forward(h);
    MatrixF qm(T, hidden), km(T, hidden), vm(T, hidden);
    res.linear += blk.wq().forward(h, qm, mode, inj);
    res.linear += blk.wk().forward(h, km, mode, inj);
    res.linear += blk.wv().forward(h, vm, mode, inj);

    // Round to the fp16 tensor-core operands once; rows are head-major, so
    // a head's dim-wide segment is contiguous for the cache append and
    // hidden-strided across rows for the block work items.
    MatrixH qh(T, hidden), kh(T, hidden), vh(T, hidden);
    tensor::narrow(qm, {qh.data(), qh.size()});
    tensor::narrow(km, {kh.data(), kh.size()});
    tensor::narrow(vm, {vh.data(), vh.size()});

    MatrixF attn(T, hidden);
    items.clear();
    for (const ShardTickEntry& e : entries) {
      e.cache->append_chunk(layer, {&kh(e.row0, 0), e.rows * hidden},
                            {&vh(e.row0, 0), e.rows * hidden}, e.rows,
                            e.defer_seal);
      for (std::size_t hd = 0; hd < heads; ++hd) {
        items.push_back(core::DecodeWorkItem{
            e.cache->slice(layer, hd), &qh(e.row0, hd * dim),
            &attn(e.row0, hd * dim), e.rows, hidden, hidden});
      }
    }
    layer_item.assign(items.size(), FtReport{});
    res.attention += core::efta_decode_batch(items, efta, inj, layer_item);
    for (std::size_t i = 0; i < layer_item.size(); ++i) {
      per_item[i] += layer_item[i];
    }

    MatrixF proj(T, hidden);
    res.linear += blk.wo().forward(attn, proj, mode, inj);
    for (std::size_t i = 0; i < X.size(); ++i) {
      X.data()[i] += proj.data()[i];
    }

    // --- feed-forward sub-block ---
    MatrixF h2 = X;
    blk.ln2().forward(h2);
    MatrixF ffn_out(T, hidden);
    const auto fr = blk.ffn().forward(h2, ffn_out, protect_linear, inj);
    res.linear += fr.abft;
    res.activations_clipped += fr.activations_clipped;
    for (std::size_t i = 0; i < X.size(); ++i) {
      X.data()[i] += ffn_out.data()[i];
    }
  }

  y = X;
  model.final_ln().forward(y);
  return res;
}

// ---------------------------------------------------------------------------
// ShardWorker
// ---------------------------------------------------------------------------

ShardWorker::ShardWorker(const transformer::Model& model, std::size_t shard,
                         std::size_t nshards, CombineMode combine)
    : shard_(shard), nshards_(nshards), hidden_(model.config().hidden) {
  const auto& cfg = model.config();
  const std::size_t dim = cfg.head_dim();
  spec_ = core::ShardSpec::for_shard(shard, nshards, cfg.heads);
  qkv_col0_ = spec_.begin_head * dim;
  qkv_cols_ = spec_.heads() * dim;
  const auto [ht0, ht1] = core::shard_range(shard, nshards, cfg.hidden / kTile);
  hid_col0_ = ht0 * kTile;
  const std::size_t hid_cols = (ht1 - ht0) * kTile;
  const auto [it0, it1] =
      core::shard_range(shard, nshards, cfg.ffn_inner / kTile);
  inner_col0_ = it0 * kTile;
  const std::size_t inner_cols = (it1 - it0) * kTile;

  layers_.reserve(model.blocks().size());
  for (const Block& blk : model.blocks()) {
    LayerSlices s{blk.wq().slice_out(qkv_col0_, qkv_cols_),
                  blk.wk().slice_out(qkv_col0_, qkv_cols_),
                  blk.wv().slice_out(qkv_col0_, qkv_cols_),
                  blk.wo().slice_out(hid_col0_, hid_cols),
                  blk.ffn().w1().slice_out(inner_col0_, inner_cols),
                  blk.ffn().w2().slice_out(hid_col0_, hid_cols),
                  blk.ffn().act(),
                  std::nullopt};
    if (combine == CombineMode::kRingReduce && !spec_.empty()) {
      s.wo_rows = blk.wo().slice_in(qkv_col0_, qkv_cols_);
    }
    layers_.push_back(std::move(s));
  }
}

void ShardWorker::begin_tick(std::size_t total_rows) {
  const auto [r0, r1] = core::shard_range(shard_, nshards_, total_rows);
  row0_ = r0;
  row1_ = r1;
  linear_ = abft::Report{};
  clipped_ = 0;
}

void ShardWorker::copy_ln_rows(const MatrixF& src, MatrixF& dst,
                               const transformer::LayerNorm& ln) const {
  if (row1_ <= row0_) return;
  std::copy_n(&src(row0_, 0), (row1_ - row0_) * src.cols(), &dst(row0_, 0));
  ln.forward(dst, row0_, row1_ - row0_);
}

void ShardWorker::narrow_rows(const MatrixF& src, MatrixH& dst) const {
  if (row1_ <= row0_) return;
  numeric::floats_to_halves(&src(row0_, 0), &dst(row0_, 0),
                            (row1_ - row0_) * src.cols());
}

void ShardWorker::project_cols(const Linear& slice, std::size_t col0,
                               const MatrixF& x, MatrixF& full,
                               LinearProtect mode) {
  const std::size_t cols = slice.out_features();
  if (cols == 0) return;
  linear_ += slice.forward(x, scratch_, mode, nullptr);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    std::copy_n(&scratch_(r, 0), cols, &full(r, col0));
  }
}

void ShardWorker::project_qkv(std::size_t layer, const MatrixF& h,
                              MatrixF& qm, MatrixF& km, MatrixF& vm,
                              LinearProtect mode) {
  const LayerSlices& s = layers_.at(layer);
  project_cols(s.wq, qkv_col0_, h, qm, mode);
  project_cols(s.wk, qkv_col0_, h, km, mode);
  project_cols(s.wv, qkv_col0_, h, vm, mode);
}

void ShardWorker::attend(std::span<const core::DecodeWorkItem> items,
                         std::span<const std::size_t> item_heads,
                         const core::EftaOptions& efta,
                         std::span<FtReport> per_item) {
  // The shard's FtReport contribution lives in its per_item slots (summed
  // by the executor); the returned total is redundant with them.
  (void)core::efta_decode_batch(items, item_heads, spec_, efta, nullptr,
                                per_item);
}

void ShardWorker::project_wo_cols(std::size_t layer, const MatrixF& attn,
                                  MatrixF& proj, LinearProtect mode) {
  project_cols(layers_.at(layer).wo_cols, hid_col0_, attn, proj, mode);
}

void ShardWorker::project_wo_partial(std::size_t layer, const MatrixF& attn,
                                     LinearProtect mode) {
  const LayerSlices& s = layers_.at(layer);
  if (!s.wo_rows.has_value()) {  // no heads: zero contribution
    partial_ = MatrixF(attn.rows(), hidden_);
    return;
  }
  // Gather this shard's head columns into a dense input for the
  // row-parallel slice: wo_rows is in_features = qkv_cols_ wide.
  if (xslice_.rows() != attn.rows() || xslice_.cols() != qkv_cols_) {
    xslice_ = MatrixF(attn.rows(), qkv_cols_);
  }
  for (std::size_t r = 0; r < attn.rows(); ++r) {
    std::copy_n(&attn(r, qkv_col0_), qkv_cols_, &xslice_(r, 0));
  }
  linear_ += s.wo_rows->forward(xslice_, partial_, mode, nullptr);
}

void ShardWorker::residual_ln_rows(MatrixF& X, const MatrixF& add,
                                   MatrixF& h2,
                                   const transformer::LayerNorm& ln2) const {
  if (row1_ <= row0_) return;
  const std::size_t n = (row1_ - row0_) * X.cols();
  float* x = &X(row0_, 0);
  const float* a = &add(row0_, 0);
  for (std::size_t i = 0; i < n; ++i) x[i] += a[i];
  std::copy_n(x, n, &h2(row0_, 0));
  ln2.forward(h2, row0_, row1_ - row0_);
}

void ShardWorker::ffn_w1_gelu(std::size_t layer, const MatrixF& h2,
                              MatrixF& mid, LinearProtect mode, bool protect) {
  const LayerSlices& s = layers_.at(layer);
  const std::size_t cols = s.w1.out_features();
  if (cols == 0) return;
  linear_ += s.w1.forward(h2, scratch_, mode, nullptr);
  // Per-slice activation restriction: GELU is elementwise, so restricting
  // each shard's slice equals restricting the full activation matrix.
  transformer::RangeRestrictedGelu act = s.act;
  act.restrict_range = protect;
  clipped_ += act.forward(scratch_, nullptr);
  for (std::size_t r = 0; r < h2.rows(); ++r) {
    std::copy_n(&scratch_(r, 0), cols, &mid(r, inner_col0_));
  }
}

void ShardWorker::ffn_w2(std::size_t layer, const MatrixF& mid,
                         MatrixF& ffn_out, LinearProtect mode) {
  project_cols(layers_.at(layer).w2, hid_col0_, mid, ffn_out, mode);
}

void ShardWorker::residual_rows(MatrixF& X, const MatrixF& add) const {
  if (row1_ <= row0_) return;
  const std::size_t n = (row1_ - row0_) * X.cols();
  float* x = &X(row0_, 0);
  const float* a = &add(row0_, 0);
  for (std::size_t i = 0; i < n; ++i) x[i] += a[i];
}

// ---------------------------------------------------------------------------
// ShardedEngine
// ---------------------------------------------------------------------------

ShardedEngine::ShardedEngine(const transformer::Model& model,
                             std::size_t shards, CombineMode combine)
    : model_(&model), combine_(combine) {
  if (shards == 0) {
    throw std::invalid_argument("ShardedEngine: shards must be >= 1");
  }
  const auto& cfg = model.config();
  // Head-column QKV slices must land on 64-column ABFT tile boundaries for
  // the bit-identity guarantee; hidden and ffn_inner are already multiples
  // of 64 (Linear enforces it on out_features).
  if (cfg.head_dim() % kTile != 0) {
    throw std::invalid_argument(
        "ShardedEngine: head_dim must be a multiple of the 64-column "
        "checksum tile to shard by heads");
  }
  workers_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    workers_.emplace_back(model, s, shards, combine);
  }
  errors_.resize(shards);
  if (shards > 1) {
    start_ = std::make_unique<std::barrier<>>(
        static_cast<std::ptrdiff_t>(shards));
    done_ = std::make_unique<std::barrier<>>(
        static_cast<std::ptrdiff_t>(shards));
    threads_.reserve(shards - 1);
    for (std::size_t s = 1; s < shards; ++s) {
      threads_.emplace_back([this, s] { worker_loop(s); });
    }
  }
}

ShardedEngine::~ShardedEngine() {
  if (!threads_.empty()) {
    stop_ = true;
    start_->arrive_and_wait();  // release workers into the stop check
    for (std::thread& t : threads_) t.join();
  }
}

void ShardedEngine::worker_loop(std::size_t shard) {
  while (true) {
    start_->arrive_and_wait();
    if (stop_) return;
    try {
      (*fn_)(shard);
    } catch (...) {
      errors_[shard] = std::current_exception();
    }
    done_->arrive_and_wait();
  }
}

void ShardedEngine::run_phase(const std::function<void(std::size_t)>& fn) {
  if (threads_.empty()) {
    fn(0);
    return;
  }
  fn_ = &fn;
  start_->arrive_and_wait();
  try {
    fn(0);
  } catch (...) {
    errors_[0] = std::current_exception();
  }
  done_->arrive_and_wait();
  fn_ = nullptr;
  for (std::exception_ptr& e : errors_) {
    if (e) {
      const std::exception_ptr first = e;
      for (std::exception_ptr& x : errors_) x = nullptr;
      std::rethrow_exception(first);
    }
  }
}

TickResult ShardedEngine::run_tick(std::span<const ShardTickEntry> entries,
                                   MatrixF& X, MatrixF& y,
                                   std::span<FtReport> per_item,
                                   const core::EftaOptions& efta,
                                   bool protect_linear) {
  const auto& cfg = model_->config();
  const std::size_t T = X.rows();
  const std::size_t hidden = cfg.hidden;
  const std::size_t heads = cfg.heads;
  const std::size_t dim = cfg.head_dim();
  check_per_item(entries, heads, per_item.size());
  const auto mode =
      protect_linear ? LinearProtect::kStridedAbft : LinearProtect::kNone;

  for (ShardWorker& w : workers_) w.begin_tick(T);

  // Tick-wide shared scratch: every phase writes a disjoint row or column
  // range per shard, so the workers never touch the same element between
  // two barriers.
  MatrixF h(T, hidden), qm(T, hidden), km(T, hidden), vm(T, hidden);
  MatrixF attn(T, hidden), proj(T, hidden), ffn_out(T, hidden);
  MatrixF mid(T, cfg.ffn_inner);
  MatrixH qh(T, hidden), kh(T, hidden), vh(T, hidden);
  std::vector<core::DecodeWorkItem> items;
  std::vector<std::size_t> item_heads;
  std::vector<FtReport> layer_item(per_item.size());

  TickResult res;
  const auto& blocks = model_->blocks();
  for (std::size_t layer = 0; layer < blocks.size(); ++layer) {
    const Block& blk = blocks[layer];
    // --- attention sub-block ---
    run_phase([&](std::size_t s) {
      workers_[s].copy_ln_rows(X, h, blk.ln1());
    });
    run_phase([&](std::size_t s) {
      workers_[s].project_qkv(layer, h, qm, km, vm, mode);
    });
    run_phase([&](std::size_t s) {
      workers_[s].narrow_rows(qm, qh);
      workers_[s].narrow_rows(km, kh);
      workers_[s].narrow_rows(vm, vh);
    });
    // Coordinator: cache appends stay serial in entry order — the paged
    // pool is global state and the append order is an engine invariant.
    items.clear();
    item_heads.clear();
    for (const ShardTickEntry& e : entries) {
      e.cache->append_chunk(layer, {&kh(e.row0, 0), e.rows * hidden},
                            {&vh(e.row0, 0), e.rows * hidden}, e.rows,
                            e.defer_seal);
      for (std::size_t hd = 0; hd < heads; ++hd) {
        items.push_back(core::DecodeWorkItem{
            e.cache->slice(layer, hd), &qh(e.row0, hd * dim),
            &attn(e.row0, hd * dim), e.rows, hidden, hidden});
        item_heads.push_back(hd);
      }
    }
    std::fill(layer_item.begin(), layer_item.end(), FtReport{});
    run_phase([&](std::size_t s) {
      workers_[s].attend(items, item_heads, efta, layer_item);
    });
    for (std::size_t i = 0; i < layer_item.size(); ++i) {
      per_item[i] += layer_item[i];
    }
    if (combine_ == CombineMode::kColumnParallel) {
      run_phase([&](std::size_t s) {
        workers_[s].project_wo_cols(layer, attn, proj, mode);
      });
    } else {
      run_phase([&](std::size_t s) {
        workers_[s].project_wo_partial(layer, attn, mode);
      });
      // Ring-reduce the partial sums in fixed shard order, then add the
      // layer bias exactly once.
      std::vector<const MatrixF*> parts;
      parts.reserve(workers_.size());
      for (const ShardWorker& w : workers_) parts.push_back(&w.partial());
      combiner_.reduce(parts, proj);
      const std::span<const float> bias = blk.wo().bias();
      if (!bias.empty()) {
        for (std::size_t r = 0; r < T; ++r) {
          float* row = &proj(r, 0);
          for (std::size_t c = 0; c < hidden; ++c) row[c] += bias[c];
        }
      }
    }
    // --- feed-forward sub-block (h doubles as the ln2 output) ---
    run_phase([&](std::size_t s) {
      workers_[s].residual_ln_rows(X, proj, h, blk.ln2());
    });
    run_phase([&](std::size_t s) {
      workers_[s].ffn_w1_gelu(layer, h, mid, mode, protect_linear);
    });
    run_phase([&](std::size_t s) {
      workers_[s].ffn_w2(layer, mid, ffn_out, mode);
    });
    run_phase([&](std::size_t s) {
      workers_[s].residual_rows(X, ffn_out);
    });
  }

  y = MatrixF(T, hidden);
  run_phase([&](std::size_t s) {
    workers_[s].copy_ln_rows(X, y, model_->final_ln());
  });

  // Merge per-shard outcomes in fixed shard order.
  std::vector<abft::Report> lin;
  lin.reserve(workers_.size());
  for (const ShardWorker& w : workers_) {
    lin.push_back(w.linear_report());
    res.activations_clipped += w.activations_clipped();
  }
  res.linear = DeterministicCombiner::merge(lin);
  for (const FtReport& r : per_item) res.attention += r;
  return res;
}

}  // namespace ftt::serve
