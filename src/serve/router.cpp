#include "serve/router.hpp"

#include <stdexcept>

namespace ftt::serve {

Router::Router(const transformer::Model& model, RouterOptions opt)
    : opt_(opt) {
  if (opt_.replicas == 0) {
    throw std::invalid_argument("Router: replicas must be >= 1");
  }
  engines_.reserve(opt_.replicas);
  for (std::size_t r = 0; r < opt_.replicas; ++r) {
    engines_.push_back(std::make_unique<DecodeEngine>(model, opt_.engine));
  }
}

std::size_t Router::choose_replica(const tensor::MatrixF& prompt_hidden) {
  // Sticky prefix affinity: key the first shareable tile with the same
  // chain hash the engines key their prefix registries with.  A prompt has
  // a shareable tile iff (rows - 1) / 64 >= 1 — the engine never shares the
  // last prompt row (it seeds generation).
  if (opt_.sticky_prefix && opt_.engine.share_prefix &&
      prompt_hidden.rows() > TilePool::kTileRows) {
    const ChainKey key = chain_extend(
        ChainKey{}, &prompt_hidden(0, 0),
        TilePool::kTileRows * prompt_hidden.cols() * sizeof(float));
    const auto it = affinity_.find(key);
    if (it != affinity_.end()) return it->second;
    const std::size_t r = choose_replica_least_loaded();
    affinity_.emplace(key, r);
    return r;
  }
  return choose_replica_least_loaded();
}

std::size_t Router::choose_replica_least_loaded() const noexcept {
  std::size_t best = 0;
  std::size_t best_load = SIZE_MAX;
  for (std::size_t r = 0; r < engines_.size(); ++r) {
    const std::size_t load = engines_[r]->queued() + engines_[r]->active();
    if (load < best_load) {  // strict: lowest index wins ties
      best = r;
      best_load = load;
    }
  }
  return best;
}

Router::RequestId Router::submit(const tensor::MatrixF& prompt_hidden,
                                 std::size_t max_new_tokens,
                                 Priority priority) {
  const std::size_t r = choose_replica(prompt_hidden);
  const DecodeEngine::RequestId local =
      engines_[r]->submit(prompt_hidden, max_new_tokens, priority);
  placements_.push_back(Placement{r, local});
  return placements_.size() - 1;
}

StepStats Router::step(fault::FaultInjector* inj) {
  StepStats total;
  for (const auto& e : engines_) total.merge(e->step(inj));
  lifetime_.merge(total);
  return total;
}

StepStats Router::step(std::span<fault::FaultInjector* const> per_replica) {
  if (per_replica.size() != engines_.size()) {
    throw std::invalid_argument(
        "Router::step: one injector slot per replica required");
  }
  StepStats total;
  for (std::size_t r = 0; r < engines_.size(); ++r) {
    total.merge(engines_[r]->step(per_replica[r]));
  }
  lifetime_.merge(total);
  return total;
}

StepStats Router::run_until_idle(fault::FaultInjector* inj,
                                 std::size_t max_ticks) {
  StepStats total;
  for (std::size_t i = 0; i < max_ticks; ++i) {
    if (queued() == 0 && active() == 0) break;
    total.merge(step(inj));
  }
  return total;
}

std::size_t Router::queued() const noexcept {
  std::size_t n = 0;
  for (const auto& e : engines_) n += e->queued();
  return n;
}

std::size_t Router::active() const noexcept {
  std::size_t n = 0;
  for (const auto& e : engines_) n += e->active();
  return n;
}

const Router::Placement& Router::checked(RequestId id) const {
  if (id >= placements_.size()) {
    throw std::out_of_range("Router: unknown request id");
  }
  return placements_[id];
}

Router::Placement Router::placement(RequestId id) const { return checked(id); }

RequestState Router::state(RequestId id) const {
  const Placement& p = checked(id);
  return engines_[p.replica]->state(p.local);
}

std::size_t Router::context_length(RequestId id) const {
  const Placement& p = checked(id);
  return engines_[p.replica]->context_length(p.local);
}

std::span<const float> Router::hidden(RequestId id) const {
  const Placement& p = checked(id);
  return engines_[p.replica]->hidden(p.local);
}

const attention::FtReport& Router::report(RequestId id) const {
  const Placement& p = checked(id);
  return engines_[p.replica]->report(p.local);
}

void Router::finish(RequestId id) {
  const Placement& p = checked(id);
  engines_[p.replica]->finish(p.local);
}

}  // namespace ftt::serve
