#include "serve/router.hpp"

#include <stdexcept>

namespace ftt::serve {

Router::Router(const transformer::Model& model, RouterOptions opt)
    : opt_(opt) {
  if (opt_.replicas == 0) {
    throw std::invalid_argument("Router: replicas must be >= 1");
  }
  if (opt_.drain_fault_threshold > 0 && opt_.drain_window_ticks == 0) {
    throw std::invalid_argument(
        "Router: replica drain needs drain_window_ticks >= 1");
  }
  engines_.reserve(opt_.replicas);
  for (std::size_t r = 0; r < opt_.replicas; ++r) {
    engines_.push_back(std::make_unique<DecodeEngine>(model, opt_.engine));
  }
  health_.resize(opt_.replicas);
}

std::size_t Router::choose_replica(const tensor::MatrixF& prompt_hidden) {
  // Sticky prefix affinity: key the first shareable tile with the same
  // chain hash the engines key their prefix registries with.  A prompt has
  // a shareable tile iff (rows - 1) / 64 >= 1 — the engine never shares the
  // last prompt row (it seeds generation).
  if (opt_.sticky_prefix && opt_.engine.share_prefix &&
      prompt_hidden.rows() > TilePool::kTileRows) {
    const ChainKey key = chain_extend(
        ChainKey{}, &prompt_hidden(0, 0),
        TilePool::kTileRows * prompt_hidden.cols() * sizeof(float));
    const auto it = affinity_.find(key);
    if (it != affinity_.end()) {
      // A drained pin remaps to a healthy replica — and stays remapped, so
      // the prefix keeps pooling on one replica after the readmission.
      if (!health_[it->second].drained) return it->second;
      it->second = choose_replica_least_loaded();
      return it->second;
    }
    const std::size_t r = choose_replica_least_loaded();
    affinity_.emplace(key, r);
    return r;
  }
  return choose_replica_least_loaded();
}

std::size_t Router::choose_replica_least_loaded() const noexcept {
  std::size_t best = 0;
  std::size_t best_load = SIZE_MAX;
  for (std::size_t r = 0; r < engines_.size(); ++r) {
    if (health_[r].drained) continue;  // never the last one: see drain rung
    const std::size_t load = engines_[r]->queued() + engines_[r]->active();
    if (load < best_load) {  // strict: lowest index wins ties
      best = r;
      best_load = load;
    }
  }
  return best;
}

Router::RequestId Router::submit(const tensor::MatrixF& prompt_hidden,
                                 std::size_t max_new_tokens,
                                 Priority priority) {
  const std::size_t r = choose_replica(prompt_hidden);
  const DecodeEngine::RequestId local =
      engines_[r]->submit(prompt_hidden, max_new_tokens, priority);
  placements_.push_back(Placement{r, local});
  // Retain what a drain-time resubmission needs to replay the request; a
  // default (empty-prompt) slot keeps the vectors index-aligned otherwise.
  retained_.emplace_back();
  if (drain_enabled()) {
    retained_.back() = Retained{prompt_hidden, max_new_tokens, priority};
  }
  return placements_.size() - 1;
}

StepStats Router::step(fault::FaultInjector* inj) {
  StepStats total;
  for (const auto& e : engines_) total.merge(e->step(inj));
  update_replica_health(total);
  lifetime_.merge(total);
  return total;
}

StepStats Router::step(std::span<fault::FaultInjector* const> per_replica) {
  if (per_replica.size() != engines_.size()) {
    throw std::invalid_argument(
        "Router::step: one injector slot per replica required");
  }
  StepStats total;
  for (std::size_t r = 0; r < engines_.size(); ++r) {
    total.merge(engines_[r]->step(per_replica[r]));
  }
  update_replica_health(total);
  lifetime_.merge(total);
  return total;
}

void Router::update_replica_health(StepStats& total) {
  if (!drain_enabled()) return;
  // Probation countdown first: a replica readmits with a clean window and a
  // resynced delta base (evidence from before the drain is spent).
  for (std::size_t r = 0; r < engines_.size(); ++r) {
    ReplicaHealth& h = health_[r];
    if (!h.drained) continue;
    if (h.probe > 0) --h.probe;
    if (h.probe == 0) {
      h.drained = false;
      h.last_faults = engines_[r]->lifetime().attention.uncorrected() +
                      engines_[r]->lifetime().linear.uncorrected();
    }
  }
  for (std::size_t r = 0; r < engines_.size(); ++r) {
    ReplicaHealth& h = health_[r];
    if (h.drained) continue;
    const std::size_t cur =
        engines_[r]->lifetime().attention.uncorrected() +
        engines_[r]->lifetime().linear.uncorrected();
    const std::size_t delta = cur > h.last_faults ? cur - h.last_faults : 0;
    h.last_faults = cur;
    h.window.push_back(delta);
    h.window_sum += delta;
    while (h.window.size() > opt_.drain_window_ticks) {
      h.window_sum -= h.window.front();
      h.window.pop_front();
    }
    if (h.window_sum <= opt_.drain_fault_threshold) continue;
    // Never drain the last healthy replica: degraded service beats none.
    std::size_t healthy_now = 0;
    for (const ReplicaHealth& o : health_) healthy_now += o.drained ? 0 : 1;
    if (healthy_now <= 1) continue;
    h.drained = true;
    h.probe = opt_.drain_probe_ticks;
    h.window.clear();
    h.window_sum = 0;
    drain_replica(r);
    ++total.drained;
  }
}

void Router::drain_replica(std::size_t r) {
  DecodeEngine& old = *engines_[r];
  for (RequestId id = 0; id < placements_.size(); ++id) {
    Placement& p = placements_[id];
    if (p.replica != r) continue;
    Retained& ret = retained_[id];
    if (old.state(p.local) == RequestState::kRetired) {
      ret.prompt = tensor::MatrixF();  // done: nothing left to replay
      continue;
    }
    // Finish on the drained replica, replay from the prompt on a healthy
    // one.  Generation is deterministic in the prompt, so the resubmitted
    // request reproduces its exact clean token stream — the replica-level
    // analogue of preemption-recompute.
    old.finish(p.local);
    const std::size_t nr = choose_replica(ret.prompt);
    p.local = engines_[nr]->submit(ret.prompt, ret.max_new_tokens,
                                   ret.priority);
    p.replica = nr;
  }
}

StepStats Router::run_until_idle(fault::FaultInjector* inj,
                                 std::size_t max_ticks) {
  StepStats total;
  for (std::size_t i = 0; i < max_ticks; ++i) {
    if (queued() == 0 && active() == 0) break;
    total.merge(step(inj));
  }
  return total;
}

std::size_t Router::queued() const noexcept {
  std::size_t n = 0;
  for (const auto& e : engines_) n += e->queued();
  return n;
}

std::size_t Router::active() const noexcept {
  std::size_t n = 0;
  for (const auto& e : engines_) n += e->active();
  return n;
}

const Router::Placement& Router::checked(RequestId id) const {
  if (id >= placements_.size()) {
    throw std::out_of_range("Router: unknown request id");
  }
  return placements_[id];
}

Router::Placement Router::placement(RequestId id) const { return checked(id); }

RequestState Router::state(RequestId id) const {
  const Placement& p = checked(id);
  return engines_[p.replica]->state(p.local);
}

std::size_t Router::context_length(RequestId id) const {
  const Placement& p = checked(id);
  return engines_[p.replica]->context_length(p.local);
}

std::span<const float> Router::hidden(RequestId id) const {
  const Placement& p = checked(id);
  return engines_[p.replica]->hidden(p.local);
}

const attention::FtReport& Router::report(RequestId id) const {
  const Placement& p = checked(id);
  return engines_[p.replica]->report(p.local);
}

const attention::FtReport* Router::find_report(RequestId id) const noexcept {
  if (id >= placements_.size()) return nullptr;
  const Placement& p = placements_[id];
  return engines_[p.replica]->find_report(p.local);
}

void Router::finish(RequestId id) {
  const Placement& p = checked(id);
  engines_[p.replica]->finish(p.local);
  retained_[id].prompt = tensor::MatrixF();  // retired: nothing to replay
}

bool Router::replica_drained(std::size_t r) const {
  if (r >= health_.size()) {
    throw std::out_of_range("Router: unknown replica index");
  }
  return health_[r].drained;
}

std::size_t Router::healthy_replicas() const noexcept {
  std::size_t n = 0;
  for (const ReplicaHealth& h : health_) n += h.drained ? 0 : 1;
  return n;
}

}  // namespace ftt::serve
