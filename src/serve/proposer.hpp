#pragma once
// Pluggable draft-token proposers for speculative decode.
//
// The serving engine generates over hidden states: each committed token is
// one fed input row (hidden floats), and generation is a deterministic
// function of the committed row sequence.  A TokenProposer guesses the next
// few rows; the engine scores the guesses through the verified block-decode
// kernel in one pass and commits only the longest prefix whose rows
// bit-match what the model actually produced.  A proposer therefore can
// never corrupt a stream — a bad guess only wastes the speculative rows'
// compute — which is what makes the interface safely pluggable.
//
// The default drafter is prompt lookup (a.k.a. n-gram / lookahead-free
// speculative decoding, as in vLLM's prompt-lookup and transformers'
// assisted generation without a second model): match the tail of the
// request's own committed history against an earlier occurrence and propose
// the rows that followed it.  It needs no second model and no training, and
// it shines exactly where serving workloads repeat themselves — summaries
// quoting their source, code completion echoing identifiers, templated
// output, or any stream that has entered a cycle.

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

namespace ftt::serve {

/// Per-request draft source.  The engine drives it with the committed row
/// stream: observe() every committed input row in order (prompt rows first,
/// then each generated row as it commits), reset() when a request's history
/// restarts (admission, preemption) or is discarded (retirement), and
/// propose() to draft up to `max_rows` continuation rows.
///
/// Contract: propose() is called only when the request's observed history
/// is current, and proposed rows are *predictions of the next committed
/// input rows* — the engine verifies them bitwise against the model's real
/// outputs, so a proposer is free to guess aggressively.  Implementations
/// need no thread safety: the engine calls them from the tick thread only.
class TokenProposer {
 public:
  virtual ~TokenProposer() = default;

  /// Forget everything about `request_id` (new or recomputed history
  /// follows via observe(), or nothing — the request retired).
  virtual void reset(std::size_t request_id) = 0;

  /// One committed input row of `request_id`, in stream order.
  virtual void observe(std::size_t request_id, std::span<const float> row) = 0;

  /// Draft up to `max_rows` rows continuing the observed history, written
  /// row-major (`hidden` floats each) into `out`.  Returns the number of
  /// rows drafted; 0 means "no idea", costing the engine nothing.
  virtual std::size_t propose(std::size_t request_id, std::size_t max_rows,
                              std::size_t hidden, float* out) = 0;
};

struct PromptLookupOptions {
  /// Rows of trailing context that must match an earlier occurrence before
  /// its continuation is proposed.  1 fires earliest; larger values demand
  /// stronger evidence.  Exact (bitwise) row equality is the match
  /// predicate — hidden rows are full fp32 vectors, so a match is
  /// essentially never coincidental.
  std::size_t min_match = 1;
  /// Cap on retained history rows per request (0 = unbounded).  Oldest
  /// rows are dropped first; proposals then only draw on the retained
  /// window.  The default bounds the drafter's memory at hidden * 16 KiB
  /// per request (fp32 rows are the price of proposing actual row values)
  /// while still covering any realistic repetition distance.
  std::size_t max_history = 4096;
};

/// The default no-second-model drafter: exact n-gram lookup over the
/// request's own committed history.  Memory cost is one fp32 row per
/// retained history row (bounded by max_history), the price of being able
/// to propose the actual row values.
class PromptLookupProposer final : public TokenProposer {
 public:
  explicit PromptLookupProposer(PromptLookupOptions opt = {});

  void reset(std::size_t request_id) override;
  void observe(std::size_t request_id, std::span<const float> row) override;
  std::size_t propose(std::size_t request_id, std::size_t max_rows,
                      std::size_t hidden, float* out) override;

  [[nodiscard]] const PromptLookupOptions& options() const noexcept {
    return opt_;
  }

 private:
  struct History {
    std::vector<float> rows;         ///< retained rows, concatenated
    std::vector<std::uint64_t> hash; ///< per-row content hash (fast reject)
    std::size_t hidden = 0;
  };

  PromptLookupOptions opt_;
  std::unordered_map<std::size_t, History> histories_;
};

}  // namespace ftt::serve
