#pragma once
// Replica router: spread requests across M independent DecodeEngine
// replicas and merge their per-tick stats.
//
// Placement policy (deterministic — no randomness, no wall clock):
//
//   1. sticky prefix affinity: when a prompt has a shareable prefix (at
//      least one full 64-row tile, the unit the engines' prefix registry
//      keys), the router hashes the first tile with the same chain hash the
//      engines use and pins every prompt sharing that prefix to one
//      replica.  Prefix sharing is per-replica state — the TilePool's
//      registry lives inside each engine — so spraying a hot prefix across
//      replicas would compute it M times and cache it M times; stickiness
//      keeps the sharing (and its capacity win) intact.
//   2. otherwise least-loaded: the replica with the fewest queued + active
//      requests, lowest index on ties.
//
// Request results are placement-invariant: a batched tick is bit-identical
// to running each request in its own engine (the engine's core guarantee),
// so which replica a request lands on — and what else shares it — cannot
// change its tokens.  tests/test_router.cpp pins routed runs against the
// solo engine bit for bit, including under identical injected faults via
// the per-replica injector overload.

#include <cstddef>
#include <span>
#include <unordered_map>
#include <vector>

#include "serve/engine.hpp"

namespace ftt::serve {

struct RouterOptions {
  std::size_t replicas = 1;
  /// Pin prompts sharing a shareable prefix tile to one replica (see file
  /// header).  Off = pure least-loaded.
  bool sticky_prefix = true;
  /// Options every replica engine is constructed with (shards, pool size,
  /// speculation, ... — replicas are homogeneous).
  EngineOptions engine;
};

class Router {
 public:
  using RequestId = std::size_t;  ///< router-level id

  struct Placement {
    std::size_t replica = 0;
    DecodeEngine::RequestId local = 0;  ///< id inside that replica
  };

  Router(const transformer::Model& model, RouterOptions opt = {});

  /// Route and submit: picks the replica (sticky prefix, then
  /// least-loaded) and forwards to its DecodeEngine::submit.
  RequestId submit(const tensor::MatrixF& prompt_hidden,
                   std::size_t max_new_tokens = 0,
                   Priority priority = Priority::kNormal);

  /// Tick every replica once, in replica order, and merge the StepStats.
  /// The injector (if any) is threaded through every replica's tick — one
  /// fault process observed by all replicas in sequence.
  StepStats step(fault::FaultInjector* inj = nullptr);
  /// Per-replica injectors (size must equal replicas()): replica r ticks
  /// with per_replica[r].  This is how the fault-parity tests give a routed
  /// replica the *identical* fault sequence its solo twin saw.
  StepStats step(std::span<fault::FaultInjector* const> per_replica);

  /// Tick until every replica is idle (same contract as the engine's).
  StepStats run_until_idle(fault::FaultInjector* inj = nullptr,
                           std::size_t max_ticks = SIZE_MAX);

  [[nodiscard]] std::size_t replicas() const noexcept {
    return engines_.size();
  }
  [[nodiscard]] const DecodeEngine& engine(std::size_t r) const {
    return *engines_.at(r);
  }
  [[nodiscard]] DecodeEngine& engine(std::size_t r) {
    return *engines_.at(r);
  }
  [[nodiscard]] Placement placement(RequestId id) const;

  /// Queued + active across all replicas.
  [[nodiscard]] std::size_t queued() const noexcept;
  [[nodiscard]] std::size_t active() const noexcept;

  // Per-request views, forwarded to the owning replica.
  [[nodiscard]] RequestState state(RequestId id) const;
  [[nodiscard]] std::size_t context_length(RequestId id) const;
  [[nodiscard]] std::span<const float> hidden(RequestId id) const;
  [[nodiscard]] const attention::FtReport& report(RequestId id) const;
  void finish(RequestId id);

  /// Merged stats over every tick this router ever ran.
  [[nodiscard]] const StepStats& lifetime() const noexcept {
    return lifetime_;
  }

 private:
  // TilePool's ChainKeyHash is private to the pool; the router keys its
  // affinity map with the same mix locally.
  struct KeyHash {
    std::size_t operator()(const ChainKey& k) const noexcept {
      return static_cast<std::size_t>(k.a ^ (k.b * 0x9e3779b97f4a7c15ull));
    }
  };

  [[nodiscard]] std::size_t choose_replica(
      const tensor::MatrixF& prompt_hidden);
  /// Fewest queued + active requests; lowest index on ties.
  [[nodiscard]] std::size_t choose_replica_least_loaded() const noexcept;
  [[nodiscard]] const Placement& checked(RequestId id) const;

  RouterOptions opt_;
  std::vector<std::unique_ptr<DecodeEngine>> engines_;
  std::vector<Placement> placements_;  ///< router id -> (replica, local id)
  std::unordered_map<ChainKey, std::size_t, KeyHash> affinity_;
  StepStats lifetime_;
};

}  // namespace ftt::serve
