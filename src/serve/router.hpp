#pragma once
// Replica router: spread requests across M independent DecodeEngine
// replicas and merge their per-tick stats.
//
// Placement policy (deterministic — no randomness, no wall clock):
//
//   1. sticky prefix affinity: when a prompt has a shareable prefix (at
//      least one full 64-row tile, the unit the engines' prefix registry
//      keys), the router hashes the first tile with the same chain hash the
//      engines use and pins every prompt sharing that prefix to one
//      replica.  Prefix sharing is per-replica state — the TilePool's
//      registry lives inside each engine — so spraying a hot prefix across
//      replicas would compute it M times and cache it M times; stickiness
//      keeps the sharing (and its capacity win) intact.
//   2. otherwise least-loaded: the replica with the fewest queued + active
//      requests, lowest index on ties.
//
// Request results are placement-invariant: a batched tick is bit-identical
// to running each request in its own engine (the engine's core guarantee),
// so which replica a request lands on — and what else shares it — cannot
// change its tokens.  tests/test_router.cpp pins routed runs against the
// solo engine bit for bit, including under identical injected faults via
// the per-replica injector overload.

#include <cstddef>
#include <deque>
#include <span>
#include <unordered_map>
#include <vector>

#include "serve/engine.hpp"

namespace ftt::serve {

struct RouterOptions {
  std::size_t replicas = 1;
  /// Pin prompts sharing a shareable prefix tile to one replica (see file
  /// header).  Off = pure least-loaded.
  bool sticky_prefix = true;
  /// Options every replica engine is constructed with (shards, pool size,
  /// speculation, ... — replicas are homogeneous).
  EngineOptions engine;

  // --- replica drain: the router-level rung of the recovery ladder
  //     (serve/recovery.hpp) ---
  /// Sliding window (ticks) of per-replica UNCORRECTED fault counts —
  /// saturating deltas of each engine's lifetime attention + linear
  /// uncorrected() totals.  A replica whose window sum exceeds
  /// `drain_fault_threshold` is drained: its in-flight requests are
  /// finished there and resubmitted to healthy replicas (generation is a
  /// deterministic function of the prompt, so the replay reproduces the
  /// exact clean token stream), new placements skip it, and it is
  /// readmitted after `drain_probe_ticks` ticks.  The last healthy replica
  /// is never drained.  threshold 0 = drain off.  While drain is on, the
  /// router retains each live request's prompt/budget/priority for the
  /// resubmission (freed at retirement), which is why it defaults off.
  std::size_t drain_window_ticks = 16;
  std::size_t drain_fault_threshold = 0;
  std::size_t drain_probe_ticks = 8;
};

class Router {
 public:
  using RequestId = std::size_t;  ///< router-level id

  struct Placement {
    std::size_t replica = 0;
    DecodeEngine::RequestId local = 0;  ///< id inside that replica
  };

  Router(const transformer::Model& model, RouterOptions opt = {});

  /// Route and submit: picks the replica (sticky prefix, then
  /// least-loaded) and forwards to its DecodeEngine::submit.
  RequestId submit(const tensor::MatrixF& prompt_hidden,
                   std::size_t max_new_tokens = 0,
                   Priority priority = Priority::kNormal);

  /// Tick every replica once, in replica order, and merge the StepStats.
  /// The injector (if any) is threaded through every replica's tick — one
  /// fault process observed by all replicas in sequence.
  StepStats step(fault::FaultInjector* inj = nullptr);
  /// Per-replica injectors (size must equal replicas()): replica r ticks
  /// with per_replica[r].  This is how the fault-parity tests give a routed
  /// replica the *identical* fault sequence its solo twin saw.
  StepStats step(std::span<fault::FaultInjector* const> per_replica);

  /// Tick until every replica is idle (same contract as the engine's).
  StepStats run_until_idle(fault::FaultInjector* inj = nullptr,
                           std::size_t max_ticks = SIZE_MAX);

  [[nodiscard]] std::size_t replicas() const noexcept {
    return engines_.size();
  }
  [[nodiscard]] const DecodeEngine& engine(std::size_t r) const {
    return *engines_.at(r);
  }
  [[nodiscard]] DecodeEngine& engine(std::size_t r) {
    return *engines_.at(r);
  }
  [[nodiscard]] Placement placement(RequestId id) const;

  /// Queued + active across all replicas.
  [[nodiscard]] std::size_t queued() const noexcept;
  [[nodiscard]] std::size_t active() const noexcept;

  // Per-request views, forwarded to the owning replica.
  [[nodiscard]] RequestState state(RequestId id) const;
  [[nodiscard]] std::size_t context_length(RequestId id) const;
  [[nodiscard]] std::span<const float> hidden(RequestId id) const;
  /// Lifetime attention report; throws std::out_of_range for an id this
  /// router never issued — find_report is the non-throwing probe.
  [[nodiscard]] const attention::FtReport& report(RequestId id) const;
  /// report() without the throw: nullptr for an unknown id.
  [[nodiscard]] const attention::FtReport* find_report(
      RequestId id) const noexcept;
  void finish(RequestId id);

  /// True while replica `r` is drained (no new placements; in-flight
  /// requests were replayed elsewhere).  Throws for r >= replicas().
  [[nodiscard]] bool replica_drained(std::size_t r) const;
  /// Replicas currently accepting placements.
  [[nodiscard]] std::size_t healthy_replicas() const noexcept;

  /// Merged stats over every tick this router ever ran.
  [[nodiscard]] const StepStats& lifetime() const noexcept {
    return lifetime_;
  }

 private:
  // TilePool's ChainKeyHash is private to the pool; the router keys its
  // affinity map with the same mix locally.
  struct KeyHash {
    std::size_t operator()(const ChainKey& k) const noexcept {
      return static_cast<std::size_t>(k.a ^ (k.b * 0x9e3779b97f4a7c15ull));
    }
  };

  /// Sliding-window uncorrected-fault accounting for one replica (drain).
  struct ReplicaHealth {
    std::deque<std::size_t> window;  ///< per-tick uncorrected deltas
    std::size_t window_sum = 0;
    std::size_t last_faults = 0;  ///< lifetime-total snapshot (delta base)
    bool drained = false;
    std::size_t probe = 0;  ///< ticks left before readmission
  };
  /// What resubmission needs to replay a request from scratch; retained
  /// only while drain is enabled.
  struct Retained {
    tensor::MatrixF prompt;
    std::size_t max_new_tokens = 0;
    Priority priority = Priority::kNormal;
  };

  [[nodiscard]] std::size_t choose_replica(
      const tensor::MatrixF& prompt_hidden);
  /// Fewest queued + active requests among non-drained replicas; lowest
  /// index on ties.
  [[nodiscard]] std::size_t choose_replica_least_loaded() const noexcept;
  [[nodiscard]] const Placement& checked(RequestId id) const;
  [[nodiscard]] bool drain_enabled() const noexcept {
    return opt_.drain_fault_threshold > 0 && engines_.size() > 1;
  }
  /// Push this tick's per-replica fault deltas through the windows, drain
  /// over-threshold replicas (resubmitting their in-flight requests) and
  /// count down probations.  Runs after the replicas ticked, inside step().
  void update_replica_health(StepStats& total);
  /// Resubmit every in-flight request of replica `r` to a healthy replica.
  /// `r` must already be marked drained so placement skips it.
  void drain_replica(std::size_t r);

  RouterOptions opt_;
  std::vector<std::unique_ptr<DecodeEngine>> engines_;
  std::vector<Placement> placements_;  ///< router id -> (replica, local id)
  /// Parallel to placements_; entries live (prompt non-empty) only while
  /// drain is enabled and the request has not retired through finish() or
  /// a drain scan.
  std::vector<Retained> retained_;
  std::vector<ReplicaHealth> health_;  ///< size replicas()
  std::unordered_map<ChainKey, std::size_t, KeyHash> affinity_;
  StepStats lifetime_;
};

}  // namespace ftt::serve
