#include "serve/combiner.hpp"

#include <algorithm>
#include <stdexcept>

namespace ftt::serve {

DeterministicCombiner::DeterministicCombiner(std::size_t chunk_values)
    : chunk_(chunk_values) {
  if (chunk_ == 0) {
    throw std::invalid_argument(
        "DeterministicCombiner: chunk_values must be >= 1");
  }
}

void DeterministicCombiner::reduce(
    std::span<const std::span<const float>> partials,
    std::span<float> out) const {
  const std::size_t n = partials.size();
  if (n == 0) {
    throw std::invalid_argument("DeterministicCombiner: no partials");
  }
  for (const auto& p : partials) {
    if (p.size() != out.size()) {
      throw std::invalid_argument(
          "DeterministicCombiner: partial size mismatch");
    }
  }
  const std::size_t total = out.size();
  for (std::size_t c0 = 0, chunk = 0; c0 < total; c0 += chunk_, ++chunk) {
    const std::size_t len = std::min(chunk_, total - c0);
    // Fixed rotated shard order for this chunk — a pure function of
    // (chunk index, shard count), independent of thread scheduling.
    const std::size_t start = chunk % n;
    const float* first = partials[start].data() + c0;
    std::copy_n(first, len, out.data() + c0);
    for (std::size_t s = 1; s < n; ++s) {
      const float* p = partials[(start + s) % n].data() + c0;
      float* dst = out.data() + c0;
      for (std::size_t i = 0; i < len; ++i) dst[i] += p[i];
    }
  }
}

void DeterministicCombiner::reduce(
    std::span<const tensor::MatrixF* const> partials,
    tensor::MatrixF& out) const {
  std::vector<std::span<const float>> views;
  views.reserve(partials.size());
  for (const tensor::MatrixF* m : partials) {
    if (m == nullptr || m->rows() != out.rows() || m->cols() != out.cols()) {
      throw std::invalid_argument(
          "DeterministicCombiner: partial shape mismatch");
    }
    views.emplace_back(m->data(), m->size());
  }
  reduce(views, {out.data(), out.size()});
}

attention::FtReport DeterministicCombiner::merge(
    std::span<const attention::FtReport> per_shard) noexcept {
  attention::FtReport total;
  for (const auto& r : per_shard) total += r;
  return total;
}

abft::Report DeterministicCombiner::merge(
    std::span<const abft::Report> per_shard) noexcept {
  abft::Report total;
  for (const auto& r : per_shard) total += r;
  return total;
}

StepStats DeterministicCombiner::merge(
    std::span<const StepStats> per_shard) noexcept {
  StepStats total;
  for (const auto& s : per_shard) total.merge(s);
  return total;
}

}  // namespace ftt::serve
