#pragma once
// Operation-level (decoupled) fault tolerant attention — the paper's baseline
// (§3.1, Figs. 2-3).
//
// Three sequentially launched kernels, each round-tripping its result through
// HBM:
//   Kernel I  : S = QK^T with classic element-checksum ABFT per block;
//   Kernel II : P = row-softmax(S) protected by DMR (Eqs. 10-11);
//   Kernel III: O = PV with element-checksum ABFT.
// The fp32 S and P intermediates give the pipeline its O(n^2) memory
// footprint and the OOM at seq 16k the paper reports (Fig. 9, bottom).

#include "attention/attention.hpp"
#include "attention/ft_report.hpp"
#include "fault/fault.hpp"

namespace ftt::attention {

struct DecoupledFtOptions {
  float abft_rel_threshold = 0.02f;  ///< calibrated via the Fig. 12 sweep
  float dmr_eps = 1e-3f;             ///< Eq. (10)/(11) agreement tolerance
};

/// Run the 3-kernel protected pipeline.  Faults are injected serially when
/// `inj` is armed (the injector is deterministic and not thread-safe);
/// otherwise slices run under OpenMP.
FtReport decoupled_ft_attention(const tensor::Tensor4H& Q,
                                const tensor::Tensor4H& K,
                                const tensor::Tensor4H& V, tensor::Tensor4F& O,
                                const DecoupledFtOptions& opt = {},
                                fault::FaultInjector* inj = nullptr);

/// Full modeled cost (baseline pipeline + element-ABFT + DMR protection),
/// per Fig. 3's phase decomposition.
sim::CostBreakdown decoupled_ft_costs(const AttnShape& s);

}  // namespace ftt::attention
