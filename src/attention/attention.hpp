#pragma once
// Attention shapes and the unprotected reference implementations.
//
// All attention tensors are batch x heads x seq x dim, fp16 in / fp32
// accumulate, matching the paper's evaluation setup (FP16 I/O, SM80 MMA).
// batch and heads are embarrassingly parallel; kernels loop (and OpenMP-
// parallelize) over slices.

#include <cstddef>

#include "sim/cost.hpp"
#include "tensor/tensor.hpp"

namespace ftt::attention {

struct AttnShape {
  std::size_t batch = 1;
  std::size_t heads = 1;
  std::size_t seq = 64;
  std::size_t dim = 64;

  [[nodiscard]] std::size_t slices() const noexcept { return batch * heads; }
  [[nodiscard]] std::size_t tokens() const noexcept { return batch * seq; }
  [[nodiscard]] std::size_t hidden() const noexcept { return heads * dim; }
};

/// The paper's sweep convention: total token count fixed at 16K, batch
/// adjusted per sequence length (§4.1).
inline AttnShape paper_shape(std::size_t seq, std::size_t heads,
                             std::size_t dim,
                             std::size_t total_tokens = 16384) {
  AttnShape s;
  s.batch = total_tokens / seq;
  if (s.batch == 0) s.batch = 1;
  s.heads = heads;
  s.seq = seq;
  s.dim = dim;
  return s;
}

/// Reference O(n^2) attention: materializes S = QK^T / sqrt(d) per slice,
/// row softmax, O = PV.  Ground truth for every other kernel.  `causal`
/// applies the decoder mask (position r attends to positions <= r).
void standard_attention(const tensor::Tensor4H& Q, const tensor::Tensor4H& K,
                        const tensor::Tensor4H& V, tensor::Tensor4F& O,
                        bool causal = false);

/// Flash attention (Eqs. 1-7): streaming block softmax with running row-max
/// and row-sum; O(block) on-chip state, never materializes S.  This is the
/// unprotected baseline EFTA's overhead is measured against.  Causal masking
/// skips the strictly-upper block column range and masks the diagonal block.
void flash_attention(const tensor::Tensor4H& Q, const tensor::Tensor4H& K,
                     const tensor::Tensor4H& V, tensor::Tensor4F& O,
                     std::size_t block = 64, bool causal = false);

/// Operation counts of unprotected flash attention (the "E2E Attention" bar
/// of Figs. 10/11/13): one fused kernel, O(n) HBM traffic per row-block pass.
sim::CostBreakdown flash_attention_costs(const AttnShape& s,
                                         std::size_t block = 64);

/// Operation counts of the unprotected *decoupled* attention (3 kernels,
/// S and P round-tripped through HBM in fp32).
sim::CostBreakdown decoupled_attention_costs(const AttnShape& s);

/// HBM working set of the decoupled pipeline: Q/K/V/O plus the fp32 S and P
/// intermediates that trigger the paper's OOM at seq 16k (Fig. 9 bottom).
double decoupled_workspace_bytes(const AttnShape& s);

}  // namespace ftt::attention
