#pragma once
// Aggregated fault-tolerance outcome of one protected attention call.

#include <cstddef>

#include "abft/report.hpp"

namespace ftt::attention {

struct FtReport {
  abft::Report gemm1;         ///< QK^T ABFT verification
  abft::Report exp_check;     ///< EXP / subtract-max checksum verification
  abft::Report gemm2;         ///< PV (+rescale +normalize) verification
  std::size_t dmr_recomputes = 0;    ///< extra softmax replicas (DMR mode)
  std::size_t range_corrections = 0; ///< SNVR rowsum replacements (Case 3)
  std::size_t faults_injected = 0;   ///< flips the injector actually placed

  [[nodiscard]] std::size_t total_detected() const noexcept {
    return gemm1.flagged + exp_check.flagged + gemm2.flagged +
           range_corrections + dmr_recomputes;
  }
  [[nodiscard]] std::size_t total_corrected() const noexcept {
    return gemm1.corrected + gemm1.checksum_repairs + exp_check.corrected +
           exp_check.recomputed + exp_check.checksum_repairs +
           gemm2.corrected + gemm2.checksum_repairs + range_corrections;
  }
  /// Detections that no correction accounted for (saturating: a correction
  /// never counts against a different slice's detection below zero).  The
  /// health signal the serving layers act on — tick retry, shard
  /// quarantine and replica drain all read this instead of re-deriving the
  /// subtraction at each call site.
  [[nodiscard]] std::size_t uncorrected() const noexcept {
    const std::size_t d = total_detected();
    const std::size_t c = total_corrected();
    return d > c ? d - c : 0;
  }

  /// Merge the outcome of another slice: batched decode aggregates per-
  /// (request, head) reports without dropping any fault statistics.
  FtReport& operator+=(const FtReport& o) noexcept {
    gemm1 += o.gemm1;
    exp_check += o.exp_check;
    gemm2 += o.gemm2;
    dmr_recomputes += o.dmr_recomputes;
    range_corrections += o.range_corrections;
    faults_injected += o.faults_injected;
    return *this;
  }
  friend FtReport operator+(FtReport a, const FtReport& b) noexcept {
    return a += b;
  }
};

}  // namespace ftt::attention
