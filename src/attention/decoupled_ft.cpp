#include "attention/decoupled_ft.hpp"

#include <cmath>
#include <omp.h>

#include "abft/element_abft.hpp"
#include "numeric/fp16.hpp"
#include "sim/mma.hpp"
#include "softmax/softmax.hpp"

namespace ftt::attention {

using numeric::Half;
using tensor::MatrixF;
using tensor::MatrixH;
using tensor::Tensor4F;
using tensor::Tensor4H;

namespace {

MatrixH load_slice(const Tensor4H& T, std::size_t b, std::size_t h,
                   float scale = 1.0f) {
  MatrixH m(T.seq(), T.dim());
  const auto src = T.slice(b, h);
  if (scale == 1.0f) {
    for (std::size_t i = 0; i < src.size(); ++i) m.data()[i] = src[i];
  } else {
    for (std::size_t i = 0; i < src.size(); ++i) {
      m.data()[i] = Half(src[i].to_float() * scale);
    }
  }
  return m;
}

/// Kernel III building block: element-ABFT-protected O = P * V where P is the
/// fp32 softmax output (rounded through fp16 at the tensor-core boundary).
abft::Report element_abft_gemm_f32h(const MatrixF& P, const MatrixH& V,
                                    MatrixF& O, float threshold,
                                    fault::FaultInjector* inj) {
  const std::size_t M = P.rows(), K = P.cols(), N = V.cols();

  // CCG: two weighted column-sum rows of P (fp16-rounded like the payload).
  MatrixF p_chk(2, K);
  for (std::size_t k = 0; k < K; ++k) {
    float s1 = 0.0f, s2 = 0.0f;
    for (std::size_t i = 0; i < M; ++i) {
      const float v = numeric::round_to_half(P(i, k));
      s1 += v;
      s2 += static_cast<float>(i + 1) * v;
    }
    p_chk(0, k) = fault::corrupt(inj, fault::Site::kChecksum, s1);
    p_chk(1, k) = fault::corrupt(inj, fault::Site::kChecksum, s2);
  }

  sim::gemm_f32h_nn(P, V, O);
  if (inj) {
    for (std::size_t i = 0; i < M; ++i) {
      for (std::size_t j = 0; j < N; ++j) {
        O(i, j) = inj->corrupt(fault::Site::kGemm2, O(i, j));
      }
    }
  }

  MatrixF col_chk(2, N);
  sim::gemm_f32h_nn(p_chk, V, col_chk);
  if (inj) {
    for (std::size_t r = 0; r < 2; ++r) {
      for (std::size_t j = 0; j < N; ++j) {
        col_chk(r, j) = inj->corrupt(fault::Site::kChecksum, col_chk(r, j));
      }
    }
  }
  return abft::ElementAbft::verify_correct(O, col_chk, threshold);
}

FtReport run_slice(const MatrixH& q, const MatrixH& k, const MatrixH& v,
                   Tensor4F& O, std::size_t bb, std::size_t hh,
                   const DecoupledFtOptions& opt, fault::FaultInjector* inj) {
  FtReport rep;
  const std::size_t seq = q.rows(), dim = q.cols();

  // --- Kernel I: ABFT-GEMM S = QK^T (element checksums, Eq. 8-9). ---
  MatrixF S(seq, seq);
  rep.gemm1 = abft::ElementAbft::gemm_nt(q, k, S, opt.abft_rel_threshold, inj,
                                         fault::Site::kGemm1);

  // --- Kernel II: DMR row softmax (Eq. 10-11). ---
  const softmax::DmrResult dmr = softmax::dmr_row_softmax(S, opt.dmr_eps, inj);
  rep.dmr_recomputes = dmr.recomputes;

  // --- Kernel III: ABFT-GEMM O = PV. ---
  MatrixF out(seq, dim);
  rep.gemm2 =
      element_abft_gemm_f32h(S, v, out, opt.abft_rel_threshold, inj);

  for (std::size_t r = 0; r < seq; ++r) {
    for (std::size_t c = 0; c < dim; ++c) O.at(bb, hh, r, c) = out(r, c);
  }
  return rep;
}

}  // namespace

FtReport decoupled_ft_attention(const Tensor4H& Q, const Tensor4H& K,
                                const Tensor4H& V, Tensor4F& O,
                                const DecoupledFtOptions& opt,
                                fault::FaultInjector* inj) {
  const float scale = 1.0f / std::sqrt(static_cast<float>(Q.dim()));
  const std::size_t slices = Q.batch() * Q.heads();
  FtReport total;

  if (inj) {
    // Per-call delta, matching efta_attention / efta_decode_step: merged
    // reports sharing one injector must not double count flips.
    const std::size_t before = inj->injected();
    for (std::size_t sl = 0; sl < slices; ++sl) {
      const std::size_t b = sl / Q.heads(), h = sl % Q.heads();
      total += run_slice(load_slice(Q, b, h, scale), load_slice(K, b, h),
                         load_slice(V, b, h), O, b, h, opt, inj);
    }
    total.faults_injected = inj->injected() - before;
    return total;
  }

#pragma omp parallel
  {
    FtReport local;
#pragma omp for schedule(dynamic) nowait
    for (std::size_t sl = 0; sl < slices; ++sl) {
      const std::size_t b = sl / Q.heads(), h = sl % Q.heads();
      local += run_slice(load_slice(Q, b, h, scale), load_slice(K, b, h),
                         load_slice(V, b, h), O, b, h, opt, nullptr);
    }
#pragma omp critical
    total += local;
  }
  return total;
}

sim::CostBreakdown decoupled_ft_costs(const AttnShape& s) {
  const double S = static_cast<double>(s.seq);
  const double D = static_cast<double>(s.dim);
  const double slices = static_cast<double>(s.slices());

  sim::CostBreakdown b = decoupled_attention_costs(s);

  // Element ABFT on GEMM I (S = QK^T: M = N = seq, K = dim) and GEMM III
  // (O = PV: M = seq, N = dim, K = seq), per slice.
  sim::CostBreakdown abft1 = abft::ElementAbft::costs(S, S, D);
  sim::CostBreakdown abft2 = abft::ElementAbft::costs(S, D, S);
  for (std::size_t p = 0; p < sim::kPhaseCount; ++p) {
    abft1.by_phase[p].scale(slices);
    abft2.by_phase[p].scale(slices);
  }
  b += abft1;
  b += abft2;

  // DMR on the row softmax.
  sim::CostBreakdown dmr = softmax::dmr_overhead_costs(S * slices, S);
  b += dmr;

  // Checksum rows/columns also ride through HBM with the intermediates.
  b[sim::Phase::kMemory].hbm_bytes += slices * (4.0 * S * 4.0 + 4.0 * D * 4.0);

  // Each block's CCV and each DMR comparison is a pipeline sync.
  const double blocks1 = (S / 64.0) * (S / 64.0);
  b[sim::Phase::kVerify].syncs = slices * (blocks1 + 2.0 * (S / 64.0));
  b[sim::Phase::kDmr].syncs = slices * (S / 64.0);
  return b;
}

}  // namespace ftt::attention
