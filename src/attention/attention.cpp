#include "attention/attention.hpp"

#include <cmath>
#include <limits>
#include <vector>

#include "sim/mma.hpp"
#include "softmax/softmax.hpp"

namespace ftt::attention {

using numeric::Half;
using tensor::MatrixF;
using tensor::MatrixH;
using tensor::Tensor4F;
using tensor::Tensor4H;

namespace {

/// Copy one seq x dim fp16 slice into a matrix, optionally pre-scaling by
/// 1/sqrt(dim) (applied to Q so downstream GEMMs need no epilogue scaling).
MatrixH load_slice(const Tensor4H& T, std::size_t b, std::size_t h,
                   float scale = 1.0f) {
  MatrixH m(T.seq(), T.dim());
  const auto src = T.slice(b, h);
  if (scale == 1.0f) {
    for (std::size_t i = 0; i < src.size(); ++i) m.data()[i] = src[i];
  } else {
    for (std::size_t i = 0; i < src.size(); ++i) {
      m.data()[i] = Half(src[i].to_float() * scale);
    }
  }
  return m;
}

void store_slice(const MatrixF& m, Tensor4F& T, std::size_t b, std::size_t h) {
  auto dst = T.slice(b, h);
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = m.data()[i];
}

}  // namespace

void standard_attention(const Tensor4H& Q, const Tensor4H& K,
                        const Tensor4H& V, Tensor4F& O, bool causal) {
  const float scale = 1.0f / std::sqrt(static_cast<float>(Q.dim()));
  const std::size_t slices = Q.batch() * Q.heads();

#pragma omp parallel for schedule(dynamic)
  for (std::size_t sl = 0; sl < slices; ++sl) {
    const std::size_t b = sl / Q.heads();
    const std::size_t h = sl % Q.heads();
    const MatrixH q = load_slice(Q, b, h, scale);
    const MatrixH k = load_slice(K, b, h);
    const MatrixH v = load_slice(V, b, h);

    MatrixF S(Q.seq(), Q.seq());
    sim::gemm_fp16_nt(q, k, S);
    if (causal) {
      for (std::size_t r = 0; r < Q.seq(); ++r) {
        for (std::size_t c = r + 1; c < Q.seq(); ++c) {
          S(r, c) = -std::numeric_limits<float>::infinity();
        }
      }
    }
    softmax::row_softmax(S);
    MatrixF out(Q.seq(), Q.dim());
    sim::gemm_f32h_nn(S, v, out);
    store_slice(out, O, b, h);
  }
}

void flash_attention(const Tensor4H& Q, const Tensor4H& K, const Tensor4H& V,
                     Tensor4F& O, std::size_t block, bool causal) {
  const std::size_t seq = Q.seq(), dim = Q.dim();
  const std::size_t B = std::min(block, seq);
  const std::size_t nblk = (seq + B - 1) / B;
  const float scale = 1.0f / std::sqrt(static_cast<float>(dim));
  const std::size_t slices = Q.batch() * Q.heads();

#pragma omp parallel for schedule(dynamic)
  for (std::size_t sl = 0; sl < slices; ++sl) {
    const std::size_t bb = sl / Q.heads();
    const std::size_t hh = sl % Q.heads();
    const MatrixH q = load_slice(Q, bb, hh, scale);
    const MatrixH k = load_slice(K, bb, hh);
    const MatrixH v = load_slice(V, bb, hh);

    for (std::size_t i = 0; i < nblk; ++i) {
      const std::size_t r0 = i * B;
      const std::size_t br = std::min(B, seq - r0);
      MatrixH qi(br, dim);
      for (std::size_t r = 0; r < br; ++r) {
        for (std::size_t c = 0; c < dim; ++c) qi(r, c) = q(r0 + r, c);
      }

      std::vector<float> m(br, -std::numeric_limits<float>::infinity());
      std::vector<float> l(br, 0.0f);
      MatrixF oacc(br, dim, 0.0f);
      MatrixF sij(br, B);
      MatrixH kj(B, dim), vj(B, dim);

      for (std::size_t j = 0; j < nblk; ++j) {
        const std::size_t c0 = j * B;
        // Causal: block columns strictly above the diagonal never contribute.
        if (causal && c0 > r0 + br - 1) break;
        const std::size_t bc = std::min(B, seq - c0);
        if (bc != kj.rows()) {
          kj = MatrixH(bc, dim);
          vj = MatrixH(bc, dim);
          sij = MatrixF(br, bc);
        }
        for (std::size_t r = 0; r < bc; ++r) {
          for (std::size_t c = 0; c < dim; ++c) {
            kj(r, c) = k(c0 + r, c);
            vj(r, c) = v(c0 + r, c);
          }
        }
        sim::gemm_fp16_nt(qi, kj, sij);
        if (causal && c0 + bc > r0) {
          // Mask the diagonal block: column c0+c visible to row r0+r only
          // when c0+c <= r0+r.
          for (std::size_t r = 0; r < br; ++r) {
            for (std::size_t c = 0; c < bc; ++c) {
              if (c0 + c > r0 + r) {
                sij(r, c) = -std::numeric_limits<float>::infinity();
              }
            }
          }
        }

        for (std::size_t r = 0; r < br; ++r) {
          float bmax = -std::numeric_limits<float>::infinity();
          for (std::size_t c = 0; c < bc; ++c) bmax = std::max(bmax, sij(r, c));
          const float mnew = std::max(m[r], bmax);
          const float f = std::exp(m[r] - mnew);  // exp(-inf) == 0 first pass
          float rowsum = 0.0f;
          for (std::size_t c = 0; c < bc; ++c) {
            sij(r, c) = std::exp(sij(r, c) - mnew);
            rowsum += sij(r, c);
          }
          l[r] = f * l[r] + rowsum;
          for (std::size_t c = 0; c < dim; ++c) oacc(r, c) *= f;
          m[r] = mnew;
        }
        sim::gemm_f32h_nn(sij, vj, oacc, /*accumulate=*/true);
      }

      for (std::size_t r = 0; r < br; ++r) {
        const float inv = 1.0f / l[r];
        for (std::size_t c = 0; c < dim; ++c) {
          O.at(bb, hh, r0 + r, c) = oacc(r, c) * inv;
        }
      }
    }
  }
}

sim::CostBreakdown flash_attention_costs(const AttnShape& s,
                                         std::size_t block) {
  sim::CostBreakdown b;
  const double S = static_cast<double>(s.seq);
  const double D = static_cast<double>(s.dim);
  const double slices = static_cast<double>(s.slices());
  const double nblk = S / static_cast<double>(block);

  // LD/ST: Q/K/V read once from HBM, O written.  The per-row-block K/V
  // re-reads (nblk passes) are absorbed by the 40 MB L2 — the per-slice K/V
  // working set is a few hundred KB — so they do not hit HBM.
  (void)nblk;
  auto& mem = b[sim::Phase::kMemory];
  mem.hbm_bytes = slices * 4.0 * S * D * 2.0;
  mem.launches = 1;

  // GEMM I + GEMM II.
  b[sim::Phase::kGemm].tc_flops = slices * 4.0 * S * S * D;

  // Block softmax: max-compare, subtract, exp, sum-add over every score.
  auto& sm = b[sim::Phase::kSoftmax];
  sm.fp32_flops = slices * 3.0 * S * S;
  sm.sfu_ops = slices * S * S;

  // Rescale of the O accumulator each iteration + final normalization.
  b[sim::Phase::kRescale].fp32_flops = slices * (nblk * S * D + S * D);
  return b;
}

sim::CostBreakdown decoupled_attention_costs(const AttnShape& s) {
  sim::CostBreakdown b;
  const double S = static_cast<double>(s.seq);
  const double D = static_cast<double>(s.dim);
  const double slices = static_cast<double>(s.slices());

  // Three kernels; S and P round-trip HBM in fp32 (write + read each).
  auto& mem = b[sim::Phase::kMemory];
  mem.launches = 3;
  const double qkvo = 4.0 * S * D * 2.0;
  const double s_traffic = 2.0 * S * S * 4.0;  // S: written by K1, read by K2
  const double p_traffic = 2.0 * S * S * 4.0;  // P: written by K2, read by K3
  mem.hbm_bytes = slices * (qkvo + s_traffic + p_traffic);

  b[sim::Phase::kGemm].tc_flops = slices * 4.0 * S * S * D;

  auto& sm = b[sim::Phase::kSoftmax];
  sm.fp32_flops = slices * 3.0 * S * S;
  sm.sfu_ops = slices * S * S;
  b[sim::Phase::kRescale].fp32_flops = slices * S * S;  // 1/sum scaling
  return b;
}

double decoupled_workspace_bytes(const AttnShape& s) {
  const double S = static_cast<double>(s.seq);
  const double D = static_cast<double>(s.dim);
  const double slices = static_cast<double>(s.slices());
  const double qkvo = slices * 4.0 * S * D * 2.0;   // fp16 tensors
  const double inter = slices * 2.0 * S * S * 4.0;  // S and P in fp32
  return qkvo + inter;
}

}  // namespace ftt::attention
