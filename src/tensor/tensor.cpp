#include "tensor/tensor.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace ftt::tensor {

void widen(std::span<const numeric::Half> src, MatrixF& dst) {
  if (src.size() != dst.size()) {
    throw std::invalid_argument("widen: size mismatch");
  }
  numeric::halves_to_floats(src.data(), dst.data(), src.size());
}

void widen(MatrixHView src, float* dst) {
  if (src.dense()) {
    numeric::halves_to_floats(src.data, dst, src.rows * src.cols);
    return;
  }
  for (std::size_t r = 0; r < src.rows; ++r) {
    numeric::halves_to_floats(src.data + r * src.stride, dst + r * src.cols,
                              src.cols);
  }
}

void narrow(const MatrixF& src, std::span<numeric::Half> dst) {
  if (src.size() != dst.size()) {
    throw std::invalid_argument("narrow: size mismatch");
  }
  numeric::floats_to_halves(src.data(), dst.data(), dst.size());
}

float max_abs_diff(const MatrixF& a, const MatrixF& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument("max_abs_diff: shape mismatch");
  }
  float m = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float d = std::fabs(a.data()[i] - b.data()[i]);
    if (std::isnan(d)) return std::numeric_limits<float>::infinity();
    m = std::max(m, d);
  }
  return m;
}

float max_rel_diff(const MatrixF& a, const MatrixF& b, float eps) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument("max_rel_diff: shape mismatch");
  }
  float m = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float d = std::fabs(a.data()[i] - b.data()[i]);
    if (std::isnan(d)) return std::numeric_limits<float>::infinity();
    m = std::max(m, d / (std::fabs(b.data()[i]) + eps));
  }
  return m;
}

}  // namespace ftt::tensor
