#pragma once
// Minimal dense tensor types used throughout the library.
//
// Attention tensors have logical shape batch x num_head x seq_len x dim.
// batch and num_head are embarrassingly parallel (the paper tiles only over
// seq_len / feature dim), so kernels operate on 2-D slices and the 4-D type
// is a thin indexer over contiguous storage.

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

#include "numeric/fp16.hpp"

namespace ftt::tensor {

/// Row-major 2-D matrix owning its storage.
template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, T init = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

  T& operator()(std::size_t r, std::size_t c) noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  const T& operator()(std::size_t r, std::size_t c) const noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  [[nodiscard]] T* data() noexcept { return data_.data(); }
  [[nodiscard]] const T* data() const noexcept { return data_.data(); }
  [[nodiscard]] std::span<T> row(std::size_t r) noexcept {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const T> row(std::size_t r) const noexcept {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  void fill(T v) { data_.assign(data_.size(), v); }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using MatrixF = Matrix<float>;
using MatrixH = Matrix<numeric::Half>;

/// Non-owning row-major const view over fp16 storage: the zero-copy handle
/// the decode hot path uses to consume KV-cache tiles (and their memoized
/// checksum encodings) in place, without materializing a Matrix.  `stride`
/// is the row stride in elements (stride == cols when densely packed).
struct MatrixHView {
  const numeric::Half* data = nullptr;
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::size_t stride = 0;

  const numeric::Half& operator()(std::size_t r, std::size_t c) const noexcept {
    assert(r < rows && c < cols);
    return data[r * stride + c];
  }
  [[nodiscard]] bool dense() const noexcept { return stride == cols; }
};

/// Whole-matrix view (densely packed).
inline MatrixHView view(const MatrixH& m) noexcept {
  return {m.data(), m.rows(), m.cols(), m.cols()};
}

/// Non-owning rectangular window into a Matrix.  Used for the B_r x B_c block
/// tiling of Q/K/V along seq_len (Figs. 2 and 4).
template <typename T>
class BlockView {
 public:
  BlockView(Matrix<T>& m, std::size_t r0, std::size_t c0, std::size_t rows,
            std::size_t cols) noexcept
      : base_(&m), r0_(r0), c0_(c0), rows_(rows), cols_(cols) {
    assert(r0 + rows <= m.rows() && c0 + cols <= m.cols());
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  T& operator()(std::size_t r, std::size_t c) noexcept {
    assert(r < rows_ && c < cols_);
    return (*base_)(r0_ + r, c0_ + c);
  }
  const T& operator()(std::size_t r, std::size_t c) const noexcept {
    assert(r < rows_ && c < cols_);
    return (*base_)(r0_ + r, c0_ + c);
  }

 private:
  Matrix<T>* base_;
  std::size_t r0_, c0_, rows_, cols_;
};

/// batch x num_head x seq_len x dim tensor over contiguous storage.
template <typename T>
class Tensor4D {
 public:
  Tensor4D() = default;
  Tensor4D(std::size_t batch, std::size_t heads, std::size_t seq,
           std::size_t dim, T init = T{})
      : batch_(batch),
        heads_(heads),
        seq_(seq),
        dim_(dim),
        data_(batch * heads * seq * dim, init) {}

  [[nodiscard]] std::size_t batch() const noexcept { return batch_; }
  [[nodiscard]] std::size_t heads() const noexcept { return heads_; }
  [[nodiscard]] std::size_t seq() const noexcept { return seq_; }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

  T& at(std::size_t b, std::size_t h, std::size_t s, std::size_t d) noexcept {
    return data_[((b * heads_ + h) * seq_ + s) * dim_ + d];
  }
  const T& at(std::size_t b, std::size_t h, std::size_t s,
              std::size_t d) const noexcept {
    return data_[((b * heads_ + h) * seq_ + s) * dim_ + d];
  }

  /// Contiguous seq x dim slice for one (batch, head) pair.
  [[nodiscard]] std::span<T> slice(std::size_t b, std::size_t h) noexcept {
    return {data_.data() + ((b * heads_ + h) * seq_) * dim_, seq_ * dim_};
  }
  [[nodiscard]] std::span<const T> slice(std::size_t b,
                                         std::size_t h) const noexcept {
    return {data_.data() + ((b * heads_ + h) * seq_) * dim_, seq_ * dim_};
  }

  [[nodiscard]] T* data() noexcept { return data_.data(); }
  [[nodiscard]] const T* data() const noexcept { return data_.data(); }

 private:
  std::size_t batch_ = 0, heads_ = 0, seq_ = 0, dim_ = 0;
  std::vector<T> data_;
};

using Tensor4F = Tensor4D<float>;
using Tensor4H = Tensor4D<numeric::Half>;

/// Copy a seq x dim fp16 slice into an fp32 working matrix.
void widen(std::span<const numeric::Half> src, MatrixF& dst);
/// Widen a view into a dense rows x cols fp32 buffer (bulk SIMD conversion;
/// one contiguous pass when the view is densely packed, per-row otherwise).
/// `dst` must hold rows * cols floats.
void widen(MatrixHView src, float* dst);
/// Round an fp32 matrix through fp16 into a Half slice.
void narrow(const MatrixF& src, std::span<numeric::Half> dst);

/// Max |a-b| over all elements; requires same shape.
float max_abs_diff(const MatrixF& a, const MatrixF& b);
/// Max |a-b| / (|b| + eps) over all elements.
float max_rel_diff(const MatrixF& a, const MatrixF& b, float eps = 1e-6f);

}  // namespace ftt::tensor
