#pragma once
// Seeded fills for reproducible experiments.  All benchmarks and tests draw
// Q/K/V from N(0, 1/sqrt(dim)) as typical of post-layernorm activations, so
// attention scores land in the numerically interesting range the paper's
// threshold studies (Figs. 12/14) probe.

#include <cstdint>
#include <random>

#include "tensor/tensor.hpp"

namespace ftt::tensor {

inline void fill_normal(MatrixF& m, std::uint64_t seed, float mean = 0.0f,
                        float stddev = 1.0f) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> dist(mean, stddev);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = dist(rng);
}

inline void fill_uniform(MatrixF& m, std::uint64_t seed, float lo = -1.0f,
                         float hi = 1.0f) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> dist(lo, hi);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = dist(rng);
}

/// Fill an fp16 matrix by rounding N(mean, stddev) draws.
inline void fill_normal(MatrixH& m, std::uint64_t seed, float mean = 0.0f,
                        float stddev = 1.0f) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> dist(mean, stddev);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = numeric::Half(dist(rng));
  }
}

inline void fill_normal(Tensor4H& t, std::uint64_t seed, float mean = 0.0f,
                        float stddev = 1.0f) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> dist(mean, stddev);
  for (std::size_t i = 0; i < t.size(); ++i) {
    t.data()[i] = numeric::Half(dist(rng));
  }
}

inline void fill_normal(Tensor4F& t, std::uint64_t seed, float mean = 0.0f,
                        float stddev = 1.0f) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> dist(mean, stddev);
  for (std::size_t i = 0; i < t.size(); ++i) t.data()[i] = dist(rng);
}

}  // namespace ftt::tensor
