#pragma once
// Soft-error (SEU) injection framework.
//
// Fault model (paper §2.2): transient bit-flips in *compute units* — memory
// is assumed ECC-protected and interconnect FT-MPI-protected — under the
// single-event-upset assumption: at most one flip per detection/correction
// cycle.  Kernels expose injection hooks at every computation site the paper
// identifies (GEMM I MACs, reduce-max, subtract+EXP, reduce-sum, rescale,
// GEMM II MACs, checksum pipeline) and the injector decides, deterministically
// from its configuration, which call gets corrupted and which bit flips.
//
// Two modes:
//  * `single`   — flip exactly the n-th value produced at one site (SEU
//                 campaigns, Figs. 14/15 and all correction tests);
//  * `bernoulli`— each candidate value flips with probability p (bit-error-
//                 rate sweeps, Fig. 12), using geometric skip sampling so the
//                 common no-fault path costs one counter decrement.

#include <array>
#include <cstdint>
#include <random>
#include <vector>

#include "numeric/bits.hpp"

namespace ftt::fault {

/// Where in the attention pipeline a value was produced.
enum class Site {
  kGemm1 = 0,     ///< S = Q K^T accumulator output
  kReduceMax,     ///< running row-max
  kExp,           ///< exp(s - m) output
  kReduceSum,     ///< running row-sum l
  kRescale,       ///< diag(e^{m_old-m_new}) * O element
  kGemm2,         ///< O += P V accumulator output
  kChecksum,      ///< checksum-pipeline value (CCG / checksum GEMM)
  kLinear,        ///< feed-forward / projection GEMM output
  kCount,
};

constexpr std::size_t kSiteCount = static_cast<std::size_t>(Site::kCount);

const char* site_name(Site s) noexcept;

/// Record of one injected flip (for assertions and reports).
struct Event {
  Site site;
  std::uint64_t call_index;  ///< per-site ordinal of the corrupted value
  unsigned bit;              ///< flipped bit position (fp32 encoding)
  float before;
  float after;
};

class FaultInjector {
 public:
  /// No faults; every hook is a no-op.  Null injectors are also accepted by
  /// all kernels.
  FaultInjector() { next_hit_.fill(kNever); }

  /// Flip bit `bit` of the `call_index`-th value produced at `site`.
  static FaultInjector single(Site site, std::uint64_t call_index,
                              unsigned bit);

  /// Flip a uniformly random bit of each candidate value with probability
  /// `per_value_prob`, at any of the `sites` (empty = all sites).
  static FaultInjector bernoulli(double per_value_prob, std::uint64_t seed,
                                 std::vector<Site> sites = {});

  /// Hook: pass a freshly computed value through the injector.
  float corrupt(Site site, float v) noexcept {
    const auto si = static_cast<std::size_t>(site);
    ++calls_[si];
    auto& n = next_hit_[si];
    if (n < 0) return v;  // site not armed
    if (n > 0) {
      --n;
      return v;
    }
    return do_flip(site, v);
  }

  [[nodiscard]] bool armed() const noexcept { return mode_ != Mode::kNone; }
  [[nodiscard]] const std::vector<Event>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t injected() const noexcept { return events_.size(); }

  /// Per-site call counters observed so far (how many candidate values the
  /// kernel produced); useful for sizing `single` campaigns.
  [[nodiscard]] std::uint64_t calls(Site s) const noexcept {
    return calls_[static_cast<std::size_t>(s)];
  }

  /// Forget recorded events and re-arm counters (for reuse across trials).
  void reset();

 private:
  enum class Mode { kNone, kSingle, kBernoulli };
  static constexpr std::int64_t kNever = -1;

  float do_flip(Site site, float v) noexcept;
  [[nodiscard]] std::int64_t draw_gap() noexcept;
  [[nodiscard]] bool site_armed(Site s) const noexcept;

  Mode mode_ = Mode::kNone;
  Site single_site_ = Site::kGemm1;
  unsigned single_bit_ = 0;
  double prob_ = 0.0;
  std::vector<Site> sites_;
  std::mt19937_64 rng_;
  std::uint64_t seed_ = 0;
  std::uint64_t single_index_ = 0;
  // Countdown until the next flip per site; negative = site not armed.
  std::array<std::int64_t, kSiteCount> next_hit_{};
  std::array<std::uint64_t, kSiteCount> calls_{};
  std::vector<Event> events_;
};

/// Convenience: pass-through when `inj` may be null.
inline float corrupt(FaultInjector* inj, Site site, float v) noexcept {
  return inj ? inj->corrupt(site, v) : v;
}

}  // namespace ftt::fault
