#pragma once
// SEU campaign runner: sweep (site, call offset, bit) grids over any
// fault-injectable computation and aggregate detection/correction/impact
// statistics.  Used by the coverage benches, the examples and the
// statistical tests.

#include <cstdint>
#include <functional>
#include <vector>

#include "fault/fault.hpp"

namespace ftt::fault {

struct CampaignConfig {
  std::vector<Site> sites;
  std::vector<std::uint64_t> call_offsets;
  std::vector<unsigned> bits;
  /// Output deviation (caller-defined metric) below which a run counts as
  /// absorbed.
  float absorbed_threshold = 0.02f;
};

struct CampaignStats {
  std::size_t runs = 0;
  std::size_t injected = 0;   ///< runs where the flip actually landed
  std::size_t absorbed = 0;   ///< injected runs within the threshold
  std::size_t detected = 0;   ///< injected runs where something was flagged
  /// Runs counted in BOTH absorbed and detected (a flagged flip whose
  /// residual deviation still sat under the threshold).  The two buckets
  /// overlap, so set arithmetic over them must add this back.
  std::size_t absorbed_and_detected = 0;
  float worst_deviation = 0.0f;

  [[nodiscard]] double absorption_rate() const noexcept {
    return injected ? static_cast<double>(absorbed) / injected : 1.0;
  }
  [[nodiscard]] double detection_rate() const noexcept {
    return injected ? static_cast<double>(detected) / injected : 1.0;
  }
  /// Injected runs that were neither detected nor absorbed — the flip
  /// landed, nothing flagged it, and the output deviated beyond the
  /// threshold.  The paper's SDC bucket: |injected| - |detected ∪ absorbed|
  /// by inclusion-exclusion (absorbed and detected overlap; subtracting
  /// both would double-count the intersection).
  [[nodiscard]] std::size_t silent_corruptions() const noexcept {
    const std::size_t covered = detected + absorbed - absorbed_and_detected;
    return injected > covered ? injected - covered : 0;
  }
};

/// One campaign trial: the runner invokes `run(injector)` for every grid
/// point; `run` executes the protected computation and returns
/// {deviation-from-clean, something-was-flagged}.
struct TrialResult {
  float deviation = 0.0f;
  bool flagged = false;
};

inline CampaignStats run_campaign(
    const CampaignConfig& cfg,
    const std::function<TrialResult(FaultInjector&)>& run) {
  CampaignStats stats;
  for (const Site site : cfg.sites) {
    for (const std::uint64_t call : cfg.call_offsets) {
      for (const unsigned bit : cfg.bits) {
        FaultInjector inj = FaultInjector::single(site, call, bit);
        const TrialResult r = run(inj);
        ++stats.runs;
        if (inj.injected() == 0) continue;
        ++stats.injected;
        const bool absorbed = r.deviation < cfg.absorbed_threshold;
        if (r.flagged) ++stats.detected;
        if (absorbed) ++stats.absorbed;
        if (r.flagged && absorbed) ++stats.absorbed_and_detected;
        stats.worst_deviation = std::max(stats.worst_deviation, r.deviation);
      }
    }
  }
  return stats;
}

}  // namespace ftt::fault
