#include "fault/fault.hpp"

#include <algorithm>
#include <cmath>

namespace ftt::fault {

const char* site_name(Site s) noexcept {
  switch (s) {
    case Site::kGemm1:
      return "GEMM-I";
    case Site::kReduceMax:
      return "reduce-max";
    case Site::kExp:
      return "EXP";
    case Site::kReduceSum:
      return "reduce-sum";
    case Site::kRescale:
      return "rescale";
    case Site::kGemm2:
      return "GEMM-II";
    case Site::kChecksum:
      return "checksum";
    case Site::kLinear:
      return "linear";
    case Site::kCount:
      break;
  }
  return "?";
}

FaultInjector FaultInjector::single(Site site, std::uint64_t call_index,
                                    unsigned bit) {
  FaultInjector f;
  f.mode_ = Mode::kSingle;
  f.single_site_ = site;
  f.single_index_ = call_index;
  f.single_bit_ = bit & 31u;
  f.next_hit_.fill(kNever);
  f.next_hit_[static_cast<std::size_t>(site)] =
      static_cast<std::int64_t>(call_index);
  return f;
}

FaultInjector FaultInjector::bernoulli(double per_value_prob,
                                       std::uint64_t seed,
                                       std::vector<Site> sites) {
  FaultInjector f;
  f.mode_ = Mode::kBernoulli;
  f.prob_ = std::clamp(per_value_prob, 0.0, 1.0);
  f.seed_ = seed;
  f.sites_ = std::move(sites);
  f.rng_.seed(seed);
  f.next_hit_.fill(kNever);
  if (f.prob_ > 0.0) {
    for (std::size_t i = 0; i < kSiteCount; ++i) {
      if (f.site_armed(static_cast<Site>(i))) f.next_hit_[i] = f.draw_gap();
    }
  }
  return f;
}

bool FaultInjector::site_armed(Site s) const noexcept {
  if (sites_.empty()) return true;
  return std::find(sites_.begin(), sites_.end(), s) != sites_.end();
}

std::int64_t FaultInjector::draw_gap() noexcept {
  // Geometric skip: number of unaffected values before the next flip.
  std::uniform_real_distribution<double> u(0.0, 1.0);
  const double x = u(rng_);
  if (prob_ >= 1.0) return 0;
  const double g = std::floor(std::log1p(-x) / std::log1p(-prob_));
  if (!std::isfinite(g) || g > 4e18) return kNever;
  return static_cast<std::int64_t>(g);
}

float FaultInjector::do_flip(Site site, float v) noexcept {
  unsigned bit;
  if (mode_ == Mode::kSingle) {
    bit = single_bit_;
  } else {
    std::uniform_int_distribution<unsigned> bits(0, 31);
    bit = bits(rng_);
  }
  const float flipped = numeric::flip_bit_f32(v, bit);
  events_.push_back(Event{site, calls_[static_cast<std::size_t>(site)] - 1, bit,
                          v, flipped});
  auto& n = next_hit_[static_cast<std::size_t>(site)];
  n = (mode_ == Mode::kBernoulli) ? draw_gap() : kNever;
  return flipped;
}

void FaultInjector::reset() {
  events_.clear();
  calls_.fill(0);
  next_hit_.fill(kNever);
  if (mode_ == Mode::kSingle) {
    next_hit_[static_cast<std::size_t>(single_site_)] =
        static_cast<std::int64_t>(single_index_);
  } else if (mode_ == Mode::kBernoulli && prob_ > 0.0) {
    rng_.seed(seed_);
    for (std::size_t i = 0; i < kSiteCount; ++i) {
      if (site_armed(static_cast<Site>(i))) next_hit_[i] = draw_gap();
    }
  }
}

}  // namespace ftt::fault
