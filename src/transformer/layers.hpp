#pragma once
// Non-GEMM transformer layers: layer normalization, GELU with activation
// range restriction, and the feed-forward block of Fig. 1 (linear projection
// with ABFT -> activation range restriction -> linear projection with ABFT).

#include "abft/report.hpp"
#include "fault/fault.hpp"
#include "transformer/linear.hpp"

namespace ftt::transformer {

/// Standard layer normalization over the feature dimension.
class LayerNorm {
 public:
  explicit LayerNorm(std::size_t features, float eps = 1e-5f)
      : gamma_(features, 1.0f), beta_(features, 0.0f), eps_(eps) {}

  void forward(tensor::MatrixF& x) const;
  /// Normalize only rows [row0, row0 + rows).  LayerNorm is strictly
  /// per-row, so a row-range partition across shard workers is bit-identical
  /// to the whole-matrix call for any split.
  void forward(tensor::MatrixF& x, std::size_t row0, std::size_t rows) const;

  std::vector<float>& gamma() noexcept { return gamma_; }
  std::vector<float>& beta() noexcept { return beta_; }

 private:
  std::vector<float> gamma_, beta_;
  float eps_;
};

/// tanh-approximation GELU with optional range restriction: outputs are
/// clamped to [-0.17, clamp_hi], the activation's theoretical range given a
/// bound on |x| — a corrupted activation outside that range is pinned back
/// (the paper's "activation range restriction", Fig. 1).
struct RangeRestrictedGelu {
  bool restrict_range = true;
  float clamp_hi = 64.0f;  ///< GELU(x) <= x, and post-LN inputs are bounded

  /// Returns the number of values the restriction clipped.
  std::size_t forward(tensor::MatrixF& x,
                      fault::FaultInjector* inj = nullptr) const;
};

/// Feed-forward block: Linear -> GELU(+restriction) -> Linear, both linears
/// under strided ABFT when `protect` is set.
class FeedForward {
 public:
  FeedForward(std::size_t hidden, std::size_t inner, std::uint64_t seed);

  struct Result {
    abft::Report abft;
    std::size_t activations_clipped = 0;
  };

  Result forward(const tensor::MatrixF& x, tensor::MatrixF& y, bool protect,
                 fault::FaultInjector* inj = nullptr) const;

  [[nodiscard]] sim::CostBreakdown costs(double m) const;
  [[nodiscard]] sim::CostBreakdown protection_costs(double m) const;

  [[nodiscard]] std::size_t hidden() const noexcept { return w1_.in_features(); }
  [[nodiscard]] std::size_t inner() const noexcept { return w1_.out_features(); }

  // Sub-module access for shard workers: a sharded serving tick runs the
  // two linears column-parallel (64-tile slices via Linear::slice_out) with
  // the activation applied per shard on its own slice — GELU is elementwise,
  // so the decomposition is bit-identical to forward().
  [[nodiscard]] const Linear& w1() const noexcept { return w1_; }
  [[nodiscard]] const Linear& w2() const noexcept { return w2_; }
  [[nodiscard]] const RangeRestrictedGelu& act() const noexcept {
    return act_;
  }

 private:
  Linear w1_, w2_;
  RangeRestrictedGelu act_;
};

}  // namespace ftt::transformer
