#pragma once
// Full transformer encoder stack with pluggable attention fault tolerance:
// the substrate for the Fig. 15 experiments (GPT2 / BERT-Base / BERT-Large /
// T5-Small under optimized EFTA).
//
// The stack operates on hidden states (seq x hidden): pre-LN blocks of
// multi-head attention and feed-forward with residual connections.  Token
// embedding/unembedding are outside the paper's protected region (memory,
// assumed ECC-protected) and are not modeled; "generating one token" is one
// forward pass over the context, which is what the paper profiles.

#include <cstdint>
#include <string>
#include <vector>

#include "attention/ft_report.hpp"
#include "core/efta.hpp"
#include "transformer/layers.hpp"
#include "transformer/linear.hpp"

namespace ftt::transformer {

enum class AttentionKind {
  kStandard,       ///< reference O(n^2), unprotected
  kFlash,          ///< fused streaming, unprotected
  kDecoupledFt,    ///< 3-kernel baseline protection
  kEfta,           ///< per-iteration-verify EFTA
  kEftaOptimized,  ///< Algorithm 1 unified verification
};

struct ModelConfig {
  std::string name;
  std::size_t layers = 2;
  std::size_t hidden = 128;
  std::size_t heads = 2;
  std::size_t ffn_inner = 512;
  /// Decoder (causal) attention, as in GPT2/T5; encoders (BERT) are
  /// bidirectional.  The decoupled baseline ignores this flag (it only
  /// implements bidirectional attention).
  bool causal = false;

  [[nodiscard]] std::size_t head_dim() const noexcept {
    return hidden / heads;
  }

  // The paper's four evaluation models (Fig. 15), seq fixed at 512.
  static ModelConfig gpt2();        // 12 x 768, 12 heads, FFN 3072
  static ModelConfig bert_base();   // 12 x 768, 12 heads, FFN 3072
  static ModelConfig bert_large();  // 24 x 1024, 16 heads, FFN 4096
  static ModelConfig t5_small();    // 6 x 512, 8 heads, FFN 2048
  /// A small config for CPU-affordable end-to-end runs and tests.
  static ModelConfig tiny();        // 2 x 128, 2 heads, FFN 256
};

/// One pre-LN transformer block: x += MHA(LN(x)); x += FFN(LN(x)).
class Block {
 public:
  Block(const ModelConfig& cfg, std::uint64_t seed);

  struct Result {
    attention::FtReport attention;
    abft::Report projections;  ///< QKV/output projection ABFT
    FeedForward::Result ffn;
  };

  Result forward(tensor::MatrixF& x, AttentionKind kind, bool protect_linear,
                 fault::FaultInjector* inj = nullptr) const;

  [[nodiscard]] const ModelConfig& config() const noexcept { return cfg_; }

  // Sub-module access for cache-backed generation: a serving engine drives
  // the per-token forward itself (project the new token, append its K/V to
  // the request's cache, run protected decode over the cached context)
  // instead of recomputing the whole prefix through forward().
  [[nodiscard]] const LayerNorm& ln1() const noexcept { return ln1_; }
  [[nodiscard]] const LayerNorm& ln2() const noexcept { return ln2_; }
  [[nodiscard]] const Linear& wq() const noexcept { return wq_; }
  [[nodiscard]] const Linear& wk() const noexcept { return wk_; }
  [[nodiscard]] const Linear& wv() const noexcept { return wv_; }
  [[nodiscard]] const Linear& wo() const noexcept { return wo_; }
  [[nodiscard]] const FeedForward& ffn() const noexcept { return ffn_; }

 private:
  ModelConfig cfg_;
  LayerNorm ln1_, ln2_;
  Linear wq_, wk_, wv_, wo_;
  FeedForward ffn_;
};

class Model {
 public:
  Model(ModelConfig cfg, std::uint64_t seed = 0x5eed);

  struct Result {
    attention::FtReport attention;
    abft::Report projections;
    abft::Report ffn_abft;
    std::size_t activations_clipped = 0;
  };

  /// Forward over hidden states in place.
  Result forward(tensor::MatrixF& x, AttentionKind kind,
                 bool protect_linear = false,
                 fault::FaultInjector* inj = nullptr) const;

  [[nodiscard]] const ModelConfig& config() const noexcept { return cfg_; }

  /// Modeled per-token (one forward at `seq`) cost of the unprotected stack.
  [[nodiscard]] sim::CostBreakdown costs(std::size_t seq,
                                         AttentionKind kind) const;
  /// Modeled protection overhead (EFTA-optimized attention + linear ABFT +
  /// activation restriction) for error *detection* (fault-free path).
  [[nodiscard]] sim::CostBreakdown detection_overhead_costs(
      std::size_t seq) const;
  /// Additional modeled cost of *correcting* one flip per attention call
  /// (Fig. 15's correction experiment): locate + repair + recompute of the
  /// affected residue class, once per layer.
  [[nodiscard]] sim::CostBreakdown correction_overhead_costs(
      std::size_t seq) const;

  /// Modeled cost of one continuous-batching decode tick: `batch` requests
  /// each advancing a `q_len`-row query block (1 = plain decode, k+1 = a
  /// speculative draft block) at `context` tokens.  The shared linears/FFN
  /// run once over the stacked batch*q_len rows — weights stream from HBM
  /// once per *tick*, so at batch 1 the tick is HBM-bound on the weight
  /// read while at batch >= 8 the GEMMs dominate (the batched-decode
  /// roofline crossover) — and attention adds one protected block per
  /// (request, head) at the given context (the k-row amortization term of
  /// speculative decode).  tests/test_cost_model.cpp validates both shapes
  /// against the serving benches' measured gauges.
  [[nodiscard]] sim::CostBreakdown decode_tick_costs(
      std::size_t batch, std::size_t context, std::size_t q_len = 1) const;

  [[nodiscard]] const std::vector<Block>& blocks() const noexcept {
    return blocks_;
  }
  [[nodiscard]] const LayerNorm& final_ln() const noexcept { return final_ln_; }
  /// Mutable final-LN access: benches and tests shape the read-out head
  /// (e.g. gamma = 0, beta = const turns generation into a constant-row
  /// stream — the repetitive-suffix workload speculative decode thrives
  /// on — while every layer underneath still computes in full).
  [[nodiscard]] LayerNorm& final_ln() noexcept { return final_ln_; }

 private:
  ModelConfig cfg_;
  std::vector<Block> blocks_;
  LayerNorm final_ln_;
};

}  // namespace ftt::transformer
