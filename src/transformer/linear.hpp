#pragma once
// Linear (projection / feed-forward) layers with strided-ABFT protection.
//
// The paper protects every linear module — QKV/output projections and the
// feed-forward GEMMs — with the same tensor-checksum strided ABFT used inside
// EFTA (Fig. 1, right panel).  Weights are fp16 (tensor-core operands),
// activations are fp32 rounded through fp16 at the GEMM boundary, and the
// checksum tiles follow the 64-row TiledMMA footprint.

#include <cstdint>

#include "abft/report.hpp"
#include "fault/fault.hpp"
#include "sim/cost.hpp"
#include "tensor/tensor.hpp"

namespace ftt::transformer {

enum class LinearProtect { kNone, kStridedAbft };

class Linear {
 public:
  /// out_features must be a multiple of 64 (the checksum tile).
  Linear(std::size_t in_features, std::size_t out_features, std::uint64_t seed,
         bool bias = true);

  /// y = x W^T + b.  x: M x in, y: M x out.  Returns the ABFT report when
  /// protection is enabled.
  abft::Report forward(const tensor::MatrixF& x, tensor::MatrixF& y,
                       LinearProtect protect = LinearProtect::kNone,
                       fault::FaultInjector* inj = nullptr,
                       float rel_threshold = 0.02f) const;

  [[nodiscard]] std::size_t in_features() const noexcept { return in_; }
  [[nodiscard]] std::size_t out_features() const noexcept { return out_; }
  [[nodiscard]] const tensor::MatrixH& weight() const noexcept { return w_; }
  tensor::MatrixH& weight() noexcept { return w_; }

  /// Counts for one forward pass over M rows (unprotected payload).
  [[nodiscard]] sim::CostBreakdown costs(double m) const;
  /// Protection overhead for one forward pass.
  [[nodiscard]] sim::CostBreakdown protection_costs(double m) const;

 private:
  std::size_t in_, out_;
  tensor::MatrixH w_;       ///< out x in
  std::vector<float> bias_;  ///< empty when bias is disabled
};

}  // namespace ftt::transformer
