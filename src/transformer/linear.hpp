#pragma once
// Linear (projection / feed-forward) layers with strided-ABFT protection.
//
// The paper protects every linear module — QKV/output projections and the
// feed-forward GEMMs — with the same tensor-checksum strided ABFT used inside
// EFTA (Fig. 1, right panel).  Weights are fp16 (tensor-core operands),
// activations are fp32 rounded through fp16 at the GEMM boundary, and the
// checksum tiles follow the 64-row TiledMMA footprint.

#include <cstdint>
#include <span>

#include "abft/report.hpp"
#include "fault/fault.hpp"
#include "sim/cost.hpp"
#include "tensor/tensor.hpp"

namespace ftt::transformer {

enum class LinearProtect { kNone, kStridedAbft };

class Linear {
 public:
  /// out_features must be a multiple of 64 (the checksum tile).
  Linear(std::size_t in_features, std::size_t out_features, std::uint64_t seed,
         bool bias = true);

  /// y = x W^T + b.  x: M x in, y: M x out.  Returns the ABFT report when
  /// protection is enabled.
  abft::Report forward(const tensor::MatrixF& x, tensor::MatrixF& y,
                       LinearProtect protect = LinearProtect::kNone,
                       fault::FaultInjector* inj = nullptr,
                       float rel_threshold = 0.02f) const;

  [[nodiscard]] std::size_t in_features() const noexcept { return in_; }
  [[nodiscard]] std::size_t out_features() const noexcept { return out_; }
  [[nodiscard]] const tensor::MatrixH& weight() const noexcept { return w_; }
  tensor::MatrixH& weight() noexcept { return w_; }
  /// Empty when bias is disabled (and on slice_in shards, which must add
  /// the bias exactly once — after the partial sums are combined).
  [[nodiscard]] std::span<const float> bias() const noexcept { return bias_; }

  /// Column-parallel shard: a Linear computing out-features
  /// [col0, col0 + cols) of this layer (weight rows are copied once, at
  /// slice time).  Both col0 and cols must be multiples of the 64-column
  /// ABFT tile, so the shard's checksum tiles are exactly a subset of the
  /// full layer's — its forward() output values AND its per-tile ABFT
  /// report counters are bitwise/integer-exactly the full layer's
  /// restriction to those columns, which is what makes a column-sharded
  /// projection bit-identical to the solo engine for any shard count.
  /// cols == 0 yields a valid empty shard whose forward() is a no-op.
  [[nodiscard]] Linear slice_out(std::size_t col0, std::size_t cols) const;

  /// Row-parallel shard: in-features [col0, col0 + cols), bias dropped.
  /// Shards produce *partial sums* that a combiner must reduce (and then
  /// add this layer's bias() once); the reduction re-associates float
  /// addition, so — unlike slice_out — the combined result is
  /// deterministic for a fixed shard count and combine order but NOT
  /// bitwise-equal to the solo GEMM.  No tile-alignment requirement on the
  /// input split.
  [[nodiscard]] Linear slice_in(std::size_t col0, std::size_t cols) const;

  /// Counts for one forward pass over M rows (unprotected payload).
  [[nodiscard]] sim::CostBreakdown costs(double m) const;
  /// Protection overhead for one forward pass.
  [[nodiscard]] sim::CostBreakdown protection_costs(double m) const;

 private:
  /// Slice constructor: adopt pre-built weights/bias (slice_out/slice_in).
  Linear(std::size_t in_features, tensor::MatrixH w, std::vector<float> bias);

  std::size_t in_, out_;
  tensor::MatrixH w_;       ///< out x in
  std::vector<float> bias_;  ///< empty when bias is disabled
};

}  // namespace ftt::transformer
