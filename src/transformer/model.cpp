#include "transformer/model.hpp"

#include <stdexcept>

#include "abft/strided_abft.hpp"

#include "attention/attention.hpp"
#include "attention/decoupled_ft.hpp"

namespace ftt::transformer {

using attention::AttnShape;
using numeric::Half;
using tensor::MatrixF;
using tensor::Tensor4F;
using tensor::Tensor4H;

ModelConfig ModelConfig::gpt2() {
  return {"GPT2", 12, 768, 12, 3072, /*causal=*/true};
}
ModelConfig ModelConfig::bert_base() {
  return {"BERT-Base", 12, 768, 12, 3072};
}
ModelConfig ModelConfig::bert_large() {
  return {"BERT-Large", 24, 1024, 16, 4096};
}
ModelConfig ModelConfig::t5_small() {
  return {"T5-Small", 6, 512, 8, 2048, /*causal=*/true};
}
ModelConfig ModelConfig::tiny() {
  return {"Tiny", 2, 128, 2, 256};
}

Block::Block(const ModelConfig& cfg, std::uint64_t seed)
    : cfg_(cfg),
      ln1_(cfg.hidden),
      ln2_(cfg.hidden),
      wq_(cfg.hidden, cfg.hidden, seed + 1),
      wk_(cfg.hidden, cfg.hidden, seed + 2),
      wv_(cfg.hidden, cfg.hidden, seed + 3),
      wo_(cfg.hidden, cfg.hidden, seed + 4),
      ffn_(cfg.hidden, cfg.ffn_inner, seed + 5) {}

namespace {

/// seq x hidden activation -> 1 x heads x seq x dim fp16 tensor.
Tensor4H split_heads(const MatrixF& x, std::size_t heads, std::size_t dim) {
  Tensor4H t(1, heads, x.rows(), dim);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t h = 0; h < heads; ++h) {
      for (std::size_t d = 0; d < dim; ++d) {
        t.at(0, h, r, d) = Half(x(r, h * dim + d));
      }
    }
  }
  return t;
}

void merge_heads(const Tensor4F& t, MatrixF& x) {
  for (std::size_t r = 0; r < t.seq(); ++r) {
    for (std::size_t h = 0; h < t.heads(); ++h) {
      for (std::size_t d = 0; d < t.dim(); ++d) {
        x(r, h * t.dim() + d) = t.at(0, h, r, d);
      }
    }
  }
}

}  // namespace

Block::Result Block::forward(MatrixF& x, AttentionKind kind,
                             bool protect_linear,
                             fault::FaultInjector* inj) const {
  Result res;
  const std::size_t seq = x.rows();
  const auto mode =
      protect_linear ? LinearProtect::kStridedAbft : LinearProtect::kNone;

  // --- attention sub-block ---
  MatrixF h = x;
  ln1_.forward(h);
  MatrixF q(seq, cfg_.hidden), k(seq, cfg_.hidden), v(seq, cfg_.hidden);
  res.projections += wq_.forward(h, q, mode, inj);
  res.projections += wk_.forward(h, k, mode, inj);
  res.projections += wv_.forward(h, v, mode, inj);

  const std::size_t dim = cfg_.head_dim();
  const Tensor4H Q = split_heads(q, cfg_.heads, dim);
  const Tensor4H K = split_heads(k, cfg_.heads, dim);
  const Tensor4H V = split_heads(v, cfg_.heads, dim);
  Tensor4F O(1, cfg_.heads, seq, dim);

  switch (kind) {
    case AttentionKind::kStandard:
      attention::standard_attention(Q, K, V, O, cfg_.causal);
      break;
    case AttentionKind::kFlash:
      attention::flash_attention(Q, K, V, O, 64, cfg_.causal);
      break;
    case AttentionKind::kDecoupledFt:
      // The decoupled baseline only implements bidirectional attention.
      res.attention += attention::decoupled_ft_attention(Q, K, V, O, {}, inj);
      break;
    case AttentionKind::kEfta: {
      core::EftaOptions opt;
      opt.unified_verification = false;
      opt.causal = cfg_.causal;
      res.attention += core::efta_attention(Q, K, V, O, opt, inj);
      break;
    }
    case AttentionKind::kEftaOptimized: {
      core::EftaOptions opt;
      opt.unified_verification = true;
      opt.causal = cfg_.causal;
      res.attention += core::efta_attention(Q, K, V, O, opt, inj);
      break;
    }
  }

  MatrixF attn_out(seq, cfg_.hidden);
  merge_heads(O, attn_out);
  MatrixF proj(seq, cfg_.hidden);
  res.projections += wo_.forward(attn_out, proj, mode, inj);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] += proj.data()[i];

  // --- feed-forward sub-block ---
  MatrixF h2 = x;
  ln2_.forward(h2);
  MatrixF ffn_out(seq, cfg_.hidden);
  res.ffn = ffn_.forward(h2, ffn_out, protect_linear, inj);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] += ffn_out.data()[i];
  return res;
}

Model::Model(ModelConfig cfg, std::uint64_t seed)
    : cfg_(std::move(cfg)), final_ln_(cfg_.hidden) {
  if (cfg_.hidden % cfg_.heads != 0) {
    throw std::invalid_argument("Model: hidden % heads != 0");
  }
  blocks_.reserve(cfg_.layers);
  for (std::size_t i = 0; i < cfg_.layers; ++i) {
    blocks_.emplace_back(cfg_, seed + 1000 * (i + 1));
  }
}

Model::Result Model::forward(MatrixF& x, AttentionKind kind,
                             bool protect_linear,
                             fault::FaultInjector* inj) const {
  Model::Result res;
  for (const Block& b : blocks_) {
    Block::Result br = b.forward(x, kind, protect_linear, inj);
    res.attention += br.attention;
    res.projections += br.projections;
    res.ffn_abft += br.ffn.abft;
    res.activations_clipped += br.ffn.activations_clipped;
  }
  final_ln_.forward(x);
  return res;
}

sim::CostBreakdown Model::costs(std::size_t seq, AttentionKind kind) const {
  sim::CostBreakdown b;
  const AttnShape shape{1, cfg_.heads, seq, cfg_.head_dim()};
  const double m = static_cast<double>(seq);

  sim::CostBreakdown attn;
  switch (kind) {
    case AttentionKind::kStandard:
    case AttentionKind::kDecoupledFt:
      attn = attention::decoupled_attention_costs(shape);
      break;
    default:
      attn = attention::flash_attention_costs(shape);
      break;
  }
  if (kind == AttentionKind::kDecoupledFt) {
    attn = attention::decoupled_ft_costs(shape);
  } else if (kind == AttentionKind::kEfta) {
    core::EftaOptions opt;
    opt.unified_verification = false;
    attn += core::efta_protection_costs(shape, opt);
  } else if (kind == AttentionKind::kEftaOptimized) {
    core::EftaOptions opt;
    opt.unified_verification = true;
    attn += core::efta_protection_costs(shape, opt);
  }

  sim::CostBreakdown per_layer = attn;
  // Four hidden x hidden projections + the two FFN GEMMs, costed analytically.
  sim::CostBreakdown lin;
  lin[sim::Phase::kGemm].tc_flops =
      4.0 * 2.0 * m * cfg_.hidden * cfg_.hidden +
      2.0 * 2.0 * m * cfg_.hidden * cfg_.ffn_inner;
  lin[sim::Phase::kMemory].hbm_bytes =
      (6.0 * m * cfg_.hidden + 2.0 * m * cfg_.ffn_inner) * 2.0 +
      (4.0 * cfg_.hidden * cfg_.hidden + 2.0 * cfg_.hidden * cfg_.ffn_inner) *
          2.0;
  lin[sim::Phase::kSoftmax].sfu_ops = m * cfg_.ffn_inner;  // GELU
  lin[sim::Phase::kRescale].fp32_flops = 4.0 * m * cfg_.hidden;  // LN + bias
  per_layer += lin;

  for (std::size_t i = 0; i < cfg_.layers; ++i) b += per_layer;
  return b;
}

sim::CostBreakdown Model::detection_overhead_costs(std::size_t seq) const {
  const AttnShape shape{1, cfg_.heads, seq, cfg_.head_dim()};
  core::EftaOptions opt;
  opt.unified_verification = true;
  const double m = static_cast<double>(seq);

  sim::CostBreakdown per_layer = core::efta_protection_costs(shape, opt);
  // Linear ABFT on the four projections + two FFN GEMMs.
  per_layer += abft::StridedAbft::costs(m, cfg_.hidden, cfg_.hidden, 8);
  per_layer += abft::StridedAbft::costs(m, cfg_.hidden, cfg_.hidden, 8);
  per_layer += abft::StridedAbft::costs(m, cfg_.hidden, cfg_.hidden, 8);
  per_layer += abft::StridedAbft::costs(m, cfg_.hidden, cfg_.hidden, 8);
  per_layer += abft::StridedAbft::costs(m, cfg_.ffn_inner, cfg_.hidden, 8);
  per_layer += abft::StridedAbft::costs(m, cfg_.hidden, cfg_.ffn_inner, 8);
  // Activation range restriction.
  per_layer[sim::Phase::kVerify].fp32_flops += m * cfg_.ffn_inner;

  sim::CostBreakdown b;
  for (std::size_t i = 0; i < cfg_.layers; ++i) b += per_layer;
  return b;
}

sim::CostBreakdown Model::decode_tick_costs(std::size_t batch,
                                            std::size_t context,
                                            std::size_t q_len) const {
  const double m = static_cast<double>(batch * q_len);  // stacked rows
  const double H = static_cast<double>(cfg_.hidden);
  const double F = static_cast<double>(cfg_.ffn_inner);

  // Shared linears/FFN over the tick's row-stack.  Activations stream per
  // row, but the weight matrices are read once per tick no matter how many
  // requests share it: at batch 1 the weight read dominates (HBM-bound
  // GEMV), at batch >= 8 the same bytes feed 8x the MACs (compute-bound
  // GEMM) — the continuous-batching crossover.
  sim::CostBreakdown lin;
  lin[sim::Phase::kGemm].tc_flops = 4.0 * 2.0 * m * H * H +
                                    2.0 * 2.0 * m * H * F;
  lin[sim::Phase::kMemory].hbm_bytes =
      (6.0 * m * H + 2.0 * m * F) * 2.0 +          // activations, fp16
      (4.0 * H * H + 2.0 * H * F) * 2.0;           // weights, once per tick
  lin[sim::Phase::kSoftmax].sfu_ops = m * F;       // GELU
  lin[sim::Phase::kRescale].fp32_flops = 4.0 * m * H;  // LN + bias
  // Linear ABFT (stride-8 checksums on the six GEMMs, as served).
  lin += abft::StridedAbft::costs(m, cfg_.hidden, cfg_.hidden, 8);
  lin += abft::StridedAbft::costs(m, cfg_.hidden, cfg_.hidden, 8);
  lin += abft::StridedAbft::costs(m, cfg_.hidden, cfg_.hidden, 8);
  lin += abft::StridedAbft::costs(m, cfg_.hidden, cfg_.hidden, 8);
  lin += abft::StridedAbft::costs(m, cfg_.ffn_inner, cfg_.hidden, 8);
  lin += abft::StridedAbft::costs(m, cfg_.hidden, cfg_.ffn_inner, 8);

  // Attention: one protected q_len-row block per (request, head), each
  // streaming the full context's KV tiles.  This term is per *slice* — it
  // scales with batch, which is why attention stays memory-bound at any
  // batch while the linears cross over; and it is per *block*, which is
  // the speculative amortization: q_len tokens pay the tile loads and
  // checksum encodes once.
  sim::CostBreakdown attn = core::efta_decode_block_costs(
      context, q_len, cfg_.head_dim(), core::EftaOptions{});
  attn.scale(static_cast<double>(batch) * static_cast<double>(cfg_.heads));

  sim::CostBreakdown per_layer = lin + attn;
  sim::CostBreakdown b;
  for (std::size_t i = 0; i < cfg_.layers; ++i) b += per_layer;
  return b;
}

sim::CostBreakdown Model::correction_overhead_costs(std::size_t seq) const {
  sim::CostBreakdown b = detection_overhead_costs(seq);
  // One flip per attention call (per layer): locating the residue class,
  // repairing the element, re-exponentiating and re-verifying the affected
  // block.  The flop cost is tiny; what the paper's correction experiment
  // measures is the *serialization* of the repair path — one thread walks
  // the residue class while its warp (and the CTA's MMA pipeline) stalls,
  // then the block's verification replays.  Charged as sync events.
  const double B = 64.0, s = 8.0;
  sim::CostBreakdown per_fix;
  per_fix[sim::Phase::kVerify].sfu_ops = B * B + B;  // re-EXP of the block
  per_fix[sim::Phase::kVerify].fp32_flops = 6.0 * B * B + 4.0 * B * s;
  per_fix[sim::Phase::kVerify].syncs = 4000;  // ~2.4 us repair-path stall
  for (std::size_t i = 0; i < cfg_.layers; ++i) b += per_fix;
  return b;
}

}  // namespace ftt::transformer
