#include "transformer/layers.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ftt::transformer {

using tensor::MatrixF;

void LayerNorm::forward(MatrixF& x) const { forward(x, 0, x.rows()); }

void LayerNorm::forward(MatrixF& x, std::size_t row0, std::size_t rows) const {
  const std::size_t R = row0 + rows, C = x.cols();
  assert(R <= x.rows());
  for (std::size_t r = row0; r < R; ++r) {
    float* row = &x(r, 0);
    float mean = 0.0f;
    for (std::size_t c = 0; c < C; ++c) mean += row[c];
    mean /= static_cast<float>(C);
    float var = 0.0f;
    for (std::size_t c = 0; c < C; ++c) {
      const float d = row[c] - mean;
      var += d * d;
    }
    var /= static_cast<float>(C);
    const float inv = 1.0f / std::sqrt(var + eps_);
    for (std::size_t c = 0; c < C; ++c) {
      row[c] = (row[c] - mean) * inv * gamma_[c] + beta_[c];
    }
  }
}

std::size_t RangeRestrictedGelu::forward(MatrixF& x,
                                         fault::FaultInjector* inj) const {
  std::size_t clipped = 0;
  constexpr float kSqrt2OverPi = 0.7978845608f;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float v = x.data()[i];
    float g = 0.5f * v *
              (1.0f + std::tanh(kSqrt2OverPi * (v + 0.044715f * v * v * v)));
    g = fault::corrupt(inj, fault::Site::kLinear, g);
    if (restrict_range) {
      // GELU's global minimum is ~-0.1700 at x ~ -0.7588; anything below is
      // impossible, anything above clamp_hi exceeds the bounded input range.
      if (g < -0.1701f || g > clamp_hi || !std::isfinite(g)) {
        g = std::clamp(std::isfinite(g) ? g : 0.0f, -0.1701f, clamp_hi);
        ++clipped;
      }
    }
    x.data()[i] = g;
  }
  return clipped;
}

FeedForward::FeedForward(std::size_t hidden, std::size_t inner,
                         std::uint64_t seed)
    : w1_(hidden, inner, seed), w2_(inner, hidden, seed + 1) {}

FeedForward::Result FeedForward::forward(const MatrixF& x, MatrixF& y,
                                         bool protect,
                                         fault::FaultInjector* inj) const {
  Result res;
  const auto mode =
      protect ? LinearProtect::kStridedAbft : LinearProtect::kNone;
  MatrixF h(x.rows(), w1_.out_features());
  res.abft += w1_.forward(x, h, mode, inj);
  RangeRestrictedGelu act = act_;
  act.restrict_range = protect;
  res.activations_clipped = act.forward(h, inj);
  res.abft += w2_.forward(h, y, mode, inj);
  return res;
}

sim::CostBreakdown FeedForward::costs(double m) const {
  sim::CostBreakdown b = w1_.costs(m) + w2_.costs(m);
  b[sim::Phase::kSoftmax].sfu_ops +=
      m * static_cast<double>(w1_.out_features());  // GELU tanh
  return b;
}

sim::CostBreakdown FeedForward::protection_costs(double m) const {
  sim::CostBreakdown b = w1_.protection_costs(m) + w2_.protection_costs(m);
  // Range restriction: one compare-and-clamp per activation.
  b[sim::Phase::kVerify].fp32_flops +=
      m * static_cast<double>(w1_.out_features());
  return b;
}

}  // namespace ftt::transformer
