#include "transformer/linear.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>
#include <utility>

#include "abft/strided_abft.hpp"
#include "sim/mma.hpp"

namespace ftt::transformer {

using numeric::Half;
using tensor::MatrixF;
using tensor::MatrixH;

Linear::Linear(std::size_t in_features, std::size_t out_features,
               std::uint64_t seed, bool bias)
    : in_(in_features), out_(out_features), w_(out_features, in_features) {
  if (out_ % abft::StridedAbft::kTile != 0) {
    throw std::invalid_argument(
        "Linear: out_features must be a multiple of the 64-row ABFT tile");
  }
  // Scaled-normal init, typical of trained transformer projections.
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> dist(
      0.0f, 1.0f / std::sqrt(static_cast<float>(in_)));
  for (std::size_t i = 0; i < w_.size(); ++i) w_.data()[i] = Half(dist(rng));
  if (bias) {
    bias_.assign(out_, 0.0f);
    std::normal_distribution<float> bdist(0.0f, 0.02f);
    for (auto& b : bias_) b = bdist(rng);
  }
}

Linear::Linear(std::size_t in_features, MatrixH w, std::vector<float> bias)
    : in_(in_features), out_(w.rows()), w_(std::move(w)),
      bias_(std::move(bias)) {}

Linear Linear::slice_out(std::size_t col0, std::size_t cols) const {
  constexpr std::size_t kTile = abft::StridedAbft::kTile;
  if (col0 % kTile != 0 || cols % kTile != 0 || col0 + cols > out_) {
    throw std::invalid_argument(
        "Linear::slice_out: column range must be 64-tile aligned and within "
        "out_features");
  }
  // Weight rows [col0, col0 + cols) are contiguous (w_ is out x in).
  MatrixH w(cols, in_);
  std::copy_n(w_.data() + col0 * in_, cols * in_, w.data());
  std::vector<float> b;
  if (!bias_.empty()) {
    b.assign(bias_.begin() + static_cast<std::ptrdiff_t>(col0),
             bias_.begin() + static_cast<std::ptrdiff_t>(col0 + cols));
  }
  return Linear(in_, std::move(w), std::move(b));
}

Linear Linear::slice_in(std::size_t col0, std::size_t cols) const {
  if (col0 + cols > in_ || cols == 0) {
    throw std::invalid_argument(
        "Linear::slice_in: column range must be non-empty and within "
        "in_features");
  }
  MatrixH w(out_, cols);
  for (std::size_t r = 0; r < out_; ++r) {
    std::copy_n(w_.data() + r * in_ + col0, cols, w.data() + r * cols);
  }
  return Linear(cols, std::move(w), {});
}

abft::Report Linear::forward(const MatrixF& x, MatrixF& y,
                             LinearProtect protect, fault::FaultInjector* inj,
                             float rel_threshold) const {
  if (x.cols() != in_) throw std::invalid_argument("Linear: in_features");
  const std::size_t M = x.rows();
  if (y.rows() != M || y.cols() != out_) y = MatrixF(M, out_);
  if (out_ == 0) return {};  // empty slice_out shard: nothing to compute

  // Round activations to fp16 once (the tensor-core operand).
  MatrixH xh(M, in_);
  for (std::size_t i = 0; i < x.size(); ++i) xh.data()[i] = Half(x.data()[i]);

  abft::Report rep;
  if (protect == LinearProtect::kStridedAbft) {
    rep = abft::StridedAbft::gemm_nt(xh, w_, y, abft::StridedAbft::kDefaultStride,
                                     rel_threshold, inj, fault::Site::kLinear);
  } else {
    sim::gemm_fp16_nt(xh, w_, y);
    if (inj) {
      for (std::size_t i = 0; i < y.size(); ++i) {
        y.data()[i] = inj->corrupt(fault::Site::kLinear, y.data()[i]);
      }
    }
  }

  if (!bias_.empty()) {
    for (std::size_t r = 0; r < M; ++r) {
      float* row = &y(r, 0);
      for (std::size_t c = 0; c < out_; ++c) row[c] += bias_[c];
    }
  }
  return rep;
}

sim::CostBreakdown Linear::costs(double m) const {
  sim::CostBreakdown b;
  b[sim::Phase::kGemm].tc_flops =
      2.0 * m * static_cast<double>(out_) * static_cast<double>(in_);
  b[sim::Phase::kMemory].hbm_bytes =
      (m * static_cast<double>(in_) + m * static_cast<double>(out_) +
       static_cast<double>(in_) * static_cast<double>(out_)) *
      2.0;
  b[sim::Phase::kRescale].fp32_flops = m * static_cast<double>(out_);  // bias
  return b;
}

sim::CostBreakdown Linear::protection_costs(double m) const {
  return abft::StridedAbft::costs(m, static_cast<double>(out_),
                                  static_cast<double>(in_),
                                  abft::StridedAbft::kDefaultStride);
}

}  // namespace ftt::transformer
