#pragma once
// Software IEEE 754 binary16 ("half precision") implementation.
//
// The paper's kernels run on Tensor Cores with FP16 inputs and FP32
// accumulation (SM80_16x8x16_F32F16F16F32_TN).  We have no GPU in this
// environment, so this header provides a bit-exact software binary16 with
// round-to-nearest-even conversions.  Rounding noise from the fp32->fp16->fp32
// round trip is what makes ABFT checksum comparison inexact and motivates the
// relative-error-threshold study in Fig. 12 (right); a float-only simulator
// would not exhibit that behaviour.

#include <cstdint>
#include <cstring>
#include <limits>

namespace ftt::numeric {

/// Convert an IEEE binary32 bit pattern to the nearest binary16 bit pattern
/// (round-to-nearest-even), handling subnormals, infinities and NaNs.
std::uint16_t float_bits_to_half_bits(std::uint32_t f) noexcept;

/// Convert a binary16 bit pattern to the exactly-representable binary32 value
/// (signaling NaNs are quieted, matching hardware/F16C widening).
std::uint32_t half_bits_to_float_bits(std::uint16_t h) noexcept;

/// Table-accelerated binary16 -> float conversion (exact).
float half_bits_to_float(std::uint16_t h) noexcept;

class Half;

// ---------------------------------------------------------------------------
// Bulk conversions — the decode hot path.  Software half<->float conversion
// dominates host time, so the bulk entry points dispatch at runtime to F16C
// (`_mm256_cvtph_ps` / `_mm256_cvtps_ph`, both RTNE like the scalar path)
// when the binary was built with FTT_SIMD and the CPU supports AVX2+F16C.
// SIMD and scalar paths are bit-identical for every input, NaNs included
// (the SIMD narrow canonicalizes NaN payloads exactly like
// float_bits_to_half_bits); tests/test_fp16.cpp proves it exhaustively.
// ---------------------------------------------------------------------------

/// True when the F16C/AVX2 conversion kernels are compiled in (FTT_SIMD)
/// and this CPU supports them (checked once, then cached).
bool simd_fp16_active() noexcept;

/// dst[i] = float value of src[i] (exact widening).
void halves_to_floats(const Half* src, float* dst, std::size_t n) noexcept;
/// dst[i] = RTNE binary16 of src[i]; all NaNs map to sign | 0x7E00.
void floats_to_halves(const float* src, Half* dst, std::size_t n) noexcept;

/// Scalar reference paths, always available (the dispatching entry points
/// above must match them bit for bit; the conversion tests and bench_fp16
/// compare against these).
void halves_to_floats_scalar(const Half* src, float* dst,
                             std::size_t n) noexcept;
void floats_to_halves_scalar(const float* src, Half* dst,
                             std::size_t n) noexcept;

inline std::uint16_t float_to_half_bits(float f) noexcept {
  std::uint32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  return float_bits_to_half_bits(bits);
}

/// Value type wrapping a binary16 payload.  Arithmetic is intentionally not
/// provided: kernels convert to float, accumulate in fp32 (matching the MMA
/// instruction) and convert back explicitly, so every rounding step is visible.
class Half {
 public:
  constexpr Half() noexcept : bits_(0) {}
  explicit Half(float f) noexcept : bits_(float_to_half_bits(f)) {}

  static constexpr Half from_bits(std::uint16_t b) noexcept {
    Half h;
    h.bits_ = b;
    return h;
  }

  [[nodiscard]] float to_float() const noexcept { return half_bits_to_float(bits_); }
  [[nodiscard]] constexpr std::uint16_t bits() const noexcept { return bits_; }

  [[nodiscard]] bool is_nan() const noexcept {
    return (bits_ & 0x7C00u) == 0x7C00u && (bits_ & 0x03FFu) != 0;
  }
  [[nodiscard]] bool is_inf() const noexcept { return (bits_ & 0x7FFFu) == 0x7C00u; }
  [[nodiscard]] bool is_finite() const noexcept { return (bits_ & 0x7C00u) != 0x7C00u; }

  friend bool operator==(Half a, Half b) noexcept {
    if (a.is_nan() || b.is_nan()) return false;
    // +0 == -0
    if (((a.bits_ | b.bits_) & 0x7FFFu) == 0) return true;
    return a.bits_ == b.bits_;
  }
  friend bool operator!=(Half a, Half b) noexcept { return !(a == b); }

 private:
  std::uint16_t bits_;
};

/// Largest finite binary16 value (65504).
inline constexpr float kHalfMax = 65504.0f;
/// Smallest positive normal binary16 value.
inline constexpr float kHalfMinNormal = 6.103515625e-05f;
/// Unit roundoff for binary16 (2^-11); used to derive ABFT thresholds.
inline constexpr float kHalfEps = 4.8828125e-04f;

/// Round a float through binary16 and back: the value a Tensor Core would see
/// after an fp32 result is stored to an fp16 register/output tile.
inline float round_to_half(float f) noexcept {
  return half_bits_to_float(float_to_half_bits(f));
}

}  // namespace ftt::numeric
