#include "numeric/int8_simd.hpp"

#include <cmath>

#if defined(FTT_SIMD) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define FTT_SIMD_INT8 1
#include <immintrin.h>
#endif

namespace ftt::numeric {
namespace {

constexpr float kQMax = 127.0f;

// Shared clamp semantics (both paths must agree on every input class):
//   NaN  -> 0   (unordered compare catches it before any cast)
//   +Inf -> 127, -Inf -> -127 (the clamp saturates before rounding)
// After clamping, the value is in [-127, 127] and the int conversion is
// well-defined; both paths round to nearest even (the default MXCSR mode
// for _mm256_cvtps_epi32, and nearbyintf under the default fenv).

#ifdef FTT_SIMD_INT8

__attribute__((target("avx2"))) void quantize_avx2(const float* src,
                                                   std::int8_t* dst,
                                                   std::size_t n,
                                                   float inv_scale) noexcept {
  const __m256 vinv = _mm256_set1_ps(inv_scale);
  const __m256 vhi = _mm256_set1_ps(kQMax);
  const __m256 vlo = _mm256_set1_ps(-kQMax);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 x = _mm256_loadu_ps(src + i);
    // Ordered-compare mask: NaN lanes zero out after the conversion.
    const __m256 ord = _mm256_cmp_ps(x, x, _CMP_ORD_Q);
    __m256 y = _mm256_mul_ps(x, vinv);
    // min/max return the second operand on NaN, so a NaN lane becomes 127
    // here — and is then forced to 0 by the ordered mask, matching scalar.
    y = _mm256_min_ps(y, vhi);
    y = _mm256_max_ps(y, vlo);
    __m256i q = _mm256_cvtps_epi32(y);  // RTNE (default rounding mode)
    q = _mm256_and_si256(q, _mm256_castps_si256(ord));
    const __m128i lo = _mm256_castsi256_si128(q);
    const __m128i hi = _mm256_extracti128_si256(q, 1);
    const __m128i w = _mm_packs_epi32(lo, hi);  // 8 x int16, in order
    const __m128i b = _mm_packs_epi16(w, w);    // 8 x int8 in low 64 bits
    _mm_storel_epi64(reinterpret_cast<__m128i*>(dst + i), b);
  }
  for (; i < n; ++i) {
    const float x = src[i];
    if (!(x == x)) {
      dst[i] = 0;
      continue;
    }
    float y = x * inv_scale;
    y = y > kQMax ? kQMax : y;
    y = y < -kQMax ? -kQMax : y;
    dst[i] = static_cast<std::int8_t>(static_cast<std::int32_t>(nearbyintf(y)));
  }
}

__attribute__((target("avx2"))) void dequantize_avx2(const std::int8_t* src,
                                                     float* dst, std::size_t n,
                                                     float scale) noexcept {
  const __m256 vscale = _mm256_set1_ps(scale);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i b =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(src + i));
    const __m256i q = _mm256_cvtepi8_epi32(b);
    _mm256_storeu_ps(dst + i, _mm256_mul_ps(_mm256_cvtepi32_ps(q), vscale));
  }
  for (; i < n; ++i) dst[i] = static_cast<float>(src[i]) * scale;
}

// Widen 8 int8 values to fp32 and apply the (power-of-two, hence exact)
// scale — the register-resident dequantization the fused kernels below
// build on.
__attribute__((target("avx2,fma"))) inline __m256 dq8(
    const std::int8_t* p, __m256 vscale) noexcept {
  const __m128i b = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
  return _mm256_mul_ps(_mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(b)), vscale);
}

/// One M-row of the fused dequantizing GEMM: same axpy-form register
/// blocking as numeric/gemm_simd.cpp's gemm_row_avx2, with the B loads
/// replaced by in-register widen + exact scale.  Lanes span output columns,
/// so each output element's k-terms still accumulate in ascending order and
/// the kernel is bit-identical to gemm_f32_nn over a dequantized image.
__attribute__((target("avx2,fma"))) void gemm_row_i8_avx2(
    const float* arow, std::size_t K, const std::int8_t* B8, std::size_t N,
    float scale, float* crow, bool accumulate) noexcept {
  const __m256 vs = _mm256_set1_ps(scale);
  std::size_t n0 = 0;
  for (; n0 + 32 <= N; n0 += 32) {
    __m256 c0, c1, c2, c3;
    if (accumulate) {
      c0 = _mm256_loadu_ps(crow + n0);
      c1 = _mm256_loadu_ps(crow + n0 + 8);
      c2 = _mm256_loadu_ps(crow + n0 + 16);
      c3 = _mm256_loadu_ps(crow + n0 + 24);
    } else {
      c0 = c1 = c2 = c3 = _mm256_setzero_ps();
    }
    for (std::size_t k = 0; k < K; ++k) {
      const __m256 av = _mm256_set1_ps(arow[k]);
      const std::int8_t* brow = B8 + k * N + n0;
      c0 = _mm256_fmadd_ps(av, dq8(brow, vs), c0);
      c1 = _mm256_fmadd_ps(av, dq8(brow + 8, vs), c1);
      c2 = _mm256_fmadd_ps(av, dq8(brow + 16, vs), c2);
      c3 = _mm256_fmadd_ps(av, dq8(brow + 24, vs), c3);
    }
    _mm256_storeu_ps(crow + n0, c0);
    _mm256_storeu_ps(crow + n0 + 8, c1);
    _mm256_storeu_ps(crow + n0 + 16, c2);
    _mm256_storeu_ps(crow + n0 + 24, c3);
  }
  for (; n0 + 8 <= N; n0 += 8) {
    __m256 c0 = accumulate ? _mm256_loadu_ps(crow + n0) : _mm256_setzero_ps();
    for (std::size_t k = 0; k < K; ++k) {
      c0 = _mm256_fmadd_ps(_mm256_set1_ps(arow[k]), dq8(B8 + k * N + n0, vs),
                           c0);
    }
    _mm256_storeu_ps(crow + n0, c0);
  }
  for (; n0 < N; ++n0) {
    float acc = accumulate ? crow[n0] : 0.0f;
    for (std::size_t k = 0; k < K; ++k) {
      acc += arow[k] * (scale * static_cast<float>(B8[k * N + n0]));
    }
    crow[n0] = acc;
  }
}

__attribute__((target("avx2,fma"))) void gemm_i8_avx2(
    const float* A, std::size_t M, std::size_t K, const std::int8_t* B8,
    std::size_t N, float scale, float* C, std::size_t ldc,
    bool accumulate) noexcept {
  for (std::size_t m = 0; m < M; ++m) {
    gemm_row_i8_avx2(A + m * K, K, B8, N, scale, C + m * ldc, accumulate);
  }
}

__attribute__((target("avx2,fma"))) void axpy_i8_avx2(
    float a, const std::int8_t* x8, float scale, float* y,
    std::size_t n) noexcept {
  const __m256 av = _mm256_set1_ps(a);
  const __m256 vs = _mm256_set1_ps(scale);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 acc =
        _mm256_fmadd_ps(av, dq8(x8 + i, vs), _mm256_loadu_ps(y + i));
    _mm256_storeu_ps(y + i, acc);
  }
  for (; i < n; ++i) y[i] += a * (scale * static_cast<float>(x8[i]));
}

bool cpu_has_avx2() noexcept { return __builtin_cpu_supports("avx2"); }

bool cpu_has_avx2_fma() noexcept {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

bool avx2_fma_active() noexcept {
  static const bool active = cpu_has_avx2_fma();
  return active;
}

#endif  // FTT_SIMD_INT8

}  // namespace

bool simd_int8_active() noexcept {
#ifdef FTT_SIMD_INT8
  static const bool active = cpu_has_avx2();
  return active;
#else
  return false;
#endif
}

float amax_f32(const float* x, std::size_t n) noexcept {
  float m = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    const float a = std::fabs(x[i]);
    if (a > m) m = a;  // NaN fails the compare and is skipped
  }
  return m;
}

I8Scale choose_i8_scale(float amax) noexcept {
  I8Scale out;
  if (!(amax > 0.0f) || !std::isfinite(amax)) return out;  // neutral 1.0
  // amax = m * 2^e with m in [0.5, 1).  127 * 2^(e-7) >= amax iff
  // m <= 127/128, so the minimal power-of-two exponent is e-7 or e-6 —
  // integer arithmetic only, no float log, fully deterministic.
  int e = 0;
  const float m = std::frexp(amax, &e);
  const int p = m <= 127.0f / 128.0f ? e - 7 : e - 6;
  out.scale = std::ldexp(1.0f, p);
  out.inv_scale = std::ldexp(1.0f, -p);
  return out;
}

void quantize_f32_to_i8_scalar(const float* src, std::int8_t* dst,
                               std::size_t n, float inv_scale) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    const float x = src[i];
    if (!(x == x)) {  // NaN
      dst[i] = 0;
      continue;
    }
    float y = x * inv_scale;
    y = y > kQMax ? kQMax : y;
    y = y < -kQMax ? -kQMax : y;
    dst[i] = static_cast<std::int8_t>(static_cast<std::int32_t>(nearbyintf(y)));
  }
}

void dequantize_i8_to_f32_scalar(const std::int8_t* src, float* dst,
                                 std::size_t n, float scale) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = static_cast<float>(src[i]) * scale;
  }
}

void quantize_f32_to_i8(const float* src, std::int8_t* dst, std::size_t n,
                        float inv_scale) noexcept {
#ifdef FTT_SIMD_INT8
  if (simd_int8_active()) {
    quantize_avx2(src, dst, n, inv_scale);
    return;
  }
#endif
  quantize_f32_to_i8_scalar(src, dst, n, inv_scale);
}

void dequantize_i8_to_f32(const std::int8_t* src, float* dst, std::size_t n,
                          float scale) noexcept {
#ifdef FTT_SIMD_INT8
  if (simd_int8_active()) {
    dequantize_avx2(src, dst, n, scale);
    return;
  }
#endif
  dequantize_i8_to_f32_scalar(src, dst, n, scale);
}

void gemm_f32_nn_i8_scalar(const float* A, std::size_t M, std::size_t K,
                           const std::int8_t* B8, std::size_t N, float scale,
                           float* C, std::size_t ldc,
                           bool accumulate) noexcept {
  for (std::size_t m = 0; m < M; ++m) {
    float* crow = C + m * ldc;
    if (!accumulate) {
      for (std::size_t n = 0; n < N; ++n) crow[n] = 0.0f;
    }
    const float* arow = A + m * K;
    for (std::size_t k = 0; k < K; ++k) {
      const float av = arow[k];
      const std::int8_t* brow = B8 + k * N;
      for (std::size_t n = 0; n < N; ++n) {
        crow[n] += av * (scale * static_cast<float>(brow[n]));
      }
    }
  }
}

void axpy_f32_i8_scalar(float a, const std::int8_t* x8, float scale, float* y,
                        std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    y[i] += a * (scale * static_cast<float>(x8[i]));
  }
}

void gemm_f32_nn_i8(const float* A, std::size_t M, std::size_t K,
                    const std::int8_t* B8, std::size_t N, float scale,
                    float* C, std::size_t ldc, bool accumulate) noexcept {
#ifdef FTT_SIMD_INT8
  if (avx2_fma_active()) {
    gemm_i8_avx2(A, M, K, B8, N, scale, C, ldc, accumulate);
    return;
  }
#endif
  gemm_f32_nn_i8_scalar(A, M, K, B8, N, scale, C, ldc, accumulate);
}

void axpy_f32_i8(float a, const std::int8_t* x8, float scale, float* y,
                 std::size_t n) noexcept {
#ifdef FTT_SIMD_INT8
  if (avx2_fma_active()) {
    axpy_i8_avx2(a, x8, scale, y, n);
    return;
  }
#endif
  axpy_f32_i8_scalar(a, x8, scale, y, n);
}

}  // namespace ftt::numeric
