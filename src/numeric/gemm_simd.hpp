#pragma once
// Runtime-dispatched AVX2+FMA GEMM microkernels (optional AVX-512F variant).
//
// These are the MAC inner loops behind sim::gemm_fp16_nt / gemm_f32_nt and
// the strided checksum encodes — the last scalar hot loops after PR 3
// vectorized the fp16<->fp32 conversions.  Same dispatch contract as
// fp16_simd.cpp: compiled only under FTT_SIMD (plus FTT_SIMD_AVX512 for the
// wide variant), per-function target attributes so the rest of the library
// keeps the default architecture, a CPUID check at runtime, and a scalar
// reference path that is always present and always the semantic definition.
//
// Bit-identity contract.  Every kernel fixes the per-output-element
// accumulation order to ascending k — exactly the sequential-K scalar dot
// loop (and the SM80 MMA atom chain test_mma pins gemm_fp16_nt against).
// Vector lanes run across *output columns*, never across k, so widening the
// vector (8 AVX2 lanes, 16 AVX-512 lanes, 1 scalar lane) cannot reorder any
// element's additions.  The FMA forms are bit-identical to the scalar
// mul-then-add forms under one precondition, which every caller in this
// codebase satisfies: each product a*b must be exactly representable in
// fp32, so fl(a*b) == a*b and fma(a,b,c) == fl(c + fl(a*b)).  That holds
// because all GEMM operands here are fp16-valued (widened or fp16-rounded:
// <= 11-bit significands, products need <= 22 bits and stay far inside the
// fp32 exponent range) and checksum-encode weights are small integers
// (<= 64, <= 7 bits against an fp16 operand).  Feeding arbitrary fp32
// operands voids the scalar-bitwise guarantee — don't.
//
// tests/test_gemm_simd.cpp pins dispatch == scalar bit-for-bit on
// randomized shapes, ragged tails and strided outputs.

#include <cstddef>

#include "numeric/fp16.hpp"

namespace ftt::numeric {

/// True when an AVX2+FMA (or AVX-512F) GEMM kernel is compiled in and this
/// CPU supports it (checked once, then cached).
bool simd_gemm_active() noexcept;

/// True when the AVX-512F variant specifically is compiled in
/// (FTT_SIMD_AVX512) and supported by this CPU.
bool simd_gemm_avx512_active() noexcept;

/// True when the fp16-operand kernels below can take the SIMD path: the
/// AVX2 tier additionally needs F16C for the in-register widen (the
/// AVX-512F tier gets vcvtph2ps from AVX512F itself).
bool simd_gemm_f16c_active() noexcept;

/// y[i] += a * x[i] for i ascending — the GEMM-II / checksum-encode
/// primitive.  Dispatching entry point and scalar reference; bit-identical
/// under the exact-product precondition above.
void axpy_f32(float a, const float* x, float* y, std::size_t n) noexcept;
void axpy_f32_scalar(float a, const float* x, float* y,
                     std::size_t n) noexcept;

/// C (M x N, row stride ldc >= N) = A (M x K, dense row-major) * B (K x N,
/// dense row-major — i.e. the k-major / pre-transposed operand), += when
/// `accumulate`.  Per output element the accumulation order is ascending k
/// starting from 0 (or the existing C value when accumulating) — the scalar
/// sequential-K dot order, so this is bit-identical to sim::gemm_f32_nt
/// over B^T.  Dispatching entry point and scalar reference.
void gemm_f32_nn(const float* A, std::size_t M, std::size_t K, const float* B,
                 std::size_t N, float* C, std::size_t ldc,
                 bool accumulate) noexcept;
void gemm_f32_nn_scalar(const float* A, std::size_t M, std::size_t K,
                        const float* B, std::size_t N, float* C,
                        std::size_t ldc, bool accumulate) noexcept;

/// fp16-operand tier: same contracts as axpy_f32 / gemm_f32_nn with the
/// B-side operand kept at half width and widened in registers
/// (`_mm256_cvtph_ps`, 8 lanes at a time) inside the inner loop.  fp16->fp32
/// widening is exact and the per-element accumulation order is unchanged
/// (ascending k, lanes across output columns), so these are bit-identical to
/// running the fp32 kernels over a pre-widened copy of B — at half the
/// B-side bytes streamed.  The scalar references widen with
/// half_bits_to_float, which quiets sNaNs exactly like hardware F16C, so
/// scalar == SIMD on all 65536 half patterns (tests/test_fp16_gemm.cpp
/// proves it exhaustively).

/// y[i] += a * widen(x[i]) for i ascending.
void axpy_f32_h(float a, const Half* x, float* y, std::size_t n) noexcept;
void axpy_f32_h_scalar(float a, const Half* x, float* y,
                       std::size_t n) noexcept;

/// C (M x N, row stride ldc >= N) = A (M x K fp32) * widen(B) (K x N Half,
/// k-major), += when `accumulate`.  Bit-identical to gemm_f32_nn over the
/// widened image of B.
void gemm_f32_nnh(const float* A, std::size_t M, std::size_t K, const Half* B,
                  std::size_t N, float* C, std::size_t ldc,
                  bool accumulate) noexcept;
void gemm_f32_nnh_scalar(const float* A, std::size_t M, std::size_t K,
                         const Half* B, std::size_t N, float* C,
                         std::size_t ldc, bool accumulate) noexcept;

/// out (cols x rows) = transpose of in (rows x cols).  Pure data movement
/// (no rounding), cache-blocked.  Used to pack the N x K operand of
/// gemm_f32_nt into the k-major layout gemm_f32_nn consumes, and to build
/// the memoized k-major fp32 tile images at seal time.
void transpose_f32(const float* in, std::size_t rows, std::size_t cols,
                   float* out) noexcept;

}  // namespace ftt::numeric
