#pragma once
// Per-tile symmetric int8 quantization with a power-of-two scale, plus the
// runtime-dispatched AVX2 bulk kernels the int8 KV tile format streams
// through (`_mm256_cvtepi8_epi32` + `_mm256_cvtepi32_ps` widening, in the
// caffe2/operators/quantized spirit, specialized to this repo's bit-identity
// contracts).
//
// Why a power-of-two scale (not amax/127):
//
//   * dequantization  f = q * scale  is EXACT — q has at most 8 significant
//     bits and a power-of-two multiply only shifts the exponent, so the
//     dequantized tile is a set of fp32 values with <= 7-bit significands;
//   * every product of a dequantized operand with an fp16-valued query
//     element therefore has <= 18 significant bits and is exactly
//     representable in fp32, which is precisely the "exact product"
//     precondition the SIMD GEMM microkernels (numeric/gemm_simd.hpp) rely
//     on for their FMA == mul-then-add bit-identity proof — an arbitrary
//     scale would produce 31-bit products and silently break bitwise
//     reproducibility between the scalar and FMA paths;
//   * the fp32 strided-ABFT encodings of the dequantized tile accumulate
//     integer multiples of the scale whose partial sums stay far below
//     2^24, so they are EXACT and equal scale * (integer checksum) — the
//     sealed fp16 encodings are thus derivable, bit for bit, from the int32
//     integer checksums stored next to the payload (abft/int8_checksums).
//
// The cost is at most one extra bit of quantization error versus amax/127
// (the step is at most 2x the optimal step); the gain is that every
// downstream exactness proof in the repo survives quantization untouched.
//
// Dispatch mirrors fp16_simd: kernels are compiled with per-function target
// attributes in this TU, the public entry points check CPU support once,
// and the scalar reference paths are bit-identical for every input —
// including NaN (quantizes to 0) and +-Inf (saturates to +-127), so even
// pathological payloads quantize deterministically on both paths.

#include <cstddef>
#include <cstdint>

namespace ftt::numeric {

/// Quantization parameters of one tile: scale = 2^e chosen so that
/// 127 * scale >= amax, i.e. every finite payload value maps into
/// [-127, 127] before rounding.  inv_scale = 2^-e is exact.
struct I8Scale {
  float scale = 1.0f;
  float inv_scale = 1.0f;
};

/// True when the AVX2 int8 kernels are compiled in (FTT_SIMD) and this CPU
/// supports them (checked once, then cached).
bool simd_int8_active() noexcept;

/// max |x| over n values, ignoring NaNs (a NaN payload element quantizes to
/// zero and must not poison the tile's scale).  +-Inf yields +Inf.
float amax_f32(const float* x, std::size_t n) noexcept;

/// The smallest power-of-two scale with 127 * scale >= amax.  amax <= 0 or
/// non-finite amax yield the neutral scale 1.0 (the payload then saturates
/// element-wise, deterministically).  Exact: no float log involved.
I8Scale choose_i8_scale(float amax) noexcept;

/// dst[i] = round-to-nearest-even(clamp(src[i] * inv_scale, -127, 127));
/// NaN lanes map to 0.  Bit-identical between the SIMD and scalar paths.
void quantize_f32_to_i8(const float* src, std::int8_t* dst, std::size_t n,
                        float inv_scale) noexcept;

/// dst[i] = float(src[i]) * scale — exact when scale is a power of two
/// (choose_i8_scale guarantees it), hence trivially bit-identical between
/// the SIMD widen (_mm256_cvtepi8_epi32 + _mm256_cvtepi32_ps) and scalar.
void dequantize_i8_to_f32(const std::int8_t* src, float* dst, std::size_t n,
                          float scale) noexcept;

/// Fused dequantizing GEMM: C (M x N, row stride ldc) = A (M x K, fp32
/// row-major) * dequant(B8) where B8 is the K x N *k-major* int8 operand
/// (i.e. the pre-transposed layout gemm_f32_nn consumes) and every element
/// dequantizes as scale * float(b8) — exact for the power-of-two scales
/// choose_i8_scale produces.  This is the int8 KV fast path: the kernel
/// streams the quantized payload directly (1 byte/element) with no
/// dequantize-to-scratch pass and no pack, widening in registers via
/// _mm256_cvtepi8_epi32 + _mm256_cvtepi32_ps.  Accumulation order per
/// output element is ascending k (axpy form, lanes across output columns),
/// and scale * float(b8) is computed before the FMA in both paths, so the
/// result is bit-identical to gemm_f32_nn over a dequantized image of B8 —
/// the property that keeps int8 decode bit-identical to its fp16 twin.
void gemm_f32_nn_i8(const float* A, std::size_t M, std::size_t K,
                    const std::int8_t* B8, std::size_t N, float scale,
                    float* C, std::size_t ldc, bool accumulate) noexcept;
void gemm_f32_nn_i8_scalar(const float* A, std::size_t M, std::size_t K,
                           const std::int8_t* B8, std::size_t N, float scale,
                           float* C, std::size_t ldc,
                           bool accumulate) noexcept;

/// Fused dequantizing axpy: y[i] += a * (scale * float(x8[i])) for i
/// ascending — GEMM II's V-row primitive on int8 tiles, bit-identical to
/// axpy_f32 over the dequantized row (same exact-product argument as
/// gemm_f32_nn_i8).
void axpy_f32_i8(float a, const std::int8_t* x8, float scale, float* y,
                 std::size_t n) noexcept;
void axpy_f32_i8_scalar(float a, const std::int8_t* x8, float scale, float* y,
                        std::size_t n) noexcept;

/// Scalar reference paths, always available; the dispatching entry points
/// above must match them bit for bit (tests/test_int8_quant.cpp sweeps
/// random and adversarial inputs on every build).
void quantize_f32_to_i8_scalar(const float* src, std::int8_t* dst,
                               std::size_t n, float inv_scale) noexcept;
void dequantize_i8_to_f32_scalar(const std::int8_t* src, float* dst,
                                 std::size_t n, float scale) noexcept;

}  // namespace ftt::numeric
