// AVX2+FMA (and optional AVX-512F) GEMM microkernels with runtime dispatch.
//
// Kernel shape: axpy-form register blocking.  The inner loops broadcast one
// A element and FMA it against a contiguous row of the k-major B operand,
// holding a panel of output columns in vector accumulators across the whole
// K loop.  Lanes span output columns, so every output element still
// receives its k-term additions in ascending-k order — the property that
// keeps all three variants (scalar, AVX2, AVX-512) bit-identical and keeps
// the repo's chunk/batch/spec/shard bit-identity proofs intact (see the
// header for the exact-product precondition the FMA equivalence rests on).
//
// The TU compiles with the project's default architecture; only the
// attributed functions get AVX2/AVX-512 codegen, and the binary still runs
// (via the scalar path) on CPUs without them.

#include "numeric/gemm_simd.hpp"

#include <algorithm>

#if defined(FTT_SIMD) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define FTT_SIMD_GEMM 1
#if defined(FTT_SIMD_AVX512)
#define FTT_SIMD_GEMM_AVX512 1
#endif
#include <immintrin.h>
#endif

namespace ftt::numeric {

void axpy_f32_scalar(float a, const float* x, float* y,
                     std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void gemm_f32_nn_scalar(const float* A, std::size_t M, std::size_t K,
                        const float* B, std::size_t N, float* C,
                        std::size_t ldc, bool accumulate) noexcept {
  for (std::size_t m = 0; m < M; ++m) {
    float* crow = C + m * ldc;
    if (!accumulate) {
      for (std::size_t n = 0; n < N; ++n) crow[n] = 0.0f;
    }
    const float* arow = A + m * K;
    for (std::size_t k = 0; k < K; ++k) {
      const float av = arow[k];
      const float* brow = B + k * N;
      for (std::size_t n = 0; n < N; ++n) crow[n] += av * brow[n];
    }
  }
}

void axpy_f32_h_scalar(float a, const Half* x, float* y,
                       std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    y[i] += a * half_bits_to_float(x[i].bits());
  }
}

void gemm_f32_nnh_scalar(const float* A, std::size_t M, std::size_t K,
                         const Half* B, std::size_t N, float* C,
                         std::size_t ldc, bool accumulate) noexcept {
  for (std::size_t m = 0; m < M; ++m) {
    float* crow = C + m * ldc;
    if (!accumulate) {
      for (std::size_t n = 0; n < N; ++n) crow[n] = 0.0f;
    }
    const float* arow = A + m * K;
    for (std::size_t k = 0; k < K; ++k) {
      const float av = arow[k];
      const Half* brow = B + k * N;
      for (std::size_t n = 0; n < N; ++n) {
        crow[n] += av * half_bits_to_float(brow[n].bits());
      }
    }
  }
}

void transpose_f32(const float* in, std::size_t rows, std::size_t cols,
                   float* out) noexcept {
  // Cache-blocked scalar transpose: data movement only, no arithmetic, so
  // any traversal order is bit-safe.  32x32 float blocks (4 KiB of each
  // operand) keep both streams in L1.
  constexpr std::size_t kBlk = 32;
  for (std::size_t r0 = 0; r0 < rows; r0 += kBlk) {
    const std::size_t r1 = std::min(rows, r0 + kBlk);
    for (std::size_t c0 = 0; c0 < cols; c0 += kBlk) {
      const std::size_t c1 = std::min(cols, c0 + kBlk);
      for (std::size_t r = r0; r < r1; ++r) {
        const float* src = in + r * cols;
        for (std::size_t c = c0; c < c1; ++c) out[c * rows + r] = src[c];
      }
    }
  }
}

namespace {

#ifdef FTT_SIMD_GEMM

__attribute__((target("avx2,fma"))) void axpy_avx2(float a, const float* x,
                                                   float* y,
                                                   std::size_t n) noexcept {
  const __m256 av = _mm256_set1_ps(a);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 acc =
        _mm256_fmadd_ps(av, _mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i));
    _mm256_storeu_ps(y + i, acc);
  }
  // Tail: mul-then-add equals fma under the exact-product precondition, and
  // is trivially bit-identical to the scalar reference.
  for (; i < n; ++i) y[i] += a * x[i];
}

/// One M-row of the axpy-form GEMM: panel accumulators held in registers
/// across the whole K loop (4 x 8 = 32 columns per panel, then one 8-wide
/// vector, then a scalar tail).  Each accumulator lane sums its column's
/// k-terms in ascending order.
__attribute__((target("avx2,fma"))) void gemm_row_avx2(
    const float* arow, std::size_t K, const float* B, std::size_t N,
    float* crow, bool accumulate) noexcept {
  std::size_t n0 = 0;
  for (; n0 + 32 <= N; n0 += 32) {
    __m256 c0, c1, c2, c3;
    if (accumulate) {
      c0 = _mm256_loadu_ps(crow + n0);
      c1 = _mm256_loadu_ps(crow + n0 + 8);
      c2 = _mm256_loadu_ps(crow + n0 + 16);
      c3 = _mm256_loadu_ps(crow + n0 + 24);
    } else {
      c0 = c1 = c2 = c3 = _mm256_setzero_ps();
    }
    for (std::size_t k = 0; k < K; ++k) {
      const __m256 av = _mm256_set1_ps(arow[k]);
      const float* brow = B + k * N + n0;
      c0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow), c0);
      c1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 8), c1);
      c2 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 16), c2);
      c3 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 24), c3);
    }
    _mm256_storeu_ps(crow + n0, c0);
    _mm256_storeu_ps(crow + n0 + 8, c1);
    _mm256_storeu_ps(crow + n0 + 16, c2);
    _mm256_storeu_ps(crow + n0 + 24, c3);
  }
  for (; n0 + 8 <= N; n0 += 8) {
    __m256 c0 = accumulate ? _mm256_loadu_ps(crow + n0) : _mm256_setzero_ps();
    for (std::size_t k = 0; k < K; ++k) {
      c0 = _mm256_fmadd_ps(_mm256_set1_ps(arow[k]),
                           _mm256_loadu_ps(B + k * N + n0), c0);
    }
    _mm256_storeu_ps(crow + n0, c0);
  }
  for (; n0 < N; ++n0) {
    float acc = accumulate ? crow[n0] : 0.0f;
    for (std::size_t k = 0; k < K; ++k) acc += arow[k] * B[k * N + n0];
    crow[n0] = acc;
  }
}

__attribute__((target("avx2,fma"))) void gemm_avx2(
    const float* A, std::size_t M, std::size_t K, const float* B,
    std::size_t N, float* C, std::size_t ldc, bool accumulate) noexcept {
  for (std::size_t m = 0; m < M; ++m) {
    gemm_row_avx2(A + m * K, K, B, N, C + m * ldc, accumulate);
  }
}

// Widen 8 halves to fp32 in registers — vcvtph2ps is exact (every binary16
// value is representable in binary32) and quiets sNaNs exactly like
// half_bits_to_float, so the fused kernels below stay bit-identical to
// their scalar references on every input pattern.
__attribute__((target("avx2,fma,f16c"))) inline __m256 wh8(
    const Half* p) noexcept {
  return _mm256_cvtph_ps(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
}

__attribute__((target("avx2,fma,f16c"))) void axpy_h_avx2(
    float a, const Half* x, float* y, std::size_t n) noexcept {
  const __m256 av = _mm256_set1_ps(a);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 acc =
        _mm256_fmadd_ps(av, wh8(x + i), _mm256_loadu_ps(y + i));
    _mm256_storeu_ps(y + i, acc);
  }
  for (; i < n; ++i) y[i] += a * half_bits_to_float(x[i].bits());
}

/// One M-row of the fused fp16-operand GEMM: same axpy-form register
/// blocking as gemm_row_avx2, with the B loads replaced by the in-register
/// widen.  Lanes span output columns, so each output element's k-terms
/// still accumulate in ascending order.
__attribute__((target("avx2,fma,f16c"))) void gemm_row_h_avx2(
    const float* arow, std::size_t K, const Half* B, std::size_t N,
    float* crow, bool accumulate) noexcept {
  std::size_t n0 = 0;
  for (; n0 + 32 <= N; n0 += 32) {
    __m256 c0, c1, c2, c3;
    if (accumulate) {
      c0 = _mm256_loadu_ps(crow + n0);
      c1 = _mm256_loadu_ps(crow + n0 + 8);
      c2 = _mm256_loadu_ps(crow + n0 + 16);
      c3 = _mm256_loadu_ps(crow + n0 + 24);
    } else {
      c0 = c1 = c2 = c3 = _mm256_setzero_ps();
    }
    for (std::size_t k = 0; k < K; ++k) {
      const __m256 av = _mm256_set1_ps(arow[k]);
      const Half* brow = B + k * N + n0;
      c0 = _mm256_fmadd_ps(av, wh8(brow), c0);
      c1 = _mm256_fmadd_ps(av, wh8(brow + 8), c1);
      c2 = _mm256_fmadd_ps(av, wh8(brow + 16), c2);
      c3 = _mm256_fmadd_ps(av, wh8(brow + 24), c3);
    }
    _mm256_storeu_ps(crow + n0, c0);
    _mm256_storeu_ps(crow + n0 + 8, c1);
    _mm256_storeu_ps(crow + n0 + 16, c2);
    _mm256_storeu_ps(crow + n0 + 24, c3);
  }
  for (; n0 + 8 <= N; n0 += 8) {
    __m256 c0 = accumulate ? _mm256_loadu_ps(crow + n0) : _mm256_setzero_ps();
    for (std::size_t k = 0; k < K; ++k) {
      c0 = _mm256_fmadd_ps(_mm256_set1_ps(arow[k]), wh8(B + k * N + n0), c0);
    }
    _mm256_storeu_ps(crow + n0, c0);
  }
  for (; n0 < N; ++n0) {
    float acc = accumulate ? crow[n0] : 0.0f;
    for (std::size_t k = 0; k < K; ++k) {
      acc += arow[k] * half_bits_to_float(B[k * N + n0].bits());
    }
    crow[n0] = acc;
  }
}

__attribute__((target("avx2,fma,f16c"))) void gemm_h_avx2(
    const float* A, std::size_t M, std::size_t K, const Half* B,
    std::size_t N, float* C, std::size_t ldc, bool accumulate) noexcept {
  for (std::size_t m = 0; m < M; ++m) {
    gemm_row_h_avx2(A + m * K, K, B, N, C + m * ldc, accumulate);
  }
}

bool cpu_has_avx2_fma() noexcept {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

bool avx2_active() noexcept {
  static const bool active = cpu_has_avx2_fma();
  return active;
}

bool avx2_f16c_active() noexcept {
  static const bool active =
      cpu_has_avx2_fma() && __builtin_cpu_supports("f16c");
  return active;
}

#ifdef FTT_SIMD_GEMM_AVX512

__attribute__((target("avx512f"))) void axpy_avx512(float a, const float* x,
                                                    float* y,
                                                    std::size_t n) noexcept {
  const __m512 av = _mm512_set1_ps(a);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 acc =
        _mm512_fmadd_ps(av, _mm512_loadu_ps(x + i), _mm512_loadu_ps(y + i));
    _mm512_storeu_ps(y + i, acc);
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

__attribute__((target("avx512f"))) void gemm_row_avx512(
    const float* arow, std::size_t K, const float* B, std::size_t N,
    float* crow, bool accumulate) noexcept {
  std::size_t n0 = 0;
  for (; n0 + 64 <= N; n0 += 64) {
    __m512 c0, c1, c2, c3;
    if (accumulate) {
      c0 = _mm512_loadu_ps(crow + n0);
      c1 = _mm512_loadu_ps(crow + n0 + 16);
      c2 = _mm512_loadu_ps(crow + n0 + 32);
      c3 = _mm512_loadu_ps(crow + n0 + 48);
    } else {
      c0 = c1 = c2 = c3 = _mm512_setzero_ps();
    }
    for (std::size_t k = 0; k < K; ++k) {
      const __m512 av = _mm512_set1_ps(arow[k]);
      const float* brow = B + k * N + n0;
      c0 = _mm512_fmadd_ps(av, _mm512_loadu_ps(brow), c0);
      c1 = _mm512_fmadd_ps(av, _mm512_loadu_ps(brow + 16), c1);
      c2 = _mm512_fmadd_ps(av, _mm512_loadu_ps(brow + 32), c2);
      c3 = _mm512_fmadd_ps(av, _mm512_loadu_ps(brow + 48), c3);
    }
    _mm512_storeu_ps(crow + n0, c0);
    _mm512_storeu_ps(crow + n0 + 16, c1);
    _mm512_storeu_ps(crow + n0 + 32, c2);
    _mm512_storeu_ps(crow + n0 + 48, c3);
  }
  for (; n0 + 16 <= N; n0 += 16) {
    __m512 c0 = accumulate ? _mm512_loadu_ps(crow + n0) : _mm512_setzero_ps();
    for (std::size_t k = 0; k < K; ++k) {
      c0 = _mm512_fmadd_ps(_mm512_set1_ps(arow[k]),
                           _mm512_loadu_ps(B + k * N + n0), c0);
    }
    _mm512_storeu_ps(crow + n0, c0);
  }
  for (; n0 < N; ++n0) {
    float acc = accumulate ? crow[n0] : 0.0f;
    for (std::size_t k = 0; k < K; ++k) acc += arow[k] * B[k * N + n0];
    crow[n0] = acc;
  }
}

__attribute__((target("avx512f"))) void gemm_avx512(
    const float* A, std::size_t M, std::size_t K, const float* B,
    std::size_t N, float* C, std::size_t ldc, bool accumulate) noexcept {
  for (std::size_t m = 0; m < M; ++m) {
    gemm_row_avx512(A + m * K, K, B, N, C + m * ldc, accumulate);
  }
}

// 16-half widen: vcvtph2ps zmm comes with AVX512F itself, no extra feature
// bit beyond the fp32 tier's.
__attribute__((target("avx512f"))) inline __m512 wh16(const Half* p) noexcept {
  return _mm512_cvtph_ps(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)));
}

__attribute__((target("avx512f"))) void axpy_h_avx512(
    float a, const Half* x, float* y, std::size_t n) noexcept {
  const __m512 av = _mm512_set1_ps(a);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 acc =
        _mm512_fmadd_ps(av, wh16(x + i), _mm512_loadu_ps(y + i));
    _mm512_storeu_ps(y + i, acc);
  }
  for (; i < n; ++i) y[i] += a * half_bits_to_float(x[i].bits());
}

__attribute__((target("avx512f"))) void gemm_row_h_avx512(
    const float* arow, std::size_t K, const Half* B, std::size_t N,
    float* crow, bool accumulate) noexcept {
  std::size_t n0 = 0;
  for (; n0 + 64 <= N; n0 += 64) {
    __m512 c0, c1, c2, c3;
    if (accumulate) {
      c0 = _mm512_loadu_ps(crow + n0);
      c1 = _mm512_loadu_ps(crow + n0 + 16);
      c2 = _mm512_loadu_ps(crow + n0 + 32);
      c3 = _mm512_loadu_ps(crow + n0 + 48);
    } else {
      c0 = c1 = c2 = c3 = _mm512_setzero_ps();
    }
    for (std::size_t k = 0; k < K; ++k) {
      const __m512 av = _mm512_set1_ps(arow[k]);
      const Half* brow = B + k * N + n0;
      c0 = _mm512_fmadd_ps(av, wh16(brow), c0);
      c1 = _mm512_fmadd_ps(av, wh16(brow + 16), c1);
      c2 = _mm512_fmadd_ps(av, wh16(brow + 32), c2);
      c3 = _mm512_fmadd_ps(av, wh16(brow + 48), c3);
    }
    _mm512_storeu_ps(crow + n0, c0);
    _mm512_storeu_ps(crow + n0 + 16, c1);
    _mm512_storeu_ps(crow + n0 + 32, c2);
    _mm512_storeu_ps(crow + n0 + 48, c3);
  }
  for (; n0 + 16 <= N; n0 += 16) {
    __m512 c0 = accumulate ? _mm512_loadu_ps(crow + n0) : _mm512_setzero_ps();
    for (std::size_t k = 0; k < K; ++k) {
      c0 = _mm512_fmadd_ps(_mm512_set1_ps(arow[k]), wh16(B + k * N + n0), c0);
    }
    _mm512_storeu_ps(crow + n0, c0);
  }
  for (; n0 < N; ++n0) {
    float acc = accumulate ? crow[n0] : 0.0f;
    for (std::size_t k = 0; k < K; ++k) {
      acc += arow[k] * half_bits_to_float(B[k * N + n0].bits());
    }
    crow[n0] = acc;
  }
}

__attribute__((target("avx512f"))) void gemm_h_avx512(
    const float* A, std::size_t M, std::size_t K, const Half* B,
    std::size_t N, float* C, std::size_t ldc, bool accumulate) noexcept {
  for (std::size_t m = 0; m < M; ++m) {
    gemm_row_h_avx512(A + m * K, K, B, N, C + m * ldc, accumulate);
  }
}

bool cpu_has_avx512f() noexcept { return __builtin_cpu_supports("avx512f"); }

#endif  // FTT_SIMD_GEMM_AVX512
#endif  // FTT_SIMD_GEMM

}  // namespace

bool simd_gemm_avx512_active() noexcept {
#ifdef FTT_SIMD_GEMM_AVX512
  static const bool active = cpu_has_avx512f();
  return active;
#else
  return false;
#endif
}

bool simd_gemm_active() noexcept {
#ifdef FTT_SIMD_GEMM
  return avx2_active() || simd_gemm_avx512_active();
#else
  return false;
#endif
}

bool simd_gemm_f16c_active() noexcept {
#ifdef FTT_SIMD_GEMM
  return avx2_f16c_active() || simd_gemm_avx512_active();
#else
  return false;
#endif
}

void axpy_f32(float a, const float* x, float* y, std::size_t n) noexcept {
#ifdef FTT_SIMD_GEMM
#ifdef FTT_SIMD_GEMM_AVX512
  if (simd_gemm_avx512_active()) {
    axpy_avx512(a, x, y, n);
    return;
  }
#endif
  if (avx2_active()) {
    axpy_avx2(a, x, y, n);
    return;
  }
#endif
  axpy_f32_scalar(a, x, y, n);
}

void gemm_f32_nn(const float* A, std::size_t M, std::size_t K, const float* B,
                 std::size_t N, float* C, std::size_t ldc,
                 bool accumulate) noexcept {
#ifdef FTT_SIMD_GEMM
#ifdef FTT_SIMD_GEMM_AVX512
  if (simd_gemm_avx512_active()) {
    gemm_avx512(A, M, K, B, N, C, ldc, accumulate);
    return;
  }
#endif
  if (avx2_active()) {
    gemm_avx2(A, M, K, B, N, C, ldc, accumulate);
    return;
  }
#endif
  gemm_f32_nn_scalar(A, M, K, B, N, C, ldc, accumulate);
}

void axpy_f32_h(float a, const Half* x, float* y, std::size_t n) noexcept {
#ifdef FTT_SIMD_GEMM
#ifdef FTT_SIMD_GEMM_AVX512
  if (simd_gemm_avx512_active()) {
    axpy_h_avx512(a, x, y, n);
    return;
  }
#endif
  if (avx2_f16c_active()) {
    axpy_h_avx2(a, x, y, n);
    return;
  }
#endif
  axpy_f32_h_scalar(a, x, y, n);
}

void gemm_f32_nnh(const float* A, std::size_t M, std::size_t K, const Half* B,
                  std::size_t N, float* C, std::size_t ldc,
                  bool accumulate) noexcept {
#ifdef FTT_SIMD_GEMM
#ifdef FTT_SIMD_GEMM_AVX512
  if (simd_gemm_avx512_active()) {
    gemm_h_avx512(A, M, K, B, N, C, ldc, accumulate);
    return;
  }
#endif
  if (avx2_f16c_active()) {
    gemm_h_avx2(A, M, K, B, N, C, ldc, accumulate);
    return;
  }
#endif
  gemm_f32_nnh_scalar(A, M, K, B, N, C, ldc, accumulate);
}

}  // namespace ftt::numeric
