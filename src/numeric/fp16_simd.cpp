// Runtime-dispatched F16C/AVX2 bulk fp16 conversions.
//
// The kernels live in their own TU so the intrinsics can be compiled with a
// per-function target attribute — the rest of the library keeps the default
// architecture, and a binary built with FTT_SIMD still runs (via the scalar
// path) on CPUs without F16C.  Both directions are round-to-nearest-even,
// exactly like the scalar implementation in fp16.cpp; the narrow kernel
// additionally canonicalizes NaN payloads to sign | 0x7E00 so every input,
// NaNs included, converts bit-identically on both paths.

#include "numeric/fp16.hpp"

#if defined(FTT_SIMD) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define FTT_SIMD_F16C 1
#include <immintrin.h>
#endif

namespace ftt::numeric {
namespace {

#ifdef FTT_SIMD_F16C

__attribute__((target("avx2,f16c"))) void widen_f16c(const Half* src,
                                                     float* dst,
                                                     std::size_t n) noexcept {
  // Half is a single uint16_t payload; vcvtph2ps widens 8 lanes at a time
  // (exact, every binary16 value is representable in binary32).
  const auto* in = reinterpret_cast<const std::uint16_t*>(src);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i h =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i));
    _mm256_storeu_ps(dst + i, _mm256_cvtph_ps(h));
  }
  for (; i < n; ++i) dst[i] = src[i].to_float();
}

__attribute__((target("avx2,f16c"))) void narrow_f16c(const float* src,
                                                      Half* dst,
                                                      std::size_t n) noexcept {
  auto* out = reinterpret_cast<std::uint16_t*>(dst);
  const __m128i abs_mask = _mm_set1_epi16(0x7FFF);
  const __m128i exp_all = _mm_set1_epi16(0x7C00);
  const __m128i sign_mask = _mm_set1_epi16(static_cast<short>(0x8000u));
  const __m128i quiet_nan = _mm_set1_epi16(0x7E00);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 f = _mm256_loadu_ps(src + i);
    __m128i h =
        _mm256_cvtps_ph(f, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    // vcvtps2ph preserves NaN payload bits; the scalar path maps every NaN
    // to one quiet payload.  Canonicalize so the two are bit-identical.
    // After masking the sign, halves are non-negative int16, so a signed
    // compare against the Inf pattern classifies NaN lanes correctly.
    const __m128i mag = _mm_and_si128(h, abs_mask);
    const __m128i is_nan = _mm_cmpgt_epi16(mag, exp_all);
    const __m128i canon =
        _mm_or_si128(_mm_and_si128(h, sign_mask), quiet_nan);
    h = _mm_blendv_epi8(h, canon, is_nan);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), h);
  }
  for (; i < n; ++i) dst[i] = Half(src[i]);
}

bool cpu_has_f16c() noexcept {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("f16c");
}

#endif  // FTT_SIMD_F16C

}  // namespace

bool simd_fp16_active() noexcept {
#ifdef FTT_SIMD_F16C
  static const bool active = cpu_has_f16c();
  return active;
#else
  return false;
#endif
}

void halves_to_floats(const Half* src, float* dst, std::size_t n) noexcept {
#ifdef FTT_SIMD_F16C
  if (simd_fp16_active()) {
    widen_f16c(src, dst, n);
    return;
  }
#endif
  halves_to_floats_scalar(src, dst, n);
}

void floats_to_halves(const float* src, Half* dst, std::size_t n) noexcept {
#ifdef FTT_SIMD_F16C
  if (simd_fp16_active()) {
    narrow_f16c(src, dst, n);
    return;
  }
#endif
  floats_to_halves_scalar(src, dst, n);
}

}  // namespace ftt::numeric
