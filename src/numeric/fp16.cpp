#include "numeric/fp16.hpp"

#include <array>
#include <cstring>

namespace ftt::numeric {
namespace {

// Build the 65536-entry half->float table once.  256 KiB, read-only, shared.
struct HalfToFloatTable {
  std::array<float, 65536> values{};
  HalfToFloatTable() {
    for (std::uint32_t h = 0; h < 65536; ++h) {
      const std::uint32_t f = half_bits_to_float_bits(static_cast<std::uint16_t>(h));
      float out;
      std::memcpy(&out, &f, sizeof(out));
      values[h] = out;
    }
  }
};

const HalfToFloatTable& table() {
  static const HalfToFloatTable t;
  return t;
}

}  // namespace

// Round-to-nearest-even float -> half, after Fabian Giesen's
// float_to_half_fast3_rtne.  The rounding carry propagates from the mantissa
// into the exponent field, so values in [65520, 65536) correctly round to
// infinity and subnormal results are produced by one fp32 addition against a
// magic constant (relying on the FPU's own RNE).
std::uint16_t float_bits_to_half_bits(std::uint32_t f) noexcept {
  constexpr std::uint32_t kF32Infty = 255u << 23;
  constexpr std::uint32_t kF16Max = (127u + 16u) << 23;  // 2^16
  constexpr std::uint32_t kDenormMagicBits = ((127u - 15u) + (23u - 10u) + 1u)
                                             << 23;
  constexpr std::uint32_t kSignMask = 0x80000000u;

  const std::uint32_t sign = f & kSignMask;
  f ^= sign;

  std::uint16_t o;
  if (f >= kF16Max) {
    // Result is Inf or NaN.  All NaNs map to one quiet NaN payload.
    o = (f > kF32Infty) ? 0x7E00u : 0x7C00u;
  } else if (f < (113u << 23)) {
    // Result is a binary16 subnormal (or zero): align the 10 mantissa bits at
    // the bottom of the float via one RNE fp32 addition.
    float tmp;
    std::memcpy(&tmp, &f, sizeof(tmp));
    float denorm_magic;
    std::memcpy(&denorm_magic, &kDenormMagicBits, sizeof(denorm_magic));
    tmp += denorm_magic;
    std::uint32_t bits;
    std::memcpy(&bits, &tmp, sizeof(bits));
    o = static_cast<std::uint16_t>(bits - kDenormMagicBits);
  } else {
    const std::uint32_t mant_odd = (f >> 13) & 1u;
    f += (static_cast<std::uint32_t>(15 - 127) << 23) + 0xFFFu;
    f += mant_odd;
    o = static_cast<std::uint16_t>(f >> 13);
  }
  return static_cast<std::uint16_t>(o | (sign >> 16));
}

std::uint32_t half_bits_to_float_bits(std::uint16_t h) noexcept {
  const std::uint32_t sign = (static_cast<std::uint32_t>(h) & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1Fu;
  const std::uint32_t mant = h & 0x03FFu;

  if (exp == 0x1Fu) {
    // Inf / NaN: widen the payload, quieting NaNs (set the mantissa MSB)
    // exactly like hardware fp16 -> fp32 conversion does (F16C vcvtph2ps
    // quiets signaling NaNs), so the scalar and SIMD widen paths are
    // bit-identical over all 65536 half patterns.
    const std::uint32_t quiet = (mant != 0) ? 0x00400000u : 0u;
    return sign | 0x7F800000u | quiet | (mant << 13);
  }
  if (exp == 0) {
    if (mant == 0) return sign;  // +-0
    // Subnormal: renormalize into the fp32 encoding.
    std::uint32_t m = mant;
    std::uint32_t e = 0;
    while ((m & 0x0400u) == 0) {
      m <<= 1;
      ++e;
    }
    m &= 0x03FFu;
    // Subnormal value = mant * 2^-24; after normalizing (e left shifts) the
    // fp32 exponent is -14 - e, i.e. biased 113 - e.
    return sign | ((113u - e) << 23) | (m << 13);
  }
  return sign | ((exp + (127u - 15u)) << 23) | (mant << 13);
}

float half_bits_to_float(std::uint16_t h) noexcept { return table().values[h]; }

void halves_to_floats_scalar(const Half* src, float* dst,
                             std::size_t n) noexcept {
  const auto& t = table();
  for (std::size_t i = 0; i < n; ++i) dst[i] = t.values[src[i].bits()];
}

void floats_to_halves_scalar(const float* src, Half* dst,
                             std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) dst[i] = Half(src[i]);
}

}  // namespace ftt::numeric
