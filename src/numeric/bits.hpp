#pragma once
// Bit-level fault primitives.
//
// Soft errors under the paper's fault model are single-event upsets: one bit
// of a datum held in a compute unit flips.  These helpers apply such flips to
// fp32 and fp16 payloads; fault::FaultInjector decides *where* and *when*.

#include <cstdint>
#include <cstring>

namespace ftt::numeric {

/// Flip bit `bit` (0 = LSB of the mantissa, 31 = sign) of a binary32 value.
inline float flip_bit_f32(float v, unsigned bit) noexcept {
  std::uint32_t u;
  std::memcpy(&u, &v, sizeof(u));
  u ^= (1u << (bit & 31u));
  float out;
  std::memcpy(&out, &u, sizeof(out));
  return out;
}

/// Flip bit `bit` (0..15) of a binary16 bit pattern.
inline std::uint16_t flip_bit_f16(std::uint16_t v, unsigned bit) noexcept {
  return static_cast<std::uint16_t>(v ^ (1u << (bit & 15u)));
}

/// Magnitude of the perturbation a flip of `bit` introduces into `v` (fp32).
inline float flip_delta_f32(float v, unsigned bit) noexcept {
  return flip_bit_f32(v, bit) - v;
}

/// Count of set bits differing between two fp32 values (Hamming distance of
/// the encodings); used by tests to assert exactly-one-bit corruption.
inline int hamming_f32(float a, float b) noexcept {
  std::uint32_t ua, ub;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return __builtin_popcount(ua ^ ub);
}

}  // namespace ftt::numeric
