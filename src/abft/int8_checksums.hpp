#pragma once
// Exact integer strided-ABFT encodings for int8 KV tile payloads.
//
// These mirror StridedAbft::encode_rows/cols_strided — the same s residue
// classes, the same unweighted (c1) and index-weighted (c2) sums — but over
// the int8 quantized payload, accumulated in int32.  The sums are
// saturating-free by construction: a 64-row tile at stride 8 bounds every
// weighted class sum by 127 * (1 + 2 + ... + 8) = 4572, and even a
// 4096-wide column encode stays 5 orders of magnitude below INT32_MAX —
// unlike the dnnlowp_acc16 idiom this is modeled on, no overflow handling
// is ever needed.
//
// Because the arithmetic is integer, the checksum relation is EXACT:
// verification is equality, with zero threshold.  That makes every repair
// decision exact too — for a single corrupted element the residuals
// (d1, d2) = (stored - recomputed) satisfy d2 == (l* + 1) * d1 with an
// integer quotient, so the fault is located by exact division and the
// original value reconstructed without any float rounding ambiguity.  This
// is strictly stronger than the fp16/fp32 encodings the scrubber verifies
// for fp16 tiles, where sub-threshold payload flips are indistinguishable
// from checksum flips.

#include <cstddef>
#include <cstdint>

namespace ftt::abft {

/// Collapse the rows of X (rows x cols int8, rows % s == 0) at stride s:
/// out[jc * cols + c] = sum_l w_l * X[(jc + l*s) * cols + c], with w_l = 1
/// (weighted == false) or l + 1.  out holds s * cols int32 values.
void encode_rows_i8(const std::int8_t* X, std::size_t rows, std::size_t cols,
                    int s, bool weighted, std::int32_t* out) noexcept;

/// Collapse the columns of X (rows x cols int8, cols % s == 0) at stride s:
/// out[r * s + jc] = sum_l w_l * X[r * cols + jc + l*s].  out holds
/// rows * s int32 values.
void encode_cols_i8(const std::int8_t* X, std::size_t rows, std::size_t cols,
                    int s, bool weighted, std::int32_t* out) noexcept;

/// Outcome of one exact verify/correct pass over an int8 payload and its
/// stored (c1, c2) integer encodings.
struct I8VerifyReport {
  std::size_t classes = 0;          ///< residue classes checked
  std::size_t payload_corrected = 0;  ///< payload elements fixed exactly
  std::size_t checksum_corrected = 0;  ///< stored c1/c2 entries rewritten
  bool unrepairable = false;  ///< >= 2 faults in one class, or bounds blown

  [[nodiscard]] bool clean() const noexcept {
    return payload_corrected == 0 && checksum_corrected == 0 && !unrepairable;
  }
};

/// Verify X (rows x cols) against its stored row encodings c1/c2 (each
/// s * cols int32) by EQUALITY, repairing in place where the single-fault
/// classification is exact:
///   d1 == 0 && d2 == 0            -> clean class
///   d1 == 0 && d2 != 0            -> stored c2 flipped; rewrite it
///   d1 != 0 && d2 == 0            -> stored c1 flipped; rewrite it
///   d2 == q * d1, q in [1, rows/s],
///   corrected value in [-127,127] -> payload element at loop q-1 restored
///   anything else                 -> unrepairable (>= 2 faults)
/// where (d1, d2) = stored - recomputed per residue class.
I8VerifyReport verify_correct_rows_i8(std::int8_t* X, std::size_t rows,
                                      std::size_t cols, int s,
                                      std::int32_t* c1,
                                      std::int32_t* c2) noexcept;

/// Column-encoding counterpart (c1/c2 each rows * s int32), same exact
/// classification with loops = cols / s.
I8VerifyReport verify_correct_cols_i8(std::int8_t* X, std::size_t rows,
                                      std::size_t cols, int s,
                                      std::int32_t* c1,
                                      std::int32_t* c2) noexcept;

}  // namespace ftt::abft
