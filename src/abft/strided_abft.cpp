#include "abft/strided_abft.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "numeric/gemm_simd.hpp"
#include "sim/mma.hpp"

namespace ftt::abft {

using numeric::Half;
using tensor::MatrixF;
using tensor::MatrixH;

namespace {
constexpr float kRelEps = 1e-6f;

bool near_integer(float x, float tol = 0.02f) {
  return std::fabs(x - std::round(x)) < tol;
}
}  // namespace

namespace {

/// Widen a view into dense R x C fp32 scratch (bulk SIMD conversion).
/// Exact, so the accumulations below stay bit-identical to per-element
/// table conversion.
std::vector<float> widen_view(tensor::MatrixHView X) {
  std::vector<float> xf(X.rows * X.cols);
  tensor::widen(X, xf.data());
  return xf;
}

}  // namespace

MatrixH StridedAbft::encode_rows_strided_widened(const float* xf,
                                                 std::size_t rows,
                                                 std::size_t cols, int s,
                                                 bool weighted,
                                                 fault::FaultInjector* inj) {
  if (s <= 0 || rows % static_cast<std::size_t>(s) != 0) {
    throw std::invalid_argument("encode_rows_strided: rows % stride != 0");
  }
  const std::size_t loops = rows / static_cast<std::size_t>(s);
  MatrixH out(static_cast<std::size_t>(s), cols);
  // Accumulate a whole checksum row at a time: each output element is summed
  // over ascending l exactly as the scalar l-inner loop did (axpy_f32 adds
  // one l-term to every column per call), so the vector and scalar paths are
  // bit-identical, and the fault hooks still fire once per output element in
  // (jc, c) order after the accumulation.
  std::vector<float> acc(cols);
  for (std::size_t jc = 0; jc < static_cast<std::size_t>(s); ++jc) {
    for (std::size_t c = 0; c < cols; ++c) acc[c] = 0.0f;
    for (std::size_t l = 0; l < loops; ++l) {
      const float w = weighted ? static_cast<float>(l + 1) : 1.0f;
      numeric::axpy_f32(w, xf + (jc + l * static_cast<std::size_t>(s)) * cols,
                        acc.data(), cols);
    }
    for (std::size_t c = 0; c < cols; ++c) {
      out(jc, c) = Half(fault::corrupt(inj, fault::Site::kChecksum, acc[c]));
    }
  }
  return out;
}

MatrixH StridedAbft::encode_rows_strided_h(const Half* x, std::size_t rows,
                                           std::size_t cols, int s,
                                           bool weighted,
                                           fault::FaultInjector* inj) {
  if (s <= 0 || rows % static_cast<std::size_t>(s) != 0) {
    throw std::invalid_argument("encode_rows_strided: rows % stride != 0");
  }
  const std::size_t loops = rows / static_cast<std::size_t>(s);
  MatrixH out(static_cast<std::size_t>(s), cols);
  // Same accumulation structure as the _widened overload, with the l-term
  // rows streamed at half width: axpy_f32_h widens exactly in registers, so
  // the sums (and hence the rounded checksums and fault-hook order) are
  // bit-identical — minus the fp32 staging pass.
  std::vector<float> acc(cols);
  for (std::size_t jc = 0; jc < static_cast<std::size_t>(s); ++jc) {
    for (std::size_t c = 0; c < cols; ++c) acc[c] = 0.0f;
    for (std::size_t l = 0; l < loops; ++l) {
      const float w = weighted ? static_cast<float>(l + 1) : 1.0f;
      numeric::axpy_f32_h(w, x + (jc + l * static_cast<std::size_t>(s)) * cols,
                          acc.data(), cols);
    }
    for (std::size_t c = 0; c < cols; ++c) {
      out(jc, c) = Half(fault::corrupt(inj, fault::Site::kChecksum, acc[c]));
    }
  }
  return out;
}

MatrixH StridedAbft::encode_rows_strided(tensor::MatrixHView X, int s,
                                         bool weighted,
                                         fault::FaultInjector* inj) {
  const std::vector<float> xf = widen_view(X);
  return encode_rows_strided_widened(xf.data(), X.rows, X.cols, s, weighted,
                                     inj);
}

MatrixH StridedAbft::encode_rows_strided(const MatrixH& X, int s, bool weighted,
                                         fault::FaultInjector* inj) {
  return encode_rows_strided(tensor::view(X), s, weighted, inj);
}

MatrixH StridedAbft::encode_cols_strided_widened(const float* xf,
                                                 std::size_t rows,
                                                 std::size_t cols, int s,
                                                 bool weighted,
                                                 fault::FaultInjector* inj) {
  if (s <= 0 || cols % static_cast<std::size_t>(s) != 0) {
    throw std::invalid_argument("encode_cols_strided: cols % stride != 0");
  }
  const std::size_t loops = cols / static_cast<std::size_t>(s);
  MatrixH out(rows, static_cast<std::size_t>(s));
  // Same vector/scalar bit-identity argument as encode_rows: the s outputs
  // of a row accumulate their l-terms in ascending order (each axpy adds one
  // contiguous s-wide group), hooks fire per element in (r, jc) order.
  std::vector<float> acc(static_cast<std::size_t>(s));
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t jc = 0; jc < static_cast<std::size_t>(s); ++jc) {
      acc[jc] = 0.0f;
    }
    for (std::size_t l = 0; l < loops; ++l) {
      const float w = weighted ? static_cast<float>(l + 1) : 1.0f;
      numeric::axpy_f32(w, xf + r * cols + l * static_cast<std::size_t>(s),
                        acc.data(), static_cast<std::size_t>(s));
    }
    for (std::size_t jc = 0; jc < static_cast<std::size_t>(s); ++jc) {
      out(r, jc) = Half(fault::corrupt(inj, fault::Site::kChecksum, acc[jc]));
    }
  }
  return out;
}

MatrixH StridedAbft::encode_cols_strided_h(const Half* x, std::size_t rows,
                                           std::size_t cols, int s,
                                           bool weighted,
                                           fault::FaultInjector* inj) {
  if (s <= 0 || cols % static_cast<std::size_t>(s) != 0) {
    throw std::invalid_argument("encode_cols_strided: cols % stride != 0");
  }
  const std::size_t loops = cols / static_cast<std::size_t>(s);
  MatrixH out(rows, static_cast<std::size_t>(s));
  std::vector<float> acc(static_cast<std::size_t>(s));
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t jc = 0; jc < static_cast<std::size_t>(s); ++jc) {
      acc[jc] = 0.0f;
    }
    for (std::size_t l = 0; l < loops; ++l) {
      const float w = weighted ? static_cast<float>(l + 1) : 1.0f;
      numeric::axpy_f32_h(w, x + r * cols + l * static_cast<std::size_t>(s),
                          acc.data(), static_cast<std::size_t>(s));
    }
    for (std::size_t jc = 0; jc < static_cast<std::size_t>(s); ++jc) {
      out(r, jc) = Half(fault::corrupt(inj, fault::Site::kChecksum, acc[jc]));
    }
  }
  return out;
}

MatrixH StridedAbft::encode_cols_strided(tensor::MatrixHView X, int s,
                                         bool weighted,
                                         fault::FaultInjector* inj) {
  const std::vector<float> xf = widen_view(X);
  return encode_cols_strided_widened(xf.data(), X.rows, X.cols, s, weighted,
                                     inj);
}

MatrixH StridedAbft::encode_cols_strided(const MatrixH& X, int s, bool weighted,
                                         fault::FaultInjector* inj) {
  return encode_cols_strided(tensor::view(X), s, weighted, inj);
}

Report StridedAbft::verify_correct(MatrixF& S, const MatrixF& chk1,
                                   const MatrixF& chk2, int s,
                                   float relative_threshold, std::size_t col0,
                                   std::size_t cols) {
  Report rep;
  const std::size_t R = S.rows();
  if (cols == 0) cols = S.cols() - col0;
  if (cols % static_cast<std::size_t>(s) != 0) {
    throw std::invalid_argument("verify_correct: cols % stride != 0");
  }
  const std::size_t loops = cols / static_cast<std::size_t>(s);

  for (std::size_t i = 0; i < R; ++i) {
    for (std::size_t jc = 0; jc < static_cast<std::size_t>(s); ++jc) {
      float sum1 = 0.0f, sum2 = 0.0f, norm = 0.0f;
      for (std::size_t l = 0; l < loops; ++l) {
        const float v = S(i, col0 + jc + l * s);
        sum1 += v;
        sum2 += static_cast<float>(l + 1) * v;
        norm += std::fabs(v);
      }
      ++rep.checks;

      if (!std::isfinite(sum1)) {
        // A NaN/Inf in the residue class (exponent-field flip): locate it
        // directly and reconstruct the value from the checksum.
        ++rep.flagged;
        std::size_t bad = loops;
        std::size_t bad_count = 0;
        float others = 0.0f;
        for (std::size_t l = 0; l < loops; ++l) {
          const float v = S(i, col0 + jc + l * s);
          if (!std::isfinite(v)) {
            bad = l;
            ++bad_count;
          } else {
            others += v;
          }
        }
        if (bad_count == 1 && std::isfinite(chk1(i, jc))) {
          S(i, col0 + jc + bad * s) = chk1(i, jc) - others;
          ++rep.corrected;
        } else {
          ++rep.uncorrectable;
        }
        continue;
      }

      // Residual relative to the class L1 norm: robust to cancellation in
      // the plain sum and scale-invariant, so the check works equally on
      // raw scores and on normalized (small-magnitude) outputs.  The tiny
      // absolute floor mutes all-zero classes.
      const float d1 = chk1(i, jc) - sum1;
      const float rel = std::fabs(d1) / (norm + 1e-4f);
      if (rel <= relative_threshold || std::fabs(d1) < 1e-6f) continue;
      ++rep.flagged;

      const float d2 = chk2(i, jc) - sum2;
      const float ratio = d2 / d1;  // = l* + 1 for a single payload error
      const float lstar = ratio - 1.0f;
      if (std::isfinite(lstar) && near_integer(lstar, 0.1f) &&
          lstar >= -0.5f && lstar < static_cast<float>(loops) - 0.5f) {
        // Reconstruct from the checksum (exact for arbitrarily large errors,
        // unlike adding the residual, which cancels in fp32).
        const auto lbad = static_cast<std::size_t>(std::lround(lstar));
        float others = 0.0f;
        for (std::size_t l = 0; l < loops; ++l) {
          if (l != lbad) others += S(i, col0 + jc + l * s);
        }
        const float old = S(i, col0 + jc + lbad * s);
        S(i, col0 + jc + lbad * s) = chk1(i, jc) - others;
        // Reconstruction forces the c1 residual to zero, so validate the
        // repair against the *weighted* checksum: a mislocated correction
        // leaves the c2 residual large, and we revert.
        float sum2_new = 0.0f, norm2 = 0.0f;
        for (std::size_t l = 0; l < loops; ++l) {
          const float w = static_cast<float>(l + 1);
          sum2_new += w * S(i, col0 + jc + l * s);
          norm2 += w * std::fabs(S(i, col0 + jc + l * s));
        }
        // Accept only if the c2 residual collapsed to rounding scale: a
        // mislocated repair leaves it comparable to the error magnitude.
        if (std::fabs(chk2(i, jc) - sum2_new) <=
            0.02f * std::fabs(d1) + 2.0f * numeric::kHalfEps * norm2 + 1e-3f) {
          ++rep.corrected;
        } else {
          S(i, col0 + jc + lbad * s) = old;
          ++rep.uncorrectable;
        }
      } else if (std::fabs(d1) > 1e30f) {
        // The corrupted value is so large the weighted sum overflowed (or
        // the ratio lost all precision): the culprit dominates the class by
        // magnitude, so locate it directly and reconstruct.
        std::size_t bad = loops, bad_count = 0;
        for (std::size_t l = 0; l < loops; ++l) {
          if (std::fabs(S(i, col0 + jc + l * s)) > 0.25f * std::fabs(d1)) {
            bad = l;
            ++bad_count;
          }
        }
        if (bad_count == 1) {
          float others = 0.0f;
          for (std::size_t l = 0; l < loops; ++l) {
            if (l != bad) others += S(i, col0 + jc + l * s);
          }
          S(i, col0 + jc + bad * s) = chk1(i, jc) - others;
          ++rep.corrected;
        } else {
          ++rep.uncorrectable;
        }
      } else if (std::isfinite(ratio) && std::fabs(ratio) < 0.5f) {
        // c2 residual is ~0 while c1 residual is not: the flip hit the c1
        // checksum pipeline itself; payload is intact.
        ++rep.checksum_repairs;
      } else {
        // Two or more errors in the same residue class, or a weighted-
        // checksum flip: detectable, not locatable.
        ++rep.uncorrectable;
      }
    }
  }
  return rep;
}

Report StridedAbft::gemm_nt(const MatrixH& A, const MatrixH& B, MatrixF& C,
                            int s, float relative_threshold,
                            fault::FaultInjector* inj, fault::Site gemm_site) {
  const std::size_t M = A.rows(), N = B.rows();
  if (N % kTile != 0) {
    throw std::invalid_argument("StridedAbft::gemm_nt: N must be a multiple "
                                "of the 64-row tile");
  }

  // Payload GEMM with per-output fault hooks.
  sim::gemm_fp16_nt(A, B, C, /*accumulate=*/false);
  if (inj) {
    for (std::size_t i = 0; i < M; ++i) {
      for (std::size_t j = 0; j < N; ++j) {
        C(i, j) = inj->corrupt(gemm_site, C(i, j));
      }
    }
  }

  Report rep;
  const std::size_t tiles = N / kTile;
  for (std::size_t t = 0; t < tiles; ++t) {
    // Slice tile rows of B (columns of C).
    MatrixH Bt(kTile, B.cols());
    for (std::size_t r = 0; r < kTile; ++r) {
      for (std::size_t c = 0; c < B.cols(); ++c) Bt(r, c) = B(t * kTile + r, c);
    }
    const MatrixH bc1 = encode_rows_strided(Bt, s, /*weighted=*/false, inj);
    const MatrixH bc2 = encode_rows_strided(Bt, s, /*weighted=*/true, inj);

    MatrixF chk1(M, static_cast<std::size_t>(s)),
        chk2(M, static_cast<std::size_t>(s));
    sim::gemm_fp16_nt(A, bc1, chk1, /*accumulate=*/false);
    sim::gemm_fp16_nt(A, bc2, chk2, /*accumulate=*/false);
    if (inj) {
      for (std::size_t i = 0; i < M; ++i) {
        for (std::size_t j = 0; j < static_cast<std::size_t>(s); ++j) {
          chk1(i, j) = inj->corrupt(fault::Site::kChecksum, chk1(i, j));
          chk2(i, j) = inj->corrupt(fault::Site::kChecksum, chk2(i, j));
        }
      }
    }
    rep += verify_correct(C, chk1, chk2, s, relative_threshold, t * kTile,
                          kTile);
  }
  return rep;
}

sim::CostBreakdown StridedAbft::costs(double m, double n, double k, int s) {
  sim::CostBreakdown b;
  // CCG: two strided (weighted) sums over the B operand, intra-thread.
  b[sim::Phase::kChecksumGen].fp32_flops = 4.0 * n * k;
  // Checksum GEMM: two s-wide virtual-row blocks per operand tile.
  b[sim::Phase::kGemm].tc_flops = 4.0 * m * s * k * (n / kTile);
  // CCV: two strided sums over the payload plus s compares per row-tile.
  b[sim::Phase::kVerify].fp32_flops = 4.0 * m * n + 2.0 * m * s * (n / kTile);
  return b;
}

}  // namespace ftt::abft
