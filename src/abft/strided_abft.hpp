#pragma once
// Strided ABFT with tensor checksums, Eqs. (12)-(15) and Fig. 7.
//
// The SM80 MMA thread layout puts row elements at stride 8 (the atom's N) and
// column elements at stride 64 (the TiledMMA's M) in the *same thread*, so a
// checksum that sums elements at that stride can be encoded and verified with
// purely intra-thread arithmetic — no warp shuffles.  The checksum of a
// B x d operand block is therefore a *tensor*: s = 8 virtual rows (columns),
// each the (optionally index-weighted) sum of every stride-8 slice.
//
// Compared to the single element checksum, the s-wide tensor checksum keeps
// s independent residue classes per row, so up to s errors per row can be
// located and corrected as long as no two fall in the same class — the
// "up to a factor of 8" coverage gain of Fig. 12 (left).
//
// Column checksums would need stride 64 and a 64 x d layout (8x the memory of
// the row checksum), which is why the paper — and this implementation —
// adopts a row-checksum-only design for attention.

#include "abft/report.hpp"
#include "fault/fault.hpp"
#include "sim/cost.hpp"
#include "tensor/tensor.hpp"

namespace ftt::abft {

struct StridedAbft {
  /// Default checksum width: the MMA atom's N dimension.
  static constexpr int kDefaultStride = 8;
  /// Operand tile height: the TiledMMA's M dimension.  Checksums are encoded
  /// per tile so the c2 weights stay in [1, tile/s] and fit fp16 comfortably.
  static constexpr int kTile = 64;

  /// Collapse the rows of X (R x C, R % s == 0) at stride `s` into an s x C
  /// checksum: out(jc, c) = sum_l w_l * X(jc + s*l, c), w_l = 1 (unweighted)
  /// or l+1 (weighted).  Encoded in fp16 — the checksum rides the same
  /// tensor-core GEMM as the payload (Eq. 14).  The view overload consumes
  /// a KV-cache tile in place (no owning-Matrix materialization).
  static tensor::MatrixH encode_rows_strided(tensor::MatrixHView X, int s,
                                             bool weighted,
                                             fault::FaultInjector* inj);
  static tensor::MatrixH encode_rows_strided(const tensor::MatrixH& X, int s,
                                             bool weighted,
                                             fault::FaultInjector* inj);
  /// Encode from a pre-widened dense fp32 image of the fp16 operand (exact
  /// values, so bit-identical to the fp16 overloads): the decode hot path
  /// already holds each tile's widened image and must not re-convert it
  /// four times to derive the four encodings.
  static tensor::MatrixH encode_rows_strided_widened(const float* xf,
                                                     std::size_t rows,
                                                     std::size_t cols, int s,
                                                     bool weighted,
                                                     fault::FaultInjector* inj);
  /// Encode directly from the stored fp16 payload (dense row-major Half):
  /// the accumulation streams the Half rows through axpy_f32_h, whose
  /// in-register widen is exact and whose l-order matches the overloads
  /// above, so the result is bit-identical to encoding a pre-widened image
  /// — with no fp32 staging pass (the single-pass seal path).
  static tensor::MatrixH encode_rows_strided_h(const numeric::Half* x,
                                               std::size_t rows,
                                               std::size_t cols, int s,
                                               bool weighted,
                                               fault::FaultInjector* inj);

  /// Collapse the columns of X (R x C, C % s == 0) at stride `s` into an
  /// R x s checksum: out(r, jc) = sum_l w_l * X(r, jc + s*l).  Used for the
  /// V operand of GEMM II.
  static tensor::MatrixH encode_cols_strided(tensor::MatrixHView X, int s,
                                             bool weighted,
                                             fault::FaultInjector* inj);
  static tensor::MatrixH encode_cols_strided(const tensor::MatrixH& X, int s,
                                             bool weighted,
                                             fault::FaultInjector* inj);
  static tensor::MatrixH encode_cols_strided_widened(const float* xf,
                                                     std::size_t rows,
                                                     std::size_t cols, int s,
                                                     bool weighted,
                                                     fault::FaultInjector* inj);
  static tensor::MatrixH encode_cols_strided_h(const numeric::Half* x,
                                               std::size_t rows,
                                               std::size_t cols, int s,
                                               bool weighted,
                                               fault::FaultInjector* inj);

  /// Verify an R x C payload S against its two strided checksums chk1/chk2
  /// (each R x s): for every (row, residue class jc) compare chk1 with the
  /// recomputed strided sum; locate the column offset l* from the c2/c1
  /// residual ratio and correct in place.  `col0` offsets the check into a
  /// wider matrix (for per-tile verification of a big GEMM).
  static Report verify_correct(tensor::MatrixF& S, const tensor::MatrixF& chk1,
                               const tensor::MatrixF& chk2, int s,
                               float relative_threshold, std::size_t col0 = 0,
                               std::size_t cols = 0);

  /// Fully protected C = A * B^T (A: M x K fp16, B: N x K fp16, C: M x N).
  /// B's rows are tiled by kTile; each tile contributes an s-wide tensor
  /// checksum verified independently.  This is the building block for EFTA's
  /// GEMM I and for strided-ABFT feed-forward layers.
  static Report gemm_nt(const tensor::MatrixH& A, const tensor::MatrixH& B,
                        tensor::MatrixF& C, int s, float relative_threshold,
                        fault::FaultInjector* inj,
                        fault::Site gemm_site = fault::Site::kGemm1);

  /// Protection overhead (CCG + checksum GEMM + CCV) for one M x N x K GEMM
  /// with stride s.  No shuffle term: encoding/verification is intra-thread.
  static sim::CostBreakdown costs(double m, double n, double k, int s);
};

}  // namespace ftt::abft
