#include "abft/int8_checksums.hpp"

namespace ftt::abft {

namespace {

// One class's exact verify/repair.  `stride` is the element distance between
// consecutive loop members of the class inside X; `base` its first element.
void check_class(std::int8_t* X, std::size_t base, std::size_t stride,
                 std::size_t loops, std::int32_t& c1, std::int32_t& c2,
                 I8VerifyReport& rep) noexcept {
  std::int32_t sum1 = 0, sum2 = 0;
  for (std::size_t l = 0; l < loops; ++l) {
    const std::int32_t v = X[base + l * stride];
    sum1 += v;
    sum2 += static_cast<std::int32_t>(l + 1) * v;
  }
  ++rep.classes;
  const std::int32_t d1 = c1 - sum1;
  const std::int32_t d2 = c2 - sum2;
  if (d1 == 0 && d2 == 0) return;
  if (d1 == 0) {  // payload intact (d1 exact), so the weighted sum flipped
    c2 = sum2;
    ++rep.checksum_corrected;
    return;
  }
  if (d2 == 0) {  // symmetric: the unweighted checksum flipped
    c1 = sum1;
    ++rep.checksum_corrected;
    return;
  }
  // Single payload fault at loop l*: d2 == (l* + 1) * d1, exactly.
  if (d2 % d1 == 0) {
    const std::int32_t q = d2 / d1;
    if (q >= 1 && q <= static_cast<std::int32_t>(loops)) {
      const std::size_t idx = base + static_cast<std::size_t>(q - 1) * stride;
      const std::int32_t fixed = static_cast<std::int32_t>(X[idx]) + d1;
      if (fixed >= -127 && fixed <= 127) {
        X[idx] = static_cast<std::int8_t>(fixed);
        ++rep.payload_corrected;
        return;
      }
    }
  }
  rep.unrepairable = true;  // >= 2 faults in this class
}

}  // namespace

void encode_rows_i8(const std::int8_t* X, std::size_t rows, std::size_t cols,
                    int s, bool weighted, std::int32_t* out) noexcept {
  const auto su = static_cast<std::size_t>(s);
  const std::size_t loops = rows / su;
  for (std::size_t jc = 0; jc < su; ++jc) {
    std::int32_t* acc = out + jc * cols;
    for (std::size_t c = 0; c < cols; ++c) acc[c] = 0;
    for (std::size_t l = 0; l < loops; ++l) {
      const std::int32_t w =
          weighted ? static_cast<std::int32_t>(l + 1) : 1;
      const std::int8_t* row = X + (jc + l * su) * cols;
      for (std::size_t c = 0; c < cols; ++c) {
        acc[c] += w * static_cast<std::int32_t>(row[c]);
      }
    }
  }
}

void encode_cols_i8(const std::int8_t* X, std::size_t rows, std::size_t cols,
                    int s, bool weighted, std::int32_t* out) noexcept {
  const auto su = static_cast<std::size_t>(s);
  const std::size_t loops = cols / su;
  for (std::size_t r = 0; r < rows; ++r) {
    std::int32_t* acc = out + r * su;
    for (std::size_t jc = 0; jc < su; ++jc) acc[jc] = 0;
    const std::int8_t* row = X + r * cols;
    for (std::size_t l = 0; l < loops; ++l) {
      const std::int32_t w =
          weighted ? static_cast<std::int32_t>(l + 1) : 1;
      for (std::size_t jc = 0; jc < su; ++jc) {
        acc[jc] += w * static_cast<std::int32_t>(row[l * su + jc]);
      }
    }
  }
}

I8VerifyReport verify_correct_rows_i8(std::int8_t* X, std::size_t rows,
                                      std::size_t cols, int s,
                                      std::int32_t* c1,
                                      std::int32_t* c2) noexcept {
  I8VerifyReport rep;
  const auto su = static_cast<std::size_t>(s);
  const std::size_t loops = rows / su;
  for (std::size_t jc = 0; jc < su; ++jc) {
    for (std::size_t c = 0; c < cols; ++c) {
      check_class(X, jc * cols + c, su * cols, loops, c1[jc * cols + c],
                  c2[jc * cols + c], rep);
    }
  }
  return rep;
}

I8VerifyReport verify_correct_cols_i8(std::int8_t* X, std::size_t rows,
                                      std::size_t cols, int s,
                                      std::int32_t* c1,
                                      std::int32_t* c2) noexcept {
  I8VerifyReport rep;
  const auto su = static_cast<std::size_t>(s);
  const std::size_t loops = cols / su;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t jc = 0; jc < su; ++jc) {
      check_class(X, r * cols + jc, su, loops, c1[r * su + jc],
                  c2[r * su + jc], rep);
    }
  }
  return rep;
}

}  // namespace ftt::abft
