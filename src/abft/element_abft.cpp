#include "abft/element_abft.hpp"

#include <cmath>

#include "sim/mma.hpp"

namespace ftt::abft {

using tensor::MatrixF;
using tensor::MatrixH;

namespace {
constexpr float kRelEps = 1e-6f;

bool near_integer(float x, float tol = 0.02f) {
  return std::fabs(x - std::round(x)) < tol;
}
}  // namespace

MatrixF ElementAbft::encode_rows(const MatrixF& A) {
  const std::size_t M = A.rows(), K = A.cols();
  MatrixF out(M + 2, K);
  for (std::size_t i = 0; i < M; ++i) {
    for (std::size_t k = 0; k < K; ++k) out(i, k) = A(i, k);
  }
  for (std::size_t k = 0; k < K; ++k) {
    float s1 = 0.0f, s2 = 0.0f;
    for (std::size_t i = 0; i < M; ++i) {
      s1 += A(i, k);
      s2 += static_cast<float>(i + 1) * A(i, k);
    }
    out(M, k) = s1;
    out(M + 1, k) = s2;
  }
  return out;
}

MatrixF ElementAbft::encode_cols(const MatrixF& B) {
  const std::size_t K = B.rows(), N = B.cols();
  MatrixF out(K, N + 2);
  for (std::size_t k = 0; k < K; ++k) {
    float s1 = 0.0f, s2 = 0.0f;
    for (std::size_t j = 0; j < N; ++j) {
      out(k, j) = B(k, j);
      s1 += B(k, j);
      s2 += static_cast<float>(j + 1) * B(k, j);
    }
    out(k, N) = s1;
    out(k, N + 1) = s2;
  }
  return out;
}

Report ElementAbft::gemm_nt(const MatrixH& A, const MatrixH& B, MatrixF& C,
                            float relative_threshold,
                            fault::FaultInjector* inj, fault::Site gemm_site) {
  const std::size_t M = A.rows(), K = A.cols(), N = B.rows();

  // CCG: the two weighted column-sum rows of A, encoded in fp16 because they
  // ride through the same tensor-core GEMM as the payload.  On real hardware
  // this sum crosses thread boundaries (Fig. 6) — costed as shuffles.
  MatrixH a_chk(2, K);
  for (std::size_t k = 0; k < K; ++k) {
    float s1 = 0.0f, s2 = 0.0f;
    for (std::size_t i = 0; i < M; ++i) {
      const float v = A(i, k).to_float();
      s1 += v;
      s2 += static_cast<float>(i + 1) * v;
    }
    a_chk(0, k) = numeric::Half(fault::corrupt(inj, fault::Site::kChecksum, s1));
    a_chk(1, k) = numeric::Half(fault::corrupt(inj, fault::Site::kChecksum, s2));
  }

  // Payload GEMM with per-output fault hooks.
  sim::gemm_fp16_nt(A, B, C, /*accumulate=*/false);
  if (inj) {
    for (std::size_t i = 0; i < M; ++i) {
      for (std::size_t j = 0; j < N; ++j) {
        C(i, j) = inj->corrupt(gemm_site, C(i, j));
      }
    }
  }

  // Checksum GEMM: 2 x N column checksums of C.
  MatrixF col_chk(2, N);
  sim::gemm_fp16_nt(a_chk, B, col_chk, /*accumulate=*/false);
  if (inj) {
    for (std::size_t r = 0; r < 2; ++r) {
      for (std::size_t j = 0; j < N; ++j) {
        col_chk(r, j) = inj->corrupt(fault::Site::kChecksum, col_chk(r, j));
      }
    }
  }

  return verify_correct(C, col_chk, relative_threshold);
}

Report ElementAbft::verify_correct(MatrixF& C, const MatrixF& col_checksums,
                                   float relative_threshold) {
  Report rep;
  const std::size_t M = C.rows(), N = C.cols();
  for (std::size_t j = 0; j < N; ++j) {
    float sum1 = 0.0f, sum2 = 0.0f, norm = 0.0f;
    for (std::size_t i = 0; i < M; ++i) {
      sum1 += C(i, j);
      sum2 += static_cast<float>(i + 1) * C(i, j);
      norm += std::fabs(C(i, j));
    }
    ++rep.checks;

    if (!std::isfinite(sum1)) {
      // A NaN/Inf landed in the payload (exponent-field flip): locate it by
      // scanning the column and reconstruct from the checksum directly.
      ++rep.flagged;
      std::size_t bad = M;
      std::size_t bad_count = 0;
      float others = 0.0f;
      for (std::size_t i = 0; i < M; ++i) {
        if (!std::isfinite(C(i, j))) {
          bad = i;
          ++bad_count;
        } else {
          others += C(i, j);
        }
      }
      if (bad_count == 1 && std::isfinite(col_checksums(0, j))) {
        C(bad, j) = col_checksums(0, j) - others;
        ++rep.corrected;
      } else {
        ++rep.uncorrectable;
      }
      continue;
    }

    // Residual relative to the column's L1 norm: stable under cancellation
    // in the plain sum (a near-zero sum would otherwise make the error-free
    // rounding residual look arbitrarily large).
    const float d1 = col_checksums(0, j) - sum1;
    const float rel = std::fabs(d1) / (norm + 1e-4f);
    if (rel <= relative_threshold || std::fabs(d1) < 1e-6f) continue;
    ++rep.flagged;

    const float d2 = col_checksums(1, j) - sum2;
    const float ratio = d2 / d1;
    const float row = ratio - 1.0f;
    if (std::isfinite(ratio) && near_integer(row, 0.1f) && row >= -0.5f &&
        row < static_cast<float>(M) - 0.5f) {
      // Reconstruct rather than add the residual: exact even when the
      // corrupted value dwarfs the true one (additive repair would lose the
      // true value to fp32 cancellation).
      const auto bi = static_cast<std::size_t>(std::lround(row));
      float others = 0.0f;
      for (std::size_t i = 0; i < M; ++i) {
        if (i != bi) others += C(i, j);
      }
      const float old = C(bi, j);
      C(bi, j) = col_checksums(0, j) - others;
      // Validate against the weighted checksum; revert a mislocation.
      float sum2_new = 0.0f, norm2 = 0.0f;
      for (std::size_t i = 0; i < M; ++i) {
        const float w = static_cast<float>(i + 1);
        sum2_new += w * C(i, j);
        norm2 += w * std::fabs(C(i, j));
      }
      // Accept only if the c2 residual collapsed to rounding scale: a
      // mislocated repair leaves it comparable to the error magnitude.
      if (std::fabs(col_checksums(1, j) - sum2_new) <=
          0.02f * std::fabs(d1) + 2.0f * numeric::kHalfEps * norm2 + 1e-3f) {
        ++rep.corrected;
      } else {
        C(bi, j) = old;
        ++rep.uncorrectable;
      }
    } else if (std::fabs(d1) > 1e30f) {
      // Weighted sum overflowed: the culprit dominates the column — locate
      // by magnitude and reconstruct.
      std::size_t bad = M, bad_count = 0;
      for (std::size_t i = 0; i < M; ++i) {
        if (std::fabs(C(i, j)) > 0.25f * std::fabs(d1)) {
          bad = i;
          ++bad_count;
        }
      }
      if (bad_count == 1) {
        float others = 0.0f;
        for (std::size_t i = 0; i < M; ++i) {
          if (i != bad) others += C(i, j);
        }
        C(bad, j) = col_checksums(0, j) - others;
        ++rep.corrected;
      } else {
        ++rep.uncorrectable;
      }
    } else if (std::isfinite(ratio) && near_integer(ratio) &&
               std::lround(ratio) == 0) {
      // d2 == 0 with d1 != 0: the flip hit the c1 checksum itself.
      ++rep.checksum_repairs;
    } else {
      // Multiple errors in one column (or a checksum-path flip): the single
      // element checksum cannot locate them.
      ++rep.uncorrectable;
    }
  }
  return rep;
}

sim::CostBreakdown ElementAbft::costs(double m, double n, double k) {
  sim::CostBreakdown b;
  // CCG: both operand encodings (2 weighted sums each), with cross-thread
  // reduction traffic on tensor-core data layouts.
  b[sim::Phase::kChecksumGen].fp32_flops = 4.0 * m * k + 4.0 * n * k;
  b[sim::Phase::kChecksumGen].shuffles = 2.0 * m * k + 2.0 * n * k;
  // Extra GEMM work for checksum rows/columns.
  b[sim::Phase::kGemm].tc_flops = 4.0 * n * k + 4.0 * m * k;
  // CCV: recompute both weighted sums over the payload and compare.
  b[sim::Phase::kVerify].fp32_flops = 4.0 * m * n + 2.0 * (m + n);
  b[sim::Phase::kVerify].shuffles = 2.0 * m * n;
  return b;
}

}  // namespace ftt::abft
