#pragma once
// Shared outcome record for every fault-tolerance verification pass.

#include <cstddef>

namespace ftt::abft {

struct Report {
  std::size_t checks = 0;             ///< checksum comparisons performed
  std::size_t flagged = 0;            ///< comparisons exceeding the threshold
  std::size_t corrected = 0;          ///< elements repaired via checksums
  std::size_t recomputed = 0;         ///< repairs that fell back to recompute
  std::size_t checksum_repairs = 0;   ///< flips located in the checksum path
  std::size_t uncorrectable = 0;      ///< flagged but could not be located
  std::size_t range_violations = 0;   ///< NVR range-check failures (Case 3)

  [[nodiscard]] bool clean() const noexcept { return flagged == 0; }
  [[nodiscard]] bool detected() const noexcept { return flagged > 0; }
  /// Flags no repair accounted for (saturating), the linear-path analogue
  /// of attention::FtReport::uncorrected().
  [[nodiscard]] std::size_t uncorrected() const noexcept {
    const std::size_t c = corrected + recomputed + checksum_repairs;
    return flagged > c ? flagged - c : 0;
  }

  Report& operator+=(const Report& o) noexcept {
    checks += o.checks;
    flagged += o.flagged;
    corrected += o.corrected;
    recomputed += o.recomputed;
    checksum_repairs += o.checksum_repairs;
    uncorrectable += o.uncorrectable;
    range_violations += o.range_violations;
    return *this;
  }
  friend Report operator+(Report a, const Report& b) noexcept { return a += b; }
};

}  // namespace ftt::abft
