#pragma once
// Classic (element-checksum) ABFT for GEMM, Eqs. (8)-(9) of the paper.
//
// A (M x K) is encoded with two extra *rows* — the plain column sum c1·A and
// the index-weighted sum c2·A with c2 = [1, 2, ..., M] — and B (K x N) with
// two extra *columns* B·r1, B·r2.  The product then carries checksum rows
// C_r1, C_r2 and columns C_c1, C_c2; recomputing the sums from C and
// comparing locates a single corrupted element at
//   row i = (C_c2'[j] - C_c2[j]) / (C_c1'[j] - C_c1[j]) - 1,  column j,
// which is corrected by adding the c1 residual.
//
// This is the decoupled baseline's protection and the "traditional ABFT" bar
// in Fig. 11.  On tensor cores its column sums cross thread boundaries
// (Fig. 6), which the cost model charges as warp shuffles — the overhead the
// strided scheme eliminates.  Its single checksum column per weight also means
// two errors in one column are detectable but not locatable (Fig. 12 left).

#include "abft/report.hpp"
#include "fault/fault.hpp"
#include "sim/cost.hpp"
#include "tensor/tensor.hpp"

namespace ftt::abft {

/// Detection threshold semantics shared by all schemes: a comparison of
/// checksum `c` against recomputed sum `s` is flagged when
/// |c - s| / (|s| + 1e-6) > relative_threshold.
struct ElementAbft {
  /// Append the two weighted row checksums (Eq. 8): result is (M+2) x K.
  static tensor::MatrixF encode_rows(const tensor::MatrixF& A);
  /// Append the two weighted column checksums (Eq. 9): result is K x (N+2).
  static tensor::MatrixF encode_cols(const tensor::MatrixF& B);

  /// Protected C = A * B^T over fp16 operands (the QK^T layout).
  /// A: M x K, B: N x K, C out: M x N.  Checksums are encoded in fp16 (they
  /// ride through the same tensor-core GEMM), verification sums in fp32.
  /// `gemm_site` selects which fault-injection site the payload MACs report
  /// to (kGemm1 for QK^T, kGemm2 for PV, kLinear for feed-forward).
  static Report gemm_nt(const tensor::MatrixH& A, const tensor::MatrixH& B,
                        tensor::MatrixF& C, float relative_threshold,
                        fault::FaultInjector* inj,
                        fault::Site gemm_site = fault::Site::kGemm1);

  /// Verify + correct an M x N payload given its c1/c2 column-checksum rows
  /// (2 x N, computed through the encoded GEMM).  Exposed separately so tests
  /// and the coverage study can drive it with arbitrary corruption.
  static Report verify_correct(tensor::MatrixF& C,
                               const tensor::MatrixF& col_checksums,
                               float relative_threshold);

  /// Closed-form cost of one protected M x N x K GEMM (per Fig. 3 phases):
  /// CCG (with cross-thread shuffles), checksum GEMM columns, CCV.
  static sim::CostBreakdown costs(double m, double n, double k);
};

}  // namespace ftt::abft
