#!/usr/bin/env bash
# Tier-1 verification, exactly as the CI tier1 job runs it — one script so
# local runs and CI cannot drift: configure (warnings-as-errors), build,
# ctest, then smoke-run the serving demo and the decode-throughput bench.
#
# Knobs (all optional, same names CI uses):
#   BUILD_DIR   - build tree (default: build-tier1)
#   BUILD_TYPE  - CMake build type (default: Release)
#   FTT_SIMD    - ON (default) or OFF: compile the F16C/AVX2 fp16 kernels
#                 (the CI matrix runs one OFF leg so the scalar fallback
#                 stays tested)
#   OMP_MATRIX  - space-separated OpenMP thread counts (default: "2"); the
#                 thread-sensitive suites (sharding, router, OMP invariance)
#                 are re-run once per count, pinning bit-reproducibility
#                 against whatever team size the host would pick
#   CC/CXX      - compiler (default: toolchain default)
#   CMAKE_CXX_COMPILER_LAUNCHER - e.g. ccache (forwarded when set)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-tier1}
BUILD_TYPE=${BUILD_TYPE:-Release}
FTT_SIMD=${FTT_SIMD:-ON}
OMP_MATRIX=${OMP_MATRIX:-2}

CONFIGURE_ARGS=(-B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE="$BUILD_TYPE"
                -DFTT_WERROR=ON -DFTT_SIMD="$FTT_SIMD")
if command -v ninja > /dev/null 2>&1; then
  CONFIGURE_ARGS+=(-G Ninja)
fi
if [[ -n "${CMAKE_CXX_COMPILER_LAUNCHER:-}" ]]; then
  CONFIGURE_ARGS+=(-DCMAKE_CXX_COMPILER_LAUNCHER="$CMAKE_CXX_COMPILER_LAUNCHER")
fi

echo "== configure ($BUILD_TYPE, -Wall -Wextra -Werror, FTT_SIMD=$FTT_SIMD) =="
cmake "${CONFIGURE_ARGS[@]}"

echo "== build =="
cmake --build "$BUILD_DIR" -j "$(nproc)"

echo "== ctest =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# Thread-count invariance: the parallel-serving suites must produce
# bit-identical results whatever OpenMP team size the environment forces.
for omp in $OMP_MATRIX; do
  echo "== ctest (OMP_NUM_THREADS=$omp: sharding/router/invariance) =="
  OMP_NUM_THREADS="$omp" ctest --test-dir "$BUILD_DIR" --output-on-failure \
    -R 'test_omp_invariance|test_sharding|test_router'
done

# Int8-KV leg: re-run the serving-stack suites with the process-wide
# sealed-tile default flipped to the quantized format (FTT_KV_QUANT=1 →
# serve::default_tile_format() == kI8).  Engines, paged caches and the
# recovery ladder then exercise the int8 tile format end to end — seal-time
# quantization, exact integer scrubbing, fused dequantizing GEMMs — so both
# formats stay green in the same matrix.  Suites that pin format-explicit
# behavior pass their formats explicitly and are unaffected by the default.
echo "== ctest (FTT_KV_QUANT=1: serve/tile-pool/recovery/int8 suites) =="
FTT_KV_QUANT=1 ctest --test-dir "$BUILD_DIR" --output-on-failure \
  -R 'test_serve|test_tile_pool|test_recovery|test_int8_quant|test_spec|test_scheduler'

# Chaos soak: the recovery ladder's randomized acceptance sweep (seeded,
# seconds-scale).  FTT_CHAOS_SOAK=1 un-skips the heavier soak test on top
# of the chaos test the plain ctest pass already ran: more seeds, longer
# fleets, quarantine armed on the sharded topologies.  Every run the
# ladder marks fully recovered must end bitwise-equal to its clean twin.
echo "== chaos soak (FTT_CHAOS_SOAK=1: test_recovery chaos sweep) =="
FTT_CHAOS_SOAK=1 "$BUILD_DIR"/test_recovery --gtest_filter='Recovery.Chaos*'

echo "== smoke: serving demo + decode throughput bench =="
"$BUILD_DIR"/serving
"$BUILD_DIR"/bench_serve_throughput

echo "tier1 OK"
