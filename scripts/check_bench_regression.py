#!/usr/bin/env python3
"""Merge serving-bench JSON fragments and gate on throughput regressions.

Usage:
  check_bench_regression.py --baseline bench/BENCH_baseline.json \
      --out BENCH_serve.json fragment1.json [fragment2.json ...]

Each fragment is the --json output of one bench binary
(bench_serve_throughput, bench_scheduler).  Fragments are merged into one
BENCH_serve.json: structured sections are unioned, and every fragment's flat
"gauges" object is folded into a single top-level "gauges" dict — the only
part the gate reads.

The baseline file declares conservative higher-is-better floors:

  {
    "threshold": 0.25,
    "gauges": { "<gauge name>": <baseline value>, ... },
    "ceilings": { "<gauge name>": <hard maximum>, ... },
    "informational": { "<gauge name>": <reference value>, ... },
    "comment": "..."
  }

A "gauges" entry regresses when measured < baseline * (1 - threshold).
Absolute tokens/s baselines are deliberately set well below a healthy run
(CI runners vary); the dimensionless speedup gauges are the tighter
tripwires.  A "ceilings" entry is the lower-is-better dual — it fails when
measured > ceiling, with NO threshold slack: ceilings gate deterministic
quantities (bytes ratios fixed by a memory layout), so any excursion is a
real layout change, not runner noise.  Exit code 1 on any failure, so the
CI perf job fails loudly.
A fragment that contributes no gauges at all fails the same way — a bench
binary that silently stopped emitting its gauges must not read as "nothing
regressed".

Gauge *disappearance* is tiered like the values: a gated gauge (floor or
ceiling) missing from the merged fragments FAILS (a bench that quietly
stopped emitting its tripwire must not read as "nothing regressed"), while
a missing informational gauge only WARNS — informational gauges are
trajectory telemetry, not gates, so losing one should be visible in the log
and the step summary without turning hardware-dependent reporting into a
red build.

"informational" gauges are never value-gated: the measured value is only
reported.  This is the tier for gauges whose value is honest but
meaningless on CI hardware — e.g. the shard/replica parallel speedups,
which sit near or below 1.0 on the single-core runners and would be pure
noise behind a floor.

--history FILE additionally appends this run's merged gauges + git SHA to a
rolling JSON array (bench/BENCH_history.json in CI), so the perf trajectory
across pushes is inspectable from the uploaded artifact instead of only the
latest snapshot.  Entries are deduplicated by {sha, gauge-name set}: a
re-run of the same commit with the same bench suite replaces its earlier
entry instead of stacking duplicates (re-runs were inflating the history
and crowding real trajectory points out of the rolling window).  A run with
a *different* gauge set for the same sha — e.g. a matrix leg that runs a
subset of the benches — is kept as its own entry.

When GITHUB_STEP_SUMMARY is set (always, inside a GitHub Actions step), a
markdown gauge table is appended to it so the perf job's results are
readable straight from the run page, without downloading the artifact.  The
table is split into a *gated* section (floors and ceilings — the rows that
can fail the job) and an *informational* section (trajectory telemetry plus
untracked gauges), so a red build points at the short list that matters.

Stdlib only — no pip installs.
"""

import argparse
import datetime
import json
import os
import subprocess
import sys

# Rolling cap on --history entries: enough for every push of a long PR
# stack, small enough that the artifact stays a quick download.
HISTORY_MAX_ENTRIES = 500


def git_sha():
    """Commit being measured: $GITHUB_SHA in Actions, else git, else null."""
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        out = subprocess.run(["git", "rev-parse", "HEAD"],
                             capture_output=True, text=True, check=True)
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return None


def append_history(path, gauges):
    """Append one {sha, utc, gauges} entry to the rolling history array.

    Deduplicated by {sha, gauge-name set}: a re-run of the same commit with
    the same bench suite replaces its earlier entry (last write wins) rather
    than appending a duplicate that crowds the rolling window.
    """
    history = []
    if os.path.exists(path):
        try:
            with open(path) as f:
                history = json.load(f)
            if not isinstance(history, list):
                print(f"warning: {path} is not a JSON array; starting fresh",
                      file=sys.stderr)
                history = []
        except (OSError, json.JSONDecodeError) as err:
            print(f"warning: unreadable history {path} ({err}); "
                  f"starting fresh", file=sys.stderr)
            history = []
    sha = git_sha()
    gauge_set = frozenset(gauges)
    dropped = 0
    if sha is not None:
        kept = []
        for entry in history:
            if (isinstance(entry, dict) and entry.get("sha") == sha
                    and frozenset(entry.get("gauges", {})) == gauge_set):
                dropped += 1
                continue
            kept.append(entry)
        history = kept
    history.append({
        "sha": sha,
        "utc": datetime.datetime.now(datetime.timezone.utc)
            .strftime("%Y-%m-%dT%H:%M:%SZ"),
        "gauges": gauges,
    })
    history = history[-HISTORY_MAX_ENTRIES:]
    with open(path, "w") as f:
        json.dump(history, f, indent=2, sort_keys=True)
        f.write("\n")
    note = f", replaced {dropped} duplicate(s)" if dropped else ""
    print(f"appended run to {path} ({len(history)} entries{note})")


def format_row(name, measured, reference, bound, verdict):
    icon = ("✅" if verdict == "OK" else "ℹ️" if verdict == "INFO"
            else "⚠️" if verdict == "MISSING (warn)" else "❌")
    shown = "—" if measured is None else f"{measured:.3f}"
    ref_s = "—" if reference is None else f"{reference:.3f}"
    bound_s = "—" if bound is None else f"{bound:.3f}"
    return (f"| `{name}` | {shown} | {ref_s} | {bound_s} | "
            f"{icon} {verdict} |")


def write_step_summary(gated_rows, info_rows, extra_gauges, threshold):
    """Append the gauge tables to the Actions step summary, if available.

    Two sections: the gated rows (the ones that can fail the job) first,
    then the informational/untracked telemetry.
    """
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    lines = [
        "## Serving bench gauges",
        "",
        "### Gated",
        "",
        f"Floors fail at measured < baseline × {1.0 - threshold:.2f} "
        f"(threshold {threshold:.0%}); ceilings fail at measured > ceiling "
        f"(no slack).",
        "",
        "| gauge | measured | baseline | floor / ceiling | verdict |",
        "|---|---:|---:|---:|---|",
    ]
    for row in gated_rows:
        lines.append(format_row(*row))
    lines += [
        "",
        "### Informational",
        "",
        "Trajectory telemetry — never value-gated.",
        "",
        "| gauge | measured | reference | bound | verdict |",
        "|---|---:|---:|---:|---|",
    ]
    for row in info_rows:
        lines.append(format_row(*row))
    for name, value in sorted(extra_gauges.items()):
        lines.append(f"| `{name}` | {value:.3f} | — | — | untracked |")
    with open(path, "a") as f:
        f.write("\n".join(lines) + "\n")


def merge(fragments):
    merged, gauges = {}, {}
    for path in fragments:
        with open(path) as f:
            doc = json.load(f)
        if not doc.get("gauges"):
            # Every bench binary gates through at least one gauge; an empty
            # or absent gauges object means it silently stopped reporting,
            # which must fail the gate rather than pass it vacuously.
            sys.exit(f"error: fragment {path} contributes no gauges")
        for key, val in doc.items():
            if key == "gauges":
                overlap = set(val) & set(gauges)
                if overlap:
                    sys.exit(f"error: duplicate gauges across fragments: "
                             f"{sorted(overlap)}")
                gauges.update(val)
            else:
                if key in merged:
                    sys.exit(f"error: duplicate section '{key}' in {path}")
                merged[key] = val
    merged["gauges"] = gauges
    return merged


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--out", required=True)
    ap.add_argument("--threshold", type=float, default=None,
                    help="override the baseline file's threshold")
    ap.add_argument("--history", default=None,
                    help="rolling JSON array to append this run's gauges "
                         "+ git SHA to (perf trajectory across pushes)")
    ap.add_argument("fragments", nargs="+")
    args = ap.parse_args()

    merged = merge(args.fragments)
    with open(args.out, "w") as f:
        json.dump(merged, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.out} with {len(merged['gauges'])} gauges")

    with open(args.baseline) as f:
        baseline = json.load(f)
    threshold = args.threshold if args.threshold is not None \
        else float(baseline.get("threshold", 0.25))

    failures = []
    gated_rows = []  # (name, measured|None, reference, bound|None, verdict)
    for name, floor in sorted(baseline.get("gauges", {}).items()):
        measured = merged["gauges"].get(name)
        limit = floor * (1.0 - threshold)
        if measured is None:
            failures.append(f"{name}: missing from bench output")
            gated_rows.append((name, None, floor, limit, "MISSING"))
            continue
        verdict = "OK" if measured >= limit else "REGRESSION"
        gated_rows.append((name, measured, floor, limit, verdict))
        print(f"  {verdict:10s} {name}: measured {measured:.3f} vs "
              f"baseline {floor:.3f} (floor {limit:.3f})")
        if measured < limit:
            failures.append(
                f"{name}: {measured:.3f} < {limit:.3f} "
                f"(baseline {floor:.3f}, threshold {threshold:.0%})")
    # Ceilings: lower-is-better duals with no threshold slack (they gate
    # deterministic layout quantities, so noise margins don't apply).
    for name, ceiling in sorted(baseline.get("ceilings", {}).items()):
        measured = merged["gauges"].get(name)
        if measured is None:
            failures.append(f"{name}: missing from bench output")
            gated_rows.append((name, None, ceiling, ceiling, "MISSING"))
            continue
        verdict = "OK" if measured <= ceiling else "REGRESSION"
        gated_rows.append((name, measured, ceiling, ceiling, verdict))
        print(f"  {verdict:10s} {name}: measured {measured:.3f} vs "
              f"ceiling {ceiling:.3f} (lower is better)")
        if measured > ceiling:
            failures.append(
                f"{name}: {measured:.3f} > ceiling {ceiling:.3f}")
    # Informational tier: value is only reported; a disappeared gauge WARNS
    # (visible in the log and step summary) without failing the gate — the
    # fail-on-disappearance rule is reserved for the gated tiers above.
    warnings = []
    info_rows = []
    for name, reference in sorted(baseline.get("informational", {}).items()):
        measured = merged["gauges"].get(name)
        if measured is None:
            warnings.append(f"{name}: missing from bench output "
                            f"(informational — warning only)")
            info_rows.append((name, None, reference, None, "MISSING (warn)"))
            continue
        info_rows.append((name, measured, reference, None, "INFO"))
        print(f"  {'INFO':10s} {name}: measured {measured:.3f} "
              f"(reference {reference:.3f}, not gated)")

    tracked = {name for name, *_ in gated_rows}
    tracked |= {name for name, *_ in info_rows}
    extra = {name: value for name, value in merged["gauges"].items()
             if name not in tracked and isinstance(value, (int, float))
             and not isinstance(value, bool)}
    write_step_summary(gated_rows, info_rows, extra, threshold)

    if args.history:
        append_history(args.history, merged["gauges"])

    if warnings:
        print("\nthroughput gate warnings:", file=sys.stderr)
        for msg in warnings:
            print(f"  - {msg}", file=sys.stderr)

    if failures:
        print("\nthroughput regression gate FAILED:", file=sys.stderr)
        for msg in failures:
            print(f"  - {msg}", file=sys.stderr)
        return 1
    print("throughput regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
