#!/usr/bin/env python3
"""Merge serving-bench JSON fragments and gate on throughput regressions.

Usage:
  check_bench_regression.py --baseline bench/BENCH_baseline.json \
      --out BENCH_serve.json fragment1.json [fragment2.json ...]

Each fragment is the --json output of one bench binary
(bench_serve_throughput, bench_scheduler).  Fragments are merged into one
BENCH_serve.json: structured sections are unioned, and every fragment's flat
"gauges" object is folded into a single top-level "gauges" dict — the only
part the gate reads.

The baseline file declares conservative higher-is-better floors:

  {
    "threshold": 0.25,
    "gauges": { "<gauge name>": <baseline value>, ... },
    "informational": { "<gauge name>": <reference value>, ... },
    "comment": "..."
  }

A gauge regresses when measured < baseline * (1 - threshold).  Absolute
tokens/s baselines are deliberately set well below a healthy run (CI runners
vary); the dimensionless speedup gauges are the tighter tripwires.  Exit
code 1 on any regression or missing gauge, so the CI perf job fails loudly.
A fragment that contributes no gauges at all fails the same way — a bench
binary that silently stopped emitting its gauges must not read as "nothing
regressed".

"informational" gauges are presence-checked but never value-gated: the bench
must still emit them (missing fails), while the measured value is only
reported.  This is the tier for gauges whose value is honest but
meaningless on CI hardware — e.g. the shard/replica parallel speedups,
which sit near or below 1.0 on the single-core runners and would be pure
noise behind a floor.

When GITHUB_STEP_SUMMARY is set (always, inside a GitHub Actions step), a
markdown gauge table is appended to it so the perf job's results are
readable straight from the run page, without downloading the artifact.

Stdlib only — no pip installs.
"""

import argparse
import json
import os
import sys


def write_step_summary(rows, extra_gauges, threshold):
    """Append the gauge table to the Actions step summary, if available."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    lines = [
        "## Serving bench gauges",
        "",
        f"Gate: measured < baseline × {1.0 - threshold:.2f} fails "
        f"(threshold {threshold:.0%}).",
        "",
        "| gauge | measured | baseline | floor | verdict |",
        "|---|---:|---:|---:|---|",
    ]
    for name, measured, floor, limit, verdict in rows:
        icon = "✅" if verdict == "OK" else "ℹ️" if verdict == "INFO" else "❌"
        shown = "—" if measured is None else f"{measured:.3f}"
        floor_s = "—" if limit is None else f"{limit:.3f}"
        lines.append(f"| `{name}` | {shown} | {floor:.3f} | {floor_s} | "
                     f"{icon} {verdict} |")
    for name, value in sorted(extra_gauges.items()):
        lines.append(f"| `{name}` | {value:.3f} | — | — | untracked |")
    with open(path, "a") as f:
        f.write("\n".join(lines) + "\n")


def merge(fragments):
    merged, gauges = {}, {}
    for path in fragments:
        with open(path) as f:
            doc = json.load(f)
        if not doc.get("gauges"):
            # Every bench binary gates through at least one gauge; an empty
            # or absent gauges object means it silently stopped reporting,
            # which must fail the gate rather than pass it vacuously.
            sys.exit(f"error: fragment {path} contributes no gauges")
        for key, val in doc.items():
            if key == "gauges":
                overlap = set(val) & set(gauges)
                if overlap:
                    sys.exit(f"error: duplicate gauges across fragments: "
                             f"{sorted(overlap)}")
                gauges.update(val)
            else:
                if key in merged:
                    sys.exit(f"error: duplicate section '{key}' in {path}")
                merged[key] = val
    merged["gauges"] = gauges
    return merged


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--out", required=True)
    ap.add_argument("--threshold", type=float, default=None,
                    help="override the baseline file's threshold")
    ap.add_argument("fragments", nargs="+")
    args = ap.parse_args()

    merged = merge(args.fragments)
    with open(args.out, "w") as f:
        json.dump(merged, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.out} with {len(merged['gauges'])} gauges")

    with open(args.baseline) as f:
        baseline = json.load(f)
    threshold = args.threshold if args.threshold is not None \
        else float(baseline.get("threshold", 0.25))

    failures = []
    rows = []  # (name, measured|None, floor, limit|None, verdict)
    for name, floor in sorted(baseline.get("gauges", {}).items()):
        measured = merged["gauges"].get(name)
        limit = floor * (1.0 - threshold)
        if measured is None:
            failures.append(f"{name}: missing from bench output")
            rows.append((name, None, floor, limit, "MISSING"))
            continue
        verdict = "OK" if measured >= limit else "REGRESSION"
        rows.append((name, measured, floor, limit, verdict))
        print(f"  {verdict:10s} {name}: measured {measured:.3f} vs "
              f"baseline {floor:.3f} (floor {limit:.3f})")
        if measured < limit:
            failures.append(
                f"{name}: {measured:.3f} < {limit:.3f} "
                f"(baseline {floor:.3f}, threshold {threshold:.0%})")
    # Informational tier: presence is mandatory, value is only reported.
    for name, reference in sorted(baseline.get("informational", {}).items()):
        measured = merged["gauges"].get(name)
        if measured is None:
            failures.append(f"{name}: missing from bench output "
                            f"(informational, but must be emitted)")
            rows.append((name, None, reference, None, "MISSING"))
            continue
        rows.append((name, measured, reference, None, "INFO"))
        print(f"  {'INFO':10s} {name}: measured {measured:.3f} "
              f"(reference {reference:.3f}, not gated)")

    gated = {name for name, *_ in rows}
    extra = {name: value for name, value in merged["gauges"].items()
             if name not in gated and isinstance(value, (int, float))
             and not isinstance(value, bool)}
    write_step_summary(rows, extra, threshold)

    if failures:
        print("\nthroughput regression gate FAILED:", file=sys.stderr)
        for msg in failures:
            print(f"  - {msg}", file=sys.stderr)
        return 1
    print("throughput regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
