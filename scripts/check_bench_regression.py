#!/usr/bin/env python3
"""Merge serving-bench JSON fragments and gate on throughput regressions.

Usage:
  check_bench_regression.py --baseline bench/BENCH_baseline.json \
      --out BENCH_serve.json fragment1.json [fragment2.json ...]

Each fragment is the --json output of one bench binary
(bench_serve_throughput, bench_scheduler).  Fragments are merged into one
BENCH_serve.json: structured sections are unioned, and every fragment's flat
"gauges" object is folded into a single top-level "gauges" dict — the only
part the gate reads.

The baseline file declares conservative higher-is-better floors:

  {
    "threshold": 0.25,
    "gauges": { "<gauge name>": <baseline value>, ... },
    "comment": "..."
  }

A gauge regresses when measured < baseline * (1 - threshold).  Absolute
tokens/s baselines are deliberately set well below a healthy run (CI runners
vary); the dimensionless speedup gauges are the tighter tripwires.  Exit
code 1 on any regression or missing gauge, so the CI perf job fails loudly.

Stdlib only — no pip installs.
"""

import argparse
import json
import sys


def merge(fragments):
    merged, gauges = {}, {}
    for path in fragments:
        with open(path) as f:
            doc = json.load(f)
        for key, val in doc.items():
            if key == "gauges":
                overlap = set(val) & set(gauges)
                if overlap:
                    sys.exit(f"error: duplicate gauges across fragments: "
                             f"{sorted(overlap)}")
                gauges.update(val)
            else:
                if key in merged:
                    sys.exit(f"error: duplicate section '{key}' in {path}")
                merged[key] = val
    merged["gauges"] = gauges
    return merged


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--out", required=True)
    ap.add_argument("--threshold", type=float, default=None,
                    help="override the baseline file's threshold")
    ap.add_argument("fragments", nargs="+")
    args = ap.parse_args()

    merged = merge(args.fragments)
    with open(args.out, "w") as f:
        json.dump(merged, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.out} with {len(merged['gauges'])} gauges")

    with open(args.baseline) as f:
        baseline = json.load(f)
    threshold = args.threshold if args.threshold is not None \
        else float(baseline.get("threshold", 0.25))

    failures = []
    for name, floor in sorted(baseline.get("gauges", {}).items()):
        measured = merged["gauges"].get(name)
        if measured is None:
            failures.append(f"{name}: missing from bench output")
            continue
        limit = floor * (1.0 - threshold)
        verdict = "OK" if measured >= limit else "REGRESSION"
        print(f"  {verdict:10s} {name}: measured {measured:.3f} vs "
              f"baseline {floor:.3f} (floor {limit:.3f})")
        if measured < limit:
            failures.append(
                f"{name}: {measured:.3f} < {limit:.3f} "
                f"(baseline {floor:.3f}, threshold {threshold:.0%})")

    if failures:
        print("\nthroughput regression gate FAILED:", file=sys.stderr)
        for msg in failures:
            print(f"  - {msg}", file=sys.stderr)
        return 1
    print("throughput regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
