// Ablation (ours): checksum width (stride s).
//
// The paper fixes s = 8 because the MMA atom's N dimension makes stride-8
// row elements intra-thread.  This ablation sweeps s in {1, 2, 4, 8, 16} and
// reports (a) modeled protection cost — the checksum GEMM grows linearly in
// s — and (b) measured multi-error coverage — wider checksums split errors
// across more residue classes, so more of them stay locatable.  s = 1 is
// exactly a traditional single-column checksum (without its shuffle cost).

#include "abft/strided_abft.hpp"
#include "bench_util.hpp"
#include "core/efta.hpp"
#include "fault/fault.hpp"
#include "sim/mma.hpp"

namespace fb = ftt::abft;
namespace fc = ftt::core;
namespace ff = ftt::fault;
namespace ft = ftt::tensor;

int main() {
  bench::header("Ablation — checksum width (stride s)");
  const auto m = bench::machine();
  const auto shape = ftt::attention::paper_shape(2048, 16, 64);
  const double base =
      m.seconds(ftt::attention::flash_attention_costs(shape));

  std::printf("%-6s %14s %18s %18s\n", "s", "modeled-ovh",
              "coverage @2 flips", "coverage @4 flips");
  for (const int s : {1, 2, 4, 8, 16}) {
    fc::EftaOptions opt;
    opt.stride = s;
    opt.softmax = fc::SoftmaxProtect::kNone;
    const double ovh = (m.seconds(fc::efta_costs(shape, opt)) - base) / base;

    double cov[2] = {0, 0};
    const double flip_counts[2] = {2.0, 4.0};
    for (int fi = 0; fi < 2; ++fi) {
      int affected = 0, ok = 0;
      for (int t = 0; t < 250; ++t) {
        ft::MatrixH A(64, 64), B(64, 64);
        ft::fill_normal(A, 4000 + t, 0.0f, 0.125f);
        ft::fill_normal(B, 5000 + t);
        ft::MatrixF ref(64, 64);
        ftt::sim::gemm_fp16_nt(A, B, ref);
        auto inj = ff::FaultInjector::bernoulli(
            flip_counts[fi] / (64.0 * 64.0), 700 + t, {ff::Site::kGemm1});
        ft::MatrixF C(64, 64);
        fb::StridedAbft::gemm_nt(A, B, C, s, 0.02f, &inj);
        if (inj.injected() == 0) continue;
        ++affected;
        if (ft::max_abs_diff(C, ref) < 0.05f) ++ok;
      }
      cov[fi] = 100.0 * ok / std::max(affected, 1);
    }
    std::printf("%-6d %13.1f%% %17.1f%% %17.1f%%\n", s, 100.0 * ovh, cov[0],
                cov[1]);
  }
  bench::note("wider checksums cost more checksum-GEMM flops but keep");
  bench::note("multi-error runs locatable; s=8 matches the MMA atom layout");
  return 0;
}
