// Figure 10: breakdown of EFTA's fault-tolerance overhead into QK^T
// protection, softmax protection and PV protection, relative to the
// unprotected end-to-end attention time.
//
// Paper shape: per-seq total overheads 44-152% (h16) and 47-93% (h32) for
// the *unoptimized* EFTA with per-step verification; softmax protection is
// the largest single component.

#include "bench_util.hpp"
#include "core/efta.hpp"

namespace fa = ftt::attention;
namespace fc = ftt::core;

namespace {

void run_config(std::size_t heads, std::size_t dim) {
  const auto m = bench::machine();
  fc::EftaOptions opt;
  opt.unified_verification = false;

  std::printf("\nOverhead Breakdown (head=%zu, dim=%zu)\n", heads, dim);
  std::printf("%-6s %10s | %9s %9s %9s | %9s\n", "seq", "e2e(ms)", "QK^T",
              "softmax", "PV", "total");
  for (const std::size_t seq : bench::kPaperSeqs) {
    const auto shape = fa::paper_shape(seq, heads, dim);
    const double base = m.seconds(fa::flash_attention_costs(shape));
    const auto t = fc::efta_overhead_by_target(shape, opt);
    // Marginal time of each protection target on top of the base kernel.
    const auto marginal = [&](const ftt::sim::CostBreakdown& c) {
      return m.seconds(fa::flash_attention_costs(shape) + c) - base;
    };
    const double qkt = marginal(t.qkt);
    const double sm = marginal(t.softmax);
    const double pv = marginal(t.pv);
    const double total =
        m.seconds(fa::flash_attention_costs(shape) + t.total()) - base;
    std::printf("%-6s %10.3f | %8.1f%% %8.1f%% %8.1f%% | %8.1f%%\n",
                bench::seq_label(seq).c_str(), base * 1e3, 100.0 * qkt / base,
                100.0 * sm / base, 100.0 * pv / base, 100.0 * total / base);
  }
}

}  // namespace

int main() {
  bench::header("Figure 10 — EFTA fault-tolerance overhead breakdown");
  bench::note("marginal modeled time per protection target over the");
  bench::note("unprotected fused kernel (per-step verification EFTA)");
  run_config(16, 64);
  run_config(32, 128);
  return 0;
}
