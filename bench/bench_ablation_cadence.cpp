// Ablation (ours): verification cadence.
//
// Per-step EFTA verifies the S block, the O accumulator and the rowsum range
// on every inner iteration; optimized EFTA (Algorithm 1) verifies P per
// iteration (it is consumed in place) but defers the O checksum and the
// rowsum range to the end.  This ablation measures what the deferral costs in
// *coverage* under bursts of several flips per attention call, alongside the
// modeled time saved — quantifying the trade the paper's Tables 1-2 make.

#include "bench_util.hpp"
#include "core/efta.hpp"
#include "fault/fault.hpp"

namespace fa = ftt::attention;
namespace fc = ftt::core;
namespace ff = ftt::fault;
namespace ft = ftt::tensor;

namespace {

double coverage(bool unified, double flips_per_call, std::uint64_t seed0) {
  constexpr std::size_t kSeq = 256, kDim = 64;
  int affected = 0, ok = 0;
  for (int t = 0; t < 60; ++t) {
    ft::Tensor4H Q(1, 1, kSeq, kDim), K(1, 1, kSeq, kDim), V(1, 1, kSeq, kDim);
    ft::fill_normal(Q, seed0 + 3 * t);
    ft::fill_normal(K, seed0 + 3 * t + 1);
    ft::fill_normal(V, seed0 + 3 * t + 2);
    fc::EftaOptions opt;
    opt.unified_verification = unified;
    ft::Tensor4F ref(1, 1, kSeq, kDim);
    fc::efta_attention(Q, K, V, ref, opt);

    // Flips spread over the two GEMM sites.
    const double total_macs = 2.0 * kSeq * kSeq;  // outputs per site
    auto inj = ff::FaultInjector::bernoulli(
        flips_per_call / total_macs, 40 + t,
        {ff::Site::kGemm1, ff::Site::kGemm2});
    ft::Tensor4F O(1, 1, kSeq, kDim);
    fc::efta_attention(Q, K, V, O, opt, &inj);
    if (inj.injected() == 0) continue;
    ++affected;
    float worst = 0.0f;
    for (std::size_t i = 0; i < O.size(); ++i) {
      const float d = std::fabs(O.data()[i] - ref.data()[i]);
      worst = std::max(worst, d / (std::fabs(ref.data()[i]) + 0.1f));
    }
    if (worst < 0.02f) ++ok;
  }
  return 100.0 * ok / std::max(affected, 1);
}

}  // namespace

int main() {
  bench::header("Ablation — verification cadence (per-step vs unified)");
  const auto m = bench::machine();
  const auto shape = fa::paper_shape(2048, 16, 64);
  fc::EftaOptions ps, u;
  ps.unified_verification = false;
  u.unified_verification = true;
  const double base = m.seconds(fa::flash_attention_costs(shape));
  const double t_ps = m.seconds(fc::efta_costs(shape, ps));
  const double t_u = m.seconds(fc::efta_costs(shape, u));
  std::printf("modeled overhead @seq=2048: per-step %.1f%%, unified %.1f%%\n",
              100.0 * (t_ps - base) / base, 100.0 * (t_u - base) / base);

  std::printf("\n%-18s %14s %14s\n", "flips/attention", "per-step", "unified");
  for (const double flips : {1.0, 3.0, 8.0}) {
    std::printf("%-18.0f %13.1f%% %13.1f%%\n", flips,
                coverage(false, flips, 81000), coverage(true, flips, 81000));
  }
  bench::note("deferring the O check trades a little burst coverage for the");
  bench::note("Tables 1-2 speedup; single-SEU coverage is equivalent");
  return 0;
}
