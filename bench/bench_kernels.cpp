// google-benchmark microbenchmarks of the host-side kernels: the simulated
// fp16 GEMM, checksum encode/verify, softmax, and the full EFTA slice.
// These are CPU performance numbers for this simulator (not A100 numbers);
// they back the measured-ratio sanity checks in the figure benches.

#include <benchmark/benchmark.h>

#include "abft/element_abft.hpp"
#include "abft/strided_abft.hpp"
#include "core/efta.hpp"
#include "sim/mma.hpp"
#include "softmax/softmax.hpp"
#include "tensor/random.hpp"

namespace fb = ftt::abft;
namespace fc = ftt::core;
namespace fs = ftt::sim;
namespace ft = ftt::tensor;

static void BM_GemmFp16(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ft::MatrixH A(n, 64), B(n, 64);
  ft::fill_normal(A, 1);
  ft::fill_normal(B, 2);
  ft::MatrixF C(n, n);
  for (auto _ : state) {
    fs::gemm_fp16_nt(A, B, C);
    benchmark::DoNotOptimize(C.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * 64);
}
BENCHMARK(BM_GemmFp16)->Arg(64)->Arg(128)->Arg(256);

static void BM_StridedEncode(benchmark::State& state) {
  ft::MatrixH X(64, 64);
  ft::fill_normal(X, 3);
  for (auto _ : state) {
    auto c = fb::StridedAbft::encode_rows_strided(X, 8, false, nullptr);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_StridedEncode);

static void BM_StridedVerify(benchmark::State& state) {
  ft::MatrixF S(64, 64);
  ft::fill_normal(S, 4);
  ft::MatrixF c1(64, 8, 0.0f), c2(64, 8, 0.0f);
  for (std::size_t r = 0; r < 64; ++r) {
    for (std::size_t jc = 0; jc < 8; ++jc) {
      for (std::size_t l = 0; l < 8; ++l) {
        c1(r, jc) += S(r, jc + 8 * l);
        c2(r, jc) += static_cast<float>(l + 1) * S(r, jc + 8 * l);
      }
    }
  }
  for (auto _ : state) {
    auto rep = fb::StridedAbft::verify_correct(S, c1, c2, 8, 0.02f);
    benchmark::DoNotOptimize(rep.checks);
  }
}
BENCHMARK(BM_StridedVerify);

static void BM_ProtectedGemm(benchmark::State& state) {
  const bool strided = state.range(0) != 0;
  ft::MatrixH A(128, 64), B(128, 64);
  ft::fill_normal(A, 5, 0.0f, 0.125f);
  ft::fill_normal(B, 6);
  ft::MatrixF C(128, 128);
  for (auto _ : state) {
    if (strided) {
      fb::StridedAbft::gemm_nt(A, B, C, 8, 0.02f, nullptr);
    } else {
      fb::ElementAbft::gemm_nt(A, B, C, 0.02f, nullptr);
    }
    benchmark::DoNotOptimize(C.data());
  }
}
BENCHMARK(BM_ProtectedGemm)->Arg(0)->Arg(1);

static void BM_RowSoftmax(benchmark::State& state) {
  ft::MatrixF S(256, 256);
  ft::fill_normal(S, 7);
  for (auto _ : state) {
    ft::MatrixF P = S;
    ftt::softmax::row_softmax(P);
    benchmark::DoNotOptimize(P.data());
  }
}
BENCHMARK(BM_RowSoftmax);

static void BM_EftaSlice(benchmark::State& state) {
  const bool unified = state.range(0) != 0;
  const std::size_t seq = 256;
  ft::Tensor4H Q(1, 1, seq, 64), K(1, 1, seq, 64), V(1, 1, seq, 64);
  ft::fill_normal(Q, 8);
  ft::fill_normal(K, 9);
  ft::fill_normal(V, 10);
  ft::Tensor4F O(1, 1, seq, 64);
  fc::EftaOptions opt;
  opt.unified_verification = unified;
  for (auto _ : state) {
    fc::efta_attention(Q, K, V, O, opt);
    benchmark::DoNotOptimize(O.data());
  }
}
BENCHMARK(BM_EftaSlice)->Arg(0)->Arg(1);

BENCHMARK_MAIN();
