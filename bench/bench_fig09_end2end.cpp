// Figure 9: scaled execution time and fault tolerance overhead of the
// end-to-end FT attention vs the decoupled (operation-level) FT attention.
//
// Paper setup: total token budget 16K (batch adjusted per seq length), two
// attention configs (head=16 dim=64 and head=32 dim=128).  The bars are
// normalized to the decoupled *unprotected* baseline = 1.0; the percentage on
// top is decoupled_FT / EFTA_FT (speedup).  The decoupled pipeline OOMs at
// seq 16k for the large config (fp32 S and P intermediates exceed 40 GB).
//
// Paper shape to reproduce: speedups ~4-5.2x (h16) and ~2.2-3.1x (h32),
// averages 447% / 244%, OOM at 16k (h32 only).

#include "attention/decoupled_ft.hpp"
#include "bench_util.hpp"
#include "core/efta.hpp"
#include "tensor/tensor.hpp"

namespace fa = ftt::attention;
namespace fc = ftt::core;

namespace {

void run_config(std::size_t heads, std::size_t dim) {
  const auto m = bench::machine();
  fc::EftaOptions efta_opt;
  efta_opt.unified_verification = false;  // Fig. 9 uses the pre-optimized EFTA

  std::printf("\nFT-Attention Mechanism (head=%zu, dim=%zu), 16K total tokens\n",
              heads, dim);
  std::printf("%-6s %12s %12s %12s %12s %10s %8s\n", "seq", "base(ms)",
              "dec-FT(ms)", "e2e(ms)", "e2e-FT(ms)", "FT-ovh", "speedup");

  double speedup_sum = 0.0;
  int speedup_n = 0;
  for (const std::size_t seq : bench::kPaperSeqs) {
    const auto shape = fa::paper_shape(seq, heads, dim);

    const double ws = fa::decoupled_workspace_bytes(shape);
    const double t_base = m.seconds(fa::decoupled_attention_costs(shape));
    const double t_dec = m.seconds(fa::decoupled_ft_costs(shape));
    const double t_e2e = m.seconds(fa::flash_attention_costs(shape));
    const double t_efta = m.seconds(fc::efta_costs(shape, efta_opt));

    if (!m.fits(ws)) {
      std::printf("%-6s %12.3f %12s %12.3f %12.3f %9.1f%% %8s\n",
                  bench::seq_label(seq).c_str(), t_base * 1e3, "OOM",
                  t_e2e * 1e3, t_efta * 1e3,
                  100.0 * (t_efta - t_e2e) / t_e2e, "OOM");
      continue;
    }
    const double speedup = t_dec / t_efta;
    speedup_sum += speedup;
    ++speedup_n;
    std::printf("%-6s %12.3f %12.3f %12.3f %12.3f %9.1f%% %7.0f%%\n",
                bench::seq_label(seq).c_str(), t_base * 1e3, t_dec * 1e3,
                t_e2e * 1e3, t_efta * 1e3,
                100.0 * (t_efta - t_e2e) / t_e2e, 100.0 * speedup);
  }
  std::printf("average speedup over decoupled FT: %.0f%%  (paper: %s)\n",
              100.0 * speedup_sum / speedup_n,
              heads == 16 ? "447%" : "244%");
}

void measured_sanity() {
  // Reduced-scale CPU measurement of the same kernels.  NOTE: the host has
  // no HBM bottleneck, no kernel-launch latency and a large cache, so the
  // decoupled pipeline is NOT penalized here the way the A100 penalizes it —
  // Figure 9's ordering is a property of the GPU memory system captured by
  // the cost model, not of the arithmetic.  These numbers only sanity-check
  // that all kernels run the claimed computations.
  using ftt::tensor::Tensor4F;
  using ftt::tensor::Tensor4H;
  const std::size_t B = 2, H = 4, S = 512, D = 64;
  Tensor4H Q(B, H, S, D), K(B, H, S, D), V(B, H, S, D);
  ftt::tensor::fill_normal(Q, 1);
  ftt::tensor::fill_normal(K, 2);
  ftt::tensor::fill_normal(V, 3);
  Tensor4F O(B, H, S, D);

  const double t_dec = bench::time_best(
      [&] { fa::decoupled_ft_attention(Q, K, V, O); }, 2);
  fc::EftaOptions opt;
  opt.unified_verification = false;
  const double t_efta =
      bench::time_best([&] { fc::efta_attention(Q, K, V, O, opt); }, 2);
  const double t_flash =
      bench::time_best([&] { fa::flash_attention(Q, K, V, O); }, 2);

  bench::note("measured CPU sanity check (batch=2 heads=4 seq=512 dim=64):");
  std::printf("  flash %.1f ms | EFTA %.1f ms | decoupled-FT %.1f ms | "
              "measured speedup %.2fx\n",
              t_flash * 1e3, t_efta * 1e3, t_dec * 1e3, t_dec / t_efta);
}

}  // namespace

int main() {
  bench::header(
      "Figure 9 — End-to-end FT attention vs decoupled FT attention");
  bench::note("modeled A100 times from exact op counts; see DESIGN.md");
  run_config(16, 64);
  run_config(32, 128);
  measured_sanity();
  return 0;
}
