// Figure 11: EFTA execution time with Strided (tensor-checksum) ABFT vs
// traditional (element-checksum) ABFT protecting the QK^T and PV GEMMs.
//
// Paper shape: strided ABFT averages 11.8% (h16) / 10.5% (h32) overhead,
// traditional averages ~32-35% — roughly a 3x reduction, driven by the
// cross-thread reductions the tensor checksum eliminates.

#include "abft/element_abft.hpp"
#include "abft/strided_abft.hpp"
#include "bench_util.hpp"
#include "core/efta.hpp"
#include "fault/fault.hpp"
#include "sim/mma.hpp"
#include "tensor/tensor.hpp"

namespace fa = ftt::attention;
namespace fc = ftt::core;

namespace {

void run_config(std::size_t heads, std::size_t dim) {
  const auto m = bench::machine();
  fc::EftaOptions strided, element;
  strided.gemm = fc::GemmProtect::kStrided;
  element.gemm = fc::GemmProtect::kElement;
  // Isolate the ABFT comparison: no softmax protection in either variant.
  strided.softmax = fc::SoftmaxProtect::kNone;
  element.softmax = fc::SoftmaxProtect::kNone;
  strided.unified_verification = element.unified_verification = false;

  std::printf("\nFT-design for Mixed-Precision GEMM (head=%zu, dim=%zu)\n",
              heads, dim);
  std::printf("%-6s %10s | %14s %14s\n", "seq", "e2e(ms)",
              "element-ABFT", "tensor-ABFT");
  double sum_s = 0.0, sum_e = 0.0;
  for (const std::size_t seq : bench::kPaperSeqs) {
    const auto shape = fa::paper_shape(seq, heads, dim);
    const double base = m.seconds(fa::flash_attention_costs(shape));
    const double ovh_s = m.seconds(fc::efta_costs(shape, strided)) - base;
    const double ovh_e = m.seconds(fc::efta_costs(shape, element)) - base;
    sum_s += ovh_s / base;
    sum_e += ovh_e / base;
    std::printf("%-6s %10.3f | %13.1f%% %13.1f%%\n",
                bench::seq_label(seq).c_str(), base * 1e3,
                100.0 * ovh_e / base, 100.0 * ovh_s / base);
  }
  const int n = static_cast<int>(std::size(bench::kPaperSeqs));
  std::printf("average: element %.1f%%, tensor %.1f%%  (paper: ~35%% vs %s)\n",
              100.0 * sum_e / n, 100.0 * sum_s / n,
              heads == 16 ? "11.8%" : "10.5%");
}

void measured_sanity() {
  // Host-side measurement of the same two protected GEMM paths.  NOTE: the
  // CPU pays no warp-shuffle or sync penalty, which is precisely what makes
  // the element checksum slow on tensor cores — so the GPU ordering is a
  // cost-model property, not reproducible on the host.
  using ftt::tensor::MatrixF;
  using ftt::tensor::MatrixH;
  MatrixH A(256, 64), B(256, 64);
  ftt::tensor::fill_normal(A, 1, 0.0f, 0.125f);
  ftt::tensor::fill_normal(B, 2);
  MatrixF C(256, 256);
  const double t_plain =
      bench::time_best([&] { ftt::sim::gemm_fp16_nt(A, B, C); });
  const double t_strided = bench::time_best(
      [&] { ftt::abft::StridedAbft::gemm_nt(A, B, C, 8, 0.02f, nullptr); });
  const double t_element = bench::time_best(
      [&] { ftt::abft::ElementAbft::gemm_nt(A, B, C, 0.02f, nullptr); });
  bench::note("measured CPU 256x256x64 protected GEMM:");
  std::printf("  plain %.3f ms | +strided %.1f%% | +element %.1f%%\n",
              t_plain * 1e3, 100.0 * (t_strided - t_plain) / t_plain,
              100.0 * (t_element - t_plain) / t_plain);
}

}  // namespace

int main() {
  bench::header("Figure 11 — Strided ABFT vs traditional ABFT inside EFTA");
  run_config(16, 64);
  run_config(32, 128);
  measured_sanity();
  return 0;
}
