// Figure 12: (left) error coverage of the strided tensor checksum vs the
// traditional element checksum under a bit-error-rate sweep; (right) fault
// detection rate and false alarm rate of the strided ABFT vs the relative
// error threshold.
//
// These are *measured* experiments: real fp16 GEMMs, real flips, real
// checksum verification.  Paper shape: at BER 1e-7 the tensor checksum covers
// ~92.5% of runs vs ~48% for the element checksum; the detection/false-alarm
// curves cross at the calibrated threshold (0.48 in the paper's all-fp16
// pipeline; lower here because our fp32-accumulate pipeline has ~100x smaller
// intrinsic rounding residual — see EXPERIMENTS.md).

#include <cmath>
#include <vector>

#include "abft/element_abft.hpp"
#include "abft/strided_abft.hpp"
#include "bench_util.hpp"
#include "fault/fault.hpp"
#include "sim/mma.hpp"

namespace fb = ftt::abft;
namespace ff = ftt::fault;
namespace ft = ftt::tensor;

namespace {

constexpr std::size_t kM = 64, kN = 64, kD = 64;
constexpr int kTrials = 400;

struct Workload {
  ft::MatrixH A{kM, kD}, B{kN, kD};
  ft::MatrixF ref{kM, kN};
  explicit Workload(std::uint64_t seed) {
    ft::fill_normal(A, seed, 0.0f, 0.125f);
    ft::fill_normal(B, seed + 1);
    ftt::sim::gemm_fp16_nt(A, B, ref);
  }
};

/// Coverage: fraction of fault-affected runs whose output ends up correct.
void coverage_vs_ber() {
  std::printf("\nABFT's Protection Ability (error coverage vs BER)\n");
  std::printf("%-8s %10s %10s %18s %18s\n", "BER", "flips/run", "runs",
              "tensor checksum", "element checksum");
  // BER is per executed flop; each output element accumulates 2*D flops.
  for (const double ber : {1e-8, 5e-8, 1e-7}) {
    const double p_elem = ber * 2.0 * kD * 32.0;  // per-bit exposure
    int affected = 0, ok_s = 0, ok_e = 0;
    double flips = 0.0;
    for (int t = 0; t < kTrials; ++t) {
      Workload w(9000 + t);
      auto inj1 =
          ff::FaultInjector::bernoulli(p_elem, 100 + t, {ff::Site::kGemm1});
      ft::MatrixF C1(kM, kN);
      fb::StridedAbft::gemm_nt(w.A, w.B, C1, 8, 0.02f, &inj1);
      auto inj2 =
          ff::FaultInjector::bernoulli(p_elem, 100 + t, {ff::Site::kGemm1});
      ft::MatrixF C2(kM, kN);
      fb::ElementAbft::gemm_nt(w.A, w.B, C2, 0.02f, &inj2);
      if (inj1.injected() == 0) continue;
      ++affected;
      flips += static_cast<double>(inj1.injected());
      if (ft::max_abs_diff(C1, w.ref) < 0.05f) ++ok_s;
      if (ft::max_abs_diff(C2, w.ref) < 0.05f) ++ok_e;
    }
    std::printf("%-8.0e %10.2f %10d %17.1f%% %17.1f%%\n", ber,
                flips / std::max(affected, 1), affected,
                100.0 * ok_s / std::max(affected, 1),
                100.0 * ok_e / std::max(affected, 1));
  }
  bench::note("paper at BER 1e-7: tensor 92.5%, element 48%");
}

/// Detection and false-alarm rates vs threshold for the strided checksum.
void rates_vs_threshold() {
  std::printf("\nFault Detection & False Alarm vs relative error threshold\n");
  std::printf("%-10s %12s %12s\n", "threshold", "detection", "false-alarm");
  const std::vector<float> thresholds{1e-4f, 5e-4f, 1e-3f, 2e-3f, 5e-3f,
                                      1e-2f, 2e-2f, 5e-2f, 1e-1f, 2e-1f,
                                      5e-1f};
  for (const float thr : thresholds) {
    int detected = 0, false_alarm = 0;
    const int n = 200;
    for (int t = 0; t < n; ++t) {
      Workload w(12000 + t);
      // Error-free run: any flag is a false alarm.
      ft::MatrixF Cc(kM, kN);
      const auto clean = fb::StridedAbft::gemm_nt(w.A, w.B, Cc, 8, thr, nullptr);
      if (clean.flagged > 0) ++false_alarm;
      // Single mid-magnitude flip (random mantissa-high/exponent-low bits).
      const unsigned bit = 21 + static_cast<unsigned>(t % 8);
      auto inj = ff::FaultInjector::single(
          ff::Site::kGemm1, static_cast<std::uint64_t>((t * 131) % (kM * kN)),
          bit);
      ft::MatrixF C(kM, kN);
      const auto rep = fb::StridedAbft::gemm_nt(w.A, w.B, C, 8, thr, &inj);
      if (rep.flagged > 0) ++detected;
    }
    std::printf("%-10.0e %11.1f%% %11.1f%%\n", thr, 100.0 * detected / n,
                100.0 * false_alarm / n);
  }
  bench::note("paper's optimum is 0.48 on an all-fp16 pipeline; this");
  bench::note("fp32-accumulate pipeline calibrates to ~0.01-0.05");
}

}  // namespace

int main() {
  bench::header("Figure 12 — Strided ABFT error coverage & threshold study");
  coverage_vs_ber();
  rates_vs_threshold();
  return 0;
}
