// Tables 1 & 2: EFTA vs optimized EFTA (Algorithm 1's unified verification),
// head=16/dim=64 (Table 1) and head=32/dim=128 (Table 2).
//
// Paper shape (Table 1): optimized EFTA cuts the average FT overhead from
// ~53% to ~15.3% and is ~1.32x faster than unoptimized EFTA; vs the
// decoupled baseline the optimized version is 7.56x (h16) / 3.69x (h32)
// faster on average.

#include "attention/decoupled_ft.hpp"
#include "bench_util.hpp"
#include "core/efta.hpp"
#include "tensor/tensor.hpp"

namespace fa = ftt::attention;
namespace fc = ftt::core;

namespace {

void run_table(const char* name, std::size_t heads, std::size_t dim,
               const char* paper_speedup) {
  const auto m = bench::machine();
  fc::EftaOptions per_step, unified;
  per_step.unified_verification = false;
  unified.unified_verification = true;

  std::printf("\n%s (head=%zu, dim=%zu)\n", name, heads, dim);
  std::printf("%-6s %10s %9s %12s %9s %9s %12s\n", "Length", "EFTA(ms)",
              "Overhead", "EFTA-o(ms)", "Overhead", "EFTAo-spd", "vs-decoup");
  double sum_spd = 0.0, sum_dec = 0.0, sum_ovh_ps = 0.0, sum_ovh_u = 0.0;
  int n = 0;
  for (const std::size_t seq : bench::kPaperSeqs) {
    const auto shape = fa::paper_shape(seq, heads, dim);
    const double base = m.seconds(fa::flash_attention_costs(shape));
    const double t_ps = m.seconds(fc::efta_costs(shape, per_step));
    const double t_u = m.seconds(fc::efta_costs(shape, unified));
    const double t_dec = m.seconds(fa::decoupled_ft_costs(shape));
    const bool oom = !m.fits(fa::decoupled_workspace_bytes(shape));
    sum_spd += t_ps / t_u;
    sum_ovh_ps += (t_ps - base) / base;
    sum_ovh_u += (t_u - base) / base;
    if (!oom) {
      sum_dec += t_dec / t_u;
      ++n;
    }
    char decbuf[32];
    if (oom) {
      std::snprintf(decbuf, sizeof decbuf, "OOM");
    } else {
      std::snprintf(decbuf, sizeof decbuf, "%.2fx", t_dec / t_u);
    }
    std::printf("%-6s %10.3f %8.1f%% %12.3f %8.1f%% %8.2fx %12s\n",
                bench::seq_label(seq).c_str(), t_ps * 1e3,
                100.0 * (t_ps - base) / base, t_u * 1e3,
                100.0 * (t_u - base) / base, t_ps / t_u, decbuf);
  }
  const int total = static_cast<int>(std::size(bench::kPaperSeqs));
  std::printf(
      "averages: overhead %.1f%% -> %.1f%%, EFTA-o speedup %.2fx, "
      "vs decoupled %.2fx (paper: %s)\n",
      100.0 * sum_ovh_ps / total, 100.0 * sum_ovh_u / total, sum_spd / total,
      sum_dec / n, paper_speedup);
}

void measured_sanity() {
  using ftt::tensor::Tensor4F;
  using ftt::tensor::Tensor4H;
  const std::size_t S = 512, D = 64;
  Tensor4H Q(1, 4, S, D), K(1, 4, S, D), V(1, 4, S, D);
  ftt::tensor::fill_normal(Q, 1);
  ftt::tensor::fill_normal(K, 2);
  ftt::tensor::fill_normal(V, 3);
  Tensor4F O(1, 4, S, D);
  fc::EftaOptions ps, u;
  ps.unified_verification = false;
  u.unified_verification = true;
  const double t_ps =
      bench::time_best([&] { fc::efta_attention(Q, K, V, O, ps); }, 2);
  const double t_u =
      bench::time_best([&] { fc::efta_attention(Q, K, V, O, u); }, 2);
  bench::note("measured CPU sanity (heads=4 seq=512):");
  std::printf("  EFTA %.1f ms | EFTA-o %.1f ms | measured speedup %.2fx\n",
              t_ps * 1e3, t_u * 1e3, t_ps / t_u);
}

}  // namespace

int main() {
  bench::header("Table 1 — EFTA vs optimized EFTA (unified verification)");
  run_table("Table 1", 16, 64, "1.32x and 7.56x vs decoupled");
  measured_sanity();
  return 0;
}
