// Figure 13: EFTA execution time with DMR-protected softmax vs selective
// neuron value restriction (SNVR).
//
// Paper shape: SNVR averages 14.3% (h16) / 13.6% (h32) overhead, DMR 62.5% /
// 30.6% — SNVR wins at every length because the checksum-reuse verification
// rides the existing pipeline while DMR replicates the whole EXP stage.

#include "bench_util.hpp"
#include "core/efta.hpp"
#include "softmax/softmax.hpp"
#include "tensor/tensor.hpp"

namespace fa = ftt::attention;
namespace fc = ftt::core;

namespace {

void run_config(std::size_t heads, std::size_t dim) {
  const auto m = bench::machine();
  fc::EftaOptions snvr, dmr;
  snvr.softmax = fc::SoftmaxProtect::kSNVR;
  dmr.softmax = fc::SoftmaxProtect::kDMR;
  // Isolate softmax protection: GEMMs protected identically (strided).
  snvr.gemm = dmr.gemm = fc::GemmProtect::kStrided;
  snvr.unified_verification = dmr.unified_verification = false;

  fc::EftaOptions gemm_only = snvr;
  gemm_only.softmax = fc::SoftmaxProtect::kNone;

  std::printf("\nFT-design for Softmax (head=%zu, dim=%zu)\n", heads, dim);
  std::printf("%-6s %10s | %12s %12s\n", "seq", "e2e(ms)", "DMR",
              "restriction");
  double sum_d = 0.0, sum_s = 0.0;
  for (const std::size_t seq : bench::kPaperSeqs) {
    const auto shape = fa::paper_shape(seq, heads, dim);
    const double base = m.seconds(fa::flash_attention_costs(shape));
    const double with_gemm = m.seconds(fc::efta_costs(shape, gemm_only));
    const double ovh_s = m.seconds(fc::efta_costs(shape, snvr)) - with_gemm;
    const double ovh_d = m.seconds(fc::efta_costs(shape, dmr)) - with_gemm;
    sum_d += ovh_d / base;
    sum_s += ovh_s / base;
    std::printf("%-6s %10.3f | %11.1f%% %11.1f%%\n",
                bench::seq_label(seq).c_str(), base * 1e3,
                100.0 * ovh_d / base, 100.0 * ovh_s / base);
  }
  const int n = static_cast<int>(std::size(bench::kPaperSeqs));
  std::printf("average: DMR %.1f%%, SNVR %.1f%%  (paper: %s)\n",
              100.0 * sum_d / n, 100.0 * sum_s / n,
              heads == 16 ? "62.5% vs 14.3%" : "30.6% vs 13.6%");
}

void measured_sanity() {
  using ftt::tensor::Tensor4F;
  using ftt::tensor::Tensor4H;
  const std::size_t S = 512, D = 64;
  Tensor4H Q(1, 4, S, D), K(1, 4, S, D), V(1, 4, S, D);
  ftt::tensor::fill_normal(Q, 1);
  ftt::tensor::fill_normal(K, 2);
  ftt::tensor::fill_normal(V, 3);
  Tensor4F O(1, 4, S, D);
  fc::EftaOptions snvr, dmr;
  dmr.softmax = fc::SoftmaxProtect::kDMR;
  const double t_snvr =
      bench::time_best([&] { fc::efta_attention(Q, K, V, O, snvr); }, 2);
  const double t_dmr =
      bench::time_best([&] { fc::efta_attention(Q, K, V, O, dmr); }, 2);
  bench::note("measured CPU sanity (heads=4 seq=512): SNVR vs DMR kernels:");
  std::printf("  SNVR %.1f ms | DMR %.1f ms\n", t_snvr * 1e3, t_dmr * 1e3);
}

}  // namespace

int main() {
  bench::header("Figure 13 — DMR vs selective neuron value restriction");
  run_config(16, 64);
  run_config(32, 128);
  measured_sanity();
  return 0;
}
