// fp16 conversion microbenchmark: scalar RTNE vs runtime-dispatched SIMD.
//
// The decode hot path converts every fp16 operand exactly once per tile
// through numeric::halves_to_floats / floats_to_halves, so conversion
// throughput bounds host-side decode speed.  This bench measures both
// directions through the scalar reference path and the dispatching entry
// points (F16C/AVX2 when compiled in and supported), cross-checks the two
// produce bit-identical outputs on the benchmark buffers, and emits the
// CI gauges with --json.  On hosts without F16C the dispatching path is
// the scalar path and the speedups report ~1x.

#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "bench_util.hpp"
#include "numeric/fp16.hpp"

namespace fn = ftt::numeric;
using fn::Half;

int main(int argc, char** argv) {
  const std::string json_path = bench::json_path_from_args(argc, argv);
  bench::header("fp16 conversion throughput (scalar vs SIMD dispatch)");
  const bool simd = fn::simd_fp16_active();
  std::printf("  simd dispatch: %s\n",
              simd ? "F16C/AVX2 active" : "inactive (scalar fallback)");

  constexpr std::size_t kN = 1u << 22;  // 4 Mi elements per pass
  constexpr int kReps = 5;
  std::vector<Half> halves(kN), half_out(kN), half_ref(kN);
  std::vector<float> floats(kN), float_out(kN), float_ref(kN);
  std::mt19937_64 rng(0x5eed);
  std::normal_distribution<float> dist(0.0f, 8.0f);
  for (std::size_t i = 0; i < kN; ++i) {
    floats[i] = dist(rng);
    halves[i] = Half(dist(rng));
  }

  const double mel = static_cast<double>(kN) / 1e6;
  const double widen_scalar = bench::time_best(
      [&] { fn::halves_to_floats_scalar(halves.data(), float_ref.data(), kN); },
      kReps);
  const double widen_simd = bench::time_best(
      [&] { fn::halves_to_floats(halves.data(), float_out.data(), kN); },
      kReps);
  const double narrow_scalar = bench::time_best(
      [&] { fn::floats_to_halves_scalar(floats.data(), half_ref.data(), kN); },
      kReps);
  const double narrow_simd = bench::time_best(
      [&] { fn::floats_to_halves(floats.data(), half_out.data(), kN); },
      kReps);

  // The dispatching path must match the scalar reference bit for bit (the
  // exhaustive guarantee lives in tests/test_fp16.cpp; this is the smoke
  // check on the bench buffers).
  const bool widen_identical =
      std::memcmp(float_out.data(), float_ref.data(), kN * sizeof(float)) == 0;
  const bool narrow_identical =
      std::memcmp(half_out.data(), half_ref.data(), kN * sizeof(Half)) == 0;

  const double widen_mel_s = mel / widen_simd;
  const double narrow_mel_s = mel / narrow_simd;
  const double widen_speedup = widen_scalar / widen_simd;
  const double narrow_speedup = narrow_scalar / narrow_simd;
  std::printf("\n  %-26s %12s %12s %9s\n", "direction", "scalar Mel/s",
              "simd Mel/s", "speedup");
  std::printf("  %-26s %12.1f %12.1f %8.2fx%s\n", "half -> float (widen)",
              mel / widen_scalar, widen_mel_s, widen_speedup,
              widen_identical ? "" : "  MISMATCH vs scalar!");
  std::printf("  %-26s %12.1f %12.1f %8.2fx%s\n", "float -> half (narrow)",
              mel / narrow_scalar, narrow_mel_s, narrow_speedup,
              narrow_identical ? "" : "  MISMATCH vs scalar!");

  bool json_ok = true;
  if (!json_path.empty()) {
    bench::JsonWriter w;
    w.begin_object();
    w.key("fp16");
    w.begin_object();
    w.kv("simd_active", simd);
    w.kv("elements", kN);
    w.kv("widen_scalar_melems_per_s", mel / widen_scalar);
    w.kv("widen_melems_per_s", widen_mel_s);
    w.kv("narrow_scalar_melems_per_s", mel / narrow_scalar);
    w.kv("narrow_melems_per_s", narrow_mel_s);
    w.kv("bit_identical_to_scalar", widen_identical && narrow_identical);
    w.end_object();
    // Absolute floors are machine-dependent, so the baseline keeps them
    // well below a healthy run.  fp16_narrow_speedup is the deliberate
    // tripwire for a lost F16C dispatch: it sits at ~1x on non-F16C hosts
    // (or FTT_SIMD=OFF builds) and WILL fail the baseline floor there —
    // the perf job assumes an F16C-capable runner, which every GitHub
    // ubuntu runner is.
    w.key("gauges");
    w.begin_object();
    w.kv("fp16_widen_melems_per_s", widen_mel_s);
    w.kv("fp16_narrow_melems_per_s", narrow_mel_s);
    // Narrow is the discriminative speedup (scalar narrow does real
    // arithmetic; scalar widen is already a table hit): ~4-8x with F16C.
    w.kv("fp16_narrow_speedup", narrow_speedup);
    w.end_object();
    w.end_object();
    json_ok = w.write_file(json_path);
  }
  return (widen_identical && narrow_identical && json_ok) ? 0 : 1;
}
