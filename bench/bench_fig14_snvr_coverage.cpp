// Figure 14: (left) SNVR fault detection rate and false alarm rate vs the
// EXP-check threshold; (right) distribution of residual output error after
// restriction — selective (SNVR: numerator and denominator protected
// separately) vs traditional restriction (only the final softmax output
// clamped to its [0,1] range).
//
// Paper shape: detection ~97.2% with ~5.9% false alarms at the calibrated
// threshold; SNVR confines residual errors to [0, ~0.02] while traditional
// restriction leaves them spread over [0, ~0.15].

#include <algorithm>
#include <cmath>
#include <vector>

#include "bench_util.hpp"
#include "core/efta.hpp"
#include "fault/fault.hpp"

namespace fa = ftt::attention;
namespace fc = ftt::core;
namespace ff = ftt::fault;
namespace ft = ftt::tensor;

namespace {

constexpr std::size_t kSeq = 128, kDim = 64;

struct Workload {
  ft::Tensor4H Q{1, 1, kSeq, kDim}, K{1, 1, kSeq, kDim}, V{1, 1, kSeq, kDim};
  ft::Tensor4F ref{1, 1, kSeq, kDim};
  explicit Workload(std::uint64_t seed) {
    ft::fill_normal(Q, seed);
    ft::fill_normal(K, seed + 1);
    ft::fill_normal(V, seed + 2);
    fc::EftaOptions opt;
    opt.unified_verification = true;
    fc::efta_attention(Q, K, V, ref, opt);
  }
};

void rates_vs_threshold() {
  std::printf("\nSNVR fault detection & false alarm vs EXP-check threshold\n");
  std::printf("%-10s %12s %12s\n", "threshold", "detection", "false-alarm");
  for (const float thr :
       {1e-4f, 1e-3f, 5e-3f, 1e-2f, 3e-2f, 1e-1f, 3e-1f, 1.0f}) {
    int detected = 0, false_alarm = 0;
    const int n = 120;
    for (int t = 0; t < n; ++t) {
      Workload w(20000 + t);
      fc::EftaOptions opt;
      opt.unified_verification = true;
      opt.exp_log_threshold = thr;
      // Error-free run.
      ft::Tensor4F O(1, 1, kSeq, kDim);
      const auto clean = fc::efta_attention(w.Q, w.K, w.V, O, opt);
      if (clean.exp_check.flagged > 0) ++false_alarm;
      // One EXP-unit flip at a mixed bit position.
      const unsigned bit = 22 + static_cast<unsigned>(t % 8);
      auto inj = ff::FaultInjector::single(
          ff::Site::kExp, static_cast<std::uint64_t>((t * 977) % 16000), bit);
      const auto rep = fc::efta_attention(w.Q, w.K, w.V, O, opt, &inj);
      if (rep.exp_check.flagged > 0) ++detected;
    }
    std::printf("%-10.0e %11.1f%% %11.1f%%\n", thr, 100.0 * detected / n,
                100.0 * false_alarm / n);
  }
  bench::note("paper: 97.2% detection / 5.9% false alarms at its optimum");
}

/// Residual relative error of the softmax row after a rowsum fault, under
/// SNVR (replace with the lower-bound approximation) vs traditional
/// restriction (clamp the final normalized values into [0, 1]).
void error_distribution() {
  std::printf("\nError distribution after restriction (rowsum faults)\n");
  std::vector<float> snvr_err, trad_err;
  const int n = 300;
  // EFTA's operating point: long rows split into many 64-wide blocks, and
  // trained attention scores are peaked (the paper's premise: "most values
  // concentrated around the largest ones"), so the per-block-max sum is a
  // tight approximation of the true rowsum.
  constexpr std::size_t kRow = 4096, kBlock = 64;
  for (int t = 0; t < n; ++t) {
    std::mt19937_64 rng(31000 + t);
    std::normal_distribution<float> dist(0.0f, 2.0f);
    std::vector<float> s(kRow);
    float mx = -1e30f;
    for (auto& v : s) {
      v = dist(rng);
      mx = std::max(mx, v);
    }
    double true_sum = 0.0;
    for (const float v : s) true_sum += std::exp(v - mx);
    // Corrupt the reduce-sum with a random exponent-bit flip.
    const unsigned bit = 24 + static_cast<unsigned>(t % 7);
    const float bad_sum = ftt::numeric::flip_bit_f32(
        static_cast<float>(true_sum), bit);

    // SNVR: range check against [sum exp(blockmax - max), row]; on violation
    // replace with the per-block-max lower-bound approximation.
    double lower = 0.0;
    for (std::size_t b0 = 0; b0 < kRow; b0 += kBlock) {
      float bm = -1e30f;
      for (std::size_t i = b0; i < b0 + kBlock; ++i) bm = std::max(bm, s[i]);
      lower += std::exp(bm - mx);
    }
    float snvr_sum = bad_sum;
    if (!(bad_sum >= lower * 0.999) || !(bad_sum <= kRow * 1.001) ||
        !std::isfinite(bad_sum)) {
      snvr_sum = static_cast<float>(lower);
    }
    // Traditional: divide by the corrupted sum, then clamp outputs to [0,1].
    float max_err_snvr = 0.0f, max_err_trad = 0.0f;
    for (const float v : s) {
      const float p_true =
          static_cast<float>(std::exp(v - mx) / true_sum);
      const float p_snvr = static_cast<float>(std::exp(v - mx) / snvr_sum);
      float p_trad = static_cast<float>(std::exp(v - mx) / bad_sum);
      p_trad = std::clamp(std::isfinite(p_trad) ? p_trad : 1.0f, 0.0f, 1.0f);
      max_err_snvr =
          std::max(max_err_snvr, std::fabs(p_snvr - p_true));
      max_err_trad =
          std::max(max_err_trad, std::fabs(p_trad - p_true));
    }
    snvr_err.push_back(max_err_snvr);
    trad_err.push_back(max_err_trad);
  }

  auto summarize = [](std::vector<float> v, const char* name) {
    std::sort(v.begin(), v.end());
    const auto q = [&](double p) {
      return v[static_cast<std::size_t>(p * (v.size() - 1))];
    };
    std::printf("  %-22s median %.4f  p90 %.4f  p99 %.4f  max %.4f\n", name,
                q(0.5), q(0.9), q(0.99), v.back());
  };
  summarize(snvr_err, "selective restriction");
  summarize(trad_err, "traditional restriction");
  bench::note("paper: SNVR confines errors to ~[0, 0.02]; traditional");
  bench::note("restriction leaves them spread over ~[0, 0.15]");
}

}  // namespace

int main() {
  bench::header("Figure 14 — SNVR coverage and post-restriction error");
  rates_vs_threshold();
  error_distribution();
  return 0;
}
