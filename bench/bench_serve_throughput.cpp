// Batched protected-decode throughput: the serving-engine hot path.
//
// One token of one request is `heads` independent protected decode slices;
// a batch of R requests is R x heads slices that efta_decode_batch runs
// OpenMP-parallel.  This bench measures tokens/s of the serial per-request
// loop vs the batched path at growing batch sizes, checks the two produce
// bit-identical outputs, and counts false corrections (must be zero at
// default thresholds).  Speedup tracks the available cores: at >= 4 threads
// the batch-8 path is expected >= 3x the single-request loop.

#include <cstdio>
#include <random>
#include <vector>

#include <omp.h>

#include "bench_json.hpp"
#include "bench_util.hpp"
#include "core/decode.hpp"
#include "serve/kv_cache.hpp"

namespace fa = ftt::attention;
namespace fc = ftt::core;
namespace fs = ftt::serve;
using ftt::numeric::Half;

namespace {

constexpr std::size_t kHeads = 8, kDim = 64;
// Heterogeneous, deliberately ragged context lengths (not multiples of 64).
constexpr std::size_t kContexts[] = {480, 500, 512, 390, 460, 512, 350, 420};

struct Fleet {
  std::vector<fs::KvCache> caches;
  std::vector<std::vector<Half>> queries;     // per request: heads*dim
  std::vector<std::vector<float>> out;        // per request: heads*dim

  explicit Fleet(std::size_t requests) {
    std::mt19937_64 rng(42);
    std::normal_distribution<float> dist(0.0f, 1.0f);
    for (std::size_t r = 0; r < requests; ++r) {
      caches.emplace_back(kHeads, kDim);
      const std::size_t n = kContexts[r % std::size(kContexts)];
      std::vector<Half> k(kHeads * kDim), v(kHeads * kDim);
      for (std::size_t t = 0; t < n; ++t) {
        for (auto& x : k) x = Half(dist(rng));
        for (auto& x : v) x = Half(dist(rng));
        caches[r].append(k, v);
      }
      queries.emplace_back(kHeads * kDim);
      for (auto& x : queries.back()) x = Half(dist(rng));
      out.emplace_back(kHeads * kDim, 0.0f);
    }
  }

  [[nodiscard]] std::vector<fc::DecodeWorkItem> items() {
    std::vector<fc::DecodeWorkItem> v;
    for (std::size_t r = 0; r < caches.size(); ++r) {
      for (std::size_t h = 0; h < kHeads; ++h) {
        v.push_back(fc::DecodeWorkItem{
            caches[r].slice(h),
            std::span<const Half>(queries[r]).subspan(h * kDim, kDim),
            std::span<float>(out[r]).subspan(h * kDim, kDim)});
      }
    }
    return v;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::json_path_from_args(argc, argv);
  bench::header("Batched fault-tolerant decode throughput (serving hot path)");
  std::printf("  heads=%zu dim=%zu contexts=%zu..%zu (ragged)  threads=%d\n",
              kHeads, kDim, std::size_t(350), std::size_t(512),
              omp_get_max_threads());

  // Single-request baseline: one request's heads decoded back to back.
  Fleet solo(1);
  const auto solo_items = solo.items();
  const double t1 = bench::time_best([&] {
    for (const auto& it : solo_items) {
      fc::efta_decode_step(it.kv, it.q, it.out);
    }
  });
  const double tok1 = 1.0 / t1;
  std::printf("\n  %-22s %10s %12s %10s %8s\n", "mode", "tokens/s", "slices",
              "time/tok", "speedup");
  std::printf("  %-22s %10.1f %12zu %9.2f ms %8s\n", "single-request loop",
              tok1, solo_items.size(), t1 * 1e3, "1.00x");

  std::size_t false_corrections = 0;
  bool any_mismatch = false;
  std::vector<std::size_t> batches;
  std::vector<double> batch_tokens_per_s;
  for (const std::size_t batch : {1u, 2u, 4u, 8u, 16u}) {
    Fleet fleet(batch);
    auto items = fleet.items();
    fa::FtReport rep;
    const double t = bench::time_best(
        [&] { rep = fc::efta_decode_batch(items); });
    false_corrections += rep.total_detected() + rep.total_corrected();

    // Cross-check: the batch must be bit-identical to the serial loop.
    Fleet ref(batch);
    auto ref_items = ref.items();
    for (const auto& it : ref_items) fc::efta_decode_step(it.kv, it.q, it.out);
    bool identical = true;
    for (std::size_t r = 0; r < batch && identical; ++r) {
      for (std::size_t c = 0; c < kHeads * kDim; ++c) {
        if (fleet.out[r][c] != ref.out[r][c]) {
          identical = false;
          break;
        }
      }
    }

    any_mismatch |= !identical;
    const double toks = static_cast<double>(batch) / t;
    batches.push_back(batch);
    batch_tokens_per_s.push_back(toks);
    std::printf("  batch %-16zu %10.1f %12zu %9.2f ms %7.2fx%s\n", batch,
                toks, items.size(), t / batch * 1e3, toks / tok1,
                identical ? "" : "  MISMATCH vs serial!");
  }

  std::printf("\n  false corrections across all clean runs: %zu%s\n",
              false_corrections,
              false_corrections == 0 ? " (expected 0)" : "  UNEXPECTED");
  bench::note("per-(request,head) slices parallelize across cores; single-");
  bench::note("thread runs show ~1x (the batch saves dispatch, not FLOPs).");

  bool json_ok = true;
  if (!json_path.empty()) {
    // Machine-readable mirror of the table above plus the flat gauges the
    // CI regression gate reads (see scripts/check_bench_regression.py).
    bench::JsonWriter w;
    w.begin_object();
    w.key("decode");
    w.begin_object();
    w.kv("threads", omp_get_max_threads());
    w.kv("heads", kHeads);
    w.kv("dim", kDim);
    w.kv("single_request_tokens_per_s", tok1);
    w.kv("false_corrections", false_corrections);
    w.kv("bit_identical_to_serial", !any_mismatch);
    w.key("batches");
    w.begin_array();
    for (std::size_t i = 0; i < batches.size(); ++i) {
      w.begin_object();
      w.kv("batch", batches[i]);
      w.kv("tokens_per_s", batch_tokens_per_s[i]);
      w.kv("speedup_vs_single", batch_tokens_per_s[i] / tok1);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    // Gauges are looked up by batch size, not position, so the batch list
    // above can change without silently re-aiming the CI regression gate.
    const auto at_batch = [&](std::size_t b) {
      for (std::size_t i = 0; i < batches.size(); ++i) {
        if (batches[i] == b) return batch_tokens_per_s[i];
      }
      return 0.0;  // a missing gauge fails the gate loudly
    };
    w.key("gauges");
    w.begin_object();
    w.kv("decode_tokens_per_s_batch8", at_batch(8));
    w.kv("decode_tokens_per_s_batch16", at_batch(16));
    w.kv("decode_speedup_batch8", at_batch(8) / tok1);
    w.end_object();
    w.end_object();
    json_ok = w.write_file(json_path);
  }
  return (false_corrections == 0 && !any_mismatch && json_ok) ? 0 : 1;
}
