// Batched protected-decode throughput: the serving-engine hot path.
//
// One token of one request is `heads` independent protected decode slices;
// a batch of R requests is R x heads slices that efta_decode_batch runs
// OpenMP-parallel.  This bench measures tokens/s of the serial per-request
// loop vs the batched path at growing batch sizes (plus a long-context
// fleet at ~2048 tokens, where the zero-copy/memoized-encoding hot path
// shows up directly), checks batch and serial produce bit-identical
// outputs, and reports marginal clean-run ABFT flags (threshold noise on
// per-token paths; self-healing, so reported rather than failed on).
// Speedup tracks the available cores: at >= 4 threads the batch-8 path is
// expected >= 3x the single-request loop.

#include <cstdio>
#include <random>
#include <span>
#include <vector>

#include <omp.h>

#include "bench_json.hpp"
#include "bench_util.hpp"
#include "core/decode.hpp"
#include "serve/kv_cache.hpp"
#include "serve/tile_pool.hpp"

namespace fa = ftt::attention;
namespace fc = ftt::core;
namespace fs = ftt::serve;
using ftt::numeric::Half;

namespace {

constexpr std::size_t kHeads = 8, kDim = 64;
// Heterogeneous, deliberately ragged context lengths (not multiples of 64).
constexpr std::size_t kContexts[] = {480, 500, 512, 390, 460, 512, 350, 420};
// Long-context fleet: where the per-tile wins (zero-copy reads, memoized
// checksum encodings, SIMD conversion) compound over 30+ tiles per slice.
constexpr std::size_t kLongContexts[] = {2048, 1900, 2016, 1731};

struct Fleet {
  std::vector<fs::KvCache> caches;
  std::vector<std::vector<Half>> queries;     // per request: heads*dim
  std::vector<std::vector<float>> out;        // per request: heads*dim

  explicit Fleet(std::size_t requests,
                 std::span<const std::size_t> contexts = kContexts,
                 bool kv_quant = false,
                 fc::ImagePolicy images = fc::ImagePolicy::kF16T) {
    std::mt19937_64 rng(42);
    std::normal_distribution<float> dist(0.0f, 1.0f);
    for (std::size_t r = 0; r < requests; ++r) {
      // Production configuration (the engine default): sealed tiles carry
      // the memoized encodings AND a pre-transposed fp16 image, so a clean
      // decode tick streams Half operands straight through the fused
      // fp16-operand kernels.  The int8 variant replaces the fp16 payload
      // and the image with a quantized block that is dequantized (SIMD)
      // once per tile — images are fp16-only, so the quantized fleet runs
      // with images off.
      caches.emplace_back(kHeads, kDim, ftt::abft::StridedAbft::kDefaultStride,
                          kv_quant ? fc::ImagePolicy::kNone : images,
                          kv_quant);
      const std::size_t n = contexts[r % contexts.size()];
      std::vector<Half> k(kHeads * kDim), v(kHeads * kDim);
      for (std::size_t t = 0; t < n; ++t) {
        for (auto& x : k) x = Half(dist(rng));
        for (auto& x : v) x = Half(dist(rng));
        caches[r].append(k, v);
      }
      queries.emplace_back(kHeads * kDim);
      for (auto& x : queries.back()) x = Half(dist(rng));
      out.emplace_back(kHeads * kDim, 0.0f);
    }
  }

  [[nodiscard]] std::vector<fc::DecodeWorkItem> items() {
    std::vector<fc::DecodeWorkItem> v;
    for (std::size_t r = 0; r < caches.size(); ++r) {
      for (std::size_t h = 0; h < kHeads; ++h) {
        v.push_back(fc::DecodeWorkItem{caches[r].slice(h),
                                       queries[r].data() + h * kDim,
                                       out[r].data() + h * kDim});
      }
    }
    return v;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::json_path_from_args(argc, argv);
  bench::header("Batched fault-tolerant decode throughput (serving hot path)");
  std::printf("  heads=%zu dim=%zu contexts=%zu..%zu (ragged)  threads=%d\n",
              kHeads, kDim, std::size_t(350), std::size_t(512),
              omp_get_max_threads());

  // Single-request baseline: one request's heads decoded back to back.
  Fleet solo(1);
  const auto solo_items = solo.items();
  const double t1 = bench::time_best([&] {
    for (const auto& it : solo_items) fc::efta_decode_block(it);
  });
  const double tok1 = 1.0 / t1;
  std::printf("\n  %-22s %10s %12s %10s %8s\n", "mode", "tokens/s", "slices",
              "time/tok", "speedup");
  std::printf("  %-22s %10.1f %12zu %9.2f ms %8s\n", "single-request loop",
              tok1, solo_items.size(), t1 * 1e3, "1.00x");

  std::size_t marginal_detections = 0;
  bool any_mismatch = false;
  std::vector<std::size_t> batches;
  std::vector<double> batch_tokens_per_s;
  for (const std::size_t batch : {1u, 2u, 4u, 8u, 16u}) {
    Fleet fleet(batch);
    auto items = fleet.items();
    fa::FtReport rep;
    const double t = bench::time_best(
        [&] { rep = fc::efta_decode_batch(items); });
    // Detections only: a self-healed flag is detected and then corrected,
    // and must count as one event, not two.
    marginal_detections += rep.total_detected();

    // Cross-check: the batch must be bit-identical to the serial loop.
    Fleet ref(batch);
    auto ref_items = ref.items();
    for (const auto& it : ref_items) fc::efta_decode_block(it);
    bool identical = true;
    for (std::size_t r = 0; r < batch && identical; ++r) {
      for (std::size_t c = 0; c < kHeads * kDim; ++c) {
        if (fleet.out[r][c] != ref.out[r][c]) {
          identical = false;
          break;
        }
      }
    }

    any_mismatch |= !identical;
    const double toks = static_cast<double>(batch) / t;
    batches.push_back(batch);
    batch_tokens_per_s.push_back(toks);
    std::printf("  batch %-16zu %10.1f %12zu %9.2f ms %7.2fx%s\n", batch,
                toks, items.size(), t / batch * 1e3, toks / tok1,
                identical ? "" : "  MISMATCH vs serial!");
  }

  // Long-context fleet: tokens/s per request falls with context (O(tiles)
  // work per token), so this is the config where the hot-path overhaul —
  // zero-copy tile reads + memoized per-tile checksum encodings + SIMD
  // fp16 conversion — shows up directly.
  constexpr std::size_t kLongBatch = 4;
  Fleet longf(kLongBatch, kLongContexts);
  auto long_items = longf.items();
  fa::FtReport long_rep;
  // Untimed warm-up: the fleet was just constructed, so the first pass pays
  // the cold-cache cost of ~50 MB of freshly sealed tiles.  Without it the
  // first timed config is systematically slower than the later ones and the
  // A/B deltas below are biased.
  (void)fc::efta_decode_batch(long_items);
  const double tlong = bench::time_best(
      [&] { long_rep = fc::efta_decode_batch(long_items); }, 5);
  const double long_toks = static_cast<double>(kLongBatch) / tlong;
  std::printf("  batch %zu @ ctx ~2048     %10.1f %12zu %9.2f ms\n",
              kLongBatch, long_toks, long_items.size(),
              tlong / kLongBatch * 1e3);

  // Same fleet with software prefetch disabled: isolates the per-tile-loop
  // prefetch hint (informational gauge — the delta is trajectory-tracked,
  // not gated, because it is hardware- and load-dependent).
  fc::EftaOptions no_pf;
  no_pf.prefetch = false;
  const double tlong_nopf = bench::time_best(
      [&] { fc::efta_decode_batch(long_items, no_pf); }, 5);
  const double prefetch_speedup = tlong_nopf / tlong;
  std::printf("  batch %zu @ ctx ~2048 (no prefetch) %10.1f tok/s  "
              "prefetch delta %.3fx\n",
              kLongBatch, static_cast<double>(kLongBatch) / tlong_nopf,
              prefetch_speedup);

  // Same fleet with the PR 7 widened-fp32 images instead of the fp16-
  // operand f16t images: the fp32 path streams 2x the K-side bytes per
  // tile, so at a memory-bound context the f16t tier should hold or beat
  // it (informational gauge; the gated floor is the absolute tokens/s).
  Fleet longf32(kLongBatch, kLongContexts, /*kv_quant=*/false,
                fc::ImagePolicy::kF32);
  auto longf32_items = longf32.items();
  (void)fc::efta_decode_batch(longf32_items);  // same warm-up, fresh fleet
  const double tlong_f32 = bench::time_best(
      [&] { fc::efta_decode_batch(longf32_items); }, 5);
  const double f16t_vs_f32_speedup = tlong_f32 / tlong;
  std::printf("  batch %zu @ ctx ~2048 (fp32 images) %10.1f tok/s  "
              "f16t speedup %.2fx\n",
              kLongBatch, static_cast<double>(kLongBatch) / tlong_f32,
              f16t_vs_f32_speedup);

  // Int8-quantized KV at the same long-context config: sealed tiles store
  // the payload as int8 (+ exact int32 checksums) instead of fp16 + fp32
  // image, so the decode loop streams ~1/6 the bytes per tile and widens
  // once per tile via the SIMD dequant kernel.  The batched path is
  // memory-bound at this context (PR 7), so bytes saved convert to tokens.
  Fleet longq(kLongBatch, kLongContexts, /*kv_quant=*/true);
  auto longq_items = longq.items();
  fa::FtReport longq_rep;
  (void)fc::efta_decode_batch(longq_items);  // same warm-up, fresh fleet
  const double tlongq = bench::time_best(
      [&] { longq_rep = fc::efta_decode_batch(longq_items); }, 5);
  const double longq_toks = static_cast<double>(kLongBatch) / tlongq;
  const double int8_speedup = longq_toks / long_toks;
  std::printf("  batch %zu @ ctx ~2048 (int8 KV)     %10.1f tok/s  "
              "speedup vs fp16 %.2fx\n",
              kLongBatch, longq_toks, int8_speedup);

  // Capacity: bytes per sealed context tile in each format and image
  // policy.  The int8 ratio keeps its original basis — fp16 + fp32 image,
  // the pre-f16t production configuration — so the gauge's trajectory stays
  // comparable across PRs.  The image ratio is the new default's sealed-
  // tile footprint over the bare fp16 slab: the kF16T layout carries only
  // the K-side operands in Half, so it must stay under 1.7x (vs 3x for
  // kF32), which is the capacity half of the fp16-operand tier's win.
  fs::TilePoolOptions popt;
  popt.layers = 2;
  popt.heads = kHeads;
  popt.dim = kDim;
  popt.capacity_tiles = 1;
  popt.images = fc::ImagePolicy::kF32;
  fs::TilePool pool(popt);
  const double capacity_ratio =
      static_cast<double>(pool.tile_bytes(fc::TileFmt::kF16)) /
      static_cast<double>(pool.tile_bytes(fc::TileFmt::kI8));
  std::printf("  int8 tile capacity ratio  %.2fx  (%zu B fp16+image vs %zu B "
              "int8)\n",
              capacity_ratio, pool.tile_bytes(fc::TileFmt::kF16),
              pool.tile_bytes(fc::TileFmt::kI8));
  popt.images = fc::ImagePolicy::kF16T;
  fs::TilePool pool_f16t(popt);
  popt.images = fc::ImagePolicy::kNone;
  fs::TilePool pool_bare(popt);
  const double image_bytes_ratio =
      static_cast<double>(pool_f16t.tile_bytes(fc::TileFmt::kF16)) /
      static_cast<double>(pool_bare.tile_bytes(fc::TileFmt::kF16));
  std::printf("  f16t image bytes ratio    %.3fx  (%zu B fp16+f16t vs %zu B "
              "bare; ceiling 1.7x)\n",
              image_bytes_ratio, pool_f16t.tile_bytes(fc::TileFmt::kF16),
              pool_bare.tile_bytes(fc::TileFmt::kF16));

  // Marginal ABFT flags on clean per-token runs are threshold noise at
  // per-token norms, self-healing by construction (checksum reconstruction
  // or revert): reported, not failed on.
  const std::size_t marginal_flags = marginal_detections +
                                     long_rep.total_detected() +
                                     longq_rep.total_detected();
  std::printf("\n  marginal ABFT flags across all clean runs: %zu%s\n",
              marginal_flags,
              marginal_flags == 0 ? " (typical 0)"
                                  : "  (threshold noise, self-healed)");
  bench::note("per-(request,head) slices parallelize across cores; single-");
  bench::note("thread runs show ~1x (the batch saves dispatch, not FLOPs).");

  bool json_ok = true;
  if (!json_path.empty()) {
    // Machine-readable mirror of the table above plus the flat gauges the
    // CI regression gate reads (see scripts/check_bench_regression.py).
    bench::JsonWriter w;
    w.begin_object();
    w.key("decode");
    w.begin_object();
    w.kv("threads", omp_get_max_threads());
    w.kv("heads", kHeads);
    w.kv("dim", kDim);
    w.kv("single_request_tokens_per_s", tok1);
    w.kv("long_context_batch", kLongBatch);
    w.kv("long_context_tokens_per_s", long_toks);
    w.kv("long_context_tokens_per_s_no_prefetch",
         static_cast<double>(kLongBatch) / tlong_nopf);
    w.kv("long_context_tokens_per_s_int8", longq_toks);
    w.kv("int8_tile_bytes", pool.tile_bytes(fc::TileFmt::kI8));
    w.kv("f16_tile_bytes", pool.tile_bytes(fc::TileFmt::kF16));
    w.kv("marginal_flags", marginal_flags);
    w.kv("bit_identical_to_serial", !any_mismatch);
    w.key("batches");
    w.begin_array();
    for (std::size_t i = 0; i < batches.size(); ++i) {
      w.begin_object();
      w.kv("batch", batches[i]);
      w.kv("tokens_per_s", batch_tokens_per_s[i]);
      w.kv("speedup_vs_single", batch_tokens_per_s[i] / tok1);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    // Gauges are looked up by batch size, not position, so the batch list
    // above can change without silently re-aiming the CI regression gate.
    const auto at_batch = [&](std::size_t b) {
      for (std::size_t i = 0; i < batches.size(); ++i) {
        if (batches[i] == b) return batch_tokens_per_s[i];
      }
      return 0.0;  // a missing gauge fails the gate loudly
    };
    w.key("gauges");
    w.begin_object();
    w.kv("decode_tokens_per_s_batch8", at_batch(8));
    w.kv("decode_tokens_per_s_batch16", at_batch(16));
    w.kv("decode_speedup_batch8", at_batch(8) / tok1);
    w.kv("decode_tokens_per_s_ctx2048_batch4", long_toks);
    // Gated: int8 tiles must keep both wins — bytes per tile (capacity at
    // fixed pool budget) and long-context decode throughput.
    w.kv("kv_int8_capacity_ratio", capacity_ratio);
    w.kv("kv_int8_ctx2048_speedup", int8_speedup);
    // Gated (upper limit): the default image policy's sealed-tile bytes
    // over the bare fp16 slab must stay under the 1.7x acceptance ceiling.
    w.kv("kv_image_bytes_ratio", image_bytes_ratio);
    // Informational: hardware-dependent deltas, trajectory-tracked.
    w.kv("decode_prefetch_ctx2048_speedup", prefetch_speedup);
    w.kv("decode_f16t_vs_f32_image_speedup", f16t_vs_f32_speedup);
    w.end_object();
    w.end_object();
    json_ok = w.write_file(json_path);
  }
  // Bit-identity batch-vs-serial is the hard invariant; marginal clean-run
  // flags are threshold noise on per-token (chunk = 1) paths and are
  // reported above rather than failed on.
  return (!any_mismatch && json_ok) ? 0 : 1;
}
