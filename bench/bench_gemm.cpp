// GEMM microkernel benchmark: scalar reference vs runtime SIMD dispatch.
//
// Every decode GEMM — the score, checksum and value products of a clean
// tick — lands in numeric::gemm_f32_nn (directly, or through the
// sim::gemm_f32_nt pack path).  This bench times the dispatching kernel
// against the always-compiled scalar reference on the decode-shaped
// workload (a query row against a 64-token tile, plus a square prefill-ish
// shape), cross-checks bit-identity on the bench buffers, and emits the
// gemm_simd_speedup CI gauge with --json.  On hosts without AVX2+FMA the
// dispatch IS the scalar path and the speedup reports ~1x — the baseline
// floor is the tripwire for a lost dispatch on CI runners, which all have
// AVX2.

#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "bench_util.hpp"
#include "numeric/fp16.hpp"
#include "numeric/gemm_simd.hpp"

namespace fn = ftt::numeric;
using fn::Half;

namespace {

/// fp16-valued fp32 operands: the precondition of the kernels' scalar
/// bitwise guarantee, and what the decode paths actually feed them.
std::vector<float> random_fp16_values(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  std::vector<float> f(n);
  for (auto& x : f) x = Half(dist(rng)).to_float();
  return f;
}

struct Case {
  const char* name;
  std::size_t M, K, N;
  int reps;  // inner repetitions per timed pass (small shapes need many)
};

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::json_path_from_args(argc, argv);
  bench::header("GEMM microkernel throughput (scalar vs SIMD dispatch)");
  std::printf("  simd dispatch: %s%s\n",
              fn::simd_gemm_active() ? "AVX2/FMA active"
                                     : "inactive (scalar fallback)",
              fn::simd_gemm_avx512_active() ? " + AVX-512" : "");

  // decode-tile: one query row vs a sealed 64-token tile (the per-tile
  // score/value shape).  block-64: a full 64-row query block (prefill
  // chunks, speculative blocks).  proj-256: a projection-sized slab.
  const Case cases[] = {{"decode-tile 1x64x64", 1, 64, 64, 4096},
                        {"block 64x64x64", 64, 64, 64, 256},
                        {"proj 64x256x256", 64, 256, 256, 16}};

  std::printf("\n  %-22s %12s %12s %9s\n", "shape", "scalar GF/s",
              "simd GF/s", "speedup");
  bool identical = true;
  double worst_speedup = 1e30;
  std::uint64_t seed = 1;
  for (const Case& c : cases) {
    const auto A = random_fp16_values(c.M * c.K, seed++);
    const auto B = random_fp16_values(c.K * c.N, seed++);
    std::vector<float> c_simd(c.M * c.N, 0.0f), c_ref(c.M * c.N, 0.0f);
    const double t_ref = bench::time_best([&] {
      for (int r = 0; r < c.reps; ++r) {
        fn::gemm_f32_nn_scalar(A.data(), c.M, c.K, B.data(), c.N,
                               c_ref.data(), c.N, false);
      }
    });
    const double t_simd = bench::time_best([&] {
      for (int r = 0; r < c.reps; ++r) {
        fn::gemm_f32_nn(A.data(), c.M, c.K, B.data(), c.N, c_simd.data(),
                        c.N, false);
      }
    });
    identical &= std::memcmp(c_simd.data(), c_ref.data(),
                             c.M * c.N * sizeof(float)) == 0;
    const double flops =
        2.0 * static_cast<double>(c.M * c.K * c.N) * c.reps / 1e9;
    const double speedup = t_ref / t_simd;
    if (speedup < worst_speedup) worst_speedup = speedup;
    std::printf("  %-22s %12.2f %12.2f %8.2fx%s\n", c.name, flops / t_ref,
                flops / t_simd, speedup,
                identical ? "" : "  MISMATCH vs scalar!");
  }

  // --- fp16-operand tier: halve the B-operand memory stream --------------
  // The decode hot loop streams sealed KV payload (Half) through
  // gemm_f32_nnh / axpy_f32_h instead of widening it to an fp32 image
  // first.  On streaming shapes — a query row against a B far larger than
  // cache, the long-context decode regime — the kernel is bandwidth-bound
  // and reading half-width B approaches a 2x win.  The gauge is the WORST
  // fp16-vs-fp32-dispatch speedup across the streaming shapes, gated at
  // 1.3 by the baseline: losing the fused tier (falling back to
  // widen-then-gemm, or a kernel regression that re-inflates the stream)
  // drops it to ~1x.  The cache-resident tile shape is printed for
  // reference but not gauged — at L1 residency the win is compute-bound
  // and hardware-dependent.
  std::printf("\n  fp16-operand tier: %s\n",
              fn::simd_gemm_f16c_active() ? "F16C active"
                                          : "inactive (scalar widen)");
  const Case hcases[] = {{"h-decode 1x8192x512", 1, 8192, 512, 4},
                         {"h-decode 1x16384x512", 1, 16384, 512, 2},
                         {"h-tile 1x64x64 (info)", 1, 64, 64, 4096}};
  constexpr std::size_t kGatedHCases = 2;  // the streaming shapes above
  std::printf("  %-22s %12s %12s %9s\n", "shape", "fp32-B GF/s",
              "fp16-B GF/s", "speedup");
  bool h_identical = true;
  double fp16_speedup = 1e30;
  for (std::size_t ci = 0; ci < std::size(hcases); ++ci) {
    const Case& c = hcases[ci];
    const auto A = random_fp16_values(c.M * c.K, seed++);
    const auto Bf = random_fp16_values(c.K * c.N, seed++);
    std::vector<Half> Bh(c.K * c.N);
    for (std::size_t i = 0; i < Bh.size(); ++i) Bh[i] = Half(Bf[i]);
    std::vector<float> c_h(c.M * c.N, 0.0f), c_f(c.M * c.N, 0.0f);
    const double t_f32 = bench::time_best([&] {
      for (int r = 0; r < c.reps; ++r) {
        fn::gemm_f32_nn(A.data(), c.M, c.K, Bf.data(), c.N, c_f.data(), c.N,
                        false);
      }
    });
    const double t_f16 = bench::time_best([&] {
      for (int r = 0; r < c.reps; ++r) {
        fn::gemm_f32_nnh(A.data(), c.M, c.K, Bh.data(), c.N, c_h.data(), c.N,
                         false);
      }
    });
    // Bf holds fp16-valued fp32, so widening Bh reproduces it exactly and
    // both kernels must agree bitwise.
    h_identical &= std::memcmp(c_h.data(), c_f.data(),
                               c.M * c.N * sizeof(float)) == 0;
    const double flops =
        2.0 * static_cast<double>(c.M * c.K * c.N) * c.reps / 1e9;
    const double speedup = t_f32 / t_f16;
    if (ci < kGatedHCases && speedup < fp16_speedup) fp16_speedup = speedup;
    std::printf("  %-22s %12.2f %12.2f %8.2fx%s\n", c.name, flops / t_f32,
                flops / t_f16, speedup,
                h_identical ? "" : "  MISMATCH vs fp32 dispatch!");
  }
  identical &= h_identical;

  bool json_ok = true;
  if (!json_path.empty()) {
    bench::JsonWriter w;
    w.begin_object();
    w.key("gemm");
    w.begin_object();
    w.kv("simd_active", fn::simd_gemm_active());
    w.kv("avx512_active", fn::simd_gemm_avx512_active());
    w.kv("f16c_active", fn::simd_gemm_f16c_active());
    w.kv("bit_identical_to_scalar", identical);
    w.end_object();
    // Both gauges are the WORST speedup across their shapes: a lost
    // dispatch (or a microkernel regressed below its comparison path on
    // any shape) drops the gauge to ~1x and trips the baseline floor on
    // AVX2-capable CI runners.
    w.key("gauges");
    w.begin_object();
    w.kv("gemm_simd_speedup", worst_speedup);
    w.kv("fp16_gemm_speedup", fp16_speedup);
    w.end_object();
    w.end_object();
    json_ok = w.write_file(json_path);
  }
  // Bit-identity is the hard invariant here, exactly as in the test suite
  // (tests/test_gemm_simd.cpp carries the exhaustive shapes).
  return (identical && json_ok) ? 0 : 1;
}
