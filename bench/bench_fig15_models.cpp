// Figure 15: error detection and correction overhead of optimized EFTA on
// GPT2, BERT-Base, BERT-Large and T5-Small (input length 512, one forward
// pass = one generated token).
//
// Paper shape: per-token times ~5.6 ms (GPT2) growing with model size;
// detection overhead 3.9-5.8% (avg 4.7%), correction overhead 7.6-11.3%
// (avg 9.1%) when one bit flip is injected per attention computation.
// Modeled times at paper scale; a real reduced-scale protected forward with
// injected flips validates the detection/correction machinery end to end.

#include "bench_util.hpp"
#include "fault/fault.hpp"
#include "transformer/model.hpp"

namespace ftx = ftt::transformer;
namespace ff = ftt::fault;
namespace ft = ftt::tensor;

namespace {

void modeled_overheads() {
  const auto m = bench::machine();
  std::printf("\nFault tolerance overhead on Transformer models (seq=512)\n");
  std::printf("%-12s %12s %12s %12s\n", "model", "orig(ms)", "detect-ovh",
              "correct-ovh");
  double det_sum = 0.0, cor_sum = 0.0;
  const auto configs = {ftx::ModelConfig::gpt2(), ftx::ModelConfig::bert_base(),
                        ftx::ModelConfig::bert_large(),
                        ftx::ModelConfig::t5_small()};
  for (const auto& cfg : configs) {
    const ftx::Model model(cfg);
    const double base =
        m.seconds(model.costs(512, ftx::AttentionKind::kFlash));
    const double with_det =
        m.seconds(model.costs(512, ftx::AttentionKind::kFlash) +
                  model.detection_overhead_costs(512));
    const double with_cor =
        m.seconds(model.costs(512, ftx::AttentionKind::kFlash) +
                  model.correction_overhead_costs(512));
    const double det = (with_det - base) / base;
    const double cor = (with_cor - base) / base;
    det_sum += det;
    cor_sum += cor;
    std::printf("%-12s %12.3f %11.1f%% %11.1f%%\n", cfg.name.c_str(),
                base * 1e3, 100.0 * det, 100.0 * cor);
  }
  std::printf("averages: detection %.1f%%, correction %.1f%% "
              "(paper: 4.7%% / 9.1%%)\n",
              100.0 * det_sum / 4, 100.0 * cor_sum / 4);
}

void measured_protected_forward() {
  // Real protected forward on the Tiny config: inject one flip per run and
  // confirm the stack detects/corrects it while staying near the clean run.
  const ftx::Model model(ftx::ModelConfig::tiny());
  ft::MatrixF base(128, 128);
  ft::fill_normal(base, 77);
  ft::MatrixF ref = base;
  model.forward(ref, ftx::AttentionKind::kEftaOptimized, true);

  int corrected_runs = 0;
  const int n = 6;
  const ff::Site sites[] = {ff::Site::kGemm1, ff::Site::kGemm2,
                            ff::Site::kExp,   ff::Site::kLinear,
                            ff::Site::kGemm1, ff::Site::kGemm2};
  double t_clean = 0.0, t_faulty = 0.0;
  for (int i = 0; i < n; ++i) {
    ft::MatrixF x = base;
    t_clean += bench::time_once([&] {
      ft::MatrixF y = base;
      model.forward(y, ftx::AttentionKind::kEftaOptimized, true);
    });
    auto inj = ff::FaultInjector::single(sites[i], 1000 + 531 * i, 30);
    t_faulty += bench::time_once(
        [&] { model.forward(x, ftx::AttentionKind::kEftaOptimized, true, &inj); });
    float worst = 0.0f;
    for (std::size_t k = 0; k < x.size(); ++k) {
      worst = std::max(worst, std::fabs(x.data()[k] - ref.data()[k]) /
                                  (std::fabs(ref.data()[k]) + 0.1f));
    }
    if (worst < 0.05f) ++corrected_runs;
  }
  bench::note("measured Tiny-model protected forwards with 1 flip each:");
  std::printf("  %d/%d runs within 5%% of the clean output; "
              "faulty/clean time ratio %.3f\n",
              corrected_runs, n, t_faulty / t_clean);
}

}  // namespace

int main() {
  bench::header("Figure 15 — EFTA on GPT2 / BERT-Base / BERT-Large / T5-Small");
  modeled_overheads();
  measured_protected_forward();
  return 0;
}
