// Table 2: EFTA vs optimized EFTA for the large-model attention setting
// (head=32, dim=128).  See bench_table1_unified.cpp for the methodology.
//
// Paper shape: average overhead drops from ~22.7% to ~12.5%; optimized EFTA
// is on average 3.69x faster than the decoupled baseline.

#include "attention/decoupled_ft.hpp"
#include "bench_util.hpp"
#include "core/efta.hpp"

namespace fa = ftt::attention;
namespace fc = ftt::core;

int main() {
  bench::header("Table 2 — EFTA vs optimized EFTA (head=32, dim=128)");
  const auto m = bench::machine();
  fc::EftaOptions per_step, unified;
  per_step.unified_verification = false;
  unified.unified_verification = true;

  std::printf("%-6s %10s %9s %12s %9s %12s\n", "Length", "EFTA(ms)",
              "Overhead", "EFTA-o(ms)", "Overhead", "vs-decoup");
  double sum_dec = 0.0, sum_ovh_ps = 0.0, sum_ovh_u = 0.0;
  int n = 0;
  for (const std::size_t seq : bench::kPaperSeqs) {
    const auto shape = fa::paper_shape(seq, 32, 128);
    const double base = m.seconds(fa::flash_attention_costs(shape));
    const double t_ps = m.seconds(fc::efta_costs(shape, per_step));
    const double t_u = m.seconds(fc::efta_costs(shape, unified));
    const bool oom = !m.fits(fa::decoupled_workspace_bytes(shape));
    sum_ovh_ps += (t_ps - base) / base;
    sum_ovh_u += (t_u - base) / base;
    char decbuf[32];
    if (oom) {
      std::snprintf(decbuf, sizeof decbuf, "OOM");
    } else {
      const double t_dec = m.seconds(fa::decoupled_ft_costs(shape));
      sum_dec += t_dec / t_u;
      ++n;
      std::snprintf(decbuf, sizeof decbuf, "%.2fx", t_dec / t_u);
    }
    std::printf("%-6s %10.3f %8.1f%% %12.3f %8.1f%% %12s\n",
                bench::seq_label(seq).c_str(), t_ps * 1e3,
                100.0 * (t_ps - base) / base, t_u * 1e3,
                100.0 * (t_u - base) / base, decbuf);
  }
  const int total = static_cast<int>(std::size(bench::kPaperSeqs));
  std::printf(
      "averages: overhead %.1f%% -> %.1f%%, vs decoupled %.2fx "
      "(paper: 22.7%% -> 12.5%%, 3.69x)\n",
      100.0 * sum_ovh_ps / total, 100.0 * sum_ovh_u / total, sum_dec / n);
  return 0;
}
