// Continuous-batching scheduler under mixed prefill/decode traffic.
//
// A fleet of requests with ragged prompt lengths and per-request generation
// budgets streams through one DecodeEngine: long prompts prefill in 64-row
// causal chunks while earlier requests decode in the same ticks, and retired
// requests free their KV tiles for the admission queue.  The bench measures
//
//   * end-to-end makespan and total tokens/s of the mixed workload,
//   * average prefill-chunk latency at growing context (the cost step (b)
//     adds to a tick), measured on a standalone long prompt,
//   * the chunked-prefill speedup over serial token-by-token prefill
//     (prefill_chunk_rows = 1), a machine-robust ratio: both runs do the
//     same attention FLOPs, chunking amortizes tile loads and checksum
//     encodes and batches rows through the shared linears,
//   * average batch occupancy per tick (how full the scheduler keeps the
//     engine),
//   * the shared-prefix win: N requests over one long common prompt, run
//     with prefix sharing on vs off.  Sharing attaches the sealed prompt
//     tiles (and their ABFT memos) from the pool instead of recomputing
//     them, so the gauge pair is wall-clock speedup and the effective-
//     context capacity ratio (peak pool tiles unshared / shared),
//   * the speculative-decode win on a repetitive-suffix workload: a fleet
//     whose generated stream repeats exactly (final-LN gamma = 0 — every
//     layer still computes in full, but the read-out row is constant, the
//     bitwise-sharpest form of templated/self-quoting output), decoded
//     with the default prompt-lookup drafter at spec_tokens = 4 vs the
//     serial engine, timing the decode phase only (prefill is identical
//     in both configurations).  Gauges: spec_decode_speedup (same tokens,
//     fewer block passes — KV tile loads, widenings and checksum work
//     amortize over the accepted block) and spec_acceptance_rate,
//   * the shard-parallel and replica-routed configurations on the same
//     mixed fleet: a 2-shard engine (heads split across worker threads,
//     deterministic combine — bit-identical to solo, so traffic totals
//     must match exactly) and a 2-replica router.  Their speedup gauges
//     (shard_parallel_speedup, router_replica_speedup) are thread- and
//     core-count bound, so CI gates them informationally (must be
//     emitted, value not gated),
//   * the recovery-ladder chaos config: the mixed fleet with one random
//     bit-30 transient injected per tick and tick retry armed, vs an
//     injection-free twin.  Gauges: recovery_overhead (chaos / clean
//     makespan — the cost of re-running faulty ticks) and
//     recovered_bitwise_clean_rate (requests ending bitwise-equal to the
//     clean twin; the chaos suite gates this at 1.0, the bench reports
//     it informationally).
//
// With --json <path> it also emits the machine-readable section the CI perf
// job merges into BENCH_serve.json and gates on.

#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include <omp.h>

#include "bench_json.hpp"
#include "bench_util.hpp"
#include "core/efta.hpp"
#include "fault/fault.hpp"
#include "serve/engine.hpp"
#include "serve/router.hpp"
#include "tensor/random.hpp"
#include "transformer/model.hpp"

namespace fs = ftt::serve;
namespace fx = ftt::transformer;
using ftt::tensor::MatrixF;

namespace {

// Ragged prompts and budgets, deliberately mixing one-chunk and multi-chunk
// prefills with short interactive requests.
constexpr std::size_t kPrompts[] = {256, 33, 128, 64, 200, 17, 96, 150};
constexpr std::size_t kBudgets[] = {16, 24, 8, 32, 12, 40, 16, 8};
constexpr std::size_t kRequests = 16;

fx::Model make_model() {
  fx::ModelConfig cfg = fx::ModelConfig::tiny();
  cfg.causal = true;
  return fx::Model(cfg, 0x5eed);
}

struct MixedRun {
  double seconds = 0.0;
  std::size_t ticks = 0;
  fs::DecodeEngine::StepStats stats;
  double occupancy = 0.0;  // mean admitted requests per non-idle tick
};

MixedRun run_mixed_opt(const fx::Model& model, const fs::EngineOptions& opt) {
  fs::DecodeEngine engine(model, opt);
  const std::size_t hidden = model.config().hidden;

  std::vector<MatrixF> prompts;
  for (std::size_t i = 0; i < kRequests; ++i) {
    prompts.emplace_back(kPrompts[i % std::size(kPrompts)], hidden);
    ftt::tensor::fill_normal(prompts.back(), 0xbead + i);
  }

  MixedRun run;
  std::size_t occupied_ticks = 0, occupancy_sum = 0;
  run.seconds = bench::time_once([&] {
    for (std::size_t i = 0; i < kRequests; ++i) {
      engine.submit(prompts[i], kBudgets[i % std::size(kBudgets)]);
    }
    while (engine.queued() != 0 || engine.active() != 0) {
      run.stats += engine.step();
      ++run.ticks;
      if (engine.active() != 0) {
        ++occupied_ticks;
        occupancy_sum += engine.active();
      }
    }
  });
  run.occupancy = occupied_ticks == 0
                      ? 0.0
                      : static_cast<double>(occupancy_sum) /
                            static_cast<double>(occupied_ticks);
  return run;
}

MixedRun run_mixed(const fx::Model& model, std::size_t chunk_rows,
                   std::size_t max_batch) {
  fs::EngineOptions opt;
  opt.prefill_chunk_rows = chunk_rows;
  opt.scheduler.max_batch_size = max_batch;
  return run_mixed_opt(model, opt);
}

// Same mixed fleet through a replica Router: requests spread across M
// engines (sticky prefix + least-loaded), one merged StepStats per tick.
MixedRun run_routed(const fx::Model& model, std::size_t replicas) {
  fs::RouterOptions opt;
  opt.replicas = replicas;
  opt.engine.scheduler.max_batch_size = 8;
  fs::Router router(model, opt);
  const std::size_t hidden = model.config().hidden;

  std::vector<MatrixF> prompts;
  for (std::size_t i = 0; i < kRequests; ++i) {
    prompts.emplace_back(kPrompts[i % std::size(kPrompts)], hidden);
    ftt::tensor::fill_normal(prompts.back(), 0xbead + i);
  }

  MixedRun run;
  run.seconds = bench::time_once([&] {
    for (std::size_t i = 0; i < kRequests; ++i) {
      router.submit(prompts[i], kBudgets[i % std::size(kBudgets)]);
    }
    while (router.queued() != 0 || router.active() != 0) {
      run.stats += router.step();
      ++run.ticks;
    }
  });
  return run;
}

// Recovery-ladder chaos config: the same mixed fleet with one random
// (site, call, bit-30) transient injected per tick and tick retry armed,
// against an injection-free twin.  Two gauges fall out: the makespan
// overhead of re-running faulty ticks, and the fraction of requests whose
// final hidden state is bitwise-equal to the clean twin's — the serving
// guarantee tests/test_recovery.cpp gates (here reported, not gated).
struct RecoveryRun {
  double seconds = 0.0;
  std::size_t ticks = 0;
  fs::DecodeEngine::StepStats stats;
  std::vector<std::vector<float>> hidden;  // per request, submit order
};

RecoveryRun run_recovery(const fx::Model& model, bool inject) {
  fs::EngineOptions opt;
  opt.prefill_chunk_rows = 64;
  opt.scheduler.max_batch_size = 8;
  // Loosened detection thresholds, exactly as tests/test_recovery.cpp: the
  // tiny model's clean runs must stay detection-free or the retry trigger
  // would spin on deterministic threshold noise.
  opt.efta.abft_rel_threshold = 0.08f;
  opt.efta.exp_log_threshold = 0.3f;
  opt.efta.snvr_slack = 1e-2f;
  if (inject) opt.recovery.max_tick_retries = 2;
  fs::DecodeEngine engine(model, opt);
  const std::size_t hidden = model.config().hidden;

  std::vector<MatrixF> prompts;
  for (std::size_t i = 0; i < kRequests; ++i) {
    prompts.emplace_back(kPrompts[i % std::size(kPrompts)], hidden);
    ftt::tensor::fill_normal(prompts.back(), 0xbead + i);
  }

  constexpr ftt::fault::Site kSites[] = {ftt::fault::Site::kGemm1,
                                         ftt::fault::Site::kGemm2,
                                         ftt::fault::Site::kExp};
  std::mt19937_64 rng(0xc0ffee);
  RecoveryRun run;
  run.seconds = bench::time_once([&] {
    for (std::size_t i = 0; i < kRequests; ++i) {
      engine.submit(prompts[i], kBudgets[i % std::size(kBudgets)]);
    }
    while (engine.queued() != 0 || engine.active() != 0) {
      if (inject) {
        auto inj = ftt::fault::FaultInjector::single(
            kSites[rng() % std::size(kSites)], rng() % 400, 30);
        run.stats += engine.step(&inj);
      } else {
        run.stats += engine.step();
      }
      ++run.ticks;
    }
  });
  for (std::size_t i = 0; i < kRequests; ++i) {
    const auto h = engine.hidden(i);
    run.hidden.emplace_back(h.begin(), h.end());
  }
  return run;
}

// Shared-prefix workload: one 257-row common prompt ((257-1)/64 = 4
// shareable sealed tiles), a leader that computes + publishes it, then 11
// followers that either attach it from the pool (share = true) or recompute
// it per request (share = false).  Everything else — budgets, batch cap,
// tick schedule — is identical across the two runs.
constexpr std::size_t kCommonRows = 257;
constexpr std::size_t kFollowers = 11;
constexpr std::size_t kSharedBudget = 16;

struct SharedRun {
  double seconds = 0.0;
  std::size_t peak_tiles = 0;
  fs::DecodeEngine::StepStats stats;
};

SharedRun run_shared_prefix(const fx::Model& model, bool share) {
  fs::EngineOptions opt;
  opt.share_prefix = share;
  opt.scheduler.max_batch_size = 8;
  fs::DecodeEngine engine(model, opt);

  MatrixF prompt(kCommonRows, model.config().hidden);
  ftt::tensor::fill_normal(prompt, 0xcafe);

  SharedRun run;
  run.seconds = bench::time_once([&] {
    const auto leader = engine.submit(prompt, kSharedBudget);
    // Let the leader finish prefilling (sealing + publishing the prefix)
    // before the followers arrive — the warm-cache steady state a serving
    // fleet lives in.
    while (engine.state(leader) == fs::RequestState::kQueued ||
           engine.state(leader) == fs::RequestState::kPrefilling) {
      run.stats += engine.step();
    }
    for (std::size_t i = 0; i < kFollowers; ++i) {
      engine.submit(prompt, kSharedBudget);
    }
    while (engine.queued() != 0 || engine.active() != 0) {
      run.stats += engine.step();
      run.peak_tiles = std::max(run.peak_tiles, engine.kv_tiles_in_use());
    }
  });
  return run;
}

// Speculative decode on a repetitive-suffix fleet: random prompts, but a
// read-out head (final-LN gamma = 0, nonzero beta) that makes the generated
// stream exactly periodic — the regime prompt-lookup drafting is built for.
// Both runs decode the same tokens; only the number of verified block
// passes differs.
constexpr std::size_t kSpecRequests = 6;
constexpr std::size_t kSpecPrompt = 256;
constexpr std::size_t kSpecBudget = 64;
constexpr std::size_t kSpecTokens = 4;

fx::Model make_spec_model() {
  fx::ModelConfig cfg = fx::ModelConfig::tiny();
  cfg.causal = true;
  fx::Model model(cfg, 0x5eed);
  auto& gamma = model.final_ln().gamma();
  auto& beta = model.final_ln().beta();
  for (std::size_t c = 0; c < gamma.size(); ++c) {
    gamma[c] = 0.0f;
    beta[c] = 0.25f + 0.001f * static_cast<float>(c);
  }
  return model;
}

struct SpecRun {
  double seconds = 0.0;
  std::size_t ticks = 0;
  fs::DecodeEngine::StepStats stats;
};

SpecRun run_spec(const fx::Model& model, std::size_t spec_tokens) {
  fs::EngineOptions opt;
  opt.spec_tokens = spec_tokens;
  opt.scheduler.max_batch_size = 8;
  fs::DecodeEngine engine(model, opt);
  const std::size_t hidden = model.config().hidden;

  std::vector<MatrixF> prompts;
  std::vector<fs::DecodeEngine::RequestId> ids;
  for (std::size_t i = 0; i < kSpecRequests; ++i) {
    prompts.emplace_back(kSpecPrompt, hidden);
    ftt::tensor::fill_normal(prompts.back(), 0x5bec + i);
    ids.push_back(engine.submit(prompts.back(), kSpecBudget));
  }
  // Absorb every prompt outside the timed window: prefill is identical in
  // both configurations, and spec_decode_speedup is a *decode* gauge.
  bool prefilling = true;
  while (prefilling) {
    engine.step();
    prefilling = false;
    for (const auto id : ids) {
      prefilling |= engine.state(id) != fs::RequestState::kDecoding;
    }
  }
  SpecRun run;
  run.seconds = bench::time_once([&] {
    while (engine.queued() != 0 || engine.active() != 0) {
      run.stats += engine.step();
      ++run.ticks;
    }
  });
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::json_path_from_args(argc, argv);
  bench::header("Continuous-batching scheduler (mixed prefill/decode)");
  const fx::Model model = make_model();
  std::printf("  model=%s  requests=%zu  threads=%d\n",
              model.config().name.c_str(), kRequests, omp_get_max_threads());

  // --- standalone prefill-chunk latency at growing context ---------------
  const std::size_t kLongPrompt = 256;
  fs::DecodeEngine pre(model);
  MatrixF long_prompt(kLongPrompt, model.config().hidden);
  ftt::tensor::fill_normal(long_prompt, 0xfeed);
  pre.submit(long_prompt, 1);
  std::vector<double> chunk_ms;
  std::printf("\n  %-28s %12s %12s\n", "prefill chunk", "latency",
              "modeled flops");
  while (pre.active() != 0 || pre.queued() != 0) {
    fs::DecodeEngine::StepStats st;
    const double t = bench::time_once([&] { st = pre.step(); });
    if (st.prefill_chunks == 0) break;  // prompt absorbed; decode from here
    chunk_ms.push_back(t * 1e3);
    const auto costs = ftt::core::efta_decode_block_costs(
        st.prefill_rows + (chunk_ms.size() - 1) * 64, st.prefill_rows,
        model.config().head_dim(), fs::EngineOptions{}.efta);
    std::printf("  rows %3zu @ context %4zu      %9.2f ms %12.0f\n",
                st.prefill_rows, chunk_ms.size() * 64,
                chunk_ms.back(), costs.total().tc_flops);
  }
  double chunk_ms_avg = 0.0;
  for (const double v : chunk_ms) chunk_ms_avg += v;
  chunk_ms_avg /= chunk_ms.empty() ? 1.0 : static_cast<double>(chunk_ms.size());

  // --- mixed traffic: chunked vs token-by-token prefill ------------------
  const MixedRun chunked = run_mixed(model, 64, 8);
  const MixedRun serial = run_mixed(model, 1, 8);
  const auto tok = [](const MixedRun& r) {
    return static_cast<double>(r.stats.active) / r.seconds;
  };
  const double speedup = chunked.seconds > 0.0 ? serial.seconds / chunked.seconds
                                               : 0.0;
  std::printf("\n  %-26s %10s %8s %12s %10s\n", "mode", "tokens/s", "ticks",
              "makespan", "occupancy");
  std::printf("  %-26s %10.1f %8zu %9.2f ms %10.2f\n",
              "chunked prefill (64-row)", tok(chunked), chunked.ticks,
              chunked.seconds * 1e3, chunked.occupancy);
  std::printf("  %-26s %10.1f %8zu %9.2f ms %10.2f\n",
              "token-by-token prefill", tok(serial), serial.ticks,
              serial.seconds * 1e3, serial.occupancy);
  std::printf("  chunked-prefill speedup: %.2fx  (avg chunk latency %.2f ms)\n",
              speedup, chunk_ms_avg);

  // Sanity: identical traffic totals regardless of chunking.  Marginal
  // clean-run ABFT flags are threshold noise at per-token norms (both runs
  // decode token by token, chunk = 1, after prefill); they are self-healing
  // (checksum reconstruction or revert) and are reported, not failed on.
  bool ok = chunked.stats.prefill_rows == serial.stats.prefill_rows &&
            chunked.stats.decoded == serial.stats.decoded &&
            chunked.stats.retired == kRequests;
  if (!ok) std::printf("  UNEXPECTED: traffic totals diverged\n");
  const std::size_t noise = chunked.stats.attention.total_detected() +
                            serial.stats.attention.total_detected();
  if (noise != 0) {
    std::printf("  note: %zu marginal flag(s) across the two runs "
                "(threshold noise at per-token norms)\n",
                noise);
  }

  // --- shared-prefix throughput + capacity -------------------------------
  const SharedRun shared = run_shared_prefix(model, true);
  const SharedRun unshared = run_shared_prefix(model, false);
  const double shared_speedup =
      shared.seconds > 0.0 ? unshared.seconds / shared.seconds : 0.0;
  const double capacity_ratio =
      shared.peak_tiles > 0
          ? static_cast<double>(unshared.peak_tiles) /
                static_cast<double>(shared.peak_tiles)
          : 0.0;
  std::printf("\n  shared-prefix workload (%zu requests, one %zu-row prompt)\n",
              kFollowers + 1, kCommonRows);
  std::printf("  %-26s %12s %12s %12s\n", "mode", "makespan", "peak tiles",
              "prefill rows");
  std::printf("  %-26s %9.2f ms %12zu %12zu\n", "prefix sharing on",
              shared.seconds * 1e3, shared.peak_tiles,
              shared.stats.prefill_rows);
  std::printf("  %-26s %9.2f ms %12zu %12zu\n", "prefix sharing off",
              unshared.seconds * 1e3, unshared.peak_tiles,
              unshared.stats.prefill_rows);
  std::printf("  shared-prefix speedup: %.2fx   capacity ratio: %.2fx "
              "(%zu tiles attached, not computed)\n",
              shared_speedup, capacity_ratio, shared.stats.shared_tiles);
  // Same traffic, same generated tokens; only the prefix compute differs.
  ok = ok && shared.stats.decoded == unshared.stats.decoded &&
       shared.stats.shared_tiles > 0 && unshared.stats.shared_tiles == 0;
  if (shared.stats.decoded != unshared.stats.decoded) {
    std::printf("  UNEXPECTED: shared/unshared decode totals diverged\n");
  }

  // --- speculative decode on the repetitive-suffix fleet ------------------
  const fx::Model spec_model = make_spec_model();
  const SpecRun spec = run_spec(spec_model, kSpecTokens);
  const SpecRun spec_serial = run_spec(spec_model, 0);
  const double spec_speedup =
      spec.seconds > 0.0 ? spec_serial.seconds / spec.seconds : 0.0;
  const double acceptance =
      spec.stats.spec_proposed > 0
          ? static_cast<double>(spec.stats.spec_accepted) /
                static_cast<double>(spec.stats.spec_proposed)
          : 0.0;
  std::printf("\n  speculative decode (%zu requests, %zu-row prompts, "
              "budget %zu, repetitive suffix)\n",
              kSpecRequests, kSpecPrompt, kSpecBudget);
  std::printf("  %-26s %12s %8s %12s\n", "mode", "makespan", "ticks",
              "decoded");
  std::printf("  %-26s %9.2f ms %8zu %12zu\n", "speculative (k=4)",
              spec.seconds * 1e3, spec.ticks, spec.stats.decoded);
  std::printf("  %-26s %9.2f ms %8zu %12zu\n", "serial (q_len=1)",
              spec_serial.seconds * 1e3, spec_serial.ticks,
              spec_serial.stats.decoded);
  std::printf("  spec-decode speedup: %.2fx   acceptance: %.0f%% "
              "(%zu/%zu drafts, %zu rejected)\n",
              spec_speedup, acceptance * 100.0, spec.stats.spec_accepted,
              spec.stats.spec_proposed, spec.stats.spec_rejected);
  // Same committed tokens either way — speculation may only change speed.
  ok = ok && spec.stats.decoded == spec_serial.stats.decoded &&
       spec.stats.decoded == kSpecRequests * kSpecBudget &&
       spec.stats.spec_accepted > 0;
  if (spec.stats.decoded != spec_serial.stats.decoded) {
    std::printf("  UNEXPECTED: speculative/serial decode totals diverged\n");
  }

  // --- shard-parallel engine + replica router ----------------------------
  // Same mixed fleet as the chunked run, once through a 2-shard engine
  // (heads split across worker threads, deterministic combine) and once
  // through a 2-replica router.  The sharded run is bit-identical to solo
  // by construction, so its traffic totals must match exactly; the speedups
  // are honest wall-clock ratios but hardware-bound (≈1x or below on a
  // single-core runner), hence gated informationally, not by value.
  fs::EngineOptions shard_opt;
  shard_opt.prefill_chunk_rows = 64;
  shard_opt.scheduler.max_batch_size = 8;
  shard_opt.shards = 2;
  const MixedRun sharded = run_mixed_opt(model, shard_opt);
  const MixedRun routed = run_routed(model, 2);
  const double shard_speedup =
      sharded.seconds > 0.0 ? chunked.seconds / sharded.seconds : 0.0;
  const double router_speedup =
      routed.seconds > 0.0 ? chunked.seconds / routed.seconds : 0.0;
  std::printf("\n  shard-parallel / routed serving (same %zu-request fleet)\n",
              kRequests);
  std::printf("  %-26s %12s %8s %12s\n", "mode", "makespan", "ticks",
              "decoded");
  std::printf("  %-26s %9.2f ms %8zu %12zu\n", "solo engine",
              chunked.seconds * 1e3, chunked.ticks, chunked.stats.decoded);
  std::printf("  %-26s %9.2f ms %8zu %12zu\n", "2-shard engine",
              sharded.seconds * 1e3, sharded.ticks, sharded.stats.decoded);
  std::printf("  %-26s %9.2f ms %8zu %12zu\n", "2-replica router",
              routed.seconds * 1e3, routed.ticks, routed.stats.decoded);
  std::printf("  shard speedup: %.2fx   router speedup: %.2fx "
              "(informational: thread/replica-count bound)\n",
              shard_speedup, router_speedup);
  // Sharding is bit-reproducible: every traffic counter must match solo.
  // Routing changes placement (so ticks/preemptions may differ) but never
  // the per-request budgets, so decoded totals still match.
  ok = ok && sharded.stats.decoded == chunked.stats.decoded &&
       sharded.stats.prefill_rows == chunked.stats.prefill_rows &&
       sharded.stats.retired == kRequests &&
       routed.stats.decoded == chunked.stats.decoded &&
       routed.stats.retired == kRequests;
  if (sharded.stats.decoded != chunked.stats.decoded ||
      routed.stats.decoded != chunked.stats.decoded) {
    std::printf("  UNEXPECTED: sharded/routed decode totals diverged\n");
  }

  // --- OMP team scaling: the same mixed fleet at 1/2/4 threads -----------
  // Memory-stream headroom probe for the fp16-operand decode path: once the
  // kernels stream half-width operands, decode should scale further with
  // cores before hitting the bandwidth wall.  The ratios are hardware-bound
  // (≈1x on a single-core CI runner), so they are informational gauges —
  // emitted always, never value-gated.  Traffic totals must still match
  // exactly across team sizes: threading may only change speed.
  const int team_sizes[] = {1, 2, 4};
  const int max_threads = omp_get_max_threads();
  MixedRun team_runs[std::size(team_sizes)];
  for (std::size_t i = 0; i < std::size(team_sizes); ++i) {
    omp_set_num_threads(team_sizes[i]);
    team_runs[i] = run_mixed(model, 64, 8);
  }
  omp_set_num_threads(max_threads);
  const double core2_scaling =
      team_runs[0].seconds > 0.0 && team_runs[1].seconds > 0.0
          ? tok(team_runs[1]) / tok(team_runs[0])
          : 0.0;
  const double core4_scaling =
      team_runs[0].seconds > 0.0 && team_runs[2].seconds > 0.0
          ? tok(team_runs[2]) / tok(team_runs[0])
          : 0.0;
  std::printf("\n  OMP team scaling (same mixed fleet, teams of 1/2/4)\n");
  std::printf("  %-26s %10s %8s %12s\n", "team", "tokens/s", "ticks",
              "makespan");
  for (std::size_t i = 0; i < std::size(team_sizes); ++i) {
    char label[32];
    std::snprintf(label, sizeof(label), "%d thread(s)", team_sizes[i]);
    std::printf("  %-26s %10.1f %8zu %9.2f ms\n", label, tok(team_runs[i]),
                team_runs[i].ticks, team_runs[i].seconds * 1e3);
  }
  std::printf("  core scaling: 2T %.2fx  4T %.2fx "
              "(informational: core-count bound)\n",
              core2_scaling, core4_scaling);
  for (std::size_t i = 1; i < std::size(team_sizes); ++i) {
    ok = ok && team_runs[i].stats.decoded == team_runs[0].stats.decoded &&
         team_runs[i].stats.prefill_rows == team_runs[0].stats.prefill_rows &&
         team_runs[i].stats.retired == kRequests;
    if (team_runs[i].stats.decoded != team_runs[0].stats.decoded) {
      std::printf("  UNEXPECTED: team-%d decode totals diverged from team-1\n",
                  team_sizes[i]);
    }
  }

  // --- recovery ladder: chaos overhead + bitwise clean rate --------------
  const RecoveryRun rec_clean = run_recovery(model, false);
  const RecoveryRun rec_chaos = run_recovery(model, true);
  const double recovery_overhead =
      rec_clean.seconds > 0.0 ? rec_chaos.seconds / rec_clean.seconds : 0.0;
  std::size_t bitwise_clean = 0;
  for (std::size_t i = 0; i < kRequests; ++i) {
    const auto& a = rec_chaos.hidden[i];
    const auto& b = rec_clean.hidden[i];
    if (a.size() == b.size() &&
        std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0) {
      ++bitwise_clean;
    }
  }
  const double clean_rate =
      static_cast<double>(bitwise_clean) / static_cast<double>(kRequests);
  std::printf("\n  recovery ladder (one bit-30 transient per tick, "
              "tick retry <= 2)\n");
  std::printf("  %-26s %12s %8s %12s\n", "mode", "makespan", "ticks",
              "retried");
  std::printf("  %-26s %9.2f ms %8zu %12zu\n", "injection-free",
              rec_clean.seconds * 1e3, rec_clean.ticks,
              rec_clean.stats.retried);
  std::printf("  %-26s %9.2f ms %8zu %12zu\n", "chaos + retry",
              rec_chaos.seconds * 1e3, rec_chaos.ticks,
              rec_chaos.stats.retried);
  std::printf("  recovery overhead: %.2fx   recovered bitwise-clean: "
              "%zu/%zu (%.0f%%, %zu recovered ticks)\n",
              recovery_overhead, bitwise_clean, kRequests, clean_rate * 100.0,
              rec_chaos.stats.recovered);
  // The chaos run must fully recover: no escalations, every request ends
  // on the clean twin's bits.  tests/test_recovery.cpp gates this; here it
  // still flips the bench's clean bit so a silent divergence is visible.
  ok = ok && rec_chaos.stats.degraded == 0 && rec_chaos.stats.failed == 0 &&
       bitwise_clean == kRequests;
  if (bitwise_clean != kRequests) {
    std::printf("  UNEXPECTED: %zu request(s) diverged from the clean twin\n",
                kRequests - bitwise_clean);
  }

  if (!json_path.empty()) {
    bench::JsonWriter w;
    w.begin_object();
    w.key("speculative");
    w.begin_object();
    w.kv("requests", kSpecRequests);
    w.kv("prompt_rows", kSpecPrompt);
    w.kv("budget", kSpecBudget);
    w.kv("spec_tokens", kSpecTokens);
    w.kv("spec_makespan_ms", spec.seconds * 1e3);
    w.kv("serial_makespan_ms", spec_serial.seconds * 1e3);
    w.kv("spec_ticks", spec.ticks);
    w.kv("serial_ticks", spec_serial.ticks);
    w.kv("drafts_proposed", spec.stats.spec_proposed);
    w.kv("drafts_accepted", spec.stats.spec_accepted);
    w.kv("drafts_rejected", spec.stats.spec_rejected);
    w.kv("decoded_tokens", spec.stats.decoded);
    w.end_object();
    w.key("shared_prefix");
    w.begin_object();
    w.kv("requests", kFollowers + 1);
    w.kv("common_prompt_rows", kCommonRows);
    w.kv("shared_makespan_ms", shared.seconds * 1e3);
    w.kv("unshared_makespan_ms", unshared.seconds * 1e3);
    w.kv("shared_peak_tiles", shared.peak_tiles);
    w.kv("unshared_peak_tiles", unshared.peak_tiles);
    w.kv("tiles_attached", shared.stats.shared_tiles);
    w.kv("shared_prefill_rows", shared.stats.prefill_rows);
    w.kv("unshared_prefill_rows", unshared.stats.prefill_rows);
    w.end_object();
    w.key("parallel_serving");
    w.begin_object();
    w.kv("shards", std::size_t{2});
    w.kv("replicas", std::size_t{2});
    w.kv("solo_makespan_ms", chunked.seconds * 1e3);
    w.kv("sharded_makespan_ms", sharded.seconds * 1e3);
    w.kv("routed_makespan_ms", routed.seconds * 1e3);
    w.kv("sharded_ticks", sharded.ticks);
    w.kv("routed_ticks", routed.ticks);
    w.kv("decoded_tokens", sharded.stats.decoded);
    w.end_object();
    w.key("scheduler");
    w.begin_object();
    w.kv("threads", omp_get_max_threads());
    w.kv("requests", kRequests);
    w.kv("max_batch_size", std::size_t{8});
    w.kv("prefill_chunk_ms_avg", chunk_ms_avg);
    w.kv("mixed_tokens_per_s", tok(chunked));
    w.kv("mixed_makespan_ms", chunked.seconds * 1e3);
    w.kv("ticks", chunked.ticks);
    w.kv("batch_occupancy", chunked.occupancy);
    w.kv("chunked_prefill_speedup", speedup);
    w.kv("prefill_rows", chunked.stats.prefill_rows);
    w.kv("decoded_tokens", chunked.stats.decoded);
    w.kv("clean", ok);
    w.end_object();
    w.key("omp_scaling");
    w.begin_object();
    w.kv("max_threads", max_threads);
    w.kv("team1_tokens_per_s", tok(team_runs[0]));
    w.kv("team2_tokens_per_s", tok(team_runs[1]));
    w.kv("team4_tokens_per_s", tok(team_runs[2]));
    w.kv("team1_makespan_ms", team_runs[0].seconds * 1e3);
    w.kv("team2_makespan_ms", team_runs[1].seconds * 1e3);
    w.kv("team4_makespan_ms", team_runs[2].seconds * 1e3);
    w.kv("decoded_tokens", team_runs[0].stats.decoded);
    w.end_object();
    w.key("recovery");
    w.begin_object();
    w.kv("requests", kRequests);
    w.kv("max_tick_retries", std::size_t{2});
    w.kv("clean_makespan_ms", rec_clean.seconds * 1e3);
    w.kv("chaos_makespan_ms", rec_chaos.seconds * 1e3);
    w.kv("ticks_retried", rec_chaos.stats.retried);
    w.kv("ticks_recovered", rec_chaos.stats.recovered);
    w.kv("requests_degraded", rec_chaos.stats.degraded);
    w.kv("requests_failed", rec_chaos.stats.failed);
    w.kv("bitwise_clean_requests", bitwise_clean);
    w.end_object();
    w.key("gauges");
    w.begin_object();
    w.kv("scheduler_tokens_per_s", tok(chunked));
    w.kv("scheduler_chunked_prefill_speedup", speedup);
    w.kv("shared_prefix_speedup", shared_speedup);
    w.kv("shared_prefix_capacity_ratio", capacity_ratio);
    w.kv("spec_decode_speedup", spec_speedup);
    w.kv("spec_acceptance_rate", acceptance);
    w.kv("shard_parallel_speedup", shard_speedup);
    w.kv("router_replica_speedup", router_speedup);
    w.kv("recovery_overhead", recovery_overhead);
    w.kv("recovered_bitwise_clean_rate", clean_rate);
    // Informational: core-count bound (≈1x on single-core CI runners).
    w.kv("decode_core2_scaling", core2_scaling);
    w.kv("decode_core4_scaling", core4_scaling);
    w.end_object();
    w.end_object();
    ok = w.write_file(json_path) && ok;
  }
  bench::note("chunked prefill amortizes per-tile checksum encodes across");
  bench::note("the chunk and batches prompt rows through the shared linears.");
  return ok ? 0 : 1;
}
