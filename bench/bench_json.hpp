#pragma once
// Minimal JSON emitter for machine-readable bench output (BENCH_serve.json).
//
// The serving benches print human tables to stdout and, when run with
// `--json <path>`, also dump a JSON document the CI perf job merges and
// gates on (scripts/check_bench_regression.py).  The emitter is a tiny
// push-down writer — no dependency, no escaping needs beyond plain ASCII
// keys, numbers and booleans, which is all the benches emit.

#include <cstdio>
#include <string>

namespace bench {

class JsonWriter {
 public:
  void begin_object() { open('{'); }
  void end_object() { close('}'); }
  void begin_array() { open('['); }
  void end_array() { close(']'); }

  void key(const std::string& name) {
    comma();
    out_ += '"';
    out_ += name;
    out_ += "\":";
    just_keyed_ = true;
  }

  void value(double v) {
    comma();
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out_ += buf;
  }
  void value(std::size_t v) {
    comma();
    out_ += std::to_string(v);
  }
  void value(int v) {
    comma();
    out_ += std::to_string(v);
  }
  void value(bool v) {
    comma();
    out_ += v ? "true" : "false";
  }
  void value(const std::string& v) {
    comma();
    out_ += '"';
    out_ += v;
    out_ += '"';
  }

  template <typename T>
  void kv(const std::string& name, T v) {
    key(name);
    value(v);
  }

  [[nodiscard]] const std::string& str() const noexcept { return out_; }

  /// Write the document to `path`; returns false (and prints to stderr) on
  /// I/O failure so benches can propagate a nonzero exit.
  [[nodiscard]] bool write_file(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot open %s for writing\n",
                   path.c_str());
      return false;
    }
    const std::size_t n = std::fwrite(out_.data(), 1, out_.size(), f);
    const bool wrote = n == out_.size() && std::fputc('\n', f) != EOF;
    const bool ok = std::fclose(f) == 0 && wrote;  // always close the handle
    if (!ok) std::fprintf(stderr, "bench: short write to %s\n", path.c_str());
    return ok;
  }

 private:
  void open(char c) {
    comma();
    out_ += c;
    fresh_ = true;
  }
  void close(char c) {
    out_ += c;
    fresh_ = false;
    just_keyed_ = false;
  }
  void comma() {
    if (just_keyed_) {
      just_keyed_ = false;
      return;
    }
    if (!fresh_ && !out_.empty()) out_ += ',';
    fresh_ = false;
  }

  std::string out_;
  bool fresh_ = true;
  bool just_keyed_ = false;
};

/// `--json <path>` argument, or empty when absent.
inline std::string json_path_from_args(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") return argv[i + 1];
  }
  return {};
}

}  // namespace bench
