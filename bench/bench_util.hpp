#pragma once
// Shared helpers for the figure/table reproduction harnesses.
//
// Each bench binary regenerates one table or figure of the paper.  Timing
// numbers at paper scale come from the calibrated A100 cost model driven by
// exact operation counts (see DESIGN.md §2); accuracy/coverage numbers are
// *measured* by running the real kernels with fault injection.  Where
// affordable, benches also report measured CPU wall-clock ratios at reduced
// scale as a sanity check on the model's orderings.

#include <chrono>
#include <cstdio>
#include <string>

#include "attention/attention.hpp"
#include "sim/cost.hpp"
#include "tensor/random.hpp"

namespace bench {

inline ftt::sim::MachineModel machine() { return {}; }

/// Wall-clock of one callable invocation, in seconds.
template <typename F>
double time_once(F&& f) {
  const auto t0 = std::chrono::steady_clock::now();
  f();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Best of `reps` invocations.
template <typename F>
double time_best(F&& f, int reps = 3) {
  double best = 1e30;
  for (int i = 0; i < reps; ++i) best = std::min(best, time_once(f));
  return best;
}

inline void header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void note(const std::string& text) { std::printf("  %s\n", text.c_str()); }

inline const std::size_t kPaperSeqs[] = {512, 1024, 2048, 4096, 8192, 16384};

inline std::string seq_label(std::size_t seq) {
  if (seq >= 1024) return std::to_string(seq / 1024) + "k";
  return std::to_string(seq);
}

}  // namespace bench
