// Strided tensor-checksum ABFT (Eqs. 12-15): encoding identities, locate via
// the c2/c1 ratio, multi-error correction across residue classes, and the
// intra-thread property.
#include <gtest/gtest.h>

#include <cmath>

#include "abft/element_abft.hpp"
#include "abft/strided_abft.hpp"
#include "sim/mma.hpp"
#include "tensor/random.hpp"

namespace fb = ftt::abft;
namespace ft = ftt::tensor;
namespace ff = ftt::fault;
namespace fs = ftt::sim;

namespace {
constexpr float kThr = 0.02f;
constexpr int kS = 8;
}  // namespace

TEST(StridedEncode, RowIdentity) {
  ft::MatrixH X(64, 16);
  ft::fill_normal(X, 1);
  const ft::MatrixH c1 = fb::StridedAbft::encode_rows_strided(X, kS, false, nullptr);
  const ft::MatrixH c2 = fb::StridedAbft::encode_rows_strided(X, kS, true, nullptr);
  ASSERT_EQ(c1.rows(), 8u);
  ASSERT_EQ(c1.cols(), 16u);
  for (std::size_t jc = 0; jc < 8; ++jc) {
    for (std::size_t c = 0; c < 16; ++c) {
      float s1 = 0.0f, s2 = 0.0f;
      for (std::size_t l = 0; l < 8; ++l) {
        s1 += X(jc + l * 8, c).to_float();
        s2 += static_cast<float>(l + 1) * X(jc + l * 8, c).to_float();
      }
      EXPECT_NEAR(c1(jc, c).to_float(), s1, 0.02f);
      EXPECT_NEAR(c2(jc, c).to_float(), s2, 0.1f);
    }
  }
}

TEST(StridedEncode, ColIdentity) {
  ft::MatrixH X(16, 64);
  ft::fill_normal(X, 2);
  const ft::MatrixH c1 = fb::StridedAbft::encode_cols_strided(X, kS, false, nullptr);
  ASSERT_EQ(c1.rows(), 16u);
  ASSERT_EQ(c1.cols(), 8u);
  for (std::size_t r = 0; r < 16; ++r) {
    for (std::size_t jc = 0; jc < 8; ++jc) {
      float s1 = 0.0f;
      for (std::size_t l = 0; l < 8; ++l) s1 += X(r, jc + l * 8).to_float();
      EXPECT_NEAR(c1(r, jc).to_float(), s1, 0.02f);
    }
  }
}

TEST(StridedEncode, RejectsBadStride) {
  ft::MatrixH X(60, 16);
  EXPECT_THROW(fb::StridedAbft::encode_rows_strided(X, 8, false, nullptr),
               std::invalid_argument);
  ft::MatrixH Y(16, 60);
  EXPECT_THROW(fb::StridedAbft::encode_cols_strided(Y, 8, false, nullptr),
               std::invalid_argument);
}

TEST(StridedVerify, CleanRunNoFlags) {
  ft::MatrixH A(64, 64), B(64, 64);
  ft::fill_normal(A, 3, 0.0f, 0.125f);
  ft::fill_normal(B, 4);
  ft::MatrixF C(64, 64);
  const auto rep = fb::StridedAbft::gemm_nt(A, B, C, kS, kThr, nullptr);
  EXPECT_EQ(rep.flagged, 0u);
  EXPECT_EQ(rep.checks, 64u * 8u);
}

TEST(StridedVerify, LocatesAndCorrectsSingleError) {
  // Direct synthetic check of the locate arithmetic: build S and exact
  // checksums, corrupt one element, confirm the exact column comes back.
  ft::MatrixF S(4, 64);
  ft::fill_normal(S, 5);
  ft::MatrixF chk1(4, 8, 0.0f), chk2(4, 8, 0.0f);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t jc = 0; jc < 8; ++jc) {
      for (std::size_t l = 0; l < 8; ++l) {
        chk1(r, jc) += S(r, jc + l * 8);
        chk2(r, jc) += static_cast<float>(l + 1) * S(r, jc + l * 8);
      }
    }
  }
  const ft::MatrixF ref = S;
  S(2, 5 + 8 * 3) += 50.0f;  // residue class 5, loop index 3
  const auto rep = fb::StridedAbft::verify_correct(S, chk1, chk2, kS, kThr);
  EXPECT_EQ(rep.flagged, 1u);
  EXPECT_EQ(rep.corrected, 1u);
  EXPECT_LT(ft::max_abs_diff(S, ref), 1e-4f);
}

TEST(StridedVerify, CorrectsUpToEightErrorsPerRow) {
  // One error in each residue class of the same row: all correctable — the
  // "factor of 8 over traditional ABFT" property (§3.3).
  ft::MatrixF S(2, 64);
  ft::fill_normal(S, 6);
  ft::MatrixF chk1(2, 8, 0.0f), chk2(2, 8, 0.0f);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t jc = 0; jc < 8; ++jc) {
      for (std::size_t l = 0; l < 8; ++l) {
        chk1(r, jc) += S(r, jc + l * 8);
        chk2(r, jc) += static_cast<float>(l + 1) * S(r, jc + l * 8);
      }
    }
  }
  const ft::MatrixF ref = S;
  for (std::size_t jc = 0; jc < 8; ++jc) {
    S(1, jc + 8 * (jc % 8)) += 20.0f + static_cast<float>(jc);
  }
  const auto rep = fb::StridedAbft::verify_correct(S, chk1, chk2, kS, kThr);
  EXPECT_EQ(rep.corrected, 8u);
  EXPECT_LT(ft::max_abs_diff(S, ref), 1e-4f);
}

TEST(StridedVerify, TwoErrorsSameResidueClassUncorrectable) {
  // Errors spaced a multiple of 8 apart share a residue class and cannot be
  // located — exactly the paper's stated limit.
  ft::MatrixF S(1, 64);
  ft::fill_normal(S, 7);
  ft::MatrixF chk1(1, 8, 0.0f), chk2(1, 8, 0.0f);
  for (std::size_t jc = 0; jc < 8; ++jc) {
    for (std::size_t l = 0; l < 8; ++l) {
      chk1(0, jc) += S(0, jc + l * 8);
      chk2(0, jc) += static_cast<float>(l + 1) * S(0, jc + l * 8);
    }
  }
  S(0, 3) += 40.0f;
  S(0, 3 + 16) += 25.0f;
  const auto rep = fb::StridedAbft::verify_correct(S, chk1, chk2, kS, kThr);
  EXPECT_EQ(rep.flagged, 1u);
  EXPECT_EQ(rep.corrected, 0u);
  EXPECT_EQ(rep.uncorrectable, 1u);
}

TEST(StridedAbftGemm, CorrectsInjectedMacFault) {
  ft::MatrixH A(64, 64), B(64, 64);
  ft::fill_normal(A, 8, 0.0f, 0.125f);
  ft::fill_normal(B, 9);
  ft::MatrixF ref(64, 64);
  fs::gemm_fp16_nt(A, B, ref);

  for (std::uint64_t call : {0u, 17u, 1000u, 4095u}) {
    auto inj = ff::FaultInjector::single(ff::Site::kGemm1, call, 30);
    ft::MatrixF C(64, 64);
    const auto rep = fb::StridedAbft::gemm_nt(A, B, C, kS, kThr, &inj);
    EXPECT_EQ(inj.injected(), 1u) << call;
    EXPECT_EQ(rep.corrected, 1u) << call;
    EXPECT_LT(ft::max_abs_diff(C, ref), 1e-2f) << call;
  }
}

TEST(StridedAbftGemm, ChecksumPipelineFlipClassified) {
  ft::MatrixH A(64, 64), B(64, 64);
  ft::fill_normal(A, 10, 0.0f, 0.125f);
  ft::fill_normal(B, 11);
  ft::MatrixF ref(64, 64);
  fs::gemm_fp16_nt(A, B, ref);
  // Hit the c1 checksum GEMM output (first checksum the pipeline computes
  // after encoding: calls 0..1023 are the K encodes, then the chk GEMMs).
  auto inj = ff::FaultInjector::single(ff::Site::kChecksum, 1100, 29);
  ft::MatrixF C(64, 64);
  fb::StridedAbft::gemm_nt(A, B, C, kS, kThr, &inj);
  EXPECT_EQ(inj.injected(), 1u);
  // Payload must be untouched regardless of how the flip was classified.
  EXPECT_LT(ft::max_abs_diff(C, ref), 1e-3f);
}

TEST(StridedAbftGemm, MultiTileProtection) {
  // N = 128 -> two 64-row tiles, each independently verified.
  ft::MatrixH A(32, 64), B(128, 64);
  ft::fill_normal(A, 12, 0.0f, 0.125f);
  ft::fill_normal(B, 13);
  ft::MatrixF ref(32, 128);
  fs::gemm_fp16_nt(A, B, ref);
  auto inj = ff::FaultInjector::single(ff::Site::kGemm1, 3000, 30);
  ft::MatrixF C(32, 128);
  const auto rep = fb::StridedAbft::gemm_nt(A, B, C, kS, kThr, &inj);
  EXPECT_EQ(rep.corrected, 1u);
  EXPECT_LT(ft::max_abs_diff(C, ref), 1e-2f);
}

TEST(StridedAbft, IntraThreadProperty) {
  // The checksum adds elements at stride 8 along a row / 64 along a column:
  // verify every pair it combines lives in the same simulated thread.
  for (std::size_t row = 0; row < 64; ++row) {
    for (std::size_t jc = 0; jc < 8; ++jc) {
      const int owner = fs::TiledMma64x16x16::thread_of_c(row, jc);
      for (std::size_t l = 1; l < 8; ++l) {
        EXPECT_EQ(owner, fs::TiledMma64x16x16::thread_of_c(row, jc + l * 8));
      }
    }
  }
}

TEST(StridedAbftCosts, NoShuffles) {
  const auto c = fb::StridedAbft::costs(64, 64, 64, 8);
  const auto t = c.total();
  EXPECT_EQ(t.shuffles, 0.0);
  EXPECT_GT(t.tc_flops, 0.0);
  // Checksum-GEMM overhead is 2s/B of the payload per operand pair.
  const auto e = fb::ElementAbft::costs(64, 64, 64);
  EXPECT_GT(e.total().shuffles, 0.0);
}

TEST(StridedAbft, NarrowerStrideCheaperButWeaker) {
  // Width ablation hook: s=4 costs less checksum GEMM than s=8.
  const auto c4 = fb::StridedAbft::costs(64, 64, 64, 4);
  const auto c8 = fb::StridedAbft::costs(64, 64, 64, 8);
  EXPECT_LT(c4[fs::Phase::kGemm].tc_flops, c8[fs::Phase::kGemm].tc_flops);
}
