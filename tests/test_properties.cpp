// Property-based suites: invariants swept over parameter grids with
// TEST_P / INSTANTIATE_TEST_SUITE_P.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <tuple>

#include "abft/strided_abft.hpp"
#include "attention/attention.hpp"
#include "core/efta.hpp"
#include "numeric/fp16.hpp"
#include "sim/mma.hpp"
#include "tensor/random.hpp"

namespace fa = ftt::attention;
namespace fb = ftt::abft;
namespace fc = ftt::core;
namespace ff = ftt::fault;
namespace fn = ftt::numeric;
namespace fs = ftt::sim;
namespace ft = ftt::tensor;

// ---------- fp16 rounding properties ----------

class Fp16Property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Fp16Property, RoundingIsMonotone) {
  std::mt19937_64 rng(GetParam());
  std::uniform_real_distribution<float> dist(-60000.0f, 60000.0f);
  for (int i = 0; i < 2000; ++i) {
    float a = dist(rng), b = dist(rng);
    if (a > b) std::swap(a, b);
    EXPECT_LE(fn::round_to_half(a), fn::round_to_half(b));
  }
}

TEST_P(Fp16Property, RoundingWithinHalfUlp) {
  std::mt19937_64 rng(GetParam() + 17);
  std::uniform_real_distribution<float> dist(-1000.0f, 1000.0f);
  for (int i = 0; i < 2000; ++i) {
    const float f = dist(rng);
    const float r = fn::round_to_half(f);
    // Half an ulp is 2^(e-11) <= |f| * 2^-11 = kHalfEps * |f|.
    EXPECT_LE(std::fabs(f - r), fn::kHalfEps * std::fabs(f) + 1e-7f);
  }
}

TEST_P(Fp16Property, RoundingIdempotent) {
  std::mt19937_64 rng(GetParam() + 31);
  std::uniform_real_distribution<float> dist(-60000.0f, 60000.0f);
  for (int i = 0; i < 2000; ++i) {
    const float r = fn::round_to_half(dist(rng));
    EXPECT_EQ(fn::round_to_half(r), r);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fp16Property,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ---------- strided checksum properties over stride widths ----------

class StridedWidthProperty : public ::testing::TestWithParam<int> {};

TEST_P(StridedWidthProperty, EncodeIsLinear) {
  // encode(aX + bY) == a encode(X) + b encode(Y) up to fp16 rounding.
  const int s = GetParam();
  ft::MatrixH X(64, 32), Y(64, 32);
  ft::fill_normal(X, 900 + s, 0.0f, 0.25f);
  ft::fill_normal(Y, 901 + s, 0.0f, 0.25f);
  ft::MatrixH Z(64, 32);
  for (std::size_t i = 0; i < Z.size(); ++i) {
    Z.data()[i] = fn::Half(X.data()[i].to_float() + Y.data()[i].to_float());
  }
  const auto cx = fb::StridedAbft::encode_rows_strided(X, s, false, nullptr);
  const auto cy = fb::StridedAbft::encode_rows_strided(Y, s, false, nullptr);
  const auto cz = fb::StridedAbft::encode_rows_strided(Z, s, false, nullptr);
  for (std::size_t i = 0; i < cz.size(); ++i) {
    EXPECT_NEAR(cz.data()[i].to_float(),
                cx.data()[i].to_float() + cy.data()[i].to_float(), 0.15f);
  }
}

TEST_P(StridedWidthProperty, SingleErrorAlwaysLocated) {
  const int s = GetParam();
  std::mt19937_64 rng(77 + s);
  ft::MatrixF S(8, 64);
  ft::fill_normal(S, 902 + s);
  ft::MatrixF chk1(8, s, 0.0f), chk2(8, s, 0.0f);
  const std::size_t L = 64 / s;
  for (std::size_t r = 0; r < 8; ++r) {
    for (int jc = 0; jc < s; ++jc) {
      for (std::size_t l = 0; l < L; ++l) {
        chk1(r, jc) += S(r, jc + l * s);
        chk2(r, jc) += static_cast<float>(l + 1) * S(r, jc + l * s);
      }
    }
  }
  std::uniform_int_distribution<std::size_t> row(0, 7), col(0, 63);
  for (int trial = 0; trial < 50; ++trial) {
    ft::MatrixF corrupted = S;
    const std::size_t r = row(rng), c = col(rng);
    corrupted(r, c) += 25.0f;
    const auto rep =
        fb::StridedAbft::verify_correct(corrupted, chk1, chk2, s, 0.1f);
    EXPECT_EQ(rep.corrected, 1u) << "s=" << s << " r=" << r << " c=" << c;
    EXPECT_LT(ft::max_abs_diff(corrupted, S), 1e-3f);
  }
}

TEST_P(StridedWidthProperty, WidthBoundsMultiErrorCorrection) {
  // With k <= s errors in distinct residue classes, all are corrected.
  const int s = GetParam();
  ft::MatrixF S(1, 64);
  ft::fill_normal(S, 903 + s);
  ft::MatrixF chk1(1, s, 0.0f), chk2(1, s, 0.0f);
  const std::size_t L = 64 / s;
  for (int jc = 0; jc < s; ++jc) {
    for (std::size_t l = 0; l < L; ++l) {
      chk1(0, jc) += S(0, jc + l * s);
      chk2(0, jc) += static_cast<float>(l + 1) * S(0, jc + l * s);
    }
  }
  ft::MatrixF corrupted = S;
  for (int jc = 0; jc < s; ++jc) corrupted(0, jc) += 10.0f + jc;
  const auto rep =
      fb::StridedAbft::verify_correct(corrupted, chk1, chk2, s, 0.1f);
  EXPECT_EQ(rep.corrected, static_cast<std::size_t>(s));
  EXPECT_LT(ft::max_abs_diff(corrupted, S), 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(Widths, StridedWidthProperty,
                         ::testing::Values(1, 2, 4, 8, 16));

// ---------- flash == standard across a shape grid ----------

using ShapeParam = std::tuple<std::size_t, std::size_t, std::size_t>;

class FlashEquivalence : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(FlashEquivalence, MatchesStandard) {
  const auto [seq, dim, block] = GetParam();
  ft::Tensor4H Q(1, 2, seq, dim), K(1, 2, seq, dim), V(1, 2, seq, dim);
  ft::fill_normal(Q, seq * 31 + dim);
  ft::fill_normal(K, seq * 37 + dim);
  ft::fill_normal(V, seq * 41 + dim);
  ft::Tensor4F Os(1, 2, seq, dim), Of(1, 2, seq, dim);
  fa::standard_attention(Q, K, V, Os);
  fa::flash_attention(Q, K, V, Of, block);
  float m = 0.0f;
  for (std::size_t i = 0; i < Os.size(); ++i) {
    m = std::max(m, std::fabs(Os.data()[i] - Of.data()[i]));
  }
  EXPECT_LT(m, 2e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FlashEquivalence,
    ::testing::Values(ShapeParam{64, 32, 16}, ShapeParam{64, 64, 64},
                      ShapeParam{128, 64, 32}, ShapeParam{128, 128, 64},
                      ShapeParam{192, 64, 64}, ShapeParam{256, 64, 128}));

// ---------- EFTA clean-run properties across shapes ----------

class EftaShapeProperty : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(EftaShapeProperty, CleanRunNoFalseCorrections) {
  const auto [seq, dim, block] = GetParam();
  ft::Tensor4H Q(1, 1, seq, dim), K(1, 1, seq, dim), V(1, 1, seq, dim);
  ft::fill_normal(Q, seq * 3 + dim);
  ft::fill_normal(K, seq * 5 + dim);
  ft::fill_normal(V, seq * 7 + dim);
  ft::Tensor4F O(1, 1, seq, dim);
  fc::EftaOptions opt;
  opt.block = block;
  opt.unified_verification = true;
  const auto rep = fc::efta_attention(Q, K, V, O, opt);
  EXPECT_EQ(rep.gemm1.corrected, 0u);
  EXPECT_EQ(rep.gemm2.corrected, 0u);
  EXPECT_EQ(rep.exp_check.corrected, 0u);
  EXPECT_EQ(rep.range_corrections, 0u);
}

TEST_P(EftaShapeProperty, OutputRowsAreConvexCombinations) {
  const auto [seq, dim, block] = GetParam();
  ft::Tensor4H Q(1, 1, seq, dim), K(1, 1, seq, dim), V(1, 1, seq, dim);
  ft::fill_normal(Q, seq * 11 + dim);
  ft::fill_normal(K, seq * 13 + dim);
  ft::fill_normal(V, seq * 17 + dim);
  ft::Tensor4F O(1, 1, seq, dim);
  fc::EftaOptions opt;
  opt.block = block;
  fc::efta_attention(Q, K, V, O, opt);
  for (std::size_t d = 0; d < dim; ++d) {
    float lo = 1e30f, hi = -1e30f;
    for (std::size_t r = 0; r < seq; ++r) {
      lo = std::min(lo, V.at(0, 0, r, d).to_float());
      hi = std::max(hi, V.at(0, 0, r, d).to_float());
    }
    for (std::size_t r = 0; r < seq; ++r) {
      EXPECT_GE(O.at(0, 0, r, d), lo - 1e-3f);
      EXPECT_LE(O.at(0, 0, r, d), hi + 1e-3f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EftaShapeProperty,
    ::testing::Values(ShapeParam{64, 64, 64}, ShapeParam{128, 64, 64},
                      ShapeParam{256, 64, 64}, ShapeParam{128, 128, 64},
                      ShapeParam{128, 64, 128}));

// ---------- MMA layout properties across tile offsets ----------

class MmaLayoutProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MmaLayoutProperty, StridedOwnershipPeriodicity) {
  const std::size_t base = GetParam();
  for (std::size_t row = base; row < base + 16; ++row) {
    for (std::size_t col = 0; col < 8; ++col) {
      const int t = fs::TiledMma64x16x16::thread_of_c(row, col);
      EXPECT_EQ(t, fs::TiledMma64x16x16::thread_of_c(row + 64, col));
      EXPECT_EQ(t, fs::TiledMma64x16x16::thread_of_c(row, col + 8));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Offsets, MmaLayoutProperty,
                         ::testing::Values(0u, 16u, 32u, 48u, 64u, 128u));
