// Attention baselines: standard vs flash equivalence (Eq. 7), shapes,
// numerical behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "attention/attention.hpp"
#include "tensor/random.hpp"

namespace fa = ftt::attention;
namespace ft = ftt::tensor;

namespace {

float max_diff(const ft::Tensor4F& a, const ft::Tensor4F& b) {
  float m = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float d = std::fabs(a.data()[i] - b.data()[i]);
    if (std::isnan(d)) return std::numeric_limits<float>::infinity();
    m = std::max(m, d);
  }
  return m;
}

struct Made {
  ft::Tensor4H Q, K, V;
};

Made make(std::size_t batch, std::size_t heads, std::size_t seq,
          std::size_t dim, std::uint64_t seed) {
  Made m{ft::Tensor4H(batch, heads, seq, dim), ft::Tensor4H(batch, heads, seq, dim),
         ft::Tensor4H(batch, heads, seq, dim)};
  ft::fill_normal(m.Q, seed);
  ft::fill_normal(m.K, seed + 1);
  ft::fill_normal(m.V, seed + 2);
  return m;
}

}  // namespace

TEST(StandardAttention, RowsAreConvexCombinationsOfV) {
  // Attention output rows are convex combinations of V rows: each output
  // coordinate lies within [min_r V, max_r V] for that column.
  auto [Q, K, V] = make(1, 1, 64, 64, 1);
  ft::Tensor4F O(1, 1, 64, 64);
  fa::standard_attention(Q, K, V, O);
  for (std::size_t d = 0; d < 64; ++d) {
    float lo = 1e30f, hi = -1e30f;
    for (std::size_t r = 0; r < 64; ++r) {
      lo = std::min(lo, V.at(0, 0, r, d).to_float());
      hi = std::max(hi, V.at(0, 0, r, d).to_float());
    }
    for (std::size_t r = 0; r < 64; ++r) {
      EXPECT_GE(O.at(0, 0, r, d), lo - 1e-3f);
      EXPECT_LE(O.at(0, 0, r, d), hi + 1e-3f);
    }
  }
}

TEST(FlashMatchesStandard, SingleBlock) {
  auto [Q, K, V] = make(1, 2, 64, 64, 2);
  ft::Tensor4F Os(1, 2, 64, 64), Of(1, 2, 64, 64);
  fa::standard_attention(Q, K, V, Os);
  fa::flash_attention(Q, K, V, Of, 64);
  EXPECT_LT(max_diff(Os, Of), 2e-3f);
}

TEST(FlashMatchesStandard, MultiBlock) {
  // Eq. (7): the streaming update is algebraically identical to standard
  // attention across block boundaries.
  auto [Q, K, V] = make(2, 2, 256, 64, 3);
  ft::Tensor4F Os(2, 2, 256, 64), Of(2, 2, 256, 64);
  fa::standard_attention(Q, K, V, Os);
  fa::flash_attention(Q, K, V, Of, 64);
  EXPECT_LT(max_diff(Os, Of), 2e-3f);
}

TEST(FlashMatchesStandard, BlockSizeInvariance) {
  auto [Q, K, V] = make(1, 1, 128, 64, 4);
  ft::Tensor4F a(1, 1, 128, 64), b(1, 1, 128, 64);
  fa::flash_attention(Q, K, V, a, 32);
  fa::flash_attention(Q, K, V, b, 128);
  EXPECT_LT(max_diff(a, b), 2e-3f);
}

TEST(FlashMatchesStandard, RaggedLastBlock) {
  // seq not a multiple of the block: flash handles the partial tail block.
  auto [Q, K, V] = make(1, 1, 96, 64, 5);
  ft::Tensor4F Os(1, 1, 96, 64), Of(1, 1, 96, 64);
  fa::standard_attention(Q, K, V, Os);
  fa::flash_attention(Q, K, V, Of, 64);
  EXPECT_LT(max_diff(Os, Of), 2e-3f);
}

TEST(FlashMatchesStandard, WideHeadDim) {
  auto [Q, K, V] = make(1, 2, 128, 128, 6);
  ft::Tensor4F Os(1, 2, 128, 128), Of(1, 2, 128, 128);
  fa::standard_attention(Q, K, V, Os);
  fa::flash_attention(Q, K, V, Of, 64);
  EXPECT_LT(max_diff(Os, Of), 2e-3f);
}

TEST(Attention, SlicesIndependent) {
  // Changing one (batch, head) slice of the input must not affect others.
  auto [Q, K, V] = make(2, 2, 64, 64, 7);
  ft::Tensor4F O1(2, 2, 64, 64), O2(2, 2, 64, 64);
  fa::flash_attention(Q, K, V, O1);
  // Perturb slice (1,1) only.
  for (std::size_t r = 0; r < 64; ++r) {
    Q.at(1, 1, r, 0) = ftt::numeric::Half(5.0f);
  }
  fa::flash_attention(Q, K, V, O2);
  for (std::size_t r = 0; r < 64; ++r) {
    for (std::size_t d = 0; d < 64; ++d) {
      EXPECT_EQ(O1.at(0, 0, r, d), O2.at(0, 0, r, d));
      EXPECT_EQ(O1.at(0, 1, r, d), O2.at(0, 1, r, d));
      EXPECT_EQ(O1.at(1, 0, r, d), O2.at(1, 0, r, d));
    }
  }
}

TEST(Attention, UniformScoresAverageV) {
  // With Q = 0 all scores are equal: the output is the mean of V rows.
  ft::Tensor4H Q(1, 1, 64, 64), K(1, 1, 64, 64), V(1, 1, 64, 64);
  ft::fill_normal(K, 8);
  ft::fill_normal(V, 9);
  ft::Tensor4F O(1, 1, 64, 64);
  fa::standard_attention(Q, K, V, O);
  for (std::size_t d = 0; d < 64; ++d) {
    float mean = 0.0f;
    for (std::size_t r = 0; r < 64; ++r) mean += V.at(0, 0, r, d).to_float();
    mean /= 64.0f;
    for (std::size_t r = 0; r < 64; ++r) {
      EXPECT_NEAR(O.at(0, 0, r, d), mean, 2e-3f);
    }
  }
}

TEST(CausalAttention, FlashMatchesStandard) {
  auto [Q, K, V] = make(1, 2, 192, 64, 20);
  ft::Tensor4F Os(1, 2, 192, 64), Of(1, 2, 192, 64);
  fa::standard_attention(Q, K, V, Os, /*causal=*/true);
  fa::flash_attention(Q, K, V, Of, 64, /*causal=*/true);
  EXPECT_LT(max_diff(Os, Of), 2e-3f);
}

TEST(CausalAttention, FirstRowAttendsOnlyToItself) {
  auto [Q, K, V] = make(1, 1, 64, 64, 21);
  ft::Tensor4F O(1, 1, 64, 64);
  fa::standard_attention(Q, K, V, O, /*causal=*/true);
  // Row 0 sees only position 0: output equals V[0] (up to fp16 rounding).
  for (std::size_t d = 0; d < 64; ++d) {
    EXPECT_NEAR(O.at(0, 0, 0, d), V.at(0, 0, 0, d).to_float(), 2e-3f);
  }
}

TEST(CausalAttention, FutureTokensDoNotInfluencePast) {
  auto [Q, K, V] = make(1, 1, 128, 64, 22);
  ft::Tensor4F O1(1, 1, 128, 64), O2(1, 1, 128, 64);
  fa::flash_attention(Q, K, V, O1, 64, true);
  // Perturb the tail of K and V: rows < 64 must be bit-identical.
  for (std::size_t r = 100; r < 128; ++r) {
    for (std::size_t d = 0; d < 64; ++d) {
      K.at(0, 0, r, d) = ftt::numeric::Half(9.0f);
      V.at(0, 0, r, d) = ftt::numeric::Half(-9.0f);
    }
  }
  fa::flash_attention(Q, K, V, O2, 64, true);
  for (std::size_t r = 0; r < 64; ++r) {
    for (std::size_t d = 0; d < 64; ++d) {
      EXPECT_EQ(O1.at(0, 0, r, d), O2.at(0, 0, r, d)) << r << "," << d;
    }
  }
}
