// Int8 quantized KV tiles: SIMD/scalar kernel bit-identity, EXACT integer
// checksum verification (equality, zero threshold), the sealed-encoding
// exactness lemma, KvCache/TilePool/engine integration and the mixed-format
// pool invariants.
//
// The load-bearing property is the power-of-two scale: dequantization is an
// exponent shift (exact), so the dequantized tile's fp16 strided encodings
// are bit-equal to a fresh per-call encode — the decode kernel's memo
// contract survives quantization — and the int32 payload checksums relate to
// the payload by exact integer arithmetic, verified by EQUALITY with zero
// threshold (asserted below with EXPECT_EQ on int32 values, no tolerance).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "abft/int8_checksums.hpp"
#include "abft/strided_abft.hpp"
#include "core/decode.hpp"
#include "numeric/fp16.hpp"
#include "numeric/int8_simd.hpp"
#include "serve/engine.hpp"
#include "serve/kv_cache.hpp"
#include "serve/tile_pool.hpp"
#include "tensor/random.hpp"
#include "tensor/tensor.hpp"
#include "transformer/model.hpp"

namespace fa = ftt::abft;
namespace fc = ftt::core;
namespace fn = ftt::numeric;
namespace fs = ftt::serve;
namespace ft = ftt::tensor;
namespace fx = ftt::transformer;
using ftt::numeric::Half;

namespace {

constexpr std::size_t kRows = fs::KvCache::kTileRows;  // 64
constexpr int kStride = fa::StridedAbft::kDefaultStride;

std::vector<float> random_floats(std::size_t n, std::uint64_t seed,
                                 float sigma = 1.0f) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> dist(0.0f, sigma);
  std::vector<float> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

std::vector<Half> random_halves(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  std::vector<Half> v(n);
  for (auto& x : v) x = Half(dist(rng));
  return v;
}

bool is_power_of_two(float x) {
  int e = 0;
  const float m = std::frexp(x, &e);
  return m == 0.5f;
}

}  // namespace

// ---------------------------------------------------------------------------
// numeric: scale choice and SIMD/scalar kernel bit-identity.
// ---------------------------------------------------------------------------

TEST(Int8Quant, ScaleIsSmallestCoveringPowerOfTwo) {
  for (const float amax : {0.001f, 0.5f, 1.0f, 3.7f, 126.9f, 127.0f, 127.1f,
                           1000.0f, 65504.0f}) {
    const fn::I8Scale s = fn::choose_i8_scale(amax);
    EXPECT_TRUE(is_power_of_two(s.scale)) << amax;
    EXPECT_GE(127.0f * s.scale, amax) << amax;
    // Smallest: halving the scale must no longer cover amax.
    EXPECT_LT(127.0f * (s.scale * 0.5f), amax) << amax;
    EXPECT_EQ(s.inv_scale, 1.0f / s.scale) << amax;
  }
  // Degenerate inputs take the neutral scale.
  EXPECT_EQ(fn::choose_i8_scale(0.0f).scale, 1.0f);
  EXPECT_EQ(fn::choose_i8_scale(-3.0f).scale, 1.0f);
  EXPECT_EQ(fn::choose_i8_scale(std::numeric_limits<float>::infinity()).scale,
            1.0f);
  EXPECT_EQ(
      fn::choose_i8_scale(std::numeric_limits<float>::quiet_NaN()).scale,
      1.0f);
}

TEST(Int8Quant, AmaxSkipsNaNs) {
  std::vector<float> v = {1.0f, -3.0f, std::numeric_limits<float>::quiet_NaN(),
                          2.0f};
  EXPECT_EQ(fn::amax_f32(v.data(), v.size()), 3.0f);
  v[1] = std::numeric_limits<float>::infinity();
  EXPECT_TRUE(std::isinf(fn::amax_f32(v.data(), v.size())));
}

TEST(Int8Quant, QuantizeSimdBitIdenticalToScalar) {
  // Random + adversarial lanes: NaN (-> 0), +-Inf (-> +-127), tie-to-even
  // boundaries, denormals, and a ragged length that exercises the SIMD tail.
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    std::vector<float> src = random_floats(1000 + seed, seed, 40.0f);
    src[7] = std::numeric_limits<float>::quiet_NaN();
    src[15] = std::numeric_limits<float>::infinity();
    src[31] = -std::numeric_limits<float>::infinity();
    src[63] = 0.5f;   // ties at .5 with inv_scale 1: RTNE -> 0
    src[64] = 1.5f;   // -> 2
    src[65] = 2.5f;   // -> 2
    src[66] = -2.5f;  // -> -2
    src[67] = 1e-40f;  // denormal
    for (const float inv_scale : {1.0f, 0.25f, 8.0f}) {
      std::vector<std::int8_t> simd(src.size()), ref(src.size());
      fn::quantize_f32_to_i8(src.data(), simd.data(), src.size(), inv_scale);
      fn::quantize_f32_to_i8_scalar(src.data(), ref.data(), src.size(),
                                    inv_scale);
      for (std::size_t i = 0; i < src.size(); ++i) {
        EXPECT_EQ(simd[i], ref[i]) << "i=" << i << " inv_scale=" << inv_scale;
      }
    }
  }
}

TEST(Int8Quant, QuantizeSemantics) {
  const float vals[] = {0.5f, 1.5f, 2.5f, -2.5f,
                        std::numeric_limits<float>::quiet_NaN(),
                        std::numeric_limits<float>::infinity(),
                        -std::numeric_limits<float>::infinity(), 200.0f};
  std::int8_t q[8];
  fn::quantize_f32_to_i8(vals, q, 8, 1.0f);
  EXPECT_EQ(q[0], 0);   // RTNE: 0.5 -> 0
  EXPECT_EQ(q[1], 2);   // 1.5 -> 2
  EXPECT_EQ(q[2], 2);   // 2.5 -> 2
  EXPECT_EQ(q[3], -2);  // -2.5 -> -2
  EXPECT_EQ(q[4], 0);   // NaN -> 0
  EXPECT_EQ(q[5], 127);
  EXPECT_EQ(q[6], -127);
  EXPECT_EQ(q[7], 127);  // saturates
}

TEST(Int8Quant, DequantizeSimdBitIdenticalToScalarAndExact) {
  std::vector<std::int8_t> src(515);
  std::mt19937_64 rng(99);
  for (auto& x : src) x = static_cast<std::int8_t>(rng() % 255) - 127;
  for (const float scale : {1.0f, 0.0078125f, 0.25f, 16.0f}) {
    std::vector<float> simd(src.size()), ref(src.size());
    fn::dequantize_i8_to_f32(src.data(), simd.data(), src.size(), scale);
    fn::dequantize_i8_to_f32_scalar(src.data(), ref.data(), src.size(),
                                    scale);
    for (std::size_t i = 0; i < src.size(); ++i) {
      EXPECT_EQ(simd[i], ref[i]);
      // Exactness: a power-of-two multiply only shifts the exponent.
      EXPECT_EQ(simd[i], static_cast<float>(src[i]) * scale);
      EXPECT_EQ(simd[i] / scale, static_cast<float>(src[i]));
    }
  }
}

TEST(Int8Quant, RoundTripErrorBoundedByHalfStep) {
  const std::vector<float> src = random_floats(kRows * 64, 4242);
  const fn::I8Scale s =
      fn::choose_i8_scale(fn::amax_f32(src.data(), src.size()));
  std::vector<std::int8_t> q(src.size());
  std::vector<float> back(src.size());
  fn::quantize_f32_to_i8(src.data(), q.data(), src.size(), s.inv_scale);
  fn::dequantize_i8_to_f32(q.data(), back.data(), src.size(), s.scale);
  for (std::size_t i = 0; i < src.size(); ++i) {
    EXPECT_LE(std::fabs(back[i] - src[i]), 0.5f * s.scale) << i;
  }
}

// ---------------------------------------------------------------------------
// abft: exact integer checksums — verification is EQUALITY, zero threshold.
// ---------------------------------------------------------------------------

namespace {

std::vector<std::int8_t> random_payload(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::int8_t> v(n);
  for (auto& x : v) x = static_cast<std::int8_t>(rng() % 255) - 127;
  return v;
}

}  // namespace

TEST(Int8Checksums, RowEncodingMatchesNaiveReferenceExactly) {
  const std::size_t rows = kRows, cols = 64;
  const int s = kStride;
  const auto X = random_payload(rows * cols, 11);
  std::vector<std::int32_t> c1(s * cols), c2(s * cols);
  fa::encode_rows_i8(X.data(), rows, cols, s, false, c1.data());
  fa::encode_rows_i8(X.data(), rows, cols, s, true, c2.data());
  for (std::size_t jc = 0; jc < static_cast<std::size_t>(s); ++jc) {
    for (std::size_t c = 0; c < cols; ++c) {
      std::int32_t r1 = 0, r2 = 0;
      for (std::size_t l = 0; l < rows / s; ++l) {
        const std::int32_t x = X[(jc + l * s) * cols + c];
        r1 += x;
        r2 += static_cast<std::int32_t>(l + 1) * x;
      }
      // EXACT: integer equality, no threshold.
      EXPECT_EQ(c1[jc * cols + c], r1);
      EXPECT_EQ(c2[jc * cols + c], r2);
    }
  }
}

TEST(Int8Checksums, ColEncodingMatchesNaiveReferenceExactly) {
  const std::size_t rows = kRows, cols = 64;
  const int s = kStride;
  const auto X = random_payload(rows * cols, 12);
  std::vector<std::int32_t> c1(rows * s), c2(rows * s);
  fa::encode_cols_i8(X.data(), rows, cols, s, false, c1.data());
  fa::encode_cols_i8(X.data(), rows, cols, s, true, c2.data());
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t jc = 0; jc < static_cast<std::size_t>(s); ++jc) {
      std::int32_t r1 = 0, r2 = 0;
      for (std::size_t l = 0; l < cols / s; ++l) {
        const std::int32_t x = X[r * cols + jc + l * s];
        r1 += x;
        r2 += static_cast<std::int32_t>(l + 1) * x;
      }
      EXPECT_EQ(c1[r * s + jc], r1);
      EXPECT_EQ(c2[r * s + jc], r2);
    }
  }
}

TEST(Int8Checksums, CleanPayloadVerifiesCleanByEquality) {
  const std::size_t rows = kRows, cols = 64;
  const int s = kStride;
  auto X = random_payload(rows * cols, 13);
  std::vector<std::int32_t> c1(s * cols), c2(s * cols);
  fa::encode_rows_i8(X.data(), rows, cols, s, false, c1.data());
  fa::encode_rows_i8(X.data(), rows, cols, s, true, c2.data());
  const auto rep =
      fa::verify_correct_rows_i8(X.data(), rows, cols, s, c1.data(),
                                 c2.data());
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(rep.classes, static_cast<std::size_t>(s) * cols);
}

TEST(Int8Checksums, SinglePayloadFaultLocatedAndRestoredExactly) {
  const std::size_t rows = kRows, cols = 64;
  const int s = kStride;
  auto X = random_payload(rows * cols, 14);
  const auto pristine = X;
  std::vector<std::int32_t> c1(s * cols), c2(s * cols);
  fa::encode_rows_i8(X.data(), rows, cols, s, false, c1.data());
  fa::encode_rows_i8(X.data(), rows, cols, s, true, c2.data());

  X[37 * cols + 5] = static_cast<std::int8_t>(X[37 * cols + 5] == 13 ? -13
                                                                     : 13);
  const auto rep =
      fa::verify_correct_rows_i8(X.data(), rows, cols, s, c1.data(),
                                 c2.data());
  EXPECT_EQ(rep.payload_corrected, 1u);
  EXPECT_EQ(rep.checksum_corrected, 0u);
  EXPECT_FALSE(rep.unrepairable);
  // Exact restoration: the full payload is bit-identical again.
  EXPECT_EQ(std::memcmp(X.data(), pristine.data(), X.size()), 0);
}

TEST(Int8Checksums, ChecksumFaultsRewrittenPayloadUntouched) {
  const std::size_t rows = kRows, cols = 64;
  const int s = kStride;
  auto X = random_payload(rows * cols, 15);
  const auto pristine = X;
  std::vector<std::int32_t> c1(s * cols), c2(s * cols);
  fa::encode_rows_i8(X.data(), rows, cols, s, false, c1.data());
  fa::encode_rows_i8(X.data(), rows, cols, s, true, c2.data());
  const auto good_c1 = c1, good_c2 = c2;

  c1[9] += 1000;  // d1 != 0, d2 == 0 -> stored c1 flipped
  c2[200] -= 7;   // d1 == 0, d2 != 0 -> stored c2 flipped
  const auto rep =
      fa::verify_correct_rows_i8(X.data(), rows, cols, s, c1.data(),
                                 c2.data());
  EXPECT_EQ(rep.checksum_corrected, 2u);
  EXPECT_EQ(rep.payload_corrected, 0u);
  EXPECT_FALSE(rep.unrepairable);
  EXPECT_EQ(std::memcmp(X.data(), pristine.data(), X.size()), 0);
  EXPECT_EQ(c1, good_c1);
  EXPECT_EQ(c2, good_c2);
}

TEST(Int8Checksums, DoubleFaultInOneClassIsUnrepairable) {
  const std::size_t rows = kRows, cols = 64;
  const int s = kStride;
  auto X = random_payload(rows * cols, 16);
  std::vector<std::int32_t> c1(s * cols), c2(s * cols);
  fa::encode_rows_i8(X.data(), rows, cols, s, false, c1.data());
  fa::encode_rows_i8(X.data(), rows, cols, s, true, c2.data());
  // Two payload elements in the same residue class (rows 3 and 3+s, col 0).
  X[3 * cols] = static_cast<std::int8_t>(X[3 * cols] + 5);
  X[(3 + s) * cols] = static_cast<std::int8_t>(X[(3 + s) * cols] - 9);
  const auto rep =
      fa::verify_correct_rows_i8(X.data(), rows, cols, s, c1.data(),
                                 c2.data());
  EXPECT_TRUE(rep.unrepairable);
}

TEST(Int8Checksums, ColVerifyRepairsSingleFault) {
  const std::size_t rows = kRows, cols = 64;
  const int s = kStride;
  auto X = random_payload(rows * cols, 17);
  const auto pristine = X;
  std::vector<std::int32_t> c1(rows * s), c2(rows * s);
  fa::encode_cols_i8(X.data(), rows, cols, s, false, c1.data());
  fa::encode_cols_i8(X.data(), rows, cols, s, true, c2.data());
  X[50 * cols + 33] = static_cast<std::int8_t>(~X[50 * cols + 33]);
  const auto rep =
      fa::verify_correct_cols_i8(X.data(), rows, cols, s, c1.data(),
                                 c2.data());
  EXPECT_EQ(rep.payload_corrected, 1u);
  EXPECT_FALSE(rep.unrepairable);
  EXPECT_EQ(std::memcmp(X.data(), pristine.data(), X.size()), 0);
}

// ---------------------------------------------------------------------------
// serve::detail: the sealed-tile quantizer and its exactness lemma.
// ---------------------------------------------------------------------------

namespace {

struct QuantizedTile {
  fs::detail::I8TileLayout L;
  std::vector<std::uint8_t> block;
  std::vector<Half> k, v;  // the fp16 source tile
};

QuantizedTile make_quantized_tile(std::size_t dim, std::uint64_t seed) {
  QuantizedTile t;
  t.L = fs::detail::i8_tile_layout(dim, kStride);
  t.block.resize(t.L.bytes);
  t.k = random_halves(kRows * dim, seed);
  t.v = random_halves(kRows * dim, seed + 1);
  fs::detail::quantize_sealed_tile(t.k.data(), t.v.data(), dim, kStride,
                                   t.block.data());
  return t;
}

}  // namespace

TEST(I8Tile, LayoutRegionsAreDisjointAndAligned) {
  const auto L = fs::detail::i8_tile_layout(64, kStride);
  EXPECT_EQ(L.scale_off % alignof(float), 0u);
  EXPECT_EQ(L.ienc_off % alignof(std::int32_t), 0u);
  EXPECT_EQ(L.henc_off % alignof(Half), 0u);
  EXPECT_EQ(L.bytes % 4u, 0u);
  EXPECT_LT(L.scale_off, L.ienc_off);
  EXPECT_LT(L.ienc_off, L.k_off);
  EXPECT_LT(L.k_off, L.v_off);
  EXPECT_LT(L.v_off, L.henc_off);
  EXPECT_LE(L.henc_off + 2 * (L.kcn + L.vcn) * sizeof(Half), L.bytes);
}

// The exactness lemma: the sealed Half encodings of a quantized tile are
// bit-equal to a fresh per-call encode of its dequantized payload, so the
// decode kernel's memo-vs-fresh contract survives quantization untouched.
TEST(I8Tile, SealedHalfEncodingsBitEqualFreshEncodeOfDequantizedPayload) {
  const std::size_t dim = 64;
  const auto t = make_quantized_tile(dim, 777);
  const float* sc = fs::detail::i8_scales(t.block.data(), t.L);
  const std::int8_t* kq = fs::detail::i8_k(t.block.data(), t.L);
  const std::int8_t* vq = fs::detail::i8_v(t.block.data(), t.L);

  // Dequantize exactly and narrow to Half — exact again, since every value
  // has <= 7 significant bits.  The K payload is stored k-major (K^T,
  // dim x 64), so transpose it back to the logical row-major tile first.
  std::vector<float> ktf(kRows * dim), kf(kRows * dim), vf(kRows * dim);
  fn::dequantize_i8_to_f32(kq, ktf.data(), ktf.size(), sc[0]);
  for (std::size_t r = 0; r < kRows; ++r) {
    for (std::size_t c = 0; c < dim; ++c) {
      kf[r * dim + c] = ktf[c * kRows + r];
    }
  }
  fn::dequantize_i8_to_f32(vq, vf.data(), vf.size(), sc[3]);
  std::vector<Half> kd(kf.size()), vd(vf.size());
  for (std::size_t i = 0; i < kf.size(); ++i) {
    kd[i] = Half(kf[i]);
    vd[i] = Half(vf[i]);
    EXPECT_EQ(kd[i].to_float(), kf[i]);  // narrowing was exact
  }
  std::vector<Half> fresh(2 * (t.L.kcn + t.L.vcn));
  fs::detail::encode_sealed_tile(kd.data(), vd.data(), dim, kStride,
                                 fresh.data());
  // Sealed layout stores the K checksum blocks transposed (Kc^T, dim x s);
  // encode_sealed_tile emits them row-major (s x dim).  V blocks match
  // layout directly.
  const Half* henc = fs::detail::i8_henc(t.block.data(), t.L);
  const std::size_t s = static_cast<std::size_t>(kStride);
  for (std::size_t blk = 0; blk < 2; ++blk) {
    const Half* sealed = henc + blk * t.L.kcn;
    const Half* ref = fresh.data() + blk * t.L.kcn;
    for (std::size_t j = 0; j < s; ++j) {
      for (std::size_t c = 0; c < dim; ++c) {
        EXPECT_EQ(sealed[c * s + j].bits(), ref[j * dim + c].bits())
            << blk << "," << j << "," << c;
      }
    }
  }
  for (std::size_t i = 0; i < 2 * t.L.vcn; ++i) {
    EXPECT_EQ(henc[2 * t.L.kcn + i].bits(), fresh[2 * t.L.kcn + i].bits())
        << i;
  }
}

TEST(I8Tile, IntegerChecksumsMatchPayloadAndScalesAreTMR) {
  const std::size_t dim = 64;
  const auto t = make_quantized_tile(dim, 778);
  const std::int8_t* kq = fs::detail::i8_k(t.block.data(), t.L);
  const std::int8_t* vq = fs::detail::i8_v(t.block.data(), t.L);
  const std::int32_t* ie = fs::detail::i8_ienc(t.block.data(), t.L);
  // K integer encodings run over the payload AS STORED — the k-major K^T
  // (dim x 64) — so rows = dim, cols = kRows and each block holds kcni
  // values.
  std::vector<std::int32_t> fresh(2 * (t.L.kcni + t.L.vcn));
  fa::encode_rows_i8(kq, dim, kRows, kStride, false, fresh.data());
  fa::encode_rows_i8(kq, dim, kRows, kStride, true, fresh.data() + t.L.kcni);
  fa::encode_cols_i8(vq, kRows, dim, kStride, false,
                     fresh.data() + 2 * t.L.kcni);
  fa::encode_cols_i8(vq, kRows, dim, kStride, true,
                     fresh.data() + 2 * t.L.kcni + t.L.vcn);
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_EQ(ie[i], fresh[i]) << i;  // EXACT int32 equality, no threshold
  }
  const float* sc = fs::detail::i8_scales(t.block.data(), t.L);
  EXPECT_EQ(sc[0], sc[1]);
  EXPECT_EQ(sc[1], sc[2]);
  EXPECT_EQ(sc[3], sc[4]);
  EXPECT_EQ(sc[4], sc[5]);
  EXPECT_TRUE(is_power_of_two(sc[0]));
  EXPECT_TRUE(is_power_of_two(sc[3]));
}

TEST(I8Tile, ScrubCleanTileReportsClean) {
  auto t = make_quantized_tile(64, 800);
  const auto before = t.block;
  EXPECT_EQ(fs::detail::scrub_i8_tile(t.block.data(), 64, kStride),
            fs::detail::I8ScrubResult::kClean);
  EXPECT_EQ(t.block, before);  // scrub of a clean tile touches nothing
}

TEST(I8Tile, ScrubRepairsPayloadChecksumScaleAndHencFaults) {
  const std::size_t dim = 64;
  // Payload fault.
  {
    auto t = make_quantized_tile(dim, 801);
    const auto pristine = t.block;
    t.block[t.L.k_off + 100] ^= 0x40;
    EXPECT_EQ(fs::detail::scrub_i8_tile(t.block.data(), dim, kStride),
              fs::detail::I8ScrubResult::kRepaired);
    EXPECT_EQ(t.block, pristine);  // exact restoration, bit for bit
  }
  // int32 checksum fault.
  {
    auto t = make_quantized_tile(dim, 802);
    const auto pristine = t.block;
    t.block[t.L.ienc_off + 11] ^= 0x10;
    EXPECT_EQ(fs::detail::scrub_i8_tile(t.block.data(), dim, kStride),
              fs::detail::I8ScrubResult::kRepaired);
    EXPECT_EQ(t.block, pristine);
  }
  // One TMR scale copy flipped: majority vote restores it.
  {
    auto t = make_quantized_tile(dim, 803);
    const auto pristine = t.block;
    t.block[t.L.scale_off + 1 * sizeof(float)] ^= 0x04;  // K copy #2
    EXPECT_EQ(fs::detail::scrub_i8_tile(t.block.data(), dim, kStride),
              fs::detail::I8ScrubResult::kRepaired);
    EXPECT_EQ(t.block, pristine);
  }
  // Sealed Half encoding fault: rebuilt from the (clean) payload.
  {
    auto t = make_quantized_tile(dim, 804);
    const auto pristine = t.block;
    t.block[t.L.henc_off + 3] ^= 0x01;
    EXPECT_EQ(fs::detail::scrub_i8_tile(t.block.data(), dim, kStride),
              fs::detail::I8ScrubResult::kRepaired);
    EXPECT_EQ(t.block, pristine);
  }
}

TEST(I8Tile, ScrubDoubleClassFaultUnrepairable) {
  const std::size_t dim = 64;
  auto t = make_quantized_tile(dim, 805);
  // Two payload elements of the same K residue class (rows 0 and s, col 0).
  t.block[t.L.k_off + 0] ^= 0x7f;
  t.block[t.L.k_off + static_cast<std::size_t>(kStride) * dim] ^= 0x7f;
  EXPECT_EQ(fs::detail::scrub_i8_tile(t.block.data(), dim, kStride),
            fs::detail::I8ScrubResult::kUnrepairable);
}

// ---------------------------------------------------------------------------
// serve::KvCache with kv_quant: format bookkeeping and decode bit-identity
// against a manually dequantized fp16 twin.
// ---------------------------------------------------------------------------

namespace {

constexpr std::size_t kHeads = 2, kDim = 64;

void fill_cache(fs::KvCache& cache, std::size_t tokens, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  const std::size_t w = cache.heads() * cache.dim();
  std::vector<Half> k(w), v(w);
  for (std::size_t t = 0; t < tokens; ++t) {
    for (std::size_t i = 0; i < w; ++i) {
      k[i] = Half(dist(rng));
      v[i] = Half(dist(rng));
    }
    cache.append(k, v);
  }
}

std::vector<float> decode_all_heads(const fs::KvCache& cache,
                                    std::span<const Half> q) {
  std::vector<float> out(cache.heads() * cache.dim());
  for (std::size_t h = 0; h < cache.heads(); ++h) {
    fc::efta_decode_step(cache.slice(h),
                         q.subspan(h * cache.dim(), cache.dim()),
                         std::span<float>(out).subspan(h * cache.dim(),
                                                       cache.dim()));
  }
  return out;
}

}  // namespace

TEST(KvCacheQuant, RejectsImagePlusQuantCombination) {
  EXPECT_THROW(fs::KvCache(kHeads, kDim, kStride, fc::ImagePolicy::kF32,
                           /*kv_quant=*/true),
               std::invalid_argument);
  EXPECT_THROW(fs::KvCache(kHeads, kDim, kStride, fc::ImagePolicy::kF16T,
                           /*kv_quant=*/true),
               std::invalid_argument);
}

TEST(KvCacheQuant, SealedTilesFlipToI8AndTailStaysF16) {
  fs::KvCache cache(kHeads, kDim, kStride, fc::ImagePolicy::kNone, true);
  EXPECT_TRUE(cache.kv_quant());
  fill_cache(cache, 2 * kRows + 10, 21);
  ASSERT_EQ(cache.tiles(), 3u);
  EXPECT_EQ(cache.tile_format(0), fc::TileFmt::kI8);
  EXPECT_EQ(cache.tile_format(1), fc::TileFmt::kI8);
  EXPECT_EQ(cache.tile_format(2), fc::TileFmt::kF16);
  const fc::KvSlice s = cache.slice(0);
  ASSERT_NE(s.fmt, nullptr);
  EXPECT_EQ(s.fmt[0], fc::TileFmt::kI8);
  EXPECT_EQ(s.fmt[2], fc::TileFmt::kF16);
  ASSERT_NE(s.k_i8, nullptr);
  EXPECT_NE(s.k_i8[0], nullptr);
  EXPECT_EQ(s.k_i8[2], nullptr);  // open tail stays fp16
  EXPECT_NE(s.k_scale[0], 0.0f);
  // Truncation into a sealed tile re-opens it as fp16, losslessly.
  cache.truncate(kRows + 5);
  EXPECT_EQ(cache.tile_format(1), fc::TileFmt::kF16);
}

TEST(KvCacheQuant, DecodeBitIdenticalToDequantizedF16Twin) {
  // The decode kernel widens a kI8 tile by exact dequantization; a fp16
  // cache holding Half(dequantized payload) — exact, <= 7-bit significands —
  // must therefore decode bit-identically.
  fs::KvCache quant(kHeads, kDim, kStride, fc::ImagePolicy::kNone, true);
  fill_cache(quant, 2 * kRows + 17, 22);

  fs::KvCache ref(kHeads, kDim, kStride, fc::ImagePolicy::kNone, false);
  std::mt19937_64 rng(22);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  // Rebuild the reference stream: sealed-tile rows take the dequantized
  // values read back from the quantized cache, tail rows the raw values.
  std::vector<std::vector<const std::int8_t*>> kq(kHeads), vq(kHeads);
  std::vector<std::vector<float>> ks(kHeads), vs(kHeads);
  for (std::size_t h = 0; h < kHeads; ++h) {
    const fc::KvSlice s = quant.slice(h);
    for (std::size_t t = 0; t < s.tiles(); ++t) {
      kq[h].push_back(s.k_i8[t]);
      vq[h].push_back(s.v_i8[t]);
      ks[h].push_back(s.k_scale[t]);
      vs[h].push_back(s.v_scale[t]);
    }
  }
  const std::size_t tokens = quant.length();
  std::vector<Half> k(kHeads * kDim), v(kHeads * kDim);
  for (std::size_t tok = 0; tok < tokens; ++tok) {
    const std::size_t tile = tok / kRows, row = tok % kRows;
    for (std::size_t h = 0; h < kHeads; ++h) {
      for (std::size_t c = 0; c < kDim; ++c) {
        const float kraw = dist(rng), vraw = dist(rng);
        if (quant.tile_format(tile) == fc::TileFmt::kI8) {
          // K is stored k-major (K^T, dim x 64): logical (row, c) lives at
          // c * 64 + row.  V stays row-major.
          k[h * kDim + c] =
              Half(static_cast<float>(kq[h][tile][c * kRows + row]) *
                   ks[h][tile]);
          v[h * kDim + c] =
              Half(static_cast<float>(vq[h][tile][row * kDim + c]) *
                   vs[h][tile]);
        } else {
          k[h * kDim + c] = Half(kraw);
          v[h * kDim + c] = Half(vraw);
        }
      }
    }
    ref.append(k, v);
  }

  const std::vector<Half> q = random_halves(kHeads * kDim, 23);
  const std::vector<float> out_q = decode_all_heads(quant, q);
  const std::vector<float> out_r = decode_all_heads(ref, q);
  ASSERT_EQ(out_q.size(), out_r.size());
  for (std::size_t i = 0; i < out_q.size(); ++i) {
    EXPECT_EQ(out_q[i], out_r[i]) << i;
  }
}

TEST(KvCacheQuant, DecodeDeterministicAndWithinQuantTolerance) {
  fs::KvCache quant(kHeads, kDim, kStride, fc::ImagePolicy::kNone, true);
  fs::KvCache exact(kHeads, kDim, kStride, fc::ImagePolicy::kNone, false);
  fill_cache(quant, 3 * kRows, 24);
  fill_cache(exact, 3 * kRows, 24);

  const std::vector<Half> q = random_halves(kHeads * kDim, 25);
  const std::vector<float> a = decode_all_heads(quant, q);
  const std::vector<float> b = decode_all_heads(quant, q);
  const std::vector<float> e = decode_all_heads(exact, q);
  float max_dev = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);  // lossy but deterministic
    max_dev = std::max(max_dev, std::fabs(a[i] - e[i]));
  }
  // Attention outputs are convex combinations of V rows, so the deviation
  // is bounded by the V quantization step (~scale/2) plus the score
  // perturbation's reweighting — comfortably inside 0.05 for unit-variance
  // payloads at 8-bit resolution.
  EXPECT_LT(max_dev, 0.05f);
  EXPECT_GT(max_dev, 0.0f);  // it IS lossy — identical outputs would mean
                             // the quantized path was never exercised
}

// ---------------------------------------------------------------------------
// serve::TilePool + PagedKvCache + engine: mixed formats in one pool.
// ---------------------------------------------------------------------------

namespace {

fs::TilePoolOptions pool_options(std::size_t capacity = 0,
                                 bool images = false) {
  fs::TilePoolOptions o;
  o.layers = 2;
  o.heads = kHeads;
  o.dim = kDim;
  o.capacity_tiles = capacity;
  o.enc_stride = kStride;
  o.images = images ? fc::ImagePolicy::kF32 : fc::ImagePolicy::kNone;
  return o;
}

/// Drive one PagedKvCache through `tokens` appends on every layer.
void fill_paged(fs::PagedKvCache& cache, std::size_t layers,
                std::size_t tokens, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  const std::size_t w = kHeads * kDim;
  std::vector<Half> k(w), v(w);
  for (std::size_t t = 0; t < tokens; ++t) {
    ASSERT_TRUE(cache.ensure_capacity(cache.length() + 1));
    for (std::size_t i = 0; i < w; ++i) {
      k[i] = Half(dist(rng));
      v[i] = Half(dist(rng));
    }
    for (std::size_t l = 0; l < layers; ++l) {
      cache.append_chunk(l, k, v, 1);
    }
  }
}

}  // namespace

TEST(TilePoolQuant, I8FormatRequiresEncodingMemo) {
  fs::TilePoolOptions o = pool_options();
  o.enc_stride = 0;
  fs::TilePool pool(o);
  EXPECT_THROW((void)pool.acquire(fc::TileFmt::kI8), std::logic_error);
  EXPECT_THROW(fs::PagedKvCache(pool, fc::TileFmt::kI8), std::logic_error);
}

TEST(TilePoolQuant, SealedI8TileFreesStagingSlabAndShrinksFootprint) {
  fs::TilePool pool(pool_options(0, /*images=*/true));
  const std::size_t f16_bytes = pool.tile_bytes(fc::TileFmt::kF16);
  const std::size_t i8_bytes = pool.tile_bytes(fc::TileFmt::kI8);
  // The capacity win the gauges pin: >= 2.9x at dim 64, stride 8, with
  // fp32 images on (the engine default the int8 format displaces).
  EXPECT_GE(static_cast<double>(f16_bytes) / static_cast<double>(i8_bytes),
            2.9);

  fs::PagedKvCache cache(pool, fc::TileFmt::kI8);
  fill_paged(cache, pool.layers(), kRows, 31);  // exactly one sealed tile
  ASSERT_EQ(cache.block_table().size(), 1u);
  const auto id = cache.block_table()[0];
  EXPECT_TRUE(pool.sealed(id));
  EXPECT_EQ(pool.format(id), fc::TileFmt::kI8);
  // Staging slab freed: fp16 accessors null out, i8 block present.
  EXPECT_EQ(pool.k_tile(id, 0, 0), nullptr);
  EXPECT_EQ(pool.enc_block(id, 0, 0), nullptr);
  EXPECT_EQ(pool.f32_image(id, 0, 0), nullptr);
  EXPECT_NE(pool.i8_block(id, 0, 0), nullptr);
  EXPECT_EQ(pool.bytes_in_use(), i8_bytes);
}

TEST(TilePoolQuant, MixedFormatBytesAccountingIsPerTile) {
  fs::TilePool pool(pool_options());
  fs::PagedKvCache a(pool, fc::TileFmt::kI8);
  fs::PagedKvCache b(pool, fc::TileFmt::kF16);
  fill_paged(a, pool.layers(), kRows, 32);  // one sealed i8 tile
  fill_paged(b, pool.layers(), kRows, 33);  // one sealed fp16 tile
  EXPECT_EQ(pool.bytes_in_use(), pool.tile_bytes(fc::TileFmt::kI8) +
                                     pool.tile_bytes(fc::TileFmt::kF16));
  // An OPEN kI8 tile charges both its fp16 staging slab and its
  // (acquire-time) i8 slab; only the seal frees the staging slab.
  fill_paged(a, pool.layers(), 5, 34);
  EXPECT_EQ(pool.bytes_in_use(), 2 * pool.tile_bytes(fc::TileFmt::kI8) +
                                     2 * pool.tile_bytes(fc::TileFmt::kF16));
}

TEST(TilePoolQuant, RecycleConvertsFormatsBothWays) {
  fs::TilePool pool(pool_options(1));  // capacity 1: forced recycling
  fs::PagedKvCache a(pool, fc::TileFmt::kI8);
  fill_paged(a, pool.layers(), kRows, 35);
  const auto id = a.block_table()[0];
  EXPECT_EQ(pool.format(id), fc::TileFmt::kI8);
  a.release_all();
  fs::PagedKvCache b(pool, fc::TileFmt::kF16);
  fill_paged(b, pool.layers(), kRows, 36);
  ASSERT_EQ(b.block_table()[0], id);  // same physical tile, recycled
  EXPECT_EQ(pool.format(id), fc::TileFmt::kF16);
  EXPECT_EQ(pool.i8_block(id, 0, 0), nullptr);
  EXPECT_NE(pool.k_tile(id, 0, 0), nullptr);
}

TEST(TilePoolQuant, ScrubRepairsI8TileInPlace) {
  fs::TilePool pool(pool_options());
  fs::PagedKvCache cache(pool, fc::TileFmt::kI8);
  fill_paged(cache, pool.layers(), kRows, 37);
  const auto id = cache.block_table()[0];
  const auto L = fs::detail::i8_tile_layout(kDim, kStride);
  std::vector<std::uint8_t> pristine(pool.i8_block_bytes());
  std::memcpy(pristine.data(), pool.i8_block(id, 1, 1), pristine.size());

  fs::testing::flip_i8_bit(pool, id, 1, 1, L.k_off + 123, 5);
  auto rep = pool.scrub(8);
  EXPECT_EQ(rep.scanned, 1u);
  EXPECT_EQ(rep.repaired, 1u);
  EXPECT_TRUE(rep.dropped.empty());
  EXPECT_EQ(std::memcmp(pristine.data(), pool.i8_block(id, 1, 1),
                        pristine.size()),
            0);
  // Clean rescan: nothing left to repair.
  rep = pool.scrub(8);
  EXPECT_EQ(rep.repaired, 0u);
  EXPECT_TRUE(rep.dropped.empty());
}

TEST(TilePoolQuant, ScrubDropsUnrepairableI8Tile) {
  fs::TilePool pool(pool_options());
  fs::PagedKvCache cache(pool, fc::TileFmt::kI8);
  fill_paged(cache, pool.layers(), kRows, 38);
  const auto id = cache.block_table()[0];
  const auto L = fs::detail::i8_tile_layout(kDim, kStride);
  // Two faults in one residue class of the stored K^T array (stored rows 0
  // and s, column 0 — loop indices 0 and 1).  Different bits so the errors
  // are e0 = ±64, e1 = ±2: every sign combination gives d1 != 0, d2 != 0
  // and a non-integer d2/d1, so the double fault can never alias a
  // single-fault repair or a checksum flip, whatever the payload bytes are.
  fs::testing::flip_i8_bit(pool, id, 0, 0, L.k_off, 6);
  fs::testing::flip_i8_bit(
      pool, id, 0, 0, L.k_off + static_cast<std::size_t>(kStride) * kRows, 1);
  const auto rep = pool.scrub(8);
  ASSERT_EQ(rep.dropped.size(), 1u);
  EXPECT_EQ(rep.dropped[0], id);
  EXPECT_FALSE(pool.sealed(id));
}

TEST(TilePoolQuant, AttachSharedRejectsCrossFormat) {
  fs::TilePool pool(pool_options());
  fs::PagedKvCache a(pool, fc::TileFmt::kI8);
  fill_paged(a, pool.layers(), kRows, 39);
  const auto id = a.block_table()[0];
  const fs::ChainKey key = fs::chain_extend(fs::ChainKey{}, "x", 1);
  ASSERT_TRUE(pool.publish(id, key));

  fs::PagedKvCache b(pool, fc::TileFmt::kF16);
  const auto found = pool.lookup_shared(key);
  ASSERT_EQ(found, id);
  EXPECT_THROW(b.attach_shared(found), std::logic_error);
  pool.release(found);  // undo lookup's retain

  fs::PagedKvCache c(pool, fc::TileFmt::kI8);
  const auto again = pool.lookup_shared(key);
  ASSERT_EQ(again, id);
  c.attach_shared(again);  // same format: fine
  EXPECT_EQ(c.shared_tiles(), 1u);
  EXPECT_EQ(c.length(), kRows);
}

// ---------------------------------------------------------------------------
// Engine integration: per-request formats sharing one pool.
// ---------------------------------------------------------------------------

namespace {

fx::ModelConfig serving_config() {
  fx::ModelConfig cfg = fx::ModelConfig::tiny();
  cfg.causal = true;
  return cfg;
}

ft::MatrixF random_prompt(std::size_t seq, std::size_t hidden,
                          std::uint64_t seed) {
  ft::MatrixF m(seq, hidden);
  ft::fill_normal(m, seed);
  return m;
}

}  // namespace

TEST(EngineQuant, F16RequestsInMixedPoolStayBitwiseIdentical) {
  const fx::Model model(serving_config(), 0x1117);
  const std::size_t hidden = model.config().hidden;
  const ft::MatrixF p_f16 = random_prompt(90, hidden, 51);
  const ft::MatrixF p_i8 = random_prompt(90, hidden, 52);

  fs::DecodeEngine mixed(model);
  // Formats are explicit on both sides: the test's claim is about fp16
  // requests, whatever submit()'s FTT_KV_QUANT-controlled default is.
  const auto id_f = mixed.submit_with_format(p_f16, fc::TileFmt::kF16, 6);
  const auto id_q =
      mixed.submit_with_format(p_i8, fc::TileFmt::kI8, 6);
  mixed.run_until_idle();

  fs::DecodeEngine pure(model);
  const auto id_p = pure.submit_with_format(p_f16, fc::TileFmt::kF16, 6);
  pure.run_until_idle();

  const auto hm = mixed.hidden(id_f);
  const auto hp = pure.hidden(id_p);
  ASSERT_EQ(hm.size(), hp.size());
  for (std::size_t i = 0; i < hm.size(); ++i) {
    EXPECT_EQ(hm[i], hp[i]) << i;  // bitwise, despite the i8 pool-mate
  }
  EXPECT_GT(mixed.context_length(id_q), 90u);  // the i8 request ran too
}

TEST(EngineQuant, I8RequestDeterministicAndNearF16Twin) {
  const fx::Model model(serving_config(), 0x1118);
  const std::size_t hidden = model.config().hidden;
  const ft::MatrixF prompt = random_prompt(150, hidden, 53);

  fs::EngineOptions qopt;
  qopt.kv_quant = true;
  fs::DecodeEngine q1(model, qopt), q2(model, qopt);
  const auto a = q1.submit(prompt, 8);
  const auto b = q2.submit(prompt, 8);
  q1.run_until_idle();
  q2.run_until_idle();

  fs::DecodeEngine f(model);
  const auto c = f.submit(prompt, 8);
  f.run_until_idle();

  const auto ha = q1.hidden(a), hb = q2.hidden(b), hc = f.hidden(c);
  ASSERT_EQ(ha.size(), hc.size());
  float max_dev = 0.0f;
  for (std::size_t i = 0; i < ha.size(); ++i) {
    EXPECT_EQ(ha[i], hb[i]) << i;  // quantized runs are deterministic
    max_dev = std::max(max_dev, std::fabs(ha[i] - hc[i]));
  }
  // Documented parity tolerance for the int8 KV path (docs/QUANTIZATION.md):
  // hidden-state drift after prefill + 8 generated tokens on the tiny
  // model stays within 0.25 absolute of the fp16 twin.
  EXPECT_LT(max_dev, 0.25f);
}

TEST(EngineQuant, PrefixSharingWorksWithinI8AndNeverCrossesFormats) {
  const fx::Model model(serving_config(), 0x1119);
  const std::size_t hidden = model.config().hidden;
  const ft::MatrixF prompt = random_prompt(130, hidden, 54);  // 2 shareable

  fs::DecodeEngine engine(model);
  const auto q1 = engine.submit_with_format(prompt, fc::TileFmt::kI8, 3);
  engine.run_until_idle();
  // Same prompt, same format: the sealed i8 prompt tiles are attached.
  // (Counts read after the admission tick — retirement releases the cache.)
  const auto q2 = engine.submit_with_format(prompt, fc::TileFmt::kI8, 3);
  engine.step();
  EXPECT_EQ(engine.shared_tile_count(q2), 2u);
  engine.run_until_idle();
  // Same prompt, fp16 (explicit — submit()'s default follows FTT_KV_QUANT):
  // the format-tagged chain key must MISS the i8 tiles.
  const auto f1 = engine.submit_with_format(prompt, fc::TileFmt::kF16, 3);
  engine.step();
  EXPECT_EQ(engine.shared_tile_count(f1), 0u);
  engine.run_until_idle();
  // And the shared i8 request replays the private one bit for bit.
  const auto h1 = engine.hidden(q1), h2 = engine.hidden(q2);
  for (std::size_t i = 0; i < h1.size(); ++i) EXPECT_EQ(h1[i], h2[i]);
}

TEST(EngineQuant, ScrubberRepairsI8TilesInServingPool) {
  const fx::Model model(serving_config(), 0x111a);
  const std::size_t hidden = model.config().hidden;
  fs::EngineOptions opt;
  opt.kv_quant = true;
  opt.recovery.scrub_tiles_per_tick = 64;
  fs::DecodeEngine engine(model, opt);
  const auto id = engine.submit(random_prompt(70, hidden, 55), 12);
  engine.drain(3);  // prefill + decode: at least one sealed i8 tile
  fs::TilePool& pool = fs::testing::engine_pool(engine);
  ASSERT_GT(pool.in_use(), 0u);
  const auto L = fs::detail::i8_tile_layout(model.config().head_dim(),
                                            opt.efta.stride);
  fs::testing::flip_i8_bit(pool, 0, 0, 0, L.v_off + 7, 3);
  const auto stats = engine.drain(2);
  EXPECT_GE(stats.scrubbed, 1u);
  EXPECT_GE(stats.repaired, 1u);
  EXPECT_EQ(stats.scrub_dropped, 0u);
  engine.run_until_idle();
  EXPECT_EQ(engine.context_length(id), 70u + 12u);
}
