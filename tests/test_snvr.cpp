// Selective neuron value restriction: range bounds (Case 3) and the case
// analysis of §3.4.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "softmax/snvr.hpp"

namespace fm = ftt::softmax;

TEST(SnvrLowerBound, SumOfBlockMaxTerms) {
  const std::vector<float> maxes{1.0f, 3.0f, 2.0f};
  const double lb = fm::snvr_lower_bound(maxes, 3.0f);
  EXPECT_NEAR(lb, std::exp(-2.0) + 1.0 + std::exp(-1.0), 1e-5);
}

TEST(SnvrLowerBound, GlobalMaxContributesOne) {
  // The block holding the global max contributes exactly exp(0) = 1, so the
  // bound is always >= 1.
  const std::vector<float> maxes{-5.0f, 0.0f, -3.0f};
  EXPECT_GE(fm::snvr_lower_bound(maxes, 0.0f), 1.0);
}

TEST(SnvrRange, AcceptsTrueRowsum) {
  // A genuine rowsum: sum over all entries of exp(s - max), always within
  // [lower bound, seq_len].
  const std::vector<float> maxes{0.5f, 1.5f};
  const float global = 1.5f;
  // Simulate 2 blocks of 4 entries each.
  double rowsum = 0.0;
  const float entries[2][4] = {{0.5f, 0.1f, -1.0f, 0.3f},
                               {1.5f, 0.2f, 1.0f, -0.5f}};
  for (const auto& blk : entries) {
    for (float e : blk) rowsum += std::exp(e - global);
  }
  const auto res = fm::snvr_check_rowsum(static_cast<float>(rowsum), maxes,
                                         global, 8);
  EXPECT_FALSE(res.violated);
  EXPECT_FLOAT_EQ(res.corrected_value, static_cast<float>(rowsum));
}

TEST(SnvrRange, RejectsTooSmall) {
  const std::vector<float> maxes{0.0f, 0.0f};
  // Lower bound is 2.0; a rowsum of 0.5 is impossible.
  const auto res = fm::snvr_check_rowsum(0.5f, maxes, 0.0f, 128);
  EXPECT_TRUE(res.violated);
  EXPECT_NEAR(res.corrected_value, 2.0f, 1e-5f);
}

TEST(SnvrRange, RejectsAboveSeqLen) {
  const std::vector<float> maxes{0.0f};
  // Every exp(s - max) <= 1, so rowsum <= seq_len = 64.
  const auto res = fm::snvr_check_rowsum(100.0f, maxes, 0.0f, 64);
  EXPECT_TRUE(res.violated);
}

TEST(SnvrRange, RejectsNonFinite) {
  const std::vector<float> maxes{0.0f};
  EXPECT_TRUE(fm::snvr_check_rowsum(std::numeric_limits<float>::infinity(),
                                    maxes, 0.0f, 64)
                  .violated);
  EXPECT_TRUE(fm::snvr_check_rowsum(std::numeric_limits<float>::quiet_NaN(),
                                    maxes, 0.0f, 64)
                  .violated);
}

TEST(SnvrRange, SlackAbsorbsRounding) {
  const std::vector<float> maxes{0.0f, 0.0f};
  // Just under the lower bound by less than the slack: accepted.
  const auto res = fm::snvr_check_rowsum(2.0f * (1.0f - 5e-4f), maxes, 0.0f,
                                         128, /*slack=*/1e-3f);
  EXPECT_FALSE(res.violated);
  // Beyond the slack: rejected.
  const auto res2 = fm::snvr_check_rowsum(2.0f * (1.0f - 5e-3f), maxes, 0.0f,
                                          128, /*slack=*/1e-3f);
  EXPECT_TRUE(res2.violated);
}

TEST(SnvrRange, CorrectionIsTheLowerBound) {
  // Paper §3.4: the replacement value is Σ_k exp(m_ik − m_ij) — attention
  // mass concentrates at per-block maxima, so this approximation keeps the
  // relative ordering of the output.
  const std::vector<float> maxes{2.0f, 4.0f, 3.0f};
  const auto res = fm::snvr_check_rowsum(1e30f, maxes, 4.0f, 1024);
  EXPECT_TRUE(res.violated);
  const double expect = std::exp(-2.0) + 1.0 + std::exp(-1.0);
  EXPECT_NEAR(res.corrected_value, expect, 1e-5);
}

TEST(SnvrCase1, MaxErrorsCancelInStreamingSoftmax) {
  // Case 1 (§3.4): a corrupted running max changes P and l consistently, so
  // the normalized output is unchanged.  Emulate one row, two blocks.
  const float s[8] = {0.1f, -0.4f, 0.7f, 0.2f, -0.1f, 0.9f, 0.3f, -0.6f};
  auto run = [&](float forced_max) {
    // Streaming evaluation with (possibly wrong) stabilizer m.
    double l = 0.0, o = 0.0;  // o: weighted sum with weights = index
    for (int i = 0; i < 8; ++i) {
      const double p = std::exp(s[i] - forced_max);
      l += p;
      o += p * static_cast<double>(i);
    }
    return o / l;
  };
  const double correct = run(0.9f);
  const double corrupted_high = run(5.0f);   // max flipped upward
  const double corrupted_low = run(-2.0f);   // max flipped downward
  EXPECT_NEAR(correct, corrupted_high, 1e-5);
  EXPECT_NEAR(correct, corrupted_low, 1e-5);
}
