// Bit-identity of the fp16-operand fused microkernels (numeric::gemm_f32_nnh
// and numeric::axpy_f32_h) against their scalar references and against the
// widen-then-dispatch path they replace.
//
// These kernels carry the decode hot loop after the fp32-image retirement:
// sealed KV payload stays in binary16 and is widened 8 (or 16) lanes at a
// time inside the kernel, so the bitwise chunk/batch/spec/shard proofs now
// rest on two facts proved here exhaustively:
//
//   1. the in-kernel vcvtph2ps widen agrees with the scalar
//      half_bits_to_float table on every one of the 65536 binary16 bit
//      patterns (including subnormals, infinities, and NaNs — signaling
//      NaNs are quieted identically on both paths), and
//   2. with the widen exact and all operands fp16-valued, the fused kernels
//      fix the same ascending-k accumulation order as gemm_f32_nn over a
//      pre-widened image, so fusing the conversion changes no result bit
//      on any shape, ragged tails and strided outputs included.
//
// The single-pass sealed-tile encodes (abft::StridedAbft::*_strided_h) sit
// on the same axpy_f32_h order, so their parity with the widened-image
// encodes is proved here too.

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "abft/strided_abft.hpp"
#include "numeric/fp16.hpp"
#include "numeric/gemm_simd.hpp"
#include "tensor/tensor.hpp"

namespace fn = ftt::numeric;
using ftt::abft::StridedAbft;
using ftt::numeric::Half;
using ftt::tensor::MatrixH;

namespace {

/// Random fp16-valued fp32 buffer (the kernels' exact-product precondition).
std::vector<float> random_fp16_values(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  std::vector<float> f(n);
  for (auto& x : f) x = Half(dist(rng)).to_float();
  return f;
}

/// The same buffer as raw halves (for the B operand of the fused kernels).
std::vector<Half> random_halves(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  std::vector<Half> h(n);
  for (auto& x : h) x = Half(dist(rng));
  return h;
}

bool bits_equal(const MatrixH& a, const MatrixH& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(),
                     a.rows() * a.cols() * sizeof(Half)) == 0;
}

}  // namespace

TEST(Fp16Gemm, WideningBitParityExhaustiveOverAllPatterns) {
  // Every binary16 bit pattern flows through the in-kernel widen exactly
  // once: y = 0 + 1.0 * widen(x) over all 65536 patterns in one call, so
  // the SIMD tail handling and every vcvtph2ps lane position are exercised.
  // The dispatch and scalar paths must agree bit for bit on the full
  // output, NaN payloads included (cvtph quiets signaling NaNs exactly as
  // half_bits_to_float does).
  constexpr std::size_t kPatterns = 1u << 16;
  std::vector<Half> x(kPatterns);
  for (std::size_t i = 0; i < kPatterns; ++i) {
    x[i] = Half::from_bits(static_cast<std::uint16_t>(i));
  }
  std::vector<float> y_simd(kPatterns, 0.0f), y_ref(kPatterns, 0.0f);
  fn::axpy_f32_h(1.0f, x.data(), y_simd.data(), kPatterns);
  fn::axpy_f32_h_scalar(1.0f, x.data(), y_ref.data(), kPatterns);
  ASSERT_EQ(0,
            std::memcmp(y_simd.data(), y_ref.data(), kPatterns * sizeof(float)))
      << "in-kernel widen diverged from scalar on some bit pattern";
  // On the numeric patterns (everything but NaNs; +/-0 fold to +0 under
  // the *1.0 + 0.0 identity on both paths), the scalar reference must also
  // equal the exact table widening — anchoring both paths to the binary16
  // value, not merely to each other.
  for (std::size_t i = 0; i < kPatterns; ++i) {
    const auto h = static_cast<std::uint16_t>(i);
    if (x[i].is_nan()) continue;
    const float expect = 1.0f * fn::half_bits_to_float(h) + 0.0f;
    std::uint32_t eb, rb;
    std::memcpy(&eb, &expect, sizeof(eb));
    std::memcpy(&rb, &y_ref[i], sizeof(rb));
    ASSERT_EQ(eb, rb) << "scalar widen wrong for pattern 0x" << std::hex << h;
  }
}

TEST(Fp16Gemm, AxpyHalfMatchesScalarBitwiseOnRaggedLengths) {
  // Lengths straddle the vector tails: below one AVX2 vector, below one
  // AVX-512 vector, exact multiples, and off-by-one around them.
  for (const std::size_t n :
       {std::size_t{1}, std::size_t{3}, std::size_t{7}, std::size_t{8},
        std::size_t{9}, std::size_t{15}, std::size_t{16}, std::size_t{17},
        std::size_t{31}, std::size_t{64}, std::size_t{100}}) {
    const auto x = random_halves(n, 100 + n);
    const auto y0 = random_fp16_values(n, 200 + n);
    const auto a = random_fp16_values(1, 300 + n);
    std::vector<float> y_simd = y0, y_ref = y0;
    fn::axpy_f32_h(a[0], x.data(), y_simd.data(), n);
    fn::axpy_f32_h_scalar(a[0], x.data(), y_ref.data(), n);
    ASSERT_EQ(0, std::memcmp(y_simd.data(), y_ref.data(), n * sizeof(float)))
        << "axpy_f32_h diverged from scalar at n=" << n;
  }
}

TEST(Fp16Gemm, GemmHalfMatchesScalarBitwiseOnRaggedShapes) {
  // Shapes cover the panel structure of the fused kernel: N crossing the
  // vector panels and their scalar tails, K tiny and non-power-of-two,
  // both fresh and accumulating outputs.
  struct Shape {
    std::size_t M, K, N;
  };
  const Shape shapes[] = {{1, 64, 64},  {1, 64, 8},   {3, 16, 33},
                          {2, 1, 1},    {5, 7, 31},   {4, 64, 65},
                          {1, 48, 127}, {8, 13, 96},  {2, 100, 40},
                          {1, 8, 200},  {7, 21, 17}};
  std::uint64_t seed = 1;
  for (const auto& sh : shapes) {
    for (const bool accumulate : {false, true}) {
      const auto A = random_fp16_values(sh.M * sh.K, seed++);
      const auto B = random_halves(sh.K * sh.N, seed++);
      const auto C0 = random_fp16_values(sh.M * sh.N, seed++);
      std::vector<float> c_simd = C0, c_ref = C0;
      fn::gemm_f32_nnh(A.data(), sh.M, sh.K, B.data(), sh.N, c_simd.data(),
                       sh.N, accumulate);
      fn::gemm_f32_nnh_scalar(A.data(), sh.M, sh.K, B.data(), sh.N,
                              c_ref.data(), sh.N, accumulate);
      ASSERT_EQ(0, std::memcmp(c_simd.data(), c_ref.data(),
                               sh.M * sh.N * sizeof(float)))
          << "gemm_f32_nnh diverged from scalar at M=" << sh.M
          << " K=" << sh.K << " N=" << sh.N << " acc=" << accumulate;
    }
  }
}

TEST(Fp16Gemm, GemmHalfHonorsOutputStride) {
  // ldc > N: the fused kernel must leave the gutter columns untouched and
  // match the scalar reference on the written ones.
  constexpr std::size_t M = 5, K = 37, N = 29, ldc = 40;
  const auto A = random_fp16_values(M * K, 7001);
  const auto B = random_halves(K * N, 7002);
  const auto C0 = random_fp16_values(M * ldc, 7003);
  std::vector<float> c_simd = C0, c_ref = C0;
  fn::gemm_f32_nnh(A.data(), M, K, B.data(), N, c_simd.data(), ldc, true);
  fn::gemm_f32_nnh_scalar(A.data(), M, K, B.data(), N, c_ref.data(), ldc,
                          true);
  ASSERT_EQ(0, std::memcmp(c_simd.data(), c_ref.data(),
                           M * ldc * sizeof(float)));
  for (std::size_t r = 0; r < M; ++r) {
    for (std::size_t c = N; c < ldc; ++c) {
      ASSERT_EQ(C0[r * ldc + c], c_ref[r * ldc + c])
          << "gutter column written at (" << r << ", " << c << ")";
    }
  }
}

TEST(Fp16Gemm, FusedMatchesWidenThenDispatchBitwise) {
  // The retirement contract: streaming the Half operand through the fused
  // kernel produces the same bits as widening it to an fp32 image first and
  // running the fp32 dispatch — the fp32 image holds exactly representable
  // values, the widen is exact, and both kernels fix ascending-k order.
  struct Shape {
    std::size_t M, K, N;
  };
  const Shape shapes[] = {{1, 64, 64}, {4, 64, 65}, {3, 16, 33}, {1, 8, 200}};
  std::uint64_t seed = 9000;
  for (const auto& sh : shapes) {
    const auto A = random_fp16_values(sh.M * sh.K, seed++);
    const auto B = random_halves(sh.K * sh.N, seed++);
    std::vector<float> Bf(sh.K * sh.N);
    fn::halves_to_floats(B.data(), Bf.data(), Bf.size());
    std::vector<float> c_fused(sh.M * sh.N, 0.0f), c_image(sh.M * sh.N, 0.0f);
    fn::gemm_f32_nnh(A.data(), sh.M, sh.K, B.data(), sh.N, c_fused.data(),
                     sh.N, false);
    fn::gemm_f32_nn(A.data(), sh.M, sh.K, Bf.data(), sh.N, c_image.data(),
                    sh.N, false);
    ASSERT_EQ(0, std::memcmp(c_fused.data(), c_image.data(),
                             sh.M * sh.N * sizeof(float)))
        << "fused kernel diverged from widen-then-gemm at M=" << sh.M
        << " K=" << sh.K << " N=" << sh.N;
  }
}

TEST(Fp16Gemm, SinglePassStridedEncodesMatchWidenedImageEncodes) {
  // The seal path encodes checksums straight off the Half tile now; the
  // result must be bit-identical to the retired two-pass flow (widen the
  // tile to fp32, then encode the image) for every stride and weighting.
  constexpr std::size_t kRows = 64;
  constexpr std::size_t kCols = 48;
  const auto tile = random_halves(kRows * kCols, 0xabf7);
  std::vector<float> image(kRows * kCols);
  fn::halves_to_floats(tile.data(), image.data(), image.size());
  for (const int s : {4, 8, 16}) {
    for (const bool weighted : {false, true}) {
      const MatrixH rows_h = StridedAbft::encode_rows_strided_h(
          tile.data(), kRows, kCols, s, weighted, nullptr);
      const MatrixH rows_w = StridedAbft::encode_rows_strided_widened(
          image.data(), kRows, kCols, s, weighted, nullptr);
      EXPECT_TRUE(bits_equal(rows_h, rows_w))
          << "row encode diverged at s=" << s << " weighted=" << weighted;
      const MatrixH cols_h = StridedAbft::encode_cols_strided_h(
          tile.data(), kRows, kCols, s, weighted, nullptr);
      const MatrixH cols_w = StridedAbft::encode_cols_strided_widened(
          image.data(), kRows, kCols, s, weighted, nullptr);
      EXPECT_TRUE(bits_equal(cols_h, cols_w))
          << "col encode diverged at s=" << s << " weighted=" << weighted;
    }
  }
}
