// Paged KV tile pool: refcounting, LRU eviction and prefix-registry unit
// tests; PagedKvCache bit-parity with the per-request KvCache; and the
// randomized engine stress test the acceptance criteria name — refcounts
// never underflow, evicted tiles are never reachable from a live block
// table, shared-prefix decode is bit-identical to unshared decode, and a
// preempted-then-readmitted request replays an uninterrupted run exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <vector>

#include "core/decode.hpp"
#include "fault/fault.hpp"
#include "serve/engine.hpp"
#include "serve/kv_cache.hpp"
#include "serve/tile_pool.hpp"
#include "tensor/random.hpp"
#include "transformer/model.hpp"

namespace fc = ftt::core;
namespace fs = ftt::serve;
namespace ft = ftt::tensor;
namespace fx = ftt::transformer;
using ftt::numeric::Half;

namespace {

fs::TilePoolOptions pool_opts(std::size_t layers, std::size_t heads,
                              std::size_t dim, std::size_t capacity) {
  fs::TilePoolOptions opt;
  opt.layers = layers;
  opt.heads = heads;
  opt.dim = dim;
  opt.capacity_tiles = capacity;
  return opt;
}

fx::ModelConfig serving_config() {
  fx::ModelConfig cfg = fx::ModelConfig::tiny();
  cfg.causal = true;
  return cfg;
}

ft::MatrixF random_prompt(std::size_t seq, std::size_t hidden,
                          std::uint64_t seed) {
  ft::MatrixF m(seq, hidden);
  ft::fill_normal(m, seed);
  return m;
}

std::vector<Half> random_halves(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  std::vector<Half> v(n);
  for (auto& x : v) x = Half(dist(rng));
  return v;
}

}  // namespace

TEST(ChainKey, ExtendIsDeterministicAndOrderSensitive) {
  const float data1[4] = {1.0f, 2.0f, 3.0f, 4.0f};
  const float data2[4] = {4.0f, 3.0f, 2.0f, 1.0f};
  const fs::ChainKey root;
  const fs::ChainKey a = fs::chain_extend(root, data1, sizeof(data1));
  const fs::ChainKey b = fs::chain_extend(root, data1, sizeof(data1));
  EXPECT_EQ(a, b);  // deterministic
  EXPECT_FALSE(a == fs::chain_extend(root, data2, sizeof(data2)));
  // Chain order matters: H(H(root, x), y) != H(H(root, y), x).
  const fs::ChainKey xy =
      fs::chain_extend(fs::chain_extend(root, data1, sizeof(data1)), data2,
                       sizeof(data2));
  const fs::ChainKey yx =
      fs::chain_extend(fs::chain_extend(root, data2, sizeof(data2)), data1,
                       sizeof(data1));
  EXPECT_FALSE(xy == yx);
  // The two lanes are independent hashes, not copies of each other.
  EXPECT_NE(a.a, a.b);
}

TEST(TilePool, RefcountingCapacityAndUnderflow) {
  fs::TilePool pool(pool_opts(2, 2, 32, 3));
  EXPECT_EQ(pool.capacity(), 3u);
  EXPECT_EQ(pool.allocatable(), 3u);
  EXPECT_EQ(pool.in_use(), 0u);

  const auto a = pool.acquire();
  const auto b = pool.acquire();
  const auto c = pool.acquire();
  ASSERT_NE(a, fs::TilePool::kNoTile);
  ASSERT_NE(c, fs::TilePool::kNoTile);
  EXPECT_EQ(pool.in_use(), 3u);
  EXPECT_EQ(pool.allocatable(), 0u);
  // Every tile referenced: acquisition fails, it does not evict.
  EXPECT_EQ(pool.acquire(), fs::TilePool::kNoTile);

  pool.retain(b);
  EXPECT_EQ(pool.refcount(b), 2u);
  pool.release(b);
  EXPECT_EQ(pool.refcount(b), 1u);
  pool.release(b);
  EXPECT_EQ(pool.in_use(), 2u);
  EXPECT_THROW(pool.release(b), std::logic_error);  // underflow is corruption

  // The dead (unpublished) tile is reclaimed for the next acquire, zeroed.
  pool.k_tile(a, 0, 0)[0] = Half(1.0f);  // dirty a referenced tile
  const auto d = pool.acquire();
  EXPECT_EQ(d, b);  // reused, not freshly allocated
  EXPECT_EQ(pool.allocated(), 3u);
  EXPECT_EQ(pool.k_tile(d, 1, 1)[5].bits(), 0u);  // recycled tiles are zeroed

  // Unbounded pools never fail.
  fs::TilePool grow(pool_opts(1, 1, 32, 0));
  EXPECT_EQ(grow.allocatable(), SIZE_MAX);
  for (int i = 0; i < 10; ++i) EXPECT_NE(grow.acquire(), fs::TilePool::kNoTile);
  EXPECT_EQ(grow.allocated(), 10u);
}

TEST(TilePool, PrefixRegistryLruEvictionAndRescue) {
  fs::TilePool pool(pool_opts(1, 1, 32, 3));
  const float seed0[1] = {0.5f}, seed1[1] = {1.5f}, seed2[1] = {2.5f};
  const fs::ChainKey k0 = fs::chain_extend({}, seed0, sizeof(seed0));
  const fs::ChainKey k1 = fs::chain_extend({}, seed1, sizeof(seed1));
  const fs::ChainKey k2 = fs::chain_extend({}, seed2, sizeof(seed2));

  const auto t0 = pool.acquire();
  const auto t1 = pool.acquire();
  const auto t2 = pool.acquire();
  EXPECT_THROW(pool.publish(t0, k0), std::logic_error);  // must seal first
  pool.seal(t0);
  pool.seal(t1);
  pool.seal(t2);
  EXPECT_TRUE(pool.publish(t0, k0));
  EXPECT_TRUE(pool.publish(t1, k1));
  EXPECT_TRUE(pool.publish(t2, k2));
  EXPECT_FALSE(pool.publish(t1, k0));  // first writer wins per key
  EXPECT_EQ(pool.published(), 3u);

  // A hit retains the tile for the caller.
  const auto hit = pool.lookup_shared(k1);
  EXPECT_EQ(hit, t1);
  EXPECT_EQ(pool.refcount(t1), 2u);
  EXPECT_EQ(pool.shared_hits(), 1u);
  EXPECT_EQ(pool.lookup_shared(fs::chain_extend({}, seed0, 0)),
            fs::TilePool::kNoTile);

  // Release in a known order; cached tiles stay discoverable until evicted.
  pool.release(t0);  // LRU
  pool.release(t2);
  pool.release(t1);
  pool.release(t1);  // MRU (was double-referenced)
  EXPECT_EQ(pool.in_use(), 0u);
  EXPECT_EQ(pool.published(), 3u);  // still cached, still attachable

  // A lookup rescues an unreferenced cached tile from the LRU list...
  const auto rescued = pool.lookup_shared(k0);
  EXPECT_EQ(rescued, t0);
  EXPECT_EQ(pool.refcount(t0), 1u);

  // ...so the next acquire evicts the *oldest remaining* cached tile (t2),
  // unregistering its key.
  const auto evicted = pool.acquire();
  EXPECT_EQ(evicted, t2);
  EXPECT_EQ(pool.evictions(), 1u);
  EXPECT_EQ(pool.published(), 2u);
  EXPECT_EQ(pool.lookup_shared(k2), fs::TilePool::kNoTile);
  // t1 (MRU cached) survives and evicts last.
  const auto evicted2 = pool.acquire();
  EXPECT_EQ(evicted2, t1);
  EXPECT_EQ(pool.evictions(), 2u);
  EXPECT_EQ(pool.acquire(), fs::TilePool::kNoTile);  // all referenced again
}

TEST(PagedKvCache, BitIdenticalToPerRequestKvCache) {
  constexpr std::size_t kLayers = 2, kHeads = 2, kDim = 32, kTokens = 150;
  fs::TilePool pool(pool_opts(kLayers, kHeads, kDim, 0));
  // Explicit fp16: this test pins the pooled fp16 storage bit-identical to
  // the per-request KvCache, so it must not follow the FTT_KV_QUANT
  // default (a sealed kI8 tile frees the fp16 slab the comparison reads).
  fs::PagedKvCache paged(pool, fc::TileFmt::kF16);

  // Reference caches, one per layer, fed identical tokens.
  std::vector<fs::KvCache> ref;
  for (std::size_t l = 0; l < kLayers; ++l) ref.emplace_back(kHeads, kDim);

  // Mixed chunk schedule crossing tile boundaries, like real ticks.
  const std::size_t chunks[] = {64, 50, 1, 35};
  std::size_t base = 0;
  for (const std::size_t rows : chunks) {
    ASSERT_TRUE(paged.ensure_capacity(base + rows));
    for (std::size_t l = 0; l < kLayers; ++l) {
      const auto k = random_halves(rows * kHeads * kDim, 100 + base * 7 + l);
      const auto v = random_halves(rows * kHeads * kDim, 900 + base * 7 + l);
      paged.append_chunk(l, k, v, rows);
      ref[l].append_chunk(k, v, rows);
    }
    base += rows;
  }
  ASSERT_EQ(base, kTokens);
  EXPECT_EQ(paged.length(), kTokens);
  EXPECT_EQ(paged.block_table().size(), 3u);
  EXPECT_EQ(paged.shared_tiles(), 0u);

  // Tiles, lengths and sealed encodings all match the per-request cache bit
  // for bit — the paged path is the same computation over pooled storage.
  for (std::size_t l = 0; l < kLayers; ++l) {
    for (std::size_t h = 0; h < kHeads; ++h) {
      const fc::KvSlice a = ref[l].slice(h);
      const fc::KvSlice b = paged.slice(l, h);
      ASSERT_EQ(a.n, b.n);
      ASSERT_EQ(a.enc_stride, b.enc_stride);
      for (std::size_t t = 0; t < a.tiles(); ++t) {
        for (std::size_t i = 0; i < fs::KvCache::kTileRows * kDim; ++i) {
          ASSERT_EQ(a.k_tiles[t][i].bits(), b.k_tiles[t][i].bits());
          ASSERT_EQ(a.v_tiles[t][i].bits(), b.v_tiles[t][i].bits());
        }
        ASSERT_EQ(a.k_c1[t] == nullptr, b.k_c1[t] == nullptr) << t;
        if (a.k_c1[t] != nullptr) {
          const auto su = static_cast<std::size_t>(a.enc_stride);
          for (std::size_t i = 0; i < su * kDim; ++i) {
            ASSERT_EQ(a.k_c1[t][i].bits(), b.k_c1[t][i].bits());
            ASSERT_EQ(a.k_c2[t][i].bits(), b.k_c2[t][i].bits());
          }
          for (std::size_t i = 0; i < fs::KvCache::kTileRows * su; ++i) {
            ASSERT_EQ(a.v_c1[t][i].bits(), b.v_c1[t][i].bits());
            ASSERT_EQ(a.v_c2[t][i].bits(), b.v_c2[t][i].bits());
          }
        }
      }
    }
  }

  // Appending beyond ensured capacity is a protocol violation, not an
  // implicit allocation — the engine's memory phase is the only allocator.
  const auto k1 = random_halves(kHeads * kDim, 77);
  EXPECT_THROW(paged.append_chunk(0, k1, k1, fs::KvCache::kTileRows),
               std::logic_error);

  // Full tiles sealed through the pool are attachable by another cache and
  // arrive with rows and encodings already populated.
  fs::PagedKvCache sharer(pool, fc::TileFmt::kF16);  // match paged's format
  const auto tid = paged.block_table()[0];
  ASSERT_TRUE(pool.sealed(tid));
  pool.retain(tid);  // lookup_shared would do this on a registry hit
  sharer.attach_shared(tid);
  EXPECT_EQ(sharer.length(), 64u);
  EXPECT_EQ(sharer.shared_tiles(), 1u);
  const fc::KvSlice shared = sharer.slice(1, 1);
  EXPECT_EQ(shared.k_tiles[0], paged.slice(1, 1).k_tiles[0]);  // same storage
  EXPECT_NE(shared.k_c1[0], nullptr);  // sharing a tile shares its memo

  // release_all drops every reference; the pool sees the tiles again.
  const std::size_t before = pool.in_use();
  sharer.release_all();
  paged.release_all();
  EXPECT_EQ(pool.in_use(), before - 3u);  // 3 tiles, one double-referenced
  EXPECT_EQ(paged.length(), 0u);
}

TEST(TilePool, EngineStressSharingEvictionPreemptionInvariants) {
  // The acceptance stress test: random mixed-priority traffic over a tight
  // pool, with three groups of requests sharing two common prompts.  Every
  // tick, walk the live block tables and check the pool's refcounts against
  // them exactly; at the end, compare every request against an unshared,
  // unpreempted solo run bit for bit.
  const fx::Model model(serving_config(), 0x70013);
  const std::size_t hidden = model.config().hidden;

  fs::EngineOptions opt;
  opt.scheduler.max_batch_size = 4;
  opt.scheduler.max_kv_tiles = 8;  // tight: forces eviction + preemption
  fs::DecodeEngine engine(model, opt);

  // Prompts: groups A and B share 130- and 150-row prompts (2 shareable
  // sealed tiles each); the rest are unique.
  const ft::MatrixF prompt_a = random_prompt(130, hidden, 0xa);
  const ft::MatrixF prompt_b = random_prompt(150, hidden, 0xb);
  constexpr std::size_t kRequests = 10;
  std::mt19937_64 rng(0x5eed5);
  std::uniform_int_distribution<std::size_t> budget_dist(2, 5);
  std::uniform_int_distribution<std::size_t> gap_dist(0, 4);
  std::uniform_int_distribution<int> pri_dist(0, 2);

  std::vector<ft::MatrixF> prompts;
  std::vector<std::size_t> budgets, arrival;
  std::vector<fs::Priority> pris;
  std::size_t at = 0;
  for (std::size_t i = 0; i < kRequests; ++i) {
    if (i % 3 == 0) {
      prompts.push_back(prompt_a);
    } else if (i % 3 == 1) {
      prompts.push_back(prompt_b);
    } else {
      prompts.push_back(random_prompt(40 + 17 * i, hidden, 0x100 + i));
    }
    budgets.push_back(budget_dist(rng));
    pris.push_back(static_cast<fs::Priority>(pri_dist(rng)));
    arrival.push_back(at);
    at += gap_dist(rng);
  }

  std::vector<fs::DecodeEngine::RequestId> ids(kRequests, 0);
  std::vector<bool> submitted(kRequests, false);
  fs::DecodeEngine::StepStats sum;
  std::size_t tick = 0;
  const std::size_t kMaxTicks = 5000;
  for (; tick < kMaxTicks; ++tick) {
    for (std::size_t i = 0; i < kRequests; ++i) {
      if (!submitted[i] && arrival[i] <= tick) {
        ids[i] = engine.submit(prompts[i], budgets[i], pris[i]);
        submitted[i] = true;
      }
    }
    sum += engine.step();

    // Pool invariants, every tick: nothing over capacity, and the pool's
    // per-tile refcounts equal exactly the number of live block tables
    // mapping the tile.  A tile any live request can reach is therefore
    // always referenced — the free lists and eviction can never touch it —
    // and a refcount underflow throws inside release() itself.
    EXPECT_LE(engine.kv_tiles_in_use(), opt.scheduler.max_kv_tiles);
    EXPECT_LE(engine.pool().allocated(), opt.scheduler.max_kv_tiles);
    std::map<fs::TilePool::TileId, std::size_t> mapped;
    for (std::size_t i = 0; i < kRequests; ++i) {
      if (!submitted[i] || !engine.is_active(ids[i])) continue;
      for (const auto tid : engine.kv_block_table(ids[i])) ++mapped[tid];
    }
    std::size_t referenced = 0;
    for (const auto& [tid, count] : mapped) {
      EXPECT_EQ(engine.pool().refcount(tid), count) << "tile " << tid;
      ++referenced;
    }
    EXPECT_EQ(engine.kv_tiles_in_use(), referenced);

    const bool all_submitted =
        std::all_of(submitted.begin(), submitted.end(), [](bool b) { return b; });
    if (all_submitted && engine.queued() == 0 && engine.active() == 0) break;
  }
  ASSERT_LT(tick, kMaxTicks) << "stress run did not drain — livelock?";

  // The schedule actually exercised what it is meant to: prefix sharing and
  // memory-pressure preemption both fired, and retirements released every
  // reference.
  EXPECT_GT(sum.shared_tiles, 0u);
  EXPECT_GT(sum.preempted, 0u);
  EXPECT_GT(engine.pool().shared_hits(), 0u);
  EXPECT_EQ(engine.kv_tiles_in_use(), 0u);
  EXPECT_EQ(engine.kv_bytes(), 0u);

  // Shared-prefix, evicted, preempted — none of it changes results: every
  // request matches a solo engine with sharing disabled and an unbounded
  // pool (never preempted, never shared), bit for bit.
  for (std::size_t i = 0; i < kRequests; ++i) {
    EXPECT_EQ(engine.state(ids[i]), fs::RequestState::kRetired) << i;
    EXPECT_EQ(engine.context_length(ids[i]),
              prompts[i].rows() + budgets[i])
        << i;
    fs::EngineOptions solo_opt;
    solo_opt.share_prefix = false;
    fs::DecodeEngine solo(model, solo_opt);
    const auto sid = solo.submit(prompts[i], budgets[i]);
    solo.run_until_idle(nullptr, 200);
    EXPECT_EQ(solo.lifetime().shared_tiles, 0u);
    const auto hb = engine.hidden(ids[i]);
    const auto hs = solo.hidden(sid);
    ASSERT_EQ(hb.size(), hs.size());
    for (std::size_t c = 0; c < hb.size(); ++c) {
      ASSERT_EQ(hb[c], hs[c]) << "request " << i << " c " << c;
    }
  }
}

TEST(TilePool, FaultInjectedTicksNeverPublishPrefixTiles) {
  // ABFT correction is approximate, not bit-exact, so a tile sealed while
  // an injector was threaded through the tick could hold perturbed K/V.
  // Such tiles must stay private: publishing them would widen one fault's
  // blast radius to every future sharer of the prompt.
  const fx::Model model(serving_config(), 0x1f4);
  const std::size_t hidden = model.config().hidden;
  const ft::MatrixF prompt = random_prompt(129, hidden, 0xdead);  // 2 sealed

  fs::DecodeEngine engine(model);
  engine.submit(prompt, /*max_new_tokens=*/2);
  ftt::fault::FaultInjector probe;  // even an unarmed probe blocks publish
  engine.step(&probe);              // seals tile 0 under the injector
  EXPECT_EQ(engine.pool().published(), 0u);
  engine.step();                    // clean tick: seals + publishes tile 1
  EXPECT_EQ(engine.pool().published(), 1u);

  // A second request over the same prompt can only attach the clean tile —
  // and tile 1 without tile 0 is useless (the chain misses at tile 0), so
  // it recomputes the whole prompt.
  const auto follower = engine.submit(prompt, /*max_new_tokens=*/2);
  const auto st = engine.step();
  EXPECT_EQ(st.admitted, 1u);
  EXPECT_EQ(engine.shared_tile_count(follower), 0u);
}

TEST(TilePool, SharingHalvesTilesForCommonPrefixWorkload) {
  // The capacity win, pinned deterministically: N requests over one common
  // prompt hold ~1 set of prefix tiles when sharing is on, N sets when off.
  const fx::Model model(serving_config(), 0x515);
  const std::size_t hidden = model.config().hidden;
  const ft::MatrixF prompt = random_prompt(129, hidden, 0xc0);  // 2 sealed

  auto run = [&](bool share) {
    fs::EngineOptions opt;
    opt.share_prefix = share;
    opt.scheduler.max_batch_size = 4;
    fs::DecodeEngine engine(model, opt);
    std::vector<fs::DecodeEngine::RequestId> ids;
    // Leader first: its prefill seals and publishes the 2 prefix tiles...
    ids.push_back(engine.submit(prompt, /*max_new_tokens=*/4));
    engine.drain(3);  // 3 chunks: rows 0-63, 64-127, 128
    // ...then 3 followers, which attach the prefix instead of computing it.
    for (std::size_t i = 0; i < 3; ++i) {
      ids.push_back(engine.submit(prompt, /*max_new_tokens=*/4));
    }
    std::size_t peak = 0;
    for (std::size_t t = 0; t < 100; ++t) {
      engine.step();
      peak = std::max(peak, engine.kv_tiles_in_use());
      if (engine.active() == 0 && engine.queued() == 0) break;
    }
    for (std::size_t i = 1; i < ids.size(); ++i) {
      // Identical prompts, identical budgets: identical outputs either way.
      const auto h0 = engine.hidden(ids[0]);
      const auto hi = engine.hidden(ids[i]);
      for (std::size_t c = 0; c < h0.size(); ++c) EXPECT_EQ(h0[c], hi[c]);
    }
    return std::pair{peak, engine.lifetime()};
  };

  const auto [shared_peak, shared_life] = run(true);
  const auto [unshared_peak, unshared_life] = run(false);
  // Followers attach both sealed prefix tiles instead of prefilling them:
  // 3 followers x 2 tiles attached, 3 x 128 prompt rows never computed.
  EXPECT_EQ(shared_life.shared_tiles, 6u);
  EXPECT_EQ(shared_life.prefill_rows, unshared_life.prefill_rows - 3 * 128);
  EXPECT_EQ(unshared_life.shared_tiles, 0u);
  // Unshared peak: 4 live requests x 3 tiles.  Shared: 2 prefix tiles
  // (counted once) + 4 private tails.  >= 2x effective capacity.
  EXPECT_LT(shared_peak * 2, unshared_peak + 1)
      << "shared " << shared_peak << " vs unshared " << unshared_peak;
}
