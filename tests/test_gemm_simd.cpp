// Bit-identity of the runtime-dispatched GEMM microkernels against their
// scalar references (src/numeric/gemm_simd.cpp).
//
// The contract under test: every dispatching entry point — axpy_f32,
// gemm_f32_nn, the sim::gemm_f32_nt pack-and-dispatch path and the
// vectorized strided checksum encodes — produces results bit-for-bit equal
// to the always-present scalar reference, on any shape, including ragged
// tails (N, K not multiples of any vector width) and strided outputs
// (ldc > N).  The equality must hold whether the dispatcher picked AVX2,
// AVX-512 or the scalar fallback, which is exactly what lets the chunk/
// batch/spec/shard bit-identity proofs survive the SIMD build: the kernels
// fix the per-output-element accumulation order to ascending k, and FMA
// equals mul-then-add because every operand is fp16-valued (exact products
// in fp32 — see numeric/gemm_simd.hpp).
//
// All random operands are therefore rounded through fp16 before use: that
// is the precondition the production call sites satisfy, and the one the
// bitwise guarantee is scoped to.

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "abft/strided_abft.hpp"
#include "fault/fault.hpp"
#include "numeric/fp16.hpp"
#include "numeric/gemm_simd.hpp"
#include "sim/mma.hpp"
#include "tensor/tensor.hpp"

namespace fn = ftt::numeric;
using ftt::numeric::Half;

namespace {

/// Random fp16-valued fp32 buffer: the exact-product precondition of the
/// kernels' FMA == mul-add equivalence (all production operands are widened
/// or fp16-rounded halves).
std::vector<float> random_fp16_values(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  std::vector<Half> h(n);
  for (auto& x : h) x = Half(dist(rng));
  std::vector<float> f(n);
  fn::halves_to_floats(h.data(), f.data(), n);
  return f;
}

}  // namespace

TEST(GemmSimd, AxpyMatchesScalarBitwiseOnRaggedLengths) {
  // Lengths straddle every tail case: below one AVX2 vector, below one
  // AVX-512 vector, exact multiples, and off-by-one around them.
  for (const std::size_t n :
       {std::size_t{1}, std::size_t{3}, std::size_t{7}, std::size_t{8},
        std::size_t{9}, std::size_t{15}, std::size_t{16}, std::size_t{17},
        std::size_t{31}, std::size_t{64}, std::size_t{100}}) {
    const auto x = random_fp16_values(n, 100 + n);
    const auto y0 = random_fp16_values(n, 200 + n);
    const auto a = random_fp16_values(1, 300 + n);
    std::vector<float> y_simd = y0, y_ref = y0;
    fn::axpy_f32(a[0], x.data(), y_simd.data(), n);
    fn::axpy_f32_scalar(a[0], x.data(), y_ref.data(), n);
    ASSERT_EQ(0, std::memcmp(y_simd.data(), y_ref.data(), n * sizeof(float)))
        << "axpy diverged from scalar at n=" << n;
  }
}

TEST(GemmSimd, GemmMatchesScalarBitwiseOnRandomizedShapes) {
  // Shapes cover the panel structure: N crossing the 32-column AVX2 panel,
  // the 64-column AVX-512 panel, the single-vector loops and the scalar
  // tail; K covers tiny and non-power-of-two depths.
  struct Shape {
    std::size_t M, K, N;
  };
  const Shape shapes[] = {{1, 64, 64},  {1, 64, 8},   {3, 16, 33},
                          {2, 1, 1},    {5, 7, 31},   {4, 64, 65},
                          {1, 48, 127}, {8, 13, 96},  {2, 100, 40},
                          {1, 8, 200},  {7, 21, 17}};
  std::uint64_t seed = 1;
  for (const auto& sh : shapes) {
    for (const bool accumulate : {false, true}) {
      const auto A = random_fp16_values(sh.M * sh.K, seed++);
      const auto B = random_fp16_values(sh.K * sh.N, seed++);
      const auto C0 = random_fp16_values(sh.M * sh.N, seed++);
      std::vector<float> c_simd = C0, c_ref = C0;
      fn::gemm_f32_nn(A.data(), sh.M, sh.K, B.data(), sh.N, c_simd.data(),
                      sh.N, accumulate);
      fn::gemm_f32_nn_scalar(A.data(), sh.M, sh.K, B.data(), sh.N,
                             c_ref.data(), sh.N, accumulate);
      ASSERT_EQ(0, std::memcmp(c_simd.data(), c_ref.data(),
                               sh.M * sh.N * sizeof(float)))
          << "gemm diverged from scalar at M=" << sh.M << " K=" << sh.K
          << " N=" << sh.N << " accumulate=" << accumulate;
    }
  }
}

TEST(GemmSimd, GemmHonorsOutputStride) {
  // ldc > N: rows of C are spaced apart, and the pad lanes between them
  // must never be touched.
  constexpr std::size_t M = 4, K = 33, N = 21, ldc = 40;
  const auto A = random_fp16_values(M * K, 7);
  const auto B = random_fp16_values(K * N, 8);
  const auto C0 = random_fp16_values(M * ldc, 9);
  std::vector<float> c_simd = C0, c_ref = C0;
  fn::gemm_f32_nn(A.data(), M, K, B.data(), N, c_simd.data(), ldc, false);
  fn::gemm_f32_nn_scalar(A.data(), M, K, B.data(), N, c_ref.data(), ldc,
                         false);
  ASSERT_EQ(0, std::memcmp(c_simd.data(), c_ref.data(),
                           M * ldc * sizeof(float)));
  // The inter-row gap is untouched by both paths.
  for (std::size_t m = 0; m < M; ++m) {
    for (std::size_t c = N; c < ldc; ++c) {
      EXPECT_EQ(C0[m * ldc + c], c_simd[m * ldc + c]);
    }
  }
}

TEST(GemmSimd, TransposeIsExactDataMovement) {
  constexpr std::size_t R = 37, C = 53;  // deliberately off the 32x32 blocks
  const auto in = random_fp16_values(R * C, 11);
  std::vector<float> t(R * C), back(R * C);
  fn::transpose_f32(in.data(), R, C, t.data());
  for (std::size_t r = 0; r < R; ++r) {
    for (std::size_t c = 0; c < C; ++c) {
      ASSERT_EQ(in[r * C + c], t[c * R + r]);
    }
  }
  fn::transpose_f32(t.data(), C, R, back.data());
  ASSERT_EQ(0, std::memcmp(in.data(), back.data(), R * C * sizeof(float)));
}

TEST(GemmSimd, SimGemmNtMatchesSequentialDotReference) {
  // The sim::gemm_f32_nt entry point (pack-B + dispatch when SIMD is
  // active) against the sequential-K dot loop it documents — the same
  // reference test_mma pins gemm_fp16_nt to via the MMA atom chain.
  struct Shape {
    std::size_t M, K, N;
  };
  const Shape shapes[] = {{1, 64, 64}, {3, 64, 8}, {64, 64, 64}, {5, 16, 9}};
  std::uint64_t seed = 21;
  for (const auto& sh : shapes) {
    const auto A = random_fp16_values(sh.M * sh.K, seed++);
    const auto B = random_fp16_values(sh.N * sh.K, seed++);  // N x K
    ftt::tensor::MatrixF C(sh.M, sh.N);
    ftt::sim::gemm_f32_nt(A.data(), sh.M, sh.K, B.data(), sh.N, C);
    for (std::size_t m = 0; m < sh.M; ++m) {
      for (std::size_t n = 0; n < sh.N; ++n) {
        float acc = 0.0f;
        for (std::size_t k = 0; k < sh.K; ++k) {
          acc += A[m * sh.K + k] * B[n * sh.K + k];
        }
        ASSERT_EQ(acc, C(m, n)) << "m=" << m << " n=" << n;
      }
    }
  }
}

TEST(GemmSimd, StridedEncodesMatchScalarReferenceAndKeepHookOrder) {
  // The vectorized encode_rows/cols_strided must (a) equal the scalar
  // ascending-l accumulation bit for bit and (b) fire the per-output fault
  // hooks exactly as before — one kChecksum call per output element — so
  // fault-campaign call indices stay stable across the SIMD build.
  constexpr std::size_t kRows = 64, kCols = 64;
  constexpr int s = 8;
  const auto xf = random_fp16_values(kRows * kCols, 31);

  for (const bool weighted : {false, true}) {
    const ftt::tensor::MatrixH rows_enc =
        ftt::abft::StridedAbft::encode_rows_strided_widened(
            xf.data(), kRows, kCols, s, weighted, nullptr);
    for (std::size_t jc = 0; jc < static_cast<std::size_t>(s); ++jc) {
      for (std::size_t c = 0; c < kCols; ++c) {
        float acc = 0.0f;
        for (std::size_t l = 0; l < kRows / s; ++l) {
          const float w = weighted ? static_cast<float>(l + 1) : 1.0f;
          acc += w * xf[(jc + l * s) * kCols + c];
        }
        ASSERT_EQ(Half(acc).bits(), rows_enc(jc, c).bits());
      }
    }
    const ftt::tensor::MatrixH cols_enc =
        ftt::abft::StridedAbft::encode_cols_strided_widened(
            xf.data(), kRows, kCols, s, weighted, nullptr);
    for (std::size_t r = 0; r < kRows; ++r) {
      for (std::size_t jc = 0; jc < static_cast<std::size_t>(s); ++jc) {
        float acc = 0.0f;
        for (std::size_t l = 0; l < kCols / s; ++l) {
          const float w = weighted ? static_cast<float>(l + 1) : 1.0f;
          acc += w * xf[r * kCols + jc + l * s];
        }
        ASSERT_EQ(Half(acc).bits(), cols_enc(r, jc).bits());
      }
    }
  }

  // Unarmed probe: counts hook calls without changing values.
  ftt::fault::FaultInjector probe;
  const auto with_probe = ftt::abft::StridedAbft::encode_rows_strided_widened(
      xf.data(), kRows, kCols, s, false, &probe);
  EXPECT_EQ(static_cast<std::size_t>(s) * kCols,
            probe.calls(ftt::fault::Site::kChecksum));
  const auto without = ftt::abft::StridedAbft::encode_rows_strided_widened(
      xf.data(), kRows, kCols, s, false, nullptr);
  for (std::size_t jc = 0; jc < static_cast<std::size_t>(s); ++jc) {
    for (std::size_t c = 0; c < kCols; ++c) {
      ASSERT_EQ(without(jc, c).bits(), with_probe(jc, c).bits());
    }
  }
}

TEST(GemmSimd, DispatchReportsConsistentState) {
  // The AVX-512 predicate implies the general one, and on x86-64 CI with
  // FTT_SIMD on, simd_gemm_active() should match the CPU's AVX2+FMA
  // support (informational on other configs: the scalar fallback is the
  // semantic definition either way).
  if (fn::simd_gemm_avx512_active()) {
    EXPECT_TRUE(fn::simd_gemm_active());
  }
  SUCCEED() << "simd_gemm_active=" << fn::simd_gemm_active()
            << " avx512=" << fn::simd_gemm_avx512_active();
}
