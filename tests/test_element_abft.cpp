// Classic element-checksum ABFT (Eqs. 8-9): encoding identities, single-error
// detect/locate/correct, multi-error limits.
#include <gtest/gtest.h>

#include <cmath>

#include "abft/element_abft.hpp"
#include "tensor/random.hpp"

namespace fb = ftt::abft;
namespace ft = ftt::tensor;
namespace ff = ftt::fault;

namespace {
constexpr float kThr = 0.02f;

ft::MatrixF reference_nt(const ft::MatrixH& A, const ft::MatrixH& B) {
  ft::MatrixF C(A.rows(), B.rows());
  for (std::size_t m = 0; m < A.rows(); ++m) {
    for (std::size_t n = 0; n < B.rows(); ++n) {
      float acc = 0.0f;
      for (std::size_t k = 0; k < A.cols(); ++k) {
        acc += A(m, k).to_float() * B(n, k).to_float();
      }
      C(m, n) = acc;
    }
  }
  return C;
}
}  // namespace

TEST(ElementEncode, RowChecksumIdentity) {
  ft::MatrixF A(6, 5);
  ft::fill_normal(A, 1);
  const ft::MatrixF Ac = fb::ElementAbft::encode_rows(A);
  ASSERT_EQ(Ac.rows(), 8u);
  for (std::size_t k = 0; k < 5; ++k) {
    float s1 = 0.0f, s2 = 0.0f;
    for (std::size_t i = 0; i < 6; ++i) {
      s1 += A(i, k);
      s2 += static_cast<float>(i + 1) * A(i, k);
    }
    EXPECT_FLOAT_EQ(Ac(6, k), s1);
    EXPECT_FLOAT_EQ(Ac(7, k), s2);
  }
}

TEST(ElementEncode, ColChecksumIdentity) {
  ft::MatrixF B(4, 7);
  ft::fill_normal(B, 2);
  const ft::MatrixF Br = fb::ElementAbft::encode_cols(B);
  ASSERT_EQ(Br.cols(), 9u);
  for (std::size_t k = 0; k < 4; ++k) {
    float s1 = 0.0f, s2 = 0.0f;
    for (std::size_t j = 0; j < 7; ++j) {
      s1 += B(k, j);
      s2 += static_cast<float>(j + 1) * B(k, j);
    }
    EXPECT_FLOAT_EQ(Br(k, 7), s1);
    EXPECT_FLOAT_EQ(Br(k, 8), s2);
  }
}

TEST(ElementAbft, CleanRunNoFlags) {
  ft::MatrixH A(32, 64), B(32, 64);
  ft::fill_normal(A, 3, 0.0f, 0.125f);
  ft::fill_normal(B, 4);
  ft::MatrixF C(32, 32);
  const auto rep = fb::ElementAbft::gemm_nt(A, B, C, kThr, nullptr);
  EXPECT_EQ(rep.flagged, 0u);
  EXPECT_EQ(rep.corrected, 0u);
  // Payload matches the reference GEMM.
  const ft::MatrixF ref = reference_nt(A, B);
  EXPECT_LT(ft::max_abs_diff(C, ref), 1e-4f);
}

TEST(ElementAbft, CorrectsSingleLargeFlip) {
  ft::MatrixH A(32, 64), B(32, 64);
  ft::fill_normal(A, 5, 0.0f, 0.125f);
  ft::fill_normal(B, 6);
  const ft::MatrixF ref = reference_nt(A, B);

  // Flip a high exponent bit of one payload output (call 100 = element
  // (3, 4) of the 32x32 payload).
  auto inj = ff::FaultInjector::single(ff::Site::kGemm1, 100, 30);
  ft::MatrixF C(32, 32);
  const auto rep = fb::ElementAbft::gemm_nt(A, B, C, kThr, &inj);
  EXPECT_EQ(inj.injected(), 1u);
  EXPECT_GE(rep.flagged, 1u);
  EXPECT_EQ(rep.corrected, 1u);
  EXPECT_LT(ft::max_abs_diff(C, ref), 2e-2f);
}

TEST(ElementAbft, CorrectsFlipsAcrossManyPositions) {
  ft::MatrixH A(64, 64), B(64, 64);
  ft::fill_normal(A, 7, 0.0f, 0.125f);
  ft::fill_normal(B, 8);
  const ft::MatrixF ref = reference_nt(A, B);
  for (std::uint64_t call : {0u, 63u, 64u, 2047u, 4095u}) {
    auto inj = ff::FaultInjector::single(ff::Site::kGemm1, call, 30);
    ft::MatrixF C(64, 64);
    const auto rep = fb::ElementAbft::gemm_nt(A, B, C, kThr, &inj);
    EXPECT_EQ(rep.corrected, 1u) << call;
    EXPECT_LT(ft::max_abs_diff(C, ref), 2e-2f) << call;
  }
}

TEST(ElementAbft, TwoErrorsSameColumnNotLocatable) {
  // Two corrupted elements in one column: d2/d1 is not an integer row index,
  // so the single element checksum detects but cannot correct — the paper's
  // motivation for the 8-wide tensor checksum.
  ft::MatrixF C(16, 16, 1.0f);
  ft::MatrixF chk(2, 16);
  for (std::size_t j = 0; j < 16; ++j) {
    chk(0, j) = 16.0f;  // sum of ones
    chk(1, j) = 136.0f;  // sum of 1..16
  }
  C(2, 5) += 100.0f;
  C(9, 5) += 77.0f;
  const auto rep = fb::ElementAbft::verify_correct(C, chk, kThr);
  EXPECT_GE(rep.flagged, 1u);
  EXPECT_EQ(rep.corrected, 0u);
  EXPECT_GE(rep.uncorrectable, 1u);
}

TEST(ElementAbft, ChecksumFlipDoesNotCorruptPayload) {
  ft::MatrixH A(32, 64), B(32, 64);
  ft::fill_normal(A, 9, 0.0f, 0.125f);
  ft::fill_normal(B, 10);
  const ft::MatrixF ref = reference_nt(A, B);
  // Flip inside the checksum pipeline instead of the payload.
  auto inj = ff::FaultInjector::single(ff::Site::kChecksum, 40, 29);
  ft::MatrixF C(32, 32);
  fb::ElementAbft::gemm_nt(A, B, C, kThr, &inj);
  EXPECT_EQ(inj.injected(), 1u);
  EXPECT_LT(ft::max_abs_diff(C, ref), 1e-3f);
}

TEST(ElementAbft, SmallFlipBelowThresholdEscapes) {
  // A flip in the lowest mantissa bit is under the relative threshold: it is
  // not detected — by design, detection trades off against false alarms.
  ft::MatrixH A(32, 64), B(32, 64);
  ft::fill_normal(A, 11, 0.0f, 0.125f);
  ft::fill_normal(B, 12);
  auto inj = ff::FaultInjector::single(ff::Site::kGemm1, 50, 0);
  ft::MatrixF C(32, 32);
  const auto rep = fb::ElementAbft::gemm_nt(A, B, C, kThr, &inj);
  EXPECT_EQ(inj.injected(), 1u);
  EXPECT_EQ(rep.corrected, 0u);
}

TEST(ElementAbftCosts, HasShuffleTerm) {
  const auto c = fb::ElementAbft::costs(64, 64, 64);
  EXPECT_GT(c[ftt::sim::Phase::kChecksumGen].shuffles, 0.0);
  EXPECT_GT(c[ftt::sim::Phase::kVerify].shuffles, 0.0);
  EXPECT_GT(c[ftt::sim::Phase::kGemm].tc_flops, 0.0);
}
