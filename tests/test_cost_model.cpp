// Analytic A100 cost model: roofline behaviour, phase accounting, and the
// shape facts the paper's figures depend on (launch overhead, O(n^2) traffic,
// OOM crossover).
#include <gtest/gtest.h>

#include "attention/attention.hpp"
#include "attention/decoupled_ft.hpp"
#include "core/efta.hpp"
#include "sim/cost.hpp"
#include "transformer/model.hpp"

namespace fs = ftt::sim;
namespace fa = ftt::attention;
namespace fx = ftt::transformer;

TEST(Costs, Accumulate) {
  fs::Costs a{1, 2, 3, 4, 5, 6, 1};
  fs::Costs b{10, 20, 30, 40, 50, 60, 2};
  const fs::Costs c = a + b;
  EXPECT_DOUBLE_EQ(c.tc_flops, 11);
  EXPECT_DOUBLE_EQ(c.fp32_flops, 22);
  EXPECT_DOUBLE_EQ(c.sfu_ops, 33);
  EXPECT_DOUBLE_EQ(c.hbm_bytes, 44);
  EXPECT_DOUBLE_EQ(c.shuffles, 55);
  EXPECT_DOUBLE_EQ(c.syncs, 66);
  EXPECT_DOUBLE_EQ(c.launches, 3);
}

TEST(Costs, Scale) {
  fs::Costs a{2, 4, 6, 8, 10, 12, 2};
  a.scale(0.5);
  EXPECT_DOUBLE_EQ(a.tc_flops, 1);
  EXPECT_DOUBLE_EQ(a.syncs, 6);
  EXPECT_DOUBLE_EQ(a.launches, 1);
}

TEST(CostBreakdown, TotalSumsPhases) {
  fs::CostBreakdown b;
  b[fs::Phase::kGemm].tc_flops = 100;
  b[fs::Phase::kVerify].fp32_flops = 50;
  const fs::Costs t = b.total();
  EXPECT_DOUBLE_EQ(t.tc_flops, 100);
  EXPECT_DOUBLE_EQ(t.fp32_flops, 50);
}

TEST(MachineModel, RooflinePicksSlowestResource) {
  fs::MachineModel m;
  fs::Costs mem_bound;
  mem_bound.hbm_bytes = 1e9;
  fs::Costs compute_bound;
  compute_bound.tc_flops = 1e15;
  EXPECT_GT(m.phase_seconds(compute_bound), m.phase_seconds(mem_bound));

  // A phase with both is dominated by the max, not the sum.
  fs::Costs both = mem_bound;
  both.tc_flops = 1e9;  // negligible
  EXPECT_DOUBLE_EQ(m.phase_seconds(both), m.phase_seconds(mem_bound));
}

TEST(MachineModel, LaunchLatencyAdds) {
  fs::MachineModel m;
  fs::CostBreakdown one, three;
  one[fs::Phase::kMemory].launches = 1;
  three[fs::Phase::kMemory].launches = 3;
  EXPECT_NEAR(m.seconds(three) - m.seconds(one), 2.0 * m.launch_latency,
              1e-12);
}

TEST(MachineModel, GemmCostsFormula) {
  const fs::Costs g = fs::gemm_costs(64, 64, 64);
  EXPECT_DOUBLE_EQ(g.tc_flops, 2.0 * 64 * 64 * 64);
}

TEST(PaperShape, TokenBudgetFixed) {
  for (std::size_t seq : {512u, 1024u, 2048u, 4096u, 8192u, 16384u}) {
    const auto s = fa::paper_shape(seq, 16, 64);
    EXPECT_EQ(s.batch * s.seq, 16384u) << seq;
  }
}

TEST(AttentionCosts, DecoupledTrafficQuadratic) {
  const auto small = fa::decoupled_attention_costs(fa::paper_shape(512, 16, 64));
  const auto big = fa::decoupled_attention_costs(fa::paper_shape(4096, 16, 64));
  // Same token budget, same total GEMM flops per token... but S/P traffic
  // scales with seq: batch*seq^2 = tokens*seq.
  const double ratio = big[fs::Phase::kMemory].hbm_bytes /
                       small[fs::Phase::kMemory].hbm_bytes;
  EXPECT_NEAR(ratio, 8.0, 0.5);  // 4096/512
}

TEST(AttentionCosts, FlashTrafficLinearInBlocks) {
  const auto c = fa::flash_attention_costs(fa::paper_shape(1024, 16, 64));
  const auto d = fa::decoupled_attention_costs(fa::paper_shape(1024, 16, 64));
  EXPECT_LT(c[fs::Phase::kMemory].hbm_bytes,
            d[fs::Phase::kMemory].hbm_bytes);
  EXPECT_EQ(c[fs::Phase::kMemory].launches, 1);
  EXPECT_EQ(d[fs::Phase::kMemory].launches, 3);
}

TEST(AttentionCosts, GemmFlopsMatchFormula) {
  const fa::AttnShape s{2, 4, 256, 64};
  const auto c = fa::flash_attention_costs(s);
  EXPECT_DOUBLE_EQ(c[fs::Phase::kGemm].tc_flops,
                   2.0 * 4 * 4.0 * 256.0 * 256.0 * 64.0);
}

TEST(Oom, DecoupledExceeds40GBAtPaperScale) {
  fs::MachineModel m;
  // h=32, d=128, seq=16k, 16K tokens: the OOM case in Fig. 9 (bottom).
  const auto oom = fa::paper_shape(16384, 32, 128);
  EXPECT_FALSE(m.fits(fa::decoupled_workspace_bytes(oom)));
  // h=16, d=64 at 16k stays (barely) within 40 GB in the paper's top plot.
  const auto ok = fa::paper_shape(16384, 16, 64);
  EXPECT_TRUE(m.fits(fa::decoupled_workspace_bytes(ok)));
  // EFTA never materializes S/P, so even the big case fits.
  const double efta_bytes = 4.0 * 16384.0 * 32 * 128 * 2.0;
  EXPECT_TRUE(m.fits(efta_bytes));
}

TEST(Oom, CrossoverBetween8kAnd16k) {
  fs::MachineModel m;
  EXPECT_TRUE(
      m.fits(fa::decoupled_workspace_bytes(fa::paper_shape(8192, 32, 128))));
  EXPECT_FALSE(
      m.fits(fa::decoupled_workspace_bytes(fa::paper_shape(16384, 32, 128))));
}

TEST(SpeedupShape, EftaBeatsDecoupledAcrossSweep) {
  // The headline claim of Fig. 9: protected EFTA is multiple times faster
  // than the protected decoupled pipeline at every length.
  fs::MachineModel m;
  ftt::core::EftaOptions opt;
  opt.unified_verification = true;
  for (std::size_t seq : {512u, 1024u, 2048u, 4096u, 8192u}) {
    const auto shape = fa::paper_shape(seq, 16, 64);
    const double t_dec = m.seconds(fa::decoupled_ft_costs(shape));
    const double t_efta = m.seconds(ftt::core::efta_costs(shape, opt));
    EXPECT_GT(t_dec / t_efta, 2.0) << "seq=" << seq;
  }
}

// ---------------------------------------------------------------------------
// Serving cost model: the batched-decode roofline and the speculative
// (k-row block) amortization term, mirroring the shapes bench_serve_
// throughput and bench_scheduler measure.
// ---------------------------------------------------------------------------

namespace {

/// Per-resource seconds of an aggregated cost — the roofline legs the
/// dominance assertions below compare.
struct ResourceTimes {
  double tc, fp32, sfu, mem, shfl;
};

ResourceTimes resource_times(const fs::MachineModel& m, const fs::Costs& c) {
  return {c.tc_flops / (m.tc_peak * m.tc_eff),
          c.fp32_flops / (m.fp32_peak * m.fp32_eff),
          c.sfu_ops / (m.sfu_peak * m.sfu_eff),
          c.hbm_bytes / (m.hbm_bw * m.hbm_eff),
          c.shuffles / (m.shuffle_rate * m.shuffle_eff)};
}

}  // namespace

TEST(ServingCosts, BatchOneDecodeTickIsHbmBound) {
  // Single-request decode streams the whole KV cache and the full weight
  // set for one token of useful work: the modeled tick must be dominated
  // by HBM on every context in the serving range — the roofline leg that
  // makes batch-1 decode the worst-case serving configuration.
  const fx::Model model(fx::ModelConfig::tiny(), 1);
  fs::MachineModel m;
  for (const std::size_t ctx : {64u, 512u, 2048u}) {
    const auto tick = model.decode_tick_costs(1, ctx, 1);
    const auto t = resource_times(m, tick.total());
    EXPECT_GT(t.mem, t.tc) << ctx;
    EXPECT_GT(t.mem, t.fp32) << ctx;
    EXPECT_GT(t.mem, t.sfu) << ctx;
  }
}

TEST(ServingCosts, BatchingAmortizesWeightsUntilPerRowTermsDominate) {
  // The crossover the throughput bench measures: tokens/s rises steeply
  // with batch while the once-per-tick weight read amortizes, then
  // flattens once per-row terms dominate.  In the model: per-token cost
  // at batch 8 is far below batch 1, and the 8 -> 16 step recovers far
  // less than the 1 -> 8 step did — the knee sits at or before batch 8,
  // matching the bench's decode_speedup_batch8 gauge shape.
  const fx::Model model(fx::ModelConfig::tiny(), 1);
  fs::MachineModel m;
  const std::size_t ctx = 64;  // short context: the weight read matters
  const auto per_token = [&](std::size_t batch) {
    return m.seconds(model.decode_tick_costs(batch, ctx, 1)) /
           static_cast<double>(batch);
  };
  const double t1 = per_token(1), t8 = per_token(8), t16 = per_token(16);
  EXPECT_LT(t8, 0.5 * t1) << "batching must amortize the weight read";
  EXPECT_LT(t16, t8) << "per-token cost stays monotone";
  EXPECT_GT((t1 - t8), 4.0 * (t8 - t16))
      << "the knee must sit at or before batch 8";

  // The roofline statement underneath: the shared linears' arithmetic
  // intensity is exactly the row count (2m flops per 2-byte fp16 weight),
  // so the skinny decode GEMMs cross the CUDA-core ridge
  // (fp32_peak*eff)/(hbm_bw*eff) ~ 12.5 flops/byte between batch 8 and 16
  // — below it the weight stream bounds the tick, above it compute does.
  const double ridge = (m.fp32_peak * m.fp32_eff) / (m.hbm_bw * m.hbm_eff);
  EXPECT_LT(8.0, ridge);
  EXPECT_GT(16.0, ridge - 1.0);  // the crossover lands inside [8, 16]
}

TEST(ServingCosts, SpeculativeBlockAmortizesPerTokenTileWork) {
  // The k-row speculative term: one (k+1)-row block pass at context n
  // versus k+1 serial single-row ticks.  The KV tile loads, widenings and
  // checksum encodes are paid once per block instead of once per token,
  // so the modeled speedup at full acceptance clears the 1.3x bar the
  // bench gates (spec_decode_speedup at spec_tokens = 4) with room, rises
  // with k, and stays below the k+1 upper bound.
  const fx::Model model(fx::ModelConfig::tiny(), 1);
  fs::MachineModel m;
  const std::size_t ctx = 512;
  const auto spec_speedup = [&](std::size_t k) {
    const double serial =
        static_cast<double>(k + 1) * m.seconds(model.decode_tick_costs(1, ctx, 1));
    const double block = m.seconds(model.decode_tick_costs(1, ctx, k + 1));
    return serial / block;
  };
  const double s4 = spec_speedup(4);
  EXPECT_GT(s4, 1.3) << "the bench's spec_decode_speedup bar";
  EXPECT_LT(s4, 5.0) << "never better than the k+1 ideal";
  EXPECT_GT(spec_speedup(8), s4) << "amortization grows with k";

  // Same amortization at the kernel level: a 4-row block costs far less
  // than 4 single-row calls in HBM traffic (tiles loaded once)...
  ftt::core::EftaOptions eopt;
  const auto block4 = ftt::core::efta_decode_block_costs(ctx, 4, 64, eopt);
  const auto one = ftt::core::efta_decode_block_costs(ctx, 1, 64, eopt);
  EXPECT_LT(block4.total().hbm_bytes, 1.5 * one.total().hbm_bytes);
  // ...while the useful GEMM work scales with the rows (nothing is lost).
  EXPECT_NEAR(block4[fs::Phase::kGemm].tc_flops,
              4.0 * one[fs::Phase::kGemm].tc_flops,
              0.05 * block4[fs::Phase::kGemm].tc_flops);
}

TEST(PhaseNames, AllDistinct) {
  std::set<std::string_view> names;
  for (std::size_t i = 0; i < fs::kPhaseCount; ++i) {
    names.insert(fs::phase_name(static_cast<fs::Phase>(i)));
  }
  EXPECT_EQ(names.size(), fs::kPhaseCount);
}
