// EFTA clean-path correctness: the protected fused kernel must reproduce
// standard attention exactly (up to fp16 noise) in every protection mode,
// with zero false corrections at the calibrated thresholds.
#include <gtest/gtest.h>

#include <cmath>

#include "attention/attention.hpp"
#include "core/efta.hpp"
#include "tensor/random.hpp"

namespace fa = ftt::attention;
namespace fc = ftt::core;
namespace ft = ftt::tensor;

namespace {

float max_diff(const ft::Tensor4F& a, const ft::Tensor4F& b) {
  float m = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float d = std::fabs(a.data()[i] - b.data()[i]);
    if (std::isnan(d)) return std::numeric_limits<float>::infinity();
    m = std::max(m, d);
  }
  return m;
}

struct Made {
  ft::Tensor4H Q, K, V;
};
Made make(std::size_t batch, std::size_t heads, std::size_t seq,
          std::size_t dim, std::uint64_t seed) {
  Made m{ft::Tensor4H(batch, heads, seq, dim),
         ft::Tensor4H(batch, heads, seq, dim),
         ft::Tensor4H(batch, heads, seq, dim)};
  ft::fill_normal(m.Q, seed);
  ft::fill_normal(m.K, seed + 1);
  ft::fill_normal(m.V, seed + 2);
  return m;
}

}  // namespace

TEST(Efta, UnprotectedMatchesStandard) {
  auto [Q, K, V] = make(1, 2, 128, 64, 1);
  ft::Tensor4F Os(1, 2, 128, 64), Oe(1, 2, 128, 64);
  fa::standard_attention(Q, K, V, Os);
  fc::EftaOptions opt;
  opt.gemm = fc::GemmProtect::kNone;
  opt.softmax = fc::SoftmaxProtect::kNone;
  fc::efta_attention(Q, K, V, Oe, opt);
  EXPECT_LT(max_diff(Os, Oe), 2e-3f);
}

TEST(Efta, ProtectedMatchesStandard) {
  auto [Q, K, V] = make(1, 2, 128, 64, 2);
  ft::Tensor4F Os(1, 2, 128, 64), Oe(1, 2, 128, 64);
  fa::standard_attention(Q, K, V, Os);
  const auto rep = fc::efta_attention(Q, K, V, Oe, {});
  EXPECT_LT(max_diff(Os, Oe), 2e-3f);
  EXPECT_EQ(rep.gemm1.flagged, 0u);
  EXPECT_EQ(rep.gemm2.flagged, 0u);
  EXPECT_EQ(rep.range_corrections, 0u);
}

TEST(Efta, OptimizedMatchesStandard) {
  auto [Q, K, V] = make(2, 2, 192, 64, 3);
  ft::Tensor4F Os(2, 2, 192, 64), Oe(2, 2, 192, 64);
  fa::standard_attention(Q, K, V, Os);
  fc::EftaOptions opt;
  opt.unified_verification = true;
  const auto rep = fc::efta_attention(Q, K, V, Oe, opt);
  EXPECT_LT(max_diff(Os, Oe), 2e-3f);
  EXPECT_EQ(rep.gemm2.flagged, 0u);
}

TEST(Efta, CleanExpCheckNoFalseAlarms) {
  auto [Q, K, V] = make(1, 4, 256, 64, 4);
  ft::Tensor4F O(1, 4, 256, 64);
  fc::EftaOptions opt;
  opt.unified_verification = true;
  const auto rep = fc::efta_attention(Q, K, V, O, opt);
  EXPECT_GT(rep.exp_check.checks, 0u);
  EXPECT_EQ(rep.exp_check.flagged, 0u);
}

TEST(Efta, ElementModeMatchesStandard) {
  auto [Q, K, V] = make(1, 1, 128, 64, 5);
  ft::Tensor4F Os(1, 1, 128, 64), Oe(1, 1, 128, 64);
  fa::standard_attention(Q, K, V, Os);
  fc::EftaOptions opt;
  opt.gemm = fc::GemmProtect::kElement;
  const auto rep = fc::efta_attention(Q, K, V, Oe, opt);
  EXPECT_LT(max_diff(Os, Oe), 2e-3f);
  EXPECT_EQ(rep.gemm1.corrected, 0u);
}

TEST(Efta, DmrModeMatchesStandard) {
  auto [Q, K, V] = make(1, 1, 128, 64, 6);
  ft::Tensor4F Os(1, 1, 128, 64), Oe(1, 1, 128, 64);
  fa::standard_attention(Q, K, V, Os);
  fc::EftaOptions opt;
  opt.softmax = fc::SoftmaxProtect::kDMR;
  fc::efta_attention(Q, K, V, Oe, opt);
  EXPECT_LT(max_diff(Os, Oe), 2e-3f);
}

TEST(Efta, UnifiedAndPerStepAgree) {
  auto [Q, K, V] = make(1, 2, 256, 64, 7);
  ft::Tensor4F Oa(1, 2, 256, 64), Ob(1, 2, 256, 64);
  fc::EftaOptions a, b;
  a.unified_verification = false;
  b.unified_verification = true;
  fc::efta_attention(Q, K, V, Oa, a);
  fc::efta_attention(Q, K, V, Ob, b);
  // Fault-free, both orderings compute the same arithmetic.
  EXPECT_LT(max_diff(Oa, Ob), 1e-6f);
}

TEST(Efta, Dim128Config) {
  // The paper's large-model setting: head dim 128.
  auto [Q, K, V] = make(1, 2, 128, 128, 8);
  ft::Tensor4F Os(1, 2, 128, 128), Oe(1, 2, 128, 128);
  fa::standard_attention(Q, K, V, Os);
  fc::EftaOptions opt;
  opt.unified_verification = true;
  const auto rep = fc::efta_attention(Q, K, V, Oe, opt);
  EXPECT_LT(max_diff(Os, Oe), 2e-3f);
  EXPECT_EQ(rep.gemm2.flagged, 0u);
}

TEST(Efta, RejectsMisalignedShapes) {
  auto [Q, K, V] = make(1, 1, 96, 64, 9);  // 96 % 64 != 0
  ft::Tensor4F O(1, 1, 96, 64);
  EXPECT_THROW(fc::efta_attention(Q, K, V, O, {}), std::invalid_argument);
}

TEST(Efta, SmallSeqEqualsBlock) {
  auto [Q, K, V] = make(1, 1, 64, 64, 10);
  ft::Tensor4F Os(1, 1, 64, 64), Oe(1, 1, 64, 64);
  fa::standard_attention(Q, K, V, Os);
  fc::efta_attention(Q, K, V, Oe, {});
  EXPECT_LT(max_diff(Os, Oe), 2e-3f);
}

TEST(EftaCosts, ProtectionIsSmallFractionOfTotal) {
  // The paper's headline: average FT overhead under ~25% in the optimized
  // configuration at paper scale.
  ftt::sim::MachineModel m;
  fc::EftaOptions opt;
  opt.unified_verification = true;
  double total_ratio = 0.0;
  int n = 0;
  for (std::size_t seq : {512u, 1024u, 2048u, 4096u, 8192u, 16384u}) {
    const auto shape = fa::paper_shape(seq, 16, 64);
    const double base = m.seconds(fa::flash_attention_costs(shape));
    const double total = m.seconds(fc::efta_costs(shape, opt));
    total_ratio += (total - base) / base;
    ++n;
  }
  EXPECT_LT(total_ratio / n, 0.60);
  EXPECT_GT(total_ratio / n, 0.02);
}

TEST(EftaCosts, UnifiedCheaperThanPerStep) {
  fc::EftaOptions per_step, unified;
  per_step.unified_verification = false;
  unified.unified_verification = true;
  ftt::sim::MachineModel m;
  for (std::size_t seq : {512u, 2048u, 8192u}) {
    const auto shape = fa::paper_shape(seq, 16, 64);
    EXPECT_LT(m.seconds(fc::efta_costs(shape, unified)),
              m.seconds(fc::efta_costs(shape, per_step)))
        << seq;
  }
}

TEST(EftaCosts, StridedCheaperThanElementOnModel) {
  fc::EftaOptions strided, element;
  element.gemm = fc::GemmProtect::kElement;
  // Isolate the ABFT comparison (Fig. 11): same (no) softmax protection.
  strided.softmax = fc::SoftmaxProtect::kNone;
  element.softmax = fc::SoftmaxProtect::kNone;
  ftt::sim::MachineModel m;
  const auto shape = fa::paper_shape(2048, 16, 64);
  EXPECT_LT(m.seconds(fc::efta_costs(shape, strided)),
            m.seconds(fc::efta_costs(shape, element)));
}

TEST(EftaCosts, SnvrCheaperThanDmrOnModel) {
  fc::EftaOptions snvr, dmr;
  dmr.softmax = fc::SoftmaxProtect::kDMR;
  dmr.gemm = fc::GemmProtect::kNone;
  snvr.gemm = fc::GemmProtect::kNone;
  ftt::sim::MachineModel m;
  const auto shape = fa::paper_shape(2048, 16, 64);
  EXPECT_LT(m.seconds(fc::efta_costs(shape, snvr)),
            m.seconds(fc::efta_costs(shape, dmr)));
}

TEST(EftaCausal, MatchesCausalStandard) {
  auto [Q, K, V] = make(1, 2, 192, 64, 30);
  ft::Tensor4F Os(1, 2, 192, 64), Oe(1, 2, 192, 64);
  fa::standard_attention(Q, K, V, Os, /*causal=*/true);
  fc::EftaOptions opt;
  opt.causal = true;
  opt.unified_verification = true;
  const auto rep = fc::efta_attention(Q, K, V, Oe, opt);
  EXPECT_LT(max_diff(Os, Oe), 2e-3f);
  EXPECT_EQ(rep.gemm2.flagged, 0u);
  EXPECT_EQ(rep.range_corrections, 0u);
}

TEST(EftaCausal, PerStepAlsoMatches) {
  auto [Q, K, V] = make(1, 1, 256, 64, 31);
  ft::Tensor4F Os(1, 1, 256, 64), Oe(1, 1, 256, 64);
  fa::standard_attention(Q, K, V, Os, true);
  fc::EftaOptions opt;
  opt.causal = true;
  opt.unified_verification = false;
  fc::efta_attention(Q, K, V, Oe, opt);
  EXPECT_LT(max_diff(Os, Oe), 2e-3f);
}
