// Protected linear layers (feed-forward substrate).
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/random.hpp"
#include "transformer/linear.hpp"

namespace ftx = ftt::transformer;
namespace ft = ftt::tensor;
namespace ff = ftt::fault;

TEST(Linear, ShapeAndDeterminism) {
  ftx::Linear l(128, 256, 42);
  EXPECT_EQ(l.in_features(), 128u);
  EXPECT_EQ(l.out_features(), 256u);
  ftx::Linear l2(128, 256, 42);
  for (std::size_t i = 0; i < l.weight().size(); ++i) {
    EXPECT_EQ(l.weight().data()[i].bits(), l2.weight().data()[i].bits());
  }
}

TEST(Linear, RejectsMisalignedOut) {
  EXPECT_THROW(ftx::Linear(128, 100, 1), std::invalid_argument);
}

TEST(Linear, MatchesReference) {
  ftx::Linear l(64, 64, 7);
  ft::MatrixF x(8, 64);
  ft::fill_normal(x, 8);
  ft::MatrixF y(8, 64);
  l.forward(x, y);
  // Reference: fp16-rounded x times fp16 weights, fp32 accumulate, + bias.
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t c = 0; c < 64; ++c) {
      float acc = 0.0f;
      for (std::size_t k = 0; k < 64; ++k) {
        acc += ftt::numeric::round_to_half(x(r, k)) *
               l.weight()(c, k).to_float();
      }
      EXPECT_NEAR(y(r, c), acc, 0.1f) << r << "," << c;  // reference omits the bias
    }
  }
}

TEST(Linear, ProtectedEqualsUnprotectedCleanRun) {
  ftx::Linear l(128, 128, 9);
  ft::MatrixF x(16, 128);
  ft::fill_normal(x, 10);
  ft::MatrixF y0(16, 128), y1(16, 128);
  l.forward(x, y0, ftx::LinearProtect::kNone);
  const auto rep = l.forward(x, y1, ftx::LinearProtect::kStridedAbft);
  EXPECT_EQ(rep.flagged, 0u);
  EXPECT_LT(ft::max_abs_diff(y0, y1), 1e-6f);
}

TEST(Linear, CorrectsInjectedFault) {
  ftx::Linear l(128, 128, 11);
  ft::MatrixF x(16, 128);
  ft::fill_normal(x, 12);
  ft::MatrixF ref(16, 128), y(16, 128);
  l.forward(x, ref);
  auto inj = ff::FaultInjector::single(ff::Site::kLinear, 1000, 28);
  const auto rep = l.forward(x, y, ftx::LinearProtect::kStridedAbft, &inj);
  EXPECT_EQ(inj.injected(), 1u);
  EXPECT_EQ(rep.corrected, 1u);
  EXPECT_LT(ft::max_abs_diff(ref, y), 1e-2f);
}

TEST(Linear, UnprotectedFaultPropagates) {
  // Negative control: without ABFT the same flip visibly corrupts output.
  ftx::Linear l(128, 128, 13);
  ft::MatrixF x(16, 128);
  ft::fill_normal(x, 14);
  ft::MatrixF ref(16, 128), y(16, 128);
  l.forward(x, ref);
  auto inj = ff::FaultInjector::single(ff::Site::kLinear, 1000, 30);
  l.forward(x, y, ftx::LinearProtect::kNone, &inj);
  EXPECT_GT(ft::max_abs_diff(ref, y), 1.0f);
}

TEST(Linear, WideLayerProtection) {
  // FFN-shaped layer (wide output, multi-tile checksums).
  ftx::Linear l(64, 256, 15);
  ft::MatrixF x(8, 64);
  ft::fill_normal(x, 16);
  ft::MatrixF ref(8, 256), y(8, 256);
  l.forward(x, ref);
  auto inj = ff::FaultInjector::single(ff::Site::kLinear, 1777, 27);
  const auto rep = l.forward(x, y, ftx::LinearProtect::kStridedAbft, &inj);
  EXPECT_EQ(rep.corrected, 1u);
  EXPECT_LT(ft::max_abs_diff(ref, y), 1e-2f);
}

TEST(LinearCosts, ScaleWithShape) {
  ftx::Linear small(64, 64, 17), big(256, 256, 18);
  EXPECT_LT(small.costs(8).total().tc_flops, big.costs(8).total().tc_flops);
  EXPECT_LT(small.protection_costs(8).total().tc_flops,
            big.protection_costs(8).total().tc_flops);
  // Protection is a small fraction of the payload.
  EXPECT_LT(big.protection_costs(128).total().tc_flops,
            big.costs(128).total().tc_flops);
}
