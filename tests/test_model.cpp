// Transformer stack: attention-kind equivalence, protected inference under
// faults, config presets, model-level cost accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/random.hpp"
#include "transformer/model.hpp"

namespace ftx = ftt::transformer;
namespace ft = ftt::tensor;
namespace ff = ftt::fault;

namespace {

ft::MatrixF make_input(std::size_t seq, std::size_t hidden,
                       std::uint64_t seed) {
  ft::MatrixF x(seq, hidden);
  ft::fill_normal(x, seed);
  return x;
}

float max_rel(const ft::MatrixF& a, const ft::MatrixF& b) {
  float m = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float d = std::fabs(a.data()[i] - b.data()[i]);
    if (std::isnan(d)) return std::numeric_limits<float>::infinity();
    m = std::max(m, d / (std::fabs(b.data()[i]) + 1e-2f));
  }
  return m;
}

}  // namespace

TEST(ModelConfig, Presets) {
  EXPECT_EQ(ftx::ModelConfig::gpt2().layers, 12u);
  EXPECT_EQ(ftx::ModelConfig::gpt2().head_dim(), 64u);
  EXPECT_EQ(ftx::ModelConfig::bert_large().layers, 24u);
  EXPECT_EQ(ftx::ModelConfig::bert_large().head_dim(), 64u);
  EXPECT_EQ(ftx::ModelConfig::t5_small().hidden, 512u);
  EXPECT_EQ(ftx::ModelConfig::t5_small().head_dim(), 64u);
}

TEST(Model, AttentionKindsAgreeOnCleanRun) {
  const ftx::Model model(ftx::ModelConfig::tiny());
  const auto base = make_input(64, 128, 1);

  ft::MatrixF x_std = base, x_flash = base, x_efta = base, x_eftao = base,
              x_dec = base;
  model.forward(x_std, ftx::AttentionKind::kStandard);
  model.forward(x_flash, ftx::AttentionKind::kFlash);
  model.forward(x_efta, ftx::AttentionKind::kEfta);
  model.forward(x_eftao, ftx::AttentionKind::kEftaOptimized);
  model.forward(x_dec, ftx::AttentionKind::kDecoupledFt);

  // fp16 rounding differences compound across two blocks of projections,
  // attention and FFN; agreement is to ~7% relative on near-zero entries.
  EXPECT_LT(max_rel(x_flash, x_std), 0.1f);
  EXPECT_LT(max_rel(x_efta, x_std), 0.1f);
  EXPECT_LT(max_rel(x_eftao, x_std), 0.1f);
  EXPECT_LT(max_rel(x_dec, x_std), 0.1f);
}

TEST(Model, ProtectedLinearCleanRunNoFlags) {
  const ftx::Model model(ftx::ModelConfig::tiny());
  auto x = make_input(64, 128, 2);
  const auto res =
      model.forward(x, ftx::AttentionKind::kEftaOptimized, true);
  EXPECT_EQ(res.projections.flagged, 0u);
  EXPECT_EQ(res.ffn_abft.flagged, 0u);
  EXPECT_EQ(res.activations_clipped, 0u);
}

TEST(Model, ProtectedRecoversFromAttentionFault) {
  const ftx::Model model(ftx::ModelConfig::tiny());
  auto ref = make_input(64, 128, 3);
  auto x = ref;
  model.forward(ref, ftx::AttentionKind::kEftaOptimized, true);
  auto inj = ff::FaultInjector::single(ff::Site::kGemm2, 123, 30);
  const auto res =
      model.forward(x, ftx::AttentionKind::kEftaOptimized, true, &inj);
  EXPECT_GE(res.attention.gemm2.corrected +
                res.attention.gemm2.checksum_repairs,
            1u);
  EXPECT_LT(max_rel(x, ref), 0.05f);
}

TEST(Model, ProtectedRecoversFromProjectionFault) {
  const ftx::Model model(ftx::ModelConfig::tiny());
  auto ref = make_input(64, 128, 4);
  auto x = ref;
  model.forward(ref, ftx::AttentionKind::kEftaOptimized, true);
  auto inj = ff::FaultInjector::single(ff::Site::kLinear, 2048, 29);
  const auto res =
      model.forward(x, ftx::AttentionKind::kEftaOptimized, true, &inj);
  EXPECT_GE(res.projections.corrected + res.ffn_abft.corrected +
                res.activations_clipped,
            1u);
  EXPECT_LT(max_rel(x, ref), 0.1f);
}

TEST(Model, UnprotectedFaultCorruptsOutput) {
  // Negative control at model level: the same flip without protection makes
  // a visible difference.
  const ftx::Model model(ftx::ModelConfig::tiny());
  auto ref = make_input(64, 128, 5);
  auto x = ref;
  model.forward(ref, ftx::AttentionKind::kFlash, false);
  auto inj = ff::FaultInjector::single(ff::Site::kLinear, 2048, 30);
  model.forward(x, ftx::AttentionKind::kFlash, false, &inj);
  EXPECT_GT(max_rel(x, ref), 0.05f);
}

TEST(ModelCosts, ScaleWithLayersAndHidden) {
  const ftx::Model tiny(ftx::ModelConfig::tiny());
  const ftx::Model gpt2(ftx::ModelConfig::gpt2());
  ftt::sim::MachineModel m;
  const double t_tiny =
      m.seconds(tiny.costs(512, ftx::AttentionKind::kEftaOptimized));
  const double t_gpt2 =
      m.seconds(gpt2.costs(512, ftx::AttentionKind::kEftaOptimized));
  EXPECT_GT(t_gpt2, 10.0 * t_tiny);
}

TEST(ModelCosts, DetectionOverheadSmall) {
  // Fig. 15: detection overhead across the four models averages ~5%.
  ftt::sim::MachineModel m;
  for (const auto& cfg :
       {ftx::ModelConfig::gpt2(), ftx::ModelConfig::bert_base(),
        ftx::ModelConfig::bert_large(), ftx::ModelConfig::t5_small()}) {
    const ftx::Model model(cfg);
    const double base = m.seconds(model.costs(512, ftx::AttentionKind::kFlash));
    const double det = m.seconds(model.detection_overhead_costs(512));
    EXPECT_LT(det / base, 0.25) << cfg.name;
    EXPECT_GT(det / base, 0.005) << cfg.name;
  }
}

TEST(ModelCosts, CorrectionCostsMoreThanDetection) {
  ftt::sim::MachineModel m;
  const ftx::Model model(ftx::ModelConfig::gpt2());
  EXPECT_GT(m.seconds(model.correction_overhead_costs(512)),
            m.seconds(model.detection_overhead_costs(512)));
}

TEST(Model, RejectsBadHeadSplit) {
  ftx::ModelConfig bad;
  bad.hidden = 130;
  bad.heads = 4;
  bad.ffn_inner = 256;
  EXPECT_THROW(ftx::Model{bad}, std::invalid_argument);
}
