// Recovery-ladder chaos suite: tick retry, shard quarantine, KV tile
// scrubbing and replica drain, each pinned against a clean twin bit for
// bit.  The ladder's contract is that any run it reports fully recovered
// (lifetime degraded == 0 && failed == 0 under the kAnyDetection trigger)
// committed only detection-free attempts, and a detection-free attempt is
// exactly the clean-run bits — so every recovered run below must end
// bitwise-equal to its fault-free twin.
#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <cstring>
#include <random>
#include <span>
#include <vector>

#include "fault/fault.hpp"
#include "serve/engine.hpp"
#include "serve/router.hpp"
#include "tensor/random.hpp"
#include "transformer/model.hpp"

namespace ff = ftt::fault;
namespace fs = ftt::serve;
namespace ft = ftt::tensor;
namespace fx = ftt::transformer;

namespace {

fx::ModelConfig serving_config() {
  fx::ModelConfig cfg = fx::ModelConfig::tiny();
  cfg.causal = true;
  return cfg;
}

ft::MatrixF random_prompt(std::size_t seq, std::size_t hidden,
                          std::uint64_t seed) {
  ft::MatrixF m(seq, hidden);
  ft::fill_normal(m, seed);
  return m;
}

/// Shared options for every engine in this suite, clean twins included.
/// The thresholds are loosened from the calibrated serving defaults: the
/// tiny test model sits close enough to them that a clean run can flag
/// threshold noise, and a noise detection would spin the retry trigger
/// forever (the noise is deterministic, so every attempt re-flags it).
/// Bit-30 exponent flips deviate by orders of magnitude and stay firmly
/// detected at these settings.  Thresholds only decide detection, so on a
/// detection-free clean run they change no bits.
fs::EngineOptions recovery_options() {
  fs::EngineOptions opt;
  opt.efta.abft_rel_threshold = 0.08f;
  opt.efta.exp_log_threshold = 0.3f;
  opt.efta.snvr_slack = 1e-2f;
  return opt;
}

void expect_bitwise(std::span<const float> got, std::span<const float> want,
                    const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  if (std::memcmp(got.data(), want.data(), got.size() * sizeof(float)) == 0) {
    return;
  }
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << what << " diverges at element " << i;
  }
}

/// Run one request through a fault-free solo engine and return its final
/// hidden state.  Asserts the clean run is detection-free — the premise
/// every bitwise comparison in this suite rests on.
std::vector<float> clean_final_hidden(const fx::Model& model,
                                      const ft::MatrixF& prompt,
                                      std::size_t budget,
                                      fs::EngineOptions opt) {
  opt.recovery = fs::RecoveryPolicy{};
  fs::DecodeEngine clean(model, opt);
  const auto id = clean.submit(prompt, budget);
  clean.run_until_idle();
  EXPECT_EQ(clean.lifetime().attention.total_detected(), 0u)
      << "clean run flagged attention noise: loosen thresholds";
  EXPECT_EQ(clean.lifetime().linear.flagged, 0u)
      << "clean run flagged linear noise: loosen thresholds";
  const auto h = clean.hidden(id);
  return {h.begin(), h.end()};
}

}  // namespace

// ---------------------------------------------------------------------------
// Rung 1: tick retry.
// ---------------------------------------------------------------------------

TEST(Recovery, RetryRecoversInjectedTickBitwise) {
  const fx::Model model(serving_config(), 0x123);
  const std::size_t hidden = model.config().hidden;
  const ft::MatrixF prompt = random_prompt(20, hidden, 0xbeef);
  const std::size_t budget = 8;
  const auto clean = clean_final_hidden(model, prompt, budget,
                                        recovery_options());

  fs::EngineOptions opt = recovery_options();
  opt.recovery.max_tick_retries = 2;
  fs::DecodeEngine engine(model, opt);
  const auto id = engine.submit(prompt, budget);
  engine.drain(3);  // prefill + 2 clean decode ticks

  auto inj = ff::FaultInjector::single(ff::Site::kGemm1, 7, 30);
  const auto stats = engine.step(&inj);
  EXPECT_EQ(stats.attention.faults_injected, 1u);
  EXPECT_GE(stats.attention.total_detected(), 1u);
  EXPECT_GE(stats.retried, 1u);    // the faulty attempt triggered a re-run
  EXPECT_GE(stats.recovered, 1u);  // and the re-run committed clean
  EXPECT_EQ(stats.degraded, 0u);
  EXPECT_EQ(stats.failed, 0u);

  engine.run_until_idle();
  EXPECT_EQ(engine.state(id), fs::RequestState::kRetired);
  EXPECT_EQ(engine.health(id), fs::RequestHealth::kClean);
  EXPECT_EQ(engine.lifetime().degraded, 0u);
  EXPECT_EQ(engine.lifetime().failed, 0u);
  // The recovered stream is the clean stream, bit for bit — the fault's
  // only trace is in the reports.
  expect_bitwise(engine.hidden(id), clean, "retried request");
  EXPECT_GE(engine.report(id).total_detected(), 1u);

  // Typed not-found accessors (satellite): report() throws, find_report()
  // is the nullptr probe.
  EXPECT_EQ(engine.find_report(id), &engine.report(id));
  EXPECT_EQ(engine.find_report(9999), nullptr);
  EXPECT_THROW((void)engine.report(9999), std::out_of_range);
}

TEST(Recovery, RetryExhaustionServesFlagged) {
  const fx::Model model(serving_config(), 0x123);
  const ft::MatrixF prompt = random_prompt(16, model.config().hidden, 0xcafe);

  fs::EngineOptions opt = recovery_options();
  opt.recovery.max_tick_retries = 1;
  opt.recovery.on_exhaustion = fs::EscalationPolicy::kServeFlagged;
  fs::DecodeEngine engine(model, opt);
  const auto id = engine.submit(prompt, 8);
  engine.drain(1);  // clean prefill

  // A persistent fault process: heavy Bernoulli corruption faults every
  // attempt, so the bounded retry cannot reach a clean re-run and must
  // escalate.
  auto inj = ff::FaultInjector::bernoulli(0.2, 0xfeed, {ff::Site::kGemm1});
  for (int t = 0; t < 4 && engine.active() > 0; ++t) engine.step(&inj);

  EXPECT_GT(engine.lifetime().retried, 0u);
  EXPECT_GT(engine.lifetime().degraded, 0u);
  EXPECT_EQ(engine.lifetime().failed, 0u);
  // kServeFlagged keeps serving: the request lives on, visibly flagged.
  EXPECT_EQ(engine.health(id), fs::RequestHealth::kFlagged);
  EXPECT_TRUE(engine.is_active(id));

  engine.run_until_idle();  // fault process gone: the request completes
  EXPECT_EQ(engine.state(id), fs::RequestState::kRetired);
  EXPECT_EQ(engine.health(id), fs::RequestHealth::kFlagged);  // sticky
  EXPECT_FALSE(engine.hidden(id).empty());
}

TEST(Recovery, RetryExhaustionFailsRequest) {
  const fx::Model model(serving_config(), 0x123);
  const ft::MatrixF prompt = random_prompt(16, model.config().hidden, 0xcafe);

  fs::EngineOptions opt = recovery_options();
  opt.recovery.max_tick_retries = 1;
  opt.recovery.on_exhaustion = fs::EscalationPolicy::kFailRequest;
  fs::DecodeEngine engine(model, opt);
  const auto id = engine.submit(prompt, 8);
  engine.drain(1);

  auto inj = ff::FaultInjector::bernoulli(0.2, 0xfeed, {ff::Site::kGemm1});
  for (int t = 0; t < 4 && engine.active() > 0; ++t) engine.step(&inj);

  // kFailRequest refuses to commit a possibly-wrong token: the affected
  // request was retired with its last tick's appends rolled back.
  EXPECT_GT(engine.lifetime().failed, 0u);
  EXPECT_EQ(engine.lifetime().degraded, 0u);
  EXPECT_EQ(engine.state(id), fs::RequestState::kRetired);
  EXPECT_EQ(engine.health(id), fs::RequestHealth::kFailed);
  EXPECT_FALSE(engine.is_active(id));
  EXPECT_FALSE(engine.hidden(id).empty());  // last clean hidden readable
}

// ---------------------------------------------------------------------------
// Rung 2: shard quarantine.
// ---------------------------------------------------------------------------

namespace {

void quarantine_roundtrip(std::size_t shards) {
  const fx::Model model(serving_config(), 0x77);
  const std::size_t hidden = model.config().hidden;
  const ft::MatrixF prompt = random_prompt(24, hidden, 0x1234);
  const std::size_t budget = 24;
  const auto clean = clean_final_hidden(model, prompt, budget,
                                        recovery_options());

  fs::EngineOptions opt = recovery_options();
  opt.shards = shards;
  opt.recovery.max_tick_retries = 2;
  opt.recovery.shard_quarantine_threshold = 1;
  opt.recovery.shard_window_ticks = 4;
  opt.recovery.shard_probation_ticks = 4;
  fs::DecodeEngine engine(model, opt);
  EXPECT_EQ(engine.healthy_shards(), shards);
  const auto id = engine.submit(prompt, budget);
  engine.drain(2);  // prefill + 1 clean decode tick

  // Hammer attention faults until one shard's evidence window crosses the
  // threshold.  Every injected tick runs the solo body (injectors are
  // call-order state) and retries to a clean commit, so the stream stays
  // bit-clean while the quarantine evidence accumulates.
  std::mt19937_64 rng(0x5eed);
  std::size_t injected_ticks = 0;
  while (engine.lifetime().quarantined == 0 && injected_ticks < 10 &&
         engine.active() > 0) {
    auto inj = ff::FaultInjector::single(ff::Site::kGemm1,
                                         rng() % 120, 30);
    engine.step(&inj);
    ++injected_ticks;
  }
  ASSERT_GE(engine.lifetime().quarantined, 1u)
      << shards << " shards: no quarantine after " << injected_ticks
      << " injected ticks";
  EXPECT_LT(engine.healthy_shards(), shards);
  bool any = false;
  for (std::size_t s = 0; s < shards; ++s) any |= engine.shard_quarantined(s);
  EXPECT_TRUE(any);
  EXPECT_THROW((void)engine.shard_quarantined(shards), std::out_of_range);

  // Fault process gone: the remaining ticks run on the remapped healthy
  // workers (column-parallel combine is bitwise for any worker count), and
  // probation readmits the quarantined shard along the way.
  engine.run_until_idle();
  EXPECT_EQ(engine.healthy_shards(), shards) << "probation never readmitted";
  EXPECT_EQ(engine.lifetime().degraded, 0u);
  EXPECT_EQ(engine.lifetime().failed, 0u);
  EXPECT_EQ(engine.state(id), fs::RequestState::kRetired);
  EXPECT_EQ(engine.health(id), fs::RequestHealth::kClean);
  expect_bitwise(engine.hidden(id), clean, "quarantine-remapped request");
}

}  // namespace

TEST(Recovery, QuarantineRemapsAndReadmitsTwoShards) {
  quarantine_roundtrip(2);
}

TEST(Recovery, QuarantineRemapsAndReadmitsFourShards) {
  quarantine_roundtrip(4);
}

// ---------------------------------------------------------------------------
// Rung 3: KV tile scrubbing.  Memory faults are OUTSIDE the paper's fault
// model (KV storage is assumed ECC-protected); the serve::testing flip
// hooks exist purely to drive the scrubber's classification paths.
// ---------------------------------------------------------------------------

namespace {

struct ScrubRun {
  fx::Model model{serving_config(), 0x42};
  ft::MatrixF prompt;
  std::size_t budget = 8;
  std::vector<float> clean;
  fs::EngineOptions opt;

  explicit ScrubRun(ftt::core::ImagePolicy images) {
    prompt = random_prompt(80, model.config().hidden, 0x7777);
    opt = recovery_options();
    opt.images = images;
    // These tests flip bits in the fp16 tile slab / image slabs, so they pin
    // the fp16 format explicitly (the int8 scrub arm has its own suite in
    // test_int8_quant.cpp) — a sealed kI8 tile frees the staging slab the
    // flips target.  Keeps the suite green under the FTT_KV_QUANT leg.
    opt.kv_quant = false;
    opt.recovery.scrub_tiles_per_tick = 64;  // full sweep every tick
    clean = clean_final_hidden(model, prompt, budget, opt);
  }
};

}  // namespace

TEST(Recovery, ScrubberRepairsChecksumClassFlip) {
  ScrubRun run(ftt::core::ImagePolicy::kF32);
  fs::DecodeEngine engine(run.model, run.opt);
  const auto id = engine.submit(run.prompt, run.budget);
  engine.step();  // prefill chunk 1: rows 0..63 seal tile 0

  const auto table = engine.kv_block_table(id);
  ASSERT_GE(table.size(), 1u);
  fs::TilePool& pool = fs::testing::engine_pool(engine);
  ASSERT_TRUE(pool.sealed(table[0]));
  // Flip an exponent bit of one sealed checksum half: payload clean, one
  // encoding element wrong -> checksum-class, repaired in place.
  const std::size_t enc_base = 2 * fs::TilePool::kTileRows * pool.dim();
  fs::testing::flip_slab_bit(pool, table[0], 0, 0, enc_base + 3, 13);

  const auto stats = engine.step();
  EXPECT_GE(stats.scrubbed, 1u);
  EXPECT_GE(stats.repaired, 1u);
  EXPECT_EQ(stats.scrub_dropped, 0u);
  EXPECT_EQ(stats.preempted, 0u);

  engine.run_until_idle();
  EXPECT_EQ(engine.preemption_count(id), 0u);
  expect_bitwise(engine.hidden(id), run.clean, "enc-repaired request");
}

TEST(Recovery, ScrubberRepairsPayloadFromImage) {
  ScrubRun run(ftt::core::ImagePolicy::kF32);
  fs::DecodeEngine engine(run.model, run.opt);
  const auto id = engine.submit(run.prompt, run.budget);
  engine.step();

  const auto table = engine.kv_block_table(id);
  ASSERT_GE(table.size(), 1u);
  fs::TilePool& pool = fs::testing::engine_pool(engine);
  // Flip an exponent bit of one K payload half: the fresh encode mismatches
  // the sealed encodings at >= 2 positions (plain + weighted checksum), and
  // the fp32 image — widened at seal time, before the flip — restores the
  // exact original bits.
  fs::testing::flip_slab_bit(pool, table[0], 1, 0, 5, 13);

  const auto stats = engine.step();
  EXPECT_GE(stats.repaired, 1u);
  EXPECT_EQ(stats.scrub_dropped, 0u);

  engine.run_until_idle();
  EXPECT_EQ(engine.preemption_count(id), 0u);
  expect_bitwise(engine.hidden(id), run.clean, "payload-repaired request");
}

TEST(Recovery, ScrubberRepairsCorruptImageFromPayload) {
  ScrubRun run(ftt::core::ImagePolicy::kF32);
  fs::DecodeEngine engine(run.model, run.opt);
  const auto id = engine.submit(run.prompt, run.budget);
  engine.step();

  const auto table = engine.kv_block_table(id);
  ASSERT_GE(table.size(), 1u);
  fs::TilePool& pool = fs::testing::engine_pool(engine);
  // Corrupt the memoized fp32 image only: payload and encodings agree, the
  // image cross-check catches the divergence, and the fp16 slab (the
  // authoritative copy) rebuilds the image.  This is the case that MUST be
  // repaired before compute — clean decode ticks read the image.
  fs::testing::flip_image_bit(pool, table[0], 0, 1, 7, 27);

  const auto stats = engine.step();
  EXPECT_GE(stats.repaired, 1u);
  EXPECT_EQ(stats.scrub_dropped, 0u);

  engine.run_until_idle();
  expect_bitwise(engine.hidden(id), run.clean, "image-repaired request");
}

TEST(Recovery, ScrubberDropsUnrepairableTileAndRecomputes) {
  // Without fp32 images a payload-class corruption has no redundant copy:
  // the tile must be dropped and its owner preempted onto recompute —
  // degraded throughput, never a wrong answer.
  ScrubRun run(ftt::core::ImagePolicy::kNone);
  fs::DecodeEngine engine(run.model, run.opt);
  const auto id = engine.submit(run.prompt, run.budget);
  engine.step();

  const auto table = engine.kv_block_table(id);
  ASSERT_GE(table.size(), 1u);
  fs::TilePool& pool = fs::testing::engine_pool(engine);
  ASSERT_TRUE(pool.sealed(table[0]));
  fs::testing::flip_slab_bit(pool, table[0], 1, 0, 5, 13);

  const auto stats = engine.step();
  EXPECT_GE(stats.scrub_dropped, 1u);
  EXPECT_GE(stats.preempted, 1u);
  // (The dropped id may already be sealed again here: the preempted owner
  // re-admits within the same tick and its recompute recycles the tile off
  // the dead list with clean bits.)
  EXPECT_GE(engine.preemption_count(id), 1u);

  engine.run_until_idle();
  EXPECT_EQ(engine.state(id), fs::RequestState::kRetired);
  EXPECT_GE(engine.preemption_count(id), 1u);
  expect_bitwise(engine.hidden(id), run.clean, "recomputed request");
}

TEST(Recovery, ScrubberRepairsCorruptF16tImageFromPayload) {
  ScrubRun run(ftt::core::ImagePolicy::kF16T);
  fs::DecodeEngine engine(run.model, run.opt);
  const auto id = engine.submit(run.prompt, run.budget);
  engine.step();

  const auto table = engine.kv_block_table(id);
  ASSERT_GE(table.size(), 1u);
  fs::TilePool& pool = fs::testing::engine_pool(engine);
  ASSERT_TRUE(pool.sealed(table[0]));
  // Corrupt the pre-transposed fp16 image only: payload and encodings
  // agree, the image cross-check catches the divergence, and the fp16 slab
  // (the authoritative copy) rebuilds the image by re-transposing.
  fs::testing::flip_f16t_bit(pool, table[0], 0, 1, 7, 11);

  const auto stats = engine.step();
  EXPECT_GE(stats.repaired, 1u);
  EXPECT_EQ(stats.scrub_dropped, 0u);

  engine.run_until_idle();
  expect_bitwise(engine.hidden(id), run.clean, "f16t-image-repaired request");
}

TEST(Recovery, ScrubberRepairsKPayloadFromF16tImage) {
  ScrubRun run(ftt::core::ImagePolicy::kF16T);
  fs::DecodeEngine engine(run.model, run.opt);
  const auto id = engine.submit(run.prompt, run.budget);
  engine.step();

  const auto table = engine.kv_block_table(id);
  ASSERT_GE(table.size(), 1u);
  fs::TilePool& pool = fs::testing::engine_pool(engine);
  // Flip an exponent bit of one K payload half (slab index 5 lies in the K
  // block): payload-class corruption, and the f16t image — a verbatim bit
  // transpose of K taken at seal time — restores the original halves.
  fs::testing::flip_slab_bit(pool, table[0], 1, 0, 5, 13);

  const auto stats = engine.step();
  EXPECT_GE(stats.repaired, 1u);
  EXPECT_EQ(stats.scrub_dropped, 0u);

  engine.run_until_idle();
  EXPECT_EQ(engine.preemption_count(id), 0u);
  expect_bitwise(engine.hidden(id), run.clean, "K-payload-repaired request");
}

TEST(Recovery, ScrubberDropsVPayloadCorruptionUnderF16tImages) {
  // The f16t image carries no V copy (that is the 2x memory saving), so a
  // V-payload flip has no redundant source: the tile drops and the owner
  // recomputes — degraded throughput, never a wrong answer.
  ScrubRun run(ftt::core::ImagePolicy::kF16T);
  fs::DecodeEngine engine(run.model, run.opt);
  const auto id = engine.submit(run.prompt, run.budget);
  engine.step();

  const auto table = engine.kv_block_table(id);
  ASSERT_GE(table.size(), 1u);
  fs::TilePool& pool = fs::testing::engine_pool(engine);
  ASSERT_TRUE(pool.sealed(table[0]));
  const std::size_t v_base = fs::TilePool::kTileRows * pool.dim();
  fs::testing::flip_slab_bit(pool, table[0], 1, 0, v_base + 5, 13);

  const auto stats = engine.step();
  EXPECT_GE(stats.scrub_dropped, 1u);
  EXPECT_GE(stats.preempted, 1u);

  engine.run_until_idle();
  EXPECT_EQ(engine.state(id), fs::RequestState::kRetired);
  EXPECT_GE(engine.preemption_count(id), 1u);
  expect_bitwise(engine.hidden(id), run.clean, "recomputed request");
}

// ---------------------------------------------------------------------------
// Rung 4: replica drain.
// ---------------------------------------------------------------------------

TEST(Recovery, RouterDrainsFaultyReplicaAndReplaysBitwise) {
  const fx::Model model(serving_config(), 0x99);
  const std::size_t hidden = model.config().hidden;
  const std::size_t lens[] = {12, 18, 24, 30};
  const std::size_t budget = 16;

  std::vector<ft::MatrixF> prompts;
  std::vector<std::vector<float>> clean;
  for (std::size_t i = 0; i < std::size(lens); ++i) {
    prompts.push_back(random_prompt(lens[i], hidden, 0x4000 + i));
    clean.push_back(clean_final_hidden(model, prompts.back(), budget,
                                       recovery_options()));
  }

  fs::RouterOptions ropt;
  ropt.replicas = 2;
  ropt.sticky_prefix = false;  // pure least-loaded: alternates 0,1,0,1
  ropt.engine = recovery_options();
  ropt.drain_window_ticks = 8;
  ropt.drain_fault_threshold = 1;
  ropt.drain_probe_ticks = 3;
  fs::Router router(model, ropt);

  std::vector<fs::Router::RequestId> ids;
  for (const auto& p : prompts) ids.push_back(router.submit(p, budget));
  EXPECT_EQ(router.placement(ids[0]).replica, 0u);
  EXPECT_EQ(router.placement(ids[1]).replica, 1u);

  // Replica 0 develops a persistent uncorrected-fault stream (heavy
  // Bernoulli corruption overwhelms the checksum correction); replica 1
  // stays clean.  The router's health window must drain replica 0 and
  // replay its in-flight requests on replica 1 from their prompts.
  auto inj = ff::FaultInjector::bernoulli(0.2, 0xabcdef, {ff::Site::kGemm1});
  const std::array<ff::FaultInjector*, 2> per = {&inj, nullptr};
  std::size_t faulty_ticks = 0;
  while (router.lifetime().drained == 0 && faulty_ticks < 12) {
    router.step(std::span<ff::FaultInjector* const>(per));
    ++faulty_ticks;
  }
  ASSERT_GE(router.lifetime().drained, 1u)
      << "no drain after " << faulty_ticks << " faulty ticks";
  EXPECT_TRUE(router.replica_drained(0));
  EXPECT_FALSE(router.replica_drained(1));
  EXPECT_EQ(router.healthy_replicas(), 1u);
  EXPECT_THROW((void)router.replica_drained(5), std::out_of_range);
  for (const auto id : ids) {
    EXPECT_EQ(router.placement(id).replica, 1u) << "request " << id
                                                << " not replayed";
  }

  // Fault process gone: everything completes on the healthy replica, and
  // the probe readmits replica 0.
  router.run_until_idle();
  for (int t = 0; t < 4; ++t) router.step();  // let probation elapse
  EXPECT_EQ(router.healthy_replicas(), 2u) << "probe never readmitted";
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(router.state(ids[i]), fs::RequestState::kRetired);
    expect_bitwise(router.hidden(ids[i]), clean[i], "drained-replica request");
  }

  // Typed not-found accessors at the router layer (satellite).
  EXPECT_EQ(router.find_report(ids[0]), &router.report(ids[0]));
  EXPECT_EQ(router.find_report(9999), nullptr);
  EXPECT_THROW((void)router.report(9999), std::out_of_range);
}

// ---------------------------------------------------------------------------
// The acceptance gate: randomized single-transient-fault chaos per tick,
// across topologies.  Every run the ladder marks fully recovered must be
// bitwise-equal to its clean twin.
// ---------------------------------------------------------------------------

namespace {

/// One chaos run: submit the prompts, then inject one random (site, call,
/// bit-30) transient per tick until idle.  Returns the engine for
/// inspection; the caller asserts full recovery and bitwise equality.
void chaos_run(const fx::Model& model, std::size_t shards,
               std::uint64_t seed,
               const std::vector<ft::MatrixF>& prompts,
               const std::vector<std::size_t>& budgets,
               const std::vector<std::vector<float>>& clean,
               bool arm_quarantine) {
  fs::EngineOptions opt = recovery_options();
  // Bitwise equality with a no-retry clean twin is seal-timing dependent:
  // under retry every append defers its tile seals to the end-of-tick
  // commit, so with kI8 tiles mid-tick reads see fp16 staging rows where
  // the clean twin already sees quantized ones.  Pin fp16 (lossless either
  // way); the int8 recovery arm has its own suite in test_int8_quant.
  opt.kv_quant = false;
  opt.shards = shards;
  opt.recovery.max_tick_retries = 2;
  if (arm_quarantine && shards > 1) {
    opt.recovery.shard_quarantine_threshold = 2;
    opt.recovery.shard_window_ticks = 4;
    opt.recovery.shard_probation_ticks = 3;
  }
  fs::DecodeEngine engine(model, opt);
  std::vector<fs::DecodeEngine::RequestId> ids;
  for (std::size_t i = 0; i < prompts.size(); ++i) {
    ids.push_back(engine.submit(prompts[i], budgets[i]));
  }

  // One transient per tick: site, call offset and the flipped bit (a high
  // exponent bit — the firmly-detected class) drawn from a seeded rng.
  // Offsets past the tick's call count simply never fire (a clean tick).
  const ff::Site sites[] = {ff::Site::kGemm1, ff::Site::kGemm2,
                           ff::Site::kExp, ff::Site::kLinear};
  std::mt19937_64 rng(seed);
  std::size_t ticks = 0;
  while ((engine.active() > 0 || engine.queued() > 0) && ticks < 400) {
    auto inj = ff::FaultInjector::single(sites[rng() % std::size(sites)],
                                         rng() % 400, 30);
    engine.step(&inj);
    ++ticks;
  }
  ASSERT_EQ(engine.active() + engine.queued(), 0u)
      << shards << " shards, seed " << seed << ": chaos run never drained";

  // The run must be meaningful (faults landed, retries happened) and fully
  // recovered (no escalations) — which makes bitwise equality mandatory.
  EXPECT_GT(engine.lifetime().retried, 0u);
  EXPECT_GE(engine.lifetime().recovered, 1u);
  ASSERT_EQ(engine.lifetime().degraded, 0u);
  ASSERT_EQ(engine.lifetime().failed, 0u);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(engine.health(ids[i]), fs::RequestHealth::kClean);
    expect_bitwise(engine.hidden(ids[i]), clean[i], "chaos request");
  }
}

}  // namespace

TEST(Recovery, ChaosSingleFaultPerTickBitwiseAcrossTopologies) {
  const fx::Model model(serving_config(), 0xabc);
  const std::size_t hidden = model.config().hidden;
  const std::size_t lens[] = {10, 33, 70};
  const std::vector<std::size_t> budgets = {12, 9, 6};

  std::vector<ft::MatrixF> prompts;
  std::vector<std::vector<float>> clean;
  for (std::size_t i = 0; i < std::size(lens); ++i) {
    prompts.push_back(random_prompt(lens[i], hidden, 0x9000 + i));
    fs::EngineOptions copt = recovery_options();
    copt.kv_quant = false;  // match chaos_run's pinned format
    clean.push_back(clean_final_hidden(model, prompts[i], budgets[i], copt));
  }

  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{4}}) {
    chaos_run(model, shards, 1000 + shards, prompts, budgets, clean,
              /*arm_quarantine=*/false);
  }
}

TEST(Recovery, ChaosSoak) {
  // The CI chaos-soak leg (scripts/run_tier1.sh --chaos-soak): a heavier
  // randomized sweep with the quarantine rung armed on the sharded
  // topologies.  Gated behind an env var so the default test pass stays
  // fast.
  if (std::getenv("FTT_CHAOS_SOAK") == nullptr) {
    GTEST_SKIP() << "set FTT_CHAOS_SOAK=1 to run the chaos soak";
  }
  const fx::Model model(serving_config(), 0xabc);
  const std::size_t hidden = model.config().hidden;
  const std::size_t lens[] = {10, 33, 70, 129};
  const std::vector<std::size_t> budgets = {16, 12, 10, 8};

  std::vector<ft::MatrixF> prompts;
  std::vector<std::vector<float>> clean;
  for (std::size_t i = 0; i < std::size(lens); ++i) {
    prompts.push_back(random_prompt(lens[i], hidden, 0xa000 + i));
    fs::EngineOptions copt = recovery_options();
    copt.kv_quant = false;  // match chaos_run's pinned format
    clean.push_back(clean_final_hidden(model, prompts[i], budgets[i], copt));
  }

  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                     std::size_t{4}}) {
      chaos_run(model, shards, 7000 * seed + shards, prompts, budgets, clean,
                /*arm_quarantine=*/true);
    }
  }
}
