// Cross-module integration: full campaigns mixing the injector, EFTA, the
// decoupled baseline and the model stack — the end-to-end stories the paper
// tells (reliable inference under SEUs; EFTA vs baseline equivalence).
#include <gtest/gtest.h>

#include <cmath>

#include "abft/element_abft.hpp"
#include "abft/strided_abft.hpp"
#include "attention/attention.hpp"
#include "attention/decoupled_ft.hpp"
#include "core/efta.hpp"
#include "sim/mma.hpp"
#include "tensor/random.hpp"
#include "transformer/model.hpp"

namespace fa = ftt::attention;
namespace fc = ftt::core;
namespace ff = ftt::fault;
namespace ft = ftt::tensor;
namespace ftx = ftt::transformer;

namespace {

float max_rel4(const ft::Tensor4F& a, const ft::Tensor4F& b) {
  float m = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float d = std::fabs(a.data()[i] - b.data()[i]);
    if (std::isnan(d)) return std::numeric_limits<float>::infinity();
    // Attention outputs are convex combinations of unit-variance V rows, so
    // scale-relative comparison against a 0.1 floor avoids rewarding or
    // punishing near-zero coordinates.
    m = std::max(m, d / (std::fabs(b.data()[i]) + 0.1f));
  }
  return m;
}

}  // namespace

TEST(Integration, AllAttentionPathsAgree) {
  // Standard, flash, decoupled-FT, EFTA and EFTA-optimized must agree on the
  // same inputs — five independent implementations of Eq. (7).
  ft::Tensor4H Q(2, 4, 128, 64), K(2, 4, 128, 64), V(2, 4, 128, 64);
  ft::fill_normal(Q, 100);
  ft::fill_normal(K, 101);
  ft::fill_normal(V, 102);

  ft::Tensor4F Os(2, 4, 128, 64), Of(2, 4, 128, 64), Od(2, 4, 128, 64),
      Oe(2, 4, 128, 64), Oo(2, 4, 128, 64);
  fa::standard_attention(Q, K, V, Os);
  fa::flash_attention(Q, K, V, Of);
  fa::decoupled_ft_attention(Q, K, V, Od);
  fc::efta_attention(Q, K, V, Oe, {});
  fc::EftaOptions uni;
  uni.unified_verification = true;
  fc::efta_attention(Q, K, V, Oo, uni);

  EXPECT_LT(max_rel4(Of, Os), 0.02f);
  EXPECT_LT(max_rel4(Od, Os), 0.02f);
  EXPECT_LT(max_rel4(Oe, Os), 0.02f);
  EXPECT_LT(max_rel4(Oo, Os), 0.02f);
}

TEST(Integration, SeuCampaignEftaCorrectsHighBits) {
  // SEU campaign over sites and positions: count how often EFTA's output
  // stays within tolerance of the clean run.  High-exponent flips must be
  // repaired essentially always.
  ft::Tensor4H Q(1, 1, 128, 64), K(1, 1, 128, 64), V(1, 1, 128, 64);
  ft::fill_normal(Q, 200);
  ft::fill_normal(K, 201);
  ft::fill_normal(V, 202);
  ft::Tensor4F ref(1, 1, 128, 64);
  fc::EftaOptions opt;
  opt.unified_verification = true;
  fc::efta_attention(Q, K, V, ref, opt);

  int ok = 0, total = 0;
  float worst = 0.0f;
  for (ff::Site site : {ff::Site::kGemm1, ff::Site::kExp, ff::Site::kGemm2,
                        ff::Site::kRescale}) {
    for (std::uint64_t call : {11u, 507u, 3001u}) {
      for (unsigned bit : {29u, 30u, 31u}) {
        auto inj = ff::FaultInjector::single(site, call, bit);
        ft::Tensor4F O(1, 1, 128, 64);
        fc::efta_attention(Q, K, V, O, opt, &inj);
        ++total;
        const float r = max_rel4(O, ref);
        worst = std::max(worst, r);
        if (r < 0.02f) ++ok;
      }
    }
  }
  // Coverage is statistical (the paper's own best case is ~92.5-97%): allow
  // a couple of locate-precision misses, but every run must stay bounded.
  EXPECT_GE(ok, total - 2);
  EXPECT_LT(worst, 0.3f);
}

TEST(Integration, DecoupledAndEftaAgreeUnderSameFaultFreeInputs) {
  ft::Tensor4H Q(1, 2, 192, 64), K(1, 2, 192, 64), V(1, 2, 192, 64);
  ft::fill_normal(Q, 300);
  ft::fill_normal(K, 301);
  ft::fill_normal(V, 302);
  ft::Tensor4F Od(1, 2, 192, 64), Oe(1, 2, 192, 64);
  fa::decoupled_ft_attention(Q, K, V, Od);
  fc::efta_attention(Q, K, V, Oe, {});
  EXPECT_LT(max_rel4(Oe, Od), 0.02f);
}

TEST(Integration, ModelSeuCampaign) {
  // One flip anywhere in a 2-layer protected model, several trials: output
  // must track the clean run.
  const ftx::Model model(ftx::ModelConfig::tiny());
  ft::MatrixF base(64, 128);
  ft::fill_normal(base, 400);
  ft::MatrixF ref = base;
  model.forward(ref, ftx::AttentionKind::kEftaOptimized, true);

  for (ff::Site site : {ff::Site::kGemm1, ff::Site::kGemm2, ff::Site::kLinear}) {
    auto inj = ff::FaultInjector::single(site, 777, 28);
    ft::MatrixF x = base;
    model.forward(x, ftx::AttentionKind::kEftaOptimized, true, &inj);
    EXPECT_EQ(inj.injected(), 1u) << ff::site_name(site);
    float m = 0.0f;
    for (std::size_t i = 0; i < x.size(); ++i) {
      m = std::max(m, std::fabs(x.data()[i] - ref.data()[i]) /
                          (std::fabs(ref.data()[i]) + 1e-2f));
    }
    EXPECT_LT(m, 0.05f) << ff::site_name(site);
  }
}

TEST(Integration, LongSequenceEftaStable) {
  // Long-sequence inference (the decoupled pipeline's OOM regime is modeled;
  // here we check EFTA computes a seq well beyond a single block cleanly).
  ft::Tensor4H Q(1, 1, 1024, 64), K(1, 1, 1024, 64), V(1, 1, 1024, 64);
  ft::fill_normal(Q, 500);
  ft::fill_normal(K, 501);
  ft::fill_normal(V, 502);
  ft::Tensor4F Of(1, 1, 1024, 64), Oe(1, 1, 1024, 64);
  fa::flash_attention(Q, K, V, Of);
  fc::EftaOptions opt;
  opt.unified_verification = true;
  const auto rep = fc::efta_attention(Q, K, V, Oe, opt);
  EXPECT_EQ(rep.gemm2.flagged, 0u);
  EXPECT_LT(max_rel4(Oe, Of), 0.02f);
}

TEST(Integration, BerSweepCoverageOrdering) {
  // Mini Fig. 12: at equal BER, the 8-wide tensor checksum corrects more
  // multi-error runs than the element checksum.
  ft::Tensor4H A(1, 1, 64, 64), B(1, 1, 64, 64);
  ft::fill_normal(A, 600);
  ft::fill_normal(B, 601);
  // Extract 2-D slices for the raw GEMM interface.
  ft::MatrixH a(64, 64), b(64, 64);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a.data()[i] = A.data()[i];
    b.data()[i] = B.data()[i];
  }
  ft::MatrixF ref(64, 64);
  ftt::sim::gemm_fp16_nt(a, b, ref);

  int strided_ok = 0, element_ok = 0;
  const int trials = 40;
  const double p = 3.0 / (64.0 * 64.0);  // ~3 flips per GEMM
  for (int t = 0; t < trials; ++t) {
    auto inj1 = ff::FaultInjector::bernoulli(p, 7000 + t, {ff::Site::kGemm1});
    ft::MatrixF C1(64, 64);
    ftt::abft::StridedAbft::gemm_nt(a, b, C1, 8, 0.02f, &inj1);
    if (ft::max_abs_diff(C1, ref) < 0.05f) ++strided_ok;

    auto inj2 = ff::FaultInjector::bernoulli(p, 7000 + t, {ff::Site::kGemm1});
    ft::MatrixF C2(64, 64);
    ftt::abft::ElementAbft::gemm_nt(a, b, C2, 0.02f, &inj2);
    if (ft::max_abs_diff(C2, ref) < 0.05f) ++element_ok;
  }
  EXPECT_GE(strided_ok, element_ok);
  EXPECT_GT(strided_ok, trials / 2);
}
