// Fault injector: deterministic single-flip targeting, Bernoulli campaigns,
// per-site isolation, reset semantics.
#include <gtest/gtest.h>

#include <cmath>

#include "fault/fault.hpp"

namespace ff = ftt::fault;

TEST(FaultInjector, NullAndDisarmedPassThrough) {
  ff::FaultInjector none;
  EXPECT_FALSE(none.armed());
  EXPECT_EQ(none.corrupt(ff::Site::kGemm1, 2.5f), 2.5f);
  EXPECT_EQ(ff::corrupt(nullptr, ff::Site::kGemm1, 2.5f), 2.5f);
}

TEST(FaultInjector, SingleFlipsExactlyTheTargetCall) {
  auto inj = ff::FaultInjector::single(ff::Site::kExp, 3, 31);  // sign bit
  for (int i = 0; i < 10; ++i) {
    const float out = inj.corrupt(ff::Site::kExp, 1.0f);
    if (i == 3) {
      EXPECT_EQ(out, -1.0f) << i;
    } else {
      EXPECT_EQ(out, 1.0f) << i;
    }
  }
  EXPECT_EQ(inj.injected(), 1u);
  ASSERT_EQ(inj.events().size(), 1u);
  EXPECT_EQ(inj.events()[0].call_index, 3u);
  EXPECT_EQ(inj.events()[0].bit, 31u);
  EXPECT_EQ(inj.events()[0].site, ff::Site::kExp);
}

TEST(FaultInjector, SingleIgnoresOtherSites) {
  auto inj = ff::FaultInjector::single(ff::Site::kGemm1, 0, 20);
  EXPECT_EQ(inj.corrupt(ff::Site::kExp, 1.0f), 1.0f);
  EXPECT_EQ(inj.corrupt(ff::Site::kReduceSum, 1.0f), 1.0f);
  EXPECT_EQ(inj.injected(), 0u);
  EXPECT_NE(inj.corrupt(ff::Site::kGemm1, 1.0f), 1.0f);
  EXPECT_EQ(inj.injected(), 1u);
}

TEST(FaultInjector, SingleFiresOnlyOnce) {
  auto inj = ff::FaultInjector::single(ff::Site::kGemm1, 0, 20);
  inj.corrupt(ff::Site::kGemm1, 1.0f);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(inj.corrupt(ff::Site::kGemm1, 1.0f), 1.0f);
  }
  EXPECT_EQ(inj.injected(), 1u);
}

TEST(FaultInjector, CallCountersTrackEverything) {
  auto inj = ff::FaultInjector::single(ff::Site::kGemm1, 1000000, 0);
  for (int i = 0; i < 7; ++i) inj.corrupt(ff::Site::kGemm1, 0.0f);
  for (int i = 0; i < 3; ++i) inj.corrupt(ff::Site::kExp, 0.0f);
  EXPECT_EQ(inj.calls(ff::Site::kGemm1), 7u);
  EXPECT_EQ(inj.calls(ff::Site::kExp), 3u);
}

TEST(FaultInjector, ResetRearms) {
  auto inj = ff::FaultInjector::single(ff::Site::kGemm1, 2, 31);
  for (int i = 0; i < 5; ++i) inj.corrupt(ff::Site::kGemm1, 1.0f);
  EXPECT_EQ(inj.injected(), 1u);
  inj.reset();
  EXPECT_EQ(inj.injected(), 0u);
  EXPECT_EQ(inj.calls(ff::Site::kGemm1), 0u);
  float flipped = 0.0f;
  for (int i = 0; i < 5; ++i) {
    const float out = inj.corrupt(ff::Site::kGemm1, 1.0f);
    if (out != 1.0f) flipped = out;
  }
  EXPECT_EQ(flipped, -1.0f);
}

TEST(FaultInjector, BernoulliRateRoughlyMatches) {
  auto inj = ff::FaultInjector::bernoulli(0.01, 42);
  const int n = 200000;
  for (int i = 0; i < n; ++i) inj.corrupt(ff::Site::kGemm1, 1.0f);
  const double rate = static_cast<double>(inj.injected()) / n;
  EXPECT_NEAR(rate, 0.01, 0.002);
}

TEST(FaultInjector, BernoulliZeroProbNeverFires) {
  auto inj = ff::FaultInjector::bernoulli(0.0, 7);
  for (int i = 0; i < 100000; ++i) inj.corrupt(ff::Site::kGemm1, 1.0f);
  EXPECT_EQ(inj.injected(), 0u);
}

TEST(FaultInjector, BernoulliSiteFilter) {
  auto inj = ff::FaultInjector::bernoulli(0.5, 9, {ff::Site::kExp});
  for (int i = 0; i < 1000; ++i) {
    inj.corrupt(ff::Site::kGemm1, 1.0f);
    inj.corrupt(ff::Site::kExp, 1.0f);
  }
  EXPECT_GT(inj.injected(), 100u);
  for (const auto& e : inj.events()) EXPECT_EQ(e.site, ff::Site::kExp);
}

TEST(FaultInjector, BernoulliDeterministicAcrossReset) {
  auto inj = ff::FaultInjector::bernoulli(0.05, 123);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 1000; ++i) inj.corrupt(ff::Site::kGemm1, 1.0f);
  for (const auto& e : inj.events()) first.push_back(e.call_index);
  inj.reset();
  for (int i = 0; i < 1000; ++i) inj.corrupt(ff::Site::kGemm1, 1.0f);
  std::vector<std::uint64_t> second;
  for (const auto& e : inj.events()) second.push_back(e.call_index);
  EXPECT_EQ(first, second);
}

TEST(FaultInjector, EventRecordsBeforeAfter) {
  auto inj = ff::FaultInjector::single(ff::Site::kLinear, 0, 10);
  const float v = 123.456f;
  const float out = inj.corrupt(ff::Site::kLinear, v);
  ASSERT_EQ(inj.events().size(), 1u);
  EXPECT_EQ(inj.events()[0].before, v);
  EXPECT_EQ(inj.events()[0].after, out);
  EXPECT_EQ(ftt::numeric::hamming_f32(v, out), 1);
}

TEST(FaultInjector, SiteNamesDistinct) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < ff::kSiteCount; ++i) {
    names.insert(ff::site_name(static_cast<ff::Site>(i)));
  }
  EXPECT_EQ(names.size(), ff::kSiteCount);
}

#include "fault/campaign.hpp"

TEST(Campaign, AggregatesGrid) {
  ff::CampaignConfig cfg;
  cfg.sites = {ff::Site::kGemm1, ff::Site::kExp};
  cfg.call_offsets = {0, 5};
  cfg.bits = {30, 31};
  cfg.absorbed_threshold = 0.5f;
  int calls_seen = 0;
  const auto stats = ff::run_campaign(cfg, [&](ff::FaultInjector& inj) {
    ++calls_seen;
    // Pretend computation: 10 values per site, flip shows up as deviation.
    float dev = 0.0f;
    for (int i = 0; i < 10; ++i) {
      const float v = inj.corrupt(ff::Site::kGemm1, 1.0f);
      dev = std::max(dev, std::fabs(v - 1.0f));
      const float e = inj.corrupt(ff::Site::kExp, 0.5f);
      dev = std::max(dev, std::fabs(e - 0.5f));
    }
    return ff::TrialResult{dev, dev > 0.0f};
  });
  EXPECT_EQ(calls_seen, 8);
  EXPECT_EQ(stats.runs, 8u);
  EXPECT_EQ(stats.injected, 8u);   // all offsets < 10 calls
  EXPECT_EQ(stats.detected, 8u);   // every flip moved the value
  EXPECT_DOUBLE_EQ(stats.detection_rate(), 1.0);
  EXPECT_GT(stats.worst_deviation, 0.4f);
}

TEST(Campaign, CountsMissedInjections) {
  ff::CampaignConfig cfg;
  cfg.sites = {ff::Site::kLinear};
  cfg.call_offsets = {1000};  // beyond the 3 calls the trial makes
  cfg.bits = {30};
  const auto stats = ff::run_campaign(cfg, [&](ff::FaultInjector& inj) {
    for (int i = 0; i < 3; ++i) inj.corrupt(ff::Site::kLinear, 1.0f);
    return ff::TrialResult{0.0f, false};
  });
  EXPECT_EQ(stats.runs, 1u);
  EXPECT_EQ(stats.injected, 0u);
  EXPECT_DOUBLE_EQ(stats.absorption_rate(), 1.0);
}
