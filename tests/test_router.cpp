// Replica router: placement policy (sticky prefix affinity, least-loaded
// spread), bit-parity of routed requests (M in {1, 2}) against solo
// engines — including over sharded replicas and under identical injected
// faults via the per-replica injector overload — and merged StepStats.
#include <gtest/gtest.h>

#include <vector>

#include "fault/fault.hpp"
#include "serve/router.hpp"
#include "tensor/random.hpp"
#include "transformer/model.hpp"

namespace fa = ftt::attention;
namespace ff = ftt::fault;
namespace fs = ftt::serve;
namespace ft = ftt::tensor;
namespace fx = ftt::transformer;

namespace {

fx::ModelConfig serving_config() {
  fx::ModelConfig cfg = fx::ModelConfig::tiny();
  cfg.causal = true;
  return cfg;
}

ft::MatrixF random_prompt(std::size_t seq, std::size_t hidden,
                          std::uint64_t seed) {
  ft::MatrixF m(seq, hidden);
  ft::fill_normal(m, seed);
  return m;
}

/// Prompt whose first 64-row tile equals `base`'s (shareable prefix),
/// with a distinct tail row.
ft::MatrixF with_shared_prefix(const ft::MatrixF& base, float tail_fill) {
  ft::MatrixF p(base.rows(), base.cols());
  for (std::size_t r = 0; r + 1 < base.rows(); ++r) {
    for (std::size_t c = 0; c < base.cols(); ++c) p(r, c) = base(r, c);
  }
  for (std::size_t c = 0; c < base.cols(); ++c) {
    p(base.rows() - 1, c) = tail_fill;
  }
  return p;
}

}  // namespace

TEST(Router, RoutedRequestsBitIdenticalToSoloEngines) {
  const fx::Model model(serving_config(), 0x707);
  const std::size_t hidden = model.config().hidden;
  std::vector<ft::MatrixF> prompts;
  std::vector<std::size_t> budgets;
  prompts.push_back(random_prompt(70, hidden, 1));
  budgets.push_back(7);
  prompts.push_back(random_prompt(13, hidden, 2));
  budgets.push_back(10);
  prompts.push_back(random_prompt(40, hidden, 3));
  budgets.push_back(5);
  prompts.push_back(random_prompt(5, hidden, 4));
  budgets.push_back(8);

  // Placement-invariance reference: each request alone in its own engine.
  std::vector<std::vector<float>> ref_hidden;
  std::vector<std::size_t> ref_len;
  std::vector<fa::FtReport> ref_report;
  for (std::size_t i = 0; i < prompts.size(); ++i) {
    fs::DecodeEngine solo(model);
    const auto id = solo.submit(prompts[i], budgets[i]);
    solo.run_until_idle(nullptr, 10000);
    ref_hidden.emplace_back(solo.hidden(id).begin(), solo.hidden(id).end());
    ref_len.push_back(solo.context_length(id));
    ref_report.push_back(solo.report(id));
  }

  for (std::size_t replicas : {1u, 2u}) {
    fs::RouterOptions opt;
    opt.replicas = replicas;
    fs::Router router(model, opt);
    EXPECT_EQ(router.replicas(), replicas);
    std::vector<fs::Router::RequestId> ids;
    for (std::size_t i = 0; i < prompts.size(); ++i) {
      ids.push_back(router.submit(prompts[i], budgets[i]));
    }
    const fs::StepStats stats = router.run_until_idle(nullptr, 10000);
    EXPECT_EQ(router.active(), 0u);
    EXPECT_EQ(router.queued(), 0u);

    for (std::size_t i = 0; i < ids.size(); ++i) {
      EXPECT_EQ(router.context_length(ids[i]), ref_len[i]);
      const auto h = router.hidden(ids[i]);
      ASSERT_EQ(h.size(), ref_hidden[i].size());
      for (std::size_t c = 0; c < h.size(); ++c) {
        EXPECT_EQ(h[c], ref_hidden[i][c])
            << replicas << " replicas, request " << i << " c " << c;
      }
      EXPECT_EQ(router.report(ids[i]).total_detected(),
                ref_report[i].total_detected());
      EXPECT_EQ(router.report(ids[i]).gemm1.checks,
                ref_report[i].gemm1.checks);
    }
    // Merged stats cover all replicas: every token decoded somewhere.
    std::size_t decoded = 0;
    for (std::size_t b : budgets) decoded += b;
    EXPECT_EQ(stats.decoded, decoded);
    EXPECT_EQ(router.lifetime().decoded, decoded);
    // With 2 replicas the load actually spread.
    if (replicas == 2) {
      EXPECT_GT(router.engine(0).lifetime().decoded, 0u);
      EXPECT_GT(router.engine(1).lifetime().decoded, 0u);
    }
  }
}

TEST(Router, RoutedShardedReplicasMatchSolo) {
  const fx::Model model(serving_config(), 0x808);
  const std::size_t hidden = model.config().hidden;
  const ft::MatrixF prompt = random_prompt(33, hidden, 9);

  fs::DecodeEngine solo(model);
  const auto sid = solo.submit(prompt, 6);
  solo.run_until_idle(nullptr, 10000);

  fs::RouterOptions opt;
  opt.replicas = 2;
  opt.engine.shards = 2;  // every replica runs a sharded tick body
  fs::Router router(model, opt);
  const auto id = router.submit(prompt, 6);
  router.run_until_idle(nullptr, 10000);
  EXPECT_EQ(router.engine(router.placement(id).replica).shards(), 2u);

  const auto h = router.hidden(id);
  const auto hs = solo.hidden(sid);
  ASSERT_EQ(h.size(), hs.size());
  for (std::size_t c = 0; c < h.size(); ++c) {
    EXPECT_EQ(h[c], hs[c]) << "c " << c;
  }
}

TEST(Router, StickyPrefixPinsSharersToOneReplica) {
  const fx::Model model(serving_config(), 0x909);
  const std::size_t hidden = model.config().hidden;
  const ft::MatrixF base = random_prompt(80, hidden, 11);

  fs::RouterOptions opt;
  opt.replicas = 2;
  fs::Router router(model, opt);

  // Let the first sharer prefill (sealing + publishing its prefix tile)
  // before the rest arrive, so stickiness has something to pay off.
  const auto a = router.submit(base, 3);
  for (int t = 0; t < 3; ++t) router.step();

  // Same shareable first tile -> same replica, despite least-loaded
  // pressure pulling the later submissions toward the idle replica.
  const auto b = router.submit(with_shared_prefix(base, 0.5f), 3);
  const auto c = router.submit(with_shared_prefix(base, -0.25f), 3);
  EXPECT_EQ(router.placement(a).replica, router.placement(b).replica);
  EXPECT_EQ(router.placement(a).replica, router.placement(c).replica);

  // An unrelated prompt lands on the other (idle) replica; so does a short
  // prompt with no shareable tile (pure least-loaded fallback).
  const auto d = router.submit(random_prompt(80, hidden, 12), 3);
  EXPECT_NE(router.placement(d).replica, router.placement(a).replica);
  const auto e = router.submit(random_prompt(10, hidden, 13), 3);
  EXPECT_EQ(router.placement(e).replica, router.placement(d).replica);

  router.run_until_idle(nullptr, 10000);
  // The sticky trio actually shared prefix tiles inside their replica.
  EXPECT_GT(router.lifetime().shared_tiles, 0u);
}

TEST(Router, StickyOffSpreadsByLoadAlone) {
  const fx::Model model(serving_config(), 0xa0a);
  const std::size_t hidden = model.config().hidden;
  const ft::MatrixF base = random_prompt(80, hidden, 21);

  fs::RouterOptions opt;
  opt.replicas = 2;
  opt.sticky_prefix = false;
  fs::Router router(model, opt);
  const auto a = router.submit(base, 2);
  const auto b = router.submit(with_shared_prefix(base, 1.0f), 2);
  // Pure least-loaded: the sharers split across replicas.
  EXPECT_EQ(router.placement(a).replica, 0u);
  EXPECT_EQ(router.placement(b).replica, 1u);
}

TEST(Router, PerReplicaInjectorsReproduceSoloFaultRuns) {
  const fx::Model model(serving_config(), 0xb0b);
  const std::size_t hidden = model.config().hidden;
  // Short prompts (no shareable tile): least-loaded alternates replicas.
  const ft::MatrixF p0 = random_prompt(20, hidden, 31);
  const ft::MatrixF p1 = random_prompt(28, hidden, 32);

  // Solo twins, each with its own fault process.
  auto run_solo = [&](const ft::MatrixF& p, std::uint64_t seed) {
    fs::DecodeEngine engine(model);
    const auto id = engine.submit(p, 6);
    ff::FaultInjector inj = ff::FaultInjector::bernoulli(1e-5, seed);
    engine.run_until_idle(&inj, 10000);
    return std::pair<std::vector<float>, std::size_t>(
        {engine.hidden(id).begin(), engine.hidden(id).end()},
        inj.injected());
  };
  const auto [h0, n0] = run_solo(p0, 0xaaa1);
  const auto [h1, n1] = run_solo(p1, 0xaaa2);
  EXPECT_GT(n0 + n1, 0u);  // the campaign placed at least one flip

  fs::RouterOptions opt;
  opt.replicas = 2;
  fs::Router router(model, opt);
  const auto a = router.submit(p0, 6);
  const auto b = router.submit(p1, 6);
  ASSERT_EQ(router.placement(a).replica, 0u);
  ASSERT_EQ(router.placement(b).replica, 1u);

  ff::FaultInjector inj0 = ff::FaultInjector::bernoulli(1e-5, 0xaaa1);
  ff::FaultInjector inj1 = ff::FaultInjector::bernoulli(1e-5, 0xaaa2);
  ff::FaultInjector* per_replica[] = {&inj0, &inj1};
  while (router.queued() + router.active() > 0) {
    router.step(std::span<ff::FaultInjector* const>(per_replica, 2));
  }
  EXPECT_EQ(inj0.injected(), n0);
  EXPECT_EQ(inj1.injected(), n1);
  const auto ha = router.hidden(a);
  const auto hb = router.hidden(b);
  ASSERT_EQ(ha.size(), h0.size());
  ASSERT_EQ(hb.size(), h1.size());
  for (std::size_t c = 0; c < ha.size(); ++c) EXPECT_EQ(ha[c], h0[c]);
  for (std::size_t c = 0; c < hb.size(); ++c) EXPECT_EQ(hb[c], h1[c]);
}

TEST(Router, ValidatesOptionsAndIds) {
  const fx::Model model(serving_config(), 5);
  fs::RouterOptions opt;
  opt.replicas = 0;
  EXPECT_THROW(fs::Router(model, opt), std::invalid_argument);

  fs::Router ok(model);
  EXPECT_THROW((void)ok.state(0), std::out_of_range);
  ff::FaultInjector* none[] = {nullptr, nullptr};
  EXPECT_THROW((void)ok.step(std::span<ff::FaultInjector* const>(none, 2)),
               std::invalid_argument);

  const ft::MatrixF prompt =
      random_prompt(6, model.config().hidden, 41);
  const auto id = ok.submit(prompt, 2);
  ok.run_until_idle(nullptr, 1000);
  EXPECT_EQ(ok.state(id), fs::RequestState::kRetired);
  ok.finish(id);  // idempotent on retired requests
}
